/// Interactive NYC-311 explorer: type natural-language questions, get
/// multiplots. A terminal-flavoured version of the paper's browser demo.
///
///   $ ./nyc311_explorer            # interactive REPL
///   $ ./nyc311_explorer --demo     # scripted tour (no stdin needed)
///
/// REPL commands:
///   :sql        show the candidate SQL queries of the last answer
///   :svg FILE   export the last multiplot as SVG
///   :ilp        toggle ILP planning (default: greedy)
///   :quit       exit

#include <cstdio>
#include <iostream>
#include <string>

#include "common/rng.h"
#include "common/strings.h"
#include "muve/muve_engine.h"
#include "viz/render_ascii.h"
#include "viz/render_svg.h"
#include "workload/datasets.h"

namespace {

void PrintAnswer(const muve::MuveEngine::Answer& answer) {
  std::printf("\n%s",
              muve::viz::RenderMultiplot(answer.plan.multiplot).c_str());
  std::printf("(%zu interpretations considered, %zu db queries issued, "
              "%.1f ms end-to-end)\n\n",
              answer.candidates.size(), answer.execution.queries_issued,
              answer.pipeline_millis);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace muve;

  const bool demo = argc > 1 && std::string(argv[1]) == "--demo";

  std::printf("Loading synthetic NYC 311 data...\n");
  Rng rng(2021);
  auto table = workload::Make311Table(100000, &rng);
  MuveOptions options;
  options.planner.geometry.width_px = 1280.0;
  MuveEngine engine(table, options);

  std::printf("Schema: nyc311(");
  for (size_t c = 0; c < table->num_columns(); ++c) {
    std::printf("%s%s", c > 0 ? ", " : "", table->spec(c).name.c_str());
  }
  std::printf(")\n");
  std::printf("Ask things like: \"how many heating complaints in "
              "brooklyn\", \"average open hours for noise\".\n\n");

  std::optional<MuveEngine::Answer> last;
  auto handle = [&](const std::string& line) {
    const std::string text = Trim(line);
    if (text.empty()) return true;
    if (text == ":quit" || text == ":q") return false;
    if (text == ":sql") {
      if (!last) {
        std::printf("no answer yet\n");
        return true;
      }
      for (size_t i = 0; i < last->candidates.size(); ++i) {
        std::printf("%6.3f  %s\n", last->candidates[i].probability,
                    last->candidates[i].query.ToSql().c_str());
      }
      return true;
    }
    if (StartsWith(text, ":svg")) {
      if (!last) {
        std::printf("no answer yet\n");
        return true;
      }
      const std::string path =
          text.size() > 5 ? Trim(text.substr(4)) : "multiplot.svg";
      const Status st =
          viz::WriteSvgFile(last->plan.multiplot, path);
      std::printf("%s\n", st.ok() ? ("wrote " + path).c_str()
                                  : st.ToString().c_str());
      return true;
    }
    auto answer = engine.AskText(text);
    if (!answer.ok()) {
      std::printf("Sorry, I could not interpret that: %s\n",
                  answer.status().ToString().c_str());
      return true;
    }
    last = std::move(*answer);
    PrintAnswer(*last);
    return true;
  };

  if (demo) {
    const char* script[] = {
        "how many heating complaints in brooklyn",
        "average open hours for noise in queens",
        "maximum open hours where agency is nypd",
        ":sql",
        "how many water leak complaints",
    };
    for (const char* line : script) {
      std::printf("muve> %s\n", line);
      handle(line);
    }
    return 0;
  }

  std::string line;
  std::printf("muve> ");
  while (std::getline(std::cin, line)) {
    if (!handle(line)) break;
    std::printf("muve> ");
  }
  return 0;
}
