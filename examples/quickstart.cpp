/// Quickstart: the full MUVE pipeline in ~40 lines.
///
/// Builds a synthetic NYC-311 table, asks a natural-language question,
/// and prints the resulting multiplot: results for the most likely query
/// interpretation AND its phonetically similar alternatives, with the
/// most likely results highlighted.
///
///   $ ./quickstart ["your question"]

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "muve/muve_engine.h"
#include "viz/render_ascii.h"
#include "viz/render_svg.h"
#include "workload/datasets.h"

int main(int argc, char** argv) {
  using namespace muve;

  // 1. A table to query (any single db::Table works; see src/db/).
  Rng rng(42);
  std::shared_ptr<db::Table> table = workload::Make311Table(50000, &rng);

  // 2. The engine: schema-linked translator, phonetic candidate
  //    generation, visualization planner, merged execution.
  MuveEngine engine(table);

  // 3. Ask.
  const std::string question =
      argc > 1 ? argv[1] : "how many heating complaints in brooklyn";
  std::printf("Q: %s\n\n", question.c_str());

  auto answer = engine.AskText(question);
  if (!answer.ok()) {
    std::printf("MUVE could not answer: %s\n",
                answer.status().ToString().c_str());
    return 1;
  }

  std::printf("Most likely SQL: %s\n", answer->base_query.ToSql().c_str());
  std::printf("Candidate interpretations: %zu (top 5):\n",
              answer->candidates.size());
  for (size_t i = 0; i < answer->candidates.size() && i < 5; ++i) {
    std::printf("  %.3f  %s\n", answer->candidates[i].probability,
                answer->candidates[i].query.ToSql().c_str());
  }

  std::printf("\nMultiplot (expected disambiguation cost %.0f ms, "
              "planned in %.1f ms, executed as %zu queries):\n\n",
              answer->plan.expected_cost, answer->plan.optimize_millis,
              answer->execution.queries_issued);
  std::printf("%s", viz::RenderMultiplot(answer->plan.multiplot).c_str());

  // 4. Optional: browser-style SVG output, like the paper's Figure 2.
  if (viz::WriteSvgFile(answer->plan.multiplot, "quickstart.svg").ok()) {
    std::printf("Wrote quickstart.svg\n");
  }
  return 0;
}
