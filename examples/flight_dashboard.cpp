/// Progressive-presentation demo on a large table (paper §8.2 / Fig. 5).
///
/// Runs the same ambiguous query through every presentation method on a
/// million-row flight-delays table and prints each method's
/// visualization timeline: when the first (possibly approximate)
/// multiplot appears, when the correct result becomes visible, and when
/// the final exact multiplot is complete.
///
///   $ ./flight_dashboard [rows]

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "exec/engine.h"
#include "exec/presentation.h"
#include "nlq/candidate_generator.h"
#include "nlq/schema_index.h"
#include "viz/render_ascii.h"
#include "workload/datasets.h"

int main(int argc, char** argv) {
  using namespace muve;

  const size_t rows =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 1000000;

  std::printf("Building %zu-row flight-delays table...\n", rows);
  Rng rng(5);
  auto table = workload::MakeFlightsTable(rows, &rng);
  exec::Engine engine(table);

  // An ambiguous voice query: was it boston or austin?
  auto index = std::make_shared<nlq::SchemaIndex>(table);
  nlq::CandidateGenerator generator(index);
  db::AggregateQuery base;
  base.table = "flights";
  base.function = db::AggregateFunction::kAvg;
  base.aggregate_column = "arr_delay";
  base.predicates = {db::Predicate::Equals("origin", db::Value("boston"))};
  core::CandidateSet candidates = generator.Generate(base);
  std::printf("Query: average arrival delay from \"boston\" "
              "(%zu interpretations considered)\n\n",
              candidates.size());

  exec::PresentationOptions options;
  options.planner.timeout_ms = 150.0;
  options.dynamic_threshold_ms = 40.0;

  for (exec::PresentationMethod method : exec::AllPresentationMethods()) {
    auto outcome =
        exec::RunPresentation(method, &engine, candidates, 0, options);
    if (!outcome.ok()) {
      std::printf("%-10s failed: %s\n",
                  exec::PresentationMethodName(method),
                  outcome.status().ToString().c_str());
      continue;
    }
    std::printf("%-10s events:", exec::PresentationMethodName(method));
    for (const exec::VisualizationEvent& event : outcome->events) {
      std::printf(" %.0fms%s", event.at_millis,
                  event.approximate ? "~" : "");
    }
    std::printf("  | correct visible at %.0f ms, final at %.0f ms",
                std::isfinite(outcome->first_correct_ms)
                    ? outcome->first_correct_ms
                    : -1.0,
                outcome->total_ms);
    if (outcome->initial_relative_error > 0.0) {
      std::printf(", initial approx error %.2f%%",
                  outcome->initial_relative_error * 100.0);
    }
    std::printf("\n");
  }

  // Show the final multiplot of the dynamic approximate method.
  auto final_outcome = exec::RunPresentation(
      exec::PresentationMethod::kApproxDynamic, &engine, candidates, 0,
      options);
  if (final_outcome.ok() && !final_outcome->events.empty()) {
    std::printf("\nFinal multiplot (App-D):\n%s",
                viz::RenderMultiplot(
                    final_outcome->events.back().multiplot)
                    .c_str());
  }
  return 0;
}
