/// Voice-robustness demo (the paper's Example 1 scenario).
///
/// Repeatedly passes the same spoken question through a noisy simulated
/// recognizer and shows that, even when words get corrupted into
/// near-homophones ("queens" -> "quincy", "heating" -> "heeding"), the
/// multiplot still covers the intended interpretation — while a
/// traditional top-1 pipeline would show the wrong single answer.
///
///   $ ./voice_robustness [num_trials]

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "muve/muve_engine.h"
#include "nlq/translator.h"
#include "viz/render_ascii.h"
#include "workload/datasets.h"

int main(int argc, char** argv) {
  using namespace muve;

  const int trials = argc > 1 ? std::atoi(argv[1]) : 8;

  Rng table_rng(7);
  auto table = workload::Make311Table(30000, &table_rng);
  MuveOptions options;
  options.planner.geometry.width_px = 1536.0;  // Desktop screen.
  options.planner.geometry.max_rows = 2;
  MuveEngine engine(table, options);

  // Ground truth: the user wants this query.
  db::AggregateQuery truth;
  truth.table = "nyc311";
  truth.function = db::AggregateFunction::kCount;
  truth.predicates = {
      db::Predicate::Equals("borough", db::Value("queens")),
      db::Predicate::Equals("complaint_type", db::Value("heating"))};
  const std::string utterance = nlq::VerbalizeQuery(truth);
  std::printf("Intended query: %s\nSpoken as     : \"%s\"\n\n",
              truth.ToSql().c_str(), utterance.c_str());

  speech::SpeechNoiseOptions noise;
  noise.substitution_rate = 0.12;  // A poor microphone day.

  Rng rng(99);
  int top1_correct = 0;
  int multiplot_correct = 0;
  int answered = 0;
  for (int t = 0; t < trials; ++t) {
    auto answer = engine.AskVoice(utterance, &rng, noise);
    std::printf("--- trial %d: recognized \"%s\"\n", t + 1,
                answer.ok() ? answer->transcript.c_str() : "(failed)");
    if (!answer.ok()) continue;
    ++answered;

    const std::string truth_key = truth.CanonicalKey();
    const bool top1 = answer->base_query.CanonicalKey() == truth_key;
    bool covered = false;
    for (size_t c = 0; c < answer->candidates.size(); ++c) {
      if (answer->candidates[c].query.CanonicalKey() == truth_key &&
          answer->plan.multiplot.FindCandidate(c).has_value()) {
        covered = true;
        break;
      }
    }
    top1_correct += top1 ? 1 : 0;
    multiplot_correct += covered ? 1 : 0;
    std::printf("    top-1 interpretation %s | multiplot %s\n",
                top1 ? "CORRECT" : "wrong  ",
                covered ? "covers the intended result"
                        : "misses the intended result");
    if (t == 0) {
      std::printf("\n%s\n",
                  viz::RenderMultiplot(answer->plan.multiplot).c_str());
    }
  }

  std::printf(
      "\nSummary over %d answered trials: top-1 correct %d/%d, intended "
      "result on screen %d/%d.\nMUVE turns \"wrong answer\" into \"one "
      "extra glance\".\n",
      answered, top1_correct, answered, multiplot_correct, answered);
  return 0;
}
