#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <functional>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "muve/muve_engine.h"
#include "nlq/translator.h"
#include "testing/sanitizer.h"
#include "viz/render_ascii.h"
#include "workload/datasets.h"
#include "workload/query_generator.h"

namespace muve {
namespace {

std::shared_ptr<db::Table> Table311() {
  Rng rng(777);
  return workload::Make311Table(10000, &rng);
}

TEST(MuveEngineTest, AskTextEndToEnd) {
  MuveEngine engine(Table311());
  auto answer = engine.Ask(Request::Text("how many complaints in brooklyn"));
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->base_query.function, db::AggregateFunction::kCount);
  EXPECT_GE(answer->candidates.size(), 2u);
  EXPECT_FALSE(answer->plan.multiplot.empty());
  // Every bar in the multiplot carries an executed value.
  answer->plan.multiplot.ForEachPlot([](const core::Plot& plot) {
    for (const core::PlotBar& bar : plot.bars) {
      EXPECT_FALSE(std::isnan(bar.value));
    }
  });
  // The base interpretation must be on display.
  EXPECT_TRUE(answer->plan.multiplot.FindCandidate(0).has_value());
  EXPECT_GT(answer->pipeline_millis, 0.0);
}

TEST(MuveEngineTest, MultiplotValuesMatchDirectExecution) {
  auto table = Table311();
  MuveEngine engine(table);
  auto answer = engine.Ask(Request::Text("how many complaints in brooklyn"));
  ASSERT_TRUE(answer.ok());
  auto direct = db::Executor::Execute(*table, answer->base_query);
  ASSERT_TRUE(direct.ok());
  auto location = answer->plan.multiplot.FindCandidate(0);
  ASSERT_TRUE(location.has_value());
  const core::PlotBar& bar =
      answer->plan.multiplot.rows[location->row][location->plot]
          .bars[location->bar];
  EXPECT_DOUBLE_EQ(bar.value, direct->value);
}

TEST(MuveEngineTest, AskVoiceWithNoiseStillAnswers) {
  MuveEngine engine(Table311());
  Rng rng(1);
  speech::SpeechNoiseOptions noise;
  noise.substitution_rate = 0.3;
  int answered = 0;
  for (int i = 0; i < 10; ++i) {
    auto answer = engine.Ask(Request::Voice("how many noise complaints in brooklyn",
                                  &rng, noise));
    if (answer.ok()) ++answered;
  }
  // Noise may occasionally destroy the utterance beyond recognition, but
  // most attempts must go through.
  EXPECT_GE(answered, 7);
}

TEST(MuveEngineTest, IlpModePlansValidMultiplots) {
  if (testing::kSanitizerBuild) {
    GTEST_SKIP() << "wall-clock solver budget is meaningless under the "
                    "~10x sanitizer slowdown";
  }
  MuveOptions options;
  options.use_ilp = true;
  options.planner.timeout_ms = 1500.0;
  options.generation.max_candidates = 12;  // Keep the ILP small.
  MuveEngine engine(Table311(), options);
  auto answer = engine.Ask(Request::Text("how many complaints in brooklyn"));
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer->plan.multiplot.empty());
  EXPECT_TRUE(
      answer->plan.multiplot.Validate(options.planner.geometry).ok());
}

TEST(MuveEngineTest, AnswerRendersAsAscii) {
  MuveEngine engine(Table311());
  auto answer = engine.Ask(Request::Text("average open hours for noise in queens"));
  ASSERT_TRUE(answer.ok());
  const std::string text = viz::RenderMultiplot(
      answer->plan.multiplot, {.use_color = false});
  EXPECT_NE(text.find("Row 1"), std::string::npos);
}

TEST(MuveEngineTest, RejectsUnlinkableUtterance) {
  MuveEngine engine(Table311());
  EXPECT_FALSE(engine.Ask(Request::Text("zzz qqq xxx")).ok());
}

// ---------------------------------------------------------------------
// AskVoice error paths.
// ---------------------------------------------------------------------

TEST(MuveEngineTest, AskVoiceUntranslatableTranscriptFailsGracefully) {
  MuveEngine engine(Table311());
  Rng rng(42);
  // Zero noise: the transcript is the utterance verbatim, and the
  // utterance links to nothing in the schema. The pipeline must surface
  // a translation error, not crash or fabricate a query.
  speech::SpeechNoiseOptions no_noise;
  no_noise.substitution_rate = 0.0;
  no_noise.deletion_rate = 0.0;
  auto answer = engine.Ask(Request::Voice("zzz qqq xxx", &rng, no_noise));
  EXPECT_FALSE(answer.ok());
  EXPECT_FALSE(answer.status().message().empty());
}

TEST(MuveEngineTest, AskVoiceEmptyCandidateSetYieldsEmptyMultiplot) {
  // max_candidates = 0 leaves the generator with nothing to offer. The
  // planner and execution engine must both accept the empty set: the
  // answer succeeds with an empty multiplot rather than erroring out.
  MuveOptions options;
  options.generation.max_candidates = 0;
  MuveEngine engine(Table311(), options);
  Rng rng(43);
  speech::SpeechNoiseOptions no_noise;
  no_noise.substitution_rate = 0.0;
  no_noise.deletion_rate = 0.0;
  auto answer =
      engine.Ask(Request::Voice("how many complaints in brooklyn", &rng, no_noise));
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->candidates.empty());
  EXPECT_TRUE(answer->plan.multiplot.empty());
  EXPECT_TRUE(answer->execution.values.empty());
}

TEST(MuveEngineTest, AskVoiceIlpTimeoutFallsBackToIncumbent) {
  // An absurdly small ILP budget forces the deadline before proven
  // optimality. The planner must return its warm-start incumbent (never
  // an error), flag timed_out, and the multiplot must still validate.
  MuveOptions options;
  options.use_ilp = true;
  options.planner.timeout_ms = 0.05;
  options.generation.max_candidates = 12;
  MuveEngine engine(Table311(), options);
  Rng rng(44);
  speech::SpeechNoiseOptions no_noise;
  no_noise.substitution_rate = 0.0;
  no_noise.deletion_rate = 0.0;
  auto answer =
      engine.Ask(Request::Voice("how many complaints in brooklyn", &rng, no_noise));
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->plan.timed_out);
  EXPECT_TRUE(
      answer->plan.multiplot.Validate(options.planner.geometry).ok());
}

TEST(MuveEngineTest, AmbiguousQueryCoversMultipleInterpretations) {
  // "heating" has the deliberate near-homophone "heeding": both
  // interpretations should make it into the multiplot.
  MuveEngine engine(Table311());
  auto answer = engine.Ask(Request::Text("how many heating complaints"));
  ASSERT_TRUE(answer.ok());
  bool heating_exists = false;
  bool heeding_exists = false;
  bool heating_shown = false;
  bool heeding_shown = false;
  for (size_t i = 0; i < answer->candidates.size(); ++i) {
    for (const db::Predicate& predicate :
         answer->candidates[i].query.predicates) {
      if (predicate.values.empty() || !predicate.values[0].is_string()) {
        continue;
      }
      const bool shown =
          answer->plan.multiplot.FindCandidate(i).has_value();
      if (predicate.values[0].AsString() == "heating") {
        heating_exists = true;
        heating_shown |= shown;
      }
      if (predicate.values[0].AsString() == "heeding") {
        heeding_exists = true;
        heeding_shown |= shown;
      }
    }
  }
  ASSERT_TRUE(heating_exists);
  ASSERT_TRUE(heeding_exists);
  EXPECT_TRUE(heating_shown);
  EXPECT_TRUE(heeding_shown);
}

// ---------------------------------------------------------------------
// Request serving API.
// ---------------------------------------------------------------------

TEST(MuveEngineTest, AskTextEqualsAskWithDefaultRequest) {
  // Fresh engine per path so session caches cannot couple the runs.
  MuveEngine classic(Table311());
  MuveEngine served(Table311());
  auto expected = classic.AskText("how many complaints in brooklyn");
  auto actual = served.Ask(Request::Text("how many complaints in brooklyn"));
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(expected->transcript, actual->transcript);
  EXPECT_EQ(expected->base_query.CanonicalKey(),
            actual->base_query.CanonicalKey());
  ASSERT_EQ(expected->execution.values.size(),
            actual->execution.values.size());
  for (size_t i = 0; i < expected->execution.values.size(); ++i) {
    const bool both_nan = std::isnan(expected->execution.values[i]) &&
                          std::isnan(actual->execution.values[i]);
    EXPECT_TRUE(both_nan || expected->execution.values[i] ==
                                actual->execution.values[i])
        << "candidate " << i;
  }
  EXPECT_FALSE(actual->degradation.degraded());
  EXPECT_EQ(actual->degradation.Describe(), "exact");
}

TEST(MuveEngineTest, AskVoiceEqualsAskWithVoiceRequest) {
  MuveEngine classic(Table311());
  MuveEngine served(Table311());
  speech::SpeechNoiseOptions noise;
  noise.substitution_rate = 0.2;
  // Identical seeds: the recognizer must consume the rng identically.
  Rng classic_rng(99);
  Rng served_rng(99);
  auto expected = classic.AskVoice("how many noise complaints in brooklyn",
                                   &classic_rng, noise);
  auto actual = served.Ask(Request::Voice(
      "how many noise complaints in brooklyn", &served_rng, noise));
  ASSERT_EQ(expected.ok(), actual.ok());
  if (!expected.ok()) return;
  EXPECT_EQ(expected->transcript, actual->transcript);
  EXPECT_EQ(expected->base_query.CanonicalKey(),
            actual->base_query.CanonicalKey());
}

TEST(MuveEngineTest, StageTimingsSumToPipelineMillis) {
  MuveEngine engine(Table311());
  auto answer = engine.Ask(Request::Text("how many complaints in brooklyn"));
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->timings.asr_millis, 0.0);  // Text request: no ASR.
  EXPECT_GT(answer->timings.translate_millis, 0.0);
  EXPECT_GT(answer->timings.execute_millis, 0.0);
  EXPECT_DOUBLE_EQ(answer->pipeline_millis,
                   answer->timings.PipelineMillis());

  Rng rng(7);
  auto voiced = engine.Ask(Request::Voice("how many complaints in brooklyn", &rng));
  ASSERT_TRUE(voiced.ok());
  EXPECT_GE(voiced->timings.asr_millis, 0.0);
  // ASR stays out of the pipeline figure (it is upstream of MUVE).
  EXPECT_DOUBLE_EQ(voiced->pipeline_millis,
                   voiced->timings.PipelineMillis());
}

TEST(MuveEngineTest, UseIlpOverrideNeverTouchesPlanMemo) {
  MuveOptions options;
  options.planner.timeout_ms = 1500.0;
  options.generation.max_candidates = 12;
  MuveEngine engine(Table311(), options);  // Session default: greedy.

  Request request = Request::Text("how many complaints in brooklyn");
  request.use_ilp = true;
  auto first = engine.Ask(request);
  ASSERT_TRUE(first.ok());
  auto second = engine.Ask(request);
  ASSERT_TRUE(second.ok());
  // Overriding requests neither probe nor fill the memo: its plans
  // would not replay correctly for the session's default planner.
  EXPECT_EQ(engine.cache_stats().plans.lookups(), 0u);

  // The session default still memoizes as before.
  auto classic = engine.Ask(Request::Text("how many complaints in brooklyn"));
  ASSERT_TRUE(classic.ok());
  auto replay = engine.Ask(Request::Text("how many complaints in brooklyn"));
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(engine.cache_stats().plans.hits, 1u);
}

TEST(MuveEngineTest, BypassCacheLeavesSessionCachesCold) {
  MuveEngine engine(Table311());
  Request request = Request::Text("how many complaints in brooklyn");
  request.bypass_cache = true;
  auto first = engine.Ask(request);
  auto second = engine.Ask(request);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(engine.cache_stats().Total().lookups(), 0u);
  // Both runs took the exact uncached path: identical answers.
  EXPECT_EQ(first->base_query.CanonicalKey(),
            second->base_query.CanonicalKey());
  ASSERT_EQ(first->execution.values.size(),
            second->execution.values.size());
  for (size_t i = 0; i < first->execution.values.size(); ++i) {
    const bool both_nan = std::isnan(first->execution.values[i]) &&
                          std::isnan(second->execution.values[i]);
    EXPECT_TRUE(both_nan ||
                first->execution.values[i] == second->execution.values[i]);
  }
}

// ---------------------------------------------------------------------
// Concurrency: Ask must be safe from many threads, against one shared
// engine (one serving session) and against per-thread engines over one
// shared table (distinct sessions). scripts/check.sh reruns this suite
// under ThreadSanitizer, which is where these tests earn their keep.
// ---------------------------------------------------------------------

/// Answer digest rich enough to catch cross-thread corruption: the base
/// translation plus the fully rendered multiplot (which bakes in plan
/// structure and every executed value).
std::string AnswerDigest(const MuveEngine::Answer& answer) {
  std::ostringstream out;
  out << answer.base_query.CanonicalKey() << "|"
      << answer.candidates.size() << "|"
      << viz::RenderMultiplot(answer.plan.multiplot, viz::AsciiRenderOptions());
  return out.str();
}

/// Utterances guaranteed translatable: verbalizations of random queries
/// against the table itself.
std::vector<std::string> StressUtterances(const db::Table& table,
                                          size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> utterances;
  while (utterances.size() < count) {
    auto query = workload::RandomQuery(table, &rng);
    if (!query.ok()) continue;
    utterances.push_back(nlq::VerbalizeQuery(query.value()));
  }
  return utterances;
}

/// Runs `num_threads` callers against `make_engine(thread)` (shared or
/// per-thread engines) and checks every answer against the serial
/// reference digests. gtest assertions are not thread-safe, so workers
/// record mismatches and the main thread asserts.
void StressAsk(const std::vector<std::string>& utterances,
               const std::vector<std::string>& expected,
               size_t num_threads, size_t iters,
               const std::function<MuveEngine*(size_t)>& engine_for) {
  std::mutex failures_mutex;
  std::vector<std::string> failures;
  std::vector<std::thread> callers;
  callers.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    callers.emplace_back([&, t] {
      MuveEngine* engine = engine_for(t);
      for (size_t i = 0; i < iters; ++i) {
        const size_t pick = (t + i) % utterances.size();
        auto answer = engine->Ask(Request::Text(utterances[pick]));
        std::string failure;
        if (!answer.ok()) {
          failure = "thread " + std::to_string(t) + ": " +
                    answer.status().ToString();
        } else if (AnswerDigest(*answer) != expected[pick]) {
          failure = "thread " + std::to_string(t) + ": digest mismatch on \"" +
                    utterances[pick] + "\"";
        }
        if (!failure.empty()) {
          std::lock_guard<std::mutex> lock(failures_mutex);
          failures.push_back(std::move(failure));
        }
      }
    });
  }
  for (std::thread& caller : callers) caller.join();
  for (const std::string& failure : failures) ADD_FAILURE() << failure;
}

TEST(MuveEngineConcurrencyTest, SharedEngineConcurrentAskMatchesSerial) {
  auto table = Table311();
  MuveOptions options;
  options.execution.num_threads = 2;  // Nested pool under concurrent callers.
  const auto utterances = StressUtterances(*table, 5, 42);

  MuveEngine reference(table, options);
  std::vector<std::string> expected;
  for (const std::string& utterance : utterances) {
    auto answer = reference.Ask(Request::Text(utterance));
    ASSERT_TRUE(answer.ok()) << utterance;
    expected.push_back(AnswerDigest(*answer));
  }

  const size_t iters = testing::kSanitizerBuild ? 3 : 6;
  for (size_t num_threads : {size_t{2}, size_t{8}}) {
    // One engine = one serving session: all callers share its caches,
    // plan memo, and executor.
    MuveEngine shared(table, options);
    StressAsk(utterances, expected, num_threads, iters,
              [&shared](size_t) { return &shared; });
  }
}

TEST(MuveEngineConcurrencyTest, DistinctEnginesConcurrentAskMatchesSerial) {
  auto table = Table311();
  MuveOptions options;
  options.execution.num_threads = 1;  // Serving-style serial sessions.
  const auto utterances = StressUtterances(*table, 5, 43);

  MuveEngine reference(table, options);
  std::vector<std::string> expected;
  for (const std::string& utterance : utterances) {
    auto answer = reference.Ask(Request::Text(utterance));
    ASSERT_TRUE(answer.ok()) << utterance;
    expected.push_back(AnswerDigest(*answer));
  }

  const size_t iters = testing::kSanitizerBuild ? 3 : 6;
  for (size_t num_threads : {size_t{2}, size_t{8}}) {
    // One engine per caller, all over one shared (read-only) table —
    // the distinct-sessions shape the serving front end runs.
    std::vector<std::unique_ptr<MuveEngine>> engines;
    for (size_t t = 0; t < num_threads; ++t) {
      engines.push_back(std::make_unique<MuveEngine>(table, options));
    }
    StressAsk(utterances, expected, num_threads, iters,
              [&engines](size_t t) { return engines[t].get(); });
  }
}

TEST(MuveEngineConcurrencyTest, SharedEngineConcurrentVoiceAsk) {
  // Voice requests with per-thread RNGs against one shared engine: the
  // ASR stage must not race across callers. Noise makes answers
  // caller-dependent, so this checks safety, not byte-identity.
  auto table = Table311();
  MuveOptions options;
  options.execution.num_threads = 2;
  MuveEngine shared(table, options);
  speech::SpeechNoiseOptions noise;
  noise.substitution_rate = 0.2;

  std::atomic<int> answered{0};
  std::vector<std::thread> callers;
  const size_t num_threads = 4;
  const size_t iters = testing::kSanitizerBuild ? 3 : 6;
  for (size_t t = 0; t < num_threads; ++t) {
    callers.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (size_t i = 0; i < iters; ++i) {
        auto answer = shared.Ask(Request::Voice(
            "how many noise complaints in brooklyn", &rng, noise));
        if (answer.ok()) answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& caller : callers) caller.join();
  // Noise occasionally destroys the utterance; most asks must succeed.
  EXPECT_GE(answered.load(),
            static_cast<int>(num_threads * iters / 2));
}

}  // namespace
}  // namespace muve
