#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "ilp/model.h"
#include "ilp/presolve.h"
#include "ilp/simplex.h"
#include "ilp/solver.h"

namespace muve::ilp {
namespace {

/// A random small pure-integer program: n variables in [0, 2], mixed-sign
/// objective and coefficients, <= constraints. Small enough to enumerate
/// all 3^n assignments.
Model RandomSmallMip(Rng* rng) {
  Model model;
  const int n = 4 + static_cast<int>(rng->UniformInt(3));
  for (int v = 0; v < n; ++v) {
    model.AddInteger("x" + std::to_string(v), 0.0, 2.0);
    model.AddObjectiveTerm(v, rng->UniformDouble(-5.0, 5.0));
  }
  if (rng->Bernoulli(0.5)) model.SetSense(Sense::kMaximize);
  const int m = 2 + static_cast<int>(rng->UniformInt(3));
  for (int c = 0; c < m; ++c) {
    LinearExpr expr;
    for (int v = 0; v < n; ++v) {
      if (rng->Bernoulli(0.7)) expr.Add(v, rng->UniformDouble(-2.0, 3.0));
    }
    model.AddConstraint(expr, Relation::kLessEqual,
                        rng->UniformDouble(-1.0, 8.0));
  }
  return model;
}

/// Brute-force optimum of a RandomSmallMip-shaped model. Returns false
/// when no assignment is feasible.
bool EnumerateOptimum(const Model& model, double* best) {
  const size_t n = model.num_variables();
  std::vector<double> x(n, 0.0);
  bool found = false;
  const bool maximize = model.sense() == Sense::kMaximize;
  while (true) {
    if (model.IsFeasible(x)) {
      const double value = model.EvaluateObjective(x);
      if (!found || (maximize ? value > *best : value < *best)) {
        *best = value;
      }
      found = true;
    }
    size_t carry = 0;
    while (carry < n && x[carry] == 2.0) x[carry++] = 0.0;
    if (carry == n) break;
    x[carry] += 1.0;
  }
  return found;
}

// ---------------------------------------------------------------------
// Simplex on hand-solved LPs.
// ---------------------------------------------------------------------

TEST(SimplexTest, SimpleMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18; optimum 36 at
  // (2, 6) — the classic Dantzig example.
  Model model;
  const int x = model.AddVariable("x", 0.0, Model::kInfinity);
  const int y = model.AddVariable("y", 0.0, Model::kInfinity);
  model.SetSense(Sense::kMaximize);
  model.AddObjectiveTerm(x, 3.0);
  model.AddObjectiveTerm(y, 5.0);
  model.AddConstraint(LinearExpr().Add(x, 1.0), Relation::kLessEqual, 4.0);
  model.AddConstraint(LinearExpr().Add(y, 2.0), Relation::kLessEqual, 12.0);
  model.AddConstraint(LinearExpr().Add(x, 3.0).Add(y, 2.0),
                      Relation::kLessEqual, 18.0);
  const LpSolution solution = SimplexSolver().Solve(model);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 36.0, 1e-6);
  EXPECT_NEAR(solution.x[x], 2.0, 1e-6);
  EXPECT_NEAR(solution.x[y], 6.0, 1e-6);
}

TEST(SimplexTest, Minimization) {
  // min x + y s.t. x + 2y >= 4, 3x + y >= 6; optimum at intersection
  // (8/5, 6/5), value 14/5.
  Model model;
  const int x = model.AddVariable("x", 0.0, Model::kInfinity);
  const int y = model.AddVariable("y", 0.0, Model::kInfinity);
  model.AddObjectiveTerm(x, 1.0);
  model.AddObjectiveTerm(y, 1.0);
  model.AddConstraint(LinearExpr().Add(x, 1.0).Add(y, 2.0),
                      Relation::kGreaterEqual, 4.0);
  model.AddConstraint(LinearExpr().Add(x, 3.0).Add(y, 1.0),
                      Relation::kGreaterEqual, 6.0);
  const LpSolution solution = SimplexSolver().Solve(model);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 14.0 / 5.0, 1e-6);
}

TEST(SimplexTest, EqualityConstraints) {
  // min 2x + 3y s.t. x + y = 10, x - y = 2 -> x=6, y=4, value 24.
  Model model;
  const int x = model.AddVariable("x", 0.0, Model::kInfinity);
  const int y = model.AddVariable("y", 0.0, Model::kInfinity);
  model.AddObjectiveTerm(x, 2.0);
  model.AddObjectiveTerm(y, 3.0);
  model.AddConstraint(LinearExpr().Add(x, 1.0).Add(y, 1.0),
                      Relation::kEqual, 10.0);
  model.AddConstraint(LinearExpr().Add(x, 1.0).Add(y, -1.0),
                      Relation::kEqual, 2.0);
  const LpSolution solution = SimplexSolver().Solve(model);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.x[x], 6.0, 1e-6);
  EXPECT_NEAR(solution.x[y], 4.0, 1e-6);
  EXPECT_NEAR(solution.objective, 24.0, 1e-6);
}

TEST(SimplexTest, DetectsInfeasibility) {
  // x <= 1 and x >= 2 cannot hold.
  Model model;
  const int x = model.AddVariable("x", 0.0, Model::kInfinity);
  model.AddObjectiveTerm(x, 1.0);
  model.AddConstraint(LinearExpr().Add(x, 1.0), Relation::kLessEqual, 1.0);
  model.AddConstraint(LinearExpr().Add(x, 1.0), Relation::kGreaterEqual,
                      2.0);
  EXPECT_EQ(SimplexSolver().Solve(model).status, LpStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnboundedness) {
  // max x with only x >= 0.
  Model model;
  const int x = model.AddVariable("x", 0.0, Model::kInfinity);
  model.SetSense(Sense::kMaximize);
  model.AddObjectiveTerm(x, 1.0);
  model.AddConstraint(LinearExpr().Add(x, 1.0), Relation::kGreaterEqual,
                      0.0);
  EXPECT_EQ(SimplexSolver().Solve(model).status, LpStatus::kUnbounded);
}

TEST(SimplexTest, RespectsVariableBounds) {
  // max x + y with x in [0, 3], y in [1, 2] -> 5.
  Model model;
  const int x = model.AddVariable("x", 0.0, 3.0);
  const int y = model.AddVariable("y", 1.0, 2.0);
  model.SetSense(Sense::kMaximize);
  model.AddObjectiveTerm(x, 1.0);
  model.AddObjectiveTerm(y, 1.0);
  const LpSolution solution = SimplexSolver().Solve(model);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 5.0, 1e-6);
}

TEST(SimplexTest, FixedVariablesAreSubstituted) {
  // y fixed to 2; min x s.t. x + y >= 5 -> x = 3.
  Model model;
  const int x = model.AddVariable("x", 0.0, Model::kInfinity);
  const int y = model.AddVariable("y", 2.0, 2.0);
  model.AddObjectiveTerm(x, 1.0);
  model.AddConstraint(LinearExpr().Add(x, 1.0).Add(y, 1.0),
                      Relation::kGreaterEqual, 5.0);
  const LpSolution solution = SimplexSolver().Solve(model);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.x[x], 3.0, 1e-6);
  EXPECT_NEAR(solution.x[y], 2.0, 1e-12);
}

TEST(SimplexTest, ObjectiveConstantIncluded) {
  Model model;
  const int x = model.AddVariable("x", 0.0, 1.0);
  model.AddObjectiveTerm(x, 1.0);
  model.AddObjectiveConstant(100.0);
  const LpSolution solution = SimplexSolver().Solve(model);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 100.0, 1e-9);
}

TEST(SimplexTest, NegativeRhsHandled) {
  // min x s.t. -x <= -3 (i.e., x >= 3).
  Model model;
  const int x = model.AddVariable("x", 0.0, Model::kInfinity);
  model.AddObjectiveTerm(x, 1.0);
  model.AddConstraint(LinearExpr().Add(x, -1.0), Relation::kLessEqual,
                      -3.0);
  const LpSolution solution = SimplexSolver().Solve(model);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.x[x], 3.0, 1e-6);
}

TEST(SimplexTest, RandomizedFeasibilityCheck) {
  // LP optima must satisfy all constraints.
  Rng rng(77);
  for (int trial = 0; trial < 25; ++trial) {
    Model model;
    const int n = 4 + static_cast<int>(rng.UniformInt(4));
    for (int v = 0; v < n; ++v) {
      model.AddVariable("x" + std::to_string(v), 0.0, 10.0);
      model.AddObjectiveTerm(v, rng.UniformDouble(-1.0, 1.0));
    }
    const int m = 3 + static_cast<int>(rng.UniformInt(4));
    for (int c = 0; c < m; ++c) {
      LinearExpr expr;
      for (int v = 0; v < n; ++v) {
        if (rng.Bernoulli(0.6)) expr.Add(v, rng.UniformDouble(0.0, 2.0));
      }
      model.AddConstraint(expr, Relation::kLessEqual,
                          rng.UniformDouble(1.0, 20.0));
    }
    const LpSolution solution = SimplexSolver().Solve(model);
    ASSERT_EQ(solution.status, LpStatus::kOptimal);
    Model relaxed = model;  // IsFeasible ignores integrality here anyway.
    EXPECT_TRUE(relaxed.IsFeasible(solution.x, 1e-5));
  }
}

// ---------------------------------------------------------------------
// Branch and bound.
// ---------------------------------------------------------------------

TEST(MipSolverTest, SolvesKnapsack) {
  // Knapsack: values {60,100,120}, weights {10,20,30}, capacity 50.
  // Optimum picks items 2+3: value 220.
  Model model;
  const double values[] = {60, 100, 120};
  const double weights[] = {10, 20, 30};
  LinearExpr capacity;
  for (int i = 0; i < 3; ++i) {
    const int x = model.AddBinary("item" + std::to_string(i));
    model.AddObjectiveTerm(x, values[i]);
    capacity.Add(x, weights[i]);
  }
  model.SetSense(Sense::kMaximize);
  model.AddConstraint(capacity, Relation::kLessEqual, 50.0);
  const MipSolution solution = MipSolver().Solve(model);
  ASSERT_EQ(solution.status, MipStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 220.0, 1e-6);
  EXPECT_NEAR(solution.x[0], 0.0, 1e-6);
  EXPECT_NEAR(solution.x[1], 1.0, 1e-6);
  EXPECT_NEAR(solution.x[2], 1.0, 1e-6);
}

TEST(MipSolverTest, IntegralityMatters) {
  // max x + y s.t. 2x + 2y <= 3, binaries: LP optimum 1.5, MIP optimum 1.
  Model model;
  const int x = model.AddBinary("x");
  const int y = model.AddBinary("y");
  model.SetSense(Sense::kMaximize);
  model.AddObjectiveTerm(x, 1.0);
  model.AddObjectiveTerm(y, 1.0);
  model.AddConstraint(LinearExpr().Add(x, 2.0).Add(y, 2.0),
                      Relation::kLessEqual, 3.0);
  const MipSolution solution = MipSolver().Solve(model);
  ASSERT_EQ(solution.status, MipStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 1.0, 1e-6);
}

TEST(MipSolverTest, GeneralIntegerVariables) {
  // max 2x + 3y, x,y integer, x + y <= 4.5, x - y >= -1 ->
  // best integers: y - x <= 1, x + y <= 4 -> x=2,y=2? obj 10 vs x=1,y=2:8.
  Model model;
  const int x = model.AddInteger("x", 0.0, 10.0);
  const int y = model.AddInteger("y", 0.0, 10.0);
  model.SetSense(Sense::kMaximize);
  model.AddObjectiveTerm(x, 2.0);
  model.AddObjectiveTerm(y, 3.0);
  model.AddConstraint(LinearExpr().Add(x, 1.0).Add(y, 1.0),
                      Relation::kLessEqual, 4.5);
  model.AddConstraint(LinearExpr().Add(x, 1.0).Add(y, -1.0),
                      Relation::kGreaterEqual, -1.0);
  const MipSolution solution = MipSolver().Solve(model);
  ASSERT_EQ(solution.status, MipStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 2.0 * solution.x[x] + 3.0 * solution.x[y],
              1e-6);
  // Exhaustive check of the small grid.
  double best = 0.0;
  for (int xi = 0; xi <= 4; ++xi) {
    for (int yi = 0; yi <= 4; ++yi) {
      if (xi + yi <= 4.5 && xi - yi >= -1) {
        best = std::max(best, 2.0 * xi + 3.0 * yi);
      }
    }
  }
  EXPECT_NEAR(solution.objective, best, 1e-6);
}

TEST(MipSolverTest, InfeasibleModel) {
  Model model;
  const int x = model.AddBinary("x");
  model.AddConstraint(LinearExpr().Add(x, 1.0), Relation::kGreaterEqual,
                      2.0);
  EXPECT_EQ(MipSolver().Solve(model).status, MipStatus::kInfeasible);
}

TEST(MipSolverTest, WarmStartAccepted) {
  Model model;
  const int x = model.AddBinary("x");
  model.SetSense(Sense::kMaximize);
  model.AddObjectiveTerm(x, 1.0);
  std::vector<double> warm = {1.0};
  const MipSolution solution =
      MipSolver().Solve(model, Deadline::Infinite(), &warm);
  ASSERT_EQ(solution.status, MipStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 1.0, 1e-9);
}

TEST(MipSolverTest, TimeoutReturnsIncumbent) {
  // An expired deadline with a feasible warm start must return that
  // incumbent (Gurobi-style behaviour MUVE relies on).
  Model model;
  LinearExpr capacity;
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    const int x = model.AddBinary("x" + std::to_string(i));
    model.AddObjectiveTerm(x, rng.UniformDouble(1.0, 10.0));
    capacity.Add(x, rng.UniformDouble(1.0, 10.0));
  }
  model.SetSense(Sense::kMaximize);
  model.AddConstraint(capacity, Relation::kLessEqual, 50.0);
  std::vector<double> warm(30, 0.0);
  const MipSolution solution =
      MipSolver().Solve(model, Deadline::AfterMillis(0.0), &warm);
  EXPECT_EQ(solution.status, MipStatus::kFeasibleTimeout);
  EXPECT_TRUE(solution.timed_out);
  EXPECT_TRUE(solution.has_solution());
}

TEST(MipSolverTest, RandomizedKnapsacksMatchDynamicProgramming) {
  Rng rng(31);
  for (int trial = 0; trial < 15; ++trial) {
    const int n = 8 + static_cast<int>(rng.UniformInt(5));
    std::vector<int> weights(n);
    std::vector<int> values(n);
    const int capacity = 30;
    for (int i = 0; i < n; ++i) {
      weights[i] = 1 + static_cast<int>(rng.UniformInt(12));
      values[i] = 1 + static_cast<int>(rng.UniformInt(20));
    }
    // Dynamic program.
    std::vector<int> dp(capacity + 1, 0);
    for (int i = 0; i < n; ++i) {
      for (int w = capacity; w >= weights[i]; --w) {
        dp[w] = std::max(dp[w], dp[w - weights[i]] + values[i]);
      }
    }
    // MIP.
    Model model;
    LinearExpr weight_expr;
    for (int i = 0; i < n; ++i) {
      const int x = model.AddBinary("x" + std::to_string(i));
      model.AddObjectiveTerm(x, values[i]);
      weight_expr.Add(x, weights[i]);
    }
    model.SetSense(Sense::kMaximize);
    model.AddConstraint(weight_expr, Relation::kLessEqual, capacity);
    const MipSolution solution = MipSolver().Solve(model);
    ASSERT_EQ(solution.status, MipStatus::kOptimal);
    EXPECT_NEAR(solution.objective, dp[capacity], 1e-6) << "trial " << trial;
  }
}

TEST(MipSolverTest, RandomizedMipsMatchExhaustiveEnumeration) {
  // General mixed-sign integer programs (not just knapsacks) against a
  // brute-force sweep of the full 3^n grid.
  Rng rng(91);
  for (int trial = 0; trial < 20; ++trial) {
    const Model model = RandomSmallMip(&rng);
    double best = 0.0;
    const bool feasible = EnumerateOptimum(model, &best);
    const MipSolution solution = MipSolver().Solve(model);
    if (!feasible) {
      EXPECT_EQ(solution.status, MipStatus::kInfeasible) << "trial " << trial;
      continue;
    }
    ASSERT_EQ(solution.status, MipStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(solution.objective, best, 1e-6) << "trial " << trial;
    EXPECT_TRUE(model.IsFeasible(solution.x)) << "trial " << trial;
  }
}

TEST(MipSolverTest, ThreadCountDoesNotChangeResults) {
  // The wave-based parallel search contract: identical solution, node
  // count, and bound at any thread count (for runs without a timeout).
  Rng rng(131);
  Model model;
  LinearExpr capacity;
  LinearExpr pairs;
  for (int i = 0; i < 16; ++i) {
    const int x = model.AddBinary("x" + std::to_string(i));
    model.AddObjectiveTerm(x, rng.UniformDouble(1.0, 10.0));
    capacity.Add(x, rng.UniformDouble(1.0, 10.0));
    if (i % 2 == 0) pairs.Add(x, 1.0);
  }
  model.SetSense(Sense::kMaximize);
  model.AddConstraint(capacity, Relation::kLessEqual, 35.0);
  model.AddConstraint(pairs, Relation::kLessEqual, 5.0);

  MipSolver::Options serial;
  serial.num_threads = 1;
  const MipSolution base = MipSolver(serial).Solve(model);
  ASSERT_EQ(base.status, MipStatus::kOptimal);
  for (size_t threads : {2u, 8u}) {
    MipSolver::Options options;
    options.num_threads = threads;
    const MipSolution solution = MipSolver(options).Solve(model);
    ASSERT_EQ(solution.status, MipStatus::kOptimal) << threads;
    EXPECT_EQ(solution.objective, base.objective) << threads;
    EXPECT_EQ(solution.x, base.x) << threads;
    EXPECT_EQ(solution.nodes_explored, base.nodes_explored) << threads;
    EXPECT_EQ(solution.best_bound, base.best_bound) << threads;
  }
}

// ---------------------------------------------------------------------
// Presolve.
// ---------------------------------------------------------------------

TEST(PresolveTest, PreservesOptimaAndIsIdempotent) {
  Rng rng(101);
  int reductions = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const Model model = RandomSmallMip(&rng);
    const PresolveResult first = Presolve(model);
    double best = 0.0;
    const bool feasible = EnumerateOptimum(model, &best);
    if (first.infeasible) {
      // Presolve may only prove infeasibility, never invent it.
      EXPECT_FALSE(feasible) << "trial " << trial;
      continue;
    }
    reductions += static_cast<int>(first.stats.rows_removed +
                                   first.stats.bounds_tightened +
                                   first.stats.variables_fixed);
    // Same variable count and the same optimum (full optimum set is
    // preserved, so in particular the optimal value).
    ASSERT_EQ(first.model.num_variables(), model.num_variables());
    MipSolver::Options no_presolve;
    no_presolve.presolve = false;
    const MipSolution reduced = MipSolver(no_presolve).Solve(first.model);
    if (!feasible) {
      EXPECT_EQ(reduced.status, MipStatus::kInfeasible) << "trial " << trial;
      continue;
    }
    ASSERT_EQ(reduced.status, MipStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(reduced.objective, best, 1e-6) << "trial " << trial;
    EXPECT_TRUE(model.IsFeasible(reduced.x)) << "trial " << trial;
    // Idempotence: a second pass finds nothing left to do.
    const PresolveResult second = Presolve(first.model);
    EXPECT_FALSE(second.infeasible) << "trial " << trial;
    EXPECT_EQ(second.stats.rows_removed, 0u) << "trial " << trial;
    EXPECT_EQ(second.stats.bounds_tightened, 0u) << "trial " << trial;
    EXPECT_EQ(second.stats.variables_fixed, 0u) << "trial " << trial;
  }
  // The suite must actually exercise reductions, not vacuously pass.
  EXPECT_GT(reductions, 0);
}

// ---------------------------------------------------------------------
// Warm-started dual simplex.
// ---------------------------------------------------------------------

TEST(SimplexTest, ResolveMatchesColdSolveOnPerturbedBounds) {
  // Random bound jumps (as in branch-and-bound slot reuse, where one
  // LpState serves unrelated nodes): the warm dual re-solve must agree
  // with a cold solve on status and objective every time.
  Rng rng(57);
  for (int trial = 0; trial < 8; ++trial) {
    Model model;
    const int n = 5 + static_cast<int>(rng.UniformInt(4));
    for (int v = 0; v < n; ++v) {
      model.AddVariable("x" + std::to_string(v), 0.0, 10.0);
      model.AddObjectiveTerm(v, rng.UniformDouble(-3.0, 3.0));
    }
    if (rng.Bernoulli(0.5)) model.SetSense(Sense::kMaximize);
    const int m = 3 + static_cast<int>(rng.UniformInt(3));
    for (int c = 0; c < m; ++c) {
      LinearExpr expr;
      for (int v = 0; v < n; ++v) {
        if (rng.Bernoulli(0.6)) expr.Add(v, rng.UniformDouble(-1.0, 2.0));
      }
      model.AddConstraint(expr, Relation::kLessEqual,
                          rng.UniformDouble(2.0, 15.0));
    }

    const LpCore core(model);
    const SimplexOptions options;
    LpState warm(&core, options);
    LpState cold(&core, options);
    std::vector<double> lb(n, 0.0);
    std::vector<double> ub(n, 10.0);
    ASSERT_EQ(warm.SolveCold(lb, ub, nullptr), LpStatus::kOptimal);

    for (int step = 0; step < 12; ++step) {
      for (int v = 0; v < n; ++v) {
        if (!rng.Bernoulli(0.4)) continue;
        const double lo = std::floor(rng.UniformDouble(0.0, 8.0));
        const double len = std::floor(rng.UniformDouble(0.0, 5.0));
        lb[v] = lo;
        ub[v] = lo + len;  // len 0 fixes the variable.
      }
      const LpStatus warm_status = warm.Resolve(lb, ub, nullptr);
      const LpStatus cold_status = cold.SolveCold(lb, ub, nullptr);
      EXPECT_EQ(warm_status, cold_status)
          << "trial " << trial << " step " << step;
      if (warm_status == LpStatus::kOptimal &&
          cold_status == LpStatus::kOptimal) {
        EXPECT_NEAR(warm.objective(), cold.objective(), 1e-6)
            << "trial " << trial << " step " << step;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Product linearization.
// ---------------------------------------------------------------------

TEST(ModelTest, ProductVariableEqualsProduct) {
  // y = x * z with x binary, z integer in [0, 5]. For each corner, fix x
  // and z and verify the only feasible y equals the product.
  for (double x_val : {0.0, 1.0}) {
    for (double z_val : {0.0, 2.0, 5.0}) {
      Model model;
      const int x = model.AddBinary("x");
      const int z = model.AddInteger("z", 0.0, 5.0);
      const int y = model.AddProductVariable("y", x, z, 5.0);
      model.AddConstraint(LinearExpr().Add(x, 1.0), Relation::kEqual,
                          x_val);
      model.AddConstraint(LinearExpr().Add(z, 1.0), Relation::kEqual,
                          z_val);
      // Objective pushes y up; upper linking constraints must cap it at
      // the product.
      model.SetSense(Sense::kMaximize);
      model.AddObjectiveTerm(y, 1.0);
      const MipSolution max_solution = MipSolver().Solve(model);
      ASSERT_EQ(max_solution.status, MipStatus::kOptimal);
      EXPECT_NEAR(max_solution.x[y], x_val * z_val, 1e-6);
      // And pushing y down must floor it at the product as well.
      Model model_min;
      const int x2 = model_min.AddBinary("x");
      const int z2 = model_min.AddInteger("z", 0.0, 5.0);
      const int y2 = model_min.AddProductVariable("y", x2, z2, 5.0);
      model_min.AddConstraint(LinearExpr().Add(x2, 1.0), Relation::kEqual,
                              x_val);
      model_min.AddConstraint(LinearExpr().Add(z2, 1.0), Relation::kEqual,
                              z_val);
      model_min.AddObjectiveTerm(y2, 1.0);  // Minimize.
      const MipSolution min_solution = MipSolver().Solve(model_min);
      ASSERT_EQ(min_solution.status, MipStatus::kOptimal);
      EXPECT_NEAR(min_solution.x[y2], x_val * z_val, 1e-6);
    }
  }
}

TEST(ModelTest, CountsAndAccessors) {
  Model model;
  const int x = model.AddBinary("x");
  const int y = model.AddVariable("y", 0.0, 2.0);
  model.AddConstraint(LinearExpr().Add(x, 1.0).Add(y, 1.0),
                      Relation::kLessEqual, 2.0);
  EXPECT_EQ(model.num_variables(), 2u);
  EXPECT_EQ(model.num_constraints(), 1u);
  EXPECT_EQ(model.num_integer_variables(), 1u);
  EXPECT_TRUE(model.is_integer(x));
  EXPECT_FALSE(model.is_integer(y));
  EXPECT_EQ(model.name(x), "x");
}

TEST(ModelTest, IsFeasibleChecksEverything) {
  Model model;
  const int x = model.AddBinary("x");
  model.AddConstraint(LinearExpr().Add(x, 1.0), Relation::kLessEqual, 0.5);
  EXPECT_TRUE(model.IsFeasible({0.0}));
  EXPECT_FALSE(model.IsFeasible({1.0}));   // Violates constraint.
  EXPECT_FALSE(model.IsFeasible({0.4}));   // Violates integrality.
  EXPECT_FALSE(model.IsFeasible({-0.5}));  // Violates bound.
  EXPECT_FALSE(model.IsFeasible({}));      // Wrong arity.
}

}  // namespace
}  // namespace muve::ilp
