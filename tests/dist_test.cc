/// Tests for the distributed-query subsystem (src/dist/): the
/// coordinator's scatter over real loopback shard endpoints, and the
/// contracts the router stands on.
///
///  - Differential suite: a routed gather (Coordinator over K in-process
///    shard listeners) must reproduce the local in-process
///    scatter-gather **byte-for-byte**, across 1/2/4 shard endpoints,
///    for seeded random aggregate and grouped workloads on dyadic
///    tables (see shard_test.cc for why the grid makes SUM exact).
///  - Fault injection: a dead endpoint (connection refused) and a
///    stalled endpoint (accepts, never answers in time) must each
///    degrade to a dropped stripe within the deadline — never a hang —
///    while surviving shards still merge.
///  - Hedging: a straggling first attempt is overtaken by the hedged
///    duplicate, capping latency well below the stall.
///  - Breaker: consecutive transport failures eject a downstream
///    (fail-fast), and a re-probe after the window closes it again.
///  - Engine integration: a serve::Server whose engine scatters through
///    the remote backend answers byte-identically to a local sharded
///    server, and a killed shard yields a degraded-rung answer, not an
///    error.
///
/// MUVE_DIFF_SEEDS overrides the differential seed count.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "db/executor.h"
#include "db/table.h"
#include "dist/coordinator.h"
#include "dist/shard_service.h"
#include "net/listener.h"
#include "net/wire.h"
#include "serve/server.h"
#include "shard/scatter_gather.h"
#include "shard/sharded_table.h"
#include "testing/random_workload.h"
#include "workload/datasets.h"

namespace muve::dist {
namespace {

int SeedCount() {
  const char* value = std::getenv("MUVE_DIFF_SEEDS");
  if (value == nullptr) return 105;
  const long parsed = std::strtol(value, nullptr, 10);
  return parsed > 0 ? static_cast<int>(parsed) : 105;
}

const int kNumSeeds = SeedCount();
constexpr uint64_t kSeedBase = 51000;
const size_t kShardCounts[] = {1, 2, 4};

void ExpectBitwiseEqual(const db::AggregateResult& oracle,
                        const db::AggregateResult& routed,
                        const std::string& context) {
  EXPECT_EQ(oracle.value, routed.value) << context;
  EXPECT_EQ(oracle.rows_matched, routed.rows_matched) << context;
  EXPECT_EQ(oracle.empty_input, routed.empty_input) << context;
}

void ExpectGroupedBitwiseEqual(const db::GroupByResult& oracle,
                               const db::GroupByResult& routed,
                               const std::string& context) {
  EXPECT_EQ(oracle.rows_scanned, routed.rows_scanned) << context;
  ASSERT_EQ(oracle.cells.size(), routed.cells.size()) << context;
  for (size_t g = 0; g < oracle.cells.size(); ++g) {
    ASSERT_EQ(oracle.cells[g].size(), routed.cells[g].size()) << context;
    for (size_t a = 0; a < oracle.cells[g].size(); ++a) {
      ExpectBitwiseEqual(oracle.cells[g][a], routed.cells[g][a],
                         context + " cell " + std::to_string(g) + "/" +
                             std::to_string(a));
    }
  }
}

/// K shard servers on loopback: one partial-only Listener per stripe of
/// `sharded`, plus the endpoint list a Coordinator dials.
class ShardCluster {
 public:
  explicit ShardCluster(const shard::ShardedTable& sharded,
                       net::PartialHandler* override_handler = nullptr,
                       size_t override_index = 0) {
    for (size_t i = 0; i < sharded.num_shards(); ++i) {
      services_.push_back(std::make_unique<ShardService>(sharded.shard(i)));
      net::PartialHandler* handler = services_.back().get();
      if (override_handler != nullptr && i == override_index) {
        handler = override_handler;
      }
      listeners_.push_back(std::make_unique<net::Listener>(nullptr));
      listeners_.back()->set_partial_handler(handler);
      const Status started = listeners_.back()->Start();
      EXPECT_TRUE(started.ok()) << started.message();
      endpoints_.push_back({"127.0.0.1", listeners_.back()->port()});
    }
  }

  ~ShardCluster() { Shutdown(); }

  void Shutdown() {
    for (auto& listener : listeners_) {
      if (listener != nullptr) listener->Shutdown();
    }
  }

  /// Kills one endpoint (further connects are refused).
  void Kill(size_t index) { listeners_[index]->Shutdown(); }

  /// Restarts a killed endpoint on its original port with its original
  /// stripe (the breaker-recovery scenario).
  void Restart(size_t index) {
    net::ListenerOptions options;
    options.port = endpoints_[index].port;
    listeners_[index] =
        std::make_unique<net::Listener>(nullptr, options);
    listeners_[index]->set_partial_handler(services_[index].get());
    const Status started = listeners_[index]->Start();
    ASSERT_TRUE(started.ok()) << started.message();
  }

  const std::vector<Endpoint>& endpoints() const { return endpoints_; }

 private:
  std::vector<std::unique_ptr<ShardService>> services_;
  std::vector<std::unique_ptr<net::Listener>> listeners_;
  std::vector<Endpoint> endpoints_;
};

/// Fast coordinator timeouts for fault tests: failures resolve in tens
/// of milliseconds instead of the production second-scale defaults.
CoordinatorOptions FastFailOptions() {
  CoordinatorOptions options;
  options.connect_timeout_ms = 200.0;
  options.request_timeout_ms = 250.0;
  options.max_retries = 1;
  options.retry_backoff_ms = 5.0;
  return options;
}

// ---------------------------------------------------------------------
// Differential: routed == local, byte for byte.
// ---------------------------------------------------------------------

TEST(DistDifferentialTest, RoutedGatherMatchesLocalScatterByteForByte) {
  for (int seed = 0; seed < kNumSeeds; ++seed) {
    Rng rng(kSeedBase + static_cast<uint64_t>(seed));
    testing::RandomTableOptions table_options;
    table_options.min_rows = 200;
    table_options.max_rows = 1200;
    table_options.dyadic_doubles = true;
    auto table = testing::RandomTable(&rng, table_options);

    for (const size_t num_shards : kShardCounts) {
      shard::ShardedTableOptions shard_options;
      shard_options.num_shards = num_shards;
      auto sharded = shard::ShardedTable::FromTable(*table, shard_options);
      ASSERT_TRUE(sharded.ok());
      const shard::ShardedSnapshot snapshot = (*sharded)->Snapshot();

      ShardCluster cluster(**sharded);
      Coordinator coordinator(cluster.endpoints());
      const std::string context = "seed " + std::to_string(seed) +
                                  " shards " + std::to_string(num_shards);

      const db::AggregateQuery aggregate =
          testing::RandomAggregateQuery(*table, &rng);
      shard::ScatterOptions local;
      auto oracle = shard::ScatterGather::Execute(snapshot, aggregate, local);
      shard::ScatterOptions remote;
      remote.backend = &coordinator;
      shard::ScatterStats stats;
      remote.stats = &stats;
      auto routed = shard::ScatterGather::Execute(snapshot, aggregate, remote);
      ASSERT_TRUE(oracle.ok()) << context;
      ASSERT_TRUE(routed.ok()) << context << ": "
                               << routed.status().message();
      ExpectBitwiseEqual(*oracle, *routed,
                         context + " " + aggregate.ToSql());
      EXPECT_EQ(stats.shards_total, num_shards) << context;
      EXPECT_EQ(stats.shards_dropped, 0u) << context;

      const db::GroupByQuery grouped =
          testing::RandomGroupByQuery(*table, &rng);
      auto grouped_oracle =
          shard::ScatterGather::ExecuteGrouped(snapshot, grouped, local);
      auto grouped_routed =
          shard::ScatterGather::ExecuteGrouped(snapshot, grouped, remote);
      ASSERT_TRUE(grouped_oracle.ok()) << context;
      ASSERT_TRUE(grouped_routed.ok())
          << context << ": " << grouped_routed.status().message();
      ExpectGroupedBitwiseEqual(*grouped_oracle, *grouped_routed,
                                context + " " + grouped.ToSql());
    }
  }
}

// ---------------------------------------------------------------------
// Fault injection: drops, never hangs.
// ---------------------------------------------------------------------

std::shared_ptr<db::Table> SmallDyadicTable(uint64_t seed) {
  Rng rng(seed);
  testing::RandomTableOptions options;
  options.min_rows = 300;
  options.max_rows = 600;
  options.dyadic_doubles = true;
  return testing::RandomTable(&rng, options);
}

TEST(DistFaultTest, DeadEndpointDegradesToADroppedStripeFast) {
  auto table = SmallDyadicTable(9001);
  shard::ShardedTableOptions shard_options;
  shard_options.num_shards = 3;
  auto sharded = shard::ShardedTable::FromTable(*table, shard_options);
  ASSERT_TRUE(sharded.ok());

  ShardCluster cluster(**sharded);
  cluster.Kill(1);
  Coordinator coordinator(cluster.endpoints(), FastFailOptions());

  Rng rng(9001);
  const db::AggregateQuery query =
      testing::RandomAggregateQuery(*table, &rng);
  StopWatch timer;
  auto outcomes = coordinator.ExecutePartialAll(
      query, Deadline::AfterMillis(5000.0));
  // Connection refused fails fast; with one retry the whole gather
  // resolves far below the deadline — and far below a hang.
  EXPECT_LT(timer.ElapsedMillis(), 4000.0);
  ASSERT_EQ(outcomes.size(), 3u);
  ASSERT_TRUE(outcomes[0].ok());
  ASSERT_TRUE(outcomes[1].ok());
  ASSERT_TRUE(outcomes[2].ok());
  EXPECT_FALSE(outcomes[0]->dropped);
  EXPECT_TRUE(outcomes[1]->dropped);
  EXPECT_FALSE(outcomes[2]->dropped);

  // Through the gather: result covers the surviving stripes, the drop
  // is reported, and nothing errors.
  shard::ScatterOptions remote;
  remote.backend = &coordinator;
  shard::ScatterStats stats;
  remote.stats = &stats;
  auto result = shard::ScatterGather::Execute((*sharded)->Snapshot(), query,
                                              remote);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(stats.shards_dropped, 1u);

  const DistStats dist_stats = coordinator.stats();
  EXPECT_GT(dist_stats.shards[1].transport_errors, 0u);
  EXPECT_GT(dist_stats.shards[1].dropped, 0u);
  EXPECT_GT(dist_stats.shards[1].retries, 0u);
}

/// Accepts the query, then sleeps (interruptibly) far past every
/// timeout — the stalled-shard scenario.
class StallingHandler : public net::PartialHandler {
 public:
  explicit StallingHandler(net::PartialHandler* inner) : inner_(inner) {}

  Result<net::PartialResult> HandlePartial(
      const net::PartialQuery& query) override {
    for (int i = 0; i < 1000 && !released_.load(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return inner_->HandlePartial(query);
  }

  void Release() { released_.store(true); }

 private:
  net::PartialHandler* const inner_;
  std::atomic<bool> released_{false};
};

TEST(DistFaultTest, StalledEndpointDropsAtTheAttemptTimeoutNeverHangs) {
  auto table = SmallDyadicTable(9002);
  shard::ShardedTableOptions shard_options;
  shard_options.num_shards = 2;
  auto sharded = shard::ShardedTable::FromTable(*table, shard_options);
  ASSERT_TRUE(sharded.ok());

  ShardService stalled_service((*sharded)->shard(1));
  StallingHandler stalling(&stalled_service);
  ShardCluster cluster(**sharded, &stalling, /*override_index=*/1);

  CoordinatorOptions options = FastFailOptions();
  options.request_timeout_ms = 150.0;
  options.max_retries = 0;
  Coordinator coordinator(cluster.endpoints(), options);

  Rng rng(9002);
  const db::AggregateQuery query =
      testing::RandomAggregateQuery(*table, &rng);
  StopWatch timer;
  auto outcomes = coordinator.ExecutePartialAll(
      query, Deadline::AfterMillis(5000.0));
  EXPECT_LT(timer.ElapsedMillis(), 4000.0);
  ASSERT_EQ(outcomes.size(), 2u);
  ASSERT_TRUE(outcomes[0].ok());
  ASSERT_TRUE(outcomes[1].ok());
  EXPECT_FALSE(outcomes[0]->dropped);
  EXPECT_TRUE(outcomes[1]->dropped);
  EXPECT_GT(coordinator.stats().shards[1].timeouts, 0u);

  stalling.Release();
  cluster.Shutdown();
}

// ---------------------------------------------------------------------
// Hedging.
// ---------------------------------------------------------------------

/// Stalls the first call only; every later call answers immediately.
/// The hedged duplicate of a straggling request therefore wins.
class FirstCallSlowHandler : public net::PartialHandler {
 public:
  explicit FirstCallSlowHandler(net::PartialHandler* inner) : inner_(inner) {}

  Result<net::PartialResult> HandlePartial(
      const net::PartialQuery& query) override {
    if (calls_.fetch_add(1) == 0) {
      for (int i = 0; i < 300 && !released_.load(); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    return inner_->HandlePartial(query);
  }

  void Release() { released_.store(true); }

 private:
  net::PartialHandler* const inner_;
  std::atomic<int> calls_{0};
  std::atomic<bool> released_{false};
};

TEST(DistHedgeTest, HedgedDuplicateOvertakesAStraggler) {
  auto table = SmallDyadicTable(9003);
  shard::ShardedTableOptions shard_options;
  shard_options.num_shards = 2;
  auto sharded = shard::ShardedTable::FromTable(*table, shard_options);
  ASSERT_TRUE(sharded.ok());

  ShardService slow_service((*sharded)->shard(0));
  FirstCallSlowHandler slow(&slow_service);
  ShardCluster cluster(**sharded, &slow, /*override_index=*/0);

  CoordinatorOptions options;
  options.request_timeout_ms = 10000.0;  // The hedge, not a timeout, saves us.
  options.max_retries = 0;
  options.hedge_delay_ms = 50.0;
  Coordinator coordinator(cluster.endpoints(), options);

  Rng rng(9003);
  const db::AggregateQuery query =
      testing::RandomAggregateQuery(*table, &rng);
  StopWatch timer;
  auto outcomes = coordinator.ExecutePartialAll(
      query, Deadline::AfterMillis(8000.0));
  const double elapsed_ms = timer.ElapsedMillis();
  ASSERT_EQ(outcomes.size(), 2u);
  ASSERT_TRUE(outcomes[0].ok());
  EXPECT_FALSE(outcomes[0]->dropped);  // The hedge answered; no drop.

  const DistStats stats = coordinator.stats();
  EXPECT_GE(stats.shards[0].hedges, 1u);
  EXPECT_GE(stats.shards[0].hedge_wins, 1u);
  // The straggler stalls 3s; the hedged path answers in tens of ms.
  EXPECT_LT(elapsed_ms, 2500.0);

  slow.Release();
  cluster.Shutdown();
}

// ---------------------------------------------------------------------
// Breaker: ejection and re-probe.
// ---------------------------------------------------------------------

TEST(DistBreakerTest, ConsecutiveFailuresEjectThenReprobeRecovers) {
  auto table = SmallDyadicTable(9004);
  shard::ShardedTableOptions shard_options;
  shard_options.num_shards = 2;
  auto sharded = shard::ShardedTable::FromTable(*table, shard_options);
  ASSERT_TRUE(sharded.ok());

  ShardCluster cluster(**sharded);
  CoordinatorOptions options = FastFailOptions();
  options.max_retries = 0;
  options.eject_after_failures = 2;
  options.reprobe_after_ms = 150.0;
  Coordinator coordinator(cluster.endpoints(), options);

  Rng rng(9004);
  const db::AggregateQuery query =
      testing::RandomAggregateQuery(*table, &rng);
  const Deadline deadline = Deadline::AfterMillis(5000.0);

  // Healthy first: the pool works, the breaker is closed.
  auto healthy = coordinator.ExecutePartialAll(query, deadline);
  ASSERT_TRUE(healthy[1].ok());
  EXPECT_FALSE(healthy[1]->dropped);

  cluster.Kill(1);
  // Two failed gathers trip the breaker (eject_after_failures = 2)...
  for (int i = 0; i < 2; ++i) {
    auto outcomes =
        coordinator.ExecutePartialAll(query, Deadline::AfterMillis(5000.0));
    ASSERT_TRUE(outcomes[1].ok());
    EXPECT_TRUE(outcomes[1]->dropped);
  }
  EXPECT_EQ(coordinator.stats().shards[1].ejections, 1u);

  // ...and while it is open, legs fail fast without dialing.
  auto ejected =
      coordinator.ExecutePartialAll(query, Deadline::AfterMillis(5000.0));
  ASSERT_TRUE(ejected[1].ok());
  EXPECT_TRUE(ejected[1]->dropped);
  EXPECT_GT(coordinator.stats().shards[1].fast_failures, 0u);
  // The healthy shard is untouched throughout.
  ASSERT_TRUE(ejected[0].ok());
  EXPECT_FALSE(ejected[0]->dropped);

  // Recovery: the endpoint comes back, the re-probe window opens, and
  // the next leg through closes the breaker.
  cluster.Restart(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  bool recovered = false;
  for (int i = 0; i < 20 && !recovered; ++i) {
    auto outcomes =
        coordinator.ExecutePartialAll(query, Deadline::AfterMillis(5000.0));
    ASSERT_TRUE(outcomes[1].ok());
    recovered = !outcomes[1]->dropped;
    if (!recovered) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  EXPECT_TRUE(recovered) << "breaker never closed after restart";
}

// ---------------------------------------------------------------------
// Engine integration: the router's serving path.
// ---------------------------------------------------------------------

std::string NormalizedAnswerBytes(MuveEngine::Answer answer) {
  return net::SerializeAnswerDeterministic(std::move(answer));
}

TEST(DistEngineTest, RemoteBackendAnswersByteIdenticalToLocalSharded) {
  Rng rng(4242);
  std::shared_ptr<db::Table> table = workload::Make311Table(1500, &rng);
  shard::ShardedTableOptions shard_options;
  shard_options.num_shards = 2;
  auto sharded = shard::ShardedTable::FromTable(*table, shard_options);
  ASSERT_TRUE(sharded.ok());
  std::shared_ptr<const shard::ShardedTable> view = *sharded;

  ShardCluster cluster(*view);
  Coordinator coordinator(cluster.endpoints());

  serve::ServerOptions local_options;
  local_options.num_workers = 2;
  serve::Server local_server(view, local_options);

  serve::ServerOptions routed_options = local_options;
  routed_options.sessions.engine.execution.remote_backend = &coordinator;
  serve::Server routed_server(view, routed_options);

  const char* transcripts[] = {
      "how many complaints in brooklyn",
      "average open hours for noise in queens",
      "max open hours in manhattan",
  };
  for (const char* transcript : transcripts) {
    auto local = local_server.Ask("s-local", Request::Text(transcript));
    auto routed = routed_server.Ask("s-routed", Request::Text(transcript));
    ASSERT_TRUE(local.ok()) << transcript;
    ASSERT_TRUE(routed.ok()) << transcript;
    EXPECT_EQ(routed->answer.execution.shards_dropped, 0u);
    EXPECT_EQ(NormalizedAnswerBytes(routed->answer),
              NormalizedAnswerBytes(local->answer))
        << transcript;
  }

  local_server.Drain();
  routed_server.Drain();
  EXPECT_GT(coordinator.stats().shards[0].requests, 0u);
}

TEST(DistEngineTest, KilledShardYieldsDegradedAnswerNotAnError) {
  Rng rng(4243);
  std::shared_ptr<db::Table> table = workload::Make311Table(1200, &rng);
  shard::ShardedTableOptions shard_options;
  shard_options.num_shards = 2;
  auto sharded = shard::ShardedTable::FromTable(*table, shard_options);
  ASSERT_TRUE(sharded.ok());
  std::shared_ptr<const shard::ShardedTable> view = *sharded;

  ShardCluster cluster(*view);
  Coordinator coordinator(cluster.endpoints(), FastFailOptions());

  serve::ServerOptions options;
  options.num_workers = 2;
  options.sessions.engine.execution.remote_backend = &coordinator;
  serve::Server server(view, options);

  cluster.Kill(1);
  StopWatch timer;
  auto served =
      server.Ask("s-degraded",
                 Request::Text("how many complaints in brooklyn"));
  // A dead stripe costs its data, never the answer — and never a hang.
  ASSERT_TRUE(served.ok()) << served.status().message();
  EXPECT_LT(timer.ElapsedMillis(), 30000.0);
  EXPECT_GT(served->answer.execution.shards_dropped, 0u);
  EXPECT_GE(static_cast<int>(served->answer.degradation.rung),
            static_cast<int>(Degradation::Rung::kDegradedPlan));
  EXPECT_GT(served->answer.degradation.shards_dropped, 0u);
  EXPECT_NE(served->answer.degradation.Describe().find("shards-dropped"),
            std::string::npos)
      << served->answer.degradation.Describe();
  server.Drain();
}

}  // namespace
}  // namespace muve::dist
