#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "core/brute_force_planner.h"
#include "core/greedy_planner.h"
#include "core/ilp_planner.h"
#include "core/query_template.h"
#include "testing/sanitizer.h"

namespace muve::core {
namespace {

db::AggregateQuery MakeQuery(
    db::AggregateFunction fn, const std::string& agg_column,
    const std::vector<std::pair<std::string, std::string>>& predicates) {
  db::AggregateQuery query;
  query.table = "t";
  query.function = fn;
  query.aggregate_column = agg_column;
  for (const auto& [column, value] : predicates) {
    query.predicates.push_back(
        db::Predicate::Equals(column, db::Value(value)));
  }
  return query;
}

/// A small candidate set: queries vary the value of one predicate (one
/// strong shared template) plus a couple of outliers.
CandidateSet SmallInstance(Rng* rng, size_t num_candidates) {
  static const char* kValues[] = {"v0", "v1", "v2", "v3", "v4", "v5",
                                  "v6", "v7"};
  static const char* kColumns[] = {"c0", "c1", "c2"};
  CandidateSet set;
  for (size_t i = 0; i < num_candidates; ++i) {
    const char* column = kColumns[rng->UniformInt(2)];
    const char* value = kValues[rng->UniformInt(8)];
    db::AggregateFunction fn = rng->Bernoulli(0.7)
                                   ? db::AggregateFunction::kCount
                                   : db::AggregateFunction::kAvg;
    std::string agg = fn == db::AggregateFunction::kCount ? "" : "m";
    set.Add(MakeQuery(fn, agg, {{column, value}}),
            rng->UniformDouble(0.05, 1.0));
  }
  set.Deduplicate();
  set.Normalize();
  set.SortByProbability();
  return set;
}

PlannerConfig TightConfig() {
  PlannerConfig config;
  config.geometry.max_rows = 1;
  config.geometry.width_px = 400.0;  // 10 bar units.
  config.cost_model.bar_cost_ms = 500.0;
  config.cost_model.plot_cost_ms = 2000.0;
  config.cost_model.miss_cost_ms = 20000.0;
  config.timeout_ms = 30000.0;
  return config;
}

// ---------------------------------------------------------------------
// Greedy planner basics.
// ---------------------------------------------------------------------

TEST(GreedyPlannerTest, EmptyCandidates) {
  GreedyPlanner planner;
  auto result = planner.Plan(CandidateSet(), TightConfig());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->multiplot.empty());
  EXPECT_NEAR(result->expected_cost, 20000.0, 1e-9);
}

TEST(GreedyPlannerTest, ProducesValidMultiplotsOnRandomInstances) {
  Rng rng(101);
  GreedyPlanner planner;
  const PlannerConfig config = TightConfig();
  for (int trial = 0; trial < 40; ++trial) {
    const CandidateSet set = SmallInstance(&rng, 3 + rng.UniformInt(10));
    auto result = planner.Plan(set, config);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->multiplot.Validate(config.geometry).ok());
    EXPECT_LE(result->expected_cost,
              config.cost_model.EmptyCost() + 1e-9);
    // The reported cost must match the evaluator.
    EXPECT_NEAR(result->expected_cost,
                config.cost_model.ExpectedCost(result->multiplot, set),
                1e-9);
  }
}

TEST(GreedyPlannerTest, ShowsMostLikelyCandidateWhenSpaceAllows) {
  Rng rng(5);
  GreedyPlanner planner;
  PlannerConfig config = TightConfig();
  config.geometry.width_px = 1200.0;
  const CandidateSet set = SmallInstance(&rng, 8);
  auto result = planner.Plan(set, config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->multiplot.FindCandidate(0).has_value())
      << "most likely candidate missing from multiplot";
}

TEST(GreedyPlannerTest, NoCandidateShownTwiceAfterPolish) {
  Rng rng(7);
  GreedyPlanner planner;
  PlannerConfig config = TightConfig();
  config.geometry.max_rows = 2;
  config.geometry.width_px = 900.0;
  for (int trial = 0; trial < 20; ++trial) {
    const CandidateSet set = SmallInstance(&rng, 10);
    auto result = planner.Plan(set, config);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->multiplot.Validate(config.geometry).ok());
  }
}

TEST(GreedyPlannerTest, FastEvenForManyCandidates) {
  Rng rng(9);
  GreedyPlanner planner;
  PlannerConfig config = TightConfig();
  config.geometry.max_rows = 3;
  config.geometry.width_px = 1920.0;
  CandidateSet set = SmallInstance(&rng, 50);
  auto result = planner.Plan(set, config);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->optimize_millis, 1000.0);
  EXPECT_FALSE(result->timed_out);
}

// ---------------------------------------------------------------------
// ILP planner: exactness against brute force.
// ---------------------------------------------------------------------

class IlpVsBruteForceTest : public ::testing::TestWithParam<int> {};

TEST_P(IlpVsBruteForceTest, IlpMatchesBruteForceOptimum) {
  Rng rng(1000 + GetParam());
  const CandidateSet set = SmallInstance(&rng, 3 + rng.UniformInt(3));
  PlannerConfig config = TightConfig();
  config.geometry.width_px = 360.0;  // 9 units: forces real trade-offs.

  BruteForcePlanner brute_force;
  auto exact = brute_force.Plan(set, config);
  ASSERT_TRUE(exact.ok());

  IlpPlanner ilp;
  auto ilp_result = ilp.Plan(set, config);
  ASSERT_TRUE(ilp_result.ok());
  EXPECT_FALSE(ilp_result->timed_out);
  EXPECT_TRUE(ilp_result->multiplot.Validate(config.geometry).ok());
  EXPECT_NEAR(ilp_result->expected_cost, exact->expected_cost, 1e-4)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, IlpVsBruteForceTest,
                         ::testing::Range(0, 12));

class GreedyQualityTest : public ::testing::TestWithParam<int> {};

TEST_P(GreedyQualityTest, GreedyWithinApproximationBound) {
  Rng rng(2000 + GetParam());
  const CandidateSet set = SmallInstance(&rng, 3 + rng.UniformInt(3));
  PlannerConfig config = TightConfig();
  config.geometry.width_px = 360.0;

  BruteForcePlanner brute_force;
  auto exact = brute_force.Plan(set, config);
  ASSERT_TRUE(exact.ok());
  GreedyPlanner greedy;
  auto greedy_result = greedy.Plan(set, config);
  ASSERT_TRUE(greedy_result.ok());

  const double empty = config.cost_model.EmptyCost();
  const double optimal_savings = empty - exact->expected_cost;
  const double greedy_savings = empty - greedy_result->expected_cost;
  EXPECT_GE(greedy_savings, 0.0);
  if (optimal_savings > 1e-9) {
    // Theorem 4 bound for one row: O(1/(1+2r)) with r = 1 -> 1/3 of the
    // optimum (we check the bound honestly, without epsilon slack).
    EXPECT_GE(greedy_savings, optimal_savings / 3.0 - 1e-6)
        << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyQualityTest,
                         ::testing::Range(0, 12));

// ---------------------------------------------------------------------
// ILP timeout and incremental behaviour.
// ---------------------------------------------------------------------

TEST(IlpPlannerTest, TimeoutStillYieldsValidPlan) {
  Rng rng(55);
  const CandidateSet set = SmallInstance(&rng, 14);
  PlannerConfig config = TightConfig();
  config.geometry.max_rows = 2;
  config.timeout_ms = 5.0;  // Far too little for proof of optimality.
  IlpPlanner planner;
  auto result = planner.Plan(set, config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->multiplot.Validate(config.geometry).ok());
  EXPECT_LE(result->expected_cost, config.cost_model.EmptyCost() + 1e-9);
}

TEST(IlpPlannerTest, IncrementalSnapshotsImprove) {
  if (muve::testing::kSanitizerBuild) {
    GTEST_SKIP() << "wall-clock solver budget is meaningless under the "
                    "~10x sanitizer slowdown";
  }
  Rng rng(56);
  const CandidateSet set = SmallInstance(&rng, 8);
  PlannerConfig config = TightConfig();
  config.timeout_ms = 10000.0;
  IlpPlanner planner;
  auto snapshots = planner.PlanIncremental(set, config, 4.0, 2.0);
  ASSERT_TRUE(snapshots.ok());
  ASSERT_FALSE(snapshots->empty());
  // Expected cost of emitted plans never regresses.
  for (size_t i = 1; i < snapshots->size(); ++i) {
    EXPECT_LE((*snapshots)[i].plan.expected_cost,
              (*snapshots)[i - 1].plan.expected_cost + 1e-9);
  }
  // The last snapshot is proven optimal (ample total budget).
  EXPECT_FALSE(snapshots->back().plan.timed_out);
}

TEST(IlpPlannerTest, EmptyCandidates) {
  IlpPlanner planner;
  auto result = planner.Plan(CandidateSet(), TightConfig());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->multiplot.empty());
}

// ---------------------------------------------------------------------
// Processing-cost extension (paper §8.1).
// ---------------------------------------------------------------------

TEST(IlpPlannerTest, ZeroProcessingBudgetShowsNothing) {
  Rng rng(57);
  const CandidateSet set = SmallInstance(&rng, 5);
  PlannerConfig config = TightConfig();
  config.processing.mode = ProcessingCostMode::kConstraint;
  config.processing.cost_bound = 0.0;
  for (size_t i = 0; i < set.size(); ++i) {
    ProcessingGroup group;
    group.member_candidates = {i};
    group.cost = 10.0;  // Any selection would exceed the zero budget.
    config.processing.groups.push_back(group);
  }
  IlpPlanner planner;
  auto result = planner.Plan(set, config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->multiplot.empty());
  EXPECT_NEAR(result->expected_cost, config.cost_model.EmptyCost(), 1e-6);
}

TEST(IlpPlannerTest, LooseningProcessingBoundReducesDisambiguationCost) {
  Rng rng(58);
  const CandidateSet set = SmallInstance(&rng, 6);
  PlannerConfig base = TightConfig();
  base.processing.mode = ProcessingCostMode::kConstraint;
  for (size_t i = 0; i < set.size(); ++i) {
    ProcessingGroup group;
    group.member_candidates = {i};
    group.cost = 10.0;
    base.processing.groups.push_back(group);
  }
  IlpPlanner planner;
  PlannerConfig tight = base;
  tight.processing.cost_bound = 10.0;  // At most one candidate.
  PlannerConfig loose = base;
  loose.processing.cost_bound = 60.0;  // All candidates.
  auto tight_result = planner.Plan(set, tight);
  auto loose_result = planner.Plan(set, loose);
  ASSERT_TRUE(tight_result.ok());
  ASSERT_TRUE(loose_result.ok());
  EXPECT_LE(loose_result->expected_cost,
            tight_result->expected_cost + 1e-6);
  EXPECT_LE(tight_result->processing_cost, 10.0 + 1e-9);
}

TEST(IlpPlannerTest, ProcessingCostInObjectiveTradesOff) {
  Rng rng(59);
  const CandidateSet set = SmallInstance(&rng, 6);
  PlannerConfig config = TightConfig();
  config.processing.mode = ProcessingCostMode::kObjective;
  config.processing.objective_weight = 1.0;
  for (size_t i = 0; i < set.size(); ++i) {
    ProcessingGroup group;
    group.member_candidates = {i};
    group.cost = 1.0;  // Cheap: should not change the plan much.
    config.processing.groups.push_back(group);
  }
  IlpPlanner planner;
  auto result = planner.Plan(set, config);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->multiplot.empty());
  EXPECT_GT(result->processing_cost, 0.0);
}

// ---------------------------------------------------------------------
// Formulation size (Theorems 6 and 7: polynomial growth).
// ---------------------------------------------------------------------

TEST(IlpFormulationTest, SizeGrowsLinearlyInRows) {
  Rng rng(60);
  const CandidateSet set = SmallInstance(&rng, 8);
  PlannerConfig one_row = TightConfig();
  PlannerConfig three_rows = TightConfig();
  three_rows.geometry.max_rows = 3;
  auto f1 = BuildFormulation(set, one_row);
  auto f3 = BuildFormulation(set, three_rows);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f3.ok());
  EXPECT_GT(f3->model.num_variables(), f1->model.num_variables());
  // Row-indexed variables triple; per-query variables stay: growth is at
  // most a factor of 3.
  EXPECT_LE(f3->model.num_variables(), 3 * f1->model.num_variables());
  EXPECT_LE(f3->model.num_constraints(),
            3 * f1->model.num_constraints() + set.size() * 10);
}

TEST(IlpFormulationTest, SizePolynomialInQueries) {
  Rng rng(61);
  const CandidateSet small = SmallInstance(&rng, 4);
  const CandidateSet large = SmallInstance(&rng, 16);
  const PlannerConfig config = TightConfig();
  auto f_small = BuildFormulation(small, config);
  auto f_large = BuildFormulation(large, config);
  ASSERT_TRUE(f_small.ok());
  ASSERT_TRUE(f_large.ok());
  EXPECT_GT(f_large->model.num_variables(),
            f_small->model.num_variables());
  // Theorem 6 bound: O(n_p n_q n_r + n_q (n_q + n_p)). With n_q scaling
  // by 4 and n_p roughly by 4, quadratic-ish growth is allowed; cubic in
  // n_q alone is not.
  EXPECT_LE(f_large->model.num_variables(),
            64 * f_small->model.num_variables());
}

// ---------------------------------------------------------------------
// NP-hardness reduction (Theorem 5): multiplot selection solves
// knapsack exactly when c_B = c_P = 0 and D_M = 1.
// ---------------------------------------------------------------------

TEST(ReductionTest, MultiplotSelectionSolvesKnapsack) {
  Rng rng(62);
  // Items: one query per distinct predicate column => disjoint
  // templates, each plot holds exactly one result.
  const size_t num_items = 6;
  CandidateSet set;
  for (size_t i = 0; i < num_items; ++i) {
    // Column-name length varies the plot width (the item weight).
    std::string column(2 + rng.UniformInt(8), 'a' + static_cast<char>(i));
    set.Add(MakeQuery(db::AggregateFunction::kCount, "",
                      {{column, "v" + std::to_string(i)}}),
            rng.UniformDouble(0.1, 1.0));
  }
  set.Normalize();

  PlannerConfig config;
  config.geometry.max_rows = 1;
  config.geometry.width_px = 520.0;
  config.cost_model.bar_cost_ms = 0.0;
  config.cost_model.plot_cost_ms = 0.0;
  config.cost_model.miss_cost_ms = 1.0;
  config.timeout_ms = 60000.0;

  // Effective weight of item i: the cheapest template it instantiates.
  const std::vector<TemplateGroup> groups = GroupByTemplate(set);
  std::vector<int> weight(num_items, INT32_MAX);
  for (const TemplateGroup& group : groups) {
    const int width =
        config.geometry.PlotBaseUnits(group.query_template) + 1;
    for (size_t idx : group.member_queries) {
      weight[idx] = std::min(weight[idx], width);
    }
  }
  const int capacity = config.geometry.WidthUnits();

  // Exhaustive knapsack optimum over the 2^6 subsets.
  double best_mass = 0.0;
  for (uint32_t mask = 0; mask < (1u << num_items); ++mask) {
    int total_weight = 0;
    double mass = 0.0;
    for (size_t i = 0; i < num_items; ++i) {
      if (mask & (1u << i)) {
        total_weight += weight[i];
        mass += set[i].probability;
      }
    }
    if (total_weight <= capacity) best_mass = std::max(best_mass, mass);
  }

  IlpPlanner planner;
  auto result = planner.Plan(set, config);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->timed_out);
  // Expected cost = 1 - displayed mass; optimal <=> mass maximal.
  EXPECT_NEAR(result->expected_cost, 1.0 - best_mass, 1e-6);
}

// ---------------------------------------------------------------------
// Theory: Theorem 2 (prefix colorings), Lemma 1 (monotone savings),
// Theorem 3 (submodularity).
// ---------------------------------------------------------------------

Plot MakeAbstractPlot(const std::string& key,
                      const std::vector<size_t>& members,
                      const std::vector<char>& highlighted) {
  Plot plot;
  plot.query_template.key = key;
  plot.query_template.title = key;
  for (size_t i = 0; i < members.size(); ++i) {
    PlotBar bar;
    bar.candidate_index = members[i];
    bar.label = "m" + std::to_string(members[i]);
    bar.highlighted = highlighted[i];
    plot.bars.push_back(bar);
  }
  return plot;
}

CandidateSet RandomProbabilities(Rng* rng, size_t n) {
  CandidateSet set;
  for (size_t i = 0; i < n; ++i) {
    set.Add(MakeQuery(db::AggregateFunction::kCount, "",
                      {{"c", "v" + std::to_string(i)}}),
            rng->UniformDouble(0.01, 1.0));
  }
  set.Normalize();
  return set;
}

TEST(TheoryTest, Theorem2PrefixColoringNeverWorse) {
  // Swapping highlighting from a lower-probability bar to a
  // higher-probability bar in the same plot cannot increase cost.
  Rng rng(70);
  UserCostModel model;
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 3 + rng.UniformInt(5);
    CandidateSet set = RandomProbabilities(&rng, n);
    // Random highlighting.
    std::vector<size_t> members(n);
    std::vector<char> highlight(n, 0);
    for (size_t i = 0; i < n; ++i) members[i] = i;
    const size_t num_red = rng.UniformInt(n + 1);
    for (size_t i = 0; i < num_red; ++i) highlight[i] = true;
    rng.Shuffle(&highlight);

    Multiplot random_coloring;
    random_coloring.rows.push_back(
        {MakeAbstractPlot("p", members, highlight)});

    // Prefix coloring with the same count: highlight the num_red most
    // likely members (candidates are built in arbitrary order; sort).
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return set[a].probability > set[b].probability;
    });
    
    size_t red_count = 0;
    for (bool h : highlight) red_count += h ? 1 : 0;
    std::vector<char> prefix_by_member(n, 0);
    for (size_t i = 0; i < red_count; ++i) prefix_by_member[order[i]] = true;
    Multiplot prefix_coloring;
    prefix_coloring.rows.push_back(
        {MakeAbstractPlot("p", members, prefix_by_member)});

    EXPECT_LE(model.ExpectedCost(prefix_coloring, set),
              model.ExpectedCost(random_coloring, set) + 1e-9)
        << "trial " << trial;
  }
}

TEST(TheoryTest, Lemma1FirstPlotNeverHurts) {
  // The base case of Lemma 1 that follows rigorously from Assumption 1
  // (D_R, D_V < D_M): adding any plot to the EMPTY multiplot cannot
  // decrease cost savings, since the change is
  // delta_r_R (D_M - D_R) + delta_r_V (D_M - D_V) >= 0.
  Rng rng(71);
  UserCostModel model;
  model.miss_cost_ms = 100000.0;  // Assumption 1 for every configuration.
  for (int trial = 0; trial < 300; ++trial) {
    const size_t n = 3 + rng.UniformInt(6);
    CandidateSet set = RandomProbabilities(&rng, n);
    std::vector<size_t> members(n);
    for (size_t i = 0; i < n; ++i) members[i] = i;
    std::vector<char> highlight(n, 0);
    for (size_t i = 0; i < n; ++i) highlight[i] = rng.Bernoulli(0.4);
    Multiplot multiplot;
    multiplot.rows.push_back({MakeAbstractPlot("p", members, highlight)});
    EXPECT_GE(model.CostSavings(multiplot, set), -1e-9)
        << "trial " << trial;
  }
}

TEST(TheoryTest, Lemma1DoesNotHoldForNegligibleMassPlots) {
  // REPRODUCTION NOTE (documented in EXPERIMENTS.md): Lemma 1 as stated
  // in the paper ("cost savings are non-decreasing in the set of plots")
  // conflicts with the Delta-C expression in the paper's own Theorem 3
  // proof: a plot whose bars carry negligible probability still adds
  // reading cost for everyone (-r_R * Delta D_R - r_V * Delta D_V), so
  // savings can strictly decrease. The greedy solver is unaffected: it
  // only ever adds plots with positive marginal gain.
  UserCostModel model;
  model.miss_cost_ms = 100000.0;
  CandidateSet set;
  set.Add(MakeQuery(db::AggregateFunction::kCount, "", {{"c", "hi"}}),
          0.99);
  set.Add(MakeQuery(db::AggregateFunction::kCount, "", {{"c", "lo"}}),
          0.000001);
  Multiplot with_one;
  with_one.rows.push_back(
      {MakeAbstractPlot("a", {0}, std::vector<char>{1})});
  // The added plot highlights its negligible-mass bar: the extra red bar
  // and red plot raise D_R, which the dominant highlighted candidate
  // pays on every read.
  Multiplot with_two = with_one;
  with_two.rows[0].push_back(
      MakeAbstractPlot("b", {1}, std::vector<char>{1}));
  EXPECT_LT(model.CostSavings(with_two, set),
            model.CostSavings(with_one, set));
}

TEST(TheoryTest, Theorem3SubmodularSavings) {
  // For disjoint plots: savings(S1 + p) - savings(S1) >=
  // savings(S2 + p) - savings(S2) whenever S1 is a subset of S2.
  Rng rng(72);
  UserCostModel model;
  model.miss_cost_ms = 100000.0;  // Keep Assumption 1 satisfied.
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 9;
    CandidateSet set = RandomProbabilities(&rng, n);
    std::vector<size_t> perm = rng.Permutation(n);
    // Three disjoint plots: a, b (context), p (the added plot).
    auto make = [&](size_t begin, size_t count, const std::string& key) {
      std::vector<size_t> members(perm.begin() + begin,
                                  perm.begin() + begin + count);
      std::vector<char> highlight(count, 0);
      for (size_t i = 0; i < count; ++i) {
        highlight[i] = rng.Bernoulli(0.4);
      }
      return MakeAbstractPlot(key, members, highlight);
    };
    const Plot plot_a = make(0, 3, "a");
    const Plot plot_b = make(3, 3, "b");
    const Plot plot_p = make(6, 3, "p");

    Multiplot s1;
    s1.rows.push_back({plot_a});
    Multiplot s1_plus;
    s1_plus.rows.push_back({plot_a, plot_p});
    Multiplot s2;
    s2.rows.push_back({plot_a, plot_b});
    Multiplot s2_plus;
    s2_plus.rows.push_back({plot_a, plot_b, plot_p});

    const double delta_small =
        model.CostSavings(s1_plus, set) - model.CostSavings(s1, set);
    const double delta_large =
        model.CostSavings(s2_plus, set) - model.CostSavings(s2, set);
    EXPECT_GE(delta_small, delta_large - 1e-9) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------
// Brute-force planner sanity.
// ---------------------------------------------------------------------

TEST(BruteForcePlannerTest, RefusesHugeInstances) {
  Rng rng(73);
  CandidateSet set;
  for (int i = 0; i < 20; ++i) {
    set.Add(MakeQuery(db::AggregateFunction::kCount, "",
                      {{"c", "v" + std::to_string(i)}}),
            0.05);
  }
  BruteForcePlanner planner;
  EXPECT_FALSE(planner.Plan(set, TightConfig()).ok());
}

TEST(BruteForcePlannerTest, SingleCandidateShown) {
  CandidateSet set;
  set.Add(MakeQuery(db::AggregateFunction::kCount, "", {{"c", "v"}}), 1.0);
  BruteForcePlanner planner;
  auto result = planner.Plan(set, TightConfig());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->multiplot.FindCandidate(0).has_value());
  // Optimal: show and highlight the single candidate; expected cost is
  // D_R = c_B/2 + c_P/2.
  EXPECT_NEAR(result->expected_cost, 500.0 / 2 + 2000.0 / 2, 1e-6);
}

}  // namespace
}  // namespace muve::core

namespace muve::core {
namespace {

// ---------------------------------------------------------------------
// Warm starts (MIP starts, used by the presentation pipeline).
// ---------------------------------------------------------------------

TEST(WarmStartTest, GreedySolutionEncodesFeasibly) {
  Rng rng(81);
  for (int trial = 0; trial < 10; ++trial) {
    const CandidateSet set = SmallInstance(&rng, 4 + rng.UniformInt(6));
    const PlannerConfig config = TightConfig();
    GreedyPlanner greedy;
    auto greedy_plan = greedy.Plan(set, config);
    ASSERT_TRUE(greedy_plan.ok());
    auto formulation = BuildFormulation(set, config);
    ASSERT_TRUE(formulation.ok());
    const std::vector<double> encoded =
        EncodeWarmStart(*formulation, greedy_plan->multiplot);
    ASSERT_FALSE(encoded.empty()) << "trial " << trial;
    EXPECT_TRUE(formulation->model.IsFeasible(encoded))
        << "trial " << trial;
    // The encoded objective equals the evaluator's cost of the plan.
    EXPECT_NEAR(formulation->model.EvaluateObjective(encoded),
                greedy_plan->expected_cost, 1e-6)
        << "trial " << trial;
  }
}

TEST(WarmStartTest, HintedIlpNeverWorseThanHint) {
  Rng rng(82);
  const CandidateSet set = SmallInstance(&rng, 10);
  PlannerConfig config = TightConfig();
  config.timeout_ms = 30.0;  // Will time out; the hint must survive.
  GreedyPlanner greedy;
  auto greedy_plan = greedy.Plan(set, config);
  ASSERT_TRUE(greedy_plan.ok());
  IlpPlanner ilp;
  auto hinted =
      ilp.PlanWithHint(set, config, &greedy_plan->multiplot);
  ASSERT_TRUE(hinted.ok());
  EXPECT_LE(hinted->expected_cost, greedy_plan->expected_cost + 1e-6);
  EXPECT_TRUE(hinted->multiplot.Validate(config.geometry).ok());
}

TEST(WarmStartTest, EmptyMultiplotEncodesToZero) {
  Rng rng(83);
  const CandidateSet set = SmallInstance(&rng, 4);
  auto formulation = BuildFormulation(set, TightConfig());
  ASSERT_TRUE(formulation.ok());
  Multiplot empty;
  empty.rows.resize(1);
  const std::vector<double> encoded =
      EncodeWarmStart(*formulation, empty);
  ASSERT_EQ(encoded.size(), formulation->model.num_variables());
  for (double v : encoded) EXPECT_EQ(v, 0.0);
  EXPECT_TRUE(formulation->model.IsFeasible(encoded));
}

TEST(WarmStartTest, UnknownTemplateRejected) {
  Rng rng(84);
  const CandidateSet set = SmallInstance(&rng, 4);
  auto formulation = BuildFormulation(set, TightConfig());
  ASSERT_TRUE(formulation.ok());
  Multiplot bogus;
  bogus.rows.resize(1);
  Plot plot;
  plot.query_template.key = "no-such-template";
  plot.bars.push_back({0, "x", false, 0.0, false});
  bogus.rows[0].push_back(plot);
  EXPECT_TRUE(EncodeWarmStart(*formulation, bogus).empty());
}

}  // namespace
}  // namespace muve::core

namespace muve::core {
namespace {

// ---------------------------------------------------------------------
// Greedy ablation options.
// ---------------------------------------------------------------------

class GreedyVariantTest
    : public ::testing::TestWithParam<GreedyPlanner::Options> {};

TEST_P(GreedyVariantTest, EveryVariantYieldsValidPlans) {
  Rng rng(90);
  const GreedyPlanner planner(GetParam());
  PlannerConfig config = TightConfig();
  config.geometry.max_rows = 2;
  config.geometry.width_px = 900.0;
  for (int trial = 0; trial < 15; ++trial) {
    const CandidateSet set = SmallInstance(&rng, 4 + rng.UniformInt(8));
    auto plan = planner.Plan(set, config);
    ASSERT_TRUE(plan.ok());
    // Polish is precisely the stage removing duplicate results, so the
    // strict no-duplicates validation only applies when it runs; the
    // dimension constraints must hold for every variant.
    if (GetParam().enable_polish) {
      EXPECT_TRUE(plan->multiplot.Validate(config.geometry).ok());
    } else {
      EXPECT_LE(plan->multiplot.rows.size(),
                static_cast<size_t>(config.geometry.max_rows));
      for (const auto& row : plan->multiplot.rows) {
        int width = 0;
        for (const Plot& plot : row) {
          width += config.geometry.PlotWidthUnits(plot.query_template,
                                                  plot.bars.size());
        }
        EXPECT_LE(width, config.geometry.WidthUnits());
      }
    }
    EXPECT_LE(plan->expected_cost, config.cost_model.EmptyCost() + 1e-9);
    EXPECT_NEAR(plan->expected_cost,
                config.cost_model.ExpectedCost(plan->multiplot, set),
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, GreedyVariantTest,
    ::testing::Values(
        GreedyPlanner::Options{},
        GreedyPlanner::Options{
            .rule = GreedyPlanner::SelectionRule::kGainPerWidth},
        GreedyPlanner::Options{.rule = GreedyPlanner::SelectionRule::kGain},
        GreedyPlanner::Options{.enable_polish = false},
        GreedyPlanner::Options{.enable_singleton_comparison = false},
        GreedyPlanner::Options{.enable_coloring = false},
        GreedyPlanner::Options{
            .rule = GreedyPlanner::SelectionRule::kGainPerWidth,
            .enable_polish = false,
            .enable_singleton_comparison = false,
            .enable_coloring = false}));

TEST(GreedyVariantTest, FullAlgorithmNeverWorseThanBareMinimum) {
  Rng rng(91);
  const GreedyPlanner full;
  const GreedyPlanner bare(GreedyPlanner::Options{
      .rule = GreedyPlanner::SelectionRule::kGainPerWidth,
      .enable_polish = false,
      .enable_singleton_comparison = false,
      .enable_coloring = false});
  const PlannerConfig config = TightConfig();
  double full_total = 0.0;
  double bare_total = 0.0;
  for (int trial = 0; trial < 25; ++trial) {
    const CandidateSet set = SmallInstance(&rng, 5 + rng.UniformInt(8));
    full_total += full.Plan(set, config)->expected_cost;
    bare_total += bare.Plan(set, config)->expected_cost;
  }
  EXPECT_LE(full_total, bare_total + 1e-6);
}

}  // namespace
}  // namespace muve::core
