/// Tests for the sharded table (src/shard/): routing and merge edge
/// cases (empty shards, single-shard skew, groups split across shards),
/// plus the sharded-vs-unsharded differential suite — seeded random
/// workloads asserting that scatter-gather over 1/2/4 hash or range
/// shards reproduces the single-table oracle **byte-for-byte** across
/// shard thread counts, the vectorized and scalar executors, and cached
/// replays.
///
/// Byte identity across shard counts regroups the same additions, so
/// the differential tables opt into dyadic-grid doubles
/// (RandomTableOptions::dyadic_doubles): every partial SUM is exactly
/// representable and the merge order cannot change a single bit. The
/// edge-case tests use ordinary tables — COUNT/MIN/MAX are
/// order-invariant and need no grid.
///
/// MUVE_DIFF_SEEDS overrides the seed count (the `slow` CTest variant
/// raises it; every seed is self-contained).

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "db/executor.h"
#include "db/table.h"
#include "cache/query_cache.h"
#include "shard/scatter_gather.h"
#include "shard/sharded_table.h"
#include "testing/random_workload.h"

namespace muve::shard {
namespace {

int SeedCount() {
  const char* value = std::getenv("MUVE_DIFF_SEEDS");
  if (value == nullptr) return 210;
  const long parsed = std::strtol(value, nullptr, 10);
  return parsed > 0 ? static_cast<int>(parsed) : 210;
}

const int kNumSeeds = SeedCount();
constexpr uint64_t kSeedBase = 41000;

const size_t kShardCounts[] = {1, 2, 4};
const size_t kThreadCounts[] = {1, 2, 8};

void ExpectBitwiseEqual(const db::AggregateResult& oracle,
                        const db::AggregateResult& sharded,
                        const std::string& context) {
  EXPECT_EQ(oracle.value, sharded.value) << context;
  EXPECT_EQ(oracle.rows_matched, sharded.rows_matched) << context;
  EXPECT_EQ(oracle.empty_input, sharded.empty_input) << context;
}

void ExpectGroupedBitwiseEqual(const db::GroupByResult& oracle,
                               const db::GroupByResult& sharded,
                               const std::string& context) {
  ASSERT_EQ(oracle.cells.size(), sharded.cells.size()) << context;
  for (size_t g = 0; g < oracle.cells.size(); ++g) {
    ASSERT_EQ(oracle.cells[g].size(), sharded.cells[g].size()) << context;
    for (size_t a = 0; a < oracle.cells[g].size(); ++a) {
      ExpectBitwiseEqual(oracle.cells[g][a], sharded.cells[g][a],
                         context + " cell " + std::to_string(g) + "/" +
                             std::to_string(a));
    }
  }
}

// ---------------------------------------------------------------------
// Merge edge cases.
// ---------------------------------------------------------------------

std::shared_ptr<db::Table> TinyTable(size_t rows) {
  auto table = db::Table::Create(
      "tiny", {{"city", db::ValueType::kString},
               {"n", db::ValueType::kInt64}});
  EXPECT_TRUE(table.ok());
  const char* cities[] = {"ames", "boone", "cresco"};
  for (size_t r = 0; r < rows; ++r) {
    EXPECT_TRUE((*table)
                    ->AppendRow({db::Value(cities[r % 3]),
                                 db::Value(static_cast<int64_t>(r) - 2)})
                    .ok());
  }
  return std::move(table).value();
}

TEST(ShardedTableTest, EmptyShardsMergeCleanly) {
  // 3 rows over 8 shards: at least five shards are empty, and their
  // identity partials must not perturb any aggregate — in particular
  // MIN/MAX must come from data, never from an empty shard's sentinel.
  auto source = TinyTable(3);
  ShardedTableOptions options;
  options.num_shards = 8;
  auto sharded = ShardedTable::FromTable(*source, options);
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ((*sharded)->num_rows(), 3u);

  for (const db::AggregateFunction fn :
       {db::AggregateFunction::kCount, db::AggregateFunction::kSum,
        db::AggregateFunction::kMin, db::AggregateFunction::kMax,
        db::AggregateFunction::kAvg}) {
    db::AggregateQuery query;
    query.table = "tiny";
    query.function = fn;
    if (fn != db::AggregateFunction::kCount) query.aggregate_column = "n";
    const auto oracle = db::Executor::Execute(*source, query);
    ASSERT_TRUE(oracle.ok());
    const auto merged =
        ScatterGather::Execute((*sharded)->Snapshot(), query);
    ASSERT_TRUE(merged.ok());
    ExpectBitwiseEqual(*oracle, *merged, query.ToSql());
  }

  // A predicate no row matches: all shards produce empty partials and
  // the merged result must still be the legal empty aggregate.
  db::AggregateQuery none;
  none.table = "tiny";
  none.function = db::AggregateFunction::kMin;
  none.aggregate_column = "n";
  none.predicates.push_back(
      db::Predicate::Equals("city", db::Value("nowhere")));
  const auto oracle = db::Executor::Execute(*source, none);
  const auto merged = ScatterGather::Execute((*sharded)->Snapshot(), none);
  ASSERT_TRUE(oracle.ok());
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(merged->empty_input);
  ExpectBitwiseEqual(*oracle, *merged, none.ToSql());
}

TEST(ShardedTableTest, ConstantHashKeySkewsAllRowsToOneShard) {
  // Hash partitioning on a constant-valued column is the worst skew:
  // every row routes to the same shard and the other shards stay empty.
  auto source = db::Table::Create(
      "skew", {{"k", db::ValueType::kString},
               {"n", db::ValueType::kInt64}});
  ASSERT_TRUE(source.ok());
  for (int64_t r = 0; r < 100; ++r) {
    ASSERT_TRUE(
        (*source)->AppendRow({db::Value("same"), db::Value(r)}).ok());
  }
  ShardedTableOptions options;
  options.num_shards = 4;
  options.hash_column = "k";
  auto sharded = ShardedTable::FromTable(**source, options);
  ASSERT_TRUE(sharded.ok());

  const size_t home =
      (*sharded)->RouteRow({db::Value("same"), db::Value(int64_t{0})});
  size_t populated = 0;
  for (size_t s = 0; s < (*sharded)->num_shards(); ++s) {
    const size_t rows = (*sharded)->shard(s)->num_rows();
    if (rows > 0) {
      ++populated;
      EXPECT_EQ(s, home);
      EXPECT_EQ(rows, 100u);
    }
  }
  EXPECT_EQ(populated, 1u);

  db::AggregateQuery query;
  query.table = "skew";
  query.function = db::AggregateFunction::kSum;
  query.aggregate_column = "n";
  const auto oracle = db::Executor::Execute(**source, query);
  const auto merged = ScatterGather::Execute((*sharded)->Snapshot(), query);
  ASSERT_TRUE(oracle.ok());
  ASSERT_TRUE(merged.ok());
  ExpectBitwiseEqual(*oracle, *merged, query.ToSql());
}

TEST(ShardedTableTest, GroupsSplitAcrossShardsMergePerGroup) {
  // Sequence-hash routing scatters each city's rows over all shards, so
  // every group's aggregate is assembled from several per-shard
  // partials; an absent group must still come back empty, not zeroed.
  auto source = TinyTable(90);
  ShardedTableOptions options;
  options.num_shards = 4;
  auto sharded = ShardedTable::FromTable(*source, options);
  ASSERT_TRUE(sharded.ok());
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_GT((*sharded)->shard(s)->num_rows(), 0u) << "shard " << s;
    EXPECT_LT((*sharded)->shard(s)->num_rows(), 90u) << "shard " << s;
  }

  db::GroupByQuery query;
  query.table = "tiny";
  query.group_column = "city";
  query.group_values = {"ames", "boone", "cresco", "absent_group"};
  query.aggregates.push_back({db::AggregateFunction::kCount, ""});
  query.aggregates.push_back({db::AggregateFunction::kSum, "n"});
  query.aggregates.push_back({db::AggregateFunction::kMin, "n"});
  const auto oracle = db::Executor::ExecuteGrouped(*source, query);
  const auto merged =
      ScatterGather::ExecuteGrouped((*sharded)->Snapshot(), query);
  ASSERT_TRUE(oracle.ok());
  ASSERT_TRUE(merged.ok());
  ExpectGroupedBitwiseEqual(*oracle, *merged, query.ToSql());
  // The absent group matched nothing: COUNT is a legal 0, while MIN —
  // undefined over no rows — must report empty input, not a zeroed
  // sentinel leaked from an empty shard partial.
  for (const db::AggregateResult& cell : merged->cells.back()) {
    EXPECT_EQ(cell.rows_matched, 0u);
  }
  EXPECT_TRUE(merged->cells.back()[2].empty_input);
}

TEST(ShardedTableTest, RangePartitioningStripesAppendOrder) {
  auto source = TinyTable(10);
  ShardedTableOptions options;
  options.num_shards = 3;
  options.partitioning = Partitioning::kRange;
  options.range_stripe_rows = 2;
  auto sharded = ShardedTable::FromTable(*source, options);
  ASSERT_TRUE(sharded.ok());
  // Stripes of 2 rows round-robin over 3 shards: rows 0-1 and 6-7 on
  // shard 0, rows 2-3 and 8-9 on shard 1, rows 4-5 on shard 2.
  EXPECT_EQ((*sharded)->shard(0)->num_rows(), 4u);
  EXPECT_EQ((*sharded)->shard(1)->num_rows(), 4u);
  EXPECT_EQ((*sharded)->shard(2)->num_rows(), 2u);

  db::AggregateQuery query;
  query.table = "tiny";
  query.function = db::AggregateFunction::kMax;
  query.aggregate_column = "n";
  const auto oracle = db::Executor::Execute(*source, query);
  const auto merged = ScatterGather::Execute((*sharded)->Snapshot(), query);
  ASSERT_TRUE(oracle.ok());
  ASSERT_TRUE(merged.ok());
  ExpectBitwiseEqual(*oracle, *merged, query.ToSql());
}

TEST(ShardedTableTest, FromTablePreservesCatalogSurface) {
  Rng rng(4242);
  auto source = testing::RandomTable(&rng);
  ShardedTableOptions options;
  options.num_shards = 4;
  auto sharded = ShardedTable::FromTable(*source, options);
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ((*sharded)->num_rows(), source->num_rows());
  ASSERT_EQ((*sharded)->num_columns(), source->num_columns());
  for (size_t c = 0; c < source->num_columns(); ++c) {
    EXPECT_EQ((*sharded)->spec(c).name, source->spec(c).name);
    EXPECT_EQ((*sharded)->spec(c).type, source->spec(c).type);
    // Global statistics must match the single table: the same value on
    // several shards still counts once, and string vocabularies keep
    // first-appearance order of the global append sequence.
    EXPECT_EQ((*sharded)->DistinctCount(c), source->DistinctCount(c))
        << source->spec(c).name;
    if (source->spec(c).type == db::ValueType::kString) {
      EXPECT_EQ((*sharded)->StringValues(c), source->StringValues(c))
          << source->spec(c).name;
    }
  }
}

// ---------------------------------------------------------------------
// Sharded-vs-unsharded differential suite.
// ---------------------------------------------------------------------

class ShardDifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pool2_ = new ThreadPool(2);
    pool8_ = new ThreadPool(8);
  }
  static void TearDownTestSuite() {
    delete pool8_;
    pool8_ = nullptr;
    delete pool2_;
    pool2_ = nullptr;
  }

  static ThreadPool* PoolFor(size_t threads) {
    if (threads <= 1) return nullptr;
    return threads == 2 ? pool2_ : pool8_;
  }

  static ThreadPool* pool2_;
  static ThreadPool* pool8_;
};

ThreadPool* ShardDifferentialTest::pool2_ = nullptr;
ThreadPool* ShardDifferentialTest::pool8_ = nullptr;

/// Shard layouts the suite cycles through by seed: hash on the append
/// sequence, hash on the first string column (clustered groups), and
/// range stripes that deliberately misalign with run boundaries.
ShardedTableOptions LayoutFor(int seed, size_t num_shards) {
  ShardedTableOptions options;
  options.num_shards = num_shards;
  switch (seed % 3) {
    case 0:
      break;  // Sequence hash.
    case 1:
      options.hash_column = "s0";
      break;
    case 2:
      options.partitioning = Partitioning::kRange;
      options.range_stripe_rows = 137;
      break;
  }
  return options;
}

TEST_F(ShardDifferentialTest, ShardedScansMatchSingleTableByteForByte) {
  // The full matrix per seed: 1/2/4 shards x 1/2/8 shard threads x
  // vectorized/scalar x cached/uncached (cold + warm) — every cell must
  // reproduce the single-table serial scan bit-for-bit. Dyadic-grid
  // doubles make SUM/AVG exactly representable, so regrouping additions
  // across shard counts cannot legally change any bit.
  testing::RandomTableOptions table_options;
  table_options.min_rows = 300;
  table_options.max_rows = 1500;
  table_options.dyadic_doubles = true;
  for (int seed = 0; seed < kNumSeeds; ++seed) {
    Rng rng(kSeedBase + static_cast<uint64_t>(seed));
    auto table = testing::RandomTable(&rng, table_options);
    const db::AggregateQuery query =
        testing::RandomVecAggregateQuery(*table, &rng);
    const db::GroupByQuery grouped =
        testing::RandomVecGroupByQuery(*table, &rng);
    const auto oracle = db::Executor::Execute(*table, query);
    const auto oracle_grouped = db::Executor::ExecuteGrouped(*table, grouped);
    ASSERT_TRUE(oracle.ok()) << query.ToSql();
    ASSERT_TRUE(oracle_grouped.ok()) << grouped.ToSql();

    for (const size_t num_shards : kShardCounts) {
      auto sharded =
          ShardedTable::FromTable(*table, LayoutFor(seed, num_shards));
      ASSERT_TRUE(sharded.ok()) << "seed " << seed;
      const ShardedSnapshot snapshot = (*sharded)->Snapshot();
      ASSERT_EQ(snapshot.num_rows(), table->num_rows());

      for (const size_t threads : kThreadCounts) {
        for (const bool vectorize : {false, true}) {
          for (const bool cached : {false, true}) {
            ScatterOptions options;
            options.shard_pool = PoolFor(threads);
            options.executor.pool = PoolFor(threads);
            options.executor.vectorize = vectorize;
            options.executor.min_parallel_rows = 1;
            options.executor.parallel_grain = 193;
            // One cache shared across all shards (entries key on each
            // shard table's own id), fresh per configuration so the
            // cold pass stores and the warm pass replays.
            cache::QueryCache qcache(64);
            if (cached) options.executor.cache = &qcache;
            const std::string context =
                "seed " + std::to_string(seed) + " shards " +
                std::to_string(num_shards) + " threads " +
                std::to_string(threads) +
                (vectorize ? " vec" : " scalar") +
                (cached ? " cached " : " uncached ");
            const int replays = cached ? 2 : 1;
            for (int replay = 0; replay < replays; ++replay) {
              const auto merged =
                  ScatterGather::Execute(snapshot, query, options);
              ASSERT_TRUE(merged.ok()) << context << query.ToSql();
              ExpectBitwiseEqual(*oracle, *merged,
                                 context + query.ToSql());
              const auto merged_grouped = ScatterGather::ExecuteGrouped(
                  snapshot, grouped, options);
              ASSERT_TRUE(merged_grouped.ok()) << context << grouped.ToSql();
              ExpectGroupedBitwiseEqual(*oracle_grouped, *merged_grouped,
                                        context + grouped.ToSql());
            }
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace muve::shard
