/// Tests for the wire format and the TCP transport (src/net/):
/// primitive round-trips (bit-exact doubles, bounds-checked reads), the
/// table-driven StatusCode <-> wire error-code mapping over every
/// status code, Request/Answer/ServedAnswer codec round-trips (via
/// serialize -> parse -> reserialize byte equality on real pipeline
/// answers), a checked-in golden file pinning the v1 Answer encoding,
/// and an in-process Listener + Client end-to-end exchange over a real
/// loopback socket — including a quota rejection whose kOverloaded
/// status crosses the wire intact.
///
/// Regenerate the golden file after an intentional format change with
///   MUVE_WRITE_GOLDEN=1 ./net_test --gtest_filter='*Golden*'
/// (a version bump, since v1 bytes are a compatibility contract).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"
#include "muve/muve_engine.h"
#include "net/async_client.h"
#include "net/client.h"
#include "net/listener.h"
#include "net/socket.h"
#include "net/wire.h"
#include "serve/server.h"
#include "workload/datasets.h"

namespace muve::net {
namespace {

// ---------------------------------------------------------------------
// Primitives.
// ---------------------------------------------------------------------

TEST(WirePrimitivesTest, RoundTripsEveryPrimitive) {
  WireWriter w;
  w.PutU8(0xAB);
  w.PutBool(true);
  w.PutBool(false);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI64(-42);
  w.PutDouble(-0.0);
  w.PutString("hello wire");
  w.PutString("");  // Empty strings are legal.

  WireReader r(w.bytes());
  EXPECT_EQ(r.ReadU8().value(), 0xAB);
  EXPECT_TRUE(r.ReadBool().value());
  EXPECT_FALSE(r.ReadBool().value());
  EXPECT_EQ(r.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.ReadI64().value(), -42);
  const double negative_zero = r.ReadDouble().value();
  EXPECT_EQ(negative_zero, 0.0);
  EXPECT_TRUE(std::signbit(negative_zero));  // -0.0 survives, bit-exact.
  EXPECT_EQ(r.ReadString().value(), "hello wire");
  EXPECT_EQ(r.ReadString().value(), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(WirePrimitivesTest, DoublesAreBitExactIncludingNaNPayloads) {
  // Doubles travel as their IEEE-754 bit pattern: infinities, subnormals
  // and NaN payload bits all round-trip exactly.
  const uint64_t nan_payload_bits = 0x7FF800000000BEEFull;
  double weird_nan;
  static_assert(sizeof(weird_nan) == sizeof(nan_payload_bits));
  std::memcpy(&weird_nan, &nan_payload_bits, sizeof(weird_nan));
  const double cases[] = {std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity(),
                          std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::max(), weird_nan};
  for (const double value : cases) {
    WireWriter w;
    w.PutDouble(value);
    WireReader r(w.bytes());
    const double back = r.ReadDouble().value();
    uint64_t value_bits = 0, back_bits = 0;
    std::memcpy(&value_bits, &value, sizeof(value));
    std::memcpy(&back_bits, &back, sizeof(back));
    EXPECT_EQ(value_bits, back_bits);
  }
}

TEST(WirePrimitivesTest, TruncatedBuffersFailWithParseError) {
  WireWriter w;
  w.PutU64(7);
  w.PutString("abcdef");
  const std::string& full = w.bytes();
  // Every proper prefix must fail cleanly on some read, never crash or
  // fabricate data.
  for (size_t len = 0; len < full.size(); ++len) {
    WireReader r(std::string_view(full.data(), len));
    const auto u = r.ReadU64();
    if (!u.ok()) {
      EXPECT_EQ(u.status().code(), StatusCode::kParseError);
      continue;
    }
    const auto s = r.ReadString();
    ASSERT_FALSE(s.ok()) << "prefix " << len;
    EXPECT_EQ(s.status().code(), StatusCode::kParseError);
  }
  // A string whose declared length exceeds the buffer also fails.
  WireWriter lying;
  lying.PutU32(1000);
  lying.PutRaw("short");
  WireReader r(lying.bytes());
  const auto s = r.ReadString();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kParseError);
}

// ---------------------------------------------------------------------
// StatusCode <-> wire error code.
// ---------------------------------------------------------------------

struct StatusCodeCase {
  StatusCode code;
  uint8_t wire;
};

/// Every StatusCode with its frozen wire value. Append-only: new codes
/// get new wire values; these assignments never change.
constexpr StatusCodeCase kStatusCodeCases[] = {
    {StatusCode::kOk, 0},
    {StatusCode::kInvalidArgument, 1},
    {StatusCode::kNotFound, 2},
    {StatusCode::kOutOfRange, 3},
    {StatusCode::kFailedPrecondition, 4},
    {StatusCode::kUnimplemented, 5},
    {StatusCode::kTimeout, 6},
    {StatusCode::kInternal, 7},
    {StatusCode::kParseError, 8},
    {StatusCode::kInfeasible, 9},
    {StatusCode::kUnbounded, 10},
    {StatusCode::kOverloaded, 11},
};

TEST(StatusWireTest, EveryStatusCodeRoundTripsThroughItsFrozenWireValue) {
  for (const StatusCodeCase& c : kStatusCodeCases) {
    EXPECT_EQ(WireErrorCode(c.code), c.wire);
    const auto back = StatusCodeFromWire(c.wire);
    ASSERT_TRUE(back.ok()) << "wire code " << int(c.wire);
    EXPECT_EQ(*back, c.code);
  }
}

TEST(StatusWireTest, UnknownWireCodesFailWithParseError) {
  for (const uint8_t wire : {uint8_t{12}, uint8_t{100}, uint8_t{255}}) {
    const auto decoded = StatusCodeFromWire(wire);
    ASSERT_FALSE(decoded.ok()) << int(wire);
    EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
  }
}

TEST(StatusWireTest, EncodeDecodeCarriesCodeAndMessage) {
  for (const StatusCodeCase& c : kStatusCodeCases) {
    const Status original =
        c.code == StatusCode::kOk
            ? Status::OK()
            : Status(c.code, "detail for code " + std::to_string(c.wire));
    WireWriter w;
    EncodeStatus(original, &w);
    WireReader r(w.bytes());
    Status decoded;
    ASSERT_TRUE(DecodeStatus(&r, &decoded).ok());
    EXPECT_EQ(decoded.code(), original.code());
    EXPECT_EQ(decoded.message(), original.message());
  }
}

// ---------------------------------------------------------------------
// Request codec.
// ---------------------------------------------------------------------

TEST(RequestCodecTest, TextRequestRoundTripsWithAllControls) {
  Request request = Request::Text("show me complaints in queens");
  request.tenant_id = "tenant-a";
  request.bypass_cache = true;
  request.use_ilp = false;

  const auto parsed = ParseRequest(SerializeRequest(request));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->transcript, request.transcript);
  EXPECT_FALSE(parsed->voice);
  EXPECT_EQ(parsed->tenant_id, "tenant-a");
  EXPECT_TRUE(parsed->bypass_cache);
  ASSERT_TRUE(parsed->use_ilp.has_value());
  EXPECT_FALSE(*parsed->use_ilp);
  EXPECT_FALSE(parsed->deadline.IsFinite());
  // In-process-only hooks never cross the wire.
  EXPECT_EQ(parsed->rng, nullptr);
  EXPECT_FALSE(static_cast<bool>(parsed->stage_observer));
}

TEST(RequestCodecTest, VoiceRequestCarriesUtteranceAndNoise) {
  Rng rng(7);
  speech::SpeechNoiseOptions noise;
  noise.substitution_rate = 0.25;
  noise.deletion_rate = 0.05;
  noise.confusion_k = 3;
  Request request = Request::Voice("average delay in brooklyn", &rng, noise);

  const auto parsed = ParseRequest(SerializeRequest(request));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->voice);
  EXPECT_EQ(parsed->utterance, "average delay in brooklyn");
  EXPECT_EQ(parsed->noise.substitution_rate, 0.25);
  EXPECT_EQ(parsed->noise.deletion_rate, 0.05);
  EXPECT_EQ(parsed->noise.confusion_k, 3u);
  // The sender's RNG pointer is meaningless in the receiving process;
  // the serving side re-seeds from the session stream.
  EXPECT_EQ(parsed->rng, nullptr);
}

TEST(RequestCodecTest, FiniteDeadlineTravelsAsRemainingBudget) {
  Request request = Request::Text("count complaints");
  request.deadline = Deadline::AfterMillis(5000.0);
  const auto parsed = ParseRequest(SerializeRequest(request));
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->deadline.IsFinite());
  // Re-anchored on the receiver's clock: remaining budget is preserved
  // up to the (tiny) serialize/parse latency.
  const double remaining = parsed->deadline.RemainingMillis();
  EXPECT_GT(remaining, 3000.0);
  EXPECT_LE(remaining, 5000.0 + 1.0);

  Request unbounded = Request::Text("count complaints");
  const auto parsed_unbounded = ParseRequest(SerializeRequest(unbounded));
  ASSERT_TRUE(parsed_unbounded.ok());
  EXPECT_FALSE(parsed_unbounded->deadline.IsFinite());
}

TEST(RequestCodecTest, GarbageAndTruncationFailWithParseError) {
  EXPECT_EQ(ParseRequest("").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseRequest("\xFFgarbage").status().code(),
            StatusCode::kParseError);
  const std::string full =
      SerializeRequest(Request::Text("show me complaints"));
  for (size_t len = 0; len < full.size(); ++len) {
    const auto parsed = ParseRequest(std::string_view(full.data(), len));
    ASSERT_FALSE(parsed.ok()) << "prefix " << len;
  }
  // Trailing bytes after a complete message are a framing bug upstream.
  EXPECT_FALSE(ParseRequest(full + "x").ok());
}

// ---------------------------------------------------------------------
// Answer codec.
// ---------------------------------------------------------------------

std::shared_ptr<db::Table> TestTable() {
  Rng rng(777);
  return workload::Make311Table(1500, &rng);
}

/// A real pipeline answer with its wall-clock fields zeroed — everything
/// left is a deterministic function of the (seeded) table and the
/// transcript, which makes serialized bytes reproducible run to run.
MuveEngine::Answer DeterministicAnswer(const std::string& transcript) {
  MuveEngine engine(TestTable());
  auto answer = engine.Ask(Request::Text(transcript));
  EXPECT_TRUE(answer.ok()) << transcript;
  answer->timings = StageTimings{};
  answer->pipeline_millis = 0.0;
  answer->plan.optimize_millis = 0.0;
  answer->execution.measured_millis = 0.0;
  // Modeled time scales by a per-process cost-model calibration.
  answer->execution.modeled_millis = 0.0;
  return *std::move(answer);
}

TEST(AnswerCodecTest, PipelineAnswerReserializesByteIdentically) {
  // Serialize -> parse -> reserialize is a fixed point: if the parse
  // dropped or perturbed any field the second serialization would
  // differ somewhere in the bytes.
  const MuveEngine::Answer answer =
      DeterministicAnswer("how many complaints in brooklyn");
  const std::string first = SerializeAnswer(answer);
  const auto parsed = ParseAnswer(first);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->transcript, answer.transcript);
  EXPECT_EQ(parsed->base_query.ToSql(), answer.base_query.ToSql());
  EXPECT_EQ(parsed->candidates.size(), answer.candidates.size());
  EXPECT_EQ(SerializeAnswer(*parsed), first);
}

TEST(AnswerCodecTest, ServedAnswerRoundTripsServingMeasurements) {
  serve::ServedAnswer served;
  served.answer = DeterministicAnswer("average open hours for noise in queens");
  served.request_class = serve::RequestClass::kReplay;
  served.shared = true;
  served.queue_millis = 1.5;
  served.service_millis = 12.25;
  served.total_millis = 13.75;
  served.deadline_met = false;

  const std::string bytes = SerializeServedAnswer(served);
  const auto parsed = ParseServedAnswer(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->request_class, serve::RequestClass::kReplay);
  EXPECT_TRUE(parsed->shared);
  EXPECT_EQ(parsed->queue_millis, 1.5);
  EXPECT_EQ(parsed->service_millis, 12.25);
  EXPECT_EQ(parsed->total_millis, 13.75);
  EXPECT_FALSE(parsed->deadline_met);
  EXPECT_EQ(SerializeServedAnswer(*parsed), bytes);
}

#ifndef MUVE_GOLDEN_DIR
#define MUVE_GOLDEN_DIR "tests/golden"
#endif

TEST(AnswerCodecTest, GoldenFilePinsTheV1Encoding) {
  // The golden file freezes the v1 Answer bytes: a codec change that
  // silently re-encodes existing fields breaks old readers even when
  // round-trip tests still pass, and this test is what catches it.
  const std::string path =
      std::string(MUVE_GOLDEN_DIR) + "/answer_v1.bin";
  const MuveEngine::Answer answer =
      DeterministicAnswer("how many complaints in brooklyn");
  const std::string bytes = SerializeAnswer(answer);

  if (std::getenv("MUVE_WRITE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << path;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "golden regenerated: " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with MUVE_WRITE_GOLDEN=1)";
  std::ostringstream contents;
  contents << in.rdbuf();
  const std::string golden = contents.str();
  // The golden still parses (compatibility), and today's encoder still
  // produces exactly those bytes (stability).
  const auto parsed = ParseAnswer(golden);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->transcript, answer.transcript);
  EXPECT_EQ(bytes, golden);
}

// ---------------------------------------------------------------------
// Listener + Client end-to-end over loopback.
// ---------------------------------------------------------------------

class LoopbackTest : public ::testing::Test {
 protected:
  void StartServer(serve::ServerOptions options = {}) {
    options.num_workers = 2;
    server_ = std::make_unique<serve::Server>(TestTable(), options);
    listener_ = std::make_unique<Listener>(server_.get());
    ASSERT_TRUE(listener_->Start().ok());
    ASSERT_NE(listener_->port(), 0);
  }

  void TearDown() override {
    if (listener_ != nullptr) listener_->Shutdown();
    if (server_ != nullptr) server_->Drain();
  }

  std::unique_ptr<serve::Server> server_;
  std::unique_ptr<Listener> listener_;
};

TEST_F(LoopbackTest, PingAndAskOverARealSocket) {
  StartServer();
  auto client = Client::Connect("127.0.0.1", listener_->port());
  ASSERT_TRUE(client.ok()) << client.status().message();
  ASSERT_TRUE(client->Ping().ok());

  const auto served = client->Ask(Request::Text("how many complaints in brooklyn"));
  ASSERT_TRUE(served.ok()) << served.status().message();
  EXPECT_FALSE(served->answer.transcript.empty());
  EXPECT_FALSE(served->answer.base_query.table.empty());
  EXPECT_GE(served->service_millis, 0.0);

  // The networked answer is byte-identical to the in-process answer for
  // the same transcript (single codec, shared serving pipeline) — up to
  // the serving-side wall-clock measurements, which we zero on both.
  auto direct = server_->Ask(
      "direct-session", Request::Text("how many complaints in brooklyn"));
  ASSERT_TRUE(direct.ok());
  auto normalize = [](MuveEngine::Answer answer) {
    answer.timings = StageTimings{};
    answer.pipeline_millis = 0.0;
    answer.plan.optimize_millis = 0.0;
    answer.execution.measured_millis = 0.0;
    answer.execution.modeled_millis = 0.0;
    return SerializeAnswer(answer);
  };
  EXPECT_EQ(normalize(served->answer), normalize(direct->answer));

  const ListenerStats stats = listener_->stats();
  EXPECT_GE(stats.connections_accepted, 1u);
  EXPECT_GE(stats.requests_served, 1u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST_F(LoopbackTest, QuotaRejectionCrossesTheWireAsOverloaded) {
  serve::ServerOptions options;
  // One token, a refill rate that cannot restore it within the test:
  // the first request is admitted, the second is a deterministic quota
  // rejection.
  options.tenant_quotas["metered"] = {/*rate_qps=*/0.001, /*burst=*/1.0,
                                      /*weight=*/1.0};
  StartServer(options);
  auto client = Client::Connect("127.0.0.1", listener_->port());
  ASSERT_TRUE(client.ok());

  Request request = Request::Text("how many complaints in brooklyn");
  request.tenant_id = "metered";
  ASSERT_TRUE(client->Ask(request).ok());

  const auto rejected = client->Ask(request);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kOverloaded);
  // The tenant and its contract survive the encode/decode round trip.
  EXPECT_NE(rejected.status().message().find("metered"), std::string::npos)
      << rejected.status().message();
  EXPECT_NE(rejected.status().message().find("over quota"),
            std::string::npos)
      << rejected.status().message();

  // The connection survives an application-level rejection: the same
  // client keeps working as another tenant.
  EXPECT_TRUE(
      client->Ask(Request::Text("how many complaints in brooklyn")).ok());
}

TEST_F(LoopbackTest, ConcurrentClientsGetConsistentAnswers) {
  StartServer();
  const uint16_t port = listener_->port();
  constexpr int kClients = 4;
  std::vector<std::string> serialized(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      auto client = Client::Connect("127.0.0.1", port);
      if (!client.ok()) return;
      auto served = client->Ask(Request::Text("average open hours for noise in queens"));
      if (!served.ok()) return;
      auto answer = std::move(served->answer);
      answer.timings = StageTimings{};
      answer.pipeline_millis = 0.0;
      answer.plan.optimize_millis = 0.0;
      answer.execution.measured_millis = 0.0;
      answer.execution.modeled_millis = 0.0;
      serialized[i] = SerializeAnswer(answer);
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) {
    ASSERT_FALSE(serialized[i].empty()) << "client " << i;
    EXPECT_EQ(serialized[i], serialized[0]) << "client " << i;
  }
}

// ---------------------------------------------------------------------
// Partial-aggregate codec (the router's downstream messages).
// ---------------------------------------------------------------------

/// Deterministic sample messages: every field populated, including the
/// merge-identity extrema (+/-inf), which must cross the wire bit-exact
/// for routed answers to match local scatter-gather byte-for-byte.
PartialQuery SampleAggregateQuery() {
  PartialQuery query;
  query.kind = PartialQuery::Kind::kAggregate;
  query.aggregate.table = "f311";
  query.aggregate.function = db::AggregateFunction::kSum;
  query.aggregate.aggregate_column = "open_hours";
  query.aggregate.predicates.push_back(
      db::Predicate::Equals("city", db::Value("queens")));
  query.aggregate.predicates.push_back(db::Predicate::In(
      "complaint", {db::Value("noise"), db::Value("heating")}));
  return query;
}

PartialQuery SampleGroupedQuery() {
  PartialQuery query;
  query.kind = PartialQuery::Kind::kGrouped;
  query.grouped.table = "f311";
  query.grouped.shared_predicates.push_back(
      db::Predicate::Equals("status", db::Value("open")));
  query.grouped.group_column = "city";
  query.grouped.group_values = {"queens", "quincy"};
  query.grouped.aggregates.push_back(
      {db::AggregateFunction::kCount, ""});
  query.grouped.aggregates.push_back(
      {db::AggregateFunction::kAvg, "open_hours"});
  return query;
}

PartialResult SampleGroupedResult() {
  PartialResult result;
  result.kind = PartialQuery::Kind::kGrouped;
  result.snapshot_version = 41;
  result.rows_scanned = 1234;
  db::AggregatePartial populated;
  populated.count = 17;
  populated.sum = 42.5;
  populated.min = -3.25;
  populated.max = 99.0;
  // One populated cell, one untouched merge identity (count 0, +/-inf
  // extrema).
  result.grouped.cells = {{populated, db::AggregatePartial{}},
                          {db::AggregatePartial{}, populated}};
  return result;
}

TEST(PartialCodecTest, AggregateQueryRoundTripsByteIdentically) {
  const PartialQuery query = SampleAggregateQuery();
  const std::string bytes = SerializePartialQuery(query);
  const auto parsed = ParsePartialQuery(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->kind, PartialQuery::Kind::kAggregate);
  EXPECT_EQ(parsed->aggregate.ToSql(), query.aggregate.ToSql());
  EXPECT_FALSE(parsed->deadline.IsFinite());
  // Infinite deadline: serialize -> parse -> serialize is a fixed point.
  EXPECT_EQ(SerializePartialQuery(*parsed), bytes);
}

TEST(PartialCodecTest, GroupedQueryRoundTripsByteIdentically) {
  const PartialQuery query = SampleGroupedQuery();
  const std::string bytes = SerializePartialQuery(query);
  const auto parsed = ParsePartialQuery(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->kind, PartialQuery::Kind::kGrouped);
  EXPECT_EQ(parsed->grouped.ToSql(), query.grouped.ToSql());
  EXPECT_EQ(SerializePartialQuery(*parsed), bytes);
}

TEST(PartialCodecTest, FiniteDeadlineTravelsAsRemainingBudget) {
  FakeClock clock(1000.0);
  PartialQuery query = SampleAggregateQuery();
  query.deadline = Deadline::AfterMillis(250.0, &clock);
  clock.AdvanceMillis(100.0);  // 150ms left at serialization time.
  const std::string bytes = SerializePartialQuery(query);
  const auto parsed = ParsePartialQuery(bytes);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->deadline.IsFinite());
  // Re-anchored on the receiver's clock: roughly the remaining budget.
  EXPECT_GT(parsed->deadline.RemainingMillis(), 100.0);
  EXPECT_LE(parsed->deadline.RemainingMillis(), 150.0);
}

TEST(PartialCodecTest, ResultRoundTripsMergeIdentityBitExact) {
  const PartialResult result = SampleGroupedResult();
  const std::string bytes = SerializePartialResult(result);
  const auto parsed = ParsePartialResult(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->kind, PartialQuery::Kind::kGrouped);
  EXPECT_EQ(parsed->snapshot_version, 41u);
  EXPECT_EQ(parsed->rows_scanned, 1234u);
  ASSERT_EQ(parsed->grouped.cells.size(), 2u);
  const db::AggregatePartial& identity = parsed->grouped.cells[0][1];
  EXPECT_EQ(identity.count, 0u);
  EXPECT_EQ(identity.min, std::numeric_limits<double>::infinity());
  EXPECT_EQ(identity.max, -std::numeric_limits<double>::infinity());
  EXPECT_EQ(SerializePartialResult(*parsed), bytes);

  PartialResult aggregate;
  aggregate.kind = PartialQuery::Kind::kAggregate;
  aggregate.snapshot_version = 7;
  aggregate.rows_scanned = 99;
  aggregate.aggregate.count = 3;
  aggregate.aggregate.sum = 0.1 + 0.2;  // A non-representable double.
  const std::string aggregate_bytes = SerializePartialResult(aggregate);
  const auto aggregate_parsed = ParsePartialResult(aggregate_bytes);
  ASSERT_TRUE(aggregate_parsed.ok());
  EXPECT_EQ(SerializePartialResult(*aggregate_parsed), aggregate_bytes);
}

TEST(PartialCodecTest, GarbageSkewAndTruncationAreRejected) {
  EXPECT_EQ(ParsePartialQuery("").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParsePartialResult("").status().code(), StatusCode::kParseError);

  const std::string query_bytes = SerializePartialQuery(SampleGroupedQuery());
  const std::string result_bytes =
      SerializePartialResult(SampleGroupedResult());

  // Version skew: a newer version byte must be rejected, not misread.
  std::string skewed = query_bytes;
  skewed[0] = static_cast<char>(kWireVersion + 1);
  EXPECT_EQ(ParsePartialQuery(skewed).status().code(),
            StatusCode::kParseError);
  skewed = result_bytes;
  skewed[0] = static_cast<char>(kWireVersion + 1);
  EXPECT_EQ(ParsePartialResult(skewed).status().code(),
            StatusCode::kParseError);

  // Every proper prefix fails cleanly; trailing bytes are a framing bug.
  for (size_t len = 0; len < query_bytes.size(); ++len) {
    EXPECT_FALSE(
        ParsePartialQuery(std::string_view(query_bytes.data(), len)).ok())
        << "prefix " << len;
  }
  for (size_t len = 0; len < result_bytes.size(); ++len) {
    EXPECT_FALSE(
        ParsePartialResult(std::string_view(result_bytes.data(), len)).ok())
        << "prefix " << len;
  }
  EXPECT_FALSE(ParsePartialQuery(query_bytes + "x").ok());
  EXPECT_FALSE(ParsePartialResult(result_bytes + "x").ok());
}

TEST(PartialCodecTest, GoldenFilePinsTheV1Encoding) {
  // Pins the v1 bytes of both partial messages (length-prefixed, query
  // then result) the same way answer_v1.bin pins the Answer encoding.
  const std::string path =
      std::string(MUVE_GOLDEN_DIR) + "/partial_v1.bin";
  WireWriter combined;
  combined.PutString(SerializePartialQuery(SampleGroupedQuery()));
  combined.PutString(SerializePartialResult(SampleGroupedResult()));
  const std::string bytes = combined.Take();

  if (std::getenv("MUVE_WRITE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << path;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "golden regenerated: " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with MUVE_WRITE_GOLDEN=1)";
  std::ostringstream contents;
  contents << in.rdbuf();
  const std::string golden = contents.str();
  EXPECT_EQ(bytes, golden);
  WireReader reader(golden);
  const auto query_block = reader.ReadString();
  const auto result_block = reader.ReadString();
  ASSERT_TRUE(query_block.ok());
  ASSERT_TRUE(result_block.ok());
  EXPECT_TRUE(ParsePartialQuery(*query_block).ok());
  EXPECT_TRUE(ParsePartialResult(*result_block).ok());
}

// ---------------------------------------------------------------------
// Connect timeout and the non-blocking client.
// ---------------------------------------------------------------------

/// A listening socket whose backlog we saturate so further connection
/// attempts stall in SYN_SENT — the "unresponsive peer" a connect
/// timeout exists for. Plain loopback connects can't reproduce this
/// (they complete instantly), so the test manufactures it.
class SaturatedListener {
 public:
  bool Init() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, /*backlog=*/0) != 0) {
      return false;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                      &len) != 0) {
      return false;
    }
    port_ = ntohs(addr.sin_port);
    return true;
  }

  /// Fills the accept queue (never accepting) until a bounded connect
  /// attempt times out. False if this kernel keeps completing
  /// handshakes (then the test skips rather than flakes).
  bool Saturate() {
    for (int i = 0; i < 32; ++i) {
      Result<int> fd = ConnectFd("127.0.0.1", port_, 200.0);
      if (!fd.ok()) return fd.status().code() == StatusCode::kTimeout;
      fillers_.push_back(*fd);
    }
    return false;
  }

  uint16_t port() const { return port_; }

  ~SaturatedListener() {
    for (int fd : fillers_) ::close(fd);
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

 private:
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::vector<int> fillers_;
};

TEST(ConnectTimeoutTest, UnresponsivePeerYieldsTimeoutNotAHang) {
  SaturatedListener peer;
  ASSERT_TRUE(peer.Init());
  if (!peer.Saturate()) {
    GTEST_SKIP() << "could not saturate the accept backlog on this kernel";
  }
  StopWatch timer;
  auto client = Client::Connect("127.0.0.1", peer.port(),
                                /*connect_timeout_ms=*/100.0);
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kTimeout)
      << client.status().message();
  // Bounded by the timeout, not the kernel's minutes-long default.
  EXPECT_LT(timer.ElapsedMillis(), 5000.0);
}

TEST(AsyncClientTest, PingPongOverARealSocket) {
  Rng rng(777);
  serve::Server server(
      std::shared_ptr<const db::Table>(workload::Make311Table(500, &rng)));
  Listener listener(&server);
  ASSERT_TRUE(listener.Start().ok());

  auto client = AsyncClient::Connect("127.0.0.1", listener.port(), 250.0);
  ASSERT_TRUE(client.ok()) << client.status().message();
  const Deadline deadline = Deadline::AfterMillis(2000.0);
  ASSERT_TRUE(client->Send(FrameType::kPing, "", deadline).ok());
  auto frame = client->Receive(deadline);
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  EXPECT_EQ(frame->type, FrameType::kPong);

  // An unset stats provider answers the kStats probe with "{}".
  ASSERT_TRUE(client->Send(FrameType::kStats, "", deadline).ok());
  auto stats = client->Receive(deadline);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->type, FrameType::kStats);
  EXPECT_EQ(stats->payload, "{}");
  listener.Shutdown();
  server.Drain();
}

TEST(AsyncClientTest, ReceiveDeadlineBoundsASilentPeer) {
  // The peer completes the handshake (its backlog holds it) but never
  // reads or answers — Receive must return Timeout, not hang.
  SaturatedListener peer;
  ASSERT_TRUE(peer.Init());
  auto client = AsyncClient::Connect("127.0.0.1", peer.port(), 500.0);
  ASSERT_TRUE(client.ok()) << client.status().message();
  ASSERT_TRUE(
      client->Send(FrameType::kPing, "", Deadline::AfterMillis(500.0)).ok());
  StopWatch timer;
  auto frame = client->Receive(Deadline::AfterMillis(100.0));
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kTimeout);
  EXPECT_LT(timer.ElapsedMillis(), 5000.0);
}

}  // namespace
}  // namespace muve::net
