#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "viz/render_ascii.h"
#include "viz/render_svg.h"

namespace muve::viz {
namespace {

core::Multiplot SampleMultiplot() {
  core::Multiplot multiplot;
  multiplot.rows.resize(2);
  core::Plot plot_a;
  plot_a.query_template.title = "COUNT(*) WHERE borough = ?";
  plot_a.bars.push_back({0, "brooklyn", true, 120.0, false});
  plot_a.bars.push_back({1, "bronx", false, 60.0, false});
  core::Plot plot_b;
  plot_b.query_template.title = "AVG(open_hours) WHERE borough = 'bronx'";
  plot_b.bars.push_back({2, "AVG", false, 3.25, true});
  multiplot.rows[0].push_back(plot_a);
  multiplot.rows[1].push_back(plot_b);
  return multiplot;
}

TEST(AsciiRenderTest, ContainsTitlesLabelsAndValues) {
  AsciiRenderOptions options;
  options.use_color = false;
  const std::string text = RenderMultiplot(SampleMultiplot(), options);
  EXPECT_NE(text.find("COUNT(*) WHERE borough = ?"), std::string::npos);
  EXPECT_NE(text.find("brooklyn"), std::string::npos);
  EXPECT_NE(text.find("120"), std::string::npos);
  EXPECT_NE(text.find("3.25"), std::string::npos);
  EXPECT_NE(text.find("Row 1"), std::string::npos);
  EXPECT_NE(text.find("Row 2"), std::string::npos);
}

TEST(AsciiRenderTest, HighlightMarkerWithoutColor) {
  AsciiRenderOptions options;
  options.use_color = false;
  const std::string text = RenderMultiplot(SampleMultiplot(), options);
  EXPECT_NE(text.find(" *"), std::string::npos);
  EXPECT_EQ(text.find("\x1b[31m"), std::string::npos);
}

TEST(AsciiRenderTest, AnsiColorWhenEnabled) {
  AsciiRenderOptions options;
  options.use_color = true;
  const std::string text = RenderMultiplot(SampleMultiplot(), options);
  EXPECT_NE(text.find("\x1b[31m"), std::string::npos);
}

TEST(AsciiRenderTest, BarLengthProportionalToValue) {
  AsciiRenderOptions options;
  options.use_color = false;
  options.max_bar_chars = 30;
  const std::string text = RenderMultiplot(SampleMultiplot(), options);
  // brooklyn (120, the max) gets 30 '#', bronx (60) gets 15.
  EXPECT_NE(text.find(std::string(30, '#')), std::string::npos);
  EXPECT_NE(text.find("|" + std::string(15, '#') + " "),
            std::string::npos);
}

TEST(AsciiRenderTest, ApproximateMarker) {
  core::Multiplot multiplot = SampleMultiplot();
  EXPECT_NE(RenderMultiplot(multiplot, {.use_color = false})
                .find("3.25 ~"),
            std::string::npos);
}

TEST(AsciiRenderTest, EmptyMultiplot) {
  core::Multiplot empty;
  empty.rows.resize(1);
  EXPECT_EQ(RenderMultiplot(empty), "(empty multiplot)\n");
}

TEST(AsciiRenderTest, UnexecutedBarsShowQuestionMark) {
  core::Multiplot multiplot = SampleMultiplot();
  multiplot.rows[0][0].bars[0].value = std::nan("");
  const std::string text =
      RenderMultiplot(multiplot, {.use_color = false});
  EXPECT_NE(text.find("?"), std::string::npos);
}

TEST(SvgRenderTest, WellFormedDocument) {
  const std::string svg = RenderSvg(SampleMultiplot());
  EXPECT_EQ(svg.find("<svg"), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One rect per bar plus frames and background.
  size_t rects = 0;
  for (size_t pos = svg.find("<rect"); pos != std::string::npos;
       pos = svg.find("<rect", pos + 1)) {
    ++rects;
  }
  EXPECT_GE(rects, 3u + 2u);
}

TEST(SvgRenderTest, HighlightedBarUsesHighlightColor) {
  SvgRenderOptions options;
  const std::string svg = RenderSvg(SampleMultiplot(), options);
  EXPECT_NE(svg.find(options.bar_color), std::string::npos);
  // Row 0 bar 0 is highlighted.
  EXPECT_NE(svg.find(options.highlight_color), std::string::npos);
}

TEST(SvgRenderTest, ApproximateBarUsesApproxColor) {
  core::Multiplot multiplot = SampleMultiplot();
  multiplot.rows[1][0].bars[0].approximate = true;
  multiplot.rows[1][0].bars[0].highlighted = false;
  SvgRenderOptions options;
  const std::string svg = RenderSvg(multiplot, options);
  EXPECT_NE(svg.find(options.approx_color), std::string::npos);
}

TEST(SvgRenderTest, EscapesTitleMarkup) {
  core::Multiplot multiplot = SampleMultiplot();
  multiplot.rows[0][0].query_template.title = "a < b & c > d";
  const std::string svg = RenderSvg(multiplot);
  EXPECT_NE(svg.find("a &lt; b &amp; c &gt; d"), std::string::npos);
  EXPECT_EQ(svg.find("a < b & c > d"), std::string::npos);
}

TEST(SvgRenderTest, WriteSvgFile) {
  const std::string path = ::testing::TempDir() + "/muve_test.svg";
  EXPECT_TRUE(WriteSvgFile(SampleMultiplot(), path).ok());
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  EXPECT_FALSE(WriteSvgFile(SampleMultiplot(),
                            "/nonexistent_dir_zzz/out.svg")
                   .ok());
}

}  // namespace
}  // namespace muve::viz
