#include <gtest/gtest.h>

#include "common/rng.h"
#include "speech/speech_simulator.h"

namespace muve::speech {
namespace {

SpeechSimulator MakeSimulator() {
  return SpeechSimulator({"brooklyn", "bronx", "queens", "quincy",
                          "boston", "austin", "noise", "heating",
                          "heeding", "average", "many", "complaints"});
}

TEST(WordErrorRateTest, IdenticalIsZero) {
  EXPECT_DOUBLE_EQ(
      SpeechSimulator::WordErrorRate("how many in queens",
                                     "how many in queens"),
      0.0);
}

TEST(WordErrorRateTest, CaseInsensitive) {
  EXPECT_DOUBLE_EQ(SpeechSimulator::WordErrorRate("Hello World",
                                                  "hello world"),
                   0.0);
}

TEST(WordErrorRateTest, SingleSubstitution) {
  EXPECT_NEAR(SpeechSimulator::WordErrorRate("a b c d", "a x c d"), 0.25,
              1e-12);
}

TEST(WordErrorRateTest, DeletionAndInsertion) {
  EXPECT_NEAR(SpeechSimulator::WordErrorRate("a b c", "a c"), 1.0 / 3.0,
              1e-12);
  EXPECT_NEAR(SpeechSimulator::WordErrorRate("a c", "a b c"), 0.5, 1e-12);
}

TEST(WordErrorRateTest, EmptyReference) {
  EXPECT_DOUBLE_EQ(SpeechSimulator::WordErrorRate("", ""), 0.0);
  EXPECT_DOUBLE_EQ(SpeechSimulator::WordErrorRate("", "hi"), 1.0);
}

TEST(SpeechSimulatorTest, NoNoiseIsIdentity) {
  SpeechSimulator simulator = MakeSimulator();
  Rng rng(1);
  SpeechNoiseOptions options;
  options.substitution_rate = 0.0;
  options.deletion_rate = 0.0;
  EXPECT_EQ(simulator.Transcribe("how many in queens", &rng, options),
            "how many in queens");
}

TEST(SpeechSimulatorTest, DeterministicForSeed) {
  SpeechSimulator simulator = MakeSimulator();
  SpeechNoiseOptions options;
  options.substitution_rate = 0.5;
  Rng rng_a(7);
  Rng rng_b(7);
  EXPECT_EQ(
      simulator.Transcribe("average noise in brooklyn", &rng_a, options),
      simulator.Transcribe("average noise in brooklyn", &rng_b, options));
}

TEST(SpeechSimulatorTest, SubstitutionRateControlsWer) {
  SpeechSimulator simulator = MakeSimulator();
  Rng rng(13);
  SpeechNoiseOptions options;
  options.substitution_rate = 0.3;
  options.deletion_rate = 0.0;
  const std::string reference =
      "average heating complaints in brooklyn queens boston austin";
  double total_wer = 0.0;
  const int trials = 300;
  for (int i = 0; i < trials; ++i) {
    total_wer += SpeechSimulator::WordErrorRate(
        reference, simulator.Transcribe(reference, &rng, options));
  }
  // Expected WER roughly equals the substitution rate.
  EXPECT_NEAR(total_wer / trials, 0.3, 0.08);
}

TEST(SpeechSimulatorTest, SubstitutionsArePhoneticNeighbours) {
  SpeechSimulator simulator = MakeSimulator();
  Rng rng(17);
  SpeechNoiseOptions options;
  options.substitution_rate = 1.0;  // Always substitute.
  options.deletion_rate = 0.0;
  options.confusion_k = 1;          // Nearest neighbour only.
  // The nearest phonetic neighbour of "queens" in the lexicon is
  // "quincy" (identical Double Metaphone codes).
  int quincy = 0;
  const int trials = 50;
  for (int i = 0; i < trials; ++i) {
    if (simulator.Transcribe("queens", &rng, options) == "quincy") {
      ++quincy;
    }
  }
  EXPECT_EQ(quincy, trials);
}

TEST(SpeechSimulatorTest, DeletionDropsWords) {
  SpeechSimulator simulator = MakeSimulator();
  Rng rng(19);
  SpeechNoiseOptions options;
  options.substitution_rate = 0.0;
  options.deletion_rate = 1.0;
  EXPECT_EQ(simulator.Transcribe("drop all of this", &rng, options), "");
}

TEST(SpeechSimulatorTest, EmptyLexiconPassesThrough) {
  SpeechSimulator simulator({});
  Rng rng(23);
  SpeechNoiseOptions options;
  options.substitution_rate = 1.0;
  options.deletion_rate = 0.0;
  EXPECT_EQ(simulator.Transcribe("hello world", &rng, options),
            "hello world");
}

}  // namespace
}  // namespace muve::speech
