/// Differential lockdown of the indexed phonetic top-k engine.
///
/// The pruned, blocked, optionally parallel `PhoneticIndex::TopK` must be
/// *bit-identical* — entries, scores, and tie-break order — to the linear
/// scan it replaced, which survives behind
/// `PhoneticIndexOptions::brute_force = true` as the oracle (the same
/// lockdown pattern the vectorized executor uses). Seeded random
/// vocabularies mix plain ASCII words, accented (multi-byte UTF-8)
/// strings, empty and 1-character entries, and near-duplicate spellings;
/// every lookup is checked at k in {1, 3, 20, > vocabulary}, with
/// include_exact on and off, serially and on pools of 1, 2, and 8
/// threads (forced through the parallel sweep via a tiny
/// parallel_min_entries).
///
/// The pruning is provably lossless only if each upper bound in
/// bounds.h is admissible — never below the true Jaro-Winkler score of
/// the pair it bounds — so the bounds get their own randomized property
/// suite, including the adversarial repeated-symbol cases a
/// presence-bitmask bound would get wrong.
///
/// MUVE_DIFF_SEEDS overrides the seed count (the `slow` CTest variant
/// raises it; every seed is self-contained so any count reproduces).

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "phonetics/bounds.h"
#include "phonetics/phonetic_index.h"
#include "phonetics/similarity.h"
#include "testing/sanitizer.h"

namespace muve::phonetics {
namespace {

int SeedCount() {
  const char* value = std::getenv("MUVE_DIFF_SEEDS");
  if (value == nullptr) return 210;
  const int parsed = std::atoi(value);
  return parsed > 0 ? parsed : 210;
}

/// Words the random vocabularies draw syllables from: phonetically dense
/// (many near-collisions under Double Metaphone) to stress tie-breaking.
constexpr const char* kSyllables[] = {
    "bro", "brook", "lyn", "line", "kings", "queens", "quincy", "smith",
    "smyth", "noise", "heat", "heed", "park", "bark", "man", "mann",
    "hat", "tan", "ten", "ton", "phil", "fill", "carl", "karl",
};

/// Accented / multi-byte fragments: the index must treat them as opaque
/// bytes without ever diverging from the oracle.
constexpr const char* kAccents[] = {
    "caf\xc3\xa9", "r\xc3\xa9sum\xc3\xa9", "\xc3\xbc" "ber",
    "Z\xc3\xbcrich", "s\xc3\xa3o",
};

std::string RandomEntry(Rng& rng) {
  const uint64_t shape = rng.UniformInt(20);
  if (shape == 0) return "";  // Empty entry: encodes to empty codes.
  if (shape == 1) {           // 1-character entry.
    return std::string(1, static_cast<char>('a' + rng.UniformInt(26)));
  }
  if (shape <= 3) {  // Accented entry.
    return kAccents[rng.UniformInt(std::size(kAccents))];
  }
  std::string out;
  const size_t syllables = 1 + rng.UniformInt(3);
  for (size_t s = 0; s < syllables; ++s) {
    if (s > 0 && rng.UniformInt(3) == 0) out += ' ';
    out += kSyllables[rng.UniformInt(std::size(kSyllables))];
  }
  if (rng.UniformInt(4) == 0) out[0] = static_cast<char>(
      std::toupper(static_cast<unsigned char>(out[0])));
  return out;
}

std::vector<std::string> RandomVocabulary(Rng& rng, size_t size) {
  std::vector<std::string> vocabulary;
  vocabulary.reserve(size);
  for (size_t i = 0; i < size; ++i) vocabulary.push_back(RandomEntry(rng));
  return vocabulary;
}

void ExpectBitIdentical(const std::vector<PhoneticMatch>& oracle,
                        const std::vector<PhoneticMatch>& indexed,
                        const std::string& context) {
  ASSERT_EQ(oracle.size(), indexed.size()) << context;
  for (size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(oracle[i].entry, indexed[i].entry)
        << context << " rank " << i;
    // Bitwise: the indexed path must compute the very same doubles.
    EXPECT_EQ(oracle[i].similarity, indexed[i].similarity)
        << context << " rank " << i << " entry " << oracle[i].entry;
  }
}

TEST(PhoneticDifferentialTest, IndexedMatchesBruteForceAtEveryThreadCount) {
  // Pools are shared across seeds (thread churn is expensive under TSan).
  std::unique_ptr<ThreadPool> pools[] = {
      std::make_unique<ThreadPool>(1),
      std::make_unique<ThreadPool>(2),
      std::make_unique<ThreadPool>(8),
  };
  const int seeds = SeedCount();
  // Sanitizer builds run the same seed count with smaller vocabularies.
  const size_t max_vocabulary = muve::testing::kSanitizerBuild ? 160 : 400;

  for (int seed = 0; seed < seeds; ++seed) {
    Rng rng(0x9E0001 + static_cast<uint64_t>(seed));
    const size_t vocab_size = 20 + rng.UniformInt(max_vocabulary - 20);
    const std::vector<std::string> vocabulary =
        RandomVocabulary(rng, vocab_size);

    PhoneticIndexOptions oracle_options;
    oracle_options.brute_force = true;
    PhoneticIndex oracle(oracle_options);
    oracle.AddAll(vocabulary);

    PhoneticIndexOptions serial_options;  // Pruned, inline sweep.
    PhoneticIndex serial(serial_options);
    serial.AddAll(vocabulary);

    std::vector<PhoneticIndex> parallel;
    for (const auto& pool : pools) {
      PhoneticIndexOptions options;
      options.pool = pool.get();
      options.parallel_min_entries = 1;  // Force the pool path.
      parallel.emplace_back(options);
      parallel.back().AddAll(vocabulary);
    }

    ASSERT_EQ(oracle.size(), serial.size());

    // Queries: indexed entries (exact hits), fresh random strings
    // (misses), and the empty string.
    std::vector<std::string> queries;
    for (int q = 0; q < 3; ++q) {
      queries.push_back(vocabulary[rng.UniformInt(vocabulary.size())]);
      queries.push_back(RandomEntry(rng));
    }
    queries.push_back("");

    const size_t ks[] = {1, 3, 20, oracle.size() + 7};
    for (const std::string& query : queries) {
      for (size_t k : ks) {
        for (bool include_exact : {true, false}) {
          const std::string context =
              "seed " + std::to_string(seed) + " query '" + query +
              "' k " + std::to_string(k) +
              (include_exact ? " incl" : " excl");
          const std::vector<PhoneticMatch> expected =
              oracle.TopK(query, k, include_exact);
          PhoneticLookupStats stats;
          ExpectBitIdentical(
              expected, serial.TopK(query, k, include_exact, &stats),
              context + " serial");
          EXPECT_EQ(stats.vocabulary, serial.size()) << context;
          EXPECT_LE(stats.scored, stats.vocabulary) << context;
          EXPECT_LE(stats.seeded, stats.scored) << context;
          EXPECT_LE(stats.scored + stats.pruned_length + stats.pruned_mask,
                    stats.vocabulary)
              << context;
          for (size_t p = 0; p < parallel.size(); ++p) {
            ExpectBitIdentical(
                expected, parallel[p].TopK(query, k, include_exact),
                context + " pool " + std::to_string(p));
          }
        }
      }
    }
  }
}

TEST(PhoneticDifferentialTest, LookupStatsAreThreadCountInvariant) {
  // The sweep shares no state between chunks, so even the pruning
  // counters are deterministic and identical for every pool size.
  ThreadPool pool(8);
  Rng rng(0xFEED);
  const std::vector<std::string> vocabulary = RandomVocabulary(rng, 300);

  PhoneticIndexOptions serial_options;
  PhoneticIndex serial(serial_options);
  serial.AddAll(vocabulary);

  PhoneticIndexOptions parallel_options;
  parallel_options.pool = &pool;
  parallel_options.parallel_min_entries = 1;
  PhoneticIndex threaded(parallel_options);
  threaded.AddAll(vocabulary);

  for (const char* query : {"brooklyn", "smith", "kwinzy", ""}) {
    PhoneticLookupStats serial_stats;
    PhoneticLookupStats threaded_stats;
    serial.TopK(query, 5, /*include_exact=*/true, &serial_stats);
    threaded.TopK(query, 5, /*include_exact=*/true, &threaded_stats);
    EXPECT_EQ(serial_stats.seeded, threaded_stats.seeded) << query;
    EXPECT_EQ(serial_stats.pruned_length, threaded_stats.pruned_length)
        << query;
    EXPECT_EQ(serial_stats.pruned_mask, threaded_stats.pruned_mask)
        << query;
    EXPECT_EQ(serial_stats.scored, threaded_stats.scored) << query;
  }
}

// ---------------------------------------------------------------------
// Bound admissibility: no bound may ever fall below the true score of a
// pair it claims to bound (within the documented rounding slack, far
// smaller than the pruning slack the index applies).

constexpr double kAdmissibilityTolerance = 1e-12;

std::string RandomCodeLike(Rng& rng) {
  // Double Metaphone emits A-Z and '0'; empty codes happen for
  // non-alphabetic input.
  static constexpr char kAlphabet[] = "AKNPRSTX0LMFJH";
  const size_t length = rng.UniformInt(6);  // 0..5 (codes cap at 4).
  std::string out;
  for (size_t i = 0; i < length; ++i) {
    out += kAlphabet[rng.UniformInt(sizeof(kAlphabet) - 1)];
  }
  return out;
}

TEST(PhoneticBoundsTest, CodeBoundsAreAdmissible) {
  Rng rng(0xB0091);
  const int iterations = SeedCount() * 40;
  for (int i = 0; i < iterations; ++i) {
    const std::string a = RandomCodeLike(rng);
    const std::string b = RandomCodeLike(rng);
    const double truth = JaroWinklerSimilarity(a, b);
    const double mask_bound =
        CodePairUpperBound(a, CodeSymbolMask(a), b, CodeSymbolMask(b));
    const double length_bound = CodePairLengthUpperBound(a, b);
    EXPECT_GE(mask_bound, truth - kAdmissibilityTolerance)
        << "'" << a << "' vs '" << b << "'";
    EXPECT_GE(length_bound, truth - kAdmissibilityTolerance)
        << "'" << a << "' vs '" << b << "'";
    // The mask bound refines the length bound; both stay in [0, 1].
    EXPECT_LE(mask_bound, length_bound + kAdmissibilityTolerance);
    EXPECT_GE(mask_bound, 0.0);
    EXPECT_LE(mask_bound, 1.0);
  }
}

TEST(PhoneticBoundsTest, RepeatedSymbolsStayAdmissible) {
  // A presence-only bitmask bound would cap the match count of "LL" vs
  // "LL" at 1 (one distinct symbol) and underestimate the true score —
  // the multiset-aware bound must not.
  const struct {
    const char* a;
    const char* b;
  } kCases[] = {
      {"LL", "LL"},       {"LLLL", "LLL"},  {"AAAA", "AAAA"},
      {"ABAB", "BABA"},   {"SS", "SSSS"},   {"KKK", "K"},
      {"0000", "0000"},   {"TNTN", "NTNT"},
  };
  for (const auto& test_case : kCases) {
    const std::string a = test_case.a;
    const std::string b = test_case.b;
    const double truth = JaroWinklerSimilarity(a, b);
    EXPECT_GE(CodePairUpperBound(a, CodeSymbolMask(a), b, CodeSymbolMask(b)),
              truth - kAdmissibilityTolerance)
        << "'" << a << "' vs '" << b << "'";
    EXPECT_GE(SpellingUpperBound(a, ByteMask(a), b, ByteMask(b)),
              truth - kAdmissibilityTolerance)
        << "'" << a << "' vs '" << b << "'";
  }
}

TEST(PhoneticBoundsTest, SpellingBoundsAreAdmissible) {
  Rng rng(0x5BE11);
  const int iterations = SeedCount() * 40;
  for (int i = 0; i < iterations; ++i) {
    const std::string a = RandomEntry(rng);
    const std::string b = RandomEntry(rng);
    const double truth = JaroWinklerSimilarity(a, b);
    EXPECT_GE(SpellingUpperBound(a, ByteMask(a), b, ByteMask(b)),
              truth - kAdmissibilityTolerance)
        << "'" << a << "' vs '" << b << "'";
    EXPECT_GE(SpellingLengthUpperBound(a.size(), b.size()),
              truth - kAdmissibilityTolerance)
        << "'" << a << "' vs '" << b << "'";
  }
}

TEST(PhoneticBoundsTest, EmptyAndDisjointCornerCases) {
  // Both empty -> exactly 1 (matches JaroSimilarity's convention).
  EXPECT_EQ(CodePairUpperBound("", 0, "", 0), 1.0);
  EXPECT_EQ(SpellingUpperBound("", 0, "", 0), 1.0);
  EXPECT_EQ(SpellingLengthUpperBound(0, 0), 1.0);
  // One empty -> exactly 0.
  EXPECT_EQ(CodePairUpperBound("SM0", CodeSymbolMask("SM0"), "", 0), 0.0);
  EXPECT_EQ(SpellingLengthUpperBound(4, 0), 0.0);
  // Disjoint symbol sets -> 0, matching JaroWinklerSimilarity exactly
  // (zero matches also means zero common prefix).
  EXPECT_EQ(
      CodePairUpperBound("AK", CodeSymbolMask("AK"), "SM", CodeSymbolMask("SM")),
      0.0);
  EXPECT_EQ(JaroWinklerSimilarity("AK", "SM"), 0.0);
}

TEST(PhoneticBoundsTest, JaroUpperBoundDominatesJaro) {
  Rng rng(0x1A90);
  const int iterations = SeedCount() * 20;
  for (int i = 0; i < iterations; ++i) {
    const std::string a = RandomEntry(rng);
    const std::string b = RandomEntry(rng);
    // With the trivial match bound min(|a|, |b|) the Jaro bound must
    // dominate the true Jaro similarity.
    EXPECT_GE(JaroUpperBound(a.size(), b.size(),
                             std::min(a.size(), b.size())),
              JaroSimilarity(a, b) - kAdmissibilityTolerance)
        << "'" << a << "' vs '" << b << "'";
  }
}

TEST(PhoneticDifferentialTest, LargeVocabularyActuallyPrunes) {
  // Not a correctness requirement — bit-identity is — but the index is
  // pointless if the bounds never fire: on a few thousand entries a
  // top-20 lookup must skip full scoring for most of the vocabulary.
  Rng rng(0xCAFE);
  PhoneticIndex index{PhoneticIndexOptions{}};
  const size_t vocab = muve::testing::kSanitizerBuild ? 1000 : 4000;
  for (size_t i = 0; i < vocab; ++i) {
    index.Add(RandomEntry(rng) + "_" + std::to_string(i));
  }
  PhoneticLookupStats stats;
  index.TopK("brooklyn", 20, /*include_exact=*/true, &stats);
  EXPECT_GT(stats.PrunedFraction(), 0.5)
      << "scored " << stats.scored << " of " << stats.vocabulary;
}

}  // namespace
}  // namespace muve::phonetics
