#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "exec/engine.h"
#include "nlq/candidate_generator.h"
#include "nlq/schema_index.h"
#include "stats/stats.h"
#include "user/studies.h"
#include "user/user_simulator.h"
#include "workload/datasets.h"

namespace muve::user {
namespace {

core::Multiplot OnePlot(size_t bars, size_t red) {
  core::Multiplot multiplot;
  multiplot.rows.resize(1);
  core::Plot plot;
  plot.query_template.title = "plot";
  for (size_t i = 0; i < bars; ++i) {
    core::PlotBar bar;
    bar.candidate_index = i;
    bar.label = "b" + std::to_string(i);
    bar.highlighted = i < red;
    plot.bars.push_back(bar);
  }
  multiplot.rows[0].push_back(plot);
  return multiplot;
}

// ---------------------------------------------------------------------
// UserSimulator.
// ---------------------------------------------------------------------

TEST(UserSimulatorTest, FindsPresentTarget) {
  UserSimulator simulator;
  Rng rng(1);
  const auto outcome = simulator.FindTarget(OnePlot(5, 0), 3, &rng);
  EXPECT_TRUE(outcome.found);
  EXPECT_GT(outcome.millis, 0.0);
}

TEST(UserSimulatorTest, MissesAbsentTarget) {
  UserSimulator simulator;
  Rng rng(2);
  const auto outcome = simulator.FindTarget(OnePlot(5, 0), 99, &rng);
  EXPECT_FALSE(outcome.found);
  // Scanning everything costs at least 5 bar reads + 1 plot read.
  UserBehaviorModel model;
  EXPECT_GT(outcome.millis, model.base_latency_ms);
}

TEST(UserSimulatorTest, RedTargetFoundFasterOnAverage) {
  // Highlighting the target in a 12-bar plot must reduce mean search
  // time (the core premise of the coloring optimization).
  UserBehaviorModel model;
  model.noise_sigma = 0.2;
  UserSimulator simulator(model);
  Rng rng(3);
  double red_total = 0.0;
  double plain_total = 0.0;
  const int trials = 400;
  for (int i = 0; i < trials; ++i) {
    red_total += simulator.FindTarget(OnePlot(12, 1), 0, &rng).millis;
    plain_total += simulator.FindTarget(OnePlot(12, 0), 0, &rng).millis;
  }
  EXPECT_LT(red_total / trials, plain_total / trials);
}

TEST(UserSimulatorTest, MoreRedBarsSlowerForRedTarget) {
  UserBehaviorModel model;
  model.noise_sigma = 0.2;
  UserSimulator simulator(model);
  Rng rng(4);
  double few_red = 0.0;
  double many_red = 0.0;
  const int trials = 400;
  for (int i = 0; i < trials; ++i) {
    few_red += simulator.FindTarget(OnePlot(12, 2), 0, &rng).millis;
    many_red += simulator.FindTarget(OnePlot(12, 8), 0, &rng).millis;
  }
  EXPECT_LT(few_red / trials, many_red / trials);
}

TEST(UserSimulatorTest, MorePlotsSlower) {
  UserBehaviorModel model;
  model.noise_sigma = 0.2;
  UserSimulator simulator(model);
  Rng rng(5);
  // Same 12 bars in 1 plot vs 6 plots.
  core::Multiplot one_plot = OnePlot(12, 0);
  core::Multiplot six_plots;
  six_plots.rows.resize(1);
  for (size_t p = 0; p < 6; ++p) {
    core::Plot plot;
    plot.query_template.title = "p" + std::to_string(p);
    for (size_t b = 0; b < 2; ++b) {
      core::PlotBar bar;
      bar.candidate_index = p * 2 + b;
      plot.bars.push_back(bar);
    }
    six_plots.rows[0].push_back(plot);
  }
  double one_total = 0.0;
  double six_total = 0.0;
  const int trials = 400;
  for (int i = 0; i < trials; ++i) {
    one_total += simulator.FindTarget(one_plot, 5, &rng).millis;
    six_total += simulator.FindTarget(six_plots, 5, &rng).millis;
  }
  EXPECT_LT(one_total / trials, six_total / trials);
}

TEST(UserSimulatorTest, MeanTimeMatchesCostModelPrediction) {
  // For a red target among b_R red bars in one plot, the §4.2 model
  // predicts base + c_P + (b_R + 1)/2 * c_B (the "+1" because the model
  // counts the target bar itself; the plot is always understood once).
  UserBehaviorModel behavior;
  behavior.noise_sigma = 0.3;
  UserSimulator simulator(behavior);
  Rng rng(6);
  const size_t red = 5;
  double total = 0.0;
  const int trials = 3000;
  for (int i = 0; i < trials; ++i) {
    const size_t target = rng.UniformInt(red);
    total += simulator.FindTarget(OnePlot(12, red), target, &rng).millis;
  }
  const double predicted = behavior.base_latency_ms +
                           behavior.plot_read_ms +
                           (red + 1) / 2.0 * behavior.bar_read_ms;
  EXPECT_NEAR(total / trials, predicted, predicted * 0.06);
}

// ---------------------------------------------------------------------
// Perception study (Fig. 3 / Table 1).
// ---------------------------------------------------------------------

TEST(PerceptionStudyTest, ReproducesSignificancePattern) {
  PerceptionStudyConfig config;
  config.workers_per_task = 40;  // More power than the paper for a
                                 // deterministic test outcome.
  config.seed = 2021;
  const PerceptionStudyResults results = RunPerceptionStudy(config);

  // Paper Table 1: positions not significant, red-bar count and plot
  // count significant at p < 0.05.
  EXPECT_GT(results.bar_position.pearson.p_value, 0.05);
  EXPECT_GT(results.plot_position.pearson.p_value, 0.05);
  EXPECT_LT(results.num_red_bars.pearson.p_value, 0.05);
  EXPECT_LT(results.num_plots.pearson.p_value, 0.05);
  EXPECT_GT(results.num_plots.pearson.r_squared,
            results.bar_position.pearson.r_squared);
}

TEST(PerceptionStudyTest, HitAccounting) {
  PerceptionStudyConfig config;
  config.workers_per_task = 20;
  const PerceptionStudyResults results = RunPerceptionStudy(config);
  // 26 task types x 20 workers = 520 HITs (mirrors the paper).
  EXPECT_EQ(results.hits_submitted, 520u);
  EXPECT_LT(results.hits_completed, results.hits_submitted);
  EXPECT_GT(results.hits_completed, 520u / 3);
}

TEST(PerceptionStudyTest, FittedModelRecoversBehaviourConstants) {
  PerceptionStudyConfig config;
  config.workers_per_task = 200;  // Tight fit.
  config.seed = 7;
  const PerceptionStudyResults results = RunPerceptionStudy(config);
  const core::UserCostModel model =
      FitCostModel(results, config.behavior);
  EXPECT_NEAR(model.bar_cost_ms, config.behavior.bar_read_ms,
              config.behavior.bar_read_ms * 0.30);
  EXPECT_NEAR(model.plot_cost_ms, config.behavior.plot_read_ms,
              config.behavior.plot_read_ms * 0.30);
  EXPECT_DOUBLE_EQ(model.miss_cost_ms, config.behavior.requery_ms);
}

// ---------------------------------------------------------------------
// Comparison study (Fig. 12).
// ---------------------------------------------------------------------

TEST(ComparisonStudyTest, MuveBeatsDropdownBaseline) {
  ComparisonStudyConfig config;
  config.num_users = 4;          // Scaled down for test runtime.
  config.queries_per_dataset = 4;
  config.rows_per_dataset = 4000;
  auto results = RunComparisonStudy(config);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->datasets.size(), 2u);  // ads + dob (311 is warmup).
  for (const auto& per_dataset : results->datasets) {
    EXPECT_GT(per_dataset.muve_ms.mean, 0.0);
    EXPECT_GT(per_dataset.baseline_ms.mean, 0.0);
    EXPECT_LT(per_dataset.muve_ms.mean, per_dataset.baseline_ms.mean)
        << per_dataset.dataset;
  }
}

// ---------------------------------------------------------------------
// Rating study (Fig. 13).
// ---------------------------------------------------------------------

TEST(RatingStudyTest, ProducesBoundedRatingsForAllMethods) {
  Rng rng(12);
  auto table = workload::Make311Table(8000, &rng);
  exec::Engine engine(table);
  auto index = std::make_shared<nlq::SchemaIndex>(table);
  nlq::CandidateGenerator generator(index);
  db::AggregateQuery base;
  base.table = "nyc311";
  base.function = db::AggregateFunction::kCount;
  base.predicates = {
      db::Predicate::Equals("borough", db::Value("brooklyn"))};
  core::CandidateSet set = generator.Generate(base);

  RatingStudyConfig config;
  config.num_users = 10;
  auto ratings = RunRatingStudy(&engine, set, 0, config);
  ASSERT_TRUE(ratings.ok());
  EXPECT_EQ(ratings->size(), exec::AllPresentationMethods().size());
  for (const MethodRating& rating : *ratings) {
    EXPECT_GE(rating.latency_rating.mean, 1.0);
    EXPECT_LE(rating.latency_rating.mean, 10.0);
    EXPECT_GE(rating.clarity_rating.mean, 1.0);
    EXPECT_LE(rating.clarity_rating.mean, 10.0);
  }
}

}  // namespace
}  // namespace muve::user
