#ifndef MUVE_TESTS_TESTING_SANITIZER_H_
#define MUVE_TESTS_TESTING_SANITIZER_H_

/// Detection of sanitizer builds (see MUVE_SANITIZE in CMakeLists.txt).
///
/// Tests that assert wall-clock-budgeted solver behavior (e.g. "the ILP
/// proves optimality within its timeout") are meaningless under the
/// ~10x slowdown of ThreadSanitizer and skip themselves with this flag.
/// Race-sensitive tests must NOT use it — finding races under TSan is
/// the whole point of the sanitizer pass.

#if defined(__SANITIZE_THREAD__)
#define MUVE_THREAD_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MUVE_THREAD_SANITIZER 1
#endif
#endif

#if defined(__SANITIZE_ADDRESS__)
#define MUVE_ADDRESS_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MUVE_ADDRESS_SANITIZER 1
#endif
#endif

namespace muve::testing {

#ifdef MUVE_THREAD_SANITIZER
inline constexpr bool kThreadSanitizer = true;
#else
inline constexpr bool kThreadSanitizer = false;
#endif

#ifdef MUVE_ADDRESS_SANITIZER
inline constexpr bool kAddressSanitizer = true;
#else
inline constexpr bool kAddressSanitizer = false;
#endif

/// True in any sanitizer build: timing-sensitive assertions should be
/// skipped (GTEST_SKIP) because instrumentation slows execution ~10x.
inline constexpr bool kSanitizerBuild = kThreadSanitizer || kAddressSanitizer;

}  // namespace muve::testing

#endif  // MUVE_TESTS_TESTING_SANITIZER_H_
