#ifndef MUVE_TESTS_TESTING_FUZZ_MUTATOR_H_
#define MUVE_TESTS_TESTING_FUZZ_MUTATOR_H_

/// Deterministic fuzz-style input generation for the property tests
/// (tests/fuzz_property_test.cc): valid SQL texts assembled from random
/// query pieces, byte-level mutations of arbitrary strings, and random
/// words for the phonetic encoder. Everything derives from an Rng, so
/// every failure reproduces from its seed.

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>

#include "common/rng.h"
#include "db/query.h"
#include "db/value.h"

namespace muve::testing {

/// Reads a positive iteration count from an environment variable,
/// falling back to `default_iters` — how the slow CTest variants scale
/// the fuzz suites up without a recompile.
inline size_t FuzzIterations(const char* env_var, size_t default_iters) {
  const char* value = std::getenv(env_var);
  if (value == nullptr) return default_iters;
  const long parsed = std::strtol(value, nullptr, 10);
  return parsed > 0 ? static_cast<size_t>(parsed) : default_iters;
}

/// Random identifier: leading letter, then letters/digits/underscores.
inline std::string RandomIdentifier(Rng* rng) {
  static const std::string kLead = "abcdefghijklmnopqrstuvwxyz";
  static const std::string kBody = "abcdefghijklmnopqrstuvwxyz0123456789_";
  std::string out(1, kLead[rng->UniformInt(kLead.size())]);
  const size_t extra = rng->UniformInt(8);
  for (size_t i = 0; i < extra; ++i) {
    out += kBody[rng->UniformInt(kBody.size())];
  }
  return out;
}

/// Random literal of any Value type. Doubles are hundredths of integers
/// so their %g rendering never needs exponent notation (which the SQL
/// lexer does not read back); strings may embed quotes and spaces to
/// exercise the doubled-quote escape.
inline db::Value RandomLiteral(Rng* rng) {
  switch (rng->UniformInt(3)) {
    case 0:
      return db::Value(rng->UniformInRange(-100000, 100000));
    case 1:
      return db::Value(
          static_cast<double>(rng->UniformInRange(-99999, 99999)) / 100.0);
    default: {
      std::string text = RandomIdentifier(rng);
      if (rng->Bernoulli(0.2)) text += " " + RandomIdentifier(rng);
      if (rng->Bernoulli(0.15)) {
        text.insert(rng->UniformInt(text.size() + 1), 1, '\'');
      }
      return db::Value(std::move(text));
    }
  }
}

/// Random well-formed aggregate query (independent of any table — the
/// parser only checks syntax).
inline db::AggregateQuery RandomSqlQuery(Rng* rng) {
  db::AggregateQuery query;
  query.table = RandomIdentifier(rng);
  query.function = rng->Choice(db::AllAggregateFunctions());
  if (query.function != db::AggregateFunction::kCount ||
      rng->Bernoulli(0.5)) {
    query.aggregate_column = RandomIdentifier(rng);
  }
  const size_t num_predicates = rng->UniformInt(4);
  for (size_t p = 0; p < num_predicates; ++p) {
    db::Predicate predicate;
    predicate.column = RandomIdentifier(rng);
    if (rng->Bernoulli(0.3)) {
      predicate.op = db::PredicateOp::kIn;
      const size_t values = 1 + rng->UniformInt(3);
      for (size_t v = 0; v < values; ++v) {
        predicate.values.push_back(RandomLiteral(rng));
      }
    } else {
      predicate.op = db::PredicateOp::kEq;
      predicate.values.push_back(RandomLiteral(rng));
    }
    query.predicates.push_back(std::move(predicate));
  }
  return query;
}

/// Applies `edits` random byte-level edits: deletions, insertions from a
/// pool of SQL-significant characters, swaps, duplicated spans,
/// truncation, and occasional overlong digit runs (which overflow naive
/// numeric conversion).
inline std::string MutateBytes(Rng* rng, std::string text, size_t edits) {
  static const std::string kPool =
      " '()=,*.+-0123456789abcXYZ_\t\n\"%;<>";
  for (size_t e = 0; e < edits; ++e) {
    if (text.empty()) {
      text += kPool[rng->UniformInt(kPool.size())];
      continue;
    }
    switch (rng->UniformInt(6)) {
      case 0:  // Delete one byte.
        text.erase(rng->UniformInt(text.size()), 1);
        break;
      case 1:  // Insert one byte.
        text.insert(rng->UniformInt(text.size() + 1), 1,
                    kPool[rng->UniformInt(kPool.size())]);
        break;
      case 2: {  // Swap two bytes.
        const size_t a = rng->UniformInt(text.size());
        const size_t b = rng->UniformInt(text.size());
        std::swap(text[a], text[b]);
        break;
      }
      case 3: {  // Duplicate a short span.
        const size_t start = rng->UniformInt(text.size());
        const size_t len =
            std::min<size_t>(1 + rng->UniformInt(6), text.size() - start);
        text.insert(rng->UniformInt(text.size() + 1),
                    text.substr(start, len));
        break;
      }
      case 4:  // Truncate the tail.
        text.erase(text.size() - 1 - rng->UniformInt(text.size()) / 2);
        break;
      default:  // Overlong digit run, optionally signed.
        text.insert(rng->UniformInt(text.size() + 1),
                    (rng->Bernoulli(0.5) ? "-" : "") +
                        std::string(25 + rng->UniformInt(15), '9'));
        break;
    }
  }
  return text;
}

/// Random word for the phonetic encoder: mostly letters with occasional
/// digits, punctuation, and non-ASCII bytes (the encoder must ignore
/// them, not crash).
inline std::string RandomWord(Rng* rng) {
  static const std::string kAlpha = "abcdefghijklmnopqrstuvwxyz"
                                    "ABCDEFGHIJKLMNOPQRSTUVWXYZ";
  const size_t len = 1 + rng->UniformInt(14);
  std::string word;
  word.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    if (rng->Bernoulli(0.08)) {
      word += static_cast<char>(1 + rng->UniformInt(254));
    } else {
      word += kAlpha[rng->UniformInt(kAlpha.size())];
    }
  }
  return word;
}

}  // namespace muve::testing

#endif  // MUVE_TESTS_TESTING_FUZZ_MUTATOR_H_
