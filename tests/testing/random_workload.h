#ifndef MUVE_TESTS_TESTING_RANDOM_WORKLOAD_H_
#define MUVE_TESTS_TESTING_RANDOM_WORKLOAD_H_

/// Seeded random workload generation for the differential test harness
/// (tests/differential_test.cc): random tables, aggregate queries,
/// grouped queries, and candidate sets, all derived deterministically
/// from an Rng so every failure reproduces from its seed.

#include <algorithm>
#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/candidate.h"
#include "db/query.h"
#include "db/table.h"
#include "db/value.h"

namespace muve::testing {

/// Shape controls for RandomTable.
struct RandomTableOptions {
  size_t min_rows = 500;
  size_t max_rows = 4000;
  size_t min_string_columns = 2;
  size_t max_string_columns = 4;
  size_t min_numeric_columns = 1;
  size_t max_numeric_columns = 3;
  /// Distinct values per string column (small, so predicates both hit
  /// and miss and GROUP BY groups stay populated).
  size_t min_vocab = 3;
  size_t max_vocab = 8;
  /// Memtable flush threshold for the generated table. Small enough
  /// that every default-shaped random table (>= 500 rows) spans several
  /// columnar runs plus a memtable tail, so scans cross run boundaries
  /// (where per-run dictionaries, cache partials, and batch tiling all
  /// restart) and cached replays have run partials to hit.
  size_t flush_threshold = 256;
  /// Draw double values on a dyadic grid (multiples of 2^-10 within
  /// +/-500) instead of the continuous range. Every partial sum of such
  /// values is exactly representable, so SUM/AVG become associativity-
  /// independent: any regrouping of the additions — different shard
  /// counts, partition grains, merge orders — must produce bit-identical
  /// results, letting differential suites assert byte equality where
  /// arbitrary doubles would only allow a tolerance.
  bool dyadic_doubles = false;
};

/// Short pronounceable-ish vocabulary entries: "v<k>_<column>".
inline std::vector<std::string> MakeVocabulary(size_t column_index,
                                               size_t size) {
  std::vector<std::string> vocab;
  vocab.reserve(size);
  for (size_t k = 0; k < size; ++k) {
    vocab.push_back("v" + std::to_string(k) + "c" +
                    std::to_string(column_index));
  }
  return vocab;
}

/// Builds a random table: a few dictionary-encoded string columns with
/// small vocabularies and a few numeric columns (mixed int64/double,
/// values spanning sign changes so SUM/AVG exercise cancellation).
inline std::shared_ptr<db::Table> RandomTable(
    Rng* rng, const RandomTableOptions& options = {}) {
  const size_t num_string =
      static_cast<size_t>(rng->UniformInRange(
          static_cast<int64_t>(options.min_string_columns),
          static_cast<int64_t>(options.max_string_columns)));
  const size_t num_numeric =
      static_cast<size_t>(rng->UniformInRange(
          static_cast<int64_t>(options.min_numeric_columns),
          static_cast<int64_t>(options.max_numeric_columns)));
  std::vector<db::ColumnSpec> schema;
  std::vector<std::vector<std::string>> vocabularies;
  for (size_t c = 0; c < num_string; ++c) {
    schema.push_back({"s" + std::to_string(c), db::ValueType::kString});
    vocabularies.push_back(MakeVocabulary(
        c, static_cast<size_t>(rng->UniformInRange(
               static_cast<int64_t>(options.min_vocab),
               static_cast<int64_t>(options.max_vocab)))));
  }
  std::vector<bool> numeric_is_int;
  for (size_t c = 0; c < num_numeric; ++c) {
    const bool is_int = rng->Bernoulli(0.5);
    numeric_is_int.push_back(is_int);
    schema.push_back({"n" + std::to_string(c),
                      is_int ? db::ValueType::kInt64
                             : db::ValueType::kDouble});
  }
  db::TableOptions table_options;
  table_options.flush_threshold = options.flush_threshold;
  auto table = db::Table::Create("rand", schema, table_options);
  assert(table.ok());
  const size_t rows = static_cast<size_t>(
      rng->UniformInRange(static_cast<int64_t>(options.min_rows),
                          static_cast<int64_t>(options.max_rows)));
  for (size_t r = 0; r < rows; ++r) {
    std::vector<db::Value> row;
    row.reserve(schema.size());
    for (size_t c = 0; c < num_string; ++c) {
      row.emplace_back(rng->Choice(vocabularies[c]));
    }
    for (size_t c = 0; c < num_numeric; ++c) {
      if (numeric_is_int[c]) {
        row.emplace_back(rng->UniformInRange(-1000, 1000));
      } else if (options.dyadic_doubles) {
        row.emplace_back(
            static_cast<double>(rng->UniformInRange(-512000, 512000)) /
            1024.0);
      } else {
        row.emplace_back(rng->UniformDouble(-500.0, 500.0));
      }
    }
    const Status status = (*table)->AppendRow(row);
    assert(status.ok());
    (void)status;
  }
  return std::move(table).value();
}

/// Random equality predicate on a string column. With probability
/// `miss_probability` the constant is absent from the column's active
/// domain, producing a legally-zero-row scan (the empty-input cases the
/// parallel merge must preserve).
inline db::Predicate RandomPredicate(const db::Table& table, Rng* rng,
                                     double miss_probability = 0.15) {
  const std::vector<std::string> columns =
      table.ColumnNamesOfType(db::ValueType::kString);
  const std::string& column = rng->Choice(columns);
  if (rng->Bernoulli(miss_probability)) {
    return db::Predicate::Equals(column, db::Value("absent_value"));
  }
  const std::vector<std::string> domain = table.StringValues(column);
  return db::Predicate::Equals(column, db::Value(rng->Choice(domain)));
}

/// Random equality/IN predicate over any column type — the workload the
/// vectorized filter kernels cover: dictionary-code compares and accept
/// masks for string columns, single-key compares and IN loops for int64
/// and double columns. Each value independently misses the column's
/// active domain with probability `miss_probability` (on an empty table
/// every value misses), so scans legally match zero rows.
inline db::Predicate RandomVecPredicate(const db::Table& table, Rng* rng,
                                        double miss_probability = 0.15) {
  const size_t column_index = static_cast<size_t>(rng->UniformInRange(
      0, static_cast<int64_t>(table.num_columns()) - 1));
  const db::ColumnSpec& spec = table.spec(column_index);
  const size_t num_rows = table.num_rows();
  const std::vector<std::string> domain =
      spec.type == db::ValueType::kString ? table.StringValues(column_index)
                                          : std::vector<std::string>();
  const size_t list_size =
      rng->Bernoulli(0.5) ? 1
                          : static_cast<size_t>(rng->UniformInRange(2, 6));
  const auto random_row = [&] {
    return static_cast<size_t>(rng->UniformInRange(
        0, static_cast<int64_t>(num_rows) - 1));
  };
  std::vector<db::Value> values;
  values.reserve(list_size);
  for (size_t k = 0; k < list_size; ++k) {
    const bool miss = num_rows == 0 || rng->Bernoulli(miss_probability);
    switch (spec.type) {
      case db::ValueType::kString:
        values.emplace_back(miss || domain.empty()
                                ? "absent_value_" + std::to_string(k)
                                : rng->Choice(domain));
        break;
      case db::ValueType::kInt64:
        values.emplace_back(
            miss ? static_cast<int64_t>(1000000 + k)
                 : table.ValueAt(random_row(), column_index).AsInt64());
        break;
      case db::ValueType::kDouble:
        values.emplace_back(
            miss ? 1.0e6 + static_cast<double>(k)
                 : table.ValueAt(random_row(), column_index).AsDouble());
        break;
    }
  }
  return values.size() == 1
             ? db::Predicate::Equals(spec.name, values[0])
             : db::Predicate::In(spec.name, std::move(values));
}

/// Random single-aggregate query whose predicates span every vectorized
/// filter kernel: equality and IN over string, int64 and double columns,
/// possibly several on the same column (chained refine kernels over the
/// same data).
inline db::AggregateQuery RandomVecAggregateQuery(const db::Table& table,
                                                  Rng* rng) {
  db::AggregateQuery query;
  query.table = table.name();
  std::vector<std::string> numeric =
      table.ColumnNamesOfType(db::ValueType::kInt64);
  const std::vector<std::string> numeric_double =
      table.ColumnNamesOfType(db::ValueType::kDouble);
  numeric.insert(numeric.end(), numeric_double.begin(),
                 numeric_double.end());
  if (numeric.empty() || rng->Bernoulli(0.25)) {
    query.function = db::AggregateFunction::kCount;
  } else {
    query.function = rng->Choice(db::AllAggregateFunctions());
    if (query.function != db::AggregateFunction::kCount) {
      query.aggregate_column = rng->Choice(numeric);
    }
  }
  const size_t num_predicates =
      static_cast<size_t>(rng->UniformInRange(0, 3));
  for (size_t p = 0; p < num_predicates; ++p) {
    query.predicates.push_back(RandomVecPredicate(table, rng));
  }
  return query;
}

/// Random merged (GROUP BY) query whose shared predicates span the
/// vectorized kernels (any column type, equality and IN), instead of
/// RandomGroupByQuery's string-equality-only shared predicate. Safe on
/// empty tables (where RandomGroupByQuery's predicate choice is not):
/// the group list degenerates to the always-absent group value.
inline db::GroupByQuery RandomVecGroupByQuery(const db::Table& table,
                                              Rng* rng) {
  db::GroupByQuery query;
  query.table = table.name();
  const std::vector<std::string> string_columns =
      table.ColumnNamesOfType(db::ValueType::kString);
  query.group_column = rng->Choice(string_columns);
  for (const std::string& value : table.StringValues(query.group_column)) {
    if (rng->Bernoulli(0.8)) query.group_values.push_back(value);
  }
  // An absent group value: its cells must come back empty, not zeroed.
  query.group_values.push_back("absent_group");
  const size_t num_predicates =
      static_cast<size_t>(rng->UniformInRange(0, 2));
  for (size_t p = 0; p < num_predicates; ++p) {
    db::Predicate predicate = RandomVecPredicate(table, rng);
    if (predicate.column != query.group_column) {
      query.shared_predicates.push_back(std::move(predicate));
    }
  }
  std::vector<std::string> numeric =
      table.ColumnNamesOfType(db::ValueType::kInt64);
  const std::vector<std::string> numeric_double =
      table.ColumnNamesOfType(db::ValueType::kDouble);
  numeric.insert(numeric.end(), numeric_double.begin(),
                 numeric_double.end());
  const size_t num_aggregates =
      static_cast<size_t>(rng->UniformInRange(1, 3));
  for (size_t a = 0; a < num_aggregates; ++a) {
    db::AggregateSpec spec;
    if (numeric.empty() || rng->Bernoulli(0.3)) {
      spec.function = db::AggregateFunction::kCount;
    } else {
      spec.function = rng->Choice(db::AllAggregateFunctions());
      if (spec.function != db::AggregateFunction::kCount) {
        spec.column = rng->Choice(numeric);
      }
    }
    query.aggregates.push_back(std::move(spec));
  }
  return query;
}

/// Random single-aggregate query: uniformly chosen aggregate function
/// (COUNT(*) or SUM/AVG/MIN/MAX over a numeric column) plus 0-3
/// predicates on distinct string columns.
inline db::AggregateQuery RandomAggregateQuery(const db::Table& table,
                                               Rng* rng) {
  db::AggregateQuery query;
  query.table = table.name();
  const std::vector<std::string> numeric_int =
      table.ColumnNamesOfType(db::ValueType::kInt64);
  const std::vector<std::string> numeric_double =
      table.ColumnNamesOfType(db::ValueType::kDouble);
  std::vector<std::string> numeric = numeric_int;
  numeric.insert(numeric.end(), numeric_double.begin(),
                 numeric_double.end());
  if (numeric.empty() || rng->Bernoulli(0.25)) {
    query.function = db::AggregateFunction::kCount;
  } else {
    query.function = rng->Choice(db::AllAggregateFunctions());
    if (query.function != db::AggregateFunction::kCount) {
      query.aggregate_column = rng->Choice(numeric);
    }
  }
  const size_t num_predicates =
      static_cast<size_t>(rng->UniformInRange(0, 3));
  std::vector<std::string> used;
  for (size_t p = 0; p < num_predicates; ++p) {
    db::Predicate predicate = RandomPredicate(table, rng);
    bool duplicate = false;
    for (const std::string& name : used) {
      if (name == predicate.column) duplicate = true;
    }
    if (duplicate) continue;
    used.push_back(predicate.column);
    query.predicates.push_back(std::move(predicate));
  }
  return query;
}

/// Random merged (GROUP BY) query: an IN list over most of one string
/// column's domain (plus an always-absent group value) and 1-3
/// aggregates, with optional shared predicates.
inline db::GroupByQuery RandomGroupByQuery(const db::Table& table,
                                           Rng* rng) {
  db::GroupByQuery query;
  query.table = table.name();
  const std::vector<std::string> string_columns =
      table.ColumnNamesOfType(db::ValueType::kString);
  query.group_column = rng->Choice(string_columns);
  for (const std::string& value : table.StringValues(query.group_column)) {
    if (rng->Bernoulli(0.8)) query.group_values.push_back(value);
  }
  // An absent group value: its cells must come back empty, not zeroed.
  query.group_values.push_back("absent_group");
  if (rng->Bernoulli(0.5)) {
    db::Predicate shared = RandomPredicate(table, rng);
    if (shared.column != query.group_column) {
      query.shared_predicates.push_back(std::move(shared));
    }
  }
  const std::vector<std::string> numeric_int =
      table.ColumnNamesOfType(db::ValueType::kInt64);
  const std::vector<std::string> numeric_double =
      table.ColumnNamesOfType(db::ValueType::kDouble);
  std::vector<std::string> numeric = numeric_int;
  numeric.insert(numeric.end(), numeric_double.begin(),
                 numeric_double.end());
  const size_t num_aggregates =
      static_cast<size_t>(rng->UniformInRange(1, 3));
  for (size_t a = 0; a < num_aggregates; ++a) {
    db::AggregateSpec spec;
    if (numeric.empty() || rng->Bernoulli(0.3)) {
      spec.function = db::AggregateFunction::kCount;
    } else {
      spec.function = rng->Choice(db::AllAggregateFunctions());
      if (spec.function != db::AggregateFunction::kCount) {
        spec.column = rng->Choice(numeric);
      }
    }
    query.aggregates.push_back(std::move(spec));
  }
  return query;
}

/// Random candidate set with merge structure: a few "families" whose
/// members differ only in one predicate's constant (so the merger can
/// rewrite them into grouped queries), plus loose unmergeable singles
/// (no predicates, or a family of one).
inline core::CandidateSet RandomCandidateSet(const db::Table& table,
                                             Rng* rng,
                                             size_t max_candidates = 16) {
  core::CandidateSet set;
  const size_t families = static_cast<size_t>(rng->UniformInRange(1, 3));
  for (size_t f = 0; f < families && set.size() < max_candidates; ++f) {
    db::AggregateQuery base = RandomAggregateQuery(table, rng);
    if (base.predicates.empty()) {
      base.predicates.push_back(RandomPredicate(table, rng, 0.0));
    }
    // Vary the first predicate's constant over the column's domain.
    const std::vector<std::string> domain =
        table.StringValues(base.predicates.front().column);
    const size_t members = static_cast<size_t>(
        rng->UniformInRange(1, static_cast<int64_t>(
                                   std::min<size_t>(domain.size(), 5))));
    for (size_t m = 0; m < members && set.size() < max_candidates; ++m) {
      db::AggregateQuery member = base;
      member.predicates.front().values = {
          db::Value(domain[(m * 2 + f) % domain.size()])};
      set.Add(std::move(member), rng->UniformDouble(0.05, 1.0));
    }
  }
  // Unmergeable stragglers: predicate-free queries.
  while (rng->Bernoulli(0.3) && set.size() < max_candidates) {
    db::AggregateQuery query = RandomAggregateQuery(table, rng);
    query.predicates.clear();
    set.Add(std::move(query), rng->UniformDouble(0.05, 0.5));
  }
  set.Deduplicate();
  set.Normalize();
  set.SortByProbability();
  return set;
}

/// Tiny candidate set sized for the brute-force reference planner: one
/// family of at most `max_members` value variants of a single template.
inline core::CandidateSet TinyCandidateSet(const db::Table& table,
                                           Rng* rng,
                                           size_t max_members = 4) {
  core::CandidateSet set;
  db::AggregateQuery base = RandomAggregateQuery(table, rng);
  base.predicates.clear();
  base.predicates.push_back(RandomPredicate(table, rng, 0.0));
  const std::vector<std::string> domain =
      table.StringValues(base.predicates.front().column);
  const size_t members = static_cast<size_t>(rng->UniformInRange(
      2, static_cast<int64_t>(std::min(domain.size(), max_members))));
  for (size_t m = 0; m < members; ++m) {
    db::AggregateQuery member = base;
    member.predicates.front().values = {db::Value(domain[m])};
    set.Add(std::move(member), rng->UniformDouble(0.05, 1.0));
  }
  set.Deduplicate();
  set.Normalize();
  set.SortByProbability();
  return set;
}

}  // namespace muve::testing

#endif  // MUVE_TESTS_TESTING_RANDOM_WORKLOAD_H_
