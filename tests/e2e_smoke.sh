#!/usr/bin/env bash
# End-to-end smoke over a real socket: start muve_serve as a separate
# process on an ephemeral port, drive it with muve_loadgen over TCP,
# and require every request to come back (completed or deliberately
# shed — transport or protocol failures fail the test). Registered as
# a tier1 ctest; scripts/check.sh runs it with every suite.
#
# Usage: e2e_smoke.sh <muve_serve_binary> <muve_loadgen_binary>
set -u

SERVE_BIN="${1:?usage: e2e_smoke.sh <muve_serve> <muve_loadgen>}"
LOADGEN_BIN="${2:?usage: e2e_smoke.sh <muve_serve> <muve_loadgen>}"

WORKDIR="$(mktemp -d)"
SERVER_OUT="$WORKDIR/server.out"
SERVER_PID=""

cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -TERM "$SERVER_PID" 2>/dev/null
    wait "$SERVER_PID" 2>/dev/null
  fi
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

# Small table + 2 shards: the networked path exercises scatter-gather
# serving, not just the single-table oracle.
"$SERVE_BIN" --port=0 --rows=1500 --seed=7 --num_shards=2 --workers=2 \
  >"$SERVER_OUT" 2>&1 &
SERVER_PID=$!

# The server prints "LISTENING port=N" once the socket is ready.
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^LISTENING port=\([0-9][0-9]*\)$/\1/p' "$SERVER_OUT" |
    head -n 1)"
  [ -n "$PORT" ] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAIL: server exited before listening" >&2
    cat "$SERVER_OUT" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "FAIL: server never announced its port" >&2
  cat "$SERVER_OUT" >&2
  exit 1
fi

"$LOADGEN_BIN" --connect=127.0.0.1:"$PORT" --rows=1500 --seed=7 \
  --requests=30 --clients=3 --json="$WORKDIR/report.json"
LOADGEN_RC=$?
if [ "$LOADGEN_RC" -ne 0 ]; then
  echo "FAIL: loadgen exited $LOADGEN_RC" >&2
  cat "$SERVER_OUT" >&2
  exit "$LOADGEN_RC"
fi

# A clean loadgen exit means zero protocol/transport errors; also
# require that the server actually answered (at this closed-loop load
# nothing should shed, so all-shed would mean a broken serving path).
COMPLETED="$(sed -n 's/.*"completed": \([0-9][0-9]*\),*/\1/p' \
  "$WORKDIR/report.json" | head -n 1)"
if [ -z "$COMPLETED" ] || [ "$COMPLETED" -eq 0 ]; then
  echo "FAIL: no requests completed (answered QPS is zero)" >&2
  cat "$WORKDIR/report.json" >&2
  cat "$SERVER_OUT" >&2
  exit 1
fi

kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
SERVER_RC=$?
SERVER_PID=""
if [ "$SERVER_RC" -ne 0 ]; then
  echo "FAIL: server exited $SERVER_RC on SIGTERM" >&2
  cat "$SERVER_OUT" >&2
  exit "$SERVER_RC"
fi

echo "PASS: e2e smoke (port $PORT)"
