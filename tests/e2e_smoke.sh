#!/usr/bin/env bash
# End-to-end smoke over real sockets, two phases:
#
#  1. Single process: muve_serve (2 in-process shards) on an ephemeral
#     port, driven by muve_loadgen over TCP; every request must come
#     back (completed or deliberately shed — transport or protocol
#     failures fail the test).
#
#  2. Routed topology: two muve_serve shard servers (--shard_index),
#     a muve_router scatter-gathering over them, and the same loadgen
#     workload — whose per-request answers must be BYTE-IDENTICAL to
#     the single-process run's (--dump_answers, --clients=1 keeps both
#     transcripts in the same deterministic order).
#
# Registered as a tier1 ctest; scripts/check.sh runs it with every
# suite.
#
# Usage: e2e_smoke.sh <muve_serve_binary> <muve_loadgen_binary> \
#                     <muve_router_binary>
set -u

SERVE_BIN="${1:?usage: e2e_smoke.sh <muve_serve> <muve_loadgen> <muve_router>}"
LOADGEN_BIN="${2:?usage: e2e_smoke.sh <muve_serve> <muve_loadgen> <muve_router>}"
ROUTER_BIN="${3:?usage: e2e_smoke.sh <muve_serve> <muve_loadgen> <muve_router>}"

ROWS=1500
SEED=7

WORKDIR="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
      kill -TERM "$pid" 2>/dev/null
      wait "$pid" 2>/dev/null
    fi
  done
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $1" >&2
  shift
  for log in "$@"; do
    echo "--- $log ---" >&2
    cat "$log" >&2
  done
  exit 1
}

# wait_for_port <pid> <logfile>: polls for the "LISTENING port=N"
# announcement every server/router process prints once its socket is
# ready, and echoes N. Fails the test if the process dies first or
# never announces.
wait_for_port() {
  local pid="$1" log="$2" port=""
  for _ in $(seq 1 100); do
    port="$(sed -n 's/^LISTENING port=\([0-9][0-9]*\)$/\1/p' "$log" |
      head -n 1)"
    [ -n "$port" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
      fail "process $pid exited before listening" "$log"
    fi
    sleep 0.1
  done
  [ -n "$port" ] || fail "process $pid never announced its port" "$log"
  echo "$port"
}

# stop <pid> <logfile>: SIGTERM, require a clean exit.
stop() {
  local pid="$1" log="$2"
  kill -TERM "$pid"
  wait "$pid" || fail "process $pid exited non-zero on SIGTERM" "$log"
}

# --- Phase 1: single process, in-process scatter-gather ---------------

SINGLE_OUT="$WORKDIR/single.out"
"$SERVE_BIN" --port=0 --rows=$ROWS --seed=$SEED --num_shards=2 \
  --workers=2 >"$SINGLE_OUT" 2>&1 &
SINGLE_PID=$!
PIDS+=("$SINGLE_PID")
SINGLE_PORT="$(wait_for_port "$SINGLE_PID" "$SINGLE_OUT")" || exit 1

"$LOADGEN_BIN" --connect=127.0.0.1:"$SINGLE_PORT" --rows=$ROWS \
  --seed=$SEED --requests=30 --clients=3 --json="$WORKDIR/report.json" ||
  fail "loadgen exited $? against the single process" "$SINGLE_OUT"

# A clean loadgen exit means zero protocol/transport errors; also
# require that the server actually answered (at this closed-loop load
# nothing should shed, so all-shed would mean a broken serving path).
COMPLETED="$(sed -n 's/.*"completed": \([0-9][0-9]*\),*/\1/p' \
  "$WORKDIR/report.json" | head -n 1)"
if [ -z "$COMPLETED" ] || [ "$COMPLETED" -eq 0 ]; then
  fail "no requests completed (answered QPS is zero)" \
    "$WORKDIR/report.json" "$SINGLE_OUT"
fi

# The byte-identity oracle: the same deterministic transcript, one
# client so the answer dump is in planned order.
"$LOADGEN_BIN" --connect=127.0.0.1:"$SINGLE_PORT" --rows=$ROWS \
  --seed=$SEED --requests=20 --clients=1 \
  --dump_answers="$WORKDIR/single.answers" ||
  fail "oracle loadgen exited $?" "$SINGLE_OUT"

stop "$SINGLE_PID" "$SINGLE_OUT"
PIDS=()

# --- Phase 2: two shard-server processes behind a muve_router ---------

SHARD0_OUT="$WORKDIR/shard0.out"
"$SERVE_BIN" --port=0 --rows=$ROWS --seed=$SEED --num_shards=2 \
  --shard_index=0 >"$SHARD0_OUT" 2>&1 &
SHARD0_PID=$!
PIDS+=("$SHARD0_PID")

SHARD1_OUT="$WORKDIR/shard1.out"
"$SERVE_BIN" --port=0 --rows=$ROWS --seed=$SEED --num_shards=2 \
  --shard_index=1 >"$SHARD1_OUT" 2>&1 &
SHARD1_PID=$!
PIDS+=("$SHARD1_PID")

SHARD0_PORT="$(wait_for_port "$SHARD0_PID" "$SHARD0_OUT")" || exit 1
SHARD1_PORT="$(wait_for_port "$SHARD1_PID" "$SHARD1_OUT")" || exit 1

ROUTER_OUT="$WORKDIR/router.out"
"$ROUTER_BIN" --port=0 --rows=$ROWS --seed=$SEED --workers=2 \
  --shard=127.0.0.1:"$SHARD0_PORT" --shard=127.0.0.1:"$SHARD1_PORT" \
  >"$ROUTER_OUT" 2>&1 &
ROUTER_PID=$!
PIDS+=("$ROUTER_PID")
ROUTER_PORT="$(wait_for_port "$ROUTER_PID" "$ROUTER_OUT")" || exit 1

"$LOADGEN_BIN" --connect=127.0.0.1:"$ROUTER_PORT" --rows=$ROWS \
  --seed=$SEED --requests=20 --clients=1 \
  --dump_answers="$WORKDIR/routed.answers" \
  --json="$WORKDIR/routed_report.json" ||
  fail "loadgen exited $? against the router" \
    "$ROUTER_OUT" "$SHARD0_OUT" "$SHARD1_OUT"

# The contract the whole dist/ subsystem stands on: routing through
# separate shard processes changes WHERE partials are computed, never
# the answer bytes.
cmp -s "$WORKDIR/single.answers" "$WORKDIR/routed.answers" ||
  fail "routed answers differ from the single-process oracle" \
    "$WORKDIR/routed_report.json" "$ROUTER_OUT"

# The router's kStats counters flow into the loadgen report.
grep -q '"server_stats": {"shards"' "$WORKDIR/routed_report.json" ||
  fail "router stats missing from the loadgen report" \
    "$WORKDIR/routed_report.json"

stop "$ROUTER_PID" "$ROUTER_OUT"
stop "$SHARD0_PID" "$SHARD0_OUT"
stop "$SHARD1_PID" "$SHARD1_OUT"
PIDS=()

echo "PASS: e2e smoke (single port $SINGLE_PORT, router port $ROUTER_PORT)"
