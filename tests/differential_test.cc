/// Differential test harness for the threaded MUVE pipeline.
///
/// Hundreds of seeded random workloads are pushed through pairs of
/// implementations that must agree:
///   - db::Executor serial scan vs row-partitioned parallel scan (1, 2
///     and 8 threads), for single aggregates and grouped queries;
///   - exec::Engine merged vs unmerged execution, serial vs parallel;
///   - core::GreedyPlanner serial vs parallel candidate evaluation
///     (plans must be structurally identical, costs bitwise equal);
///   - greedy vs brute-force reference planner on tiny instances (the
///     exhaustive optimum can never be worse than greedy).
///
/// Agreement rules: COUNT/MIN/MAX and all plan structure are exact;
/// SUM/AVG compare within 1e-9 relative tolerance between serial and
/// partitioned scans (partition sums associate differently), but are
/// bitwise identical between different thread counts because partition
/// boundaries are fixed by grain, not by pool size.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/brute_force_planner.h"
#include "core/greedy_planner.h"
#include "db/executor.h"
#include "exec/engine.h"
#include "testing/random_workload.h"

namespace muve {
namespace {

constexpr int kNumSeeds = 210;
constexpr uint64_t kSeedBase = 9000;

/// Thread counts every comparison runs at (1 = serial reference path).
const size_t kThreadCounts[] = {1, 2, 8};

bool SumBased(db::AggregateFunction fn) {
  return fn == db::AggregateFunction::kSum ||
         fn == db::AggregateFunction::kAvg;
}

/// Exact for COUNT/MIN/MAX, 1e-9 relative for SUM/AVG.
void ExpectAggregateAgreement(const db::AggregateResult& reference,
                              const db::AggregateResult& other,
                              db::AggregateFunction fn,
                              const std::string& context) {
  EXPECT_EQ(reference.rows_matched, other.rows_matched) << context;
  EXPECT_EQ(reference.empty_input, other.empty_input) << context;
  if (SumBased(fn)) {
    const double scale = std::max(1.0, std::fabs(reference.value));
    EXPECT_NEAR(reference.value, other.value, 1e-9 * scale) << context;
  } else {
    EXPECT_EQ(reference.value, other.value) << context;
  }
}

/// Canonical string form of a multiplot's structure (bars, highlighting,
/// row layout) for exact plan comparison.
std::string PlanSignature(const core::Multiplot& multiplot) {
  std::ostringstream out;
  for (size_t r = 0; r < multiplot.rows.size(); ++r) {
    out << "row" << r << "[";
    for (const core::Plot& plot : multiplot.rows[r]) {
      out << "(" << plot.query_template.key << ":";
      for (const core::PlotBar& bar : plot.bars) {
        out << bar.candidate_index << (bar.highlighted ? "R" : "p") << ",";
      }
      out << ")";
    }
    out << "]";
  }
  return out.str();
}

class DifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pool2_ = new ThreadPool(2);
    pool8_ = new ThreadPool(8);
  }
  static void TearDownTestSuite() {
    delete pool8_;
    pool8_ = nullptr;
    delete pool2_;
    pool2_ = nullptr;
  }

  /// Pool for a thread count; nullptr = serial.
  static ThreadPool* PoolFor(size_t threads) {
    if (threads <= 1) return nullptr;
    return threads == 2 ? pool2_ : pool8_;
  }

  static ThreadPool* pool2_;
  static ThreadPool* pool8_;
};

ThreadPool* DifferentialTest::pool2_ = nullptr;
ThreadPool* DifferentialTest::pool8_ = nullptr;

// ---------------------------------------------------------------------
// Layer 1: db::Executor — serial vs partitioned scans.
// ---------------------------------------------------------------------

TEST_F(DifferentialTest, ExecutorSerialVsParallelScans) {
  for (int seed = 0; seed < kNumSeeds; ++seed) {
    Rng rng(kSeedBase + static_cast<uint64_t>(seed));
    auto table = testing::RandomTable(&rng);
    // Odd grain, forced parallelism: partition boundaries cut rows at
    // awkward offsets and every thread count must still agree.
    db::ExecutorOptions parallel_options;
    parallel_options.min_parallel_rows = 1;
    parallel_options.parallel_grain = 193;

    for (int q = 0; q < 3; ++q) {
      const db::AggregateQuery query =
          testing::RandomAggregateQuery(*table, &rng);
      const auto serial = db::Executor::Execute(*table, query);
      ASSERT_TRUE(serial.ok()) << query.ToSql();
      db::AggregateResult at2{};
      for (const size_t threads : kThreadCounts) {
        parallel_options.pool = PoolFor(threads);
        const auto parallel =
            db::Executor::Execute(*table, query, parallel_options);
        ASSERT_TRUE(parallel.ok()) << query.ToSql();
        ExpectAggregateAgreement(
            *serial, *parallel, query.function,
            "seed " + std::to_string(seed) + " threads " +
                std::to_string(threads) + " " + query.ToSql());
        // Fixed-grain partitioning: 2- and 8-thread runs are bitwise
        // identical, including SUM/AVG.
        if (threads == 2) at2 = *parallel;
        if (threads == 8) {
          EXPECT_EQ(at2.value, parallel->value) << query.ToSql();
          EXPECT_EQ(at2.rows_matched, parallel->rows_matched);
        }
      }
    }
  }
}

TEST_F(DifferentialTest, ExecutorSerialVsParallelGroupedScans) {
  for (int seed = 0; seed < kNumSeeds; ++seed) {
    Rng rng(kSeedBase + 100000 + static_cast<uint64_t>(seed));
    auto table = testing::RandomTable(&rng);
    const db::GroupByQuery query =
        testing::RandomGroupByQuery(*table, &rng);
    const auto serial = db::Executor::ExecuteGrouped(*table, query);
    ASSERT_TRUE(serial.ok()) << query.ToSql();

    db::ExecutorOptions parallel_options;
    parallel_options.min_parallel_rows = 1;
    parallel_options.parallel_grain = 311;
    db::GroupByResult at2{};
    for (const size_t threads : kThreadCounts) {
      parallel_options.pool = PoolFor(threads);
      const auto parallel =
          db::Executor::ExecuteGrouped(*table, query, parallel_options);
      ASSERT_TRUE(parallel.ok()) << query.ToSql();
      ASSERT_EQ(serial->cells.size(), parallel->cells.size());
      for (size_t g = 0; g < serial->cells.size(); ++g) {
        ASSERT_EQ(serial->cells[g].size(), parallel->cells[g].size());
        for (size_t a = 0; a < serial->cells[g].size(); ++a) {
          ExpectAggregateAgreement(
              serial->cells[g][a], parallel->cells[g][a],
              query.aggregates[a].function,
              "seed " + std::to_string(seed) + " threads " +
                  std::to_string(threads) + " cell " + std::to_string(g) +
                  "/" + std::to_string(a) + " " + query.ToSql());
          if (threads == 8) {
            EXPECT_EQ(at2.cells[g][a].value, parallel->cells[g][a].value);
          }
        }
      }
      if (threads == 2) at2 = *parallel;
    }
  }
}

// ---------------------------------------------------------------------
// Layer 2: exec::Engine — merged vs unmerged, serial vs parallel.
// ---------------------------------------------------------------------

TEST_F(DifferentialTest, EngineMergedUnmergedSerialParallel) {
  for (int seed = 0; seed < kNumSeeds; ++seed) {
    Rng rng(kSeedBase + 200000 + static_cast<uint64_t>(seed));
    auto table = testing::RandomTable(&rng);
    const core::CandidateSet set =
        testing::RandomCandidateSet(*table, &rng);
    if (set.empty()) continue;
    std::vector<size_t> all(set.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;

    // Reference: serial, unmerged.
    exec::Engine reference(table,
                           {.enable_merging = false, .num_threads = 1});
    const auto expected = reference.Execute(set, all);
    ASSERT_TRUE(expected.ok());

    for (const bool merging : {false, true}) {
      for (const size_t threads : kThreadCounts) {
        exec::EngineOptions options;
        options.enable_merging = merging;
        options.num_threads = threads;
        exec::Engine engine(table, options);
        const auto actual = engine.Execute(set, all);
        ASSERT_TRUE(actual.ok());
        ASSERT_EQ(expected->values.size(), actual->values.size());
        for (size_t i = 0; i < set.size(); ++i) {
          const std::string context =
              "seed " + std::to_string(seed) + " merging " +
              std::to_string(merging) + " threads " +
              std::to_string(threads) + " " + set[i].query.ToSql();
          if (std::isnan(expected->values[i])) {
            EXPECT_TRUE(std::isnan(actual->values[i])) << context;
            continue;
          }
          const double scale =
              std::max(1.0, std::fabs(expected->values[i]));
          EXPECT_NEAR(expected->values[i], actual->values[i],
                      1e-9 * scale)
              << context;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Layer 3: planners — greedy thread-count invariance, greedy vs
// brute-force reference.
// ---------------------------------------------------------------------

TEST_F(DifferentialTest, GreedyPlannerThreadCountInvariant) {
  for (int seed = 0; seed < kNumSeeds; ++seed) {
    Rng rng(kSeedBase + 300000 + static_cast<uint64_t>(seed));
    testing::RandomTableOptions table_options;
    table_options.min_rows = 200;
    table_options.max_rows = 600;
    auto table = testing::RandomTable(&rng, table_options);
    const core::CandidateSet set =
        testing::RandomCandidateSet(*table, &rng, 24);
    if (set.empty()) continue;
    core::PlannerConfig config;
    config.geometry.max_rows = 1 + static_cast<int>(seed % 2);

    core::PlanResult reference;
    for (const size_t threads : kThreadCounts) {
      core::GreedyPlanner::Options options;
      options.pool = PoolFor(threads);
      options.min_parallel_candidates = 1;  // Force the parallel path.
      const core::GreedyPlanner planner(options);
      const auto plan = planner.Plan(set, config);
      ASSERT_TRUE(plan.ok());
      EXPECT_TRUE(plan->multiplot.Validate(config.geometry).ok())
          << "seed " << seed << " threads " << threads;
      if (threads == 1) {
        reference = *plan;
        continue;
      }
      // The parallel argmax must reproduce the serial plan exactly:
      // same structure, bitwise-equal cost.
      EXPECT_EQ(PlanSignature(reference.multiplot),
                PlanSignature(plan->multiplot))
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(reference.expected_cost, plan->expected_cost)
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST_F(DifferentialTest, GreedyNeverBeatsBruteForce) {
  int planned = 0;
  for (int seed = 0; seed < kNumSeeds; ++seed) {
    Rng rng(kSeedBase + 400000 + static_cast<uint64_t>(seed));
    testing::RandomTableOptions table_options;
    table_options.min_rows = 100;
    table_options.max_rows = 300;
    auto table = testing::RandomTable(&rng, table_options);
    const core::CandidateSet set = testing::TinyCandidateSet(*table, &rng);
    core::PlannerConfig config;
    config.geometry.max_rows = 1;

    const core::BruteForcePlanner brute;
    const auto optimal = brute.Plan(set, config);
    ASSERT_TRUE(optimal.ok()) << "seed " << seed;

    for (const size_t threads : kThreadCounts) {
      core::GreedyPlanner::Options options;
      options.pool = PoolFor(threads);
      options.min_parallel_candidates = 1;
      const core::GreedyPlanner planner(options);
      const auto greedy = planner.Plan(set, config);
      ASSERT_TRUE(greedy.ok()) << "seed " << seed;
      // The exhaustive optimum is a lower bound for greedy at every
      // thread count.
      EXPECT_LE(optimal->expected_cost,
                greedy->expected_cost + 1e-9)
          << "seed " << seed << " threads " << threads;
    }
    ++planned;
  }
  // The suite must not silently degenerate to skipping everything.
  EXPECT_GE(planned, kNumSeeds);
}

}  // namespace
}  // namespace muve
