/// Differential test harness for the threaded MUVE pipeline.
///
/// Hundreds of seeded random workloads are pushed through pairs of
/// implementations that must agree:
///   - db::Executor serial scan vs row-partitioned parallel scan (1, 2
///     and 8 threads), for single aggregates and grouped queries;
///   - exec::Engine merged vs unmerged execution, serial vs parallel;
///   - core::GreedyPlanner serial vs parallel candidate evaluation
///     (plans must be structurally identical, costs bitwise equal);
///   - greedy vs brute-force reference planner on tiny instances (the
///     exhaustive optimum can never be worse than greedy);
///   - core::IlpPlanner across solver thread counts (1, 2, 8):
///     byte-identical multiplot, cost, bound, and node count; and
///     presolve on vs off: equal optimal cost;
///   - cached vs uncached execution at every layer (executor, engine,
///     full MuveEngine pipeline): cold, warm, and capacity-1 thrash
///     replays must be byte-identical to the cache-disabled path,
///     including across table-version invalidation.
///
/// Agreement rules: COUNT/MIN/MAX and all plan structure are exact;
/// SUM/AVG compare within 1e-9 relative tolerance between serial and
/// partitioned scans (partition sums associate differently), but are
/// bitwise identical between different thread counts because partition
/// boundaries are fixed by grain, not by pool size. Cached results are
/// the raw output of the scan that populated them, so cached-vs-uncached
/// comparisons are bitwise at the same thread configuration.
///
/// MUVE_DIFF_SEEDS overrides the seed count (the `slow` CTest variants
/// raise it; every seed is self-contained so any count reproduces).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <iterator>
#include <memory>
#include <sstream>
#include <vector>

#include "cache/query_cache.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/brute_force_planner.h"
#include "core/greedy_planner.h"
#include "core/ilp_planner.h"
#include "db/executor.h"
#include "exec/engine.h"
#include "muve/muve_engine.h"
#include "nlq/translator.h"
#include "serve/server.h"
#include "testing/random_workload.h"
#include "testing/sanitizer.h"
#include "viz/render_ascii.h"

namespace muve {
namespace {

int SeedCount() {
  const char* value = std::getenv("MUVE_DIFF_SEEDS");
  if (value == nullptr) return 210;
  const long parsed = std::strtol(value, nullptr, 10);
  return parsed > 0 ? static_cast<int>(parsed) : 210;
}

const int kNumSeeds = SeedCount();
constexpr uint64_t kSeedBase = 9000;

/// Thread counts every comparison runs at (1 = serial reference path).
const size_t kThreadCounts[] = {1, 2, 8};

bool SumBased(db::AggregateFunction fn) {
  return fn == db::AggregateFunction::kSum ||
         fn == db::AggregateFunction::kAvg;
}

/// Exact for COUNT/MIN/MAX, 1e-9 relative for SUM/AVG.
void ExpectAggregateAgreement(const db::AggregateResult& reference,
                              const db::AggregateResult& other,
                              db::AggregateFunction fn,
                              const std::string& context) {
  EXPECT_EQ(reference.rows_matched, other.rows_matched) << context;
  EXPECT_EQ(reference.empty_input, other.empty_input) << context;
  if (SumBased(fn)) {
    const double scale = std::max(1.0, std::fabs(reference.value));
    EXPECT_NEAR(reference.value, other.value, 1e-9 * scale) << context;
  } else {
    EXPECT_EQ(reference.value, other.value) << context;
  }
}

/// Canonical string form of a multiplot's structure (bars, highlighting,
/// row layout) for exact plan comparison.
std::string PlanSignature(const core::Multiplot& multiplot) {
  std::ostringstream out;
  for (size_t r = 0; r < multiplot.rows.size(); ++r) {
    out << "row" << r << "[";
    for (const core::Plot& plot : multiplot.rows[r]) {
      out << "(" << plot.query_template.key << ":";
      for (const core::PlotBar& bar : plot.bars) {
        out << bar.candidate_index << (bar.highlighted ? "R" : "p") << ",";
      }
      out << ")";
    }
    out << "]";
  }
  return out.str();
}

class DifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pool2_ = new ThreadPool(2);
    pool8_ = new ThreadPool(8);
  }
  static void TearDownTestSuite() {
    delete pool8_;
    pool8_ = nullptr;
    delete pool2_;
    pool2_ = nullptr;
  }

  /// Pool for a thread count; nullptr = serial.
  static ThreadPool* PoolFor(size_t threads) {
    if (threads <= 1) return nullptr;
    return threads == 2 ? pool2_ : pool8_;
  }

  static ThreadPool* pool2_;
  static ThreadPool* pool8_;
};

ThreadPool* DifferentialTest::pool2_ = nullptr;
ThreadPool* DifferentialTest::pool8_ = nullptr;

// ---------------------------------------------------------------------
// Layer 1: db::Executor — serial vs partitioned scans.
// ---------------------------------------------------------------------

TEST_F(DifferentialTest, ExecutorSerialVsParallelScans) {
  for (int seed = 0; seed < kNumSeeds; ++seed) {
    Rng rng(kSeedBase + static_cast<uint64_t>(seed));
    auto table = testing::RandomTable(&rng);
    // Odd grain, forced parallelism: partition boundaries cut rows at
    // awkward offsets and every thread count must still agree.
    db::ExecutorOptions parallel_options;
    parallel_options.min_parallel_rows = 1;
    parallel_options.parallel_grain = 193;

    for (int q = 0; q < 3; ++q) {
      const db::AggregateQuery query =
          testing::RandomAggregateQuery(*table, &rng);
      const auto serial = db::Executor::Execute(*table, query);
      ASSERT_TRUE(serial.ok()) << query.ToSql();
      db::AggregateResult at2{};
      for (const size_t threads : kThreadCounts) {
        parallel_options.pool = PoolFor(threads);
        const auto parallel =
            db::Executor::Execute(*table, query, parallel_options);
        ASSERT_TRUE(parallel.ok()) << query.ToSql();
        ExpectAggregateAgreement(
            *serial, *parallel, query.function,
            "seed " + std::to_string(seed) + " threads " +
                std::to_string(threads) + " " + query.ToSql());
        // Fixed-grain partitioning: 2- and 8-thread runs are bitwise
        // identical, including SUM/AVG.
        if (threads == 2) at2 = *parallel;
        if (threads == 8) {
          EXPECT_EQ(at2.value, parallel->value) << query.ToSql();
          EXPECT_EQ(at2.rows_matched, parallel->rows_matched);
        }
      }
    }
  }
}

TEST_F(DifferentialTest, ExecutorSerialVsParallelGroupedScans) {
  for (int seed = 0; seed < kNumSeeds; ++seed) {
    Rng rng(kSeedBase + 100000 + static_cast<uint64_t>(seed));
    auto table = testing::RandomTable(&rng);
    const db::GroupByQuery query =
        testing::RandomGroupByQuery(*table, &rng);
    const auto serial = db::Executor::ExecuteGrouped(*table, query);
    ASSERT_TRUE(serial.ok()) << query.ToSql();

    db::ExecutorOptions parallel_options;
    parallel_options.min_parallel_rows = 1;
    parallel_options.parallel_grain = 311;
    db::GroupByResult at2{};
    for (const size_t threads : kThreadCounts) {
      parallel_options.pool = PoolFor(threads);
      const auto parallel =
          db::Executor::ExecuteGrouped(*table, query, parallel_options);
      ASSERT_TRUE(parallel.ok()) << query.ToSql();
      ASSERT_EQ(serial->cells.size(), parallel->cells.size());
      for (size_t g = 0; g < serial->cells.size(); ++g) {
        ASSERT_EQ(serial->cells[g].size(), parallel->cells[g].size());
        for (size_t a = 0; a < serial->cells[g].size(); ++a) {
          ExpectAggregateAgreement(
              serial->cells[g][a], parallel->cells[g][a],
              query.aggregates[a].function,
              "seed " + std::to_string(seed) + " threads " +
                  std::to_string(threads) + " cell " + std::to_string(g) +
                  "/" + std::to_string(a) + " " + query.ToSql());
          if (threads == 8) {
            EXPECT_EQ(at2.cells[g][a].value, parallel->cells[g][a].value);
          }
        }
      }
      if (threads == 2) at2 = *parallel;
    }
  }
}

// ---------------------------------------------------------------------
// Layer 1b: db::Executor — vectorized batch scans vs the scalar oracle.
//
// The batch path (ExecutorOptions::vectorize, the default) promises
// byte-identical results to the value-at-a-time loop: same row order,
// same accumulation order, same partition boundaries. So unlike the
// serial-vs-parallel comparison above, every field — including SUM/AVG —
// is compared with EXPECT_EQ, across thread counts, cached and uncached
// replays, and full vs sampled tables. Row counts sweep the batch
// boundaries (0, 1, 2047, 2048, 2049, 4099 rows around the 2048-row
// batch) on a third of the seeds.
// ---------------------------------------------------------------------

/// Batch-boundary row counts: empty table, single row, one batch +/- 1,
/// and a multi-batch size that is a multiple of neither the batch nor
/// any test grain.
constexpr size_t kBatchBoundaryRows[] = {0, 1, 2047, 2048, 2049, 4099};

testing::RandomTableOptions VecTableOptions(int seed) {
  testing::RandomTableOptions options;
  if (seed % 3 == 0) {
    const size_t rows =
        kBatchBoundaryRows[static_cast<size_t>(seed / 3) %
                           std::size(kBatchBoundaryRows)];
    options.min_rows = rows;
    options.max_rows = rows;
  }
  return options;
}

void ExpectBitwiseEqual(const db::AggregateResult& scalar,
                        const db::AggregateResult& vec,
                        const std::string& context) {
  EXPECT_EQ(scalar.value, vec.value) << context;
  EXPECT_EQ(scalar.rows_matched, vec.rows_matched) << context;
  EXPECT_EQ(scalar.empty_input, vec.empty_input) << context;
}

TEST_F(DifferentialTest, ExecutorVectorizedVsScalarScans) {
  for (int seed = 0; seed < kNumSeeds; ++seed) {
    Rng rng(kSeedBase + 1000000 + static_cast<uint64_t>(seed));
    auto table = testing::RandomTable(&rng, VecTableOptions(seed));
    // Sampled execution composes with vectorization: the batch path must
    // agree on the sample too, and scaled values must match exactly.
    auto sample = table->Sample(0.37);
    const bool use_cache = (seed % 2) == 1;

    for (int q = 0; q < 3; ++q) {
      const db::AggregateQuery query =
          testing::RandomVecAggregateQuery(*table, &rng);
      for (const db::Table* target : {table.get(), sample.get()}) {
        for (const size_t threads : kThreadCounts) {
          // Odd grain + forced parallelism: batches tile each partition
          // from its start, so awkward partition cuts must not move any
          // batch boundary's effect across partitions.
          db::ExecutorOptions scalar_options;
          scalar_options.vectorize = false;  // The oracle.
          scalar_options.min_parallel_rows = 1;
          scalar_options.parallel_grain = 193;
          scalar_options.pool = PoolFor(threads);
          db::ExecutorOptions vec_options = scalar_options;
          vec_options.vectorize = true;
          // Fresh per-configuration caches: the cold run must store the
          // same bytes, the warm run must replay them.
          cache::QueryCache scalar_cache(64);
          cache::QueryCache vec_cache(64);
          if (use_cache) {
            scalar_options.cache = &scalar_cache;
            vec_options.cache = &vec_cache;
          }
          const std::string context =
              "seed " + std::to_string(seed) + " threads " +
              std::to_string(threads) +
              (target == sample.get() ? " sampled " : " full ") +
              (use_cache ? "cached " : "uncached ") + query.ToSql();
          const auto scalar =
              db::Executor::Execute(*target, query, scalar_options);
          const auto vec =
              db::Executor::Execute(*target, query, vec_options);
          ASSERT_TRUE(scalar.ok()) << context;
          ASSERT_TRUE(vec.ok()) << context;
          ExpectBitwiseEqual(*scalar, *vec, context);
          EXPECT_EQ(
              db::Executor::ScaleSampledValue(query.function,
                                              scalar->value, 0.37),
              db::Executor::ScaleSampledValue(query.function, vec->value,
                                              0.37))
              << context;
          if (use_cache) {
            const auto scalar_warm =
                db::Executor::Execute(*target, query, scalar_options);
            const auto vec_warm =
                db::Executor::Execute(*target, query, vec_options);
            ASSERT_TRUE(scalar_warm.ok() && vec_warm.ok()) << context;
            ExpectBitwiseEqual(*scalar_warm, *vec_warm,
                               "warm " + context);
            ExpectBitwiseEqual(*vec, *vec_warm, "cold-vs-warm " + context);
            // Only sealed runs are cached; a table small enough to be
            // pure memtable legitimately never hits.
            if (target->num_runs() > 0) {
              EXPECT_GT(vec_cache.stats().hits, 0u) << context;
            }
          }
        }
      }
    }
  }
}

TEST_F(DifferentialTest, ExecutorVectorizedVsScalarGroupedScans) {
  for (int seed = 0; seed < kNumSeeds; ++seed) {
    Rng rng(kSeedBase + 1100000 + static_cast<uint64_t>(seed));
    auto table = testing::RandomTable(&rng, VecTableOptions(seed));
    auto sample = table->Sample(0.37);
    const bool use_cache = (seed % 2) == 1;
    const db::GroupByQuery query =
        testing::RandomVecGroupByQuery(*table, &rng);

    for (const db::Table* target : {table.get(), sample.get()}) {
      for (const size_t threads : kThreadCounts) {
        db::ExecutorOptions scalar_options;
        scalar_options.vectorize = false;  // The oracle.
        scalar_options.min_parallel_rows = 1;
        scalar_options.parallel_grain = 311;
        scalar_options.pool = PoolFor(threads);
        db::ExecutorOptions vec_options = scalar_options;
        vec_options.vectorize = true;
        cache::QueryCache scalar_cache(64);
        cache::QueryCache vec_cache(64);
        if (use_cache) {
          scalar_options.cache = &scalar_cache;
          vec_options.cache = &vec_cache;
        }
        const std::string context =
            "seed " + std::to_string(seed) + " threads " +
            std::to_string(threads) +
            (target == sample.get() ? " sampled " : " full ") +
            (use_cache ? "cached " : "uncached ") + query.ToSql();
        const auto scalar =
            db::Executor::ExecuteGrouped(*target, query, scalar_options);
        const auto vec =
            db::Executor::ExecuteGrouped(*target, query, vec_options);
        ASSERT_TRUE(scalar.ok()) << context;
        ASSERT_TRUE(vec.ok()) << context;
        EXPECT_EQ(scalar->rows_scanned, vec->rows_scanned) << context;
        ASSERT_EQ(scalar->cells.size(), vec->cells.size()) << context;
        for (size_t g = 0; g < scalar->cells.size(); ++g) {
          ASSERT_EQ(scalar->cells[g].size(), vec->cells[g].size());
          for (size_t a = 0; a < scalar->cells[g].size(); ++a) {
            ExpectBitwiseEqual(scalar->cells[g][a], vec->cells[g][a],
                               context + " cell " + std::to_string(g) +
                                   "/" + std::to_string(a));
          }
        }
        if (use_cache) {
          const auto vec_warm =
              db::Executor::ExecuteGrouped(*target, query, vec_options);
          ASSERT_TRUE(vec_warm.ok()) << context;
          for (size_t g = 0; g < vec->cells.size(); ++g) {
            for (size_t a = 0; a < vec->cells[g].size(); ++a) {
              ExpectBitwiseEqual(vec->cells[g][a], vec_warm->cells[g][a],
                                 "cold-vs-warm " + context);
            }
          }
          // Only sealed runs are cached; a table small enough to be
          // pure memtable legitimately never hits.
          if (target->num_runs() > 0) {
            EXPECT_GT(vec_cache.stats().hits, 0u) << context;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Layer 2: exec::Engine — merged vs unmerged, serial vs parallel.
// ---------------------------------------------------------------------

TEST_F(DifferentialTest, EngineMergedUnmergedSerialParallel) {
  for (int seed = 0; seed < kNumSeeds; ++seed) {
    Rng rng(kSeedBase + 200000 + static_cast<uint64_t>(seed));
    auto table = testing::RandomTable(&rng);
    const core::CandidateSet set =
        testing::RandomCandidateSet(*table, &rng);
    if (set.empty()) continue;
    std::vector<size_t> all(set.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;

    // Reference: serial, unmerged.
    exec::Engine reference(table,
                           {.enable_merging = false, .num_threads = 1});
    const auto expected = reference.Execute(set, all);
    ASSERT_TRUE(expected.ok());

    for (const bool merging : {false, true}) {
      for (const size_t threads : kThreadCounts) {
        exec::EngineOptions options;
        options.enable_merging = merging;
        options.num_threads = threads;
        exec::Engine engine(table, options);
        const auto actual = engine.Execute(set, all);
        ASSERT_TRUE(actual.ok());
        ASSERT_EQ(expected->values.size(), actual->values.size());
        for (size_t i = 0; i < set.size(); ++i) {
          const std::string context =
              "seed " + std::to_string(seed) + " merging " +
              std::to_string(merging) + " threads " +
              std::to_string(threads) + " " + set[i].query.ToSql();
          if (std::isnan(expected->values[i])) {
            EXPECT_TRUE(std::isnan(actual->values[i])) << context;
            continue;
          }
          const double scale =
              std::max(1.0, std::fabs(expected->values[i]));
          EXPECT_NEAR(expected->values[i], actual->values[i],
                      1e-9 * scale)
              << context;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Layer 3: planners — greedy thread-count invariance, greedy vs
// brute-force reference.
// ---------------------------------------------------------------------

TEST_F(DifferentialTest, GreedyPlannerThreadCountInvariant) {
  for (int seed = 0; seed < kNumSeeds; ++seed) {
    Rng rng(kSeedBase + 300000 + static_cast<uint64_t>(seed));
    testing::RandomTableOptions table_options;
    table_options.min_rows = 200;
    table_options.max_rows = 600;
    auto table = testing::RandomTable(&rng, table_options);
    const core::CandidateSet set =
        testing::RandomCandidateSet(*table, &rng, 24);
    if (set.empty()) continue;
    core::PlannerConfig config;
    config.geometry.max_rows = 1 + static_cast<int>(seed % 2);

    core::PlanResult reference;
    for (const size_t threads : kThreadCounts) {
      core::GreedyPlanner::Options options;
      options.pool = PoolFor(threads);
      options.min_parallel_candidates = 1;  // Force the parallel path.
      const core::GreedyPlanner planner(options);
      const auto plan = planner.Plan(set, config);
      ASSERT_TRUE(plan.ok());
      EXPECT_TRUE(plan->multiplot.Validate(config.geometry).ok())
          << "seed " << seed << " threads " << threads;
      if (threads == 1) {
        reference = *plan;
        continue;
      }
      // The parallel argmax must reproduce the serial plan exactly:
      // same structure, bitwise-equal cost.
      EXPECT_EQ(PlanSignature(reference.multiplot),
                PlanSignature(plan->multiplot))
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(reference.expected_cost, plan->expected_cost)
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST_F(DifferentialTest, GreedyNeverBeatsBruteForce) {
  int planned = 0;
  for (int seed = 0; seed < kNumSeeds; ++seed) {
    Rng rng(kSeedBase + 400000 + static_cast<uint64_t>(seed));
    testing::RandomTableOptions table_options;
    table_options.min_rows = 100;
    table_options.max_rows = 300;
    auto table = testing::RandomTable(&rng, table_options);
    const core::CandidateSet set = testing::TinyCandidateSet(*table, &rng);
    core::PlannerConfig config;
    config.geometry.max_rows = 1;

    const core::BruteForcePlanner brute;
    const auto optimal = brute.Plan(set, config);
    ASSERT_TRUE(optimal.ok()) << "seed " << seed;

    for (const size_t threads : kThreadCounts) {
      core::GreedyPlanner::Options options;
      options.pool = PoolFor(threads);
      options.min_parallel_candidates = 1;
      const core::GreedyPlanner planner(options);
      const auto greedy = planner.Plan(set, config);
      ASSERT_TRUE(greedy.ok()) << "seed " << seed;
      // The exhaustive optimum is a lower bound for greedy at every
      // thread count.
      EXPECT_LE(optimal->expected_cost,
                greedy->expected_cost + 1e-9)
          << "seed " << seed << " threads " << threads;
    }
    ++planned;
  }
  // The suite must not silently degenerate to skipping everything.
  EXPECT_GE(planned, kNumSeeds);
}

TEST_F(DifferentialTest, IlpPlannerThreadAndPresolveInvariant) {
  // The branch-and-bound determinism contract: for solves that finish
  // within the timeout, the ILP planner's output is byte-identical at
  // any solver thread count — same multiplot, bitwise-equal cost and
  // bound, identical node count. Presolve rewrites the model (different
  // tree, different tie-breaking among equal-cost optima — symmetric
  // templates covering the same candidates do tie exactly), so across
  // presolve on/off only the optimal cost itself must agree.
  // Six solver configurations per seed: capped well below kNumSeeds to
  // keep the tier1 wall clock reasonable. Not skipped under sanitizers
  // — racing the parallel tree search under TSan is the point of that
  // pass — but trimmed further, since solves run ~10x slower there.
  const int seeds =
      std::min(kNumSeeds, muve::testing::kSanitizerBuild ? 3 : 10);
  int compared = 0;
  for (int seed = 0; seed < seeds; ++seed) {
    Rng rng(kSeedBase + 800000 + static_cast<uint64_t>(seed));
    testing::RandomTableOptions table_options;
    table_options.min_rows = 100;
    table_options.max_rows = 300;
    auto table = testing::RandomTable(&rng, table_options);
    const core::CandidateSet set =
        testing::RandomCandidateSet(*table, &rng, 8);
    if (set.empty()) continue;
    core::PlannerConfig config;
    config.geometry.max_rows = 1;
    // Generous for a release build; sanitizer builds may still hit it
    // on hard seeds, and a timeout legitimately surrenders determinism
    // — such seeds are skipped, not failed.
    config.timeout_ms = 10000.0;

    bool have_reference = false;
    bool timed_out = false;
    core::PlanResult reference;  // Presolve-on serial run.
    core::PlanResult presolve_reference;  // Serial run, either setting.
    for (const bool presolve : {true, false}) {
      for (const size_t threads : kThreadCounts) {
        config.ilp.presolve = presolve;
        config.ilp.num_threads = threads;
        const core::IlpPlanner planner(PoolFor(threads));
        const auto plan = planner.Plan(set, config);
        ASSERT_TRUE(plan.ok()) << "seed " << seed;
        if (plan->timed_out) {
          timed_out = true;
          break;
        }
        const std::string context = "seed " + std::to_string(seed) +
                                    " presolve " + std::to_string(presolve) +
                                    " threads " + std::to_string(threads);
        EXPECT_TRUE(plan->multiplot.Validate(config.geometry).ok())
            << context;
        if (threads == 1) {
          presolve_reference = *plan;
          if (!have_reference) {
            reference = *plan;
            have_reference = true;
          } else {
            // Presolve on vs off: the optimum value is preserved.
            const double scale =
                std::max(1.0, std::fabs(reference.expected_cost));
            EXPECT_NEAR(reference.expected_cost, plan->expected_cost,
                        1e-9 * scale)
                << context;
          }
          continue;
        }
        // Thread counts at a fixed presolve setting: byte-identical.
        EXPECT_EQ(PlanSignature(presolve_reference.multiplot),
                  PlanSignature(plan->multiplot))
            << context;
        EXPECT_EQ(presolve_reference.expected_cost, plan->expected_cost)
            << context;
        EXPECT_EQ(presolve_reference.best_bound, plan->best_bound)
            << context;
        EXPECT_EQ(presolve_reference.nodes_explored, plan->nodes_explored)
            << context;
      }
      if (timed_out) break;
    }
    if (have_reference && !timed_out) ++compared;
  }
  // The suite must not silently degenerate into empty candidate sets
  // (or all-timeout seeds).
  EXPECT_GT(compared, 0);
}

// ---------------------------------------------------------------------
// Layer 4: caching — cached vs uncached must be byte-identical at every
// layer, for cold, warm, and capacity-1 thrash replays.
// (ExpectBitwiseEqual is shared with the vectorized-vs-scalar layer.)
// ---------------------------------------------------------------------

TEST_F(DifferentialTest, ExecutorCachedVsUncachedScans) {
  for (int seed = 0; seed < kNumSeeds; ++seed) {
    Rng rng(kSeedBase + 500000 + static_cast<uint64_t>(seed));
    auto table = testing::RandomTable(&rng);
    std::vector<db::AggregateQuery> queries;
    for (int q = 0; q < 3; ++q) {
      queries.push_back(testing::RandomAggregateQuery(*table, &rng));
    }
    const db::GroupByQuery grouped =
        testing::RandomGroupByQuery(*table, &rng);

    for (const size_t threads : kThreadCounts) {
      db::ExecutorOptions uncached;
      uncached.pool = PoolFor(threads);
      uncached.min_parallel_rows = 1;
      uncached.parallel_grain = 193;

      // Warm (roomy) and thrash (capacity 1, constant eviction) caches:
      // both must reproduce the uncached scan bitwise on every replay —
      // the cache stores raw scan output and partitioning is fixed-grain,
      // so results at the same thread count are byte-identical.
      cache::QueryCache roomy(16);
      cache::QueryCache thrash(1);
      for (cache::QueryCache* qcache : {&roomy, &thrash}) {
        db::ExecutorOptions cached = uncached;
        cached.cache = qcache;
        for (const db::AggregateQuery& query : queries) {
          const auto reference =
              db::Executor::Execute(*table, query, uncached);
          ASSERT_TRUE(reference.ok()) << query.ToSql();
          for (const char* phase : {"cold", "warm"}) {
            const auto replay =
                db::Executor::Execute(*table, query, cached);
            ASSERT_TRUE(replay.ok()) << query.ToSql();
            ExpectBitwiseEqual(
                *reference, *replay,
                "seed " + std::to_string(seed) + " threads " +
                    std::to_string(threads) + " cap " +
                    std::to_string(qcache->capacity()) + " " + phase +
                    " " + query.ToSql());
          }
        }
        const auto reference =
            db::Executor::ExecuteGrouped(*table, grouped, uncached);
        ASSERT_TRUE(reference.ok()) << grouped.ToSql();
        for (int replay = 0; replay < 2; ++replay) {
          const auto actual =
              db::Executor::ExecuteGrouped(*table, grouped, cached);
          ASSERT_TRUE(actual.ok()) << grouped.ToSql();
          ASSERT_EQ(reference->cells.size(), actual->cells.size());
          for (size_t g = 0; g < reference->cells.size(); ++g) {
            ASSERT_EQ(reference->cells[g].size(),
                      actual->cells[g].size());
            for (size_t a = 0; a < reference->cells[g].size(); ++a) {
              ExpectBitwiseEqual(
                  reference->cells[g][a], actual->cells[g][a],
                  "seed " + std::to_string(seed) + " grouped cell " +
                      std::to_string(g) + "/" + std::to_string(a));
            }
          }
        }
      }
      // The roomy cache must have served the warm replays from memory.
      EXPECT_GT(roomy.stats().hits, 0u) << "seed " << seed;
    }

    // Appends under run-granular caching: cached run partials stay
    // valid (only the memtable tail grew), so the cached path must
    // still match a fresh uncached scan exactly.
    cache::QueryCache qcache(16);
    db::ExecutorOptions cached;
    cached.cache = &qcache;
    const auto stale = db::Executor::Execute(*table, queries[0], cached);
    ASSERT_TRUE(stale.ok());
    std::vector<db::Value> row;
    for (size_t c = 0; c < table->num_columns(); ++c) {
      switch (table->spec(c).type) {
        case db::ValueType::kString:
          row.emplace_back("absent_value");
          break;
        case db::ValueType::kInt64:
          row.emplace_back(int64_t{17});
          break;
        case db::ValueType::kDouble:
          row.emplace_back(17.5);
          break;
      }
    }
    ASSERT_TRUE(table->AppendRow(row).ok());
    const auto fresh = db::Executor::Execute(*table, queries[0]);
    ASSERT_TRUE(fresh.ok());
    const auto after = db::Executor::Execute(*table, queries[0], cached);
    ASSERT_TRUE(after.ok());
    ExpectBitwiseEqual(*fresh, *after,
                       "seed " + std::to_string(seed) +
                           " post-append " + queries[0].ToSql());
  }
}

TEST_F(DifferentialTest, EngineCachedVsUncachedReplay) {
  for (int seed = 0; seed < kNumSeeds; ++seed) {
    Rng rng(kSeedBase + 600000 + static_cast<uint64_t>(seed));
    auto table = testing::RandomTable(&rng);
    const core::CandidateSet set =
        testing::RandomCandidateSet(*table, &rng);
    if (set.empty()) continue;
    std::vector<size_t> all(set.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;

    for (const size_t threads : kThreadCounts) {
      exec::EngineOptions options;
      options.num_threads = threads;
      options.min_parallel_rows = 1;  // Exercise row partitioning too.
      options.cache_capacity = 0;
      exec::Engine uncached(table, options);
      const auto reference = uncached.Execute(set, all);
      ASSERT_TRUE(reference.ok());
      // The disabled cache reports no activity.
      EXPECT_EQ(uncached.result_cache(), nullptr);
      EXPECT_EQ(uncached.result_cache_stats().lookups(), 0u);

      for (const size_t capacity : {size_t{256}, size_t{1}}) {
        options.cache_capacity = capacity;
        exec::Engine engine(table, options);
        for (const char* phase : {"cold", "warm"}) {
          const auto replay = engine.Execute(set, all);
          ASSERT_TRUE(replay.ok());
          ASSERT_EQ(reference->values.size(), replay->values.size());
          for (size_t i = 0; i < reference->values.size(); ++i) {
            const std::string context =
                "seed " + std::to_string(seed) + " threads " +
                std::to_string(threads) + " cap " +
                std::to_string(capacity) + " " + phase + " candidate " +
                std::to_string(i);
            if (std::isnan(reference->values[i])) {
              EXPECT_TRUE(std::isnan(replay->values[i])) << context;
            } else {
              EXPECT_EQ(reference->values[i], replay->values[i])
                  << context;
            }
          }
        }
        const cache::StatsSnapshot stats = engine.result_cache_stats();
        EXPECT_GT(stats.lookups(), 0u);
        if (capacity >= set.size()) {
          // Warm replay of an identical batch is all hits.
          EXPECT_GT(stats.hits, 0u) << "seed " << seed;
        }
      }
    }
  }
}

TEST_F(DifferentialTest, MuvePipelineCachedVsUncachedReplay) {
  // Table rows stay far below min_parallel_rows, so every scan is the
  // serial per-unit loop at every thread count and the full pipeline —
  // plan structure, bar values, rendering — must be byte-identical
  // between the cached and uncached engines, cold and warm.
  viz::AsciiRenderOptions render_options;
  render_options.use_color = false;
  uint64_t plan_hits = 0;
  for (int seed = 0; seed < kNumSeeds; ++seed) {
    Rng rng(kSeedBase + 700000 + static_cast<uint64_t>(seed));
    testing::RandomTableOptions table_options;
    table_options.min_rows = 150;
    table_options.max_rows = 400;
    auto table = testing::RandomTable(&rng, table_options);
    db::AggregateQuery target = testing::RandomAggregateQuery(*table, &rng);
    if (target.predicates.empty()) {
      target.predicates.push_back(
          testing::RandomPredicate(*table, &rng, 0.0));
    }
    const std::string utterance = nlq::VerbalizeQuery(target);

    const size_t threads = kThreadCounts[seed % 3];
    MuveOptions cached_options;
    cached_options.execution.num_threads = threads;
    MuveOptions uncached_options = cached_options;
    uncached_options.cache_capacity = 0;
    MuveEngine cached(table, cached_options);
    MuveEngine uncached(table, uncached_options);

    for (const char* phase : {"cold", "warm"}) {
      const auto expected = uncached.Ask(Request::Text(utterance));
      const auto actual = cached.Ask(Request::Text(utterance));
      ASSERT_EQ(expected.ok(), actual.ok())
          << "seed " << seed << " " << phase << " \"" << utterance << "\"";
      if (!expected.ok()) break;
      const std::string context = "seed " + std::to_string(seed) + " " +
                                  phase + " threads " +
                                  std::to_string(threads) + " \"" +
                                  utterance + "\"";
      EXPECT_EQ(expected->base_query.CanonicalKey(),
                actual->base_query.CanonicalKey())
          << context;
      EXPECT_EQ(expected->base_confidence, actual->base_confidence)
          << context;
      ASSERT_EQ(expected->candidates.size(), actual->candidates.size())
          << context;
      for (size_t i = 0; i < expected->candidates.size(); ++i) {
        EXPECT_EQ(expected->candidates[i].query.CanonicalKey(),
                  actual->candidates[i].query.CanonicalKey())
            << context << " candidate " << i;
        EXPECT_EQ(expected->candidates[i].probability,
                  actual->candidates[i].probability)
            << context << " candidate " << i;
      }
      EXPECT_EQ(PlanSignature(expected->plan.multiplot),
                PlanSignature(actual->plan.multiplot))
          << context;
      EXPECT_EQ(viz::RenderMultiplot(expected->plan.multiplot,
                                     render_options),
                viz::RenderMultiplot(actual->plan.multiplot,
                                     render_options))
          << context;
    }

    const PipelineCacheStats stats = cached.cache_stats();
    if (stats.plans.lookups() > 0) {
      // The uncached engine keeps all three caches silent.
      const PipelineCacheStats off = uncached.cache_stats();
      EXPECT_EQ(off.Total().lookups(), 0u) << "seed " << seed;
      plan_hits += stats.plans.hits;
    }
  }
  // Warm replays hit the plan memo on at least some seeds — the suite
  // must not silently degenerate into translation failures.
  EXPECT_GT(plan_hits, 0u);
}

TEST_F(DifferentialTest, DeadlineRequestVsClassicPipeline) {
  // The serving API's deadline machinery must be invisible when time
  // never runs out. Three implementations of the same ask must agree
  // byte-for-byte at every thread count:
  //   - AskText (classic wrapper, infinite deadline, cached engine);
  //   - Ask with a generous *finite* real-clock deadline — this takes
  //     every deadline-aware code path (stage budgets, grain-checked
  //     scans, protected-base unit scheduling, seeded ILP-free greedy)
  //     without any of them firing;
  //   - Ask with bypass_cache on the cached engine vs a cache-disabled
  //     engine (a bypass request must equal the uncached pipeline and
  //     leave the session caches untouched).
  for (int seed = 0; seed < kNumSeeds; ++seed) {
    Rng rng(kSeedBase + 800000 + static_cast<uint64_t>(seed));
    testing::RandomTableOptions table_options;
    table_options.min_rows = 150;
    table_options.max_rows = 400;
    auto table = testing::RandomTable(&rng, table_options);
    db::AggregateQuery target = testing::RandomAggregateQuery(*table, &rng);
    if (target.predicates.empty()) {
      target.predicates.push_back(
          testing::RandomPredicate(*table, &rng, 0.0));
    }
    const std::string utterance = nlq::VerbalizeQuery(target);

    const size_t threads = kThreadCounts[seed % 3];
    MuveOptions options;
    options.execution.num_threads = threads;
    MuveOptions uncached_options = options;
    uncached_options.cache_capacity = 0;
    MuveEngine classic(table, options);
    MuveEngine bounded(table, options);
    MuveEngine uncached(table, uncached_options);

    for (const char* phase : {"cold", "warm"}) {
      const std::string context = "seed " + std::to_string(seed) + " " +
                                  phase + " threads " +
                                  std::to_string(threads) + " \"" +
                                  utterance + "\"";
      const auto expected = classic.AskText(utterance);

      Request request = Request::Text(utterance);
      request.deadline = Deadline::AfterMillis(1e9);  // Never expires.
      const auto finite = bounded.Ask(request);

      Request bypass = Request::Text(utterance);
      bypass.bypass_cache = true;
      const auto bypassed = classic.Ask(bypass);
      const auto reference = uncached.AskText(utterance);

      ASSERT_EQ(expected.ok(), finite.ok()) << context;
      ASSERT_EQ(reference.ok(), bypassed.ok()) << context;
      if (!expected.ok()) break;

      const MuveEngine::Answer* comparisons[][2] = {
          {&*expected, &*finite}, {&*reference, &*bypassed}};
      for (const auto& pair : comparisons) {
        const MuveEngine::Answer& lhs = *pair[0];
        const MuveEngine::Answer& rhs = *pair[1];
        EXPECT_EQ(lhs.base_query.CanonicalKey(),
                  rhs.base_query.CanonicalKey())
            << context;
        EXPECT_EQ(lhs.base_confidence, rhs.base_confidence) << context;
        ASSERT_EQ(lhs.candidates.size(), rhs.candidates.size()) << context;
        for (size_t i = 0; i < lhs.candidates.size(); ++i) {
          EXPECT_EQ(lhs.candidates[i].query.CanonicalKey(),
                    rhs.candidates[i].query.CanonicalKey())
              << context << " candidate " << i;
          EXPECT_EQ(lhs.candidates[i].probability,
                    rhs.candidates[i].probability)
              << context << " candidate " << i;
        }
        EXPECT_EQ(PlanSignature(lhs.plan.multiplot),
                  PlanSignature(rhs.plan.multiplot))
            << context;
        ASSERT_EQ(lhs.execution.values.size(), rhs.execution.values.size())
            << context;
        for (size_t i = 0; i < lhs.execution.values.size(); ++i) {
          const bool both_nan = std::isnan(lhs.execution.values[i]) &&
                                std::isnan(rhs.execution.values[i]);
          EXPECT_TRUE(both_nan ||
                      lhs.execution.values[i] == rhs.execution.values[i])
              << context << " value " << i;
        }
      }
      // The generous finite deadline never actually degraded anything.
      EXPECT_FALSE(finite->degradation.degraded()) << context;
      EXPECT_EQ(finite->degradation.Describe(), "exact") << context;
    }
    // Bypass requests left the cache-disabled engine's caches silent and
    // never wrote through the classic engine's memo on their own.
    EXPECT_EQ(uncached.cache_stats().Total().lookups(), 0u)
        << "seed " << seed;
  }
}

/// Full byte-identity check between two answers (query keys,
/// probabilities, plan structure, executed values, rendered multiplot).
void ExpectAnswersIdentical(const MuveEngine::Answer& lhs,
                            const MuveEngine::Answer& rhs,
                            const std::string& context) {
  EXPECT_EQ(lhs.base_query.CanonicalKey(), rhs.base_query.CanonicalKey())
      << context;
  EXPECT_EQ(lhs.base_confidence, rhs.base_confidence) << context;
  ASSERT_EQ(lhs.candidates.size(), rhs.candidates.size()) << context;
  for (size_t i = 0; i < lhs.candidates.size(); ++i) {
    EXPECT_EQ(lhs.candidates[i].query.CanonicalKey(),
              rhs.candidates[i].query.CanonicalKey())
        << context << " candidate " << i;
    EXPECT_EQ(lhs.candidates[i].probability, rhs.candidates[i].probability)
        << context << " candidate " << i;
  }
  EXPECT_EQ(PlanSignature(lhs.plan.multiplot),
            PlanSignature(rhs.plan.multiplot))
      << context;
  ASSERT_EQ(lhs.execution.values.size(), rhs.execution.values.size())
      << context;
  for (size_t i = 0; i < lhs.execution.values.size(); ++i) {
    const bool both_nan = std::isnan(lhs.execution.values[i]) &&
                          std::isnan(rhs.execution.values[i]);
    EXPECT_TRUE(both_nan ||
                lhs.execution.values[i] == rhs.execution.values[i])
        << context << " value " << i;
  }
  viz::AsciiRenderOptions render_options;
  EXPECT_EQ(viz::RenderMultiplot(lhs.plan.multiplot, render_options),
            viz::RenderMultiplot(rhs.plan.multiplot, render_options))
      << context;
}

TEST_F(DifferentialTest, ServerDepthOneReplaysSequentialAsk) {
  // The serving front end must be a pure wrapper when stripped of all
  // concurrency: one worker, queue depth 1, infinite deadlines, requests
  // submitted one at a time. Replaying a workload through that server
  // must be byte-identical to calling MuveEngine::Ask directly on one
  // engine per session built with the server's own engine options —
  // admission, EDF queueing, single-flight, and session management may
  // add bookkeeping but never change an answer.
  for (int seed = 0; seed < kNumSeeds; ++seed) {
    Rng rng(kSeedBase + 900000 + static_cast<uint64_t>(seed));
    testing::RandomTableOptions table_options;
    table_options.min_rows = 150;
    table_options.max_rows = 400;
    auto table = testing::RandomTable(&rng, table_options);

    // A short session-tagged workload with repeats (repeats replay the
    // session caches, which must also behave identically both ways).
    std::vector<std::pair<std::string, std::string>> workload;
    for (int q = 0; q < 4; ++q) {
      db::AggregateQuery target =
          testing::RandomAggregateQuery(*table, &rng);
      if (target.predicates.empty()) {
        target.predicates.push_back(
            testing::RandomPredicate(*table, &rng, 0.0));
      }
      const std::string session = q % 2 == 0 ? "alice" : "bob";
      const std::string utterance = nlq::VerbalizeQuery(target);
      workload.emplace_back(session, utterance);
      workload.emplace_back(session, utterance);  // Warm replay.
    }

    serve::ServerOptions server_options;
    server_options.num_workers = 1;
    server_options.max_queue_depth = 1;
    serve::Server server(table, server_options);

    std::unordered_map<std::string, std::unique_ptr<MuveEngine>> reference;
    for (const auto& [session, utterance] : workload) {
      auto& engine = reference[session];
      if (engine == nullptr) {
        engine = std::make_unique<MuveEngine>(
            table, server.options().sessions.engine);
      }
      const auto expected = engine->Ask(Request::Text(utterance));
      const auto served =
          server.Ask(session, Request::Text(utterance));
      const std::string context = "seed " + std::to_string(seed) +
                                  " session " + session + " \"" +
                                  utterance + "\"";
      ASSERT_EQ(expected.ok(), served.ok()) << context;
      if (!expected.ok()) continue;
      ExpectAnswersIdentical(*expected, served->answer, context);
      EXPECT_FALSE(served->shared) << context;
      EXPECT_TRUE(served->deadline_met) << context;
    }
    const serve::ServerStats stats = server.stats();
    EXPECT_EQ(stats.shed_total(), 0u) << "seed " << seed;
    EXPECT_EQ(stats.failed + stats.completed, stats.admitted)
        << "seed " << seed;
  }
}

TEST_F(DifferentialTest, IdenticallySeededServersReplayVoiceIdentically) {
  // Voice noise is per-session pseudo-random, derived from the session
  // manager's base seed and the session id. Two identically configured
  // servers replaying the same sequential voice workload must therefore
  // produce byte-identical transcripts and answers — the property that
  // makes production incidents replayable offline.
  const int voice_seeds = std::max(1, kNumSeeds / 10);
  for (int seed = 0; seed < voice_seeds; ++seed) {
    Rng rng(kSeedBase + 950000 + static_cast<uint64_t>(seed));
    testing::RandomTableOptions table_options;
    table_options.min_rows = 150;
    table_options.max_rows = 400;
    auto table = testing::RandomTable(&rng, table_options);

    serve::ServerOptions server_options;
    server_options.num_workers = 1;
    server_options.max_queue_depth = 1;
    serve::Server first(table, server_options);
    serve::Server second(table, server_options);

    speech::SpeechNoiseOptions noise;
    noise.substitution_rate = 0.15;
    for (int q = 0; q < 6; ++q) {
      db::AggregateQuery target =
          testing::RandomAggregateQuery(*table, &rng);
      if (target.predicates.empty()) {
        target.predicates.push_back(
            testing::RandomPredicate(*table, &rng, 0.0));
      }
      const std::string session = q % 2 == 0 ? "alice" : "bob";
      const std::string utterance = nlq::VerbalizeQuery(target);
      const auto lhs =
          first.Ask(session, Request::Voice(utterance, nullptr, noise));
      const auto rhs =
          second.Ask(session, Request::Voice(utterance, nullptr, noise));
      const std::string context = "seed " + std::to_string(seed) +
                                  " session " + session + " \"" +
                                  utterance + "\"";
      ASSERT_EQ(lhs.ok(), rhs.ok()) << context;
      if (!lhs.ok()) continue;
      EXPECT_EQ(lhs->answer.transcript, rhs->answer.transcript) << context;
      ExpectAnswersIdentical(lhs->answer, rhs->answer, context);
    }
  }
}

}  // namespace
}  // namespace muve
