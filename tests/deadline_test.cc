/// Fake-clock deadline-injection suite for the end-to-end serving
/// deadline (request -> stage budgets -> cooperative cancellation).
///
/// Every layer is exercised with an injected FakeClock so expiry is
/// exact and deterministic — no sleeps, no wall-clock flakiness:
///   - db::Executor: expired deadlines cancel serial and partitioned
///     scans with Status::Timeout; unexpired finite deadlines are
///     byte-identical to the unbounded scan.
///   - exec::Engine: non-base merge units are dropped on expiry while
///     the base candidate's unit always completes; infinite controls
///     reproduce the legacy path exactly.
///   - core::GreedyPlanner: anytime behavior — an expired deadline
///     returns the best-so-far (possibly empty) plan flagged timed_out.
///   - core::IlpPlanner: an expired deadline falls back to the greedy
///     warm-start incumbent instead of erroring.
///   - nlq::CandidateGenerator: expired budgets cap the expansion to the
///     base candidate and never pollute the session cache.
///   - muve::MuveEngine: for each pipeline stage, forcing expiry at that
///     stage's entry degrades the answer to the expected ladder rung,
///     identically at 1, 2, and 8 threads.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cache/query_cache.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/greedy_planner.h"
#include "core/ilp_planner.h"
#include "db/executor.h"
#include "exec/engine.h"
#include "muve/muve_engine.h"
#include "nlq/candidate_generator.h"
#include "testing/sanitizer.h"
#include "workload/datasets.h"

namespace muve {
namespace {

std::shared_ptr<db::Table> Table311(size_t rows = 20000) {
  Rng rng(4242);
  return workload::Make311Table(rows, &rng);
}

db::AggregateQuery Query311(db::AggregateFunction fn,
                            const std::string& agg,
                            const std::string& column,
                            const std::string& value) {
  db::AggregateQuery query;
  query.table = "nyc311";
  query.function = fn;
  query.aggregate_column = agg;
  query.predicates = {db::Predicate::Equals(column, db::Value(value))};
  return query;
}

/// Candidates spanning several merge units: borough value variants merge
/// into one grouped unit (containing the base), the AVG and the
/// complaint-type candidates land in others.
core::CandidateSet MultiUnitCandidates() {
  core::CandidateSet set;
  set.Add(Query311(db::AggregateFunction::kCount, "", "borough",
                   "brooklyn"),
          0.4);
  set.Add(Query311(db::AggregateFunction::kCount, "", "borough", "bronx"),
          0.25);
  set.Add(Query311(db::AggregateFunction::kAvg, "open_hours", "borough",
                   "brooklyn"),
          0.2);
  set.Add(Query311(db::AggregateFunction::kCount, "", "complaint_type",
                   "noise"),
          0.15);
  return set;
}

/// Canonical structure string for exact plan comparison across thread
/// counts.
std::string PlanSignature(const core::Multiplot& multiplot) {
  std::ostringstream out;
  for (size_t r = 0; r < multiplot.rows.size(); ++r) {
    out << "row" << r << "[";
    for (const core::Plot& plot : multiplot.rows[r]) {
      out << "(" << plot.query_template.key << ":";
      for (const core::PlotBar& bar : plot.bars) {
        out << bar.candidate_index << (bar.highlighted ? "R" : "p") << ",";
      }
      out << ")";
    }
    out << "]";
  }
  return out.str();
}

Deadline ExpiredDeadline(const FakeClock* clock) {
  return Deadline::AfterMillis(0.0, clock);
}

/// Clock that advances one fixed step on every read. Because the
/// executor reads the clock exactly once per cancellation point (one
/// `AfterMillis` at deadline construction, then one `Expired()` per
/// partition grain), a budget of k + 0.5 steps expires on the (k+1)-th
/// grain check — making "cancelled mid-scan after exactly k grains" a
/// deterministic property of the check cadence, independent of machine
/// speed. Thread-safe: parallel workers each consume distinct reads.
class SteppingClock : public ClockSource {
 public:
  explicit SteppingClock(double step_millis = 1.0) : step_(step_millis) {}

  double NowMillis() const override {
    return step_ * static_cast<double>(
                       reads_.fetch_add(1, std::memory_order_relaxed) + 1);
  }

 private:
  const double step_;
  mutable std::atomic<uint64_t> reads_{0};
};

// ---------------------------------------------------------------------
// db::Executor cooperative cancellation.
// ---------------------------------------------------------------------

TEST(DeadlineExecutorTest, ExpiredDeadlineCancelsSerialScan) {
  auto table = Table311(5000);
  FakeClock clock;
  db::ExecutorOptions options;
  options.deadline = ExpiredDeadline(&clock);
  const auto result = db::Executor::Execute(
      *table,
      Query311(db::AggregateFunction::kCount, "", "borough", "brooklyn"),
      options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
}

TEST(DeadlineExecutorTest, ExpiredDeadlineCancelsParallelScan) {
  auto table = Table311(5000);
  ThreadPool pool(4);
  FakeClock clock;
  db::ExecutorOptions options;
  options.pool = &pool;
  options.min_parallel_rows = 100;
  options.parallel_grain = 256;
  options.deadline = ExpiredDeadline(&clock);
  const auto result = db::Executor::Execute(
      *table,
      Query311(db::AggregateFunction::kCount, "", "borough", "brooklyn"),
      options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
}

TEST(DeadlineExecutorTest, ExpiredDeadlineCancelsGroupedScan) {
  auto table = Table311(5000);
  db::GroupByQuery query;
  query.table = "nyc311";
  query.group_column = "borough";
  query.group_values = {"brooklyn", "bronx"};
  query.aggregates = {{db::AggregateFunction::kCount, ""}};
  FakeClock clock;
  for (const bool parallel : {false, true}) {
    ThreadPool pool(4);
    db::ExecutorOptions options;
    if (parallel) {
      options.pool = &pool;
      options.min_parallel_rows = 100;
      options.parallel_grain = 256;
    }
    options.deadline = ExpiredDeadline(&clock);
    const auto result = db::Executor::ExecuteGrouped(*table, query, options);
    ASSERT_FALSE(result.ok()) << (parallel ? "parallel" : "serial");
    EXPECT_EQ(result.status().code(), StatusCode::kTimeout)
        << (parallel ? "parallel" : "serial");
  }
}

TEST(DeadlineExecutorTest, UnexpiredFiniteDeadlineMatchesUnbounded) {
  auto table = Table311(5000);
  const db::AggregateQuery query = Query311(
      db::AggregateFunction::kAvg, "open_hours", "borough", "brooklyn");
  FakeClock clock;  // Frozen: a finite budget never expires mid-scan.
  for (const bool parallel : {false, true}) {
    ThreadPool pool(4);
    db::ExecutorOptions unbounded;
    db::ExecutorOptions bounded;
    bounded.deadline = Deadline::AfterMillis(10.0, &clock);
    if (parallel) {
      for (db::ExecutorOptions* options : {&unbounded, &bounded}) {
        options->pool = &pool;
        options->min_parallel_rows = 100;
        options->parallel_grain = 256;
      }
    }
    const auto expected = db::Executor::Execute(*table, query, unbounded);
    const auto actual = db::Executor::Execute(*table, query, bounded);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(actual.ok());
    EXPECT_EQ(expected->value, actual->value);
    EXPECT_EQ(expected->rows_matched, actual->rows_matched);
    EXPECT_EQ(expected->empty_input, actual->empty_input);
  }
}

// The vectorized batch path keeps the scalar path's cancellation
// cadence exactly: one deadline check per partition grain, batches
// tiling each grain from its start. A SteppingClock whose budget covers
// 2.5 checks therefore cancels both paths mid-scan at the identical
// row — the start of the third grain — proving batching neither skips
// nor adds cancellation points.
TEST(DeadlineExecutorTest, BatchPathCancelsMidScanAtSameGrainAsScalar) {
  auto table = Table311(5000);
  const db::AggregateQuery query = Query311(
      db::AggregateFunction::kCount, "", "borough", "brooklyn");
  for (const bool vectorize : {true, false}) {
    SteppingClock clock;
    db::ExecutorOptions options;
    options.vectorize = vectorize;
    options.parallel_grain = 256;
    // Read 1 anchors the deadline; reads 2 and 3 (grain checks at rows
    // 0 and 256) pass; read 4 (row 512) expires.
    options.deadline = Deadline::AfterMillis(2.5, &clock);
    const auto result = db::Executor::Execute(*table, query, options);
    ASSERT_FALSE(result.ok()) << (vectorize ? "vector" : "scalar");
    EXPECT_EQ(result.status().code(), StatusCode::kTimeout)
        << (vectorize ? "vector" : "scalar");
    EXPECT_EQ(result.status().message(),
              "aggregate scan cancelled at row 512/5000")
        << (vectorize ? "vector" : "scalar");
  }
}

TEST(DeadlineExecutorTest, BatchPathCancelsMidScanParallel) {
  auto table = Table311(5000);
  ThreadPool pool(4);
  SteppingClock clock;
  db::ExecutorOptions options;
  options.pool = &pool;
  options.min_parallel_rows = 100;
  options.parallel_grain = 256;  // 20 chunks; only 10 checks can pass.
  options.deadline = Deadline::AfterMillis(10.5, &clock);
  const auto result = db::Executor::Execute(
      *table,
      Query311(db::AggregateFunction::kCount, "", "borough", "brooklyn"),
      options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(result.status().message(),
            "parallel aggregate scan cancelled (5000 rows)");
}

TEST(DeadlineExecutorTest, BatchPathCancelsGroupedScanMidScan) {
  auto table = Table311(5000);
  db::GroupByQuery query;
  query.table = "nyc311";
  query.group_column = "borough";
  query.group_values = {"brooklyn", "bronx"};
  query.aggregates = {{db::AggregateFunction::kCount, ""},
                      {db::AggregateFunction::kAvg, "open_hours"}};
  {
    SteppingClock clock;
    db::ExecutorOptions options;
    options.parallel_grain = 256;
    options.deadline = Deadline::AfterMillis(2.5, &clock);
    const auto result = db::Executor::ExecuteGrouped(*table, query, options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
    EXPECT_EQ(result.status().message(),
              "grouped scan cancelled at row 512/5000");
  }
  {
    ThreadPool pool(4);
    SteppingClock clock;
    db::ExecutorOptions options;
    options.pool = &pool;
    options.min_parallel_rows = 100;
    options.parallel_grain = 256;
    options.deadline = Deadline::AfterMillis(10.5, &clock);
    const auto result = db::Executor::ExecuteGrouped(*table, query, options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
    EXPECT_EQ(result.status().message(),
              "parallel grouped scan cancelled (5000 rows)");
  }
}

// A scan cancelled mid-flight never stores its partial state: the cache
// stays empty, a later unbounded run populates it, and only then does a
// repeat replay from the cache — bitwise identical to the computed run.
TEST(DeadlineExecutorTest, TimedOutBatchScanNeverPopulatesCache) {
  auto table = Table311(5000);
  cache::QueryCache cache(64);
  const db::AggregateQuery query = Query311(
      db::AggregateFunction::kAvg, "open_hours", "borough", "brooklyn");

  SteppingClock clock;
  db::ExecutorOptions bounded;
  bounded.cache = &cache;
  bounded.parallel_grain = 256;
  bounded.deadline = Deadline::AfterMillis(2.5, &clock);
  const auto timed_out = db::Executor::Execute(*table, query, bounded);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);

  db::ExecutorOptions unbounded;
  unbounded.cache = &cache;
  const auto computed = db::Executor::Execute(*table, query, unbounded);
  ASSERT_TRUE(computed.ok());
  EXPECT_EQ(cache.size(), 1u);

  const auto replayed = db::Executor::Execute(*table, query, unbounded);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(computed->value, replayed->value);
  EXPECT_EQ(computed->rows_matched, replayed->rows_matched);
  EXPECT_EQ(computed->empty_input, replayed->empty_input);
}

// A timeout racing storage reorganization: the scan times out against a
// snapshot, the table flushes and keeps ingesting meanwhile — the cache
// must stay empty (no partial from the cancelled scan, under any run
// layout), and the post-flush recompute is correct and cacheable.
TEST(DeadlineExecutorTest, FlushDuringTimeoutNeverPopulatesCache) {
  auto table = Table311(5000);
  cache::QueryCache cache(64);
  const db::AggregateQuery query = Query311(
      db::AggregateFunction::kCount, "", "borough", "brooklyn");

  const db::TableSnapshot snapshot = table->Snapshot();
  SteppingClock clock;
  db::ExecutorOptions bounded;
  bounded.cache = &cache;
  bounded.parallel_grain = 256;
  bounded.deadline = Deadline::AfterMillis(2.5, &clock);
  const auto timed_out = db::Executor::Execute(snapshot, query, bounded);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kTimeout);

  // The writer proceeds: the memtable tail is sealed into a run and more
  // rows stream in. Still nothing cached from the cancelled scan.
  table->Flush();
  for (size_t r = 0; r < 32; ++r) {
    ASSERT_TRUE(table
                    ->AppendRow({db::Value("brooklyn"), db::Value("noise"),
                                 db::Value("nypd"), db::Value("open"),
                                 db::Value("phone"), db::Value(1.0),
                                 db::Value(int64_t{1})})
                    .ok());
  }
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);

  // Recompute on the live (reorganized) table: per-run partials land in
  // the cache and a replay serves them, in agreement with an uncached
  // oracle scan.
  db::ExecutorOptions unbounded;
  unbounded.cache = &cache;
  const auto computed = db::Executor::Execute(*table, query, unbounded);
  const auto oracle = db::Executor::Execute(*table, query);
  ASSERT_TRUE(computed.ok() && oracle.ok());
  EXPECT_EQ(computed->value, oracle->value);
  EXPECT_GT(cache.size(), 0u);
  const auto replayed = db::Executor::Execute(*table, query, unbounded);
  ASSERT_TRUE(replayed.ok());
  EXPECT_GT(cache.stats().hits, 0u);
  EXPECT_EQ(computed->value, replayed->value);
}

// A snapshot pinned before its table is destroyed still serves
// deadline-bounded scans: a generous budget completes with correct
// values, an expired one cancels cleanly — and neither path touches
// freed storage.
TEST(DeadlineExecutorTest, SnapshotOutlivesTableUnderDeadline) {
  db::TableSnapshot survivor;
  double expected = 0.0;
  {
    auto table = Table311(3000);
    table->Flush();
    survivor = table->Snapshot();
    const auto reference = db::Executor::Execute(
        *table,
        Query311(db::AggregateFunction::kCount, "", "borough", "brooklyn"));
    ASSERT_TRUE(reference.ok());
    expected = reference->value;
    // `table` dies here; the snapshot holds the last pin.
  }
  ASSERT_TRUE(survivor.valid());

  cache::QueryCache cache(16);
  SteppingClock clock;
  db::ExecutorOptions bounded;
  bounded.cache = &cache;
  bounded.parallel_grain = 256;
  bounded.deadline = Deadline::AfterMillis(1000.0, &clock);
  const auto result = db::Executor::Execute(
      survivor,
      Query311(db::AggregateFunction::kCount, "", "borough", "brooklyn"),
      bounded);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->value, expected);

  SteppingClock expired_clock;
  db::ExecutorOptions expiring = bounded;
  expiring.cache = &cache;
  expiring.deadline = Deadline::AfterMillis(0.5, &expired_clock);
  const auto cancelled = db::Executor::Execute(
      survivor,
      Query311(db::AggregateFunction::kAvg, "open_hours", "borough",
               "bronx"),
      expiring);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kTimeout);
  // Only the completed scan's run partials are cached.
  EXPECT_EQ(cache.size(), 1u);
}

// ---------------------------------------------------------------------
// exec::Engine unit dropping.
// ---------------------------------------------------------------------

TEST(DeadlineEngineTest, ExpiredDeadlineDropsOnlyNonBaseUnits) {
  for (const size_t threads : {size_t{1}, size_t{4}}) {
    exec::EngineOptions options;
    options.num_threads = threads;
    exec::Engine engine(Table311(), options);
    const core::CandidateSet set = MultiUnitCandidates();
    const std::vector<size_t> subset = {0, 1, 2, 3};

    FakeClock clock;
    exec::ExecControls controls;
    controls.deadline = ExpiredDeadline(&clock);
    auto bounded = engine.Execute(set, subset, controls);
    ASSERT_TRUE(bounded.ok()) << "threads " << threads;
    EXPECT_TRUE(bounded->deadline_hit) << "threads " << threads;
    EXPECT_GE(bounded->units_dropped, 1u) << "threads " << threads;
    // The base candidate's unit is protected: its value (and those of
    // any candidate merged into the same unit) materialized anyway.
    EXPECT_FALSE(std::isnan(bounded->values[0])) << "threads " << threads;
    // Dropped units leave their candidates NaN.
    size_t executed = 0;
    for (const size_t i : subset) {
      if (!std::isnan(bounded->values[i])) ++executed;
    }
    EXPECT_LT(executed, subset.size()) << "threads " << threads;

    // Whatever did execute matches the unbounded run bitwise.
    auto unbounded = engine.Execute(set, subset);
    ASSERT_TRUE(unbounded.ok());
    for (const size_t i : subset) {
      if (std::isnan(bounded->values[i])) continue;
      EXPECT_EQ(bounded->values[i], unbounded->values[i])
          << "threads " << threads << " candidate " << i;
    }
  }
}

TEST(DeadlineEngineTest, InfiniteControlsMatchLegacyExecution) {
  for (const size_t threads : {size_t{1}, size_t{4}}) {
    exec::EngineOptions options;
    options.num_threads = threads;
    options.cache_capacity = 0;  // No cross-call cache coupling.
    exec::Engine engine(Table311(), options);
    const core::CandidateSet set = MultiUnitCandidates();
    const std::vector<size_t> subset = {0, 1, 2, 3};
    auto legacy = engine.Execute(set, subset);
    auto controlled = engine.Execute(set, subset, exec::ExecControls{});
    ASSERT_TRUE(legacy.ok());
    ASSERT_TRUE(controlled.ok());
    ASSERT_EQ(legacy->values.size(), controlled->values.size());
    for (size_t i = 0; i < legacy->values.size(); ++i) {
      const bool both_nan = std::isnan(legacy->values[i]) &&
                            std::isnan(controlled->values[i]);
      EXPECT_TRUE(both_nan || legacy->values[i] == controlled->values[i])
          << "threads " << threads << " candidate " << i;
    }
    EXPECT_EQ(legacy->queries_issued, controlled->queries_issued);
    EXPECT_FALSE(controlled->deadline_hit);
    EXPECT_EQ(controlled->units_dropped, 0u);
  }
}

TEST(DeadlineEngineTest, MultiplotPruningRemovesNaNBars) {
  exec::Engine engine(Table311());
  const core::CandidateSet set = MultiUnitCandidates();

  // One single-bar plot per candidate: each dropped unit leaves a plot
  // empty, so pruning must remove both the bar and its plot.
  core::Multiplot multiplot;
  multiplot.rows.resize(1);
  for (size_t i = 0; i < set.size(); ++i) {
    core::Plot plot;
    plot.query_template.key = "t" + std::to_string(i);
    core::PlotBar bar;
    bar.candidate_index = i;
    bar.highlighted = true;
    plot.bars.push_back(bar);
    multiplot.rows[0].push_back(std::move(plot));
  }

  FakeClock clock;
  exec::ExecControls controls;
  controls.deadline = ExpiredDeadline(&clock);
  auto execution = engine.ExecuteMultiplot(set, &multiplot, controls);
  ASSERT_TRUE(execution.ok());
  EXPECT_TRUE(execution->deadline_hit);
  EXPECT_GE(execution->bars_dropped, 1u);
  EXPECT_EQ(execution->bars_dropped, execution->plots_dropped);
  // Everything still shown carries an executed value; the base bar is
  // among the survivors.
  bool base_shown = false;
  multiplot.ForEachPlot([&](const core::Plot& plot) {
    for (const core::PlotBar& bar : plot.bars) {
      EXPECT_FALSE(std::isnan(bar.value));
      base_shown |= bar.candidate_index == 0;
    }
  });
  EXPECT_TRUE(base_shown);
}

// ---------------------------------------------------------------------
// Planners.
// ---------------------------------------------------------------------

TEST(DeadlineGreedyTest, ExpiredDeadlineReturnsTimedOutPlan) {
  const core::GreedyPlanner planner;
  FakeClock clock;
  core::PlannerConfig config;
  config.deadline = ExpiredDeadline(&clock);
  auto plan = planner.Plan(MultiUnitCandidates(), config);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->timed_out);
  // Expiry before the first step: nothing was selected yet.
  EXPECT_TRUE(plan->multiplot.empty());
}

TEST(DeadlineGreedyTest, UnexpiredFiniteDeadlineMatchesInfinite) {
  const core::GreedyPlanner planner;
  const core::CandidateSet set = MultiUnitCandidates();
  core::PlannerConfig unbounded;
  auto expected = planner.Plan(set, unbounded);
  ASSERT_TRUE(expected.ok());
  EXPECT_FALSE(expected->timed_out);

  FakeClock clock;  // Frozen: the budget cannot run out mid-plan.
  core::PlannerConfig bounded;
  bounded.deadline = Deadline::AfterMillis(10.0, &clock);
  auto actual = planner.Plan(set, bounded);
  ASSERT_TRUE(actual.ok());
  EXPECT_FALSE(actual->timed_out);
  EXPECT_EQ(PlanSignature(expected->multiplot),
            PlanSignature(actual->multiplot));
  EXPECT_EQ(expected->expected_cost, actual->expected_cost);
}

TEST(DeadlineIlpTest, ExpiredDeadlineFallsBackToWarmStartHint) {
  const core::CandidateSet set = MultiUnitCandidates();
  const core::GreedyPlanner greedy;
  core::PlannerConfig greedy_config;
  auto incumbent = greedy.Plan(set, greedy_config);
  ASSERT_TRUE(incumbent.ok());
  ASSERT_FALSE(incumbent->multiplot.empty());

  const core::IlpPlanner ilp;
  FakeClock clock;
  core::PlannerConfig config;
  config.deadline = ExpiredDeadline(&clock);
  auto plan = ilp.PlanWithHint(set, config, &incumbent->multiplot);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->timed_out);
  // The solver had no time to improve on the seed: greedy quality, not
  // an empty screen.
  EXPECT_EQ(PlanSignature(plan->multiplot),
            PlanSignature(incumbent->multiplot));
}

// ---------------------------------------------------------------------
// Candidate generation.
// ---------------------------------------------------------------------

TEST(DeadlineGeneratorTest, ExpiredDeadlineCapsToBaseAndSkipsCache) {
  auto table = Table311(2000);
  auto index = std::make_shared<nlq::SchemaIndex>(table);
  nlq::CandidateGenerator generator(index);
  nlq::CandidateGenerator::Cache cache(16);
  generator.set_cache(&cache);

  const db::AggregateQuery base = Query311(
      db::AggregateFunction::kCount, "", "borough", "brooklyn");

  FakeClock clock;
  nlq::CandidateGenerator::GenerationConstraints constraints;
  constraints.deadline = ExpiredDeadline(&clock);
  bool capped = false;
  const core::CandidateSet degraded =
      generator.Generate(base, 1.0, {}, constraints, &capped);
  EXPECT_TRUE(capped);
  ASSERT_EQ(degraded.size(), 1u);
  EXPECT_EQ(degraded[0].query.CanonicalKey(), base.CanonicalKey());
  EXPECT_DOUBLE_EQ(degraded[0].probability, 1.0);

  // The capped set must not have been cached: an unconstrained call
  // recomputes the full expansion instead of replaying the stub.
  capped = true;
  const core::CandidateSet full = generator.Generate(
      base, 1.0, {}, nlq::CandidateGenerator::GenerationConstraints{},
      &capped);
  EXPECT_FALSE(capped);
  EXPECT_GT(full.size(), 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(DeadlineGeneratorTest, UnexpiredFiniteDeadlineMatchesUnbounded) {
  auto table = Table311(2000);
  auto index = std::make_shared<nlq::SchemaIndex>(table);
  nlq::CandidateGenerator generator(index);  // No cache attached.
  const db::AggregateQuery base = Query311(
      db::AggregateFunction::kCount, "", "borough", "brooklyn");
  const core::CandidateSet expected = generator.Generate(base, 1.0, {});

  FakeClock clock;
  nlq::CandidateGenerator::GenerationConstraints constraints;
  constraints.deadline = Deadline::AfterMillis(10.0, &clock);
  bool capped = true;
  const core::CandidateSet actual =
      generator.Generate(base, 1.0, {}, constraints, &capped);
  EXPECT_FALSE(capped);
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].query.CanonicalKey(),
              actual[i].query.CanonicalKey());
    EXPECT_EQ(expected[i].probability, actual[i].probability);
  }
}

// ---------------------------------------------------------------------
// Translation (the ladder's irreducible floor).
// ---------------------------------------------------------------------

TEST(DeadlineTranslatorTest, RecordsOverrunButStillTranslates) {
  auto table = Table311(2000);
  auto index = std::make_shared<nlq::SchemaIndex>(table);
  const nlq::Translator translator(index);
  FakeClock clock;
  bool overrun = false;
  auto bounded = translator.Translate("how many complaints in brooklyn",
                                      ExpiredDeadline(&clock), &overrun);
  ASSERT_TRUE(bounded.ok());
  EXPECT_TRUE(overrun);
  auto unbounded =
      translator.Translate("how many complaints in brooklyn");
  ASSERT_TRUE(unbounded.ok());
  EXPECT_EQ(bounded->query.CanonicalKey(), unbounded->query.CanonicalKey());
  EXPECT_EQ(bounded->confidence, unbounded->confidence);

  overrun = true;
  auto relaxed = translator.Translate("how many complaints in brooklyn",
                                      Deadline::AfterMillis(10.0, &clock),
                                      &overrun);
  ASSERT_TRUE(relaxed.ok());
  EXPECT_FALSE(overrun);
}

// ---------------------------------------------------------------------
// MuveEngine: per-stage expiry matrix.
// ---------------------------------------------------------------------

struct StageOutcome {
  std::string plan_signature;
  std::vector<double> shown_values;
  Degradation::Rung rung = Degradation::Rung::kExact;
};

/// Runs one request whose FakeClock jumps past the deadline at entry of
/// `expire_at`, and returns the (deterministic) outcome.
StageOutcome RunStageExpiry(size_t threads, Request::Stage expire_at) {
  MuveOptions options;
  options.execution.num_threads = threads;
  MuveEngine engine(Table311(10000), options);

  FakeClock clock;
  Request request = Request::Text("how many complaints in brooklyn");
  request.deadline = Deadline::AfterMillis(10.0, &clock);
  request.stage_observer = [&clock, expire_at](Request::Stage stage) {
    if (stage == expire_at) clock.AdvanceMillis(1000.0);
  };
  auto answer = engine.Ask(request);
  EXPECT_TRUE(answer.ok()) << "threads " << threads;
  StageOutcome outcome;
  if (!answer.ok()) return outcome;

  // Expiry anywhere in the pipeline must flag the answer degraded...
  EXPECT_TRUE(answer->degradation.degraded()) << "threads " << threads;
  outcome.rung = answer->degradation.rung;
  // ...while the base interpretation still reaches the screen with an
  // executed value (the bottom of the ladder is never empty).
  const auto location = answer->plan.multiplot.FindCandidate(0);
  EXPECT_TRUE(location.has_value()) << "threads " << threads;
  answer->plan.multiplot.ForEachPlot([&](const core::Plot& plot) {
    for (const core::PlotBar& bar : plot.bars) {
      EXPECT_FALSE(std::isnan(bar.value)) << "threads " << threads;
      outcome.shown_values.push_back(bar.value);
    }
  });
  outcome.plan_signature = PlanSignature(answer->plan.multiplot);

  switch (expire_at) {
    case Request::Stage::kTranslate:
    case Request::Stage::kGenerate:
    case Request::Stage::kPlan:
      // Planning had no budget left: base-query-only fallback plot.
      EXPECT_TRUE(answer->degradation.base_only_fallback)
          << "threads " << threads;
      EXPECT_EQ(outcome.rung, Degradation::Rung::kBaseOnly)
          << "threads " << threads;
      break;
    case Request::Stage::kExecute:
      // The front half ran in full; execution dropped non-base units.
      EXPECT_FALSE(answer->degradation.base_only_fallback)
          << "threads " << threads;
      EXPECT_TRUE(answer->execution.deadline_hit) << "threads " << threads;
      EXPECT_GE(answer->degradation.units_dropped, 1u)
          << "threads " << threads;
      EXPECT_EQ(outcome.rung, Degradation::Rung::kBaseOnly)
          << "threads " << threads;
      break;
    case Request::Stage::kAsr:
      break;
  }
  if (expire_at == Request::Stage::kGenerate) {
    EXPECT_TRUE(answer->degradation.candidates_capped)
        << "threads " << threads;
  }
  return outcome;
}

TEST(DeadlineMuveTest, StageExpiryDegradesDeterministicallyAcrossThreads) {
  const Request::Stage stages[] = {
      Request::Stage::kTranslate, Request::Stage::kGenerate,
      Request::Stage::kPlan, Request::Stage::kExecute};
  for (const Request::Stage stage : stages) {
    const StageOutcome reference = RunStageExpiry(1, stage);
    for (const size_t threads : {size_t{2}, size_t{8}}) {
      const StageOutcome outcome = RunStageExpiry(threads, stage);
      EXPECT_EQ(reference.plan_signature, outcome.plan_signature)
          << "stage " << static_cast<int>(stage) << " threads " << threads;
      EXPECT_EQ(reference.shown_values, outcome.shown_values)
          << "stage " << static_cast<int>(stage) << " threads " << threads;
      EXPECT_EQ(reference.rung, outcome.rung)
          << "stage " << static_cast<int>(stage) << " threads " << threads;
    }
  }
}

TEST(DeadlineMuveTest, DegradedRequestsNeverPoisonSessionCaches) {
  MuveOptions options;
  MuveEngine engine(Table311(10000), options);
  FakeClock clock;

  Request degraded = Request::Text("how many complaints in brooklyn");
  degraded.deadline = Deadline::AfterMillis(10.0, &clock);
  degraded.stage_observer = [&clock](Request::Stage stage) {
    if (stage == Request::Stage::kGenerate) clock.AdvanceMillis(1000.0);
  };
  auto first = engine.Ask(degraded);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->degradation.degraded());

  // The follow-up unconstrained request recomputes the full pipeline —
  // no memo hit, no capped candidate set replay.
  auto second = engine.Ask(Request::Text("how many complaints in brooklyn"));
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->degradation.degraded());
  EXPECT_EQ(engine.cache_stats().plans.hits, 0u);
  EXPECT_GT(second->candidates.size(), first->candidates.size());

  // The clean run memoizes; a third request replays it.
  auto third = engine.Ask(Request::Text("how many complaints in brooklyn"));
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(engine.cache_stats().plans.hits, 1u);
}

TEST(DeadlineMuveTest, IlpTimeoutUnderFiniteDeadlineDegradesPlan) {
  if (testing::kSanitizerBuild) {
    GTEST_SKIP() << "wall-clock solver budget is meaningless under the "
                    "~10x sanitizer slowdown";
  }
  // A real-clock request deadline far in the future keeps every stage
  // intact, while the tiny ILP budget forces the solver to fall back to
  // its greedy incumbent: the middle rung of the ladder.
  MuveOptions options;
  options.use_ilp = true;
  options.planner.timeout_ms = 0.05;
  options.generation.max_candidates = 12;
  MuveEngine engine(Table311(10000), options);
  Request request = Request::Text("how many complaints in brooklyn");
  request.deadline = Deadline::AfterMillis(1e9);
  auto answer = engine.Ask(request);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->degradation.ilp_fell_back);
  EXPECT_FALSE(answer->degradation.base_only_fallback);
  EXPECT_EQ(answer->degradation.rung, Degradation::Rung::kDegradedPlan);
  EXPECT_FALSE(answer->plan.multiplot.empty());
  EXPECT_TRUE(
      answer->plan.multiplot.Validate(options.planner.geometry).ok());
  // Execution was unconstrained: every shown bar has a value.
  answer->plan.multiplot.ForEachPlot([](const core::Plot& plot) {
    for (const core::PlotBar& bar : plot.bars) {
      EXPECT_FALSE(std::isnan(bar.value));
    }
  });
  EXPECT_EQ(answer->degradation.Describe(),
            "degraded-plan [ilp-fell-back]");
}

}  // namespace
}  // namespace muve
