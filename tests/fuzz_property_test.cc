// Deterministic fuzz-style property tests for the input-facing
// components: the SQL parser must reject malformed input with a parse
// error (never crash or throw) and round-trip what it accepts, and the
// Double Metaphone encoder must be total, deterministic, and convergent
// on arbitrary byte strings. All inputs derive from seeded Rngs; set
// MUVE_FUZZ_ITERS to scale the iteration counts up (the `slow` CTest
// variants do).

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/query.h"
#include "db/sql_parser.h"
#include "phonetics/double_metaphone.h"
#include "testing/fuzz_mutator.h"

namespace muve {
namespace {

using testing::FuzzIterations;
using testing::MutateBytes;
using testing::RandomSqlQuery;
using testing::RandomWord;

TEST(SqlParserFuzzTest, MutatedInputsNeverCrash) {
  const size_t iters = FuzzIterations("MUVE_FUZZ_ITERS", 3000);
  Rng rng(0xF0551);
  size_t accepted = 0;
  for (size_t it = 0; it < iters; ++it) {
    const std::string valid = RandomSqlQuery(&rng).ToSql();
    const std::string input = MutateBytes(&rng, valid, rng.UniformInt(7));
    // The only acceptable outcomes are a query or a parse error; any
    // crash or uncaught exception fails the whole test binary.
    const Result<db::AggregateQuery> parsed = db::ParseSql(input);
    if (!parsed.ok()) continue;
    ++accepted;
    // Whatever the parser accepts must round-trip: rendering and
    // re-parsing reproduces the same query.
    const Result<db::AggregateQuery> reparsed =
        db::ParseSql(parsed->ToSql());
    ASSERT_TRUE(reparsed.ok())
        << "accepted query failed to re-parse\ninput:    " << input
        << "\nrendered: " << parsed->ToSql()
        << "\nerror:    " << reparsed.status().message();
    EXPECT_EQ(parsed->ToSql(), reparsed->ToSql()) << "input: " << input;
    EXPECT_EQ(parsed->CanonicalKey(), reparsed->CanonicalKey())
        << "input: " << input;
  }
  // Mutations are small, so a healthy fraction of inputs stays valid —
  // guards against the suite degenerating into reject-everything.
  EXPECT_GT(accepted, iters / 20);
}

TEST(SqlParserFuzzTest, ValidQueriesRoundTrip) {
  const size_t iters = FuzzIterations("MUVE_FUZZ_ITERS", 3000);
  Rng rng(0xF0552);
  for (size_t it = 0; it < iters; ++it) {
    const db::AggregateQuery query = RandomSqlQuery(&rng);
    const Result<db::AggregateQuery> parsed = db::ParseSql(query.ToSql());
    ASSERT_TRUE(parsed.ok())
        << "valid query rejected: " << query.ToSql() << "\nerror: "
        << parsed.status().message();
    EXPECT_EQ(query.CanonicalKey(), parsed->CanonicalKey())
        << "sql: " << query.ToSql();

    // CanonicalKey must not depend on predicate order.
    db::AggregateQuery shuffled = *parsed;
    rng.Shuffle(&shuffled.predicates);
    EXPECT_EQ(parsed->CanonicalKey(), shuffled.CanonicalKey())
        << "sql: " << query.ToSql();
  }
}

TEST(MetaphoneFuzzTest, DeterministicBoundedAndConvergent) {
  const size_t iters = FuzzIterations("MUVE_FUZZ_ITERS", 4000);
  const phonetics::DoubleMetaphone metaphone;
  Rng rng(0xF0553);
  for (size_t it = 0; it < iters; ++it) {
    const std::string word = RandomWord(&rng);
    const phonetics::MetaphoneCode code = metaphone.Encode(word);

    // Deterministic: encoding the same word twice yields the same codes.
    EXPECT_EQ(code, metaphone.Encode(word)) << "word: " << word;

    // Bounded output over the metaphone alphabet.
    for (const std::string* out : {&code.primary, &code.secondary}) {
      EXPECT_LE(out->size(), 4u) << "word: " << word;
      for (char c : *out) {
        EXPECT_TRUE((c >= 'A' && c <= 'Z') || c == '0')
            << "word: " << word << " code: " << *out;
      }
    }

    // Encoding is not idempotent (codes are words too, and re-encoding
    // can shorten them), but iterating must reach a fixed point fast:
    // empirically within 3 steps, asserted with headroom at 8.
    std::string current = code.primary;
    bool fixed = false;
    for (int step = 0; step < 8; ++step) {
      const std::string next = metaphone.Encode(current).primary;
      if (next == current) {
        fixed = true;
        break;
      }
      current = next;
    }
    EXPECT_TRUE(fixed) << "word: " << word
                       << " never reached a fixed point; last: " << current;
    if (fixed) {
      EXPECT_EQ(current, metaphone.Encode(current).primary)
          << "fixed point unstable for word: " << word;
    }
  }
}

}  // namespace
}  // namespace muve
