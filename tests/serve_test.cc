/// Unit and concurrency tests for the serving front end (src/serve/):
/// the bounded EDF admission queue with priority classes, LRU session
/// management with pinning, single-flight coalescing, and the Server
/// dispatch loop (admission control, load shedding, backpressure,
/// drain/stop semantics). scripts/check.sh reruns this suite under
/// ThreadSanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "db/query.h"
#include "db/table.h"
#include "net/wire.h"
#include "nlq/schema_index.h"
#include "serve/admission_queue.h"
#include "serve/server.h"
#include "serve/tenant.h"
#include "serve/session_manager.h"
#include "serve/single_flight.h"
#include "testing/sanitizer.h"
#include "workload/datasets.h"
#include "workload/load_generator.h"

namespace muve::serve {
namespace {

std::shared_ptr<db::Table> Table311(size_t rows = 2000) {
  Rng rng(777);
  return workload::Make311Table(rows, &rng);
}

// ---------------------------------------------------------------------
// AdmissionQueue.
// ---------------------------------------------------------------------

TEST(AdmissionQueueTest, PopsEarliestDeadlineFirst) {
  FakeClock clock;
  AdmissionQueue<int> queue(8);
  ASSERT_TRUE(queue
                  .Push(1, Deadline::AfterMillis(500.0, &clock),
                        RequestClass::kInteractive)
                  .ok());
  ASSERT_TRUE(queue
                  .Push(2, Deadline::AfterMillis(100.0, &clock),
                        RequestClass::kInteractive)
                  .ok());
  ASSERT_TRUE(queue
                  .Push(3, Deadline::AfterMillis(300.0, &clock),
                        RequestClass::kInteractive)
                  .ok());
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 3);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
}

TEST(AdmissionQueueTest, InfiniteDeadlinesSortLastFifoAmongThemselves) {
  FakeClock clock;
  AdmissionQueue<int> queue(8);
  ASSERT_TRUE(
      queue.Push(1, Deadline::Infinite(), RequestClass::kInteractive).ok());
  ASSERT_TRUE(
      queue.Push(2, Deadline::Infinite(), RequestClass::kInteractive).ok());
  ASSERT_TRUE(queue
                  .Push(3, Deadline::AfterMillis(1000.0, &clock),
                        RequestClass::kInteractive)
                  .ok());
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 3);  // Any finite deadline beats unbounded requests.
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);  // FIFO among equal (infinite) keys.
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
}

TEST(AdmissionQueueTest, InteractiveStrictlyOutranksReplay) {
  FakeClock clock;
  AdmissionQueue<int> queue(8);
  // A replay request with a *tighter* deadline still loses to any
  // interactive request: class priority is strict.
  ASSERT_TRUE(queue
                  .Push(1, Deadline::AfterMillis(1.0, &clock),
                        RequestClass::kReplay)
                  .ok());
  ASSERT_TRUE(queue
                  .Push(2, Deadline::AfterMillis(9999.0, &clock),
                        RequestClass::kInteractive)
                  .ok());
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
}

TEST(AdmissionQueueTest, FullQueueRejectsWithOverloaded) {
  AdmissionQueue<int> queue(2);
  EXPECT_TRUE(
      queue.Push(1, Deadline::Infinite(), RequestClass::kInteractive).ok());
  EXPECT_TRUE(
      queue.Push(2, Deadline::Infinite(), RequestClass::kInteractive).ok());
  const Status rejected =
      queue.Push(3, Deadline::Infinite(), RequestClass::kInteractive);
  EXPECT_EQ(rejected.code(), StatusCode::kOverloaded);
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.pushed(), 2u);
  EXPECT_EQ(queue.rejected_full(), 1u);
}

TEST(AdmissionQueueTest, RejectedMoveOnlyItemStaysWithCaller) {
  AdmissionQueue<std::unique_ptr<int>> queue(1);
  auto first = std::make_unique<int>(1);
  ASSERT_TRUE(queue
                  .Push(std::move(first), Deadline::Infinite(),
                        RequestClass::kInteractive)
                  .ok());
  auto second = std::make_unique<int>(2);
  const Status rejected = queue.Push(std::move(second), Deadline::Infinite(),
                                     RequestClass::kInteractive);
  EXPECT_EQ(rejected.code(), StatusCode::kOverloaded);
  // The rejected object was not moved from — the caller can still
  // resolve its promise / report the error against it.
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(*second, 2);
}

TEST(AdmissionQueueTest, CloseDrainsThenUnblocksPop) {
  AdmissionQueue<int> queue(4);
  ASSERT_TRUE(
      queue.Push(7, Deadline::Infinite(), RequestClass::kInteractive).ok());
  queue.Close();
  EXPECT_EQ(queue.Push(8, Deadline::Infinite(), RequestClass::kInteractive)
                .code(),
            StatusCode::kFailedPrecondition);
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));  // Entries queued before Close drain.
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(queue.Pop(&out));  // Closed and empty.
}

TEST(AdmissionQueueTest, CloseWakesBlockedPoppers) {
  AdmissionQueue<int> queue(4);
  std::thread popper([&queue] {
    int out = 0;
    EXPECT_FALSE(queue.Pop(&out));
  });
  queue.Close();
  popper.join();
}

// ---------------------------------------------------------------------
// SessionManager.
// ---------------------------------------------------------------------

SessionManagerOptions SmallSessions(size_t max_sessions) {
  SessionManagerOptions options;
  options.max_sessions = max_sessions;
  // Cheap engines: tiny caches, serial execution.
  options.engine.cache_capacity = 4;
  return options;
}

TEST(SessionManagerTest, AcquireCreatesOncePerIdAndPins) {
  SessionManager manager(Table311(), SmallSessions(4));
  SessionManager::Handle alice = manager.Acquire("alice");
  ASSERT_TRUE(static_cast<bool>(alice));
  EXPECT_EQ(alice->id, "alice");
  EXPECT_EQ(alice->pins.load(), 1u);
  {
    SessionManager::Handle again = manager.Acquire("alice");
    EXPECT_EQ(again.get(), alice.get());  // Same session object.
    EXPECT_EQ(alice->pins.load(), 2u);
  }
  EXPECT_EQ(alice->pins.load(), 1u);  // RAII unpin.
  EXPECT_EQ(manager.sessions_created(), 1u);
  EXPECT_EQ(manager.live_sessions(), 1u);
}

TEST(SessionManagerTest, EvictsLeastRecentlyUsedIdleSession) {
  SessionManager manager(Table311(), SmallSessions(2));
  manager.Acquire("a");
  manager.Acquire("b");
  manager.Acquire("a");  // "a" is now most recently used.
  manager.Acquire("c");  // Evicts "b", the LRU idle session.
  EXPECT_EQ(manager.live_sessions(), 2u);
  EXPECT_EQ(manager.sessions_evicted(), 1u);
  // "a" survived: re-acquiring it creates nothing new.
  manager.Acquire("a");
  EXPECT_EQ(manager.sessions_created(), 3u);
  // "b" is gone: re-acquiring recreates it.
  manager.Acquire("b");
  EXPECT_EQ(manager.sessions_created(), 4u);
}

TEST(SessionManagerTest, PinnedSessionsAreNeverEvicted) {
  SessionManager manager(Table311(), SmallSessions(2));
  SessionManager::Handle a = manager.Acquire("a");
  SessionManager::Handle b = manager.Acquire("b");
  // Both candidates are pinned: the manager overflows past capacity
  // instead of evicting in-use state out from under a request.
  SessionManager::Handle c = manager.Acquire("c");
  EXPECT_EQ(manager.live_sessions(), 3u);
  EXPECT_EQ(manager.sessions_evicted(), 0u);
  // Releasing a pin makes that session evictable again.
  { SessionManager::Handle drop = std::move(a); }
  manager.Acquire("d");
  EXPECT_EQ(manager.sessions_evicted(), 1u);
  EXPECT_LE(manager.live_sessions(), 3u);
}

TEST(SessionManagerTest, RngStreamsDifferPerSessionAndReplay) {
  auto table = Table311();
  SessionManager first(table, SmallSessions(8));
  SessionManager::Handle alice = first.Acquire("alice");
  SessionManager::Handle bob = first.Acquire("bob");
  // Distinct sessions draw from distinct streams.
  EXPECT_NE(alice->DrawRngSeed(), bob->DrawRngSeed());
  // The same session id under the same base seed replays the same
  // stream in a fresh manager — the replayability guarantee.
  SessionManager second(table, SmallSessions(8));
  SessionManager::Handle replayed = second.Acquire("alice");
  SessionManager third(table, SmallSessions(8));
  SessionManager::Handle replayed_again = third.Acquire("alice");
  EXPECT_EQ(replayed->DrawRngSeed(), replayed_again->DrawRngSeed());
  EXPECT_EQ(replayed->DrawRngSeed(), replayed_again->DrawRngSeed());
  // A different base seed shifts the stream.
  SessionManagerOptions reseeded = SmallSessions(8);
  reseeded.seed = 123;
  SessionManager fourth(table, reseeded);
  SessionManager fifth(table, SmallSessions(8));
  EXPECT_NE(fourth.Acquire("alice")->DrawRngSeed(),
            fifth.Acquire("alice")->DrawRngSeed());
}

TEST(SessionManagerTest, ConcurrentAcquireSameIdYieldsOneSession) {
  auto table = Table311();
  SessionManager manager(table, SmallSessions(8));
  constexpr size_t kThreads = 8;
  std::vector<SessionManager::Session*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&manager, &seen, t] {
      SessionManager::Handle handle = manager.Acquire("shared");
      seen[t] = handle.get();
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t], seen[0]);
  }
  EXPECT_EQ(manager.live_sessions(), 1u);
}

// ---------------------------------------------------------------------
// SingleFlight.
// ---------------------------------------------------------------------

TEST(SingleFlightTest, FirstCallerLeadsCloseRetiresFlight) {
  SingleFlight<int> flight;
  int leader_item = 1;
  FlightTicket ticket = flight.LeadOrAttach("k", &leader_item);
  ASSERT_TRUE(ticket.led);
  EXPECT_EQ(flight.open_flights(), 1u);
  EXPECT_TRUE(flight.Close(ticket).empty());
  EXPECT_EQ(flight.open_flights(), 0u);
  // The flight retired: the next request leads anew (no stale reuse).
  int fresh_item = 2;
  FlightTicket fresh = flight.LeadOrAttach("k", &fresh_item);
  EXPECT_TRUE(fresh.led);
  flight.Close(fresh);
  EXPECT_EQ(flight.flights_led(), 2u);
  EXPECT_EQ(flight.attached(), 0u);
}

TEST(SingleFlightTest, AttachersRideTheOpenFlightInOrder) {
  SingleFlight<int> flight;
  int leader_item = 0;
  FlightTicket ticket = flight.LeadOrAttach("k", &leader_item);
  ASSERT_TRUE(ticket.led);
  for (int i = 1; i <= 4; ++i) {
    int item = i * 10;
    FlightTicket follower = flight.LeadOrAttach("k", &item);
    EXPECT_FALSE(follower.led);
  }
  EXPECT_EQ(flight.open_flights(), 1u);  // Attaching opens nothing new.
  std::vector<int> followers = flight.Close(ticket);
  EXPECT_EQ(followers, (std::vector<int>{10, 20, 30, 40}));
  EXPECT_EQ(flight.flights_led(), 1u);
  EXPECT_EQ(flight.attached(), 4u);
}

TEST(SingleFlightTest, DistinctKeysFlySeparately) {
  SingleFlight<int> flight;
  int a_item = 1, b_item = 2, rider = 3;
  FlightTicket a = flight.LeadOrAttach("a", &a_item);
  FlightTicket b = flight.LeadOrAttach("b", &b_item);
  EXPECT_TRUE(a.led);
  EXPECT_TRUE(b.led);
  EXPECT_EQ(flight.open_flights(), 2u);
  EXPECT_FALSE(flight.LeadOrAttach("a", &rider).led);
  EXPECT_TRUE(flight.Close(b).empty());
  EXPECT_EQ(flight.Close(a), std::vector<int>{3});
  EXPECT_EQ(flight.open_flights(), 0u);
}

TEST(SingleFlightTest, StaleTicketCannotCloseAReopenedFlight) {
  SingleFlight<int> flight;
  int first = 1;
  FlightTicket stale = flight.LeadOrAttach("k", &first);
  ASSERT_TRUE(stale.led);
  flight.Close(stale);
  // Same key reopened by a newer leader with a follower aboard.
  int second = 2, rider = 3;
  FlightTicket fresh = flight.LeadOrAttach("k", &second);
  ASSERT_TRUE(fresh.led);
  EXPECT_FALSE(flight.LeadOrAttach("k", &rider).led);
  // Closing the spent ticket again must not disturb the new flight.
  EXPECT_TRUE(flight.Close(stale).empty());
  EXPECT_EQ(flight.open_flights(), 1u);
  EXPECT_EQ(flight.Close(fresh), std::vector<int>{3});
}

TEST(SingleFlightTest, DisengagedTicketClosesNothing) {
  SingleFlight<int> flight;
  int leader_item = 1, rider = 2;
  FlightTicket ticket = flight.LeadOrAttach("k", &leader_item);
  FlightTicket follower = flight.LeadOrAttach("k", &rider);
  ASSERT_FALSE(follower.led);
  EXPECT_TRUE(flight.Close(follower).empty());
  EXPECT_EQ(flight.open_flights(), 1u);
  EXPECT_EQ(flight.Close(ticket), std::vector<int>{2});
}

TEST(SingleFlightTest, ConcurrentAttachersAllLandOnOneFlight) {
  SingleFlight<int> flight;
  int leader_item = 0;
  FlightTicket ticket = flight.LeadOrAttach("k", &leader_item);
  ASSERT_TRUE(ticket.led);
  constexpr size_t kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> led{0};
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&flight, &led, t] {
      int item = static_cast<int>(t);
      FlightTicket outcome = flight.LeadOrAttach("k", &item);
      if (outcome.led) led.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(led.load(), 0);
  std::vector<int> followers = flight.Close(ticket);
  EXPECT_EQ(followers.size(), kThreads);
  EXPECT_EQ(flight.attached(), kThreads);
}

// ---------------------------------------------------------------------
// Server.
// ---------------------------------------------------------------------

ServerOptions SmallServer(size_t workers, size_t depth) {
  ServerOptions options;
  options.num_workers = workers;
  options.max_queue_depth = depth;
  options.sessions.engine.cache_capacity = 8;
  return options;
}

TEST(ServerTest, ServesTextRequestsAcrossSessions) {
  Server server(Table311(), SmallServer(2, 8));
  auto first =
      server.Ask("alice", Request::Text("how many complaints in brooklyn"));
  auto second =
      server.Ask("bob", Request::Text("how many complaints in queens"));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(first->answer.plan.multiplot.empty());
  EXPECT_TRUE(first->deadline_met);
  EXPECT_EQ(server.live_sessions(), 2u);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.shed_total(), 0u);
}

TEST(ServerTest, UntranslatableRequestFailsWithoutPoisoningServer) {
  Server server(Table311(), SmallServer(1, 4));
  auto bad = server.Ask("alice", Request::Text("xyzzy plugh"));
  EXPECT_FALSE(bad.ok());
  auto good =
      server.Ask("alice", Request::Text("how many complaints in brooklyn"));
  EXPECT_TRUE(good.ok());
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(ServerTest, InfeasibleDeadlineIsShedAtAdmission) {
  ServerOptions options = SmallServer(1, 4);
  options.feasibility_floor_millis = 10.0;
  Server server(Table311(), options);
  Request request = Request::Text("how many complaints in brooklyn");
  request.deadline = Deadline::AfterMillis(1.0);  // Below the floor.
  auto result = server.Ask("alice", request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOverloaded);
  EXPECT_EQ(server.stats().rejected_infeasible, 1u);
  EXPECT_EQ(server.stats().admitted, 0u);
}

TEST(ServerTest, FullQueueShedsInsteadOfQueueingUnboundedly) {
  // One worker, depth 1, and a long-running first request: a burst must
  // produce fast Overloaded rejections, not a growing queue.
  // Single-flight is off so the identical burst exercises the queue
  // bound itself instead of coalescing onto one flight.
  ServerOptions options = SmallServer(1, 1);
  options.enable_single_flight = false;
  Server server(Table311(), options);
  std::vector<std::future<Result<ServedAnswer>>> futures;
  const size_t burst = 16;
  for (size_t i = 0; i < burst; ++i) {
    futures.push_back(server.Submit(
        "alice", Request::Text("how many complaints in brooklyn")));
  }
  size_t ok = 0;
  size_t overloaded = 0;
  for (auto& future : futures) {
    Result<ServedAnswer> result = future.get();
    if (result.ok()) {
      ++ok;
    } else if (result.status().code() == StatusCode::kOverloaded) {
      ++overloaded;
    }
  }
  EXPECT_EQ(ok + overloaded, burst);
  EXPECT_GE(ok, 1u);          // The worker made progress.
  EXPECT_GE(overloaded, 1u);  // And the queue pushed back.
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected_queue_full, overloaded);
  EXPECT_LE(server.queue_depth(), 1u);
}

TEST(ServerTest, DrainFinishesQueuedWorkThenRejectsNewRequests) {
  Server server(Table311(), SmallServer(2, 8));
  std::vector<std::future<Result<ServedAnswer>>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(server.Submit(
        "alice", Request::Text("how many complaints in brooklyn")));
  }
  server.Drain();
  for (auto& future : futures) {
    Result<ServedAnswer> result = future.get();
    // Admitted requests completed; none were abandoned by Drain.
    EXPECT_TRUE(result.ok() ||
                result.status().code() == StatusCode::kOverloaded)
        << result.status().ToString();
  }
  auto late =
      server.Ask("alice", Request::Text("how many complaints in brooklyn"));
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_GE(server.stats().rejected_stopped, 1u);
}

TEST(ServerTest, SingleFlightCoalescesConcurrentIdenticalRequests) {
  // Many concurrent submissions of one transcript against one slow-ish
  // worker pool: single-flight must fan most of them out from shared
  // executions instead of running the pipeline once per request.
  ServerOptions options = SmallServer(2, 64);
  Server server(Table311(4000), options);
  const std::string utterance = "how many complaints in brooklyn";
  std::vector<std::future<Result<ServedAnswer>>> futures;
  const size_t burst = 24;
  for (size_t i = 0; i < burst; ++i) {
    futures.push_back(server.Submit("alice", Request::Text(utterance)));
  }
  size_t shared = 0;
  for (auto& future : futures) {
    Result<ServedAnswer> result = future.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (result->shared) ++shared;
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, burst);
  EXPECT_EQ(stats.single_flight_followers, shared);
  // At least the very first request led a flight.
  EXPECT_GE(stats.single_flight_leaders, 1u);
  // Coalescing actually happened for this colliding burst: attaching
  // happens at admission, while the leader is still queued or
  // executing, so it does not depend on two workers ever overlapping
  // in time (this holds even on a single-core host).
  EXPECT_GE(shared, 1u);
  EXPECT_EQ(stats.single_flight_leaders + stats.single_flight_followers,
            burst);
}

TEST(ServerTest, SingleFlightOffRunsEveryRequestItself) {
  ServerOptions options = SmallServer(2, 64);
  options.enable_single_flight = false;
  Server server(Table311(), options);
  std::vector<std::future<Result<ServedAnswer>>> futures;
  for (size_t i = 0; i < 8; ++i) {
    futures.push_back(server.Submit(
        "alice", Request::Text("how many complaints in brooklyn")));
  }
  for (auto& future : futures) {
    Result<ServedAnswer> result = future.get();
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result->shared);
  }
  EXPECT_EQ(server.stats().single_flight_followers, 0u);
}

TEST(ServerTest, StopShedsQueuedRequests) {
  // One worker and a deep queue of requests; Stop() while they are
  // queued must resolve the tail with Overloaded rather than running it.
  Server server(Table311(4000), SmallServer(1, 32));
  std::vector<std::future<Result<ServedAnswer>>> futures;
  for (size_t i = 0; i < 16; ++i) {
    futures.push_back(server.Submit(
        "alice", Request::Text("how many complaints in borough " +
                               std::to_string(i))));
  }
  server.Stop();
  size_t resolved = 0;
  for (auto& future : futures) {
    future.get();  // Every future resolves; none hang.
    ++resolved;
  }
  EXPECT_EQ(resolved, futures.size());
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed + stats.failed + stats.shed_total() +
                stats.rejected_stopped,
            stats.submitted);
}

TEST(ServerTest, ConcurrentMixedSessionLoadCompletesConsistently) {
  const size_t submitters = testing::kSanitizerBuild ? 4 : 8;
  const size_t per_submitter = testing::kSanitizerBuild ? 4 : 8;
  ServerOptions options = SmallServer(4, 64);
  Server server(Table311(), options);
  std::vector<std::thread> threads;
  std::atomic<size_t> ok{0};
  std::atomic<size_t> rejected{0};
  for (size_t t = 0; t < submitters; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < per_submitter; ++i) {
        const std::string session = "s" + std::to_string((t + i) % 3);
        const RequestClass cls = (t + i) % 4 == 0
                                     ? RequestClass::kReplay
                                     : RequestClass::kInteractive;
        auto result = server.Ask(
            session, Request::Text("how many complaints in brooklyn"),
            cls);
        if (result.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const ServerStats stats = server.stats();
  EXPECT_EQ(ok.load() + rejected.load(), submitters * per_submitter);
  EXPECT_EQ(stats.submitted, submitters * per_submitter);
  EXPECT_EQ(stats.completed + stats.failed + stats.shed_total() +
                stats.rejected_stopped,
            stats.submitted);
  EXPECT_GE(ok.load(), 1u);
  EXPECT_LE(server.live_sessions(), 3u);
}

// ---------------------------------------------------------------------
// Live ingest: a writer races the serving reads.
// ---------------------------------------------------------------------

// Ground truth for a COUNT bar answered at snapshot version `v`: the
// table is append-only, so exactly the row prefix [0, v) existed at that
// version, and the expected count is the number of prefix rows matching
// the candidate's predicates. Evaluated against the final table after
// the writer stopped — every earlier version is a prefix of it.
double CountAtVersion(const db::Table& table, const db::AggregateQuery& query,
                      uint64_t version) {
  struct Bound {
    size_t column = 0;
    const db::Predicate* predicate = nullptr;
  };
  std::vector<Bound> bounds;
  for (const db::Predicate& predicate : query.predicates) {
    Result<size_t> column = table.ColumnIndex(predicate.column);
    if (!column.ok()) return 0.0;
    bounds.push_back({*column, &predicate});
  }
  size_t count = 0;
  for (uint64_t r = 0; r < version; ++r) {
    bool matches = true;
    for (const Bound& bound : bounds) {
      const db::Value value = table.ValueAt(r, bound.column);
      bool accepted = false;
      for (const db::Value& candidate : bound.predicate->values) {
        if (value == candidate) {
          accepted = true;
          break;
        }
      }
      if (!accepted) {
        matches = false;
        break;
      }
    }
    if (matches) ++count;
  }
  return static_cast<double>(count);
}

TEST(ServerTest, IngestRacingSessionsAnswerOneConsistentVersion) {
  // A single writer streams appends (sealing runs as it goes, with
  // background compaction armed) while sessions query through the
  // server. Every answer must reflect exactly one snapshot version
  // across ALL plots of its multiplot: each COUNT bar equals the
  // ground-truth count over the row prefix [0, snapshot_version).
  ThreadPool compaction_pool(2);
  std::shared_ptr<db::Table> table = Table311(1200);
  table->EnableBackgroundCompaction(&compaction_pool);
  Server server(table, SmallServer(4, 64));

  const uint64_t base_version = table->version();
  std::atomic<bool> stop{false};
  std::atomic<bool> writer_ok{true};
  std::thread writer([&] {
    // Fixed-shape rows keep every appended string inside the vocabulary
    // the schema index was built from; periodic flushes seal runs so
    // reads race run hand-off and compaction, not just memtable growth.
    uint64_t appended = 0;
    while (!stop.load(std::memory_order_acquire) && appended < 6000) {
      const Status st = table->AppendRow(
          {db::Value(std::string("brooklyn")), db::Value(std::string("noise")),
           db::Value(std::string("nypd")), db::Value(std::string("open")),
           db::Value(std::string("phone")), db::Value(2.5),
           db::Value(static_cast<int64_t>(61))});
      if (!st.ok()) {
        writer_ok.store(false, std::memory_order_release);
        break;
      }
      ++appended;
      if (appended % 96 == 0) table->Flush();
      std::this_thread::yield();
    }
  });

  static const char* const kTranscripts[] = {
      "how many noise complaints in brooklyn",
      "how many heating complaints in queens",
      "how many complaints in brooklyn",
  };
  struct Observation {
    ServedAnswer served;
    uint64_t version_before = 0;
    uint64_t version_after = 0;
  };
  const size_t clients = testing::kSanitizerBuild ? 3 : 4;
  const size_t per_client = testing::kSanitizerBuild ? 4 : 6;
  std::vector<std::vector<Observation>> observed(clients);
  std::atomic<size_t> rejected{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < per_client; ++i) {
        const std::string session = "ingest-" + std::to_string(t);
        const uint64_t before = table->version();
        Result<ServedAnswer> result = server.Ask(
            session, Request::Text(kTranscripts[(t + i) % 3]));
        const uint64_t after = table->version();
        if (!result.ok()) {
          rejected.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        observed[t].push_back({*std::move(result), before, after});
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  stop.store(true, std::memory_order_release);
  writer.join();
  EXPECT_TRUE(writer_ok.load(std::memory_order_acquire));

  // Smoke load at the scale of the PR 5 concurrency test, with an ample
  // queue: live ingest must not introduce sheds or failures.
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.shed_total(), 0u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(rejected.load(), 0u);
  EXPECT_EQ(stats.completed, clients * per_client);

  size_t bars_checked = 0;
  for (const std::vector<Observation>& per_thread : observed) {
    for (const Observation& obs : per_thread) {
      const MuveEngine::Answer& answer = obs.served.answer;
      const uint64_t v = answer.execution.snapshot_version;
      // The snapshot is taken inside the Ask call: never newer than the
      // table was when the call returned, and — unless the answer was
      // coalesced onto an earlier identical in-flight request — never
      // older than the table was at submit.
      EXPECT_GE(v, base_version);
      EXPECT_LE(v, obs.version_after);
      if (!obs.served.shared) EXPECT_GE(v, obs.version_before);
      for (const std::vector<core::Plot>& row : answer.plan.multiplot.rows) {
        for (const core::Plot& plot : row) {
          for (const core::PlotBar& bar : plot.bars) {
            if (std::isnan(bar.value)) continue;
            const db::AggregateQuery& query =
                answer.candidates[bar.candidate_index].query;
            if (query.function != db::AggregateFunction::kCount) continue;
            EXPECT_DOUBLE_EQ(bar.value, CountAtVersion(*table, query, v))
                << query.ToSql() << " @ version " << v;
            ++bars_checked;
          }
        }
      }
    }
  }
  // Every transcript is a COUNT, so the consistency oracle must have
  // actually exercised bars.
  EXPECT_GT(bars_checked, 0u);
}

TEST(ServerTest, SessionSchemaIndexIsReusedAndAbsorbsIngestedValues) {
  std::shared_ptr<db::Table> table = Table311(400);
  Server server(table, SmallServer(1, 8));

  // The first request creates the session and builds its schema index,
  // synced to the table version of that moment.
  ASSERT_TRUE(
      server.Ask("alice", Request::Text("how many complaints in brooklyn"))
          .ok());
  const nlq::SchemaIndex* built_index = nullptr;
  size_t distinct_at_build = 0;
  {
    SessionManager::Handle alice = server.session_manager().Acquire("alice");
    built_index = &alice->engine.schema_index();
    distinct_at_build = built_index->distinct_values();
    EXPECT_EQ(built_index->synced_version(), table->version());
    EXPECT_EQ(built_index->values_absorbed(), 0u);
  }

  // Later requests on the session reuse that index object: no
  // per-request rebuild, and no absorptions while the table is
  // quiescent.
  ASSERT_TRUE(
      server.Ask("alice", Request::Text("how many complaints in queens"))
          .ok());
  {
    SessionManager::Handle alice = server.session_manager().Acquire("alice");
    EXPECT_EQ(&alice->engine.schema_index(), built_index);
    EXPECT_EQ(alice->engine.schema_index().values_absorbed(), 0u);
    EXPECT_EQ(alice->engine.schema_index().distinct_values(),
              distinct_at_build);
  }
  EXPECT_EQ(server.session_manager().sessions_created(), 1u);

  // Ingest rows carrying a complaint type the vocabulary has never
  // seen, sealed into a run. The next request on the same session must
  // absorb it incrementally into the same index object.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(table
                    ->AppendRow({db::Value(std::string("brooklyn")),
                                 db::Value(std::string("gerbil stampede")),
                                 db::Value(std::string("nypd")),
                                 db::Value(std::string("open")),
                                 db::Value(std::string("phone")),
                                 db::Value(2.5),
                                 db::Value(static_cast<int64_t>(61))})
                    .ok());
  }
  table->Flush();
  ASSERT_TRUE(
      server.Ask("alice", Request::Text("how many complaints in brooklyn"))
          .ok());
  {
    SessionManager::Handle alice = server.session_manager().Acquire("alice");
    const nlq::SchemaIndex& index = alice->engine.schema_index();
    EXPECT_EQ(&index, built_index);
    EXPECT_EQ(index.synced_version(), table->version());
    EXPECT_GT(index.values_absorbed(), 0u);
    EXPECT_EQ(index.distinct_values(), distinct_at_build + 1);
    EXPECT_EQ(index.ColumnsOfValue("gerbil stampede"),
              std::vector<std::string>{"complaint_type"});
  }
  EXPECT_EQ(server.session_manager().sessions_created(), 1u);
}

// ---------------------------------------------------------------------
// Load generator.
// ---------------------------------------------------------------------

TEST(LoadGeneratorTest, ClosedLoopCompletesAllRequests) {
  auto table = Table311();
  Server server(table, SmallServer(2, 16));
  workload::LoadOptions load;
  load.mode = workload::LoadOptions::Mode::kClosedLoop;
  load.num_requests = 12;
  load.num_clients = 3;
  load.num_sessions = 2;
  load.seed = 5;
  Result<workload::LoadReport> report =
      workload::RunLoad(&server, *table, load);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->requests, 12u);
  EXPECT_EQ(report->completed, 12u);  // Closed loop never overruns.
  EXPECT_EQ(report->shed, 0u);
  EXPECT_EQ(report->errors, 0u);
  EXPECT_GT(report->sustained_qps, 0.0);
  EXPECT_GE(report->p99_latency_ms, report->p50_latency_ms);
  const std::string json = report->ToJson();
  EXPECT_NE(json.find("\"sustained_qps\""), std::string::npos);
  EXPECT_NE(json.find("\"single_flight_hit_ratio\""), std::string::npos);
}

TEST(LoadGeneratorTest, OpenLoopOverdriveShedsButNeverErrors) {
  auto table = Table311();
  ServerOptions options = SmallServer(1, 2);
  options.feasibility_floor_millis = 0.5;
  Server server(table, options);
  workload::LoadOptions load;
  load.mode = workload::LoadOptions::Mode::kOpenLoop;
  load.offered_qps = 500.0;  // Far beyond one serial worker.
  load.num_requests = 40;
  load.num_sessions = 2;
  load.deadline_millis = 2000.0;
  load.seed = 6;
  Result<workload::LoadReport> report =
      workload::RunLoad(&server, *table, load);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->requests, 40u);
  EXPECT_EQ(report->errors, 0u);
  EXPECT_EQ(report->completed + report->shed, 40u);
  EXPECT_GT(report->completed, 0u);
  // The overdriven server shed load instead of queueing it all.
  EXPECT_GT(report->shed, 0u);
  EXPECT_EQ(report->server.submitted, 40u);
}

// ---------------------------------------------------------------------
// TenantAccountant.
// ---------------------------------------------------------------------

TEST(TenantAccountantTest, DefaultTenantIsUnlimited) {
  FakeClock clock;
  TenantAccountant accountant({}, {}, &clock);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(accountant.Admit("").ok());
  }
  const TenantCounters counters = accountant.counters("");
  EXPECT_EQ(counters.submitted, 100u);
  EXPECT_EQ(counters.admitted, 100u);
  EXPECT_EQ(counters.rejected_quota, 0u);
}

TEST(TenantAccountantTest, BurstExhaustsThenRefillsAtTheConfiguredRate) {
  FakeClock clock;
  TenantAccountant accountant(
      {}, {{"metered", {/*rate_qps=*/10.0, /*burst=*/3.0, /*weight=*/1.0}}},
      &clock);
  // The bucket starts full: exactly `burst` admissions succeed at t=0.
  EXPECT_TRUE(accountant.Admit("metered").ok());
  EXPECT_TRUE(accountant.Admit("metered").ok());
  EXPECT_TRUE(accountant.Admit("metered").ok());
  const Status rejected = accountant.Admit("metered");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kOverloaded);

  // 10 qps refills one token per 100 ms — and no more than one.
  clock.AdvanceMillis(100.0);
  EXPECT_TRUE(accountant.Admit("metered").ok());
  EXPECT_FALSE(accountant.Admit("metered").ok());

  // A long idle stretch refills only to the burst cap, never beyond.
  clock.AdvanceMillis(60000.0);
  EXPECT_TRUE(accountant.Admit("metered").ok());
  EXPECT_TRUE(accountant.Admit("metered").ok());
  EXPECT_TRUE(accountant.Admit("metered").ok());
  EXPECT_FALSE(accountant.Admit("metered").ok());

  const TenantCounters counters = accountant.counters("metered");
  EXPECT_EQ(counters.admitted, 7u);
  EXPECT_EQ(counters.rejected_quota, 3u);
  EXPECT_EQ(counters.submitted, 10u);
}

TEST(TenantAccountantTest, RejectionNamesTheTenantAndItsContract) {
  // Retry policy needs the contract in the message — and the flood
  // bench counts on this string being precomputed, so it must stay
  // stable run to run.
  FakeClock clock;
  TenantAccountant accountant(
      {}, {{"metered", {/*rate_qps=*/5.0, /*burst=*/1.0, /*weight=*/1.0}}},
      &clock);
  ASSERT_TRUE(accountant.Admit("metered").ok());
  const Status first = accountant.Admit("metered");
  const Status second = accountant.Admit("metered");
  ASSERT_FALSE(first.ok());
  EXPECT_NE(first.message().find("metered"), std::string::npos)
      << first.message();
  EXPECT_NE(first.message().find("over quota"), std::string::npos);
  EXPECT_NE(first.message().find("rate 5"), std::string::npos);
  EXPECT_EQ(first.message(), second.message());
}

TEST(TenantAccountantTest, UnknownTenantsInheritTheDefaultQuota) {
  FakeClock clock;
  TenantQuota metered{/*rate_qps=*/1.0, /*burst=*/1.0, /*weight=*/1.0};
  TenantAccountant accountant(metered, {}, &clock);
  EXPECT_TRUE(accountant.Admit("never-configured").ok());
  EXPECT_FALSE(accountant.Admit("never-configured").ok());
  // A different tenant gets its own bucket, not the exhausted one.
  EXPECT_TRUE(accountant.Admit("someone-else").ok());
}

// ---------------------------------------------------------------------
// Weighted fair dequeue across tenants.
// ---------------------------------------------------------------------

TEST(AdmissionQueueTest, BackloggedTenantsDispatchInWeightProportion) {
  AdmissionQueue<std::string> queue(64);
  // Two persistently backlogged lanes at weights 3:1. Equal deadlines
  // keep EDF out of the picture; the dispatch mix is pure WFQ.
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(queue
                    .Push("heavy", Deadline::Infinite(),
                          RequestClass::kInteractive, "heavy", 3.0)
                    .ok());
    ASSERT_TRUE(queue
                    .Push("light", Deadline::Infinite(),
                          RequestClass::kInteractive, "light", 1.0)
                    .ok());
  }
  size_t heavy = 0;
  size_t light = 0;
  std::string out;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(queue.Pop(&out));
    (out == "heavy" ? heavy : light) += 1;
  }
  // Exact interleaving depends on tie-breaks; the aggregate does not:
  // over 8 dispatches a 3:1 weighting gives the heavy lane about 6.
  EXPECT_GE(heavy, 5u);
  EXPECT_GE(light, 1u);
}

TEST(AdmissionQueueTest, TenantDepthTracksEachLane) {
  AdmissionQueue<int> queue(16);
  ASSERT_TRUE(queue
                  .Push(1, Deadline::Infinite(), RequestClass::kInteractive,
                        "a", 1.0)
                  .ok());
  ASSERT_TRUE(queue
                  .Push(2, Deadline::Infinite(), RequestClass::kInteractive,
                        "a", 1.0)
                  .ok());
  ASSERT_TRUE(queue
                  .Push(3, Deadline::Infinite(), RequestClass::kInteractive,
                        "b", 1.0)
                  .ok());
  EXPECT_EQ(queue.tenant_depth("a"), 2u);
  EXPECT_EQ(queue.tenant_depth("b"), 1u);
  EXPECT_EQ(queue.tenant_depth("absent"), 0u);
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  ASSERT_TRUE(queue.Pop(&out));
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(queue.tenant_depth("a"), 0u);
  EXPECT_EQ(queue.tenant_depth("b"), 0u);
}

TEST(AdmissionQueueTest, IdleTenantAccumulatesNoDispatchCredit) {
  AdmissionQueue<std::string> queue(64);
  std::string out;
  // Tenant "busy" dispatches alone for a while, advancing its virtual
  // time (and the queue's virtual floor) well past zero.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(queue
                    .Push("busy", Deadline::Infinite(),
                          RequestClass::kInteractive, "busy", 1.0)
                    .ok());
    ASSERT_TRUE(queue.Pop(&out));
  }
  // "late" was idle that whole time. If its lane started at vtime 0 it
  // would now hold 10 dispatches of spurious credit and monopolize the
  // queue; the virtual floor forbids that, so equal-weight lanes share
  // evenly from here on.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(queue
                    .Push("busy", Deadline::Infinite(),
                          RequestClass::kInteractive, "busy", 1.0)
                    .ok());
    ASSERT_TRUE(queue
                    .Push("late", Deadline::Infinite(),
                          RequestClass::kInteractive, "late", 1.0)
                    .ok());
  }
  size_t late = 0;
  size_t busy = 0;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(queue.Pop(&out));
    (out == "late" ? late : busy) += 1;
  }
  EXPECT_GE(busy, 2u);
  EXPECT_GE(late, 2u);
}

TEST(AdmissionQueueTest, ClassPriorityIsStrictAcrossTenants) {
  AdmissionQueue<std::string> queue(16);
  // A heavy tenant's replay backlog cannot delay another tenant's
  // interactive request: class outranks both vtime and deadline.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue
                    .Push("replay", Deadline::Infinite(),
                          RequestClass::kReplay, "heavy", 8.0)
                    .ok());
  }
  ASSERT_TRUE(queue
                  .Push("interactive", Deadline::Infinite(),
                        RequestClass::kInteractive, "light", 1.0)
                  .ok());
  std::string out;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, "interactive");
}

// ---------------------------------------------------------------------
// Rejection diagnostics and fan-out identity.
// ---------------------------------------------------------------------

TEST(ServerTest, QueueFullRejectionReportsDepthAndBudget) {
  ServerOptions options = SmallServer(1, 1);
  options.enable_single_flight = false;
  Server server(Table311(4000), options);
  std::vector<std::future<Result<ServedAnswer>>> futures;
  for (size_t i = 0; i < 12; ++i) {
    futures.push_back(server.Submit(
        "alice", Request::Text("how many complaints in brooklyn")));
  }
  bool saw_detail = false;
  for (auto& future : futures) {
    Result<ServedAnswer> result = future.get();
    if (result.ok()) continue;
    ASSERT_EQ(result.status().code(), StatusCode::kOverloaded);
    EXPECT_NE(result.status().message().find("admission queue full (depth"),
              std::string::npos)
        << result.status().message();
    saw_detail = true;
  }
  EXPECT_TRUE(saw_detail);
}

TEST(ServerTest, InfeasibleShedExplainsTheFloor) {
  ServerOptions options = SmallServer(1, 4);
  options.feasibility_floor_millis = 10.0;
  Server server(Table311(), options);
  Request request = Request::Text("how many complaints in brooklyn");
  request.deadline = Deadline::AfterMillis(1.0);
  auto result = server.Ask("alice", request);
  ASSERT_FALSE(result.ok());
  const std::string& message = result.status().message();
  EXPECT_NE(message.find("feasibility floor"), std::string::npos) << message;
  EXPECT_NE(message.find("remaining"), std::string::npos) << message;
  EXPECT_NE(message.find("floor 10.000 ms"), std::string::npos) << message;
}

TEST(ServerTest, SingleFlightFollowersReceiveByteIdenticalAnswers) {
  // The coalescing contract is not "similar answers" but the same
  // answer: every follower's payload must serialize to the leader's
  // exact bytes — this is what lets the wire layer fan one encoded
  // answer out to all attached connections.
  ServerOptions options = SmallServer(2, 64);
  Server server(Table311(4000), options);
  std::vector<std::future<Result<ServedAnswer>>> futures;
  const size_t burst = 12;
  for (size_t i = 0; i < burst; ++i) {
    futures.push_back(server.Submit(
        "alice", Request::Text("how many complaints in brooklyn")));
  }
  std::vector<std::string> serialized;
  size_t shared = 0;
  for (auto& future : futures) {
    Result<ServedAnswer> result = future.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (result->shared) ++shared;
    serialized.push_back(net::SerializeAnswer(result->answer));
  }
  ASSERT_GE(shared, 1u);
  for (size_t i = 1; i < serialized.size(); ++i) {
    EXPECT_EQ(serialized[i], serialized[0]) << "request " << i;
  }
}

TEST(ServerTest, PerTenantFunnelCountersSeparateTenants) {
  ServerOptions options = SmallServer(2, 16);
  options.tenant_quotas["metered"] = {/*rate_qps=*/0.001, /*burst=*/1.0,
                                      /*weight=*/1.0};
  Server server(Table311(), options);

  Request metered = Request::Text("how many complaints in brooklyn");
  metered.tenant_id = "metered";
  ASSERT_TRUE(server.Ask("alice", metered).ok());
  auto rejected = server.Ask("alice", metered);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kOverloaded);

  ASSERT_TRUE(
      server.Ask("bob", Request::Text("how many complaints in queens")).ok());

  const TenantCounters metered_counters = server.tenant_counters("metered");
  EXPECT_EQ(metered_counters.submitted, 2u);
  EXPECT_EQ(metered_counters.admitted, 1u);
  EXPECT_EQ(metered_counters.rejected_quota, 1u);
  EXPECT_EQ(metered_counters.completed, 1u);

  const TenantCounters default_counters = server.tenant_counters("");
  EXPECT_EQ(default_counters.submitted, 1u);
  EXPECT_EQ(default_counters.completed, 1u);
  EXPECT_EQ(server.stats().rejected_quota, 1u);
}

}  // namespace
}  // namespace muve::serve
