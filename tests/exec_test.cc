#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "db/executor.h"
#include "exec/engine.h"
#include "exec/merger.h"
#include "exec/presentation.h"
#include "nlq/candidate_generator.h"
#include "nlq/schema_index.h"
#include "testing/random_workload.h"
#include "workload/datasets.h"
#include "workload/query_generator.h"

namespace muve::exec {
namespace {

db::AggregateQuery Query311(db::AggregateFunction fn,
                            const std::string& agg,
                            const std::string& column,
                            const std::string& value) {
  db::AggregateQuery query;
  query.table = "nyc311";
  query.function = fn;
  query.aggregate_column = agg;
  query.predicates = {db::Predicate::Equals(column, db::Value(value))};
  return query;
}

core::CandidateSet BoroughCandidates() {
  core::CandidateSet set;
  set.Add(Query311(db::AggregateFunction::kCount, "", "borough",
                   "brooklyn"),
          0.4);
  set.Add(Query311(db::AggregateFunction::kCount, "", "borough", "bronx"),
          0.3);
  set.Add(Query311(db::AggregateFunction::kCount, "", "borough", "queens"),
          0.2);
  set.Add(Query311(db::AggregateFunction::kAvg, "open_hours", "borough",
                   "brooklyn"),
          0.1);
  return set;
}

std::shared_ptr<db::Table> Table311(size_t rows = 20000) {
  Rng rng(4242);
  return workload::Make311Table(rows, &rng);
}

// ---------------------------------------------------------------------
// Merger.
// ---------------------------------------------------------------------

TEST(MergerTest, GroupsValueVariantsIntoOneUnit) {
  auto table = Table311(5000);
  db::CostEstimator estimator;
  const core::CandidateSet set = BoroughCandidates();
  std::vector<size_t> all = {0, 1, 2, 3};
  const std::vector<MergeUnit> units =
      PlanMergedExecution(set, all, *table, estimator, true);
  // All four candidates share predicates-minus-borough => one merged unit.
  ASSERT_EQ(units.size(), 1u);
  EXPECT_TRUE(units[0].merged);
  EXPECT_EQ(units[0].group_query.group_column, "borough");
  EXPECT_EQ(units[0].group_query.group_values.size(), 3u);
  EXPECT_EQ(units[0].group_query.aggregates.size(), 2u);
  EXPECT_EQ(units[0].Members().size(), 4u);
}

TEST(MergerTest, DisabledMergingYieldsSingles) {
  auto table = Table311(5000);
  db::CostEstimator estimator;
  const core::CandidateSet set = BoroughCandidates();
  const std::vector<MergeUnit> units =
      PlanMergedExecution(set, {0, 1, 2, 3}, *table, estimator, false);
  EXPECT_EQ(units.size(), 4u);
  for (const MergeUnit& unit : units) EXPECT_FALSE(unit.merged);
}

TEST(MergerTest, UnmergeableQueriesStaySingle) {
  auto table = Table311(5000);
  db::CostEstimator estimator;
  core::CandidateSet set;
  // No predicates: not mergeable.
  db::AggregateQuery query;
  query.table = "nyc311";
  query.function = db::AggregateFunction::kCount;
  set.Add(query, 1.0);
  const std::vector<MergeUnit> units =
      PlanMergedExecution(set, {0}, *table, estimator, true);
  ASSERT_EQ(units.size(), 1u);
  EXPECT_FALSE(units[0].merged);
}

TEST(MergerTest, MergedExecutionMatchesSeparate) {
  auto table = Table311(8000);
  Engine merged_engine(table, {.enable_merging = true});
  Engine separate_engine(table, {.enable_merging = false});
  const core::CandidateSet set = BoroughCandidates();
  std::vector<size_t> all = {0, 1, 2, 3};
  auto merged = merged_engine.Execute(set, all);
  auto separate = separate_engine.Execute(set, all);
  ASSERT_TRUE(merged.ok());
  ASSERT_TRUE(separate.ok());
  EXPECT_LT(merged->queries_issued, separate->queries_issued);
  for (size_t i = 0; i < set.size(); ++i) {
    EXPECT_DOUBLE_EQ(merged->values[i], separate->values[i])
        << "candidate " << i;
  }
}

TEST(MergerTest, RandomizedMergedEqualsSeparate) {
  Rng rng(31337);
  auto table = Table311(6000);
  Engine merged_engine(table, {.enable_merging = true});
  Engine separate_engine(table, {.enable_merging = false});
  auto index = std::make_shared<nlq::SchemaIndex>(table);
  nlq::CandidateGenerator generator(index);
  for (int trial = 0; trial < 5; ++trial) {
    auto base = workload::RandomQuery(*table, &rng);
    ASSERT_TRUE(base.ok());
    core::CandidateSet set = generator.Generate(*base);
    std::vector<size_t> all(set.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    auto merged = merged_engine.Execute(set, all);
    auto separate = separate_engine.Execute(set, all);
    ASSERT_TRUE(merged.ok());
    ASSERT_TRUE(separate.ok());
    for (size_t i = 0; i < set.size(); ++i) {
      if (std::isnan(merged->values[i])) {
        EXPECT_TRUE(std::isnan(separate->values[i]));
      } else {
        EXPECT_NEAR(merged->values[i], separate->values[i], 1e-9)
            << set[i].query.ToSql();
      }
    }
  }
}

TEST(MergerTest, MergingIsValuePreservingOnRandomCandidateSets) {
  // Property: for any candidate set, enable_merging is an execution
  // detail — values must be identical whether candidates run as merged
  // GROUP BY units or as separate scans. Uses the differential-harness
  // generator, whose sets mix mergeable families with unmergeable
  // stragglers and legally-zero-row predicates.
  for (int seed = 0; seed < 60; ++seed) {
    Rng rng(77000 + static_cast<uint64_t>(seed));
    testing::RandomTableOptions table_options;
    table_options.min_rows = 300;
    table_options.max_rows = 1500;
    auto table = testing::RandomTable(&rng, table_options);
    const core::CandidateSet set =
        testing::RandomCandidateSet(*table, &rng);
    if (set.empty()) continue;
    std::vector<size_t> all(set.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;

    Engine merged_engine(table, {.enable_merging = true});
    Engine separate_engine(table, {.enable_merging = false});
    auto merged = merged_engine.Execute(set, all);
    auto separate = separate_engine.Execute(set, all);
    ASSERT_TRUE(merged.ok()) << "seed " << seed;
    ASSERT_TRUE(separate.ok()) << "seed " << seed;
    EXPECT_LE(merged->queries_issued, separate->queries_issued);
    for (size_t i = 0; i < set.size(); ++i) {
      if (std::isnan(separate->values[i])) {
        EXPECT_TRUE(std::isnan(merged->values[i]))
            << "seed " << seed << " " << set[i].query.ToSql();
        continue;
      }
      const double scale = std::max(1.0, std::fabs(separate->values[i]));
      EXPECT_NEAR(merged->values[i], separate->values[i], 1e-9 * scale)
          << "seed " << seed << " " << set[i].query.ToSql();
    }
  }
}

TEST(MergerTest, EstimateUnitsCostLowerWhenMerged) {
  auto table = Table311(20000);
  db::CostEstimator estimator;
  const core::CandidateSet set = BoroughCandidates();
  std::vector<size_t> all = {0, 1, 2, 3};
  const double merged_cost = EstimateUnitsCost(
      PlanMergedExecution(set, all, *table, estimator, true), *table,
      estimator, set);
  const double separate_cost = EstimateUnitsCost(
      PlanMergedExecution(set, all, *table, estimator, false), *table,
      estimator, set);
  EXPECT_LT(merged_cost, separate_cost);
}

TEST(MergerTest, ProcessingGroupsCoverAllCandidates) {
  auto table = Table311(5000);
  db::CostEstimator estimator;
  const core::CandidateSet set = BoroughCandidates();
  const std::vector<core::ProcessingGroup> groups =
      BuildProcessingGroups(set, *table, estimator);
  std::vector<bool> covered(set.size(), false);
  for (const core::ProcessingGroup& group : groups) {
    EXPECT_GT(group.cost, 0.0);
    for (size_t idx : group.member_candidates) covered[idx] = true;
  }
  for (size_t i = 0; i < set.size(); ++i) {
    EXPECT_TRUE(covered[i]) << "candidate " << i << " uncovered";
  }
}

// ---------------------------------------------------------------------
// Engine.
// ---------------------------------------------------------------------

TEST(EngineTest, ExecuteFillsRequestedValuesOnly) {
  auto table = Table311(4000);
  Engine engine(table);
  const core::CandidateSet set = BoroughCandidates();
  auto execution = engine.Execute(set, {0, 2});
  ASSERT_TRUE(execution.ok());
  EXPECT_FALSE(std::isnan(execution->values[0]));
  EXPECT_TRUE(std::isnan(execution->values[1]));
  EXPECT_FALSE(std::isnan(execution->values[2]));
}

TEST(EngineTest, SampledExecutionApproximatesCounts) {
  auto table = Table311(50000);
  Engine engine(table);
  const core::CandidateSet set = BoroughCandidates();
  auto exact = engine.Execute(set, {0});
  auto sampled = engine.Execute(set, {0}, 0.1);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(sampled.ok());
  const double exact_count = exact->values[0];
  const double approx_count = sampled->values[0];
  EXPECT_GT(exact_count, 0.0);
  EXPECT_NEAR(approx_count / exact_count, 1.0, 0.15);
}

TEST(EngineTest, ModeledTimeIncludesPerQueryOverhead) {
  auto table = Table311(2000);
  Engine engine(table, {.enable_merging = false,
                        .per_query_overhead_ms = 50.0});
  const core::CandidateSet set = BoroughCandidates();
  auto execution = engine.Execute(set, {0, 1, 2, 3});
  ASSERT_TRUE(execution.ok());
  EXPECT_GE(execution->modeled_millis,
            execution->measured_millis + 4 * 50.0 - 1e-9);
}

TEST(EngineTest, EstimateMillisPositiveAndMonotone) {
  auto table = Table311(30000);
  Engine engine(table);
  const core::CandidateSet set = BoroughCandidates();
  const double one = engine.EstimateMillis(set, {0});
  const double all = engine.EstimateMillis(set, {0, 1, 2, 3});
  EXPECT_GT(one, 0.0);
  EXPECT_GE(all, one);
}

TEST(EngineTest, SampleTablesAreCached) {
  auto table = Table311(10000);
  Engine engine(table);
  auto a = engine.SampleTable(0.05);
  auto b = engine.SampleTable(0.05);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(engine.SampleTable(1.0).get(), table.get());
}

TEST(EngineTest, ExecuteMultiplotFillsBars) {
  auto table = Table311(3000);
  Engine engine(table);
  const core::CandidateSet set = BoroughCandidates();
  core::Multiplot multiplot;
  multiplot.rows.resize(1);
  core::Plot plot;
  plot.query_template.title = "COUNT(*) WHERE borough = ?";
  plot.bars.push_back({0, "brooklyn", true, std::nan(""), false});
  plot.bars.push_back({1, "bronx", false, std::nan(""), false});
  multiplot.rows[0].push_back(plot);
  auto execution = engine.ExecuteMultiplot(set, &multiplot);
  ASSERT_TRUE(execution.ok());
  for (const core::PlotBar& bar : multiplot.rows[0][0].bars) {
    EXPECT_FALSE(std::isnan(bar.value));
    EXPECT_FALSE(bar.approximate);
  }
}

// ---------------------------------------------------------------------
// Presentation methods (paper Fig. 5 / §9.4).
// ---------------------------------------------------------------------

class PresentationMethodTest
    : public ::testing::TestWithParam<PresentationMethod> {};

TEST_P(PresentationMethodTest, ProducesCoherentTimeline) {
  auto table = Table311(15000);
  Engine engine(table);
  const core::CandidateSet set = BoroughCandidates();
  PresentationOptions options;
  options.planner.geometry.width_px = 900.0;
  options.planner.timeout_ms = 2000.0;
  options.dynamic_threshold_ms = 500.0;
  auto outcome =
      RunPresentation(GetParam(), &engine, set, /*correct=*/1, options);
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(outcome->events.empty());
  // Events are chronologically ordered.
  for (size_t i = 1; i < outcome->events.size(); ++i) {
    EXPECT_GE(outcome->events[i].at_millis,
              outcome->events[i - 1].at_millis);
  }
  // F-Time <= T-Time whenever the correct result is shown.
  if (outcome->correct_shown) {
    EXPECT_LE(outcome->first_correct_ms, outcome->total_ms + 1e-9);
  }
  EXPECT_GT(outcome->total_ms, 0.0);
  // The final event must be exact (not approximate).
  EXPECT_FALSE(outcome->events.back().approximate);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, PresentationMethodTest,
    ::testing::ValuesIn(AllPresentationMethods()),
    [](const ::testing::TestParamInfo<PresentationMethod>& info) {
      std::string name = PresentationMethodName(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(PresentationTest, ApproximateMethodEmitsApproximateFirst) {
  auto table = Table311(30000);
  Engine engine(table);
  const core::CandidateSet set = BoroughCandidates();
  PresentationOptions options;
  auto outcome = RunPresentation(PresentationMethod::kApprox1, &engine,
                                 set, 0, options);
  ASSERT_TRUE(outcome.ok());
  ASSERT_GE(outcome->events.size(), 2u);
  EXPECT_TRUE(outcome->events.front().approximate);
  EXPECT_FALSE(outcome->events.back().approximate);
  EXPECT_GE(outcome->initial_relative_error, 0.0);
}

TEST(PresentationTest, IncrementalPlotEmitsOneEventPerPlot) {
  auto table = Table311(10000);
  Engine engine(table);
  core::CandidateSet set = BoroughCandidates();
  PresentationOptions options;
  options.planner.geometry.width_px = 1400.0;  // Room for several plots.
  auto outcome = RunPresentation(PresentationMethod::kIncrementalPlot,
                                 &engine, set, 0, options);
  ASSERT_TRUE(outcome.ok());
  const size_t final_plots =
      outcome->events.back().multiplot.NumPlots();
  EXPECT_EQ(outcome->events.size(), final_plots);
  // Plots accumulate monotonically.
  for (size_t i = 1; i < outcome->events.size(); ++i) {
    EXPECT_EQ(outcome->events[i].multiplot.NumPlots(),
              outcome->events[i - 1].multiplot.NumPlots() + 1);
  }
}

TEST(PresentationTest, MethodNames) {
  EXPECT_STREQ(PresentationMethodName(PresentationMethod::kGreedy),
               "Greedy");
  EXPECT_STREQ(PresentationMethodName(PresentationMethod::kApproxDynamic),
               "App-D");
  EXPECT_EQ(AllPresentationMethods().size(), 7u);
}

}  // namespace
}  // namespace muve::exec
