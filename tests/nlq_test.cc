#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nlq/candidate_generator.h"
#include "nlq/schema_index.h"
#include "nlq/translator.h"
#include "workload/datasets.h"
#include "workload/query_generator.h"

namespace muve::nlq {
namespace {

std::shared_ptr<const SchemaIndex> Index311() {
  static std::shared_ptr<const SchemaIndex> kIndex = [] {
    Rng rng(42);
    return std::make_shared<const SchemaIndex>(
        workload::Make311Table(3000, &rng));
  }();
  return kIndex;
}

// ---------------------------------------------------------------------
// SchemaIndex.
// ---------------------------------------------------------------------

TEST(SchemaIndexTest, TopColumnsFindsExact) {
  auto matches = Index311()->TopColumns("borough", 3);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].column, "borough");
  EXPECT_NEAR(matches[0].similarity, 1.0, 1e-9);
}

TEST(SchemaIndexTest, NumericOnlyExcludesStrings) {
  for (const ColumnMatch& match :
       Index311()->TopColumns("borough", 10, /*numeric_only=*/true)) {
    EXPECT_NE(match.column, "borough");
    EXPECT_NE(match.column, "status");
  }
}

TEST(SchemaIndexTest, TopValuesTagsOwningColumn) {
  auto matches = Index311()->TopValues("brooklyn", 3);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].value, "brooklyn");
  EXPECT_EQ(matches[0].column, "borough");
}

TEST(SchemaIndexTest, PhoneticallySimilarValuesRankHigh) {
  // "heeding" is the deliberately confusable neighbour of "heating".
  auto matches = Index311()->TopValues("heating", 3);
  ASSERT_GE(matches.size(), 2u);
  EXPECT_EQ(matches[0].value, "heating");
  EXPECT_EQ(matches[1].value, "heeding");
}

TEST(SchemaIndexTest, TopValuesInColumnRestricts) {
  for (const ValueMatch& match :
       Index311()->TopValuesInColumn("agency", "nypd", 10)) {
    EXPECT_EQ(match.column, "agency");
  }
  EXPECT_TRUE(Index311()->TopValuesInColumn("no_such", "x", 3).empty());
}

TEST(SchemaIndexTest, ColumnsOfValue) {
  EXPECT_EQ(Index311()->ColumnsOfValue("brooklyn"),
            (std::vector<std::string>{"borough"}));
  EXPECT_TRUE(Index311()->ColumnsOfValue("nonexistent").empty());
}

// ---------------------------------------------------------------------
// Translator.
// ---------------------------------------------------------------------

TEST(TranslatorTest, CountQuery) {
  Translator translator(Index311());
  auto result = translator.Translate("how many complaints in brooklyn");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->query.function, db::AggregateFunction::kCount);
  ASSERT_EQ(result->query.predicates.size(), 1u);
  EXPECT_EQ(result->query.predicates[0].column, "borough");
  EXPECT_EQ(result->query.predicates[0].values[0].AsString(), "brooklyn");
}

TEST(TranslatorTest, AverageWithAggregateColumn) {
  Translator translator(Index311());
  auto result = translator.Translate(
      "average open hours for noise in queens");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->query.function, db::AggregateFunction::kAvg);
  EXPECT_EQ(result->query.aggregate_column, "open_hours");
  ASSERT_EQ(result->query.predicates.size(), 2u);
}

TEST(TranslatorTest, MaxQuery) {
  Translator translator(Index311());
  auto result =
      translator.Translate("maximum open hours where status is open");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->query.function, db::AggregateFunction::kMax);
  EXPECT_EQ(result->query.aggregate_column, "open_hours");
  ASSERT_EQ(result->query.predicates.size(), 1u);
  EXPECT_EQ(result->query.predicates[0].column, "status");
}

TEST(TranslatorTest, PhoneticallyCorruptedValueStillLinks) {
  Translator translator(Index311());
  // "brooklin" for "brooklyn".
  auto result = translator.Translate("how many complaints in brooklin");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->query.predicates.size(), 1u);
  // "brooklin" is genuinely ambiguous between the vocabulary entries
  // "brooklyn" and "brookline" — either is a valid top-1 link (the
  // candidate generator covers the other); what matters is that the
  // corrupted token linked to the borough column at reduced confidence.
  const std::string linked =
      result->query.predicates[0].values[0].AsString();
  EXPECT_TRUE(linked == "brooklyn" || linked == "brookline") << linked;
  EXPECT_EQ(result->query.predicates[0].column, "borough");
  EXPECT_LT(result->confidence, 1.0);
}

TEST(TranslatorTest, MultiWordValues) {
  Translator translator(Index311());
  auto result =
      translator.Translate("how many water leak complaints");
  ASSERT_TRUE(result.ok());
  bool found = false;
  for (const db::Predicate& predicate : result->query.predicates) {
    if (predicate.values[0].AsString() == "water leak") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TranslatorTest, RejectsGibberishAndEmpty) {
  Translator translator(Index311());
  EXPECT_FALSE(translator.Translate("").ok());
  EXPECT_FALSE(translator.Translate("xylophone zeppelin flugelhorn").ok());
}

TEST(TranslatorTest, VerbalizeRoundTrips) {
  Rng rng(9);
  auto table = workload::Make311Table(3000, &rng);
  auto index = std::make_shared<const SchemaIndex>(table);
  Translator translator(index);
  workload::QueryGeneratorOptions options;
  options.min_predicates = 1;
  options.max_predicates = 2;
  options.count_star_probability = 0.3;
  size_t round_tripped = 0;
  const size_t trials = 30;
  for (size_t i = 0; i < trials; ++i) {
    auto truth = workload::RandomQuery(*table, &rng, options);
    ASSERT_TRUE(truth.ok());
    const std::string utterance = VerbalizeQuery(*truth);
    auto back = translator.Translate(utterance);
    if (back.ok() &&
        back->query.CanonicalKey() == truth->CanonicalKey()) {
      ++round_tripped;
    }
  }
  // The rule-based translator will not be perfect, but must recover the
  // exact query for a solid majority of clean utterances.
  EXPECT_GE(round_tripped, trials * 7 / 10)
      << round_tripped << "/" << trials;
}

// ---------------------------------------------------------------------
// Candidate generation ("text to multi-SQL", paper §3).
// ---------------------------------------------------------------------

db::AggregateQuery BaseQuery() {
  db::AggregateQuery query;
  query.table = "nyc311";
  query.function = db::AggregateFunction::kAvg;
  query.aggregate_column = "open_hours";
  query.predicates = {
      db::Predicate::Equals("borough", db::Value("queens"))};
  return query;
}

TEST(CandidateGeneratorTest, BaseQueryIsMostLikely) {
  CandidateGenerator generator(Index311());
  core::CandidateSet set = generator.Generate(BaseQuery());
  ASSERT_FALSE(set.empty());
  EXPECT_EQ(set[0].query.CanonicalKey(), BaseQuery().CanonicalKey());
  for (size_t i = 1; i < set.size(); ++i) {
    EXPECT_LE(set[i].probability, set[0].probability);
  }
}

TEST(CandidateGeneratorTest, NormalizedAndDeduplicated) {
  CandidateGenerator generator(Index311());
  core::CandidateSet set = generator.Generate(BaseQuery());
  EXPECT_NEAR(set.TotalProbability(), 1.0, 1e-9);
  std::set<std::string> keys;
  for (size_t i = 0; i < set.size(); ++i) {
    EXPECT_TRUE(keys.insert(set[i].query.CanonicalKey()).second)
        << "duplicate candidate " << set[i].query.ToSql();
  }
}

TEST(CandidateGeneratorTest, ContainsPhoneticValueAlternative) {
  CandidateGenerator generator(Index311());
  core::CandidateSet set = generator.Generate(BaseQuery());
  bool found_quincy = false;
  for (size_t i = 0; i < set.size(); ++i) {
    for (const db::Predicate& predicate : set[i].query.predicates) {
      if (!predicate.values.empty() &&
          predicate.values[0].is_string() &&
          predicate.values[0].AsString() == "quincy") {
        found_quincy = true;
      }
    }
  }
  EXPECT_TRUE(found_quincy)
      << "phonetic neighbour 'quincy' missing from candidates";
}

TEST(CandidateGeneratorTest, ContainsAggregateAlternatives) {
  CandidateGenerator generator(Index311());
  core::CandidateSet set = generator.Generate(BaseQuery());
  std::set<db::AggregateFunction> functions;
  for (size_t i = 0; i < set.size(); ++i) {
    functions.insert(set[i].query.function);
  }
  EXPECT_GE(functions.size(), 2u);
}

TEST(CandidateGeneratorTest, RespectsMaxCandidates) {
  CandidateGenerator generator(Index311());
  CandidateGeneratorOptions options;
  options.max_candidates = 10;
  core::CandidateSet set = generator.Generate(BaseQuery(), 1.0, options);
  EXPECT_LE(set.size(), 10u);
  EXPECT_NEAR(set.TotalProbability(), 1.0, 1e-9);
}

TEST(CandidateGeneratorTest, PairsOnlyWhenEnabled) {
  CandidateGenerator generator(Index311());
  db::AggregateQuery base = BaseQuery();
  base.predicates.push_back(
      db::Predicate::Equals("status", db::Value("open")));
  CandidateGeneratorOptions no_pairs;
  no_pairs.include_pairs = false;
  no_pairs.max_candidates = 500;
  CandidateGeneratorOptions with_pairs;
  with_pairs.include_pairs = true;
  with_pairs.max_candidates = 500;
  EXPECT_LT(generator.Generate(base, 1.0, no_pairs).size(),
            generator.Generate(base, 1.0, with_pairs).size());
}

TEST(CandidateGeneratorTest, SharpenConcentratesMass) {
  CandidateGenerator generator(Index311());
  CandidateGeneratorOptions soft;
  soft.sharpen = 1.0;
  CandidateGeneratorOptions sharp;
  sharp.sharpen = 12.0;
  const double soft_top =
      generator.Generate(BaseQuery(), 1.0, soft)[0].probability;
  const double sharp_top =
      generator.Generate(BaseQuery(), 1.0, sharp)[0].probability;
  EXPECT_GT(sharp_top, soft_top);
}

TEST(CandidateGeneratorTest, NoContradictoryPredicates) {
  CandidateGenerator generator(Index311());
  db::AggregateQuery base = BaseQuery();
  base.predicates.push_back(
      db::Predicate::Equals("complaint_type", db::Value("noise")));
  core::CandidateSet set = generator.Generate(base);
  for (size_t i = 0; i < set.size(); ++i) {
    std::set<std::string> columns;
    for (const db::Predicate& predicate : set[i].query.predicates) {
      EXPECT_TRUE(columns.insert(predicate.column).second)
          << "two equality predicates on one column: "
          << set[i].query.ToSql();
    }
  }
}

}  // namespace
}  // namespace muve::nlq

namespace muve::nlq {
namespace {

// ---------------------------------------------------------------------
// Robustness-oriented candidate kinds (ASR failure recovery).
// ---------------------------------------------------------------------

TEST(CandidateGeneratorTest, CountStarBaseProposesAggregates) {
  // A COUNT(*) base may stem from a misheard aggregate keyword: every
  // (function, numeric column) combination must appear as a candidate.
  CandidateGenerator generator(Index311());
  db::AggregateQuery base;
  base.table = "nyc311";
  base.function = db::AggregateFunction::kCount;
  base.predicates = {
      db::Predicate::Equals("borough", db::Value("queens"))};
  CandidateGeneratorOptions options;
  options.max_candidates = 200;
  core::CandidateSet set = generator.Generate(base, 1.0, options);
  bool found_avg_hours = false;
  for (size_t i = 0; i < set.size(); ++i) {
    if (set[i].query.function == db::AggregateFunction::kAvg &&
        set[i].query.aggregate_column == "open_hours") {
      found_avg_hours = true;
    }
  }
  EXPECT_TRUE(found_avg_hours);
}

TEST(CandidateGeneratorTest, DropPredicateCandidates) {
  // Spurious predicates injected by ASR noise: candidates with one
  // predicate removed must exist for multi-predicate bases.
  CandidateGenerator generator(Index311());
  db::AggregateQuery base;
  base.table = "nyc311";
  base.function = db::AggregateFunction::kCount;
  base.predicates = {
      db::Predicate::Equals("borough", db::Value("queens")),
      db::Predicate::Equals("status", db::Value("open"))};
  CandidateGeneratorOptions options;
  options.max_candidates = 200;
  core::CandidateSet set = generator.Generate(base, 1.0, options);
  db::AggregateQuery dropped = base;
  dropped.predicates.erase(dropped.predicates.begin());  // Only status.
  bool found = false;
  for (size_t i = 0; i < set.size(); ++i) {
    if (set[i].query.CanonicalKey() == dropped.CanonicalKey()) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CandidateGeneratorTest, NoDropForSinglePredicate) {
  // A single-predicate query must never produce a predicate-free
  // candidate (the fragment needs at least the aggregate to mean
  // anything; an empty WHERE would dominate every plot).
  CandidateGenerator generator(Index311());
  db::AggregateQuery base;
  base.table = "nyc311";
  base.function = db::AggregateFunction::kCount;
  base.predicates = {
      db::Predicate::Equals("borough", db::Value("queens"))};
  core::CandidateSet set = generator.Generate(base);
  for (size_t i = 0; i < set.size(); ++i) {
    EXPECT_FALSE(set[i].query.predicates.empty())
        << set[i].query.ToSql();
  }
}

TEST(CandidateGeneratorTest, AggregateFloorKeepsCountReachable) {
  // From an AVG base, the COUNT interpretation must survive with at
  // least the floor weight even though "avg" and "count" sound nothing
  // alike.
  CandidateGenerator generator(Index311());
  core::CandidateSet set = generator.Generate(BaseQuery());
  db::AggregateQuery count_version = BaseQuery();
  count_version.function = db::AggregateFunction::kCount;
  bool found = false;
  for (size_t i = 0; i < set.size(); ++i) {
    if (set[i].query.CanonicalKey() == count_version.CanonicalKey()) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(QueryKeyTest, CountStarEqualsCountColumn) {
  db::AggregateQuery star;
  star.table = "t";
  star.function = db::AggregateFunction::kCount;
  star.predicates = {db::Predicate::Equals("a", db::Value("x"))};
  db::AggregateQuery column = star;
  column.aggregate_column = "m";
  EXPECT_EQ(star.CanonicalKey(), column.CanonicalKey());
  // But not for other aggregates.
  db::AggregateQuery sum_a = star;
  sum_a.function = db::AggregateFunction::kSum;
  sum_a.aggregate_column = "m";
  db::AggregateQuery sum_b = sum_a;
  sum_b.aggregate_column = "n";
  EXPECT_NE(sum_a.CanonicalKey(), sum_b.CanonicalKey());
}

}  // namespace
}  // namespace muve::nlq
