// Unit tests for the session caching subsystem (src/cache/): LRU
// recency/eviction semantics, the capacity-0 disabled path, key
// exactness, run-granular invalidation (appends never sweep; compaction
// retires exactly the rewritten runs), and counter consistency under
// concurrent ThreadPool use.

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/lru_cache.h"
#include "cache/query_cache.h"
#include "cache/stats.h"
#include "common/thread_pool.h"
#include "db/executor.h"
#include "db/query.h"
#include "db/table.h"
#include "db/value.h"

namespace muve {
namespace {

using cache::LruCache;
using cache::QueryCache;
using cache::StatsSnapshot;

std::shared_ptr<db::Table> MakeTable(size_t rows = 64,
                                     db::TableOptions options = {}) {
  auto table = db::Table::Create(
      "cachet", {{"city", db::ValueType::kString},
                 {"delay", db::ValueType::kInt64}},
      options);
  EXPECT_TRUE(table.ok());
  for (size_t r = 0; r < rows; ++r) {
    const Status status = (*table)->AppendRow(
        {db::Value(r % 2 == 0 ? "queens" : "quincy"),
         db::Value(static_cast<int64_t>(r) - 10)});
    EXPECT_TRUE(status.ok());
  }
  // Seal the rows into a columnar run: only run segments are cached (the
  // memtable tail is always rescanned), so a pure-memtable table would
  // never exercise the cache.
  (*table)->Flush();
  return std::move(table).value();
}

db::AggregateQuery CountCity(const std::string& city) {
  db::AggregateQuery query;
  query.table = "cachet";
  query.function = db::AggregateFunction::kCount;
  query.predicates.push_back(
      db::Predicate::Equals("city", db::Value(city)));
  return query;
}

// ---------------------------------------------------------------------
// LruCache
// ---------------------------------------------------------------------

TEST(LruCacheTest, EvictsLeastRecentlyUsedInOrder) {
  LruCache<std::string, int> cache(3);
  cache.Put("a", 1);
  cache.Put("b", 2);
  cache.Put("c", 3);

  // Touch "a" so "b" becomes the LRU entry.
  int out = 0;
  EXPECT_TRUE(cache.Get("a", &out));
  EXPECT_EQ(out, 1);

  cache.Put("d", 4);  // Evicts "b".
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_FALSE(cache.Get("b", &out));
  EXPECT_TRUE(cache.Get("a", &out));
  EXPECT_TRUE(cache.Get("c", &out));
  EXPECT_TRUE(cache.Get("d", &out));

  // Next eviction order follows recency: "a" (then "c", "d").
  cache.Put("e", 5);
  EXPECT_FALSE(cache.Get("a", &out));
  EXPECT_TRUE(cache.Get("c", &out));

  const StatsSnapshot stats = cache.stats();
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.misses, 2u);  // "b" and "a" after their evictions.
  EXPECT_EQ(stats.hits, 5u);
  EXPECT_EQ(stats.lookups(), 7u);
}

TEST(LruCacheTest, OverwriteRefreshesRecencyWithoutGrowing) {
  LruCache<std::string, int> cache(2);
  cache.Put("a", 1);
  cache.Put("b", 2);
  cache.Put("a", 10);  // Overwrite: "b" is now LRU.
  EXPECT_EQ(cache.size(), 2u);
  cache.Put("c", 3);  // Evicts "b".
  int out = 0;
  EXPECT_FALSE(cache.Get("b", &out));
  EXPECT_TRUE(cache.Get("a", &out));
  EXPECT_EQ(out, 10);
}

TEST(LruCacheTest, CapacityZeroBypassesEverything) {
  LruCache<std::string, int> cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.Put("a", 1);
  EXPECT_EQ(cache.size(), 0u);
  int out = 7;
  EXPECT_FALSE(cache.Get("a", &out));
  EXPECT_EQ(out, 7);  // Untouched on miss.
  const StatsSnapshot stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(LruCacheTest, CapacityOneThrashesButStaysCorrect) {
  LruCache<int, int> cache(1);
  for (int i = 0; i < 10; ++i) {
    cache.Put(i, i * i);
    int out = 0;
    ASSERT_TRUE(cache.Get(i, &out));
    EXPECT_EQ(out, i * i);
    if (i > 0) EXPECT_FALSE(cache.Get(i - 1, &out));
    EXPECT_EQ(cache.size(), 1u);
  }
  EXPECT_EQ(cache.stats().evictions, 9u);
}

TEST(LruCacheTest, EraseIfRemovesMatchingKeys) {
  LruCache<std::string, int> cache(8);
  cache.Put("t1/a", 1);
  cache.Put("t1/b", 2);
  cache.Put("t2/a", 3);
  const size_t erased = cache.EraseIf(
      [](const std::string& key) { return key.rfind("t1/", 0) == 0; });
  EXPECT_EQ(erased, 2u);
  EXPECT_EQ(cache.size(), 1u);
  int out = 0;
  EXPECT_FALSE(cache.Get("t1/a", &out));
  EXPECT_TRUE(cache.Get("t2/a", &out));
}

TEST(LruCacheTest, SharedStatsAggregateAcrossCaches) {
  cache::Stats shared;
  LruCache<int, int> a(2, &shared);
  LruCache<int, int> b(2, &shared);
  int out = 0;
  a.Put(1, 1);
  b.Put(2, 2);
  EXPECT_TRUE(a.Get(1, &out));
  EXPECT_FALSE(b.Get(1, &out));
  const StatsSnapshot stats = shared.Snapshot();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

// ---------------------------------------------------------------------
// QueryCache
// ---------------------------------------------------------------------

TEST(QueryCacheTest, ExecutorFillsAndHitsAggregateCache) {
  auto table = MakeTable();
  QueryCache cache(16);
  db::ExecutorOptions options;
  options.cache = &cache;

  const db::AggregateQuery query = CountCity("queens");
  const auto first = db::Executor::Execute(*table, query, options);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.size(), 1u);

  const auto second = db::Executor::Execute(*table, query, options);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(first->value, second->value);
  EXPECT_EQ(first->rows_matched, second->rows_matched);
  EXPECT_EQ(first->empty_input, second->empty_input);
}

TEST(QueryCacheTest, DisabledCacheNeverStores) {
  auto table = MakeTable();
  QueryCache cache(0);
  EXPECT_FALSE(cache.enabled());
  db::ExecutorOptions options;
  options.cache = &cache;
  const db::AggregateQuery query = CountCity("queens");
  const auto first = db::Executor::Execute(*table, query, options);
  const auto second = db::Executor::Execute(*table, query, options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->value, second->value);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(QueryCacheTest, AppendsNeverInvalidateRunEntries) {
  auto table = MakeTable(10);  // 5 rows match "queens", all in one run.
  QueryCache cache(16);
  db::ExecutorOptions options;
  options.cache = &cache;

  const db::AggregateQuery query = CountCity("queens");
  const auto before = db::Executor::Execute(*table, query, options);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->value, 5.0);
  EXPECT_EQ(cache.size(), 1u);

  // Appending only grows the memtable tail: the cached run partial stays
  // valid, is served as a hit, and the fresh rows come from the rescan
  // of the (never cached) memtable.
  ASSERT_TRUE(
      table->AppendRow({db::Value("queens"), db::Value(int64_t{1})}).ok());

  const auto after = db::Executor::Execute(*table, query, options);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->value, 6.0);
  EXPECT_EQ(cache.stats().invalidations, 0u);
  EXPECT_GE(cache.stats().hits, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(QueryCacheTest, CompactionRetiresExactlyRewrittenRunKeys) {
  // 5 runs of 4 rows; one compaction round (target 4) merges exactly the
  // leftmost adjacent pair, retiring 2 runs and leaving 3 untouched.
  db::TableOptions topt;
  topt.flush_threshold = 4;
  topt.target_runs = 4;
  auto table = MakeTable(20, topt);
  ASSERT_EQ(table->num_runs(), 5u);
  QueryCache cache(32);
  db::ExecutorOptions options;
  options.cache = &cache;

  const db::AggregateQuery query = CountCity("queens");
  const auto cold = db::Executor::Execute(*table, query, options);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->value, 10.0);
  EXPECT_EQ(cache.size(), 5u);  // One partial per run.

  table->Compact();
  ASSERT_EQ(table->num_runs(), 4u);

  const auto warm = db::Executor::Execute(*table, query, options);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->value, 10.0);
  // Exactly the two rewritten runs' keys were swept; the three untouched
  // runs hit, the merged run misses once and is stored.
  EXPECT_EQ(cache.stats().invalidations, 2u);
  EXPECT_GE(cache.stats().hits, 3u);
  EXPECT_EQ(cache.size(), 4u);
}

TEST(QueryCacheTest, WarmReplayAfterIngestHitsUntouchedRuns) {
  db::TableOptions topt;
  topt.flush_threshold = 8;
  auto table = MakeTable(16, topt);  // 2 runs of 8.
  ASSERT_EQ(table->num_runs(), 2u);
  QueryCache cache(32);
  db::ExecutorOptions options;
  options.cache = &cache;

  const db::AggregateQuery query = CountCity("queens");
  const auto cold = db::Executor::Execute(*table, query, options);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->value, 8.0);
  EXPECT_EQ(cache.stats().misses, 2u);

  // Stream enough rows to seal a third run plus a memtable tail.
  for (size_t r = 0; r < 10; ++r) {
    ASSERT_TRUE(
        table->AppendRow({db::Value("queens"), db::Value(int64_t{1})})
            .ok());
  }
  ASSERT_EQ(table->num_runs(), 3u);
  ASSERT_EQ(table->memtable_rows(), 2u);

  const auto warm = db::Executor::Execute(*table, query, options);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->value, 18.0);
  // The two pre-ingest runs replay from cache; only the new run misses.
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(QueryCacheTest, DistinctTablesNeverShareEntries) {
  auto table_a = MakeTable(10);
  auto table_b = MakeTable(20);  // Same schema and name, different table.
  QueryCache cache(16);
  const db::AggregateQuery query = CountCity("queens");
  const uint64_t run_a = table_a->Snapshot().runs()[0]->id();
  const uint64_t run_b = table_b->Snapshot().runs()[0]->id();

  db::AggregatePartial partial_a;
  partial_a.count = 5;
  cache.StoreRun(*table_a, run_a, query, partial_a);

  db::AggregatePartial out;
  EXPECT_FALSE(cache.LookupRun(*table_b, run_b, query, &out));
  EXPECT_TRUE(cache.LookupRun(*table_a, run_a, query, &out));
  EXPECT_EQ(out.count, 5u);
}

TEST(QueryCacheTest, KeysAreExactBeyondDisplayPrecision) {
  auto table = MakeTable(4);
  QueryCache cache(16);
  const uint64_t run = table->Snapshot().runs()[0]->id();
  // Two predicates whose constants agree to 6 significant digits — the
  // display precision of Value::ToString — but differ beyond it.
  db::AggregateQuery q1;
  q1.table = "cachet";
  q1.function = db::AggregateFunction::kCount;
  q1.predicates.push_back(
      db::Predicate::Equals("delay", db::Value(1.00000001)));
  db::AggregateQuery q2 = q1;
  q2.predicates[0].values = {db::Value(1.00000002)};

  db::AggregatePartial partial;
  partial.count = 42;
  cache.StoreRun(*table, run, q1, partial);
  db::AggregatePartial out;
  EXPECT_FALSE(cache.LookupRun(*table, run, q2, &out))
      << "aliased distinct keys";
  EXPECT_TRUE(cache.LookupRun(*table, run, q1, &out));
}

TEST(QueryCacheTest, GroupedResultsRoundTrip) {
  auto table = MakeTable(16);
  QueryCache cache(16);
  db::ExecutorOptions options;
  options.cache = &cache;

  db::GroupByQuery query;
  query.table = "cachet";
  query.group_column = "city";
  query.group_values = {"queens", "quincy", "absent"};
  query.aggregates.push_back({db::AggregateFunction::kCount, ""});
  query.aggregates.push_back({db::AggregateFunction::kSum, "delay"});

  const auto cold = db::Executor::ExecuteGrouped(*table, query, options);
  ASSERT_TRUE(cold.ok());
  const auto warm = db::Executor::ExecuteGrouped(*table, query, options);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(cache.stats().hits, 1u);
  ASSERT_EQ(cold->cells.size(), warm->cells.size());
  for (size_t g = 0; g < cold->cells.size(); ++g) {
    ASSERT_EQ(cold->cells[g].size(), warm->cells[g].size());
    for (size_t a = 0; a < cold->cells[g].size(); ++a) {
      EXPECT_EQ(cold->cells[g][a].value, warm->cells[g][a].value);
      EXPECT_EQ(cold->cells[g][a].rows_matched,
                warm->cells[g][a].rows_matched);
      EXPECT_EQ(cold->cells[g][a].empty_input,
                warm->cells[g][a].empty_input);
    }
  }

  // Group-value order is part of the key: a reordered IN list has
  // position-indexed cells, so it must not hit the stored entry.
  db::GroupByQuery reordered = query;
  std::swap(reordered.group_values[0], reordered.group_values[1]);
  const uint64_t run = table->Snapshot().runs()[0]->id();
  db::GroupedPartial out;
  EXPECT_FALSE(cache.LookupRun(*table, run, reordered, &out));
}

// ---------------------------------------------------------------------
// Concurrency
// ---------------------------------------------------------------------

TEST(CacheConcurrencyTest, CountersConsistentUnderThreadPool) {
  ThreadPool pool(8);
  LruCache<int, int> cache(64);
  constexpr int kTasks = 16;
  constexpr int kOpsPerTask = 2000;

  std::atomic<uint64_t> observed_hits{0};
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (int t = 0; t < kTasks; ++t) {
    futures.push_back(pool.Submit([t, &cache, &observed_hits] {
      uint64_t hits = 0;
      for (int i = 0; i < kOpsPerTask; ++i) {
        const int key = (t * 31 + i * 17) % 96;  // Overlapping key space.
        int out = 0;
        if (cache.Get(key, &out)) {
          ++hits;
          EXPECT_EQ(out, key * 3);  // Values are a function of the key.
        } else {
          cache.Put(key, key * 3);
        }
      }
      observed_hits.fetch_add(hits, std::memory_order_relaxed);
    }));
  }
  for (auto& future : futures) future.get();

  const StatsSnapshot stats = cache.stats();
  EXPECT_EQ(stats.lookups(),
            static_cast<uint64_t>(kTasks) * kOpsPerTask);
  EXPECT_EQ(stats.hits, observed_hits.load());
  EXPECT_LE(cache.size(), 64u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
}

TEST(CacheConcurrencyTest, SharedQueryCacheUnderConcurrentExecution) {
  ThreadPool pool(8);
  auto table = MakeTable(512);
  QueryCache cache(8);
  constexpr int kTasks = 16;

  std::vector<std::future<double>> futures;
  futures.reserve(kTasks);
  for (int t = 0; t < kTasks; ++t) {
    futures.push_back(pool.Submit([t, &table, &cache]() -> double {
      db::ExecutorOptions options;
      options.cache = &cache;
      // Two distinct queries raced by all workers: concurrent equal-key
      // misses must compute (and store) identical values. The repeat is
      // a guaranteed hit (the task's own store cannot have been evicted
      // — only two keys exist) and must agree with the first run.
      const db::AggregateQuery query =
          CountCity(t % 2 == 0 ? "queens" : "quincy");
      const auto cold = db::Executor::Execute(*table, query, options);
      const auto warm = db::Executor::Execute(*table, query, options);
      EXPECT_TRUE(cold.ok());
      EXPECT_TRUE(warm.ok());
      if (!cold.ok() || !warm.ok()) return -1.0;
      EXPECT_EQ(cold->value, warm->value);
      return cold->value;
    }));
  }
  double queens = -1.0;
  double quincy = -1.0;
  for (int t = 0; t < kTasks; ++t) {
    const double value = futures[static_cast<size_t>(t)].get();
    double& expected = (t % 2 == 0) ? queens : quincy;
    if (expected < 0.0) {
      expected = value;
    } else {
      EXPECT_EQ(expected, value) << "task " << t;
    }
  }
  EXPECT_EQ(queens, 256.0);
  EXPECT_EQ(quincy, 256.0);
  const StatsSnapshot stats = cache.stats();
  EXPECT_EQ(stats.lookups(), 2u * static_cast<uint64_t>(kTasks));
  EXPECT_GE(stats.hits, static_cast<uint64_t>(kTasks));
}

}  // namespace
}  // namespace muve
