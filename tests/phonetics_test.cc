#include <gtest/gtest.h>

#include "phonetics/double_metaphone.h"
#include "phonetics/phonetic_index.h"
#include "phonetics/similarity.h"

namespace muve::phonetics {
namespace {

// ---------------------------------------------------------------------
// Double Metaphone golden values (Philips' reference behaviour).
// ---------------------------------------------------------------------

struct MetaphoneGolden {
  const char* word;
  const char* primary;
  const char* secondary;
};

class DoubleMetaphoneGoldenTest
    : public ::testing::TestWithParam<MetaphoneGolden> {};

TEST_P(DoubleMetaphoneGoldenTest, MatchesGolden) {
  const DoubleMetaphone encoder;
  const MetaphoneCode code = encoder.Encode(GetParam().word);
  EXPECT_EQ(code.primary, GetParam().primary) << GetParam().word;
  EXPECT_EQ(code.secondary, GetParam().secondary) << GetParam().word;
}

INSTANTIATE_TEST_SUITE_P(
    Golden, DoubleMetaphoneGoldenTest,
    ::testing::Values(MetaphoneGolden{"smith", "SM0", "XMT"},
                      MetaphoneGolden{"smyth", "SM0", "XMT"},
                      MetaphoneGolden{"thomas", "TMS", "TMS"},
                      MetaphoneGolden{"knight", "NT", "NT"},
                      MetaphoneGolden{"jose", "HS", "HS"},
                      MetaphoneGolden{"john", "JN", "AN"},
                      MetaphoneGolden{"white", "AT", "AT"},
                      MetaphoneGolden{"cabrillo", "KPRL", "KPR"},
                      MetaphoneGolden{"brooklyn", "PRKL", "PRKL"},
                      MetaphoneGolden{"queens", "KNS", "KNS"},
                      MetaphoneGolden{"quincy", "KNS", "KNS"}));

TEST(DoubleMetaphoneTest, HomophonesShareCodes) {
  const DoubleMetaphone encoder;
  EXPECT_EQ(encoder.Encode("smith").primary,
            encoder.Encode("smyth").primary);
  EXPECT_EQ(encoder.Encode("queens").primary,
            encoder.Encode("quincy").primary);
}

TEST(DoubleMetaphoneTest, EmptyAndNonAlpha) {
  const DoubleMetaphone encoder;
  EXPECT_EQ(encoder.Encode("").primary, "");
  EXPECT_EQ(encoder.Encode("123 !?").primary, "");
  // Non-alphabetic characters are ignored.
  EXPECT_EQ(encoder.Encode("sm-ith").primary,
            encoder.Encode("smith").primary);
}

TEST(DoubleMetaphoneTest, CaseInsensitive) {
  const DoubleMetaphone encoder;
  EXPECT_EQ(encoder.Encode("BROOKLYN"), encoder.Encode("brooklyn"));
}

TEST(DoubleMetaphoneTest, MaxLengthRespected) {
  const DoubleMetaphone encoder(2);
  EXPECT_LE(encoder.Encode("mississippi").primary.size(), 2u);
}

TEST(DoubleMetaphoneTest, MetaphonePrimaryHelper) {
  EXPECT_EQ(MetaphonePrimary("smith"), "SM0");
}

// ---------------------------------------------------------------------
// Jaro / Jaro-Winkler.
// ---------------------------------------------------------------------

TEST(JaroTest, KnownValues) {
  EXPECT_NEAR(JaroSimilarity("MARTHA", "MARHTA"), 0.944444, 1e-5);
  EXPECT_NEAR(JaroSimilarity("DIXON", "DICKSONX"), 0.766667, 1e-5);
  EXPECT_NEAR(JaroSimilarity("DWAYNE", "DUANE"), 0.822222, 1e-5);
}

TEST(JaroTest, IdentityAndDisjoint) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
}

TEST(JaroTest, Symmetry) {
  const char* words[] = {"martha", "marhta", "dixon", "dickson", "a", ""};
  for (const char* a : words) {
    for (const char* b : words) {
      EXPECT_DOUBLE_EQ(JaroSimilarity(a, b), JaroSimilarity(b, a));
    }
  }
}

TEST(JaroWinklerTest, KnownValues) {
  EXPECT_NEAR(JaroWinklerSimilarity("MARTHA", "MARHTA"), 0.961111, 1e-5);
  EXPECT_NEAR(JaroWinklerSimilarity("DWAYNE", "DUANE"), 0.84, 1e-5);
}

TEST(JaroWinklerTest, PrefixBonusNeverLowers) {
  const char* words[] = {"brooklyn", "brookline", "bronx", "queens"};
  for (const char* a : words) {
    for (const char* b : words) {
      EXPECT_GE(JaroWinklerSimilarity(a, b), JaroSimilarity(a, b) - 1e-12);
    }
  }
}

TEST(JaroWinklerTest, RangeIsUnitInterval) {
  const char* words[] = {"a", "ab", "abc", "xyz", "brooklyn", ""};
  for (const char* a : words) {
    for (const char* b : words) {
      const double s = JaroWinklerSimilarity(a, b);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
  }
}

TEST(PhoneticSimilarityTest, HomophonesScoreHigherThanUnrelated) {
  EXPECT_GT(PhoneticSimilarity("queens", "quincy"),
            PhoneticSimilarity("queens", "manhattan"));
  EXPECT_GT(PhoneticSimilarity("boston", "austin"),
            PhoneticSimilarity("boston", "seattle"));
}

TEST(PhoneticSimilarityTest, IdentityIsOne) {
  EXPECT_DOUBLE_EQ(PhoneticSimilarity("brooklyn", "brooklyn"), 1.0);
}

// ---------------------------------------------------------------------
// PhoneticIndex.
// ---------------------------------------------------------------------

TEST(PhoneticIndexTest, TopKOrdersBySimilarity) {
  PhoneticIndex index;
  index.AddAll({"queens", "quincy", "brooklyn", "bronx", "manhattan"});
  const std::vector<PhoneticMatch> matches = index.TopK("queens", 3);
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0].entry, "queens");
  EXPECT_EQ(matches[1].entry, "quincy");
  for (size_t i = 1; i < matches.size(); ++i) {
    EXPECT_LE(matches[i].similarity, matches[i - 1].similarity);
  }
}

TEST(PhoneticIndexTest, ExcludeExactMatch) {
  PhoneticIndex index;
  index.AddAll({"queens", "quincy", "brooklyn"});
  const std::vector<PhoneticMatch> matches =
      index.TopK("queens", 3, /*include_exact=*/false);
  for (const PhoneticMatch& match : matches) {
    EXPECT_NE(match.entry, "queens");
  }
  EXPECT_EQ(matches[0].entry, "quincy");
}

TEST(PhoneticIndexTest, DuplicatesIgnored) {
  PhoneticIndex index;
  index.Add("queens");
  index.Add("Queens");
  index.Add("QUEENS");
  EXPECT_EQ(index.size(), 1u);
}

TEST(PhoneticIndexTest, KLargerThanIndex) {
  PhoneticIndex index;
  index.AddAll({"a", "b"});
  EXPECT_EQ(index.TopK("a", 10).size(), 2u);
}

TEST(PhoneticIndexTest, EmptyIndex) {
  PhoneticIndex index;
  EXPECT_TRUE(index.TopK("anything", 5).empty());
}

}  // namespace
}  // namespace muve::phonetics
