#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "stats/stats.h"

namespace muve::stats {
namespace {

TEST(DescriptiveTest, Mean) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(DescriptiveTest, SampleVariance) {
  // Known: var of {2, 4, 4, 4, 5, 5, 7, 9} (sample) = 32/7.
  EXPECT_NEAR(SampleVariance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(SampleVariance({5.0}), 0.0);
}

TEST(DescriptiveTest, ConfidenceInterval95Contains) {
  // CI of a constant sample collapses to the mean.
  ConfidenceInterval ci = ConfidenceInterval95({3.0, 3.0, 3.0, 3.0});
  EXPECT_DOUBLE_EQ(ci.mean, 3.0);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
}

TEST(DescriptiveTest, ConfidenceInterval95KnownValue) {
  // n=4, mean=2.5, s=stddev{1,2,3,4}=1.29099, t*(3, .95)=3.1824.
  ConfidenceInterval ci = ConfidenceInterval95({1.0, 2.0, 3.0, 4.0});
  EXPECT_NEAR(ci.mean, 2.5, 1e-12);
  EXPECT_NEAR(ci.half_width, 3.1824 * 1.2909944 / 2.0, 1e-3);
}

TEST(SpecialFunctionsTest, IncompleteBetaBoundaries) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(SpecialFunctionsTest, IncompleteBetaSymmetry) {
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  for (double x : {0.1, 0.3, 0.5, 0.8}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(2.5, 1.5, x),
                1.0 - RegularizedIncompleteBeta(1.5, 2.5, 1.0 - x), 1e-10);
  }
}

TEST(SpecialFunctionsTest, IncompleteBetaUniformCase) {
  // I_x(1,1) = x.
  for (double x : {0.25, 0.5, 0.75}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, x), x, 1e-10);
  }
}

TEST(StudentTTest, CdfAtZeroIsHalf) {
  for (double df : {1.0, 5.0, 30.0}) {
    EXPECT_NEAR(StudentTCdf(0.0, df), 0.5, 1e-10);
  }
}

TEST(StudentTTest, KnownQuantiles) {
  // t(df=10): P(T <= 1.812) ~ 0.95; t(df=1, Cauchy): P(T <= 1) = 0.75.
  EXPECT_NEAR(StudentTCdf(1.8125, 10.0), 0.95, 1e-3);
  EXPECT_NEAR(StudentTCdf(1.0, 1.0), 0.75, 1e-6);
}

TEST(StudentTTest, CriticalValueRoundTrips) {
  for (double df : {3.0, 10.0, 100.0}) {
    const double t_star = StudentTCritical(df, 0.95);
    EXPECT_NEAR(StudentTCdf(t_star, df), 0.975, 1e-6);
  }
}

TEST(StudentTTest, CriticalValueKnown) {
  // Two-sided 95% critical values: df=3 -> 3.182, df=30 -> 2.042.
  EXPECT_NEAR(StudentTCritical(3.0, 0.95), 3.1824, 1e-3);
  EXPECT_NEAR(StudentTCritical(30.0, 0.95), 2.0423, 1e-3);
}

TEST(PearsonTest, PerfectCorrelation) {
  auto result = PearsonCorrelation({1, 2, 3, 4}, {2, 4, 6, 8});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->r, 1.0, 1e-12);
  EXPECT_NEAR(result->r_squared, 1.0, 1e-12);
  EXPECT_NEAR(result->p_value, 0.0, 1e-9);
}

TEST(PearsonTest, PerfectAnticorrelation) {
  auto result = PearsonCorrelation({1, 2, 3, 4}, {8, 6, 4, 2});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->r, -1.0, 1e-12);
}

TEST(PearsonTest, IndependentSamplesHaveHighP) {
  Rng rng(5);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(rng.Normal());
    ys.push_back(rng.Normal());
  }
  auto result = PearsonCorrelation(xs, ys);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(std::fabs(result->r), 0.2);
  EXPECT_GT(result->p_value, 0.01);
}

TEST(PearsonTest, CorrelatedSamplesHaveLowP) {
  Rng rng(6);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.Normal();
    xs.push_back(x);
    ys.push_back(2.0 * x + rng.Normal() * 0.5);
  }
  auto result = PearsonCorrelation(xs, ys);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->r_squared, 0.8);
  EXPECT_LT(result->p_value, 1e-6);
}

TEST(PearsonTest, ConstantSampleIsUncorrelated) {
  auto result = PearsonCorrelation({1, 1, 1, 1}, {1, 2, 3, 4});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->r, 0.0);
  EXPECT_DOUBLE_EQ(result->p_value, 1.0);
}

TEST(PearsonTest, RejectsMismatchedSizes) {
  EXPECT_FALSE(PearsonCorrelation({1, 2}, {1, 2, 3}).ok());
  EXPECT_FALSE(PearsonCorrelation({1, 2}, {1, 2}).ok());
}

TEST(PearsonTest, KnownTextbookValue) {
  // r of {(1,2),(2,5),(3,6)} = 0.9608.
  auto result = PearsonCorrelation({1, 2, 3}, {2, 5, 6});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->r, 0.9608, 1e-3);
}

TEST(FitLineTest, ExactLine) {
  auto fit = FitLine({0, 1, 2, 3}, {1, 3, 5, 7});
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 2.0, 1e-12);
  EXPECT_NEAR(fit->intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);
}

TEST(FitLineTest, NoisyLineRecoversSlope) {
  Rng rng(8);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 500; ++i) {
    const double x = static_cast<double>(i % 10);
    xs.push_back(x);
    ys.push_back(3.0 * x + 5.0 + rng.Normal() * 0.5);
  }
  auto fit = FitLine(xs, ys);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 3.0, 0.05);
  EXPECT_NEAR(fit->intercept, 5.0, 0.3);
}

TEST(FitLineTest, RejectsConstantX) {
  EXPECT_FALSE(FitLine({2, 2, 2}, {1, 2, 3}).ok());
}

}  // namespace
}  // namespace muve::stats
