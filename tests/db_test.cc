#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <thread>

#include "cache/query_cache.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "db/cost_estimator.h"
#include "db/executor.h"
#include "db/lsm/compaction.h"
#include "db/snapshot.h"
#include "testing/random_workload.h"
#include "db/vec/aggregate_kernels.h"
#include "db/vec/batch.h"
#include "db/vec/filter_kernels.h"
#include "db/vec/group_kernels.h"
#include "db/query.h"
#include "db/sql_parser.h"
#include "db/table.h"
#include "workload/datasets.h"
#include "workload/query_generator.h"

namespace muve::db {
namespace {

std::shared_ptr<Table> MakeCityTable() {
  auto table = *Table::Create("trips", {{"city", ValueType::kString},
                                        {"kind", ValueType::kString},
                                        {"delay", ValueType::kDouble},
                                        {"distance", ValueType::kInt64}});
  struct Row {
    const char* city;
    const char* kind;
    double delay;
    int64_t distance;
  };
  const Row rows[] = {
      {"boston", "bus", 5.0, 10},   {"boston", "rail", 7.0, 20},
      {"austin", "bus", 1.0, 30},   {"austin", "bus", 3.0, 40},
      {"boston", "bus", -2.0, 50},  {"newark", "rail", 9.0, 60},
      {"newark", "bus", 11.0, 70},  {"boston", "rail", 0.0, 80},
  };
  for (const Row& row : rows) {
    EXPECT_TRUE(table
                    ->AppendRow({Value(row.city), Value(row.kind),
                                 Value(row.delay), Value(row.distance)})
                    .ok());
  }
  return table;
}

// ---------------------------------------------------------------------
// Table / Column.
// ---------------------------------------------------------------------

TEST(TableTest, CreateRejectsDuplicatesAndEmpty) {
  EXPECT_FALSE(Table::Create("t", {}).ok());
  EXPECT_FALSE(Table::Create("t", {{"a", ValueType::kInt64},
                                   {"A", ValueType::kString}})
                   .ok());
}

TEST(TableTest, AppendAndRead) {
  auto table = MakeCityTable();
  EXPECT_EQ(table->num_rows(), 8u);
  EXPECT_EQ(table->num_columns(), 4u);
  EXPECT_EQ(table->ValueAt(0, 0).AsString(), "boston");
  EXPECT_EQ(table->ValueAt(7, 3).AsInt64(), 80);
}

TEST(TableTest, AppendRejectsTypeAndArityMismatch) {
  auto table = MakeCityTable();
  EXPECT_FALSE(table->AppendRow({Value("x"), Value("y")}).ok());
  EXPECT_FALSE(table
                   ->AppendRow({Value(int64_t{1}), Value("bus"),
                                Value(1.0), Value(int64_t{2})})
                   .ok());
}

TEST(TableTest, ColumnIndexIsCaseInsensitive) {
  auto table = MakeCityTable();
  EXPECT_TRUE(table->ColumnIndex("CITY").ok());
  EXPECT_TRUE(table->ColumnIndex("Delay").ok());
  EXPECT_FALSE(table->ColumnIndex("nope").ok());
}

TEST(TableTest, ColumnNamesOfType) {
  auto table = MakeCityTable();
  EXPECT_EQ(table->ColumnNamesOfType(ValueType::kString),
            (std::vector<std::string>{"city", "kind"}));
  EXPECT_EQ(table->ColumnNamesOfType(ValueType::kDouble),
            (std::vector<std::string>{"delay"}));
}

TEST(ColumnTest, DictionaryEncoding) {
  auto table = MakeCityTable();
  EXPECT_EQ(table->StringValues("city").size(), 3u);
  EXPECT_EQ(table->DistinctCount(*table->ColumnIndex("city")), 3u);
  Column city("city", ValueType::kString);
  for (const char* v : {"boston", "austin", "boston"}) {
    ASSERT_TRUE(city.Append(Value(v)).ok());
  }
  EXPECT_NE(city.CodeFor("boston"), kInvalidCode);
  EXPECT_EQ(city.CodeFor("chicago"), kInvalidCode);
}

TEST(ColumnTest, NumericDistinctCount) {
  auto table = MakeCityTable();
  EXPECT_EQ(table->DistinctCount(*table->ColumnIndex("distance")), 8u);
}

TEST(TableTest, SampleFraction) {
  Rng rng(3);
  auto big = workload::Make311Table(10000, &rng);
  auto sample = big->Sample(0.1);
  EXPECT_NEAR(static_cast<double>(sample->num_rows()), 1000.0, 10.0);
  EXPECT_EQ(sample->num_columns(), big->num_columns());
  auto empty = big->Sample(0.0);
  EXPECT_EQ(empty->num_rows(), 0u);
  auto full = big->Sample(1.0);
  EXPECT_EQ(full->num_rows(), big->num_rows());
}

// ---------------------------------------------------------------------
// Query model.
// ---------------------------------------------------------------------

TEST(QueryTest, ToSql) {
  AggregateQuery query;
  query.table = "trips";
  query.function = AggregateFunction::kAvg;
  query.aggregate_column = "delay";
  query.predicates.push_back(Predicate::Equals("city", Value("boston")));
  query.predicates.push_back(
      Predicate::In("kind", {Value("bus"), Value("rail")}));
  EXPECT_EQ(query.ToSql(),
            "SELECT AVG(delay) FROM trips WHERE city = 'boston' AND kind "
            "IN ('bus', 'rail')");
}

TEST(QueryTest, CanonicalKeyIsPredicateOrderInsensitive) {
  AggregateQuery a;
  a.table = "t";
  a.function = AggregateFunction::kCount;
  a.predicates = {Predicate::Equals("x", Value("1")),
                  Predicate::Equals("y", Value("2"))};
  AggregateQuery b = a;
  std::swap(b.predicates[0], b.predicates[1]);
  EXPECT_EQ(a.CanonicalKey(), b.CanonicalKey());
  EXPECT_TRUE(a == b);
}

TEST(QueryTest, CanonicalKeyDistinguishesAggregates) {
  AggregateQuery a;
  a.table = "t";
  a.function = AggregateFunction::kMin;
  a.aggregate_column = "v";
  AggregateQuery b = a;
  b.function = AggregateFunction::kMax;
  EXPECT_NE(a.CanonicalKey(), b.CanonicalKey());
}

// ---------------------------------------------------------------------
// Executor.
// ---------------------------------------------------------------------

TEST(ExecutorTest, CountWithPredicate) {
  auto table = MakeCityTable();
  AggregateQuery query;
  query.table = "trips";
  query.function = AggregateFunction::kCount;
  query.predicates = {Predicate::Equals("city", Value("boston"))};
  auto result = Executor::Execute(*table, query);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->value, 4.0);
  EXPECT_EQ(result->rows_matched, 4u);
}

TEST(ExecutorTest, AllAggregates) {
  auto table = MakeCityTable();
  AggregateQuery query;
  query.table = "trips";
  query.aggregate_column = "delay";
  query.predicates = {Predicate::Equals("city", Value("boston"))};
  // boston delays: 5, 7, -2, 0.
  query.function = AggregateFunction::kSum;
  EXPECT_DOUBLE_EQ(Executor::Execute(*table, query)->value, 10.0);
  query.function = AggregateFunction::kAvg;
  EXPECT_DOUBLE_EQ(Executor::Execute(*table, query)->value, 2.5);
  query.function = AggregateFunction::kMin;
  EXPECT_DOUBLE_EQ(Executor::Execute(*table, query)->value, -2.0);
  query.function = AggregateFunction::kMax;
  EXPECT_DOUBLE_EQ(Executor::Execute(*table, query)->value, 7.0);
}

TEST(ExecutorTest, ConjunctionOfPredicates) {
  auto table = MakeCityTable();
  AggregateQuery query;
  query.table = "trips";
  query.function = AggregateFunction::kCount;
  query.predicates = {Predicate::Equals("city", Value("boston")),
                      Predicate::Equals("kind", Value("bus"))};
  EXPECT_DOUBLE_EQ(Executor::Execute(*table, query)->value, 2.0);
}

TEST(ExecutorTest, InPredicate) {
  auto table = MakeCityTable();
  AggregateQuery query;
  query.table = "trips";
  query.function = AggregateFunction::kCount;
  query.predicates = {
      Predicate::In("city", {Value("boston"), Value("newark")})};
  EXPECT_DOUBLE_EQ(Executor::Execute(*table, query)->value, 6.0);
}

TEST(ExecutorTest, PredicateOnMissingValueMatchesNothing) {
  auto table = MakeCityTable();
  AggregateQuery query;
  query.table = "trips";
  query.function = AggregateFunction::kCount;
  query.predicates = {Predicate::Equals("city", Value("chicago"))};
  auto result = Executor::Execute(*table, query);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->value, 0.0);
}

TEST(ExecutorTest, EmptyInputAggregates) {
  auto table = MakeCityTable();
  AggregateQuery query;
  query.table = "trips";
  query.function = AggregateFunction::kAvg;
  query.aggregate_column = "delay";
  query.predicates = {Predicate::Equals("city", Value("chicago"))};
  auto result = Executor::Execute(*table, query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty_input);
}

TEST(ExecutorTest, EmptyInputSurvivesParallelMerge) {
  // Regression: a zero-match AVG/MIN/MAX must report empty_input = true
  // when the scan is partitioned and partial accumulators are merged. A
  // buggy merge would fold a partition's identity extrema (+/-inf) or a
  // 0 sum into a "real" value and lose the emptiness bit.
  auto table = *Table::Create("wide", {{"city", ValueType::kString},
                                       {"delay", ValueType::kDouble}});
  for (int r = 0; r < 5000; ++r) {
    ASSERT_TRUE(
        table->AppendRow({Value("boston"), Value(1.0 + r)}).ok());
  }
  ThreadPool pool(4);
  ExecutorOptions options;
  options.pool = &pool;
  options.min_parallel_rows = 1;
  options.parallel_grain = 257;  // Many partitions, all empty.

  for (const AggregateFunction fn :
       {AggregateFunction::kAvg, AggregateFunction::kMin,
        AggregateFunction::kMax}) {
    AggregateQuery query;
    query.table = "wide";
    query.function = fn;
    query.aggregate_column = "delay";
    query.predicates = {Predicate::Equals("city", Value("chicago"))};
    auto result = Executor::Execute(*table, query, options);
    ASSERT_TRUE(result.ok()) << AggregateFunctionName(fn);
    EXPECT_TRUE(result->empty_input) << AggregateFunctionName(fn);
    EXPECT_DOUBLE_EQ(result->value, 0.0) << AggregateFunctionName(fn);
    EXPECT_EQ(result->rows_matched, 0u) << AggregateFunctionName(fn);
  }

  // COUNT of nothing is a real 0, not an empty input.
  AggregateQuery count;
  count.table = "wide";
  count.function = AggregateFunction::kCount;
  count.predicates = {Predicate::Equals("city", Value("chicago"))};
  auto counted = Executor::Execute(*table, count, options);
  ASSERT_TRUE(counted.ok());
  EXPECT_FALSE(counted->empty_input);
  EXPECT_DOUBLE_EQ(counted->value, 0.0);
}

TEST(ExecutorTest, GroupedEmptyCellsSurviveParallelMerge) {
  // Same regression at the grouped-scan merge: an IN-list group value
  // absent from the data must yield empty_input cells after the
  // per-partition accumulator grids are merged.
  auto table = *Table::Create("wide", {{"city", ValueType::kString},
                                       {"delay", ValueType::kDouble}});
  for (int r = 0; r < 5000; ++r) {
    ASSERT_TRUE(
        table->AppendRow({Value("boston"), Value(1.0 + r)}).ok());
  }
  ThreadPool pool(4);
  ExecutorOptions options;
  options.pool = &pool;
  options.min_parallel_rows = 1;
  options.parallel_grain = 257;

  GroupByQuery grouped;
  grouped.table = "wide";
  grouped.group_column = "city";
  grouped.group_values = {"boston", "chicago"};
  grouped.aggregates = {{AggregateFunction::kAvg, "delay"},
                        {AggregateFunction::kMin, "delay"},
                        {AggregateFunction::kCount, ""}};
  auto result = Executor::ExecuteGrouped(*table, grouped, options);
  ASSERT_TRUE(result.ok());

  // boston is populated: AVG of 1..5000 and MIN 1.
  EXPECT_FALSE(result->cells[0][0].empty_input);
  EXPECT_DOUBLE_EQ(result->cells[0][0].value, 2500.5);
  EXPECT_DOUBLE_EQ(result->cells[0][1].value, 1.0);
  EXPECT_DOUBLE_EQ(result->cells[0][2].value, 5000.0);

  // chicago matched nothing anywhere: AVG/MIN empty, COUNT real 0.
  EXPECT_TRUE(result->cells[1][0].empty_input);
  EXPECT_DOUBLE_EQ(result->cells[1][0].value, 0.0);
  EXPECT_TRUE(result->cells[1][1].empty_input);
  EXPECT_FALSE(result->cells[1][2].empty_input);
  EXPECT_DOUBLE_EQ(result->cells[1][2].value, 0.0);
}

TEST(ExecutorTest, ErrorsOnBadColumns) {
  auto table = MakeCityTable();
  AggregateQuery query;
  query.table = "trips";
  query.function = AggregateFunction::kSum;
  query.aggregate_column = "city";  // String column.
  EXPECT_FALSE(Executor::Execute(*table, query).ok());
  query.aggregate_column = "nope";
  EXPECT_FALSE(Executor::Execute(*table, query).ok());
  query.aggregate_column = "delay";
  query.predicates = {Predicate::Equals("nope", Value("x"))};
  EXPECT_FALSE(Executor::Execute(*table, query).ok());
  query.predicates = {Predicate::Equals("city", Value(int64_t{3}))};
  EXPECT_FALSE(Executor::Execute(*table, query).ok());
}

TEST(ExecutorTest, IntAggregation) {
  auto table = MakeCityTable();
  AggregateQuery query;
  query.table = "trips";
  query.function = AggregateFunction::kSum;
  query.aggregate_column = "distance";
  EXPECT_DOUBLE_EQ(Executor::Execute(*table, query)->value, 360.0);
}

// ---------------------------------------------------------------------
// Grouped execution: must equal separate execution.
// ---------------------------------------------------------------------

TEST(ExecutorTest, GroupedMatchesSeparate) {
  auto table = MakeCityTable();
  GroupByQuery grouped;
  grouped.table = "trips";
  grouped.group_column = "city";
  grouped.group_values = {"boston", "austin", "newark", "chicago"};
  grouped.shared_predicates = {Predicate::Equals("kind", Value("bus"))};
  grouped.aggregates = {{AggregateFunction::kCount, ""},
                        {AggregateFunction::kSum, "delay"},
                        {AggregateFunction::kAvg, "delay"}};
  auto grouped_result = Executor::ExecuteGrouped(*table, grouped);
  ASSERT_TRUE(grouped_result.ok());

  for (size_t g = 0; g < grouped.group_values.size(); ++g) {
    for (size_t a = 0; a < grouped.aggregates.size(); ++a) {
      AggregateQuery single;
      single.table = "trips";
      single.function = grouped.aggregates[a].function;
      single.aggregate_column = grouped.aggregates[a].column;
      single.predicates = {
          Predicate::Equals("kind", Value("bus")),
          Predicate::Equals("city", Value(grouped.group_values[g]))};
      auto single_result = Executor::Execute(*table, single);
      ASSERT_TRUE(single_result.ok());
      EXPECT_DOUBLE_EQ(grouped_result->cells[g][a].value,
                       single_result->value)
          << "group " << grouped.group_values[g] << " agg " << a;
    }
  }
}

TEST(ExecutorTest, GroupedRandomizedEquivalence) {
  Rng rng(99);
  auto table = workload::Make311Table(5000, &rng);
  GroupByQuery grouped;
  grouped.table = table->name();
  grouped.group_column = "borough";
  grouped.group_values = table->StringValues("borough");
  grouped.shared_predicates = {
      Predicate::Equals("status", Value("open"))};
  grouped.aggregates = {{AggregateFunction::kCount, ""},
                        {AggregateFunction::kMax, "open_hours"}};
  auto grouped_result = Executor::ExecuteGrouped(*table, grouped);
  ASSERT_TRUE(grouped_result.ok());
  for (size_t g = 0; g < grouped.group_values.size(); ++g) {
    AggregateQuery single;
    single.table = table->name();
    single.function = AggregateFunction::kCount;
    single.predicates = {
        Predicate::Equals("status", Value("open")),
        Predicate::Equals("borough", Value(grouped.group_values[g]))};
    EXPECT_DOUBLE_EQ(grouped_result->cells[g][0].value,
                     Executor::Execute(*table, single)->value);
  }
}

TEST(ExecutorTest, GroupedRequiresStringGroupColumn) {
  auto table = MakeCityTable();
  GroupByQuery grouped;
  grouped.table = "trips";
  grouped.group_column = "delay";
  grouped.group_values = {"x"};
  grouped.aggregates = {{AggregateFunction::kCount, ""}};
  EXPECT_FALSE(Executor::ExecuteGrouped(*table, grouped).ok());
}

TEST(ExecutorTest, GroupBySqlText) {
  GroupByQuery grouped;
  grouped.table = "trips";
  grouped.group_column = "city";
  grouped.group_values = {"boston", "austin"};
  grouped.shared_predicates = {Predicate::Equals("kind", Value("bus"))};
  grouped.aggregates = {{AggregateFunction::kCount, ""},
                        {AggregateFunction::kSum, "delay"}};
  EXPECT_EQ(grouped.ToSql(),
            "SELECT city, COUNT(*), SUM(delay) FROM trips WHERE kind = "
            "'bus' AND city IN ('boston', 'austin') GROUP BY city");
}

TEST(ExecutorTest, SampledValueScaling) {
  EXPECT_DOUBLE_EQ(
      Executor::ScaleSampledValue(AggregateFunction::kCount, 10.0, 0.1),
      100.0);
  EXPECT_DOUBLE_EQ(
      Executor::ScaleSampledValue(AggregateFunction::kSum, 10.0, 0.5),
      20.0);
  EXPECT_DOUBLE_EQ(
      Executor::ScaleSampledValue(AggregateFunction::kAvg, 10.0, 0.1),
      10.0);
  EXPECT_DOUBLE_EQ(
      Executor::ScaleSampledValue(AggregateFunction::kMax, 10.0, 0.1),
      10.0);
}

// ---------------------------------------------------------------------
// SQL parser.
// ---------------------------------------------------------------------

TEST(SqlParserTest, ParsesSimpleCount) {
  auto query = ParseSql("SELECT COUNT(*) FROM trips");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->function, AggregateFunction::kCount);
  EXPECT_TRUE(query->aggregate_column.empty());
  EXPECT_EQ(query->table, "trips");
  EXPECT_TRUE(query->predicates.empty());
}

TEST(SqlParserTest, ParsesFullQuery) {
  auto query = ParseSql(
      "select avg(delay) from trips where city = 'boston' and kind = "
      "'bus'");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->function, AggregateFunction::kAvg);
  EXPECT_EQ(query->aggregate_column, "delay");
  ASSERT_EQ(query->predicates.size(), 2u);
  EXPECT_EQ(query->predicates[0].column, "city");
  EXPECT_EQ(query->predicates[0].values[0].AsString(), "boston");
}

TEST(SqlParserTest, ParsesInList) {
  auto query = ParseSql(
      "SELECT SUM(delay) FROM trips WHERE city IN ('a', 'b', 'c')");
  ASSERT_TRUE(query.ok());
  ASSERT_EQ(query->predicates.size(), 1u);
  EXPECT_EQ(query->predicates[0].op, PredicateOp::kIn);
  EXPECT_EQ(query->predicates[0].values.size(), 3u);
}

TEST(SqlParserTest, ParsesNumericLiterals) {
  auto query =
      ParseSql("SELECT COUNT(*) FROM t WHERE x = 5 AND y = 2.5");
  ASSERT_TRUE(query.ok());
  EXPECT_TRUE(query->predicates[0].values[0].is_int64());
  EXPECT_TRUE(query->predicates[1].values[0].is_double());
}

TEST(SqlParserTest, QuoteEscaping) {
  auto query = ParseSql("SELECT COUNT(*) FROM t WHERE x = 'o''brien'");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->predicates[0].values[0].AsString(), "o'brien");
}

TEST(SqlParserTest, RoundTripsThroughToSql) {
  const char* queries[] = {
      "SELECT COUNT(*) FROM trips",
      "SELECT AVG(delay) FROM trips WHERE city = 'boston'",
      "SELECT MAX(delay) FROM trips WHERE city IN ('a', 'b') AND kind = "
      "'bus'",
  };
  for (const char* sql : queries) {
    auto query = ParseSql(sql);
    ASSERT_TRUE(query.ok()) << sql;
    auto reparsed = ParseSql(query->ToSql());
    ASSERT_TRUE(reparsed.ok()) << query->ToSql();
    EXPECT_EQ(query->CanonicalKey(), reparsed->CanonicalKey());
  }
}

TEST(SqlParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseSql("").ok());
  EXPECT_FALSE(ParseSql("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT BOGUS(x) FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT SUM(*) FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(*) FROM t WHERE").ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(*) FROM t WHERE a = 'x' extra").ok());
  EXPECT_FALSE(
      ParseSql("SELECT COUNT(*) FROM t WHERE a = 'unterminated").ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(*) FROM t WHERE a > 3").ok());
}

// ---------------------------------------------------------------------
// Cost estimator.
// ---------------------------------------------------------------------

TEST(CostEstimatorTest, CostGrowsWithDataSize) {
  Rng rng(1);
  auto small = workload::Make311Table(1000, &rng);
  auto large = workload::Make311Table(20000, &rng);
  CostEstimator estimator;
  AggregateQuery query;
  query.function = AggregateFunction::kCount;
  query.table = "nyc311";
  query.predicates = {Predicate::Equals("borough", Value("brooklyn"))};
  EXPECT_LT(estimator.Estimate(*small, query)->total_cost,
            estimator.Estimate(*large, query)->total_cost);
}

TEST(CostEstimatorTest, SelectivityMultiplies) {
  Rng rng(1);
  auto table = workload::Make311Table(5000, &rng);
  CostEstimator estimator;
  AggregateQuery one;
  one.table = "nyc311";
  one.predicates = {Predicate::Equals("borough", Value("brooklyn"))};
  AggregateQuery two = one;
  two.predicates.push_back(Predicate::Equals("status", Value("open")));
  EXPECT_LT(estimator.Estimate(*table, two)->selectivity,
            estimator.Estimate(*table, one)->selectivity);
}

TEST(CostEstimatorTest, MergedCheaperThanManySeparate) {
  Rng rng(1);
  auto table = workload::Make311Table(20000, &rng);
  CostEstimator estimator;
  GroupByQuery grouped;
  grouped.table = "nyc311";
  grouped.group_column = "borough";
  grouped.group_values = table->StringValues("borough");
  grouped.aggregates = {{AggregateFunction::kCount, ""}};
  const double merged_cost =
      estimator.EstimateGrouped(*table, grouped)->total_cost;
  AggregateQuery single;
  single.table = "nyc311";
  single.function = AggregateFunction::kCount;
  double separate_cost = 0.0;
  for (const std::string& value : grouped.group_values) {
    single.predicates = {Predicate::Equals("borough", Value(value))};
    separate_cost += estimator.Estimate(*table, single)->total_cost;
  }
  EXPECT_LT(merged_cost, separate_cost / 2.0);
}

TEST(CostEstimatorTest, ErrorsOnUnknownColumn) {
  auto table = MakeCityTable();
  CostEstimator estimator;
  AggregateQuery query;
  query.table = "trips";
  query.predicates = {Predicate::Equals("nope", Value("x"))};
  EXPECT_FALSE(estimator.Estimate(*table, query).ok());
}

// ---------------------------------------------------------------------
// Workload generators.
// ---------------------------------------------------------------------

TEST(WorkloadTest, AllDatasetsBuild) {
  for (const std::string& name : workload::DatasetNames()) {
    auto table = workload::MakeDataset(name, 500, 42);
    ASSERT_TRUE(table.ok()) << name;
    EXPECT_EQ((*table)->num_rows(), 500u);
    EXPECT_FALSE((*table)->ColumnNamesOfType(ValueType::kString).empty());
  }
  EXPECT_FALSE(workload::MakeDataset("bogus", 10, 1).ok());
}

TEST(WorkloadTest, DatasetsAreSeedDeterministic) {
  auto a = *workload::MakeDataset("flights", 200, 7);
  auto b = *workload::MakeDataset("flights", 200, 7);
  for (size_t c = 0; c < a->num_columns(); ++c) {
    for (size_t r = 0; r < a->num_rows(); r += 17) {
      EXPECT_TRUE(a->ValueAt(r, c) == b->ValueAt(r, c));
    }
  }
}

TEST(WorkloadTest, VocabularyContainsSchemaAndValues) {
  auto table = *workload::MakeDataset("nyc311", 1000, 3);
  const std::vector<std::string> vocabulary =
      workload::BuildVocabulary(*table);
  auto contains = [&](const std::string& word) {
    return std::find(vocabulary.begin(), vocabulary.end(), word) !=
           vocabulary.end();
  };
  EXPECT_TRUE(contains("borough"));
  EXPECT_TRUE(contains("open_hours"));
  EXPECT_TRUE(contains("brooklyn"));
}

TEST(WorkloadTest, RandomQueryIsExecutable) {
  Rng rng(21);
  auto table = *workload::MakeDataset("dob", 2000, 5);
  for (int i = 0; i < 50; ++i) {
    auto query = workload::RandomQuery(*table, &rng);
    ASSERT_TRUE(query.ok());
    EXPECT_GE(query->predicates.size(), 1u);
    EXPECT_LE(query->predicates.size(), 5u);
    EXPECT_TRUE(Executor::Execute(*table, *query).ok()) << query->ToSql();
  }
}

TEST(WorkloadTest, RandomQueryRespectsPredicateBounds) {
  Rng rng(22);
  auto table = *workload::MakeDataset("flights", 500, 5);
  workload::QueryGeneratorOptions options;
  options.min_predicates = 2;
  options.max_predicates = 3;
  for (int i = 0; i < 30; ++i) {
    auto query = workload::RandomQuery(*table, &rng, options);
    ASSERT_TRUE(query.ok());
    EXPECT_GE(query->predicates.size(), 2u);
    EXPECT_LE(query->predicates.size(), 3u);
  }
}

// ---------------------------------------------------------------------
// Vectorized kernels (src/db/vec/): direct property tests of the
// predicate, aggregate, and grouping kernels against straight-line
// reference loops, plus executor-level checks of the paths the random
// workloads rarely pin (IN lists longer than a batch, signed zero).
// ---------------------------------------------------------------------

/// Reference selection: offsets of rows satisfying `pred`, in order.
template <typename T, typename Pred>
std::vector<uint32_t> ReferenceSelect(const std::vector<T>& data,
                                      Pred pred) {
  std::vector<uint32_t> sel;
  for (size_t i = 0; i < data.size(); ++i) {
    if (pred(data[i])) sel.push_back(static_cast<uint32_t>(i));
  }
  return sel;
}

TEST(VecKernelTest, FilterKernelsMatchReferenceLoop) {
  Rng rng(31);
  for (int round = 0; round < 50; ++round) {
    const size_t n = static_cast<size_t>(rng.UniformInRange(0, 300));
    std::vector<int64_t> ints;
    std::vector<double> doubles;
    std::vector<uint32_t> codes;
    for (size_t i = 0; i < n; ++i) {
      ints.push_back(rng.UniformInRange(-5, 5));
      doubles.push_back(
          static_cast<double>(rng.UniformInRange(-5, 5)) * 0.5);
      codes.push_back(static_cast<uint32_t>(rng.UniformInRange(0, 7)));
    }
    std::vector<uint32_t> sel(std::max<size_t>(n, 1));

    const int64_t int_key = rng.UniformInRange(-6, 6);
    EXPECT_EQ(ReferenceSelect(ints, [&](int64_t v) { return v == int_key; }),
              std::vector<uint32_t>(
                  sel.begin(),
                  sel.begin() + vec::FilterEqI64(ints.data(), n, int_key,
                                                 sel.data())));

    const double double_key =
        static_cast<double>(rng.UniformInRange(-6, 6)) * 0.5;
    EXPECT_EQ(
        ReferenceSelect(doubles, [&](double v) { return v == double_key; }),
        std::vector<uint32_t>(
            sel.begin(), sel.begin() + vec::FilterEqF64(doubles.data(), n,
                                                        double_key,
                                                        sel.data())));

    const uint32_t code_key =
        static_cast<uint32_t>(rng.UniformInRange(0, 8));
    EXPECT_EQ(
        ReferenceSelect(codes, [&](uint32_t v) { return v == code_key; }),
        std::vector<uint32_t>(
            sel.begin(), sel.begin() + vec::FilterEqU32(codes.data(), n,
                                                        code_key,
                                                        sel.data())));

    const std::vector<int64_t> in_keys = {int_key, int_key + 2, -100};
    EXPECT_EQ(ReferenceSelect(ints,
                              [&](int64_t v) {
                                return v == in_keys[0] || v == in_keys[1] ||
                                       v == in_keys[2];
                              }),
              std::vector<uint32_t>(
                  sel.begin(),
                  sel.begin() + vec::FilterInI64(ints.data(), n,
                                                 in_keys.data(),
                                                 in_keys.size(),
                                                 sel.data())));

    uint8_t mask[9] = {0};
    mask[code_key] = 1;
    mask[(code_key + 3) % 9] = 1;
    EXPECT_EQ(
        ReferenceSelect(codes, [&](uint32_t v) { return mask[v] != 0; }),
        std::vector<uint32_t>(
            sel.begin(), sel.begin() + vec::FilterMaskU32(codes.data(), n,
                                                          mask,
                                                          sel.data())));
  }
}

TEST(VecKernelTest, RefineKernelsCompactExistingSelections) {
  Rng rng(32);
  for (int round = 0; round < 50; ++round) {
    const size_t n = static_cast<size_t>(rng.UniformInRange(1, 300));
    std::vector<double> data;
    std::vector<uint32_t> sel_in;
    for (size_t i = 0; i < n; ++i) {
      data.push_back(static_cast<double>(rng.UniformInRange(-4, 4)));
      if (rng.Bernoulli(0.4)) sel_in.push_back(static_cast<uint32_t>(i));
    }
    const double key = static_cast<double>(rng.UniformInRange(-4, 4));
    std::vector<uint32_t> sel_out(n);
    const size_t count = vec::RefineEqF64(data.data(), sel_in.data(),
                                          sel_in.size(), key,
                                          sel_out.data());
    std::vector<uint32_t> reference;
    for (const uint32_t offset : sel_in) {
      if (data[offset] == key) reference.push_back(offset);
    }
    EXPECT_EQ(reference, std::vector<uint32_t>(sel_out.begin(),
                                               sel_out.begin() + count));
  }
  // An empty input selection stays empty and never touches the output.
  const double data[] = {1.0, 2.0};
  uint32_t out[2] = {77, 77};
  EXPECT_EQ(0u, vec::RefineEqF64(data, nullptr, 0, 1.0, out));
  EXPECT_EQ(77u, out[0]);
}

TEST(VecKernelTest, DoubleEqualityMatchesSignedZeroNeverNaN) {
  // IEEE ==: -0.0 equals 0.0 in either direction; NaN equals nothing —
  // exactly the scalar executor's `v == accepted`. Exponent-extreme
  // literals compare exactly, not through any rounding.
  const std::vector<double> data = {0.0,    -0.0,   1e300, -1e300,
                                    5e-324, 2.5,    std::nan(""),
                                    1e300,  2.5e-308};
  uint32_t sel[16];
  EXPECT_EQ(std::vector<uint32_t>({0, 1}),
            std::vector<uint32_t>(
                sel, sel + vec::FilterEqF64(data.data(), data.size(), 0.0,
                                            sel)));
  EXPECT_EQ(std::vector<uint32_t>({0, 1}),
            std::vector<uint32_t>(
                sel, sel + vec::FilterEqF64(data.data(), data.size(), -0.0,
                                            sel)));
  EXPECT_EQ(std::vector<uint32_t>({2, 7}),
            std::vector<uint32_t>(
                sel, sel + vec::FilterEqF64(data.data(), data.size(),
                                            1e300, sel)));
  // A NaN key matches nothing, and the NaN element matches no key.
  EXPECT_EQ(0u, vec::FilterEqF64(data.data(), data.size(), std::nan(""),
                                 sel));
  const double keys[] = {std::nan(""), 5e-324};
  EXPECT_EQ(std::vector<uint32_t>({4}),
            std::vector<uint32_t>(
                sel, sel + vec::FilterInF64(data.data(), data.size(), keys,
                                            2, sel)));
}

TEST(VecKernelTest, AggregateKernelsMatchScalarFoldAllFiveFunctions) {
  // The dense (all-selected) and gather (identity selection) shapes must
  // both reproduce the scalar executor's sequential fold bitwise, for
  // the state behind all five aggregate functions (COUNT needs no
  // kernel; SUM/AVG share the sum state; MIN/MAX their extrema).
  Rng rng(33);
  for (int round = 0; round < 30; ++round) {
    const size_t n = static_cast<size_t>(rng.UniformInRange(0, 200));
    std::vector<double> doubles;
    std::vector<int64_t> ints;
    std::vector<uint32_t> identity;
    for (size_t i = 0; i < n; ++i) {
      doubles.push_back(rng.UniformDouble(-1e3, 1e3));
      ints.push_back(rng.UniformInRange(-1000, 1000));
      identity.push_back(static_cast<uint32_t>(i));
    }
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    for (const double v : doubles) {
      sum += v;
      min = std::min(min, v);
      max = std::max(max, v);
    }
    EXPECT_EQ(sum, vec::SumDenseF64(doubles.data(), n, 0.0));
    EXPECT_EQ(sum, vec::SumGatherF64(doubles.data(), identity.data(), n,
                                     0.0));
    EXPECT_EQ(min, vec::MinDenseF64(
                       doubles.data(), n,
                       std::numeric_limits<double>::infinity()));
    EXPECT_EQ(min, vec::MinGatherF64(
                       doubles.data(), identity.data(), n,
                       std::numeric_limits<double>::infinity()));
    EXPECT_EQ(max, vec::MaxDenseF64(
                       doubles.data(), n,
                       -std::numeric_limits<double>::infinity()));
    EXPECT_EQ(max, vec::MaxGatherF64(
                       doubles.data(), identity.data(), n,
                       -std::numeric_limits<double>::infinity()));

    double int_sum = 0.0;
    for (const int64_t v : ints) int_sum += static_cast<double>(v);
    EXPECT_EQ(int_sum, vec::SumDenseI64(ints.data(), n, 0.0));
    EXPECT_EQ(int_sum, vec::SumGatherI64(ints.data(), identity.data(), n,
                                         0.0));
  }
}

TEST(VecKernelTest, GroupLookupFirstOccurrenceWinsAndMapsCompact) {
  Column column("g", ValueType::kString);
  for (const char* v : {"a", "b", "c", "b", "a"}) {
    ASSERT_TRUE(column.Append(Value(v)).ok());
  }
  // Duplicate group value: the first occurrence claims the code, the
  // scalar path's emplace semantics.
  const std::vector<uint32_t> lookup =
      vec::BuildGroupLookup(column, {"b", "absent", "b", "a"});
  ASSERT_EQ(3u, lookup.size());
  EXPECT_EQ(3u, lookup[column.CodeFor("a")]);
  EXPECT_EQ(0u, lookup[column.CodeFor("b")]);
  EXPECT_EQ(vec::kNoGroup, lookup[column.CodeFor("c")]);

  uint32_t sel_out[8];
  uint32_t groups[8];
  // Dense: rows are a b c b a -> groups 3 0 _ 0 3.
  EXPECT_EQ(4u, vec::MapGroupsDense(column.codes_raw(), column.size(),
                                    lookup.data(), sel_out, groups));
  EXPECT_EQ(std::vector<uint32_t>({0, 1, 3, 4}),
            std::vector<uint32_t>(sel_out, sel_out + 4));
  EXPECT_EQ(std::vector<uint32_t>({3, 0, 0, 3}),
            std::vector<uint32_t>(groups, groups + 4));
  // Sparse over a prior selection {1, 2, 4}.
  const uint32_t sel_in[] = {1, 2, 4};
  EXPECT_EQ(2u, vec::MapGroups(column.codes_raw(), sel_in, 3,
                               lookup.data(), sel_out, groups));
  EXPECT_EQ(1u, sel_out[0]);
  EXPECT_EQ(4u, sel_out[1]);
  EXPECT_EQ(0u, groups[0]);
  EXPECT_EQ(3u, groups[1]);
  // Empty selection maps to nothing.
  EXPECT_EQ(0u, vec::MapGroups(column.codes_raw(), nullptr, 0,
                               lookup.data(), sel_out, groups));
}

TEST(VecKernelTest, AcceptMaskIgnoresInvalidAndOutOfRangeCodes) {
  Column column("s", ValueType::kString);
  for (const char* v : {"x", "y", "z"}) {
    ASSERT_TRUE(column.Append(Value(v)).ok());
  }
  const std::vector<uint8_t> mask =
      column.AcceptMask({0, 2, 99, kInvalidCode});
  EXPECT_EQ(std::vector<uint8_t>({1, 0, 1}), mask);
}

TEST(ExecutorTest, VectorizedInListLargerThanOneBatch) {
  // An IN list longer than vec::kBatchSize (2048): the int kernel loops
  // the whole key list per row and the string path goes through a
  // dictionary accept mask; both must agree with the scalar oracle.
  auto table = *Table::Create("t", {{"s", ValueType::kString},
                                    {"v", ValueType::kInt64}});
  constexpr int64_t kRows = 5000;
  for (int64_t r = 0; r < kRows; ++r) {
    ASSERT_TRUE(table
                    ->AppendRow({Value("s" + std::to_string(r % 3000)),
                                 Value(r % 3000)})
                    .ok());
  }
  std::vector<Value> int_list;
  std::vector<Value> string_list;
  for (int64_t k = 0; k < 2500; ++k) {
    int_list.emplace_back(k);
    string_list.emplace_back("s" + std::to_string(k));
  }
  ExecutorOptions scalar;
  scalar.vectorize = false;
  for (const Predicate& predicate :
       {Predicate::In("v", int_list), Predicate::In("s", string_list)}) {
    AggregateQuery query;
    query.table = "t";
    query.function = AggregateFunction::kSum;
    query.aggregate_column = "v";
    query.predicates = {predicate};
    const auto vec_result = Executor::Execute(*table, query);
    const auto scalar_result = Executor::Execute(*table, query, scalar);
    ASSERT_TRUE(vec_result.ok() && scalar_result.ok());
    // Rows 0..2499 and 3000..4999 (values 0..1999) match: 4500 rows.
    EXPECT_EQ(4500u, vec_result->rows_matched);
    EXPECT_EQ(scalar_result->rows_matched, vec_result->rows_matched);
    EXPECT_EQ(scalar_result->value, vec_result->value);
  }
}

TEST(ExecutorTest, VectorizedSignedZeroPredicateMatchesBothZeros) {
  auto table = *Table::Create("t", {{"d", ValueType::kDouble}});
  ASSERT_TRUE(table->AppendRow({Value(0.0)}).ok());
  ASSERT_TRUE(table->AppendRow({Value(-0.0)}).ok());
  ASSERT_TRUE(table->AppendRow({Value(1.0)}).ok());
  AggregateQuery query;
  query.table = "t";
  query.function = AggregateFunction::kCount;
  query.predicates = {Predicate::Equals("d", Value(-0.0))};
  ExecutorOptions scalar;
  scalar.vectorize = false;
  const auto vec_result = Executor::Execute(*table, query);
  const auto scalar_result = Executor::Execute(*table, query, scalar);
  ASSERT_TRUE(vec_result.ok() && scalar_result.ok());
  EXPECT_EQ(2u, vec_result->rows_matched);
  EXPECT_EQ(scalar_result->rows_matched, vec_result->rows_matched);
}

}  // namespace
}  // namespace muve::db

#include "db/csv.h"

namespace muve::db {
namespace {

TEST(CsvTest, RoundTripPreservesData) {
  auto table = MakeCityTable();
  const std::string path = ::testing::TempDir() + "/muve_trips.csv";
  ASSERT_TRUE(WriteCsv(*table, path).ok());
  auto loaded = ReadCsv("trips", path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ((*loaded)->num_rows(), table->num_rows());
  ASSERT_EQ((*loaded)->num_columns(), table->num_columns());
  for (size_t c = 0; c < table->num_columns(); ++c) {
    EXPECT_EQ((*loaded)->spec(c).name, table->spec(c).name);
    EXPECT_EQ((*loaded)->spec(c).type, table->spec(c).type);
    for (size_t r = 0; r < table->num_rows(); ++r) {
      EXPECT_TRUE((*loaded)->ValueAt(r, c) == table->ValueAt(r, c))
          << "col " << c << " row " << r;
    }
  }
}

TEST(CsvTest, QuotedFieldsSurvive) {
  auto table = *Table::Create("q", {{"text", ValueType::kString}});
  ASSERT_TRUE(table->AppendRow({Value("plain")}).ok());
  ASSERT_TRUE(table->AppendRow({Value("has,comma")}).ok());
  ASSERT_TRUE(table->AppendRow({Value("has \"quote\"")}).ok());
  const std::string path = ::testing::TempDir() + "/muve_quoted.csv";
  ASSERT_TRUE(WriteCsv(*table, path).ok());
  auto loaded = ReadCsv("q", path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->ValueAt(1, 0).AsString(), "has,comma");
  EXPECT_EQ((*loaded)->ValueAt(2, 0).AsString(), "has \"quote\"");
}

TEST(CsvTest, TypeInference) {
  const std::string path = ::testing::TempDir() + "/muve_types.csv";
  {
    std::ofstream out(path);
    out << "name,count,ratio\nalpha,3,1.5\nbeta,-7,2\n";
  }
  auto loaded = ReadCsv("t", path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->spec(0).type, ValueType::kString);
  EXPECT_EQ((*loaded)->spec(1).type, ValueType::kInt64);
  EXPECT_EQ((*loaded)->spec(2).type, ValueType::kDouble);
  EXPECT_EQ((*loaded)->ValueAt(1, 1).AsInt64(), -7);
}

TEST(CsvTest, Errors) {
  EXPECT_FALSE(ReadCsv("t", "/nonexistent/file.csv").ok());
  const std::string path = ::testing::TempDir() + "/muve_bad.csv";
  {
    std::ofstream out(path);
    out << "a,b\n1,2\n3\n";  // Ragged row.
  }
  EXPECT_FALSE(ReadCsv("t", path).ok());
  {
    // Mixed numeric/text values: all-rows inference degrades the column
    // to STRING rather than failing.
    std::ofstream out(path);
    out << "a\n1\nnot_a_number\n";
  }
  auto mixed = ReadCsv("t", path);
  ASSERT_TRUE(mixed.ok());
  EXPECT_EQ((*mixed)->spec(0).type, ValueType::kString);
}

// ---------------------------------------------------------------------
// LSM storage: memtable flushes, compaction, snapshots.
// ---------------------------------------------------------------------

std::shared_ptr<Table> MakeLsmTable(size_t rows, TableOptions options) {
  auto table = *Table::Create("lsmt", {{"city", ValueType::kString},
                                       {"delay", ValueType::kInt64},
                                       {"dist", ValueType::kDouble}},
                              options);
  static const char* kCities[] = {"boston", "austin", "newark", "quincy"};
  for (size_t r = 0; r < rows; ++r) {
    EXPECT_TRUE(table
                    ->AppendRow({Value(kCities[r % 4]),
                                 Value(static_cast<int64_t>(r) - 20),
                                 Value(static_cast<double>(r) * 0.5 - 10.0)})
                    .ok());
  }
  return table;
}

TEST(LsmTableTest, FlushAtThresholdSealsRuns) {
  TableOptions options;
  options.flush_threshold = 4;
  auto table = MakeLsmTable(10, options);
  EXPECT_EQ(table->num_runs(), 2u);
  EXPECT_EQ(table->memtable_rows(), 2u);
  EXPECT_EQ(table->num_rows(), 10u);
  EXPECT_EQ(table->version(), 10u);

  // Explicit flush seals the tail; flushing an empty memtable is a noop.
  table->Flush();
  EXPECT_EQ(table->num_runs(), 3u);
  EXPECT_EQ(table->memtable_rows(), 0u);
  table->Flush();
  EXPECT_EQ(table->num_runs(), 3u);
  // Reorganization does not change contents, so no version bump.
  EXPECT_EQ(table->version(), 10u);
}

TEST(LsmTableTest, ReadsSpanRunAndMemtableBoundaries) {
  TableOptions options;
  options.flush_threshold = 4;
  auto table = MakeLsmTable(11, options);
  auto plain = MakeLsmTable(11, TableOptions{});  // Pure memtable.
  ASSERT_EQ(table->num_rows(), plain->num_rows());
  for (size_t r = 0; r < table->num_rows(); ++r) {
    for (size_t c = 0; c < table->num_columns(); ++c) {
      EXPECT_TRUE(table->ValueAt(r, c) == plain->ValueAt(r, c))
          << "row " << r << " col " << c;
    }
  }
}

TEST(LsmCompactionTest, PlanMergesSmallestAdjacentPair) {
  lsm::CompactionPolicy policy;
  policy.target_runs = 2;
  // Sizes 8, 1, 1, 8: the plan must merge the small middle pair first,
  // then fold the result into a neighbor to reach the target.
  const auto windows = lsm::PlanCompaction({8, 1, 1, 8}, policy);
  ASSERT_FALSE(windows.empty());
  size_t merged_away = 0;
  for (const auto& window : windows) {
    ASSERT_LT(window.begin, window.end);
    ASSERT_GE(window.end - window.begin, 2u);
    merged_away += (window.end - window.begin) - 1;
  }
  EXPECT_EQ(4u - merged_away, policy.target_runs);
}

TEST(LsmCompactionTest, PlanRespectsMergedRowCap) {
  lsm::CompactionPolicy policy;
  policy.target_runs = 1;
  policy.max_merged_rows = 10;
  const auto windows = lsm::PlanCompaction({8, 8, 8}, policy);
  // No pair fits under the cap: nothing to merge.
  EXPECT_TRUE(windows.empty());
}

TEST(LsmCompactionTest, CompactRetiresRunsIntoTheFeed) {
  TableOptions options;
  options.flush_threshold = 4;
  options.target_runs = 2;
  auto table = MakeLsmTable(20, options);  // 5 runs.
  ASSERT_EQ(table->num_runs(), 5u);
  EXPECT_EQ(table->retired_seq(), 0u);

  table->Compact();
  EXPECT_EQ(table->num_runs(), 2u);
  // 5 runs folded to 2: at least 3 retired (more if staged rounds
  // rewrote intermediates).
  std::vector<uint64_t> retired;
  ASSERT_TRUE(table->RetiredRunsSince(0, &retired));
  EXPECT_EQ(retired.size(), table->retired_seq());
  EXPECT_GE(retired.size(), 3u);
  // The feed is incremental: nothing new after the cursor.
  std::vector<uint64_t> tail;
  ASSERT_TRUE(table->RetiredRunsSince(table->retired_seq(), &tail));
  EXPECT_TRUE(tail.empty());

  // Contents are untouched by compaction.
  EXPECT_EQ(table->num_rows(), 20u);
  EXPECT_EQ(table->ValueAt(0, 0).AsString(), "boston");
  EXPECT_EQ(table->ValueAt(19, 1).AsInt64(), -1);
}

TEST(LsmCompactionTest, SnapshotPinsRunsAcrossCompaction) {
  TableOptions options;
  options.flush_threshold = 4;
  options.target_runs = 2;
  auto table = MakeLsmTable(20, options);
  const TableSnapshot snapshot = table->Snapshot();
  ASSERT_EQ(snapshot.runs().size(), 5u);

  table->Compact();
  for (size_t r = 0; r < 24; ++r) {
    ASSERT_TRUE(table
                    ->AppendRow({Value("later"), Value(int64_t{999}),
                                 Value(0.0)})
                    .ok());
  }

  // The snapshot still reads the pre-compaction version byte-for-byte.
  EXPECT_EQ(snapshot.num_rows(), 20u);
  EXPECT_EQ(snapshot.runs().size(), 5u);
  EXPECT_EQ(snapshot.ValueAt(0, 0).AsString(), "boston");
  EXPECT_EQ(snapshot.ValueAt(19, 1).AsInt64(), -1);
  EXPECT_EQ(table->num_rows(), 44u);
}

TEST(LsmTableTest, BackgroundCompactionKicksInPastMaxRuns) {
  ThreadPool pool(2);
  TableOptions options;
  options.flush_threshold = 4;
  options.max_runs = 3;
  options.target_runs = 2;
  auto table = MakeLsmTable(0, options);
  table->EnableBackgroundCompaction(&pool);
  for (size_t r = 0; r < 64; ++r) {
    ASSERT_TRUE(table
                    ->AppendRow({Value("c"), Value(static_cast<int64_t>(r)),
                                 Value(1.0)})
                    .ok());
  }
  // Quiesce: synchronous Compact serializes with any in-flight round.
  table->Compact();
  EXPECT_LE(table->num_runs(), 3u);
  EXPECT_EQ(table->num_rows(), 64u);
  int64_t sum = 0;
  for (size_t r = 0; r < 64; ++r) sum += table->ValueAt(r, 1).AsInt64();
  EXPECT_EQ(sum, 63 * 64 / 2);
}

TEST(SnapshotTest, CloneReproducesLayoutAndContents) {
  TableOptions options;
  options.flush_threshold = 4;
  auto table = MakeLsmTable(10, options);
  const TableSnapshot snapshot = table->Snapshot();
  auto clone = snapshot.Clone("lsmt_clone");
  ASSERT_TRUE(clone.ok());
  EXPECT_EQ((*clone)->num_rows(), 10u);
  EXPECT_EQ((*clone)->num_runs(), 2u);
  EXPECT_EQ((*clone)->memtable_rows(), 2u);
  const TableSnapshot clone_snapshot = (*clone)->Snapshot();
  for (size_t i = 0; i < snapshot.runs().size(); ++i) {
    EXPECT_EQ(snapshot.runs()[i]->num_rows(),
              clone_snapshot.runs()[i]->num_rows());
  }
  for (size_t r = 0; r < 10; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_TRUE(snapshot.ValueAt(r, c) == clone_snapshot.ValueAt(r, c));
    }
  }
  // The clone is independent: appends to it leave the source alone.
  ASSERT_TRUE(
      (*clone)->AppendRow({Value("x"), Value(int64_t{1}), Value(2.0)}).ok());
  EXPECT_EQ((*clone)->num_rows(), 11u);
  EXPECT_EQ(table->num_rows(), 10u);
}

TEST(SnapshotTest, EmptySnapshotCloneFails) {
  TableSnapshot empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_FALSE(empty.Clone("nope").ok());
}

// ---------------------------------------------------------------------
// Snapshot-oracle differential suite: writes race reads.
//
// A writer thread appends (with flushes and background compaction
// racing along) while the main thread repeatedly snapshots the table,
// deep-copies the snapshot into a frozen oracle (TableSnapshot::Clone
// preserves run boundaries and per-run dictionaries, so scans over the
// clone are bit-for-bit comparable), and requires every read through
// the snapshot — raw ValueAt and aggregate/grouped scans at 1/2/8
// threads, vectorized and scalar, cached cold/warm and uncached — to be
// byte-identical to the same read over the oracle.
//
// 210 configurations by default: 5 seeds x 7 memtable-boundary row
// counts x 3 thread counts x vectorize on/off. MUVE_ORACLE_SEEDS
// scales the seed dimension (the `slow` CTest variant raises it).
// ---------------------------------------------------------------------

int OracleSeedCount() {
  const char* value = std::getenv("MUVE_ORACLE_SEEDS");
  if (value != nullptr) {
    const int parsed = std::atoi(value);
    if (parsed > 0) return parsed;
  }
  return 5;
}

class SnapshotOracleTest : public ::testing::Test {
 protected:
  ThreadPool* PoolFor(size_t threads) {
    if (threads < 2) return nullptr;
    std::unique_ptr<ThreadPool>& slot = pools_[threads];
    if (slot == nullptr) slot = std::make_unique<ThreadPool>(threads);
    return slot.get();
  }

  std::map<size_t, std::unique_ptr<ThreadPool>> pools_;
};

void ExpectResultsBitwiseEqual(const AggregateResult& snap,
                               const AggregateResult& oracle,
                               const std::string& context) {
  EXPECT_EQ(snap.value, oracle.value) << context;
  EXPECT_EQ(snap.rows_matched, oracle.rows_matched) << context;
  EXPECT_EQ(snap.empty_input, oracle.empty_input) << context;
}

TEST_F(SnapshotOracleTest, WritesRaceReadsDifferentialOracle) {
  constexpr size_t kFlush = 64;
  constexpr size_t kRowCounts[] = {kFlush - 1,     kFlush,
                                   kFlush + 1,     2 * kFlush - 1,
                                   2 * kFlush,     2 * kFlush + 1,
                                   5 * kFlush / 2};
  constexpr size_t kThreadCounts[] = {1, 2, 8};
  static const char* kCities[] = {"boston", "austin", "newark", "quincy"};
  ThreadPool compaction_pool(2);
  const int seeds = OracleSeedCount();

  for (int seed = 0; seed < seeds; ++seed) {
    for (const size_t initial_rows : kRowCounts) {
      for (const size_t threads : kThreadCounts) {
        for (const bool vectorize : {false, true}) {
          Rng rng(0x0eac1eull + static_cast<uint64_t>(seed) * 131071 +
                  initial_rows * 257 + threads * 17 + (vectorize ? 1 : 0));
          TableOptions topt;
          topt.flush_threshold = kFlush;
          topt.max_runs = 3;  // Frequent background compaction churn.
          topt.target_runs = 2;
          auto table = *Table::Create(
              "oracle_src", {{"city", ValueType::kString},
                             {"delay", ValueType::kInt64},
                             {"dist", ValueType::kDouble}},
              topt);
          const auto append_row = [&table](size_t r) {
            return table->AppendRow(
                {Value(kCities[r % 4]),
                 Value(static_cast<int64_t>(r % 97) - 48),
                 Value(static_cast<double>(r % 31) * 0.5 - 7.0)});
          };
          for (size_t r = 0; r < initial_rows; ++r) {
            ASSERT_TRUE(append_row(r).ok());
          }
          table->EnableBackgroundCompaction(&compaction_pool);

          // The racing writer: appends (crossing flush thresholds and
          // triggering compactions) until the readers are done.
          std::atomic<bool> stop{false};
          std::atomic<bool> writer_ok{true};
          std::thread writer([&] {
            size_t r = initial_rows;
            // Hard cap bounds memory if the reader side stalls.
            while (!stop.load(std::memory_order_relaxed) &&
                   r < initial_rows + 8192) {
              if (!append_row(r++).ok()) {
                writer_ok.store(false, std::memory_order_relaxed);
                return;
              }
            }
          });

          db::ExecutorOptions options;
          options.vectorize = vectorize;
          options.pool = PoolFor(threads);
          options.min_parallel_rows = 1;
          options.parallel_grain = 37;  // Odd grain: awkward slice cuts.

          for (int round = 0; round < 2; ++round) {
            const TableSnapshot snapshot = table->Snapshot();
            auto oracle = snapshot.Clone("oracle_frozen");
            ASSERT_TRUE(oracle.ok());
            const TableSnapshot frozen = (*oracle)->Snapshot();
            const std::string context =
                "seed " + std::to_string(seed) + " rows " +
                std::to_string(initial_rows) + " threads " +
                std::to_string(threads) +
                (vectorize ? " vec" : " scalar") + " round " +
                std::to_string(round);

            // Raw reads: layout and bytes must match the frozen copy.
            ASSERT_EQ(snapshot.num_rows(), frozen.num_rows()) << context;
            ASSERT_EQ(snapshot.runs().size(), frozen.runs().size())
                << context;
            const size_t probe_rows[] = {0, kFlush - 1, kFlush,
                                         snapshot.num_rows() / 2,
                                         snapshot.num_rows() - 1};
            for (const size_t r : probe_rows) {
              if (r >= snapshot.num_rows()) continue;
              for (size_t c = 0; c < 3; ++c) {
                EXPECT_TRUE(snapshot.ValueAt(r, c) == frozen.ValueAt(r, c))
                    << context << " row " << r << " col " << c;
              }
            }

            // Scans: uncached, then cached cold and warm, each
            // byte-identical to the oracle under the same options.
            cache::QueryCache qcache(64);
            db::ExecutorOptions cached = options;
            cached.cache = &qcache;
            for (int q = 0; q < 2; ++q) {
              const AggregateQuery query =
                  testing::RandomVecAggregateQuery(**oracle, &rng);
              const auto want = Executor::Execute(frozen, query, options);
              ASSERT_TRUE(want.ok()) << context;
              const auto uncached_got =
                  Executor::Execute(snapshot, query, options);
              const auto cold = Executor::Execute(snapshot, query, cached);
              const auto warm = Executor::Execute(snapshot, query, cached);
              ASSERT_TRUE(uncached_got.ok() && cold.ok() && warm.ok())
                  << context;
              ExpectResultsBitwiseEqual(*uncached_got, *want,
                                        "uncached " + context);
              ExpectResultsBitwiseEqual(*cold, *want, "cold " + context);
              ExpectResultsBitwiseEqual(*warm, *want, "warm " + context);
            }
            const GroupByQuery grouped =
                testing::RandomVecGroupByQuery(**oracle, &rng);
            const auto want =
                Executor::ExecuteGrouped(frozen, grouped, options);
            ASSERT_TRUE(want.ok()) << context;
            for (const db::ExecutorOptions* opts : {&options, &cached}) {
              const auto got =
                  Executor::ExecuteGrouped(snapshot, grouped, *opts);
              ASSERT_TRUE(got.ok()) << context;
              ASSERT_EQ(got->cells.size(), want->cells.size()) << context;
              for (size_t g = 0; g < want->cells.size(); ++g) {
                ASSERT_EQ(got->cells[g].size(), want->cells[g].size());
                for (size_t a = 0; a < want->cells[g].size(); ++a) {
                  ExpectResultsBitwiseEqual(
                      got->cells[g][a], want->cells[g][a],
                      context + " cell " + std::to_string(g) + "/" +
                          std::to_string(a));
                }
              }
            }
          }

          stop.store(true, std::memory_order_relaxed);
          writer.join();
          EXPECT_TRUE(writer_ok.load(std::memory_order_relaxed))
              << "writer append failed";
        }
      }
    }
  }
}

/// A snapshot taken before the table (and its pool wiring) goes away
/// keeps serving byte-stable reads: the last reference pins runs,
/// memtable chunks, and the table object itself.
TEST_F(SnapshotOracleTest, SnapshotOutlivesTableAndCompactionPool) {
  TableSnapshot survivor;
  std::shared_ptr<Table> clone_check;
  {
    ThreadPool pool(2);
    TableOptions topt;
    topt.flush_threshold = 8;
    topt.max_runs = 2;
    topt.target_runs = 1;
    auto table = *Table::Create("ephemeral",
                                {{"city", ValueType::kString},
                                 {"delay", ValueType::kInt64}},
                                topt);
    table->EnableBackgroundCompaction(&pool);
    for (size_t r = 0; r < 45; ++r) {
      ASSERT_TRUE(table
                      ->AppendRow({Value(r % 2 == 0 ? "even" : "odd"),
                                   Value(static_cast<int64_t>(r))})
                      .ok());
    }
    survivor = table->Snapshot();
    clone_check = *survivor.Clone("still_here");
    // `table` and `pool` die here; `survivor` holds the last pin.
  }
  ASSERT_TRUE(survivor.valid());
  ASSERT_EQ(survivor.num_rows(), 45u);
  for (size_t r = 0; r < 45; ++r) {
    EXPECT_TRUE(survivor.ValueAt(r, 0) == clone_check->ValueAt(r, 0));
    EXPECT_EQ(survivor.ValueAt(r, 1).AsInt64(), static_cast<int64_t>(r));
  }
  AggregateQuery query;
  query.table = "ephemeral";
  query.function = AggregateFunction::kCount;
  query.predicates.push_back(
      Predicate::Equals("city", Value("even")));
  const auto count = Executor::Execute(survivor, query);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->value, 23.0);
}

}  // namespace
}  // namespace muve::db
