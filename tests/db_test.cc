#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>

#include "common/rng.h"
#include "db/cost_estimator.h"
#include "db/executor.h"
#include "db/vec/aggregate_kernels.h"
#include "db/vec/batch.h"
#include "db/vec/filter_kernels.h"
#include "db/vec/group_kernels.h"
#include "db/query.h"
#include "db/sql_parser.h"
#include "db/table.h"
#include "workload/datasets.h"
#include "workload/query_generator.h"

namespace muve::db {
namespace {

std::shared_ptr<Table> MakeCityTable() {
  auto table = *Table::Create("trips", {{"city", ValueType::kString},
                                        {"kind", ValueType::kString},
                                        {"delay", ValueType::kDouble},
                                        {"distance", ValueType::kInt64}});
  struct Row {
    const char* city;
    const char* kind;
    double delay;
    int64_t distance;
  };
  const Row rows[] = {
      {"boston", "bus", 5.0, 10},   {"boston", "rail", 7.0, 20},
      {"austin", "bus", 1.0, 30},   {"austin", "bus", 3.0, 40},
      {"boston", "bus", -2.0, 50},  {"newark", "rail", 9.0, 60},
      {"newark", "bus", 11.0, 70},  {"boston", "rail", 0.0, 80},
  };
  for (const Row& row : rows) {
    EXPECT_TRUE(table
                    ->AppendRow({Value(row.city), Value(row.kind),
                                 Value(row.delay), Value(row.distance)})
                    .ok());
  }
  return table;
}

// ---------------------------------------------------------------------
// Table / Column.
// ---------------------------------------------------------------------

TEST(TableTest, CreateRejectsDuplicatesAndEmpty) {
  EXPECT_FALSE(Table::Create("t", {}).ok());
  EXPECT_FALSE(Table::Create("t", {{"a", ValueType::kInt64},
                                   {"A", ValueType::kString}})
                   .ok());
}

TEST(TableTest, AppendAndRead) {
  auto table = MakeCityTable();
  EXPECT_EQ(table->num_rows(), 8u);
  EXPECT_EQ(table->num_columns(), 4u);
  EXPECT_EQ(table->column(0).Get(0).AsString(), "boston");
  EXPECT_EQ(table->column(3).Get(7).AsInt64(), 80);
}

TEST(TableTest, AppendRejectsTypeAndArityMismatch) {
  auto table = MakeCityTable();
  EXPECT_FALSE(table->AppendRow({Value("x"), Value("y")}).ok());
  EXPECT_FALSE(table
                   ->AppendRow({Value(int64_t{1}), Value("bus"),
                                Value(1.0), Value(int64_t{2})})
                   .ok());
}

TEST(TableTest, FindColumnIsCaseInsensitive) {
  auto table = MakeCityTable();
  EXPECT_NE(table->FindColumn("CITY"), nullptr);
  EXPECT_EQ(table->FindColumn("nope"), nullptr);
  EXPECT_TRUE(table->ColumnIndex("Delay").ok());
  EXPECT_FALSE(table->ColumnIndex("nope").ok());
}

TEST(TableTest, ColumnNamesOfType) {
  auto table = MakeCityTable();
  EXPECT_EQ(table->ColumnNamesOfType(ValueType::kString),
            (std::vector<std::string>{"city", "kind"}));
  EXPECT_EQ(table->ColumnNamesOfType(ValueType::kDouble),
            (std::vector<std::string>{"delay"}));
}

TEST(ColumnTest, DictionaryEncoding) {
  auto table = MakeCityTable();
  const Column* city = table->FindColumn("city");
  EXPECT_EQ(city->dictionary().size(), 3u);
  EXPECT_EQ(city->DistinctCount(), 3u);
  EXPECT_NE(city->CodeFor("boston"), kInvalidCode);
  EXPECT_EQ(city->CodeFor("chicago"), kInvalidCode);
}

TEST(ColumnTest, NumericDistinctCount) {
  auto table = MakeCityTable();
  EXPECT_EQ(table->FindColumn("distance")->DistinctCount(), 8u);
}

TEST(TableTest, SampleFraction) {
  Rng rng(3);
  auto big = workload::Make311Table(10000, &rng);
  auto sample = big->Sample(0.1);
  EXPECT_NEAR(static_cast<double>(sample->num_rows()), 1000.0, 10.0);
  EXPECT_EQ(sample->num_columns(), big->num_columns());
  auto empty = big->Sample(0.0);
  EXPECT_EQ(empty->num_rows(), 0u);
  auto full = big->Sample(1.0);
  EXPECT_EQ(full->num_rows(), big->num_rows());
}

// ---------------------------------------------------------------------
// Query model.
// ---------------------------------------------------------------------

TEST(QueryTest, ToSql) {
  AggregateQuery query;
  query.table = "trips";
  query.function = AggregateFunction::kAvg;
  query.aggregate_column = "delay";
  query.predicates.push_back(Predicate::Equals("city", Value("boston")));
  query.predicates.push_back(
      Predicate::In("kind", {Value("bus"), Value("rail")}));
  EXPECT_EQ(query.ToSql(),
            "SELECT AVG(delay) FROM trips WHERE city = 'boston' AND kind "
            "IN ('bus', 'rail')");
}

TEST(QueryTest, CanonicalKeyIsPredicateOrderInsensitive) {
  AggregateQuery a;
  a.table = "t";
  a.function = AggregateFunction::kCount;
  a.predicates = {Predicate::Equals("x", Value("1")),
                  Predicate::Equals("y", Value("2"))};
  AggregateQuery b = a;
  std::swap(b.predicates[0], b.predicates[1]);
  EXPECT_EQ(a.CanonicalKey(), b.CanonicalKey());
  EXPECT_TRUE(a == b);
}

TEST(QueryTest, CanonicalKeyDistinguishesAggregates) {
  AggregateQuery a;
  a.table = "t";
  a.function = AggregateFunction::kMin;
  a.aggregate_column = "v";
  AggregateQuery b = a;
  b.function = AggregateFunction::kMax;
  EXPECT_NE(a.CanonicalKey(), b.CanonicalKey());
}

// ---------------------------------------------------------------------
// Executor.
// ---------------------------------------------------------------------

TEST(ExecutorTest, CountWithPredicate) {
  auto table = MakeCityTable();
  AggregateQuery query;
  query.table = "trips";
  query.function = AggregateFunction::kCount;
  query.predicates = {Predicate::Equals("city", Value("boston"))};
  auto result = Executor::Execute(*table, query);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->value, 4.0);
  EXPECT_EQ(result->rows_matched, 4u);
}

TEST(ExecutorTest, AllAggregates) {
  auto table = MakeCityTable();
  AggregateQuery query;
  query.table = "trips";
  query.aggregate_column = "delay";
  query.predicates = {Predicate::Equals("city", Value("boston"))};
  // boston delays: 5, 7, -2, 0.
  query.function = AggregateFunction::kSum;
  EXPECT_DOUBLE_EQ(Executor::Execute(*table, query)->value, 10.0);
  query.function = AggregateFunction::kAvg;
  EXPECT_DOUBLE_EQ(Executor::Execute(*table, query)->value, 2.5);
  query.function = AggregateFunction::kMin;
  EXPECT_DOUBLE_EQ(Executor::Execute(*table, query)->value, -2.0);
  query.function = AggregateFunction::kMax;
  EXPECT_DOUBLE_EQ(Executor::Execute(*table, query)->value, 7.0);
}

TEST(ExecutorTest, ConjunctionOfPredicates) {
  auto table = MakeCityTable();
  AggregateQuery query;
  query.table = "trips";
  query.function = AggregateFunction::kCount;
  query.predicates = {Predicate::Equals("city", Value("boston")),
                      Predicate::Equals("kind", Value("bus"))};
  EXPECT_DOUBLE_EQ(Executor::Execute(*table, query)->value, 2.0);
}

TEST(ExecutorTest, InPredicate) {
  auto table = MakeCityTable();
  AggregateQuery query;
  query.table = "trips";
  query.function = AggregateFunction::kCount;
  query.predicates = {
      Predicate::In("city", {Value("boston"), Value("newark")})};
  EXPECT_DOUBLE_EQ(Executor::Execute(*table, query)->value, 6.0);
}

TEST(ExecutorTest, PredicateOnMissingValueMatchesNothing) {
  auto table = MakeCityTable();
  AggregateQuery query;
  query.table = "trips";
  query.function = AggregateFunction::kCount;
  query.predicates = {Predicate::Equals("city", Value("chicago"))};
  auto result = Executor::Execute(*table, query);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->value, 0.0);
}

TEST(ExecutorTest, EmptyInputAggregates) {
  auto table = MakeCityTable();
  AggregateQuery query;
  query.table = "trips";
  query.function = AggregateFunction::kAvg;
  query.aggregate_column = "delay";
  query.predicates = {Predicate::Equals("city", Value("chicago"))};
  auto result = Executor::Execute(*table, query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty_input);
}

TEST(ExecutorTest, EmptyInputSurvivesParallelMerge) {
  // Regression: a zero-match AVG/MIN/MAX must report empty_input = true
  // when the scan is partitioned and partial accumulators are merged. A
  // buggy merge would fold a partition's identity extrema (+/-inf) or a
  // 0 sum into a "real" value and lose the emptiness bit.
  auto table = *Table::Create("wide", {{"city", ValueType::kString},
                                       {"delay", ValueType::kDouble}});
  for (int r = 0; r < 5000; ++r) {
    ASSERT_TRUE(
        table->AppendRow({Value("boston"), Value(1.0 + r)}).ok());
  }
  ThreadPool pool(4);
  ExecutorOptions options;
  options.pool = &pool;
  options.min_parallel_rows = 1;
  options.parallel_grain = 257;  // Many partitions, all empty.

  for (const AggregateFunction fn :
       {AggregateFunction::kAvg, AggregateFunction::kMin,
        AggregateFunction::kMax}) {
    AggregateQuery query;
    query.table = "wide";
    query.function = fn;
    query.aggregate_column = "delay";
    query.predicates = {Predicate::Equals("city", Value("chicago"))};
    auto result = Executor::Execute(*table, query, options);
    ASSERT_TRUE(result.ok()) << AggregateFunctionName(fn);
    EXPECT_TRUE(result->empty_input) << AggregateFunctionName(fn);
    EXPECT_DOUBLE_EQ(result->value, 0.0) << AggregateFunctionName(fn);
    EXPECT_EQ(result->rows_matched, 0u) << AggregateFunctionName(fn);
  }

  // COUNT of nothing is a real 0, not an empty input.
  AggregateQuery count;
  count.table = "wide";
  count.function = AggregateFunction::kCount;
  count.predicates = {Predicate::Equals("city", Value("chicago"))};
  auto counted = Executor::Execute(*table, count, options);
  ASSERT_TRUE(counted.ok());
  EXPECT_FALSE(counted->empty_input);
  EXPECT_DOUBLE_EQ(counted->value, 0.0);
}

TEST(ExecutorTest, GroupedEmptyCellsSurviveParallelMerge) {
  // Same regression at the grouped-scan merge: an IN-list group value
  // absent from the data must yield empty_input cells after the
  // per-partition accumulator grids are merged.
  auto table = *Table::Create("wide", {{"city", ValueType::kString},
                                       {"delay", ValueType::kDouble}});
  for (int r = 0; r < 5000; ++r) {
    ASSERT_TRUE(
        table->AppendRow({Value("boston"), Value(1.0 + r)}).ok());
  }
  ThreadPool pool(4);
  ExecutorOptions options;
  options.pool = &pool;
  options.min_parallel_rows = 1;
  options.parallel_grain = 257;

  GroupByQuery grouped;
  grouped.table = "wide";
  grouped.group_column = "city";
  grouped.group_values = {"boston", "chicago"};
  grouped.aggregates = {{AggregateFunction::kAvg, "delay"},
                        {AggregateFunction::kMin, "delay"},
                        {AggregateFunction::kCount, ""}};
  auto result = Executor::ExecuteGrouped(*table, grouped, options);
  ASSERT_TRUE(result.ok());

  // boston is populated: AVG of 1..5000 and MIN 1.
  EXPECT_FALSE(result->cells[0][0].empty_input);
  EXPECT_DOUBLE_EQ(result->cells[0][0].value, 2500.5);
  EXPECT_DOUBLE_EQ(result->cells[0][1].value, 1.0);
  EXPECT_DOUBLE_EQ(result->cells[0][2].value, 5000.0);

  // chicago matched nothing anywhere: AVG/MIN empty, COUNT real 0.
  EXPECT_TRUE(result->cells[1][0].empty_input);
  EXPECT_DOUBLE_EQ(result->cells[1][0].value, 0.0);
  EXPECT_TRUE(result->cells[1][1].empty_input);
  EXPECT_FALSE(result->cells[1][2].empty_input);
  EXPECT_DOUBLE_EQ(result->cells[1][2].value, 0.0);
}

TEST(ExecutorTest, ErrorsOnBadColumns) {
  auto table = MakeCityTable();
  AggregateQuery query;
  query.table = "trips";
  query.function = AggregateFunction::kSum;
  query.aggregate_column = "city";  // String column.
  EXPECT_FALSE(Executor::Execute(*table, query).ok());
  query.aggregate_column = "nope";
  EXPECT_FALSE(Executor::Execute(*table, query).ok());
  query.aggregate_column = "delay";
  query.predicates = {Predicate::Equals("nope", Value("x"))};
  EXPECT_FALSE(Executor::Execute(*table, query).ok());
  query.predicates = {Predicate::Equals("city", Value(int64_t{3}))};
  EXPECT_FALSE(Executor::Execute(*table, query).ok());
}

TEST(ExecutorTest, IntAggregation) {
  auto table = MakeCityTable();
  AggregateQuery query;
  query.table = "trips";
  query.function = AggregateFunction::kSum;
  query.aggregate_column = "distance";
  EXPECT_DOUBLE_EQ(Executor::Execute(*table, query)->value, 360.0);
}

// ---------------------------------------------------------------------
// Grouped execution: must equal separate execution.
// ---------------------------------------------------------------------

TEST(ExecutorTest, GroupedMatchesSeparate) {
  auto table = MakeCityTable();
  GroupByQuery grouped;
  grouped.table = "trips";
  grouped.group_column = "city";
  grouped.group_values = {"boston", "austin", "newark", "chicago"};
  grouped.shared_predicates = {Predicate::Equals("kind", Value("bus"))};
  grouped.aggregates = {{AggregateFunction::kCount, ""},
                        {AggregateFunction::kSum, "delay"},
                        {AggregateFunction::kAvg, "delay"}};
  auto grouped_result = Executor::ExecuteGrouped(*table, grouped);
  ASSERT_TRUE(grouped_result.ok());

  for (size_t g = 0; g < grouped.group_values.size(); ++g) {
    for (size_t a = 0; a < grouped.aggregates.size(); ++a) {
      AggregateQuery single;
      single.table = "trips";
      single.function = grouped.aggregates[a].function;
      single.aggregate_column = grouped.aggregates[a].column;
      single.predicates = {
          Predicate::Equals("kind", Value("bus")),
          Predicate::Equals("city", Value(grouped.group_values[g]))};
      auto single_result = Executor::Execute(*table, single);
      ASSERT_TRUE(single_result.ok());
      EXPECT_DOUBLE_EQ(grouped_result->cells[g][a].value,
                       single_result->value)
          << "group " << grouped.group_values[g] << " agg " << a;
    }
  }
}

TEST(ExecutorTest, GroupedRandomizedEquivalence) {
  Rng rng(99);
  auto table = workload::Make311Table(5000, &rng);
  const Column* borough = table->FindColumn("borough");
  GroupByQuery grouped;
  grouped.table = table->name();
  grouped.group_column = "borough";
  grouped.group_values = borough->dictionary();
  grouped.shared_predicates = {
      Predicate::Equals("status", Value("open"))};
  grouped.aggregates = {{AggregateFunction::kCount, ""},
                        {AggregateFunction::kMax, "open_hours"}};
  auto grouped_result = Executor::ExecuteGrouped(*table, grouped);
  ASSERT_TRUE(grouped_result.ok());
  for (size_t g = 0; g < grouped.group_values.size(); ++g) {
    AggregateQuery single;
    single.table = table->name();
    single.function = AggregateFunction::kCount;
    single.predicates = {
        Predicate::Equals("status", Value("open")),
        Predicate::Equals("borough", Value(grouped.group_values[g]))};
    EXPECT_DOUBLE_EQ(grouped_result->cells[g][0].value,
                     Executor::Execute(*table, single)->value);
  }
}

TEST(ExecutorTest, GroupedRequiresStringGroupColumn) {
  auto table = MakeCityTable();
  GroupByQuery grouped;
  grouped.table = "trips";
  grouped.group_column = "delay";
  grouped.group_values = {"x"};
  grouped.aggregates = {{AggregateFunction::kCount, ""}};
  EXPECT_FALSE(Executor::ExecuteGrouped(*table, grouped).ok());
}

TEST(ExecutorTest, GroupBySqlText) {
  GroupByQuery grouped;
  grouped.table = "trips";
  grouped.group_column = "city";
  grouped.group_values = {"boston", "austin"};
  grouped.shared_predicates = {Predicate::Equals("kind", Value("bus"))};
  grouped.aggregates = {{AggregateFunction::kCount, ""},
                        {AggregateFunction::kSum, "delay"}};
  EXPECT_EQ(grouped.ToSql(),
            "SELECT city, COUNT(*), SUM(delay) FROM trips WHERE kind = "
            "'bus' AND city IN ('boston', 'austin') GROUP BY city");
}

TEST(ExecutorTest, SampledValueScaling) {
  EXPECT_DOUBLE_EQ(
      Executor::ScaleSampledValue(AggregateFunction::kCount, 10.0, 0.1),
      100.0);
  EXPECT_DOUBLE_EQ(
      Executor::ScaleSampledValue(AggregateFunction::kSum, 10.0, 0.5),
      20.0);
  EXPECT_DOUBLE_EQ(
      Executor::ScaleSampledValue(AggregateFunction::kAvg, 10.0, 0.1),
      10.0);
  EXPECT_DOUBLE_EQ(
      Executor::ScaleSampledValue(AggregateFunction::kMax, 10.0, 0.1),
      10.0);
}

// ---------------------------------------------------------------------
// SQL parser.
// ---------------------------------------------------------------------

TEST(SqlParserTest, ParsesSimpleCount) {
  auto query = ParseSql("SELECT COUNT(*) FROM trips");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->function, AggregateFunction::kCount);
  EXPECT_TRUE(query->aggregate_column.empty());
  EXPECT_EQ(query->table, "trips");
  EXPECT_TRUE(query->predicates.empty());
}

TEST(SqlParserTest, ParsesFullQuery) {
  auto query = ParseSql(
      "select avg(delay) from trips where city = 'boston' and kind = "
      "'bus'");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->function, AggregateFunction::kAvg);
  EXPECT_EQ(query->aggregate_column, "delay");
  ASSERT_EQ(query->predicates.size(), 2u);
  EXPECT_EQ(query->predicates[0].column, "city");
  EXPECT_EQ(query->predicates[0].values[0].AsString(), "boston");
}

TEST(SqlParserTest, ParsesInList) {
  auto query = ParseSql(
      "SELECT SUM(delay) FROM trips WHERE city IN ('a', 'b', 'c')");
  ASSERT_TRUE(query.ok());
  ASSERT_EQ(query->predicates.size(), 1u);
  EXPECT_EQ(query->predicates[0].op, PredicateOp::kIn);
  EXPECT_EQ(query->predicates[0].values.size(), 3u);
}

TEST(SqlParserTest, ParsesNumericLiterals) {
  auto query =
      ParseSql("SELECT COUNT(*) FROM t WHERE x = 5 AND y = 2.5");
  ASSERT_TRUE(query.ok());
  EXPECT_TRUE(query->predicates[0].values[0].is_int64());
  EXPECT_TRUE(query->predicates[1].values[0].is_double());
}

TEST(SqlParserTest, QuoteEscaping) {
  auto query = ParseSql("SELECT COUNT(*) FROM t WHERE x = 'o''brien'");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->predicates[0].values[0].AsString(), "o'brien");
}

TEST(SqlParserTest, RoundTripsThroughToSql) {
  const char* queries[] = {
      "SELECT COUNT(*) FROM trips",
      "SELECT AVG(delay) FROM trips WHERE city = 'boston'",
      "SELECT MAX(delay) FROM trips WHERE city IN ('a', 'b') AND kind = "
      "'bus'",
  };
  for (const char* sql : queries) {
    auto query = ParseSql(sql);
    ASSERT_TRUE(query.ok()) << sql;
    auto reparsed = ParseSql(query->ToSql());
    ASSERT_TRUE(reparsed.ok()) << query->ToSql();
    EXPECT_EQ(query->CanonicalKey(), reparsed->CanonicalKey());
  }
}

TEST(SqlParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseSql("").ok());
  EXPECT_FALSE(ParseSql("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT BOGUS(x) FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT SUM(*) FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(*) FROM t WHERE").ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(*) FROM t WHERE a = 'x' extra").ok());
  EXPECT_FALSE(
      ParseSql("SELECT COUNT(*) FROM t WHERE a = 'unterminated").ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(*) FROM t WHERE a > 3").ok());
}

// ---------------------------------------------------------------------
// Cost estimator.
// ---------------------------------------------------------------------

TEST(CostEstimatorTest, CostGrowsWithDataSize) {
  Rng rng(1);
  auto small = workload::Make311Table(1000, &rng);
  auto large = workload::Make311Table(20000, &rng);
  CostEstimator estimator;
  AggregateQuery query;
  query.function = AggregateFunction::kCount;
  query.table = "nyc311";
  query.predicates = {Predicate::Equals("borough", Value("brooklyn"))};
  EXPECT_LT(estimator.Estimate(*small, query)->total_cost,
            estimator.Estimate(*large, query)->total_cost);
}

TEST(CostEstimatorTest, SelectivityMultiplies) {
  Rng rng(1);
  auto table = workload::Make311Table(5000, &rng);
  CostEstimator estimator;
  AggregateQuery one;
  one.table = "nyc311";
  one.predicates = {Predicate::Equals("borough", Value("brooklyn"))};
  AggregateQuery two = one;
  two.predicates.push_back(Predicate::Equals("status", Value("open")));
  EXPECT_LT(estimator.Estimate(*table, two)->selectivity,
            estimator.Estimate(*table, one)->selectivity);
}

TEST(CostEstimatorTest, MergedCheaperThanManySeparate) {
  Rng rng(1);
  auto table = workload::Make311Table(20000, &rng);
  CostEstimator estimator;
  GroupByQuery grouped;
  grouped.table = "nyc311";
  grouped.group_column = "borough";
  grouped.group_values = table->FindColumn("borough")->dictionary();
  grouped.aggregates = {{AggregateFunction::kCount, ""}};
  const double merged_cost =
      estimator.EstimateGrouped(*table, grouped)->total_cost;
  AggregateQuery single;
  single.table = "nyc311";
  single.function = AggregateFunction::kCount;
  double separate_cost = 0.0;
  for (const std::string& value : grouped.group_values) {
    single.predicates = {Predicate::Equals("borough", Value(value))};
    separate_cost += estimator.Estimate(*table, single)->total_cost;
  }
  EXPECT_LT(merged_cost, separate_cost / 2.0);
}

TEST(CostEstimatorTest, ErrorsOnUnknownColumn) {
  auto table = MakeCityTable();
  CostEstimator estimator;
  AggregateQuery query;
  query.table = "trips";
  query.predicates = {Predicate::Equals("nope", Value("x"))};
  EXPECT_FALSE(estimator.Estimate(*table, query).ok());
}

// ---------------------------------------------------------------------
// Workload generators.
// ---------------------------------------------------------------------

TEST(WorkloadTest, AllDatasetsBuild) {
  for (const std::string& name : workload::DatasetNames()) {
    auto table = workload::MakeDataset(name, 500, 42);
    ASSERT_TRUE(table.ok()) << name;
    EXPECT_EQ((*table)->num_rows(), 500u);
    EXPECT_FALSE((*table)->ColumnNamesOfType(ValueType::kString).empty());
  }
  EXPECT_FALSE(workload::MakeDataset("bogus", 10, 1).ok());
}

TEST(WorkloadTest, DatasetsAreSeedDeterministic) {
  auto a = *workload::MakeDataset("flights", 200, 7);
  auto b = *workload::MakeDataset("flights", 200, 7);
  for (size_t c = 0; c < a->num_columns(); ++c) {
    for (size_t r = 0; r < a->num_rows(); r += 17) {
      EXPECT_TRUE(a->column(c).Get(r) == b->column(c).Get(r));
    }
  }
}

TEST(WorkloadTest, VocabularyContainsSchemaAndValues) {
  auto table = *workload::MakeDataset("nyc311", 1000, 3);
  const std::vector<std::string> vocabulary =
      workload::BuildVocabulary(*table);
  auto contains = [&](const std::string& word) {
    return std::find(vocabulary.begin(), vocabulary.end(), word) !=
           vocabulary.end();
  };
  EXPECT_TRUE(contains("borough"));
  EXPECT_TRUE(contains("open_hours"));
  EXPECT_TRUE(contains("brooklyn"));
}

TEST(WorkloadTest, RandomQueryIsExecutable) {
  Rng rng(21);
  auto table = *workload::MakeDataset("dob", 2000, 5);
  for (int i = 0; i < 50; ++i) {
    auto query = workload::RandomQuery(*table, &rng);
    ASSERT_TRUE(query.ok());
    EXPECT_GE(query->predicates.size(), 1u);
    EXPECT_LE(query->predicates.size(), 5u);
    EXPECT_TRUE(Executor::Execute(*table, *query).ok()) << query->ToSql();
  }
}

TEST(WorkloadTest, RandomQueryRespectsPredicateBounds) {
  Rng rng(22);
  auto table = *workload::MakeDataset("flights", 500, 5);
  workload::QueryGeneratorOptions options;
  options.min_predicates = 2;
  options.max_predicates = 3;
  for (int i = 0; i < 30; ++i) {
    auto query = workload::RandomQuery(*table, &rng, options);
    ASSERT_TRUE(query.ok());
    EXPECT_GE(query->predicates.size(), 2u);
    EXPECT_LE(query->predicates.size(), 3u);
  }
}

// ---------------------------------------------------------------------
// Vectorized kernels (src/db/vec/): direct property tests of the
// predicate, aggregate, and grouping kernels against straight-line
// reference loops, plus executor-level checks of the paths the random
// workloads rarely pin (IN lists longer than a batch, signed zero).
// ---------------------------------------------------------------------

/// Reference selection: offsets of rows satisfying `pred`, in order.
template <typename T, typename Pred>
std::vector<uint32_t> ReferenceSelect(const std::vector<T>& data,
                                      Pred pred) {
  std::vector<uint32_t> sel;
  for (size_t i = 0; i < data.size(); ++i) {
    if (pred(data[i])) sel.push_back(static_cast<uint32_t>(i));
  }
  return sel;
}

TEST(VecKernelTest, FilterKernelsMatchReferenceLoop) {
  Rng rng(31);
  for (int round = 0; round < 50; ++round) {
    const size_t n = static_cast<size_t>(rng.UniformInRange(0, 300));
    std::vector<int64_t> ints;
    std::vector<double> doubles;
    std::vector<uint32_t> codes;
    for (size_t i = 0; i < n; ++i) {
      ints.push_back(rng.UniformInRange(-5, 5));
      doubles.push_back(
          static_cast<double>(rng.UniformInRange(-5, 5)) * 0.5);
      codes.push_back(static_cast<uint32_t>(rng.UniformInRange(0, 7)));
    }
    std::vector<uint32_t> sel(std::max<size_t>(n, 1));

    const int64_t int_key = rng.UniformInRange(-6, 6);
    EXPECT_EQ(ReferenceSelect(ints, [&](int64_t v) { return v == int_key; }),
              std::vector<uint32_t>(
                  sel.begin(),
                  sel.begin() + vec::FilterEqI64(ints.data(), n, int_key,
                                                 sel.data())));

    const double double_key =
        static_cast<double>(rng.UniformInRange(-6, 6)) * 0.5;
    EXPECT_EQ(
        ReferenceSelect(doubles, [&](double v) { return v == double_key; }),
        std::vector<uint32_t>(
            sel.begin(), sel.begin() + vec::FilterEqF64(doubles.data(), n,
                                                        double_key,
                                                        sel.data())));

    const uint32_t code_key =
        static_cast<uint32_t>(rng.UniformInRange(0, 8));
    EXPECT_EQ(
        ReferenceSelect(codes, [&](uint32_t v) { return v == code_key; }),
        std::vector<uint32_t>(
            sel.begin(), sel.begin() + vec::FilterEqU32(codes.data(), n,
                                                        code_key,
                                                        sel.data())));

    const std::vector<int64_t> in_keys = {int_key, int_key + 2, -100};
    EXPECT_EQ(ReferenceSelect(ints,
                              [&](int64_t v) {
                                return v == in_keys[0] || v == in_keys[1] ||
                                       v == in_keys[2];
                              }),
              std::vector<uint32_t>(
                  sel.begin(),
                  sel.begin() + vec::FilterInI64(ints.data(), n,
                                                 in_keys.data(),
                                                 in_keys.size(),
                                                 sel.data())));

    uint8_t mask[9] = {0};
    mask[code_key] = 1;
    mask[(code_key + 3) % 9] = 1;
    EXPECT_EQ(
        ReferenceSelect(codes, [&](uint32_t v) { return mask[v] != 0; }),
        std::vector<uint32_t>(
            sel.begin(), sel.begin() + vec::FilterMaskU32(codes.data(), n,
                                                          mask,
                                                          sel.data())));
  }
}

TEST(VecKernelTest, RefineKernelsCompactExistingSelections) {
  Rng rng(32);
  for (int round = 0; round < 50; ++round) {
    const size_t n = static_cast<size_t>(rng.UniformInRange(1, 300));
    std::vector<double> data;
    std::vector<uint32_t> sel_in;
    for (size_t i = 0; i < n; ++i) {
      data.push_back(static_cast<double>(rng.UniformInRange(-4, 4)));
      if (rng.Bernoulli(0.4)) sel_in.push_back(static_cast<uint32_t>(i));
    }
    const double key = static_cast<double>(rng.UniformInRange(-4, 4));
    std::vector<uint32_t> sel_out(n);
    const size_t count = vec::RefineEqF64(data.data(), sel_in.data(),
                                          sel_in.size(), key,
                                          sel_out.data());
    std::vector<uint32_t> reference;
    for (const uint32_t offset : sel_in) {
      if (data[offset] == key) reference.push_back(offset);
    }
    EXPECT_EQ(reference, std::vector<uint32_t>(sel_out.begin(),
                                               sel_out.begin() + count));
  }
  // An empty input selection stays empty and never touches the output.
  const double data[] = {1.0, 2.0};
  uint32_t out[2] = {77, 77};
  EXPECT_EQ(0u, vec::RefineEqF64(data, nullptr, 0, 1.0, out));
  EXPECT_EQ(77u, out[0]);
}

TEST(VecKernelTest, DoubleEqualityMatchesSignedZeroNeverNaN) {
  // IEEE ==: -0.0 equals 0.0 in either direction; NaN equals nothing —
  // exactly the scalar executor's `v == accepted`. Exponent-extreme
  // literals compare exactly, not through any rounding.
  const std::vector<double> data = {0.0,    -0.0,   1e300, -1e300,
                                    5e-324, 2.5,    std::nan(""),
                                    1e300,  2.5e-308};
  uint32_t sel[16];
  EXPECT_EQ(std::vector<uint32_t>({0, 1}),
            std::vector<uint32_t>(
                sel, sel + vec::FilterEqF64(data.data(), data.size(), 0.0,
                                            sel)));
  EXPECT_EQ(std::vector<uint32_t>({0, 1}),
            std::vector<uint32_t>(
                sel, sel + vec::FilterEqF64(data.data(), data.size(), -0.0,
                                            sel)));
  EXPECT_EQ(std::vector<uint32_t>({2, 7}),
            std::vector<uint32_t>(
                sel, sel + vec::FilterEqF64(data.data(), data.size(),
                                            1e300, sel)));
  // A NaN key matches nothing, and the NaN element matches no key.
  EXPECT_EQ(0u, vec::FilterEqF64(data.data(), data.size(), std::nan(""),
                                 sel));
  const double keys[] = {std::nan(""), 5e-324};
  EXPECT_EQ(std::vector<uint32_t>({4}),
            std::vector<uint32_t>(
                sel, sel + vec::FilterInF64(data.data(), data.size(), keys,
                                            2, sel)));
}

TEST(VecKernelTest, AggregateKernelsMatchScalarFoldAllFiveFunctions) {
  // The dense (all-selected) and gather (identity selection) shapes must
  // both reproduce the scalar executor's sequential fold bitwise, for
  // the state behind all five aggregate functions (COUNT needs no
  // kernel; SUM/AVG share the sum state; MIN/MAX their extrema).
  Rng rng(33);
  for (int round = 0; round < 30; ++round) {
    const size_t n = static_cast<size_t>(rng.UniformInRange(0, 200));
    std::vector<double> doubles;
    std::vector<int64_t> ints;
    std::vector<uint32_t> identity;
    for (size_t i = 0; i < n; ++i) {
      doubles.push_back(rng.UniformDouble(-1e3, 1e3));
      ints.push_back(rng.UniformInRange(-1000, 1000));
      identity.push_back(static_cast<uint32_t>(i));
    }
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    for (const double v : doubles) {
      sum += v;
      min = std::min(min, v);
      max = std::max(max, v);
    }
    EXPECT_EQ(sum, vec::SumDenseF64(doubles.data(), n, 0.0));
    EXPECT_EQ(sum, vec::SumGatherF64(doubles.data(), identity.data(), n,
                                     0.0));
    EXPECT_EQ(min, vec::MinDenseF64(
                       doubles.data(), n,
                       std::numeric_limits<double>::infinity()));
    EXPECT_EQ(min, vec::MinGatherF64(
                       doubles.data(), identity.data(), n,
                       std::numeric_limits<double>::infinity()));
    EXPECT_EQ(max, vec::MaxDenseF64(
                       doubles.data(), n,
                       -std::numeric_limits<double>::infinity()));
    EXPECT_EQ(max, vec::MaxGatherF64(
                       doubles.data(), identity.data(), n,
                       -std::numeric_limits<double>::infinity()));

    double int_sum = 0.0;
    for (const int64_t v : ints) int_sum += static_cast<double>(v);
    EXPECT_EQ(int_sum, vec::SumDenseI64(ints.data(), n, 0.0));
    EXPECT_EQ(int_sum, vec::SumGatherI64(ints.data(), identity.data(), n,
                                         0.0));
  }
}

TEST(VecKernelTest, GroupLookupFirstOccurrenceWinsAndMapsCompact) {
  Column column("g", ValueType::kString);
  for (const char* v : {"a", "b", "c", "b", "a"}) {
    ASSERT_TRUE(column.Append(Value(v)).ok());
  }
  // Duplicate group value: the first occurrence claims the code, the
  // scalar path's emplace semantics.
  const std::vector<uint32_t> lookup =
      vec::BuildGroupLookup(column, {"b", "absent", "b", "a"});
  ASSERT_EQ(3u, lookup.size());
  EXPECT_EQ(3u, lookup[column.CodeFor("a")]);
  EXPECT_EQ(0u, lookup[column.CodeFor("b")]);
  EXPECT_EQ(vec::kNoGroup, lookup[column.CodeFor("c")]);

  uint32_t sel_out[8];
  uint32_t groups[8];
  // Dense: rows are a b c b a -> groups 3 0 _ 0 3.
  EXPECT_EQ(4u, vec::MapGroupsDense(column.codes_raw(), column.size(),
                                    lookup.data(), sel_out, groups));
  EXPECT_EQ(std::vector<uint32_t>({0, 1, 3, 4}),
            std::vector<uint32_t>(sel_out, sel_out + 4));
  EXPECT_EQ(std::vector<uint32_t>({3, 0, 0, 3}),
            std::vector<uint32_t>(groups, groups + 4));
  // Sparse over a prior selection {1, 2, 4}.
  const uint32_t sel_in[] = {1, 2, 4};
  EXPECT_EQ(2u, vec::MapGroups(column.codes_raw(), sel_in, 3,
                               lookup.data(), sel_out, groups));
  EXPECT_EQ(1u, sel_out[0]);
  EXPECT_EQ(4u, sel_out[1]);
  EXPECT_EQ(0u, groups[0]);
  EXPECT_EQ(3u, groups[1]);
  // Empty selection maps to nothing.
  EXPECT_EQ(0u, vec::MapGroups(column.codes_raw(), nullptr, 0,
                               lookup.data(), sel_out, groups));
}

TEST(VecKernelTest, AcceptMaskIgnoresInvalidAndOutOfRangeCodes) {
  Column column("s", ValueType::kString);
  for (const char* v : {"x", "y", "z"}) {
    ASSERT_TRUE(column.Append(Value(v)).ok());
  }
  const std::vector<uint8_t> mask =
      column.AcceptMask({0, 2, 99, kInvalidCode});
  EXPECT_EQ(std::vector<uint8_t>({1, 0, 1}), mask);
}

TEST(ExecutorTest, VectorizedInListLargerThanOneBatch) {
  // An IN list longer than vec::kBatchSize (2048): the int kernel loops
  // the whole key list per row and the string path goes through a
  // dictionary accept mask; both must agree with the scalar oracle.
  auto table = *Table::Create("t", {{"s", ValueType::kString},
                                    {"v", ValueType::kInt64}});
  constexpr int64_t kRows = 5000;
  for (int64_t r = 0; r < kRows; ++r) {
    ASSERT_TRUE(table
                    ->AppendRow({Value("s" + std::to_string(r % 3000)),
                                 Value(r % 3000)})
                    .ok());
  }
  std::vector<Value> int_list;
  std::vector<Value> string_list;
  for (int64_t k = 0; k < 2500; ++k) {
    int_list.emplace_back(k);
    string_list.emplace_back("s" + std::to_string(k));
  }
  ExecutorOptions scalar;
  scalar.vectorize = false;
  for (const Predicate& predicate :
       {Predicate::In("v", int_list), Predicate::In("s", string_list)}) {
    AggregateQuery query;
    query.table = "t";
    query.function = AggregateFunction::kSum;
    query.aggregate_column = "v";
    query.predicates = {predicate};
    const auto vec_result = Executor::Execute(*table, query);
    const auto scalar_result = Executor::Execute(*table, query, scalar);
    ASSERT_TRUE(vec_result.ok() && scalar_result.ok());
    // Rows 0..2499 and 3000..4999 (values 0..1999) match: 4500 rows.
    EXPECT_EQ(4500u, vec_result->rows_matched);
    EXPECT_EQ(scalar_result->rows_matched, vec_result->rows_matched);
    EXPECT_EQ(scalar_result->value, vec_result->value);
  }
}

TEST(ExecutorTest, VectorizedSignedZeroPredicateMatchesBothZeros) {
  auto table = *Table::Create("t", {{"d", ValueType::kDouble}});
  ASSERT_TRUE(table->AppendRow({Value(0.0)}).ok());
  ASSERT_TRUE(table->AppendRow({Value(-0.0)}).ok());
  ASSERT_TRUE(table->AppendRow({Value(1.0)}).ok());
  AggregateQuery query;
  query.table = "t";
  query.function = AggregateFunction::kCount;
  query.predicates = {Predicate::Equals("d", Value(-0.0))};
  ExecutorOptions scalar;
  scalar.vectorize = false;
  const auto vec_result = Executor::Execute(*table, query);
  const auto scalar_result = Executor::Execute(*table, query, scalar);
  ASSERT_TRUE(vec_result.ok() && scalar_result.ok());
  EXPECT_EQ(2u, vec_result->rows_matched);
  EXPECT_EQ(scalar_result->rows_matched, vec_result->rows_matched);
}

}  // namespace
}  // namespace muve::db

#include "db/csv.h"

namespace muve::db {
namespace {

TEST(CsvTest, RoundTripPreservesData) {
  auto table = MakeCityTable();
  const std::string path = ::testing::TempDir() + "/muve_trips.csv";
  ASSERT_TRUE(WriteCsv(*table, path).ok());
  auto loaded = ReadCsv("trips", path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ((*loaded)->num_rows(), table->num_rows());
  ASSERT_EQ((*loaded)->num_columns(), table->num_columns());
  for (size_t c = 0; c < table->num_columns(); ++c) {
    EXPECT_EQ((*loaded)->column(c).name(), table->column(c).name());
    EXPECT_EQ((*loaded)->column(c).type(), table->column(c).type());
    for (size_t r = 0; r < table->num_rows(); ++r) {
      EXPECT_TRUE((*loaded)->column(c).Get(r) == table->column(c).Get(r))
          << "col " << c << " row " << r;
    }
  }
}

TEST(CsvTest, QuotedFieldsSurvive) {
  auto table = *Table::Create("q", {{"text", ValueType::kString}});
  ASSERT_TRUE(table->AppendRow({Value("plain")}).ok());
  ASSERT_TRUE(table->AppendRow({Value("has,comma")}).ok());
  ASSERT_TRUE(table->AppendRow({Value("has \"quote\"")}).ok());
  const std::string path = ::testing::TempDir() + "/muve_quoted.csv";
  ASSERT_TRUE(WriteCsv(*table, path).ok());
  auto loaded = ReadCsv("q", path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->column(0).Get(1).AsString(), "has,comma");
  EXPECT_EQ((*loaded)->column(0).Get(2).AsString(), "has \"quote\"");
}

TEST(CsvTest, TypeInference) {
  const std::string path = ::testing::TempDir() + "/muve_types.csv";
  {
    std::ofstream out(path);
    out << "name,count,ratio\nalpha,3,1.5\nbeta,-7,2\n";
  }
  auto loaded = ReadCsv("t", path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->column(0).type(), ValueType::kString);
  EXPECT_EQ((*loaded)->column(1).type(), ValueType::kInt64);
  EXPECT_EQ((*loaded)->column(2).type(), ValueType::kDouble);
  EXPECT_EQ((*loaded)->column(1).Get(1).AsInt64(), -7);
}

TEST(CsvTest, Errors) {
  EXPECT_FALSE(ReadCsv("t", "/nonexistent/file.csv").ok());
  const std::string path = ::testing::TempDir() + "/muve_bad.csv";
  {
    std::ofstream out(path);
    out << "a,b\n1,2\n3\n";  // Ragged row.
  }
  EXPECT_FALSE(ReadCsv("t", path).ok());
  {
    // Mixed numeric/text values: all-rows inference degrades the column
    // to STRING rather than failing.
    std::ofstream out(path);
    out << "a\n1\nnot_a_number\n";
  }
  auto mixed = ReadCsv("t", path);
  ASSERT_TRUE(mixed.ok());
  EXPECT_EQ((*mixed)->column(0).type(), ValueType::kString);
}

}  // namespace
}  // namespace muve::db
