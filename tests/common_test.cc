#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <limits>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace muve {
namespace {

// ---------------------------------------------------------------------
// Status / Result.
// ---------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(),  Status::NotFound("").code(),
      Status::OutOfRange("").code(),       Status::FailedPrecondition("").code(),
      Status::Unimplemented("").code(),    Status::Timeout("").code(),
      Status::Internal("").code(),         Status::ParseError("").code(),
      Status::Infeasible("").code(),       Status::Unbounded("").code()};
  EXPECT_EQ(codes.size(), 10u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(7), 7);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("non-positive");
  return x;
}

Result<int> DoubledPositive(int x) {
  MUVE_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  return value * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> good = DoubledPositive(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  Result<int> bad = DoubledPositive(-1);
  EXPECT_FALSE(bad.ok());
}

// ---------------------------------------------------------------------
// Rng.
// ---------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(17);
  std::vector<size_t> perm = rng.Permutation(20);
  std::vector<size_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < 20; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(19);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.Discrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(RngTest, LogNormalPositive) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_GT(rng.LogNormal(0.0, 0.5), 0.0);
  }
}

// ---------------------------------------------------------------------
// Strings.
// ---------------------------------------------------------------------

TEST(StringsTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("AbC dEf"), "abc def");
  EXPECT_EQ(ToUpper("AbC dEf"), "ABC DEF");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, SplitWhitespace) {
  EXPECT_EQ(SplitWhitespace("  a  b\tc \n"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foo", "foobar"));
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("Hello", "hELLO"));
  EXPECT_FALSE(EqualsIgnoreCase("Hello", "Hell"));
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

// ---------------------------------------------------------------------
// Clock.
// ---------------------------------------------------------------------

TEST(ClockTest, StopWatchAdvances) {
  StopWatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(watch.ElapsedMillis(), 4.0);
}

TEST(ClockTest, DeadlineExpires) {
  Deadline deadline = Deadline::AfterMillis(1.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(deadline.Expired());
  EXPECT_EQ(deadline.RemainingMillis(), 0.0);
}

TEST(ClockTest, InfiniteDeadlineNeverExpires) {
  Deadline deadline = Deadline::Infinite();
  EXPECT_FALSE(deadline.Expired());
  EXPECT_FALSE(deadline.IsFinite());
}

TEST(ClockTest, NonPositiveBudgetExpiresImmediately) {
  EXPECT_TRUE(Deadline::AfterMillis(0.0).Expired());
  EXPECT_TRUE(Deadline::AfterMillis(-5.0).Expired());
}

TEST(ClockTest, FakeClockControlsDeadline) {
  FakeClock clock;
  clock.SetMillis(100.0);
  Deadline deadline = Deadline::AfterMillis(10.0, &clock);
  EXPECT_TRUE(deadline.IsFinite());
  EXPECT_FALSE(deadline.Expired());
  EXPECT_DOUBLE_EQ(deadline.RemainingMillis(), 10.0);

  clock.AdvanceMillis(9.0);
  EXPECT_FALSE(deadline.Expired());
  EXPECT_DOUBLE_EQ(deadline.RemainingMillis(), 1.0);

  clock.AdvanceMillis(1.0);  // Exactly at expiry: now >= expiry.
  EXPECT_TRUE(deadline.Expired());
  EXPECT_EQ(deadline.RemainingMillis(), 0.0);

  // A frozen clock never expires an unexpired deadline on its own.
  Deadline fresh = Deadline::AfterMillis(5.0, &clock);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(fresh.Expired());
}

TEST(ClockTest, FakeClockInfiniteBudgetStaysInfinite) {
  FakeClock clock;
  Deadline deadline = Deadline::AfterMillis(
      std::numeric_limits<double>::infinity(), &clock);
  EXPECT_FALSE(deadline.IsFinite());
  clock.AdvanceMillis(1e12);
  EXPECT_FALSE(deadline.Expired());
}

TEST(ClockTest, TightestPicksSmallerRemaining) {
  FakeClock clock;
  clock.SetMillis(50.0);
  Deadline near = Deadline::AfterMillis(5.0, &clock);
  Deadline far = Deadline::AfterMillis(500.0, &clock);
  Deadline infinite = Deadline::Infinite();

  EXPECT_DOUBLE_EQ(Deadline::Tightest(near, far).RemainingMillis(), 5.0);
  EXPECT_DOUBLE_EQ(Deadline::Tightest(far, near).RemainingMillis(), 5.0);
  // Any finite deadline beats infinite; both infinite stays infinite.
  EXPECT_TRUE(Deadline::Tightest(far, infinite).IsFinite());
  EXPECT_TRUE(Deadline::Tightest(infinite, near).IsFinite());
  EXPECT_FALSE(Deadline::Tightest(infinite, Deadline::Infinite()).IsFinite());
  // The winner keeps its own clock so later Expired() calls track it.
  Deadline winner = Deadline::Tightest(infinite, near);
  clock.AdvanceMillis(5.0);
  EXPECT_TRUE(winner.Expired());
}

// ---------------------------------------------------------------------
// ThreadPool lifetime.
// ---------------------------------------------------------------------

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_TRUE(pool.shutdown_started());
  EXPECT_EQ(pool.num_threads(), 0u);
  // A future from a post-shutdown Submit could never become ready
  // (no worker will ever run the task), so the call must fail loudly
  // instead of handing back a guaranteed hang.
  EXPECT_THROW(pool.Submit([] { return 1; }), std::runtime_error);
}

TEST(ThreadPoolTest, ShutdownDrainsAlreadyQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Shutdown();
    EXPECT_EQ(ran.load(), 64);
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, ConcurrentShutdownIsSafe) {
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([] {});
  }
  std::vector<std::thread> closers;
  for (int i = 0; i < 4; ++i) {
    closers.emplace_back([&pool] { pool.Shutdown(); });
  }
  for (std::thread& closer : closers) closer.join();
  EXPECT_EQ(pool.num_threads(), 0u);
}

TEST(ThreadPoolTest, ParallelForRunsInlineAfterShutdown) {
  ThreadPool pool(2);
  pool.Shutdown();
  // num_threads() is 0 now; ParallelFor must degrade to the calling
  // thread rather than submitting to the dead pool.
  std::vector<int> hits(100, 0);
  ParallelFor(&pool, hits.size(), 7,
              [&hits](size_t, size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) hits[i] += 1;
              });
  for (int hit : hits) EXPECT_EQ(hit, 1);
}

}  // namespace
}  // namespace muve
