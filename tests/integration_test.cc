#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/greedy_planner.h"
#include "core/ilp_planner.h"
#include "exec/engine.h"
#include "exec/presentation.h"
#include "muve/muve_engine.h"
#include "nlq/candidate_generator.h"
#include "nlq/schema_index.h"
#include "nlq/translator.h"
#include "speech/speech_simulator.h"
#include "user/user_simulator.h"
#include "workload/datasets.h"
#include "workload/query_generator.h"

namespace muve {
namespace {

/// End-to-end invariants across the full pipeline, on every dataset.
class DatasetPipelineTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(DatasetPipelineTest, GroundTruthRecoverableThroughCleanPipeline) {
  auto table = *workload::MakeDataset(GetParam(), 5000, 33);
  MuveEngine engine(table);
  Rng rng(34);
  workload::QueryGeneratorOptions gen_options;
  gen_options.min_predicates = 1;
  gen_options.max_predicates = 1;
  gen_options.count_star_probability = 0.0;

  size_t covered = 0;
  const size_t trials = 8;
  for (size_t i = 0; i < trials; ++i) {
    auto truth = workload::RandomQuery(*table, &rng, gen_options);
    ASSERT_TRUE(truth.ok());
    auto answer = engine.Ask(Request::Text(nlq::VerbalizeQuery(*truth)));
    if (!answer.ok()) continue;
    const std::string truth_key = truth->CanonicalKey();
    for (size_t c = 0; c < answer->candidates.size(); ++c) {
      if (answer->candidates[c].query.CanonicalKey() != truth_key) {
        continue;
      }
      if (answer->plan.multiplot.FindCandidate(c).has_value()) {
        ++covered;
      }
      break;
    }
  }
  // With a clean utterance, the correct interpretation should land on
  // the screen for the clear majority of queries.
  EXPECT_GE(covered, trials * 6 / 10) << covered << "/" << trials;
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetPipelineTest,
                         ::testing::Values("ads", "dob", "nyc311",
                                           "flights"));

TEST(IntegrationTest, NoisyPipelineBenefitsFromMultiplots) {
  // The headline claim: under ASR noise, the multiplot covers the true
  // interpretation far more often than the single top-1 query does.
  auto table = *workload::MakeDataset("nyc311", 5000, 35);
  MuveOptions muve_options;
  muve_options.planner.geometry.width_px = 1536.0;  // Desktop screen.
  muve_options.planner.geometry.max_rows = 2;
  MuveEngine engine(table, muve_options);
  Rng rng(36);
  speech::SpeechNoiseOptions noise;
  noise.substitution_rate = 0.25;
  noise.deletion_rate = 0.0;
  workload::QueryGeneratorOptions gen_options;
  gen_options.min_predicates = 1;
  gen_options.max_predicates = 1;
  gen_options.count_star_probability = 1.0;  // COUNT(*): focus on values.

  size_t top1_correct = 0;
  size_t multiplot_correct = 0;
  size_t answered = 0;
  const size_t trials = 40;
  for (size_t i = 0; i < trials; ++i) {
    auto truth = workload::RandomQuery(*table, &rng, gen_options);
    ASSERT_TRUE(truth.ok());
    auto answer =
        engine.Ask(Request::Voice(nlq::VerbalizeQuery(*truth), &rng, noise));
    if (!answer.ok()) continue;
    ++answered;
    const std::string truth_key = truth->CanonicalKey();
    if (answer->base_query.CanonicalKey() == truth_key) ++top1_correct;
    for (size_t c = 0; c < answer->candidates.size(); ++c) {
      if (answer->candidates[c].query.CanonicalKey() == truth_key &&
          answer->plan.multiplot.FindCandidate(c).has_value()) {
        ++multiplot_correct;
        break;
      }
    }
  }
  ASSERT_GT(answered, trials / 2);
  EXPECT_GE(multiplot_correct, top1_correct);
  EXPECT_GT(multiplot_correct, answered / 3);
}

TEST(IntegrationTest, GreedyAndIlpAgreeOnEasyInstances) {
  // When the screen is large enough to show everything, both solvers
  // should find (nearly) the same cost.
  auto table = *workload::MakeDataset("nyc311", 2000, 37);
  auto index = std::make_shared<nlq::SchemaIndex>(table);
  nlq::CandidateGenerator generator(index);
  db::AggregateQuery base;
  base.table = "nyc311";
  base.function = db::AggregateFunction::kCount;
  base.predicates = {
      db::Predicate::Equals("borough", db::Value("queens"))};
  nlq::CandidateGeneratorOptions gen_options;
  gen_options.max_candidates = 8;
  core::CandidateSet set = generator.Generate(base, 1.0, gen_options);

  core::PlannerConfig config;
  config.geometry.width_px = 4000.0;
  config.timeout_ms = 10000.0;
  core::GreedyPlanner greedy;
  core::IlpPlanner ilp;
  auto greedy_plan = greedy.Plan(set, config);
  auto ilp_plan = ilp.Plan(set, config);
  ASSERT_TRUE(greedy_plan.ok());
  ASSERT_TRUE(ilp_plan.ok());
  EXPECT_LE(ilp_plan->expected_cost, greedy_plan->expected_cost + 1e-6);
  EXPECT_LT(greedy_plan->expected_cost,
            1.6 * ilp_plan->expected_cost + 1.0);
}

TEST(IntegrationTest, UserStudyLoopOnPlannedMultiplot) {
  // Close the loop: plan, execute, then let simulated users search the
  // real multiplot; expected times should be in the ballpark of the
  // model's prediction.
  auto table = *workload::MakeDataset("nyc311", 5000, 38);
  MuveEngine engine(table);
  auto answer = engine.Ask(Request::Text("how many complaints in brooklyn"));
  ASSERT_TRUE(answer.ok());

  user::UserBehaviorModel behavior;
  behavior.noise_sigma = 0.25;
  user::UserSimulator simulator(behavior);
  Rng rng(39);
  double total = 0.0;
  const int trials = 300;
  for (int i = 0; i < trials; ++i) {
    total +=
        simulator.FindTarget(answer->plan.multiplot, 0, &rng).millis;
  }
  const double mean = total / trials;
  // Model prediction for the highlighted-or-visualized candidate 0,
  // minus base latency; sanity band of 4x either way.
  const double predicted = answer->plan.expected_cost;
  EXPECT_GT(mean, behavior.base_latency_ms);
  EXPECT_LT(mean, 4.0 * predicted + 8.0 * behavior.base_latency_ms);
}

TEST(IntegrationTest, PresentationPipelineOnFlights) {
  Rng rng(40);
  auto table = workload::MakeFlightsTable(40000, &rng);
  exec::Engine engine(table);
  auto index = std::make_shared<nlq::SchemaIndex>(table);
  nlq::CandidateGenerator generator(index);
  db::AggregateQuery base;
  base.table = "flights";
  base.function = db::AggregateFunction::kAvg;
  base.aggregate_column = "arr_delay";
  base.predicates = {db::Predicate::Equals("origin", db::Value("boston"))};
  core::CandidateSet set = generator.Generate(base);

  exec::PresentationOptions options;
  options.dynamic_threshold_ms = 100.0;
  for (exec::PresentationMethod method :
       {exec::PresentationMethod::kGreedy,
        exec::PresentationMethod::kApprox1,
        exec::PresentationMethod::kApproxDynamic}) {
    auto outcome =
        exec::RunPresentation(method, &engine, set, 0, options);
    ASSERT_TRUE(outcome.ok()) << exec::PresentationMethodName(method);
    EXPECT_TRUE(outcome->correct_shown);
    EXPECT_TRUE(std::isfinite(outcome->first_correct_ms));
  }
}

}  // namespace
}  // namespace muve
