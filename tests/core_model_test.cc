#include <gtest/gtest.h>

#include <cmath>

#include "core/candidate.h"
#include "core/cost_model.h"
#include "core/multiplot.h"
#include "core/query_template.h"
#include "db/query.h"

namespace muve::core {
namespace {

db::AggregateQuery MakeQuery(
    db::AggregateFunction fn, const std::string& agg_column,
    const std::vector<std::pair<std::string, std::string>>& predicates) {
  db::AggregateQuery query;
  query.table = "t";
  query.function = fn;
  query.aggregate_column = agg_column;
  for (const auto& [column, value] : predicates) {
    query.predicates.push_back(
        db::Predicate::Equals(column, db::Value(value)));
  }
  return query;
}

// ---------------------------------------------------------------------
// CandidateSet.
// ---------------------------------------------------------------------

TEST(CandidateSetTest, NormalizeAndSort) {
  CandidateSet set;
  set.Add(MakeQuery(db::AggregateFunction::kCount, "", {{"a", "x"}}), 1.0);
  set.Add(MakeQuery(db::AggregateFunction::kCount, "", {{"a", "y"}}), 3.0);
  set.Normalize();
  EXPECT_NEAR(set.TotalProbability(), 1.0, 1e-12);
  set.SortByProbability();
  EXPECT_GT(set[0].probability, set[1].probability);
  EXPECT_NEAR(set[0].probability, 0.75, 1e-12);
}

TEST(CandidateSetTest, DeduplicateMergesMass) {
  CandidateSet set;
  const auto query =
      MakeQuery(db::AggregateFunction::kCount, "", {{"a", "x"}});
  set.Add(query, 0.4);
  set.Add(query, 0.2);
  set.Add(MakeQuery(db::AggregateFunction::kCount, "", {{"a", "y"}}), 0.4);
  set.Deduplicate();
  EXPECT_EQ(set.size(), 2u);
  EXPECT_NEAR(set[0].probability, 0.6, 1e-12);
}

TEST(CandidateSetTest, NormalizeEmptyIsNoop) {
  CandidateSet set;
  set.Normalize();
  EXPECT_TRUE(set.empty());
}

// ---------------------------------------------------------------------
// Templates (function T(q), Algorithm 2).
// ---------------------------------------------------------------------

TEST(TemplateTest, DeriveCountStarTemplates) {
  // COUNT(*) with 2 predicates: 1 function slot + 2 value + 2 column
  // slots = 5 (no aggregate-column slot).
  const auto query = MakeQuery(db::AggregateFunction::kCount, "",
                               {{"city", "boston"}, {"kind", "bus"}});
  const auto templates = DeriveTemplates(query);
  EXPECT_EQ(templates.size(), 5u);
}

TEST(TemplateTest, DeriveAggColumnTemplates) {
  // AVG(delay) with 1 predicate: function + agg column + value + column
  // slots = 4.
  const auto query = MakeQuery(db::AggregateFunction::kAvg, "delay",
                               {{"city", "boston"}});
  const auto templates = DeriveTemplates(query);
  EXPECT_EQ(templates.size(), 4u);

  bool has_value_slot = false;
  for (const auto& inst : templates) {
    if (inst.query_template.slot == SlotKind::kPredicateValue) {
      has_value_slot = true;
      EXPECT_EQ(inst.slot_label, "boston");
      EXPECT_NE(inst.query_template.title.find("city = ?"),
                std::string::npos);
    }
  }
  EXPECT_TRUE(has_value_slot);
}

TEST(TemplateTest, QueriesDifferingInValueShareValueTemplate) {
  const auto a = MakeQuery(db::AggregateFunction::kCount, "",
                           {{"city", "boston"}});
  const auto b = MakeQuery(db::AggregateFunction::kCount, "",
                           {{"city", "austin"}});
  std::string key_a;
  std::string key_b;
  for (const auto& inst : DeriveTemplates(a)) {
    if (inst.query_template.slot == SlotKind::kPredicateValue) {
      key_a = inst.query_template.key;
    }
  }
  for (const auto& inst : DeriveTemplates(b)) {
    if (inst.query_template.slot == SlotKind::kPredicateValue) {
      key_b = inst.query_template.key;
    }
  }
  EXPECT_EQ(key_a, key_b);
}

TEST(TemplateTest, TemplateKeyIsPredicateOrderInsensitive) {
  const auto a = MakeQuery(db::AggregateFunction::kCount, "",
                           {{"city", "boston"}, {"kind", "bus"}});
  auto b = a;
  std::swap(b.predicates[0], b.predicates[1]);
  const auto ta = DeriveTemplates(a);
  const auto tb = DeriveTemplates(b);
  // The function-slot templates must agree.
  EXPECT_EQ(ta[0].query_template.key, tb[0].query_template.key);
}

TEST(TemplateTest, GroupByTemplateGroupsAndSorts) {
  CandidateSet set;
  set.Add(MakeQuery(db::AggregateFunction::kCount, "", {{"city", "boston"}}),
          0.6);
  set.Add(MakeQuery(db::AggregateFunction::kCount, "", {{"city", "austin"}}),
          0.3);
  set.Add(MakeQuery(db::AggregateFunction::kCount, "", {{"kind", "bus"}}),
          0.1);
  const auto groups = GroupByTemplate(set);
  ASSERT_FALSE(groups.empty());
  // The largest-mass group holds the two city queries (value slot).
  const TemplateGroup& top = groups.front();
  EXPECT_EQ(top.member_queries.size(), 2u);
  // Members sorted by probability: boston (0.6) first.
  EXPECT_EQ(top.member_queries[0], 0u);
  EXPECT_EQ(top.member_labels[0], "boston");
}

TEST(TemplateTest, SameQueryNotDuplicatedInGroup) {
  CandidateSet set;
  const auto query =
      MakeQuery(db::AggregateFunction::kCount, "", {{"city", "boston"}});
  set.Add(query, 0.5);
  for (const auto& group : GroupByTemplate(set)) {
    EXPECT_EQ(group.member_queries.size(), 1u);
  }
}

// ---------------------------------------------------------------------
// Multiplot stats / validation.
// ---------------------------------------------------------------------

Multiplot TwoPlotMultiplot() {
  Multiplot multiplot;
  multiplot.rows.resize(1);
  Plot plot_a;
  plot_a.query_template.key = "a";
  plot_a.query_template.title = "A";
  plot_a.bars = {{0, "x", true, 1.0, false}, {1, "y", false, 2.0, false}};
  Plot plot_b;
  plot_b.query_template.key = "b";
  plot_b.query_template.title = "B";
  plot_b.bars = {{2, "z", false, 3.0, false}};
  multiplot.rows[0] = {plot_a, plot_b};
  return multiplot;
}

CandidateSet ThreeCandidates() {
  CandidateSet set;
  set.Add(MakeQuery(db::AggregateFunction::kCount, "", {{"a", "x"}}), 0.5);
  set.Add(MakeQuery(db::AggregateFunction::kCount, "", {{"a", "y"}}), 0.3);
  set.Add(MakeQuery(db::AggregateFunction::kCount, "", {{"a", "z"}}), 0.1);
  return set;
}

TEST(MultiplotTest, ComputeStats) {
  const Multiplot multiplot = TwoPlotMultiplot();
  const MultiplotStats stats = multiplot.ComputeStats(ThreeCandidates());
  EXPECT_EQ(stats.num_bars, 3u);
  EXPECT_EQ(stats.num_red_bars, 1u);
  EXPECT_EQ(stats.num_plots, 2u);
  EXPECT_EQ(stats.num_plots_with_red, 1u);
  EXPECT_NEAR(stats.prob_highlighted, 0.5, 1e-12);
  EXPECT_NEAR(stats.prob_visualized, 0.4, 1e-12);
  EXPECT_NEAR(stats.prob_missing, 0.1, 1e-12);
}

TEST(MultiplotTest, FindCandidate) {
  const Multiplot multiplot = TwoPlotMultiplot();
  auto location = multiplot.FindCandidate(2);
  ASSERT_TRUE(location.has_value());
  EXPECT_EQ(location->plot, 1u);
  EXPECT_FALSE(multiplot.FindCandidate(99).has_value());
}

TEST(MultiplotTest, ValidateAcceptsFitting) {
  const Multiplot multiplot = TwoPlotMultiplot();
  ScreenGeometry geometry;
  geometry.max_rows = 1;
  geometry.width_px = 2000.0;
  EXPECT_TRUE(multiplot.Validate(geometry).ok());
}

TEST(MultiplotTest, ValidateRejectsTooManyRows) {
  Multiplot multiplot = TwoPlotMultiplot();
  multiplot.rows.emplace_back();
  ScreenGeometry geometry;
  geometry.max_rows = 1;
  EXPECT_FALSE(multiplot.Validate(geometry).ok());
}

TEST(MultiplotTest, ValidateRejectsOverflowingRow) {
  const Multiplot multiplot = TwoPlotMultiplot();
  ScreenGeometry geometry;
  geometry.max_rows = 1;
  geometry.width_px = 80.0;  // Two units: cannot fit both plots.
  EXPECT_FALSE(multiplot.Validate(geometry).ok());
}

TEST(MultiplotTest, ValidateRejectsDuplicateCandidate) {
  Multiplot multiplot = TwoPlotMultiplot();
  multiplot.rows[0][1].bars.push_back({0, "dup", false, 1.0, false});
  ScreenGeometry geometry;
  geometry.max_rows = 1;
  geometry.width_px = 2000.0;
  EXPECT_FALSE(multiplot.Validate(geometry).ok());
}

TEST(MultiplotTest, ValidateRejectsEmptyPlot) {
  Multiplot multiplot = TwoPlotMultiplot();
  multiplot.rows[0][0].bars.clear();
  ScreenGeometry geometry;
  geometry.max_rows = 1;
  geometry.width_px = 2000.0;
  EXPECT_FALSE(multiplot.Validate(geometry).ok());
}

TEST(ScreenGeometryTest, WidthUnits) {
  ScreenGeometry geometry;
  geometry.width_px = 750.0;
  geometry.bar_width_px = 40.0;
  EXPECT_EQ(geometry.WidthUnits(), 18);
}

TEST(ScreenGeometryTest, PlotWidthGrowsWithBarsAndTitle) {
  ScreenGeometry geometry;
  QueryTemplate short_title;
  short_title.title = "A";
  QueryTemplate long_title;
  long_title.title = "A very long template title here";
  EXPECT_LT(geometry.PlotBaseUnits(short_title),
            geometry.PlotBaseUnits(long_title));
  EXPECT_EQ(geometry.PlotWidthUnits(short_title, 5),
            geometry.PlotBaseUnits(short_title) + 5);
}

// ---------------------------------------------------------------------
// Cost model (paper §4.2).
// ---------------------------------------------------------------------

TEST(CostModelTest, FormulaMatchesDefinition) {
  UserCostModel model;
  model.bar_cost_ms = 100.0;
  model.plot_cost_ms = 400.0;
  model.miss_cost_ms = 10000.0;
  MultiplotStats stats;
  stats.num_bars = 6;
  stats.num_red_bars = 2;
  stats.num_plots = 3;
  stats.num_plots_with_red = 1;
  stats.prob_highlighted = 0.5;
  stats.prob_visualized = 0.3;
  stats.prob_missing = 0.2;
  const double d_r = 2 * 100.0 / 2 + 1 * 400.0 / 2;            // 300.
  const double d_v = 2 * d_r + 4 * 100.0 / 2 + 2 * 400.0 / 2;  // 1200.
  EXPECT_NEAR(model.HighlightedCost(2, 1), d_r, 1e-12);
  EXPECT_NEAR(model.VisualizedCost(6, 2, 3, 1), d_v, 1e-12);
  EXPECT_NEAR(model.ExpectedCost(stats),
              0.5 * d_r + 0.3 * d_v + 0.2 * 10000.0, 1e-9);
}

TEST(CostModelTest, EmptyMultiplotCostsMiss) {
  UserCostModel model;
  Multiplot empty;
  empty.rows.resize(1);
  EXPECT_NEAR(model.ExpectedCost(empty, ThreeCandidates()),
              model.miss_cost_ms, 1e-9);
}

TEST(CostModelTest, HighlightingCorrectResultHelps) {
  UserCostModel model;
  Multiplot plain = TwoPlotMultiplot();
  plain.rows[0][0].bars[0].highlighted = false;
  Multiplot red = TwoPlotMultiplot();  // Candidate 0 (p=0.5) highlighted.
  const CandidateSet set = ThreeCandidates();
  EXPECT_LT(model.ExpectedCost(red, set), model.ExpectedCost(plain, set));
}

TEST(CostModelTest, ShowingLikelyResultBeatsMissing) {
  UserCostModel model;
  const CandidateSet set = ThreeCandidates();
  const Multiplot multiplot = TwoPlotMultiplot();
  EXPECT_LT(model.ExpectedCost(multiplot, set), model.EmptyCost());
  EXPECT_GT(model.CostSavings(multiplot, set), 0.0);
}

TEST(CostModelTest, VisualizedAlwaysCostsAtLeastHighlighted) {
  // D_V >= D_R for any statistics (used in the proof of Theorem 2).
  UserCostModel model;
  for (size_t bars = 1; bars <= 8; ++bars) {
    for (size_t red = 0; red <= bars; ++red) {
      for (size_t plots = 1; plots <= 3; ++plots) {
        for (size_t red_plots = 0; red_plots <= plots; ++red_plots) {
          EXPECT_GE(model.VisualizedCost(bars, red, plots, red_plots),
                    model.HighlightedCost(red, red_plots));
        }
      }
    }
  }
}

}  // namespace
}  // namespace muve::core
