#ifndef MUVE_WORKLOAD_LOAD_GENERATOR_H_
#define MUVE_WORKLOAD_LOAD_GENERATOR_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "db/table.h"
#include "serve/server.h"
#include "workload/query_generator.h"

namespace muve::workload {

/// A load-generation campaign against a serve::Server.
struct LoadOptions {
  /// Closed loop: `num_clients` callers each keep exactly one request in
  /// flight (submit, wait, repeat) — throughput self-limits to what the
  /// server sustains. Open loop: requests arrive on a fixed schedule at
  /// `offered_qps` regardless of completions — the regime where an
  /// overloaded server must shed rather than queue unboundedly.
  enum class Mode { kClosedLoop, kOpenLoop };

  Mode mode = Mode::kClosedLoop;
  size_t num_requests = 200;
  /// Closed-loop concurrency (ignored in open loop).
  size_t num_clients = 4;
  /// Open-loop arrival rate (ignored in closed loop).
  double offered_qps = 100.0;
  /// Open loop: exponential (Poisson) interarrivals when true, a fixed
  /// 1/offered_qps spacing when false.
  bool poisson_arrivals = true;
  /// Requests are spread round-robin-randomly over this many sessions.
  size_t num_sessions = 8;
  /// Per-request end-to-end budget; infinity = unbounded requests.
  double deadline_millis = std::numeric_limits<double>::infinity();
  /// Fraction of requests submitted as RequestClass::kReplay.
  double replay_fraction = 0.0;
  /// Probability a request reuses an earlier utterance instead of a
  /// fresh random query — repeats exercise the session caches and give
  /// concurrent single-flight collisions something to coalesce.
  double repeat_probability = 0.3;
  /// Tenant id stamped on every request of this campaign (empty = the
  /// default tenant). Concurrent campaigns with different tenant ids
  /// against one server exercise quota clipping and weighted fair
  /// dequeue — the tenant-isolation benchmark runs exactly that.
  std::string tenant_id;
  uint64_t seed = 1;
  /// Streaming ingest: > 0 runs one writer thread for the duration of
  /// the campaign, appending synthesized rows to the serving table at
  /// this rate (rows/second; infinity = unpaced, append as fast as the
  /// table absorbs). Rows are drawn from the table's own value domains,
  /// deterministically in `seed`. Requires the mutable RunLoad overload
  /// — the const overload rejects a nonzero rate.
  double ingest_qps = 0.0;
  /// Streaming ingest: the writer seals a columnar run every this many
  /// appends (0 leaves sealing to the table's own flush threshold).
  size_t ingest_flush_every = 256;
  /// Shape of the generated ground-truth queries.
  QueryGeneratorOptions query;
};

/// Aggregated outcome of one campaign.
struct LoadReport {
  size_t requests = 0;
  size_t completed = 0;
  /// Overloaded outcomes: admission rejections and dispatch sheds.
  size_t shed = 0;
  /// Non-Overloaded failures (pipeline errors, server stopped).
  size_t errors = 0;
  double duration_seconds = 0.0;
  /// Arrival rate actually driven (scheduled rate in open loop,
  /// requests/duration in closed loop).
  double offered_qps = 0.0;
  /// Completions per second of wall clock.
  double sustained_qps = 0.0;
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double mean_latency_ms = 0.0;
  /// Translator-stage wall clock over completed requests. Requests whose
  /// front half replayed from the plan memo (or rode a single-flight
  /// leader) skipped translation and count as 0 here, so these track the
  /// phonetic front half's cost as the caches see it, not the cold cost.
  double translate_p50_ms = 0.0;
  double translate_p99_ms = 0.0;
  double translate_mean_ms = 0.0;
  double shed_ratio = 0.0;  ///< shed / requests.
  /// Among completed finite-deadline requests: answered in budget.
  double deadline_hit_ratio = 1.0;
  /// Completions served from a single-flight leader's execution.
  size_t shared_answers = 0;
  double single_flight_hit_ratio = 0.0;  ///< shared / completed.
  /// Degradation rungs of completed answers (exact / degraded-plan /
  /// base-only).
  size_t rung_histogram[3] = {0, 0, 0};
  /// Streaming ingest (ingest_qps > 0): rows appended while the
  /// campaign ran, the achieved append rate, and runs the writer sealed.
  size_t ingested_rows = 0;
  double ingest_sustained_qps = 0.0;
  size_t ingest_flushes = 0;
  /// Server funnel counters, as deltas over the campaign.
  serve::ServerStats server;

  /// Renders as a JSON object (no trailing newline), e.g. for embedding
  /// in BENCH_server.json. `indent` prefixes every line.
  std::string ToJson(const std::string& indent = "") const;
};

/// Runs one campaign: generates `num_requests` natural-language requests
/// from random ground-truth queries against `table` (the server's own
/// table), drives `server` in the configured mode, and aggregates the
/// outcomes. The schedule and query mix are deterministic in
/// `options.seed`; actual interleaving under concurrency is not.
Result<LoadReport> RunLoad(serve::Server* server, const db::Table& table,
                           const LoadOptions& options);

/// As above against the mutable serving table: when options.ingest_qps
/// is nonzero, one writer thread streams appends into `table` — the
/// single-writer side of the snapshot contract — for the duration of the
/// campaign, so reads race live ingest, run seals, and compaction.
Result<LoadReport> RunLoad(serve::Server* server, db::Table* table,
                           const LoadOptions& options);

}  // namespace muve::workload

#endif  // MUVE_WORKLOAD_LOAD_GENERATOR_H_
