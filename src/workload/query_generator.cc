#include "workload/query_generator.h"

#include <algorithm>

namespace muve::workload {

Result<db::AggregateQuery> RandomQuery(const db::Table& table, Rng* rng,
                                       const QueryGeneratorOptions& options) {
  db::AggregateQuery query;
  query.table = table.name();

  // Aggregate: COUNT(*) or a random function over a random numeric column.
  std::vector<std::string> numeric_columns =
      table.ColumnNamesOfType(db::ValueType::kInt64);
  for (const std::string& name :
       table.ColumnNamesOfType(db::ValueType::kDouble)) {
    numeric_columns.push_back(name);
  }
  if (numeric_columns.empty() ||
      rng->Bernoulli(options.count_star_probability)) {
    query.function = db::AggregateFunction::kCount;
    query.aggregate_column.clear();
  } else {
    query.function = rng->Choice(db::AllAggregateFunctions());
    if (query.function == db::AggregateFunction::kCount) {
      query.aggregate_column.clear();
    } else {
      query.aggregate_column = rng->Choice(numeric_columns);
    }
  }

  // Predicates on distinct string columns.
  std::vector<std::string> string_columns =
      table.ColumnNamesOfType(db::ValueType::kString);
  if (string_columns.empty()) {
    return Status::FailedPrecondition(
        "table has no string columns for predicates");
  }
  rng->Shuffle(&string_columns);
  const size_t max_predicates =
      std::min(options.max_predicates, string_columns.size());
  const size_t min_predicates =
      std::min(options.min_predicates, max_predicates);
  const size_t num_predicates = static_cast<size_t>(rng->UniformInRange(
      static_cast<int64_t>(min_predicates),
      static_cast<int64_t>(max_predicates)));

  for (size_t i = 0; i < num_predicates; ++i) {
    const std::vector<std::string> values =
        table.StringValues(string_columns[i]);
    if (values.empty()) continue;
    const std::string& value = rng->Choice(values);
    query.predicates.push_back(
        db::Predicate::Equals(string_columns[i], db::Value(value)));
  }
  if (query.predicates.empty()) {
    return Status::FailedPrecondition("no predicates generated (empty "
                                      "dictionaries)");
  }
  return query;
}

Result<db::AggregateQuery> RandomQuery(const db::Table& table, Rng* rng) {
  return RandomQuery(table, rng, QueryGeneratorOptions());
}

}  // namespace muve::workload
