#ifndef MUVE_WORKLOAD_QUERY_GENERATOR_H_
#define MUVE_WORKLOAD_QUERY_GENERATOR_H_

#include <cstddef>

#include "common/rng.h"
#include "common/status.h"
#include "db/query.h"
#include "db/table.h"

namespace muve::workload {

/// Controls for random query generation (paper §9.2: "randomly generating
/// up to five equality predicates by randomly picking columns and
/// constants", uniform distribution).
struct QueryGeneratorOptions {
  size_t min_predicates = 1;
  size_t max_predicates = 5;
  /// Probability of generating COUNT(*) instead of an aggregate over a
  /// numeric column.
  double count_star_probability = 0.2;
};

/// Generates one random aggregation query against `table`: a uniformly
/// chosen aggregate (function + numeric column), and equality predicates
/// on distinct uniformly chosen string columns with uniformly chosen
/// constants from each column's active domain.
Result<db::AggregateQuery> RandomQuery(const db::Table& table, Rng* rng,
                                       const QueryGeneratorOptions& options);

/// Convenience overload with default options.
Result<db::AggregateQuery> RandomQuery(const db::Table& table, Rng* rng);

}  // namespace muve::workload

#endif  // MUVE_WORKLOAD_QUERY_GENERATOR_H_
