#ifndef MUVE_WORKLOAD_DATASETS_H_
#define MUVE_WORKLOAD_DATASETS_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "db/relation.h"
#include "db/table.h"

namespace muve::workload {

/// Names of the four synthetic datasets mirroring the paper's evaluation
/// data (§9.1): "ads" (advertisement contacts from an industry partner),
/// "dob" (NYC Department of Buildings job filings), "nyc311" (NYC 311
/// service requests) and "flights" (flight delays, the largest).
const std::vector<std::string>& DatasetNames();

/// Builds one of the synthetic datasets with `num_rows` rows.
///
/// The generators preserve what the experiments depend on: single-table
/// schemas with several categorical (string) predicate columns whose
/// vocabularies contain phonetically confusable entries (so ASR noise
/// yields plausible alternative queries), several numeric aggregation
/// columns, and a row count that scales processing cost.
Result<std::shared_ptr<db::Table>> MakeDataset(std::string_view name,
                                               size_t num_rows,
                                               uint64_t seed);

/// Advertisement-contacts table.
std::shared_ptr<db::Table> MakeAdsTable(size_t num_rows, Rng* rng);

/// NYC Department of Buildings job-filings table.
std::shared_ptr<db::Table> MakeDobTable(size_t num_rows, Rng* rng);

/// NYC 311 service-requests table.
std::shared_ptr<db::Table> Make311Table(size_t num_rows, Rng* rng);

/// Flight-delays table (the paper's largest dataset).
std::shared_ptr<db::Table> MakeFlightsTable(size_t num_rows, Rng* rng);

/// All schema element names and categorical values of a relation (single
/// or sharded table): the vocabulary MUVE indexes phonetically (paper §3).
std::vector<std::string> BuildVocabulary(const db::Relation& table);

}  // namespace muve::workload

#endif  // MUVE_WORKLOAD_DATASETS_H_
