#include "workload/datasets.h"

#include <cmath>

#include "common/strings.h"

namespace muve::workload {

namespace {

using db::ColumnSpec;
using db::Table;
using db::Value;
using db::ValueType;

/// Draws a category index with a mildly skewed (Zipf-like) distribution,
/// so predicates on frequent values select many rows and on rare values
/// few — matching real categorical data.
size_t SkewedIndex(size_t n, Rng* rng) {
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) {
    weights[i] = 1.0 / static_cast<double>(i + 1);
  }
  return rng->Discrete(weights);
}

// Vocabularies deliberately contain phonetically confusable entries
// (e.g. queens/quincy, boston/austin, heating/heeding) so that
// noisy speech recognition produces plausible alternative predicates.

const std::vector<std::string>& Boroughs() {
  static const std::vector<std::string> kValues = {
      "brooklyn", "bronx",  "manhattan", "queens",
      "quincy",   "bergen", "brookline", "staten island"};
  return kValues;
}

std::shared_ptr<Table> MustCreate(const std::string& name,
                                  const std::vector<ColumnSpec>& schema) {
  auto table = Table::Create(name, schema);
  // Static schemas below are valid by construction.
  return *table;
}

}  // namespace

const std::vector<std::string>& DatasetNames() {
  static const std::vector<std::string> kNames = {"ads", "dob", "nyc311",
                                                  "flights"};
  return kNames;
}

std::shared_ptr<Table> MakeAdsTable(size_t num_rows, Rng* rng) {
  static const std::vector<std::string> kContactTypes = {
      "lead", "client", "prospect", "partner", "reseller", "press"};
  static const std::vector<std::string> kIndustries = {
      "finance", "fashion",   "pharma",  "farming",
      "retail",  "insurance", "airline", "auto"};
  static const std::vector<std::string> kRegions = {
      "northeast", "northwest", "southeast", "southwest", "midwest",
      "mideast"};
  static const std::vector<std::string> kChannels = {
      "email", "phone", "social", "search", "display", "mail"};

  auto table = MustCreate(
      "ads", {{"contact_type", ValueType::kString},
              {"industry", ValueType::kString},
              {"region", ValueType::kString},
              {"channel", ValueType::kString},
              {"budget", ValueType::kDouble},
              {"impressions", ValueType::kInt64},
              {"clicks", ValueType::kInt64}});
  for (size_t r = 0; r < num_rows; ++r) {
    const int64_t impressions = rng->UniformInRange(100, 100000);
    const int64_t clicks =
        static_cast<int64_t>(impressions * rng->UniformDouble(0.001, 0.08));
    Status st = table->AppendRow(
        {Value(kContactTypes[SkewedIndex(kContactTypes.size(), rng)]),
         Value(kIndustries[SkewedIndex(kIndustries.size(), rng)]),
         Value(kRegions[SkewedIndex(kRegions.size(), rng)]),
         Value(kChannels[SkewedIndex(kChannels.size(), rng)]),
         Value(rng->LogNormal(7.0, 1.2)), Value(impressions),
         Value(clicks)});
    (void)st;
  }
  return table;
}

std::shared_ptr<Table> MakeDobTable(size_t num_rows, Rng* rng) {
  static const std::vector<std::string> kJobTypes = {
      "alteration", "new building", "demolition", "renovation",
      "elevation",  "excavation",   "plumbing",   "signage"};
  static const std::vector<std::string> kStatuses = {
      "filed", "approved", "permitted", "completed", "withdrawn",
      "failed"};
  static const std::vector<std::string> kOwnerTypes = {
      "individual", "corporation", "partnership", "condo", "city",
      "state"};

  auto table = MustCreate(
      "dob", {{"borough", ValueType::kString},
              {"job_type", ValueType::kString},
              {"job_status", ValueType::kString},
              {"owner_type", ValueType::kString},
              {"existing_stories", ValueType::kInt64},
              {"proposed_stories", ValueType::kInt64},
              {"initial_cost", ValueType::kDouble}});
  for (size_t r = 0; r < num_rows; ++r) {
    const int64_t existing = rng->UniformInRange(1, 40);
    Status st = table->AppendRow(
        {Value(Boroughs()[SkewedIndex(Boroughs().size(), rng)]),
         Value(kJobTypes[SkewedIndex(kJobTypes.size(), rng)]),
         Value(kStatuses[SkewedIndex(kStatuses.size(), rng)]),
         Value(kOwnerTypes[SkewedIndex(kOwnerTypes.size(), rng)]),
         Value(existing),
         Value(existing + rng->UniformInRange(-2, 10)),
         Value(rng->LogNormal(11.0, 1.5))});
    (void)st;
  }
  return table;
}

std::shared_ptr<Table> Make311Table(size_t num_rows, Rng* rng) {
  static const std::vector<std::string> kComplaints = {
      "noise",        "heating",     "heeding",  "parking",
      "water leak",   "water lick",  "rodents",  "graffiti",
      "street light", "straight light"};
  static const std::vector<std::string> kAgencies = {
      "nypd", "dep", "dob", "dot", "hpd", "dsny"};
  static const std::vector<std::string> kStatuses = {
      "open", "closed", "pending", "assigned", "escalated"};
  static const std::vector<std::string> kChannels = {
      "phone", "online", "mobile", "walk in"};

  auto table = MustCreate(
      "nyc311", {{"borough", ValueType::kString},
                 {"complaint_type", ValueType::kString},
                 {"agency", ValueType::kString},
                 {"status", ValueType::kString},
                 {"channel", ValueType::kString},
                 {"open_hours", ValueType::kDouble},
                 {"precinct", ValueType::kInt64}});
  for (size_t r = 0; r < num_rows; ++r) {
    Status st = table->AppendRow(
        {Value(Boroughs()[SkewedIndex(Boroughs().size(), rng)]),
         Value(kComplaints[SkewedIndex(kComplaints.size(), rng)]),
         Value(kAgencies[SkewedIndex(kAgencies.size(), rng)]),
         Value(kStatuses[SkewedIndex(kStatuses.size(), rng)]),
         Value(kChannels[SkewedIndex(kChannels.size(), rng)]),
         Value(rng->LogNormal(3.0, 1.4)),
         Value(rng->UniformInRange(1, 123))});
    (void)st;
  }
  return table;
}

std::shared_ptr<Table> MakeFlightsTable(size_t num_rows, Rng* rng) {
  static const std::vector<std::string> kCities = {
      "newark", "new york",  "norwalk",  "boston",   "austin",
      "oakland", "auckland",  "portland", "porterville",
      "dallas", "dulles",    "denver",   "phoenix",  "seattle",
      "san jose", "san diego"};
  static const std::vector<std::string> kCarriers = {
      "united", "delta", "jetblue", "southwest", "alaska", "spirit",
      "frontier", "american"};
  static const std::vector<std::string> kWeekdays = {
      "monday", "tuesday", "wednesday", "thursday", "friday", "saturday",
      "sunday"};
  static const std::vector<std::string> kMonths = {
      "january", "february", "march",     "april",   "may",      "june",
      "july",    "august",   "september", "october", "november",
      "december"};

  auto table = MustCreate(
      "flights", {{"origin", ValueType::kString},
                  {"dest", ValueType::kString},
                  {"carrier", ValueType::kString},
                  {"month", ValueType::kString},
                  {"day_of_week", ValueType::kString},
                  {"dep_delay", ValueType::kDouble},
                  {"arr_delay", ValueType::kDouble},
                  {"distance", ValueType::kInt64},
                  {"air_time", ValueType::kDouble}});
  for (size_t r = 0; r < num_rows; ++r) {
    const double dep_delay = rng->Normal(8.0, 25.0);
    const int64_t distance = rng->UniformInRange(120, 3000);
    Status st = table->AppendRow(
        {Value(kCities[SkewedIndex(kCities.size(), rng)]),
         Value(kCities[SkewedIndex(kCities.size(), rng)]),
         Value(kCarriers[SkewedIndex(kCarriers.size(), rng)]),
         Value(kMonths[rng->UniformInt(kMonths.size())]),
         Value(kWeekdays[rng->UniformInt(kWeekdays.size())]),
         Value(dep_delay),
         Value(dep_delay + rng->Normal(0.0, 12.0)),
         Value(distance),
         Value(static_cast<double>(distance) / 8.0 +
               rng->Normal(20.0, 10.0))});
    (void)st;
  }
  return table;
}

Result<std::shared_ptr<Table>> MakeDataset(std::string_view name,
                                           size_t num_rows, uint64_t seed) {
  Rng rng(seed);
  if (EqualsIgnoreCase(name, "ads")) return MakeAdsTable(num_rows, &rng);
  if (EqualsIgnoreCase(name, "dob")) return MakeDobTable(num_rows, &rng);
  if (EqualsIgnoreCase(name, "nyc311")) return Make311Table(num_rows, &rng);
  if (EqualsIgnoreCase(name, "flights")) {
    return MakeFlightsTable(num_rows, &rng);
  }
  return Status::NotFound("unknown dataset '" + std::string(name) + "'");
}

std::vector<std::string> BuildVocabulary(const db::Relation& table) {
  std::vector<std::string> vocabulary;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const db::ColumnSpec& spec = table.spec(c);
    vocabulary.push_back(spec.name);
    if (spec.type == ValueType::kString) {
      for (const std::string& value : table.StringValues(c)) {
        vocabulary.push_back(value);
      }
    }
  }
  return vocabulary;
}

}  // namespace muve::workload
