#include "workload/load_generator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "common/clock.h"
#include "nlq/translator.h"

namespace muve::workload {

namespace {

struct PlannedRequest {
  std::string session_id;
  std::string utterance;
  serve::RequestClass request_class = serve::RequestClass::kInteractive;
};

/// Pre-plans the whole campaign so the request mix is deterministic in
/// the seed regardless of how threads later interleave.
Result<std::vector<PlannedRequest>> PlanRequests(const db::Table& table,
                                                 const LoadOptions& options,
                                                 Rng* rng) {
  std::vector<PlannedRequest> planned;
  planned.reserve(options.num_requests);
  std::vector<std::string> utterance_pool;
  for (size_t i = 0; i < options.num_requests; ++i) {
    PlannedRequest request;
    request.session_id =
        "session-" +
        std::to_string(rng->UniformInt(std::max<size_t>(1, options.num_sessions)));
    if (!utterance_pool.empty() &&
        rng->Bernoulli(options.repeat_probability)) {
      request.utterance = rng->Choice(utterance_pool);
    } else {
      Result<db::AggregateQuery> truth =
          RandomQuery(table, rng, options.query);
      if (!truth.ok()) return truth.status();
      request.utterance = nlq::VerbalizeQuery(truth.value());
      utterance_pool.push_back(request.utterance);
    }
    request.request_class = rng->Bernoulli(options.replay_fraction)
                                ? serve::RequestClass::kReplay
                                : serve::RequestClass::kInteractive;
    planned.push_back(std::move(request));
  }
  return planned;
}

/// Per-request outcome recorded by the drivers.
struct Outcome {
  bool completed = false;
  bool shed = false;
  bool error = false;
  bool shared = false;
  bool finite_deadline = false;
  bool deadline_met = false;
  int rung = -1;
  double latency_ms = 0.0;
  double translate_ms = 0.0;
};

Outcome RecordOutcome(const Result<serve::ServedAnswer>& result,
                      bool finite_deadline) {
  Outcome outcome;
  outcome.finite_deadline = finite_deadline;
  if (result.ok()) {
    const serve::ServedAnswer& served = result.value();
    outcome.completed = true;
    outcome.shared = served.shared;
    outcome.deadline_met = served.deadline_met;
    outcome.latency_ms = served.total_millis;
    outcome.translate_ms = served.answer.timings.translate_millis;
    outcome.rung = static_cast<int>(served.answer.degradation.rung);
  } else if (result.status().code() == StatusCode::kOverloaded) {
    outcome.shed = true;
  } else {
    outcome.error = true;
  }
  return outcome;
}

double Percentile(std::vector<double>* sorted_in_place, double p) {
  if (sorted_in_place->empty()) return 0.0;
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const double rank = p * static_cast<double>(sorted_in_place->size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted_in_place->size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return (*sorted_in_place)[lo] * (1.0 - frac) +
         (*sorted_in_place)[hi] * frac;
}

Request MakeRequest(const PlannedRequest& planned,
                    const LoadOptions& options) {
  Request request = Request::Text(planned.utterance);
  request.tenant_id = options.tenant_id;
  if (std::isfinite(options.deadline_millis)) {
    request.deadline = Deadline::AfterMillis(options.deadline_millis);
  }
  return request;
}

/// Per-column value pools the ingest writer draws rows from, captured
/// once before the campaign so synthesis never reads the table it is
/// mutating. Strings come from the column's full domain; numerics from a
/// fixed-size sample of existing rows.
Result<std::vector<std::vector<db::Value>>> CaptureIngestPools(
    const db::Table& table, Rng* rng) {
  const size_t rows = table.num_rows();
  if (rows == 0) {
    return Status(StatusCode::kInvalidArgument,
                  "streaming ingest needs a non-empty table to sample "
                  "row shapes from");
  }
  std::vector<std::vector<db::Value>> pools;
  pools.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    std::vector<db::Value> pool;
    if (table.spec(c).type == db::ValueType::kString) {
      for (const std::string& value : table.StringValues(c)) {
        pool.emplace_back(value);
      }
    } else {
      for (size_t i = 0; i < 64; ++i) {
        pool.push_back(table.ValueAt(rng->UniformInt(rows), c));
      }
    }
    pools.push_back(std::move(pool));
  }
  return pools;
}

/// The campaign core, shared by both RunLoad overloads. `writable` is
/// null for read-only campaigns; with options.ingest_qps > 0 it is the
/// single-writer side of the snapshot contract.
Result<LoadReport> RunLoadImpl(serve::Server* server, const db::Table& table,
                               db::Table* writable,
                               const LoadOptions& options) {
  Rng rng(options.seed);
  Result<std::vector<PlannedRequest>> planned =
      PlanRequests(table, options, &rng);
  if (!planned.ok()) return planned.status();
  const std::vector<PlannedRequest>& requests = planned.value();
  const bool finite_deadline = std::isfinite(options.deadline_millis);

  const serve::ServerStats stats_before = server->stats();

  std::mutex outcomes_mutex;
  std::vector<Outcome> outcomes;
  outcomes.reserve(requests.size());
  auto record = [&](const Result<serve::ServedAnswer>& result) {
    Outcome outcome = RecordOutcome(result, finite_deadline);
    std::lock_guard<std::mutex> lock(outcomes_mutex);
    outcomes.push_back(outcome);
  };

  const bool ingest = writable != nullptr && options.ingest_qps > 0.0;
  std::vector<std::vector<db::Value>> pools;
  if (ingest) {
    Result<std::vector<std::vector<db::Value>>> captured =
        CaptureIngestPools(table, &rng);
    if (!captured.ok()) return captured.status();
    pools = *std::move(captured);
  }

  const auto wall_start = std::chrono::steady_clock::now();

  // Streaming ingest: one writer thread paced at ingest_qps appends
  // synthesized rows (and periodically seals runs) for the duration of
  // the drive loop, so every read below races live writes.
  std::atomic<bool> ingest_stop{false};
  std::atomic<size_t> ingested{0};
  std::atomic<size_t> ingest_flushes{0};
  std::atomic<bool> ingest_ok{true};
  std::thread writer;
  if (ingest) {
    writer = std::thread([&, wall_start] {
      Rng ingest_rng(options.seed ^ 0x9e3779b97f4a7c15ULL);
      const bool paced = std::isfinite(options.ingest_qps);
      const double gap_ms = paced ? 1000.0 / options.ingest_qps : 0.0;
      size_t n = 0;
      while (!ingest_stop.load(std::memory_order_acquire)) {
        if (paced) {
          std::this_thread::sleep_until(
              wall_start + std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   gap_ms * static_cast<double>(n))));
          if (ingest_stop.load(std::memory_order_acquire)) break;
        }
        std::vector<db::Value> row;
        row.reserve(pools.size());
        for (const std::vector<db::Value>& pool : pools) {
          row.push_back(ingest_rng.Choice(pool));
        }
        if (!writable->AppendRow(row).ok()) {
          ingest_ok.store(false, std::memory_order_release);
          break;
        }
        ++n;
        ingested.store(n, std::memory_order_release);
        if (options.ingest_flush_every > 0 &&
            n % options.ingest_flush_every == 0) {
          writable->Flush();
          ingest_flushes.fetch_add(1, std::memory_order_relaxed);
        }
        if (!paced) std::this_thread::yield();
      }
    });
  }

  if (options.mode == LoadOptions::Mode::kClosedLoop) {
    // Closed loop: each client keeps one request in flight. The shared
    // cursor hands out planned requests in order.
    std::atomic<size_t> next{0};
    const size_t clients =
        std::max<size_t>(1, std::min(options.num_clients, requests.size()));
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        for (;;) {
          const size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= requests.size()) return;
          const PlannedRequest& planned_request = requests[i];
          record(server->Ask(planned_request.session_id,
                             MakeRequest(planned_request, options),
                             planned_request.request_class));
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  } else {
    // Open loop: submit on the arrival schedule no matter how the server
    // is doing, then harvest every future. Deadlines start at submit
    // time, so the schedule is honored even when the queue pushes back.
    std::vector<double> arrivals_ms(requests.size());
    double t = 0.0;
    const double rate = std::max(options.offered_qps, 1e-6);
    for (size_t i = 0; i < requests.size(); ++i) {
      arrivals_ms[i] = t;
      if (options.poisson_arrivals) {
        double u = rng.UniformDouble();
        if (u <= 0.0) u = 0x1.0p-53;
        t += -std::log(u) * 1000.0 / rate;
      } else {
        t += 1000.0 / rate;
      }
    }
    std::vector<std::future<Result<serve::ServedAnswer>>> futures;
    futures.reserve(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      std::this_thread::sleep_until(
          wall_start + std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               arrivals_ms[i])));
      const PlannedRequest& planned_request = requests[i];
      futures.push_back(server->Submit(planned_request.session_id,
                                       MakeRequest(planned_request, options),
                                       planned_request.request_class));
    }
    for (std::future<Result<serve::ServedAnswer>>& future : futures) {
      record(future.get());
    }
  }

  const double duration_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  if (writer.joinable()) {
    ingest_stop.store(true, std::memory_order_release);
    writer.join();
    if (!ingest_ok.load(std::memory_order_acquire)) {
      return Status(StatusCode::kInternal, "streaming ingest append failed");
    }
  }

  LoadReport report;
  report.requests = requests.size();
  report.duration_seconds = duration_seconds;
  std::vector<double> latencies;
  std::vector<double> translate_latencies;
  size_t finite_completed = 0;
  size_t finite_met = 0;
  double latency_sum = 0.0;
  double translate_sum = 0.0;
  for (const Outcome& outcome : outcomes) {
    if (outcome.completed) {
      ++report.completed;
      latencies.push_back(outcome.latency_ms);
      latency_sum += outcome.latency_ms;
      translate_latencies.push_back(outcome.translate_ms);
      translate_sum += outcome.translate_ms;
      if (outcome.shared) ++report.shared_answers;
      if (outcome.rung >= 0 && outcome.rung < 3) {
        ++report.rung_histogram[outcome.rung];
      }
      if (outcome.finite_deadline) {
        ++finite_completed;
        if (outcome.deadline_met) ++finite_met;
      }
    } else if (outcome.shed) {
      ++report.shed;
    } else {
      ++report.errors;
    }
  }
  if (duration_seconds > 0.0) {
    report.sustained_qps =
        static_cast<double>(report.completed) / duration_seconds;
  }
  report.offered_qps =
      options.mode == LoadOptions::Mode::kOpenLoop
          ? options.offered_qps
          : (duration_seconds > 0.0
                 ? static_cast<double>(report.requests) / duration_seconds
                 : 0.0);
  report.p50_latency_ms = Percentile(&latencies, 0.50);
  report.p95_latency_ms = Percentile(&latencies, 0.95);
  report.p99_latency_ms = Percentile(&latencies, 0.99);
  report.mean_latency_ms =
      report.completed > 0
          ? latency_sum / static_cast<double>(report.completed)
          : 0.0;
  report.translate_p50_ms = Percentile(&translate_latencies, 0.50);
  report.translate_p99_ms = Percentile(&translate_latencies, 0.99);
  report.translate_mean_ms =
      report.completed > 0
          ? translate_sum / static_cast<double>(report.completed)
          : 0.0;
  report.shed_ratio =
      report.requests > 0
          ? static_cast<double>(report.shed) /
                static_cast<double>(report.requests)
          : 0.0;
  report.deadline_hit_ratio =
      finite_completed > 0 ? static_cast<double>(finite_met) /
                                 static_cast<double>(finite_completed)
                           : 1.0;
  report.single_flight_hit_ratio =
      report.completed > 0
          ? static_cast<double>(report.shared_answers) /
                static_cast<double>(report.completed)
          : 0.0;

  // Server funnel deltas over this campaign.
  const serve::ServerStats after = server->stats();
  serve::ServerStats delta;
  delta.submitted = after.submitted - stats_before.submitted;
  delta.admitted = after.admitted - stats_before.admitted;
  delta.rejected_queue_full =
      after.rejected_queue_full - stats_before.rejected_queue_full;
  delta.rejected_quota = after.rejected_quota - stats_before.rejected_quota;
  delta.rejected_infeasible =
      after.rejected_infeasible - stats_before.rejected_infeasible;
  delta.rejected_stopped =
      after.rejected_stopped - stats_before.rejected_stopped;
  delta.shed_at_dispatch =
      after.shed_at_dispatch - stats_before.shed_at_dispatch;
  delta.completed = after.completed - stats_before.completed;
  delta.failed = after.failed - stats_before.failed;
  delta.single_flight_leaders =
      after.single_flight_leaders - stats_before.single_flight_leaders;
  delta.single_flight_followers =
      after.single_flight_followers - stats_before.single_flight_followers;
  delta.deadline_met = after.deadline_met - stats_before.deadline_met;
  delta.deadline_missed =
      after.deadline_missed - stats_before.deadline_missed;
  for (size_t i = 0; i < serve::kNumRequestClasses; ++i) {
    delta.class_submitted[i] =
        after.class_submitted[i] - stats_before.class_submitted[i];
  }
  report.server = delta;

  report.ingested_rows = ingested.load(std::memory_order_acquire);
  report.ingest_flushes = ingest_flushes.load(std::memory_order_acquire);
  report.ingest_sustained_qps =
      duration_seconds > 0.0
          ? static_cast<double>(report.ingested_rows) / duration_seconds
          : 0.0;
  return report;
}

}  // namespace

Result<LoadReport> RunLoad(serve::Server* server, const db::Table& table,
                           const LoadOptions& options) {
  if (options.ingest_qps > 0.0) {
    return Status(StatusCode::kInvalidArgument,
                  "ingest_qps > 0 requires the mutable RunLoad overload");
  }
  return RunLoadImpl(server, table, nullptr, options);
}

Result<LoadReport> RunLoad(serve::Server* server, db::Table* table,
                           const LoadOptions& options) {
  return RunLoadImpl(server, *table, table, options);
}

std::string LoadReport::ToJson(const std::string& indent) const {
  std::ostringstream out;
  const std::string inner = indent + "  ";
  out << "{\n";
  out << inner << "\"requests\": " << requests << ",\n";
  out << inner << "\"completed\": " << completed << ",\n";
  out << inner << "\"shed\": " << shed << ",\n";
  out << inner << "\"errors\": " << errors << ",\n";
  out << inner << "\"duration_seconds\": " << duration_seconds << ",\n";
  out << inner << "\"offered_qps\": " << offered_qps << ",\n";
  out << inner << "\"sustained_qps\": " << sustained_qps << ",\n";
  out << inner << "\"p50_latency_ms\": " << p50_latency_ms << ",\n";
  out << inner << "\"p95_latency_ms\": " << p95_latency_ms << ",\n";
  out << inner << "\"p99_latency_ms\": " << p99_latency_ms << ",\n";
  out << inner << "\"mean_latency_ms\": " << mean_latency_ms << ",\n";
  out << inner << "\"translate_p50_ms\": " << translate_p50_ms << ",\n";
  out << inner << "\"translate_p99_ms\": " << translate_p99_ms << ",\n";
  out << inner << "\"translate_mean_ms\": " << translate_mean_ms << ",\n";
  out << inner << "\"shed_ratio\": " << shed_ratio << ",\n";
  out << inner << "\"deadline_hit_ratio\": " << deadline_hit_ratio << ",\n";
  out << inner << "\"shared_answers\": " << shared_answers << ",\n";
  out << inner << "\"single_flight_hit_ratio\": " << single_flight_hit_ratio
      << ",\n";
  out << inner << "\"rung_histogram\": {\"exact\": " << rung_histogram[0]
      << ", \"degraded_plan\": " << rung_histogram[1]
      << ", \"base_only\": " << rung_histogram[2] << "},\n";
  out << inner << "\"ingested_rows\": " << ingested_rows << ",\n";
  out << inner << "\"ingest_sustained_qps\": " << ingest_sustained_qps
      << ",\n";
  out << inner << "\"ingest_flushes\": " << ingest_flushes << ",\n";
  out << inner << "\"server\": {\n";
  const std::string deep = inner + "  ";
  out << deep << "\"submitted\": " << server.submitted << ",\n";
  out << deep << "\"admitted\": " << server.admitted << ",\n";
  out << deep << "\"rejected_queue_full\": " << server.rejected_queue_full
      << ",\n";
  out << deep << "\"rejected_quota\": " << server.rejected_quota << ",\n";
  out << deep << "\"rejected_infeasible\": " << server.rejected_infeasible
      << ",\n";
  out << deep << "\"rejected_stopped\": " << server.rejected_stopped
      << ",\n";
  out << deep << "\"shed_at_dispatch\": " << server.shed_at_dispatch
      << ",\n";
  out << deep << "\"completed\": " << server.completed << ",\n";
  out << deep << "\"failed\": " << server.failed << ",\n";
  out << deep << "\"single_flight_leaders\": "
      << server.single_flight_leaders << ",\n";
  out << deep << "\"single_flight_followers\": "
      << server.single_flight_followers << ",\n";
  out << deep << "\"deadline_met\": " << server.deadline_met << ",\n";
  out << deep << "\"deadline_missed\": " << server.deadline_missed << ",\n";
  out << deep << "\"interactive_submitted\": " << server.class_submitted[0]
      << ",\n";
  out << deep << "\"replay_submitted\": " << server.class_submitted[1]
      << "\n";
  out << inner << "}\n";
  out << indent << "}";
  return out.str();
}

}  // namespace muve::workload
