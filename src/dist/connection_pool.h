#ifndef MUVE_DIST_CONNECTION_POOL_H_
#define MUVE_DIST_CONNECTION_POOL_H_

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "net/async_client.h"

namespace muve::dist {

/// One downstream address (dotted-quad IPv4 or "localhost").
struct Endpoint {
  std::string host;
  uint16_t port = 0;

  std::string ToString() const {
    return host + ":" + std::to_string(port);
  }
};

/// Fixed-size pool of non-blocking connections to one endpoint.
/// Acquire pops an idle connection or dials a new one (bounded by the
/// connect timeout and the caller's deadline — never the kernel's
/// minutes-long default); Release returns a connection whose framing
/// state is clean, keeping at most `max_idle`. A connection that sent a
/// request and did not read the full response must be closed, not
/// released — the pool never hands out a dirty byte stream.
///
/// Thread-safe: coordinator gathers running on different serving threads
/// share one pool per downstream.
class ConnectionPool {
 public:
  ConnectionPool(Endpoint endpoint, size_t max_idle,
                 double connect_timeout_ms)
      : endpoint_(std::move(endpoint)),
        max_idle_(max_idle),
        connect_timeout_ms_(connect_timeout_ms) {}

  /// An idle connection, or a fresh one. The dial is bounded by
  /// min(connect timeout, remaining deadline).
  Result<net::AsyncClient> Acquire(const Deadline& deadline) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!idle_.empty()) {
        net::AsyncClient conn = std::move(idle_.back());
        idle_.pop_back();
        return conn;
      }
    }
    double budget = connect_timeout_ms_;
    if (deadline.IsFinite()) {
      budget = std::min(budget, deadline.RemainingMillis());
      if (budget <= 0.0) {
        return Status::Timeout("no budget left to dial " +
                               endpoint_.ToString());
      }
    }
    return net::AsyncClient::Connect(endpoint_.host, endpoint_.port, budget);
  }

  /// Returns a clean connection for reuse; drops it when the idle list
  /// is full or the connection died in flight.
  void Release(net::AsyncClient conn) {
    if (!conn.connected()) return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (idle_.size() < max_idle_) idle_.push_back(std::move(conn));
    // else: conn destructs -> closed.
  }

  /// Closes every idle connection (e.g. after ejecting the downstream,
  /// so a recovered peer starts from fresh sockets).
  void Clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    idle_.clear();
  }

  const Endpoint& endpoint() const { return endpoint_; }

  size_t idle_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return idle_.size();
  }

 private:
  const Endpoint endpoint_;
  const size_t max_idle_;
  const double connect_timeout_ms_;
  mutable std::mutex mutex_;
  std::vector<net::AsyncClient> idle_;
};

}  // namespace muve::dist

#endif  // MUVE_DIST_CONNECTION_POOL_H_
