#ifndef MUVE_DIST_COORDINATOR_H_
#define MUVE_DIST_COORDINATOR_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "dist/connection_pool.h"
#include "net/wire.h"
#include "shard/scatter_gather.h"

namespace muve::dist {

/// Tuning of the coordinator's downstream behavior. The defaults suit
/// same-host/same-rack shard servers (the deployment the benches model);
/// every limit exists so that no single slow or dead downstream can ever
/// stall a gather past the request deadline.
struct CoordinatorOptions {
  /// Bound on each connection attempt.
  double connect_timeout_ms = 250.0;
  /// Per-attempt cap on waiting for a shard's response. Also the
  /// effective bound when the request deadline is infinite.
  double request_timeout_ms = 1000.0;
  /// Additional attempts after the first failed one (transport errors
  /// and per-attempt timeouts retry; application errors do not — they
  /// are deterministic).
  int max_retries = 2;
  /// Backoff before retry r (1-based): retry_backoff_ms * 2^(r-1).
  double retry_backoff_ms = 10.0;
  /// After a shard has been silent this long within an attempt, send a
  /// duplicate request on a second pooled connection and take whichever
  /// response lands first (the straggler insurance that caps tail
  /// latency). <= 0 disables hedging.
  double hedge_delay_ms = 0.0;
  /// Idle connections kept per downstream.
  size_t pool_size = 4;
  /// Consecutive transport failures before a downstream is ejected.
  int eject_after_failures = 3;
  /// How long an ejected downstream fails fast before the next request
  /// is allowed through as a re-probe.
  double reprobe_after_ms = 500.0;
  /// Clock for timeouts/backoff/ejection windows (tests inject a fake;
  /// null uses the monotonic clock).
  const ClockSource* clock = nullptr;
};

/// Per-downstream operational counters (cumulative since construction).
struct ShardCounters {
  uint64_t requests = 0;     ///< Gather legs addressed to this shard.
  uint64_t retries = 0;      ///< Re-sent attempts after a failure.
  uint64_t hedges = 0;       ///< Duplicate sends fired by the hedge timer.
  uint64_t hedge_wins = 0;   ///< Hedged sends that answered first.
  uint64_t timeouts = 0;     ///< Attempts cut by the per-attempt timer.
  uint64_t transport_errors = 0;  ///< Connect/send/recv/EOF failures.
  uint64_t ejections = 0;    ///< Times the breaker opened.
  uint64_t fast_failures = 0;  ///< Legs failed instantly while ejected.
  uint64_t dropped = 0;      ///< Legs that gave up (stripe degraded).
};

struct DistStats {
  std::vector<ShardCounters> shards;
};

/// The router's downstream half: a shard::PartialBackend over N shard
/// servers speaking kPartialQuery/kPartialResult. One gather serializes
/// the query once, scatters it to every shard on pooled non-blocking
/// connections, and multiplexes the waits in a single poll(2) loop —
/// per-attempt timeouts, bounded retries with exponential backoff, and
/// optional hedged sends all run off that loop, so a straggling or dead
/// shard costs its own stripe (a dropped outcome) and never the gather.
///
/// Health: consecutive transport failures open a per-downstream breaker
/// (ejection); while open, legs to that shard fail fast as dropped.
/// After `reprobe_after_ms` the next leg is let through as the re-probe
/// and a success closes the breaker.
///
/// Thread-safe: concurrent gathers from different serving threads share
/// the pools, breakers, and counters.
class Coordinator : public shard::PartialBackend {
 public:
  explicit Coordinator(std::vector<Endpoint> endpoints,
                       CoordinatorOptions options = {});

  // --- shard::PartialBackend ------------------------------------------

  size_t num_shards() const override { return shards_.size(); }

  std::vector<Result<AggregateOutcome>> ExecutePartialAll(
      const db::AggregateQuery& query, const Deadline& deadline) override;
  std::vector<Result<GroupedOutcome>> ExecuteGroupedPartialAll(
      const db::GroupByQuery& query, const Deadline& deadline) override;

  // --- Operational surface --------------------------------------------

  /// Ping/Pong round trip to one downstream within `timeout_ms`.
  Status Ping(size_t shard, double timeout_ms);
  /// Pings every downstream; first failure in shard order wins.
  Status PingAll(double per_shard_timeout_ms);

  DistStats stats() const;
  /// The stats as a JSON document (the kStats reply payload).
  std::string StatsJson() const;

  const CoordinatorOptions& options() const { return options_; }

 private:
  /// Mutable per-downstream state: its pool, breaker, and counters.
  struct Shard {
    explicit Shard(Endpoint endpoint, const CoordinatorOptions& options)
        : pool(std::move(endpoint), options.pool_size,
               options.connect_timeout_ms) {}

    ConnectionPool pool;
    mutable std::mutex mutex;  ///< Guards the fields below.
    int consecutive_failures = 0;
    double ejected_until_ms = -std::numeric_limits<double>::infinity();
    bool ejected = false;
    ShardCounters counters;
  };

  /// One gather leg's terminal state.
  struct Reply {
    Status error = Status::OK();  ///< Hard (deterministic) failure.
    net::PartialResult result;
    bool dropped = false;  ///< Gave up in time; stripe degrades.
  };

  /// Scatters `payload` (a serialized PartialQuery) to every shard and
  /// multiplexes the gather; always returns num_shards() replies.
  std::vector<Reply> Gather(const std::string& payload,
                            const Deadline& deadline);

  /// Breaker bookkeeping (called with shard.mutex held by the helpers).
  bool EjectedNow(Shard& shard, double now_ms);
  void RecordFailure(Shard& shard, double now_ms);
  void RecordSuccess(Shard& shard);

  double NowMs() const { return clock_->NowMillis(); }

  CoordinatorOptions options_;
  const ClockSource* clock_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace muve::dist

#endif  // MUVE_DIST_COORDINATOR_H_
