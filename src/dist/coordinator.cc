#include "dist/coordinator.h"

#include <poll.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>

#include "net/async_client.h"
#include "net/protocol.h"

namespace muve::dist {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Cap on one poll(2) sleep, so the loop re-reads the clock often enough
/// for backoff/hedge timers even when the next computed event is far out.
constexpr int kMaxPollWaitMillis = 20;

int PollWaitMillis(double wait_ms) {
  if (wait_ms <= 0.0) return 0;
  const double capped =
      std::min(wait_ms, static_cast<double>(kMaxPollWaitMillis));
  return std::max(1, static_cast<int>(std::ceil(capped)));
}

}  // namespace

Coordinator::Coordinator(std::vector<Endpoint> endpoints,
                         CoordinatorOptions options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : MonotonicClock::Instance()) {
  // A non-positive or infinite per-attempt cap would let a silent shard
  // hang an infinite-deadline gather; clamp back to the default.
  if (!(options_.request_timeout_ms > 0.0) ||
      options_.request_timeout_ms == kInfinity) {
    options_.request_timeout_ms = 1000.0;
  }
  if (options_.max_retries < 0) options_.max_retries = 0;
  if (options_.eject_after_failures < 1) options_.eject_after_failures = 1;
  shards_.reserve(endpoints.size());
  for (Endpoint& endpoint : endpoints) {
    shards_.push_back(std::make_unique<Shard>(std::move(endpoint), options_));
  }
}

bool Coordinator::EjectedNow(Shard& shard, double now_ms) {
  if (!shard.ejected) return false;
  if (now_ms >= shard.ejected_until_ms) {
    // The re-probe: let this leg through, and hold other legs off for
    // another window so one probe at a time tests the downstream.
    shard.ejected_until_ms = now_ms + options_.reprobe_after_ms;
    return false;
  }
  return true;
}

void Coordinator::RecordFailure(Shard& shard, double now_ms) {
  ++shard.consecutive_failures;
  if (shard.ejected) {
    // Failed re-probe: stay open, push the window out.
    shard.ejected_until_ms = now_ms + options_.reprobe_after_ms;
    return;
  }
  if (shard.consecutive_failures >= options_.eject_after_failures) {
    shard.ejected = true;
    shard.ejected_until_ms = now_ms + options_.reprobe_after_ms;
    ++shard.counters.ejections;
    // A recovered peer should start from fresh sockets.
    shard.pool.Clear();
  }
}

void Coordinator::RecordSuccess(Shard& shard) {
  shard.consecutive_failures = 0;
  shard.ejected = false;
}

std::vector<Coordinator::Reply> Coordinator::Gather(const std::string& payload,
                                                    const Deadline& deadline) {
  // Anchor the caller's deadline on our clock once; all timers below are
  // absolute milliseconds on clock_.
  const double overall_expiry_ms =
      deadline.IsFinite() ? NowMs() + deadline.RemainingMillis() : kInfinity;

  struct Flight {
    net::AsyncClient conn;
    bool is_hedge = false;
  };
  struct Leg {
    Shard* shard = nullptr;
    std::vector<Flight> flights;  ///< 1 in flight, 2 after a hedge.
    int attempts_started = 0;
    double attempt_expiry_ms = kInfinity;
    bool attempt_penalize = true;  ///< Timeout trips the breaker only
                                   ///< when the window wasn't clipped by
                                   ///< the caller's (tighter) deadline.
    double retry_at_ms = kInfinity;
    double hedge_at_ms = kInfinity;
    bool hedged = false;
    bool done = false;
    Reply reply;
  };

  std::vector<Leg> legs(shards_.size());

  // Drops the leg's attempt: close every flight, account the failure,
  // and either schedule a backoff retry or give the stripe up.
  auto fail_attempt = [&](Leg& leg, double now_ms, bool timed_out,
                          bool penalize) {
    leg.flights.clear();
    {
      std::lock_guard<std::mutex> lock(leg.shard->mutex);
      if (timed_out) {
        ++leg.shard->counters.timeouts;
      } else {
        ++leg.shard->counters.transport_errors;
      }
      if (penalize) RecordFailure(*leg.shard, now_ms);
    }
    leg.attempt_expiry_ms = kInfinity;
    leg.hedge_at_ms = kInfinity;
    const bool can_retry = leg.attempts_started < 1 + options_.max_retries;
    const int backoff_exp = std::min(std::max(leg.attempts_started - 1, 0), 20);
    const double retry_at_ms =
        now_ms + std::max(0.0, options_.retry_backoff_ms) *
                     static_cast<double>(1 << backoff_exp);
    if (can_retry && retry_at_ms < overall_expiry_ms) {
      leg.retry_at_ms = retry_at_ms;
    } else {
      leg.done = true;
      leg.reply.dropped = true;
      std::lock_guard<std::mutex> lock(leg.shard->mutex);
      ++leg.shard->counters.dropped;
    }
  };

  // Dials (or reuses) a connection and writes the query. On transport
  // failure, falls through to fail_attempt (which may schedule a retry).
  auto start_attempt = [&](Leg& leg, double now_ms) {
    ++leg.attempts_started;
    if (leg.attempts_started > 1) {
      std::lock_guard<std::mutex> lock(leg.shard->mutex);
      ++leg.shard->counters.retries;
    }
    leg.retry_at_ms = kInfinity;
    const double window_end_ms = now_ms + options_.request_timeout_ms;
    leg.attempt_penalize = window_end_ms <= overall_expiry_ms;
    leg.attempt_expiry_ms = std::min(window_end_ms, overall_expiry_ms);
    const bool hedging = options_.hedge_delay_ms > 0.0 &&
                         options_.hedge_delay_ms != kInfinity && !leg.hedged;
    leg.hedge_at_ms = hedging ? now_ms + options_.hedge_delay_ms : kInfinity;

    const Deadline attempt_deadline =
        Deadline::AfterMillis(leg.attempt_expiry_ms - now_ms, clock_);
    Result<net::AsyncClient> conn = leg.shard->pool.Acquire(attempt_deadline);
    if (!conn.ok()) {
      fail_attempt(leg, NowMs(), /*timed_out=*/false, /*penalize=*/true);
      return;
    }
    Status sent = conn->Send(net::FrameType::kPartialQuery, payload,
                             attempt_deadline);
    if (!sent.ok()) {
      fail_attempt(leg, NowMs(), /*timed_out=*/false, /*penalize=*/true);
      return;
    }
    leg.flights.push_back(Flight{std::move(*conn), /*is_hedge=*/false});
  };

  // Fires the straggler insurance: a duplicate request on a second
  // connection. A hedge that cannot be placed just doesn't hedge — the
  // primary flight is still alive, so nothing fails.
  auto start_hedge = [&](Leg& leg, double now_ms) {
    leg.hedged = true;
    leg.hedge_at_ms = kInfinity;
    const Deadline attempt_deadline =
        Deadline::AfterMillis(leg.attempt_expiry_ms - now_ms, clock_);
    Result<net::AsyncClient> conn = leg.shard->pool.Acquire(attempt_deadline);
    if (!conn.ok()) return;
    Status sent = conn->Send(net::FrameType::kPartialQuery, payload,
                             attempt_deadline);
    if (!sent.ok()) return;
    {
      std::lock_guard<std::mutex> lock(leg.shard->mutex);
      ++leg.shard->counters.hedges;
    }
    leg.flights.push_back(Flight{std::move(*conn), /*is_hedge=*/true});
  };

  // Leg finished with a full response on flights[winner]: release the
  // winner (its byte stream is clean), close any hedge loser (dirty —
  // its response may still be in flight and must never reach the pool).
  auto settle_flights = [&](Leg& leg, size_t winner) {
    Flight won = std::move(leg.flights[winner]);
    leg.flights.clear();
    leg.shard->pool.Release(std::move(won.conn));
  };

  // A complete frame arrived on flights[fi].
  auto handle_frame = [&](Leg& leg, size_t fi, net::Frame frame,
                          double now_ms) {
    const bool is_hedge = leg.flights[fi].is_hedge;
    switch (frame.type) {
      case net::FrameType::kPartialResult: {
        Result<net::PartialResult> parsed =
            net::ParsePartialResult(frame.payload);
        if (!parsed.ok()) {
          fail_attempt(leg, now_ms, /*timed_out=*/false, /*penalize=*/true);
          return;
        }
        leg.reply.result = std::move(*parsed);
        leg.done = true;
        settle_flights(leg, fi);
        std::lock_guard<std::mutex> lock(leg.shard->mutex);
        RecordSuccess(*leg.shard);
        if (is_hedge) ++leg.shard->counters.hedge_wins;
        return;
      }
      case net::FrameType::kError: {
        net::WireReader reader(frame.payload);
        Status status;
        const Status decoded = net::DecodeStatus(&reader, &status);
        if (!decoded.ok() || status.ok()) {
          fail_attempt(leg, now_ms, /*timed_out=*/false, /*penalize=*/true);
          return;
        }
        // The downstream answered: its transport is healthy either way.
        leg.done = true;
        settle_flights(leg, fi);
        std::lock_guard<std::mutex> lock(leg.shard->mutex);
        RecordSuccess(*leg.shard);
        if (is_hedge) ++leg.shard->counters.hedge_wins;
        if (status.code() == StatusCode::kTimeout) {
          // The shard's scan ran out of budget — degrade the stripe,
          // same as a local shard hitting its deadline.
          leg.reply.dropped = true;
          ++leg.shard->counters.timeouts;
          ++leg.shard->counters.dropped;
        } else {
          // Deterministic application error: retrying cannot help.
          leg.reply.error = status;
        }
        return;
      }
      default:
        fail_attempt(leg, now_ms, /*timed_out=*/false, /*penalize=*/true);
    }
  };

  // Kick off every leg.
  for (size_t i = 0; i < legs.size(); ++i) {
    Leg& leg = legs[i];
    leg.shard = shards_[i].get();
    const double now_ms = NowMs();
    bool fast_fail = false;
    {
      std::lock_guard<std::mutex> lock(leg.shard->mutex);
      ++leg.shard->counters.requests;
      if (EjectedNow(*leg.shard, now_ms)) {
        ++leg.shard->counters.fast_failures;
        ++leg.shard->counters.dropped;
        fast_fail = true;
      }
    }
    if (fast_fail) {
      leg.done = true;
      leg.reply.dropped = true;
      continue;
    }
    start_attempt(leg, now_ms);
  }

  // The multiplexed wait: one poll(2) over every in-flight fd, with the
  // timeout set by the nearest timer (attempt expiry, backoff, hedge,
  // overall deadline).
  std::vector<struct pollfd> pollfds;
  std::vector<size_t> pollfd_leg;
  while (true) {
    size_t open = 0;
    for (const Leg& leg : legs) {
      if (!leg.done) ++open;
    }
    if (open == 0) break;

    double now_ms = NowMs();
    double next_event_ms = overall_expiry_ms;
    pollfds.clear();
    pollfd_leg.clear();
    for (size_t li = 0; li < legs.size(); ++li) {
      const Leg& leg = legs[li];
      if (leg.done) continue;
      next_event_ms = std::min(next_event_ms, leg.attempt_expiry_ms);
      next_event_ms = std::min(next_event_ms, leg.retry_at_ms);
      next_event_ms = std::min(next_event_ms, leg.hedge_at_ms);
      for (const Flight& flight : leg.flights) {
        pollfds.push_back(
            pollfd{flight.conn.fd(), POLLIN, /*revents=*/0});
        pollfd_leg.push_back(li);
      }
    }

    const int wait = PollWaitMillis(next_event_ms - now_ms);
    ::poll(pollfds.empty() ? nullptr : pollfds.data(),
           static_cast<nfds_t>(pollfds.size()), wait);
    now_ms = NowMs();

    // Pump whatever became readable (or broke).
    for (size_t pi = 0; pi < pollfds.size(); ++pi) {
      if (pollfds[pi].revents == 0) continue;
      Leg& leg = legs[pollfd_leg[pi]];
      if (leg.done) continue;
      size_t fi = leg.flights.size();
      for (size_t f = 0; f < leg.flights.size(); ++f) {
        if (leg.flights[f].conn.fd() == pollfds[pi].fd) {
          fi = f;
          break;
        }
      }
      if (fi == leg.flights.size()) continue;  // Closed earlier this round.
      net::Frame frame;
      Result<bool> got = leg.flights[fi].conn.PumpReceive(&frame);
      if (!got.ok()) {
        // This flight's connection died; the leg only fails when no
        // flight remains (a hedge twin may still answer).
        leg.flights.erase(leg.flights.begin() + fi);
        if (leg.flights.empty()) {
          fail_attempt(leg, now_ms, /*timed_out=*/false, /*penalize=*/true);
        }
        continue;
      }
      if (!*got) continue;  // Frame still assembling.
      handle_frame(leg, fi, std::move(frame), now_ms);
    }

    // Fire due timers.
    for (Leg& leg : legs) {
      if (leg.done) continue;
      now_ms = NowMs();
      if (now_ms >= overall_expiry_ms) {
        // Out of overall budget: every unfinished stripe degrades NOW —
        // the gather never outlives the caller's deadline.
        leg.flights.clear();
        leg.done = true;
        leg.reply.dropped = true;
        std::lock_guard<std::mutex> lock(leg.shard->mutex);
        ++leg.shard->counters.timeouts;
        ++leg.shard->counters.dropped;
        continue;
      }
      if (!leg.flights.empty()) {
        if (now_ms >= leg.attempt_expiry_ms) {
          fail_attempt(leg, now_ms, /*timed_out=*/true,
                       /*penalize=*/leg.attempt_penalize);
        } else if (!leg.hedged && now_ms >= leg.hedge_at_ms) {
          start_hedge(leg, now_ms);
        }
      } else if (now_ms >= leg.retry_at_ms) {
        start_attempt(leg, now_ms);
      }
    }
  }

  std::vector<Reply> replies;
  replies.reserve(legs.size());
  for (Leg& leg : legs) replies.push_back(std::move(leg.reply));
  return replies;
}

std::vector<Result<shard::PartialBackend::AggregateOutcome>>
Coordinator::ExecutePartialAll(const db::AggregateQuery& query,
                               const Deadline& deadline) {
  net::PartialQuery wire_query;
  wire_query.kind = net::PartialQuery::Kind::kAggregate;
  wire_query.aggregate = query;
  wire_query.deadline = deadline;
  const std::string payload = net::SerializePartialQuery(wire_query);

  std::vector<Reply> replies = Gather(payload, deadline);
  std::vector<Result<AggregateOutcome>> out;
  out.reserve(replies.size());
  for (Reply& reply : replies) {
    if (!reply.error.ok()) {
      out.push_back(reply.error);
      continue;
    }
    AggregateOutcome outcome;
    if (reply.dropped) {
      outcome.dropped = true;
      out.push_back(std::move(outcome));
      continue;
    }
    if (reply.result.kind != net::PartialQuery::Kind::kAggregate) {
      out.push_back(
          Status::Internal("shard answered grouped partial to an aggregate "
                           "query"));
      continue;
    }
    outcome.partial = reply.result.aggregate;
    outcome.snapshot_version = reply.result.snapshot_version;
    outcome.rows_scanned = reply.result.rows_scanned;
    out.push_back(std::move(outcome));
  }
  return out;
}

std::vector<Result<shard::PartialBackend::GroupedOutcome>>
Coordinator::ExecuteGroupedPartialAll(const db::GroupByQuery& query,
                                      const Deadline& deadline) {
  net::PartialQuery wire_query;
  wire_query.kind = net::PartialQuery::Kind::kGrouped;
  wire_query.grouped = query;
  wire_query.deadline = deadline;
  const std::string payload = net::SerializePartialQuery(wire_query);

  std::vector<Reply> replies = Gather(payload, deadline);
  std::vector<Result<GroupedOutcome>> out;
  out.reserve(replies.size());
  for (Reply& reply : replies) {
    if (!reply.error.ok()) {
      out.push_back(reply.error);
      continue;
    }
    GroupedOutcome outcome;
    if (reply.dropped) {
      outcome.dropped = true;
      out.push_back(std::move(outcome));
      continue;
    }
    if (reply.result.kind != net::PartialQuery::Kind::kGrouped) {
      out.push_back(
          Status::Internal("shard answered aggregate partial to a grouped "
                           "query"));
      continue;
    }
    outcome.partial = std::move(reply.result.grouped);
    outcome.snapshot_version = reply.result.snapshot_version;
    outcome.rows_scanned = reply.result.rows_scanned;
    out.push_back(std::move(outcome));
  }
  return out;
}

Status Coordinator::Ping(size_t shard, double timeout_ms) {
  if (shard >= shards_.size()) {
    return Status::InvalidArgument("no shard " + std::to_string(shard));
  }
  Shard& target = *shards_[shard];
  const Deadline deadline = Deadline::AfterMillis(timeout_ms, clock_);
  Result<net::AsyncClient> conn = target.pool.Acquire(deadline);
  if (!conn.ok()) return conn.status();
  MUVE_RETURN_NOT_OK(conn->Send(net::FrameType::kPing, "", deadline));
  Result<net::Frame> frame = conn->Receive(deadline);
  if (!frame.ok()) return frame.status();
  if (frame->type != net::FrameType::kPong) {
    return Status::ParseError("expected Pong from " +
                              target.pool.endpoint().ToString() + ", got " +
                              std::to_string(static_cast<int>(frame->type)));
  }
  target.pool.Release(std::move(*conn));
  std::lock_guard<std::mutex> lock(target.mutex);
  RecordSuccess(target);
  return Status::OK();
}

Status Coordinator::PingAll(double per_shard_timeout_ms) {
  for (size_t i = 0; i < shards_.size(); ++i) {
    Status status = Ping(i, per_shard_timeout_ms);
    if (!status.ok()) {
      return Status(status.code(),
                    "shard " + std::to_string(i) + " (" +
                        shards_[i]->pool.endpoint().ToString() +
                        "): " + status.message());
    }
  }
  return Status::OK();
}

DistStats Coordinator::stats() const {
  DistStats out;
  out.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    out.shards.push_back(shard->counters);
  }
  return out;
}

std::string Coordinator::StatsJson() const {
  std::string out = "{\"shards\":[";
  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardCounters counters;
    bool ejected = false;
    {
      std::lock_guard<std::mutex> lock(shards_[i]->mutex);
      counters = shards_[i]->counters;
      ejected = shards_[i]->ejected;
    }
    if (i > 0) out += ",";
    out += "{\"endpoint\":\"" + shards_[i]->pool.endpoint().ToString() + "\"";
    auto field = [&out](const char* name, uint64_t value) {
      out += ",\"";
      out += name;
      out += "\":" + std::to_string(value);
    };
    field("requests", counters.requests);
    field("retries", counters.retries);
    field("hedges", counters.hedges);
    field("hedge_wins", counters.hedge_wins);
    field("timeouts", counters.timeouts);
    field("transport_errors", counters.transport_errors);
    field("ejections", counters.ejections);
    field("fast_failures", counters.fast_failures);
    field("dropped", counters.dropped);
    out += ",\"ejected\":";
    out += ejected ? "true" : "false";
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace muve::dist
