#include "dist/shard_service.h"

#include <utility>

namespace muve::dist {

ShardService::ShardService(std::shared_ptr<const db::Table> shard,
                           ShardServiceOptions options)
    : shard_(std::move(shard)), options_(options) {}

Result<net::PartialResult> ShardService::HandlePartial(
    const net::PartialQuery& query) {
  const db::TableSnapshot snapshot = shard_->Snapshot();
  db::ExecutorOptions exec_options;
  exec_options.vectorize = options_.vectorize;
  exec_options.deadline = query.deadline;

  net::PartialResult result;
  result.kind = query.kind;
  result.snapshot_version = snapshot.version();
  result.rows_scanned = snapshot.num_rows();
  if (query.kind == net::PartialQuery::Kind::kAggregate) {
    Result<db::AggregatePartial> partial =
        db::Executor::ExecutePartial(snapshot, query.aggregate, exec_options);
    if (!partial.ok()) {
      queries_failed_.fetch_add(1, std::memory_order_relaxed);
      return partial.status();
    }
    result.aggregate = *partial;
  } else {
    Result<db::GroupedPartial> partial = db::Executor::ExecuteGroupedPartial(
        snapshot, query.grouped, exec_options);
    if (!partial.ok()) {
      queries_failed_.fetch_add(1, std::memory_order_relaxed);
      return partial.status();
    }
    result.grouped = std::move(*partial);
  }
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

}  // namespace muve::dist
