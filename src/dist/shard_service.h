#ifndef MUVE_DIST_SHARD_SERVICE_H_
#define MUVE_DIST_SHARD_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "db/executor.h"
#include "db/table.h"
#include "net/listener.h"

namespace muve::dist {

/// Options of a shard-side partial executor.
struct ShardServiceOptions {
  /// Forwarded to db::ExecutorOptions::vectorize.
  bool vectorize = true;
};

/// The shard server's side of the partial-aggregate protocol: executes
/// one kPartialQuery against a fresh snapshot of the local stripe with
/// db::Executor::ExecutePartial / ExecuteGroupedPartial — the exact scan
/// the in-process scatter would run on this shard — and answers the raw
/// merge state plus the snapshot version it scanned.
///
/// The query's deadline travels as remaining milliseconds and is
/// enforced by the executor's cooperative cancellation: an expired scan
/// returns Status::Timeout, which the listener answers as an Error
/// frame, and the coordinator degrades that stripe (it never blocks the
/// gather).
class ShardService : public net::PartialHandler {
 public:
  /// `shard` is this process's stripe (ShardedTable::shard(i)).
  explicit ShardService(std::shared_ptr<const db::Table> shard,
                        ShardServiceOptions options = {});

  Result<net::PartialResult> HandlePartial(
      const net::PartialQuery& query) override;

  /// Queries executed / failed (includes timeouts), for operator stats.
  uint64_t queries_served() const {
    return queries_served_.load(std::memory_order_relaxed);
  }
  uint64_t queries_failed() const {
    return queries_failed_.load(std::memory_order_relaxed);
  }

 private:
  const std::shared_ptr<const db::Table> shard_;
  const ShardServiceOptions options_;
  std::atomic<uint64_t> queries_served_{0};
  std::atomic<uint64_t> queries_failed_{0};
};

}  // namespace muve::dist

#endif  // MUVE_DIST_SHARD_SERVICE_H_
