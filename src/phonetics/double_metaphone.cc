#include "phonetics/double_metaphone.h"

#include <cctype>
#include <initializer_list>

namespace muve::phonetics {

namespace {

/// Stateful encoder for one word; follows the structure of Lawrence
/// Philips' reference implementation (ASCII subset — MUVE encodes SQL
/// identifiers and English constants, which are ASCII).
class Encoder {
 public:
  Encoder(std::string_view word, size_t max_length)
      : max_length_(max_length) {
    word_.reserve(word.size());
    for (char c : word) {
      if (std::isalpha(static_cast<unsigned char>(c))) {
        word_.push_back(
            static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
      }
    }
    length_ = word_.size();
    last_ = length_ == 0 ? 0 : length_ - 1;
    // Pad so lookahead never falls off the end.
    word_.append(5, ' ');
  }

  MetaphoneCode Run();

 private:
  char CharAt(size_t pos) const {
    if (pos >= word_.size()) return ' ';
    return word_[pos];
  }

  bool IsVowel(size_t pos) const {
    const char c = CharAt(pos);
    return c == 'A' || c == 'E' || c == 'I' || c == 'O' || c == 'U' ||
           c == 'Y';
  }

  /// True when the substring of `length` chars starting at `start` equals
  /// any of `options`.
  bool StringAt(size_t start, size_t length,
                std::initializer_list<const char*> options) const {
    if (start > word_.size()) return false;
    const std::string_view view(word_.data() + start, length);
    for (const char* option : options) {
      if (view == option) return true;
    }
    return false;
  }

  bool Contains(std::initializer_list<const char*> needles) const {
    const std::string_view view(word_.data(), length_);
    for (const char* needle : needles) {
      if (view.find(needle) != std::string_view::npos) return true;
    }
    return false;
  }

  bool SlavoGermanic() const {
    return Contains({"W", "K", "CZ", "WITZ"});
  }

  void Add(const char* primary, const char* secondary) {
    primary_ += primary;
    secondary_ += secondary;
  }

  void Add(const char* both) { Add(both, both); }

  bool Done() const {
    return primary_.size() >= max_length_ &&
           secondary_.size() >= max_length_;
  }

  void HandleC(size_t& current);
  void HandleG(size_t& current);

  size_t max_length_;
  std::string word_;
  size_t length_ = 0;
  size_t last_ = 0;
  std::string primary_;
  std::string secondary_;
};

void Encoder::HandleC(size_t& current) {
  // Various Germanic contexts: "ACH" where not preceded by vowel etc.
  if (current > 1 && !IsVowel(current - 2) &&
      StringAt(current - 1, 3, {"ACH"}) &&
      CharAt(current + 2) != 'I' &&
      (CharAt(current + 2) != 'E' ||
       StringAt(current - 2, 6, {"BACHER", "MACHER"}))) {
    Add("K");
    current += 2;
    return;
  }
  // Special case "caesar".
  if (current == 0 && StringAt(current, 6, {"CAESAR"})) {
    Add("S");
    current += 2;
    return;
  }
  // Italian "chianti".
  if (StringAt(current, 4, {"CHIA"})) {
    Add("K");
    current += 2;
    return;
  }
  if (StringAt(current, 2, {"CH"})) {
    // "michael"
    if (current > 0 && StringAt(current, 4, {"CHAE"})) {
      Add("K", "X");
      current += 2;
      return;
    }
    // Greek roots, e.g. "chemistry", "chorus".
    if (current == 0 &&
        (StringAt(current + 1, 5, {"HARAC", "HARIS"}) ||
         StringAt(current + 1, 3, {"HOR", "HYM", "HIA", "HEM"})) &&
        !StringAt(0, 5, {"CHORE"})) {
      Add("K");
      current += 2;
      return;
    }
    // Germanic/Greek "ch" -> K.
    if ((Contains({"VAN ", "VON "}) || StringAt(0, 3, {"SCH"})) ||
        StringAt(current == 0 ? 0 : current - 2, 6,
                 {"ORCHES", "ARCHIT", "ORCHID"}) ||
        StringAt(current + 2, 1, {"T", "S"}) ||
        ((StringAt(current == 0 ? 0 : current - 1, 1,
                   {"A", "O", "U", "E"}) ||
          current == 0) &&
         StringAt(current + 2, 1,
                  {"L", "R", "N", "M", "B", "H", "F", "V", "W", " "}))) {
      Add("K");
    } else if (current > 0) {
      if (StringAt(0, 2, {"MC"})) {
        Add("K");
      } else {
        Add("X", "K");
      }
    } else {
      Add("X");
    }
    current += 2;
    return;
  }
  // "czerny"
  if (StringAt(current, 2, {"CZ"}) &&
      !(current >= 2 && StringAt(current - 2, 4, {"WICZ"}))) {
    Add("S", "X");
    current += 2;
    return;
  }
  // "focaccia"
  if (StringAt(current + 1, 3, {"CIA"})) {
    Add("X");
    current += 3;
    return;
  }
  // Double 'C' but not "McClellan".
  if (StringAt(current, 2, {"CC"}) &&
      !(current == 1 && CharAt(0) == 'M')) {
    if (StringAt(current + 2, 1, {"I", "E", "H"}) &&
        !StringAt(current + 2, 2, {"HU"})) {
      // "bellocchio" but not "bacchus".
      if ((current == 1 && CharAt(current - 1) == 'A') ||
          StringAt(current == 0 ? 0 : current - 1, 5,
                   {"UCCEE", "UCCES"})) {
        Add("KS");
      } else {
        Add("X");
      }
      current += 3;
      return;
    }
    // "Pierce's rule": CC -> K.
    Add("K");
    current += 2;
    return;
  }
  if (StringAt(current, 2, {"CK", "CG", "CQ"})) {
    Add("K");
    current += 2;
    return;
  }
  if (StringAt(current, 2, {"CI", "CE", "CY"})) {
    // Italian vs. English.
    if (StringAt(current, 3, {"CIO", "CIE", "CIA"})) {
      Add("S", "X");
    } else {
      Add("S");
    }
    current += 2;
    return;
  }
  Add("K");
  if (StringAt(current + 1, 2, {" C", " Q", " G"})) {
    current += 3;
  } else if (StringAt(current + 1, 1, {"C", "K", "Q"}) &&
             !StringAt(current + 1, 2, {"CE", "CI"})) {
    current += 2;
  } else {
    current += 1;
  }
}

void Encoder::HandleG(size_t& current) {
  if (CharAt(current + 1) == 'H') {
    if (current > 0 && !IsVowel(current - 1)) {
      Add("K");
      current += 2;
      return;
    }
    if (current == 0) {
      // "ghislane", "ghiradelli".
      if (CharAt(current + 2) == 'I') {
        Add("J");
      } else {
        Add("K");
      }
      current += 2;
      return;
    }
    // Parker's rule (with some further refinements): e.g., "hugh".
    if ((current > 1 && StringAt(current - 2, 1, {"B", "H", "D"})) ||
        (current > 2 && StringAt(current - 3, 1, {"B", "H", "D"})) ||
        (current > 3 && StringAt(current - 4, 1, {"B", "H"}))) {
      current += 2;
      return;
    }
    // "laugh", "cough", "rough", "tough".
    if (current > 2 && CharAt(current - 1) == 'U' &&
        StringAt(current - 3, 1, {"C", "G", "L", "R", "T"})) {
      Add("F");
    } else if (current > 0 && CharAt(current - 1) != 'I') {
      Add("K");
    }
    current += 2;
    return;
  }
  if (CharAt(current + 1) == 'N') {
    if (current == 1 && IsVowel(0) && !SlavoGermanic()) {
      Add("KN", "N");
    } else if (!StringAt(current + 2, 2, {"EY"}) &&
               CharAt(current + 1) != 'Y' && !SlavoGermanic()) {
      // Not e.g. "cagney".
      Add("N", "KN");
    } else {
      Add("KN");
    }
    current += 2;
    return;
  }
  // "tagliaro".
  if (StringAt(current + 1, 2, {"LI"}) && !SlavoGermanic()) {
    Add("KL", "L");
    current += 2;
    return;
  }
  // -ges-, -gep-, -gel- at beginning.
  if (current == 0 &&
      (CharAt(current + 1) == 'Y' ||
       StringAt(current + 1, 2,
                {"ES", "EP", "EB", "EL", "EY", "IB", "IL", "IN", "IE",
                 "EI", "ER"}))) {
    Add("K", "J");
    current += 2;
    return;
  }
  // -ger-, -gy-.
  if ((StringAt(current + 1, 2, {"ER"}) || CharAt(current + 1) == 'Y') &&
      !StringAt(0, 6, {"DANGER", "RANGER", "MANGER"}) &&
      !(current > 0 && StringAt(current - 1, 1, {"E", "I"})) &&
      !(current > 0 && StringAt(current - 1, 3, {"RGY", "OGY"}))) {
    Add("K", "J");
    current += 2;
    return;
  }
  // Italian, e.g. "biaggi".
  if (StringAt(current + 1, 1, {"E", "I", "Y"}) ||
      (current > 0 && StringAt(current - 1, 4, {"AGGI", "OGGI"}))) {
    // Germanic.
    if (Contains({"VAN ", "VON "}) || StringAt(0, 3, {"SCH"}) ||
        StringAt(current + 1, 2, {"ET"})) {
      Add("K");
    } else if (StringAt(current + 1, 4, {"IER "}) ||
               (current + 4 >= length_ &&
                StringAt(current + 1, 3, {"IER"}))) {
      // Always soft if French ending.
      Add("J");
    } else {
      Add("J", "K");
    }
    current += 2;
    return;
  }
  Add("K");
  current += CharAt(current + 1) == 'G' ? 2 : 1;
}

MetaphoneCode Encoder::Run() {
  MetaphoneCode result;
  if (length_ == 0) return result;

  size_t current = 0;

  // Skip silent initial letters.
  if (StringAt(0, 2, {"GN", "KN", "PN", "WR", "PS"})) {
    current += 1;
  }
  // Initial 'X' is pronounced 'Z' == 'S' (e.g., "Xavier").
  if (CharAt(0) == 'X') {
    Add("S");
    current += 1;
  }

  while (!Done() && current < length_) {
    switch (CharAt(current)) {
      case 'A':
      case 'E':
      case 'I':
      case 'O':
      case 'U':
      case 'Y':
        if (current == 0) Add("A");
        current += 1;
        break;

      case 'B':
        Add("P");
        current += CharAt(current + 1) == 'B' ? 2 : 1;
        break;

      case 'C':
        HandleC(current);
        break;

      case 'D':
        if (StringAt(current, 2, {"DG"})) {
          if (StringAt(current + 2, 1, {"I", "E", "Y"})) {
            // "edge".
            Add("J");
            current += 3;
          } else {
            // "edgar".
            Add("TK");
            current += 2;
          }
        } else if (StringAt(current, 2, {"DT", "DD"})) {
          Add("T");
          current += 2;
        } else {
          Add("T");
          current += 1;
        }
        break;

      case 'F':
        Add("F");
        current += CharAt(current + 1) == 'F' ? 2 : 1;
        break;

      case 'G':
        HandleG(current);
        break;

      case 'H':
        // Only keep if first & before vowel or between two vowels.
        if ((current == 0 || IsVowel(current - 1)) && IsVowel(current + 1)) {
          Add("H");
          current += 2;
        } else {
          current += 1;
        }
        break;

      case 'J':
        // Spanish, e.g. "jose", "san jacinto".
        if (StringAt(current, 4, {"JOSE"}) || Contains({"SAN "})) {
          if ((current == 0 && CharAt(current + 4) == ' ') ||
              Contains({"SAN "})) {
            Add("H");
          } else {
            Add("J", "H");
          }
          current += 1;
          break;
        }
        if (current == 0 && !StringAt(current, 4, {"JOSE"})) {
          Add("J", "A");  // e.g. "Yankelovich" / "Jankelowicz".
        } else if (IsVowel(current - 1) && !SlavoGermanic() &&
                   (CharAt(current + 1) == 'A' ||
                    CharAt(current + 1) == 'O')) {
          Add("J", "H");
        } else if (current == last_) {
          Add("J", "");
        } else if (!StringAt(current + 1, 1,
                             {"L", "T", "K", "S", "N", "M", "B", "Z"}) &&
                   !(current > 0 &&
                     StringAt(current - 1, 1, {"S", "K", "L"}))) {
          Add("J");
        }
        current += CharAt(current + 1) == 'J' ? 2 : 1;
        break;

      case 'K':
        Add("K");
        current += CharAt(current + 1) == 'K' ? 2 : 1;
        break;

      case 'L':
        if (CharAt(current + 1) == 'L') {
          // Spanish, e.g. "cabrillo", "gallegos".
          if ((current == length_ - 3 &&
               current > 0 &&
               StringAt(current - 1, 4, {"ILLO", "ILLA", "ALLE"})) ||
              ((StringAt(last_ == 0 ? 0 : last_ - 1, 2, {"AS", "OS"}) ||
                StringAt(last_, 1, {"A", "O"})) &&
               current > 0 && StringAt(current - 1, 4, {"ALLE"}))) {
            Add("L", "");
            current += 2;
            break;
          }
          Add("L");
          current += 2;
        } else {
          Add("L");
          current += 1;
        }
        break;

      case 'M':
        // "dumb", "thumb".
        if ((current > 0 && StringAt(current - 1, 3, {"UMB"}) &&
             (current + 1 == last_ ||
              StringAt(current + 2, 2, {"ER"}))) ||
            CharAt(current + 1) == 'M') {
          current += 2;
        } else {
          current += 1;
        }
        Add("M");
        break;

      case 'N':
        Add("N");
        current += CharAt(current + 1) == 'N' ? 2 : 1;
        break;

      case 'P':
        if (CharAt(current + 1) == 'H') {
          Add("F");
          current += 2;
        } else {
          Add("P");
          // Also account for "campbell", "raspberry".
          current += StringAt(current + 1, 1, {"P", "B"}) ? 2 : 1;
        }
        break;

      case 'Q':
        Add("K");
        current += CharAt(current + 1) == 'Q' ? 2 : 1;
        break;

      case 'R':
        // French, e.g. "rogier" — skip trailing silent R.
        if (current == last_ && !SlavoGermanic() && current > 1 &&
            StringAt(current - 2, 2, {"IE"}) &&
            !(current > 3 && StringAt(current - 4, 2, {"ME", "MA"}))) {
          Add("", "R");
        } else {
          Add("R");
        }
        current += CharAt(current + 1) == 'R' ? 2 : 1;
        break;

      case 'S':
        // Silent in "isle", "carlisle".
        if (current > 0 && StringAt(current - 1, 3, {"ISL", "YSL"})) {
          current += 1;
          break;
        }
        // "sugar".
        if (current == 0 && StringAt(current, 5, {"SUGAR"})) {
          Add("X", "S");
          current += 1;
          break;
        }
        if (StringAt(current, 2, {"SH"})) {
          // Germanic.
          if (StringAt(current + 1, 4,
                       {"HEIM", "HOEK", "HOLM", "HOLZ"})) {
            Add("S");
          } else {
            Add("X");
          }
          current += 2;
          break;
        }
        // Italian & Armenian.
        if (StringAt(current, 3, {"SIO", "SIA"}) ||
            StringAt(current, 4, {"SIAN"})) {
          if (!SlavoGermanic()) {
            Add("S", "X");
          } else {
            Add("S");
          }
          current += 3;
          break;
        }
        // German & Anglicizations, e.g. "smith" / "schmidt".
        if ((current == 0 &&
             StringAt(current + 1, 1, {"M", "N", "L", "W"})) ||
            StringAt(current + 1, 1, {"Z"})) {
          Add("S", "X");
          current += StringAt(current + 1, 1, {"Z"}) ? 2 : 1;
          break;
        }
        if (StringAt(current, 2, {"SC"})) {
          // Schlesinger's rule.
          if (CharAt(current + 2) == 'H') {
            // Dutch origin, e.g. "school", "schooner".
            if (StringAt(current + 3, 2,
                         {"OO", "ER", "EN", "UY", "ED", "EM"})) {
              // "schermerhorn", "schenker".
              if (StringAt(current + 3, 2, {"ER", "EN"})) {
                Add("X", "SK");
              } else {
                Add("SK");
              }
              current += 3;
              break;
            }
            if (current == 0 && !IsVowel(3) && CharAt(3) != 'W') {
              Add("X", "S");
            } else {
              Add("X");
            }
            current += 3;
            break;
          }
          if (StringAt(current + 2, 1, {"I", "E", "Y"})) {
            Add("S");
            current += 3;
            break;
          }
          Add("SK");
          current += 3;
          break;
        }
        // French, e.g. "resnais", "artois".
        if (current == last_ && current > 1 &&
            StringAt(current - 2, 2, {"AI", "OI"})) {
          Add("", "S");
        } else {
          Add("S");
        }
        current += StringAt(current + 1, 1, {"S", "Z"}) ? 2 : 1;
        break;

      case 'T':
        if (StringAt(current, 4, {"TION"}) ||
            StringAt(current, 3, {"TIA", "TCH"})) {
          Add("X");
          current += 3;
          break;
        }
        if (StringAt(current, 2, {"TH"}) ||
            StringAt(current, 3, {"TTH"})) {
          // Special case "thomas", "thames" or Germanic.
          if (StringAt(current + 2, 2, {"OM", "AM"}) ||
              Contains({"VAN ", "VON "}) || StringAt(0, 3, {"SCH"})) {
            Add("T");
          } else {
            Add("0", "T");  // '0' represents the "th" sound.
          }
          current += 2;
          break;
        }
        Add("T");
        current += StringAt(current + 1, 1, {"T", "D"}) ? 2 : 1;
        break;

      case 'V':
        Add("F");
        current += CharAt(current + 1) == 'V' ? 2 : 1;
        break;

      case 'W':
        // Can also be in the middle of a word (e.g. "arnow").
        if (StringAt(current, 2, {"WR"})) {
          Add("R");
          current += 2;
          break;
        }
        if (current == 0 &&
            (IsVowel(current + 1) || StringAt(current, 2, {"WH"}))) {
          if (IsVowel(current + 1)) {
            // "Wasserman" may be "Vasserman".
            Add("A", "F");
          } else {
            Add("A");
          }
        }
        // "Arnow" may be "Arnoff".
        if ((current == last_ && current > 0 && IsVowel(current - 1)) ||
            (current > 0 &&
             StringAt(current - 1, 5,
                      {"EWSKI", "EWSKY", "OWSKI", "OWSKY"})) ||
            StringAt(0, 3, {"SCH"})) {
          Add("", "F");
          current += 1;
          break;
        }
        // Polish, e.g. "filipowicz".
        if (StringAt(current, 4, {"WICZ", "WITZ"})) {
          Add("TS", "FX");
          current += 4;
          break;
        }
        current += 1;
        break;

      case 'X':
        // French, e.g. "breaux".
        if (!(current == last_ && current > 2 &&
              (StringAt(current - 3, 3, {"IAU", "EAU"}) ||
               StringAt(current - 2, 2, {"AU", "OU"})))) {
          Add("KS");
        }
        current += StringAt(current + 1, 1, {"C", "X"}) ? 2 : 1;
        break;

      case 'Z':
        // Chinese pinyin, e.g. "zhao".
        if (CharAt(current + 1) == 'H') {
          Add("J");
          current += 2;
          break;
        }
        if (StringAt(current + 1, 2, {"ZO", "ZI", "ZA"}) ||
            (SlavoGermanic() && current > 0 &&
             CharAt(current - 1) != 'T')) {
          Add("S", "TS");
        } else {
          Add("S");
        }
        current += CharAt(current + 1) == 'Z' ? 2 : 1;
        break;

      default:
        current += 1;
        break;
    }
  }

  if (primary_.size() > max_length_) primary_.resize(max_length_);
  if (secondary_.size() > max_length_) secondary_.resize(max_length_);
  result.primary = primary_;
  result.secondary = secondary_;
  return result;
}

}  // namespace

MetaphoneCode DoubleMetaphone::Encode(std::string_view word) const {
  Encoder encoder(word, max_code_length_);
  return encoder.Run();
}

std::string MetaphonePrimary(std::string_view word) {
  static const DoubleMetaphone kEncoder;
  return kEncoder.Encode(word).primary;
}

}  // namespace muve::phonetics
