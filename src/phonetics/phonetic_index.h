#ifndef MUVE_PHONETICS_PHONETIC_INDEX_H_
#define MUVE_PHONETICS_PHONETIC_INDEX_H_

#include <string>
#include <string_view>
#include <vector>

#include "phonetics/double_metaphone.h"

namespace muve::phonetics {

/// An entry returned by a phonetic lookup.
struct PhoneticMatch {
  std::string entry;        ///< The indexed vocabulary entry.
  double similarity = 0.0;  ///< Phonetic similarity in [0, 1].
};

/// Vocabulary index answering "k most phonetically similar entries"
/// queries, standing in for the Apache Lucene phonetic functionality the
/// paper uses (§3, typically k = 20).
///
/// Entries are encoded with Double Metaphone at insertion time; lookups
/// compare the query's codes to all stored codes with Jaro-Winkler. For the
/// vocabulary sizes MUVE handles (schema element names and distinct column
/// values), a scored linear scan is exact and fast.
class PhoneticIndex {
 public:
  PhoneticIndex() = default;

  /// Adds one vocabulary entry. Duplicate entries are ignored.
  void Add(std::string_view entry);

  /// Adds each entry of `entries`.
  void AddAll(const std::vector<std::string>& entries);

  /// Number of distinct entries in the index.
  size_t size() const { return entries_.size(); }

  /// Returns up to `k` entries most phonetically similar to `query`,
  /// sorted by descending similarity (ties broken lexicographically).
  /// When `include_exact` is false, an entry equal to `query` (case
  /// insensitive) is excluded — MUVE uses this to propose *alternatives*.
  std::vector<PhoneticMatch> TopK(std::string_view query, size_t k,
                                  bool include_exact = true) const;

  /// Phonetic similarity between `query` and a specific entry (whether or
  /// not the entry is indexed).
  static double Similarity(std::string_view query, std::string_view entry);

 private:
  struct IndexedEntry {
    std::string text;
    std::string lower;
    MetaphoneCode code;
  };

  std::vector<IndexedEntry> entries_;
};

}  // namespace muve::phonetics

#endif  // MUVE_PHONETICS_PHONETIC_INDEX_H_
