#ifndef MUVE_PHONETICS_PHONETIC_INDEX_H_
#define MUVE_PHONETICS_PHONETIC_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "phonetics/double_metaphone.h"

namespace muve::phonetics {

/// An entry returned by a phonetic lookup.
struct PhoneticMatch {
  std::string entry;        ///< The indexed vocabulary entry.
  double similarity = 0.0;  ///< Phonetic similarity in [0, 1].
};

/// Knobs for PhoneticIndex. Defaults give the pruned serial path.
struct PhoneticIndexOptions {
  /// Score every entry and fully sort (the pre-index linear scan). Kept as
  /// the differential oracle for the pruned path — the indexed lookup must
  /// return bit-identical entries, scores, and order.
  bool brute_force = false;

  /// Pool for parallel candidate scoring; null scores on the caller. The
  /// sweep partitioning depends only on the vocabulary size and a fixed
  /// grain, never the pool size, so results are identical for any pool.
  ThreadPool* pool = nullptr;

  /// Minimum vocabulary size before TopK fans out to the pool; below it
  /// the chunked sweep runs inline (identical partitioning, same result).
  size_t parallel_min_entries = 4096;
};

/// Counters from one TopK lookup. On the brute-force path only
/// `vocabulary` and `scored` are populated (nothing is pruned).
struct PhoneticLookupStats {
  size_t vocabulary = 0;     ///< Entries in the index at lookup time.
  size_t seeded = 0;         ///< Candidates scored by the blocking seed.
  size_t pruned_length = 0;  ///< Swept entries cut by the length-band bound.
  size_t pruned_mask = 0;    ///< Swept entries cut by the symbol-mask bound.
  size_t scored = 0;         ///< Full blended scores computed (incl. seeds).

  /// Fraction of the vocabulary that was never fully scored.
  double PrunedFraction() const {
    if (vocabulary == 0) return 0.0;
    return static_cast<double>(vocabulary - scored) /
           static_cast<double>(vocabulary);
  }
};

/// Vocabulary index answering "k most phonetically similar entries"
/// queries, standing in for the Apache Lucene phonetic functionality the
/// paper uses (§3, typically k = 20).
///
/// Entries are encoded with Double Metaphone at insertion time and bucketed
/// by code (exact-code blocking) and by (first code symbol, code length)
/// bands. A lookup scores the blocking buckets first to establish a kth
/// score threshold, then sweeps the rest of the vocabulary behind two
/// admissible Jaro-Winkler upper bounds (length-band, then symbol-mask; see
/// bounds.h) that discard entries provably below the threshold without
/// computing the full comparison. The sweep runs chunk-parallel on the
/// shared ThreadPool for large vocabularies. Every path — brute force,
/// serial pruned, parallel pruned at any thread count — returns
/// bit-identical results (entries, scores, and tie-break order).
class PhoneticIndex {
 public:
  PhoneticIndex() = default;
  explicit PhoneticIndex(const PhoneticIndexOptions& options)
      : options_(options) {}

  /// Adds one vocabulary entry. Duplicate entries (case insensitive) are
  /// ignored; the check is a hash lookup, so building is O(n) overall.
  void Add(std::string_view entry);

  /// Adds each entry of `entries`.
  void AddAll(const std::vector<std::string>& entries);

  /// Number of distinct entries in the index.
  size_t size() const { return entries_.size(); }

  const PhoneticIndexOptions& options() const { return options_; }

  /// Returns up to `k` entries most phonetically similar to `query`,
  /// sorted by descending similarity (ties broken lexicographically).
  /// When `include_exact` is false, an entry equal to `query` (case
  /// insensitive) is excluded — MUVE uses this to propose *alternatives*.
  /// When `stats` is non-null it receives the lookup's pruning counters.
  std::vector<PhoneticMatch> TopK(std::string_view query, size_t k,
                                  bool include_exact = true,
                                  PhoneticLookupStats* stats = nullptr) const;

  /// Phonetic similarity between `query` and a specific entry (whether or
  /// not the entry is indexed).
  static double Similarity(std::string_view query, std::string_view entry);

 private:
  struct IndexedEntry {
    std::string text;
    std::string lower;
    MetaphoneCode code;
    uint32_t primary_mask = 0;    ///< CodeSymbolMask(code.primary).
    uint32_t secondary_mask = 0;  ///< CodeSymbolMask(code.secondary).
    uint64_t lower_mask = 0;      ///< ByteMask(lower).
    bool has_secondary = false;   ///< code.secondary != code.primary.
  };

  /// (score, entry id) during selection; texts materialize only at the end.
  struct Candidate {
    double score = 0.0;
    uint32_t id = 0;
  };

  std::vector<PhoneticMatch> TopKBrute(const std::string& query_lower,
                                       const MetaphoneCode& query_code,
                                       size_t k, bool include_exact,
                                       PhoneticLookupStats* stats) const;

  std::vector<PhoneticMatch> TopKIndexed(const std::string& query_lower,
                                         const MetaphoneCode& query_code,
                                         size_t k, bool include_exact,
                                         PhoneticLookupStats* stats) const;

  PhoneticIndexOptions options_;
  std::vector<IndexedEntry> entries_;
  /// Lowered entry -> id. Deduplicates Add and resolves the excluded entry
  /// for include_exact=false in O(1).
  std::unordered_map<std::string, uint32_t> by_lower_;
  /// Double Metaphone code -> ids whose primary (or distinct secondary)
  /// code equals it. The highest-value blocking seed.
  std::unordered_map<std::string, std::vector<uint32_t>> code_buckets_;
  /// (first primary-code symbol, primary-code length) -> ids. Seeds near
  /// misses the exact-code buckets don't cover.
  std::unordered_map<uint16_t, std::vector<uint32_t>> band_buckets_;
};

}  // namespace muve::phonetics

#endif  // MUVE_PHONETICS_PHONETIC_INDEX_H_
