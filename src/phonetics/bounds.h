#ifndef MUVE_PHONETICS_BOUNDS_H_
#define MUVE_PHONETICS_BOUNDS_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace muve::phonetics {

/// Admissible upper bounds on Jaro-Winkler similarity, used by the
/// indexed PhoneticIndex::TopK to discard vocabulary entries that are
/// provably below the running kth score without computing the full
/// comparison. "Admissible" means: for every input pair the bound is
/// >= the exact JaroWinklerSimilarity of that pair (up to floating-point
/// rounding — the index prunes with a small slack, see
/// kPruneSlack below — and the property suite in tests/ asserts it over
/// randomized inputs), so pruning never changes the top-k result.
///
/// Derivations (m = Jaro match count, t = transpositions, la/lb =
/// lengths, p = Winkler common prefix <= 4):
///  - Jaro = (m/la + m/lb + (m - t/2)/m) / 3 with (m - t/2)/m <= 1 and
///    m <= any upper bound M on the match count, so
///    Jaro <= (M/la + M/lb + 1) / 3                     [JaroUpperBound]
///  - m <= min(la, lb); and every matched character of `a` has an equal
///    partner in `b`, so m is also bounded by the number of characters
///    of `a` (with multiplicity) whose symbol occurs anywhere in `b`
///    — computable from a symbol bitmask of `b`   [CommonSymbolUpperBound]
///  - JW = Jaro + p * 0.1 * (1 - Jaro) is increasing in Jaro (for
///    p * 0.1 < 1) and in p, so substituting an upper bound for Jaro and
///    the true (cheaply computed) prefix p keeps the bound admissible.
///  - Exact corner cases mirror JaroSimilarity: both strings empty -> 1,
///    exactly one empty -> 0, zero common symbols -> 0 (no match is
///    possible, and an equal first character would itself be a match).

/// Pruning slack: entries are pruned only when their upper bound is
/// below `kth_score - kPruneSlack`. The bounds above are admissible in
/// exact arithmetic; the slack absorbs the few-ulp rounding error of
/// evaluating them in doubles so a boundary tie can never be pruned.
inline constexpr double kPruneSlack = 1e-9;

/// 32-bit symbol-presence mask of a Double Metaphone code. Bits 0..25
/// are 'A'..'Z', bit 26 is '0' (the TH symbol); other bytes fold into
/// bit 27 (never emitted by the encoder, kept for safety).
uint32_t CodeSymbolMask(std::string_view code);

/// 64-bit folded byte-presence mask of an arbitrary (lowercased) string:
/// bit (c & 63) per byte. Collisions only weaken the bound (more bytes
/// appear shared than truly are), never break admissibility.
uint64_t ByteMask(std::string_view text);

/// Upper bound on the Jaro match count between `a` and `b`:
/// min(|a|, |b|, #chars of a present in mask_b, #chars of b present in
/// mask_a), counting with multiplicity on each counted side.
size_t CommonSymbolUpperBound(std::string_view a, uint32_t mask_a,
                              std::string_view b, uint32_t mask_b);

/// (M/la + M/lb + 1)/3 with M clamped to min(la, lb); exact 1/0 for the
/// empty corner cases.
double JaroUpperBound(size_t len_a, size_t len_b, size_t match_ub);

/// Admissible upper bound on JaroWinklerSimilarity(a, b) for Double
/// Metaphone codes, from lengths, the true common prefix, and the
/// symbol-mask match-count bound.
double CodePairUpperBound(std::string_view a, uint32_t mask_a,
                          std::string_view b, uint32_t mask_b);

/// Cheaper length-and-first-symbol-only variant (no mask): the "length
/// banding" stage — admissible but looser than CodePairUpperBound.
double CodePairLengthUpperBound(std::string_view a, std::string_view b);

/// Length-only bound for the spelling half: assumes every character could
/// match and the Winkler prefix is as long as possible. Admissible for any
/// pair of strings with these lengths.
double SpellingLengthUpperBound(size_t len_a, size_t len_b);

/// Admissible upper bound on JaroWinklerSimilarity(a, b) for arbitrary
/// byte strings (the spelling half of the blended score), using the
/// folded byte masks.
double SpellingUpperBound(std::string_view a, uint64_t mask_a,
                          std::string_view b, uint64_t mask_b);

}  // namespace muve::phonetics

#endif  // MUVE_PHONETICS_BOUNDS_H_
