#ifndef MUVE_PHONETICS_SIMILARITY_H_
#define MUVE_PHONETICS_SIMILARITY_H_

#include <string_view>

#include "phonetics/double_metaphone.h"

namespace muve::phonetics {

/// Jaro similarity in [0, 1]; 1 means identical, 0 means no matching
/// characters.
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity in [0, 1]: Jaro with a bonus for a common prefix
/// of up to four characters, scaled by `prefix_scale` (standard 0.1).
double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale = 0.1);

/// Jaro-Winkler similarity of two already-computed Double Metaphone codes:
/// the max over the distinct primary/secondary combinations. The shared
/// kernel behind PhoneticSimilarity and PhoneticIndex scoring, so the
/// brute-force and indexed lookup paths round identically.
double CodeSimilarity(const MetaphoneCode& a, const MetaphoneCode& b);

/// Phonetic similarity of two words per the paper (§3): both words are
/// mapped to Double Metaphone codes and compared with Jaro-Winkler. Takes
/// the max over primary/secondary code combinations.
double PhoneticSimilarity(std::string_view a, std::string_view b);

}  // namespace muve::phonetics

#endif  // MUVE_PHONETICS_SIMILARITY_H_
