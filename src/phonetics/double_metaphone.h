#ifndef MUVE_PHONETICS_DOUBLE_METAPHONE_H_
#define MUVE_PHONETICS_DOUBLE_METAPHONE_H_

#include <string>
#include <string_view>

namespace muve::phonetics {

/// Primary and secondary phonetic encodings of a word.
///
/// The secondary code differs from the primary only for words with
/// ambiguous pronunciation (e.g., "Schmidt" -> XMT / SMT).
struct MetaphoneCode {
  std::string primary;
  std::string secondary;

  bool operator==(const MetaphoneCode& other) const = default;
};

/// Encoder implementing Lawrence Philips' Double Metaphone algorithm
/// (C/C++ Users Journal, 1994/2000), the phonetic encoding MUVE uses to
/// find query elements that sound alike (paper §3, reference [24]).
///
/// The encoding maps English words to a small consonant-skeleton alphabet
/// so that words that are pronounced similarly receive similar (often
/// identical) codes, e.g. "Smith" and "Smyth" -> SM0/XMT.
class DoubleMetaphone {
 public:
  /// Maximum length of each emitted code (the traditional default is 4).
  explicit DoubleMetaphone(size_t max_code_length = 4)
      : max_code_length_(max_code_length) {}

  /// Encodes `word`. Non-alphabetic characters are ignored; encoding is
  /// case-insensitive. Empty input yields empty codes.
  MetaphoneCode Encode(std::string_view word) const;

 private:
  size_t max_code_length_;
};

/// Convenience wrapper: primary Double Metaphone code with default length.
std::string MetaphonePrimary(std::string_view word);

}  // namespace muve::phonetics

#endif  // MUVE_PHONETICS_DOUBLE_METAPHONE_H_
