#include "phonetics/phonetic_index.h"

#include <algorithm>

#include "common/strings.h"
#include "phonetics/similarity.h"

namespace muve::phonetics {

namespace {

const DoubleMetaphone& Encoder() {
  static const DoubleMetaphone kEncoder;
  return kEncoder;
}

double CodeSimilarity(const MetaphoneCode& a, const MetaphoneCode& b) {
  double best = JaroWinklerSimilarity(a.primary, b.primary);
  if (a.secondary != a.primary) {
    best = std::max(best, JaroWinklerSimilarity(a.secondary, b.primary));
  }
  if (b.secondary != b.primary) {
    best = std::max(best, JaroWinklerSimilarity(a.primary, b.secondary));
  }
  if (a.secondary != a.primary && b.secondary != b.primary) {
    best = std::max(best, JaroWinklerSimilarity(a.secondary, b.secondary));
  }
  return best;
}

}  // namespace

void PhoneticIndex::Add(std::string_view entry) {
  const std::string lower = ToLower(entry);
  for (const IndexedEntry& existing : entries_) {
    if (existing.lower == lower) return;
  }
  IndexedEntry indexed;
  indexed.text = std::string(entry);
  indexed.lower = lower;
  indexed.code = Encoder().Encode(entry);
  entries_.push_back(std::move(indexed));
}

void PhoneticIndex::AddAll(const std::vector<std::string>& entries) {
  for (const std::string& entry : entries) Add(entry);
}

std::vector<PhoneticMatch> PhoneticIndex::TopK(std::string_view query,
                                               size_t k,
                                               bool include_exact) const {
  const std::string query_lower = ToLower(query);
  const MetaphoneCode query_code = Encoder().Encode(query);

  std::vector<PhoneticMatch> matches;
  matches.reserve(entries_.size());
  for (const IndexedEntry& entry : entries_) {
    if (!include_exact && entry.lower == query_lower) continue;
    double similarity = CodeSimilarity(query_code, entry.code);
    // Break phonetic ties with the spelling similarity so that, e.g.,
    // lookups of "brooklyn" prefer "brooklyn" over "brookline".
    similarity = 0.9 * similarity +
                 0.1 * JaroWinklerSimilarity(query_lower, entry.lower);
    matches.push_back({entry.text, similarity});
  }
  std::sort(matches.begin(), matches.end(),
            [](const PhoneticMatch& a, const PhoneticMatch& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.entry < b.entry;
            });
  if (matches.size() > k) matches.resize(k);
  return matches;
}

double PhoneticIndex::Similarity(std::string_view query,
                                 std::string_view entry) {
  return PhoneticSimilarity(query, entry);
}

}  // namespace muve::phonetics
