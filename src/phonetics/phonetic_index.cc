#include "phonetics/phonetic_index.h"

#include <algorithm>
#include <queue>

#include "common/strings.h"
#include "phonetics/bounds.h"
#include "phonetics/similarity.h"

namespace muve::phonetics {

namespace {

const DoubleMetaphone& Encoder() {
  static const DoubleMetaphone kEncoder;
  return kEncoder;
}

/// Chunk size of the pruning sweep. Fixed (never derived from the pool
/// size) so the ParallelFor partitioning — and with it every per-chunk
/// heap and the merged result — is identical for every thread count,
/// including the inline null-pool path.
constexpr size_t kSweepGrain = 2048;

/// Cap on blocking-seed candidates scored before the sweep; bounds the
/// seeding cost on adversarial vocabularies (everything in one bucket).
/// Entries a full bucket leaves unseeded are still swept, so the cap
/// affects only how early the threshold tightens, never the result.
constexpr size_t kMaxSeedCandidates = 4096;

uint16_t BandKeyParts(unsigned char first_symbol, size_t code_length) {
  return static_cast<uint16_t>(first_symbol << 4 |
                               std::min<size_t>(code_length, 15));
}

uint16_t BandKey(std::string_view primary) {
  const unsigned char first =
      primary.empty() ? 0 : static_cast<unsigned char>(primary[0]);
  return BandKeyParts(first, primary.size());
}

/// The one scoring kernel both lookup paths share. A single out-of-line
/// definition guarantees both paths round identically, which is what makes
/// "indexed == brute force, bitwise" testable.
double BlendedScore(std::string_view query_lower,
                    const MetaphoneCode& query_code,
                    const MetaphoneCode& entry_code,
                    std::string_view entry_lower) {
  double similarity = CodeSimilarity(query_code, entry_code);
  // Break phonetic ties with the spelling similarity so that, e.g.,
  // lookups of "brooklyn" prefer "brooklyn" over "brookline".
  return 0.9 * similarity +
         0.1 * JaroWinklerSimilarity(query_lower, entry_lower);
}

}  // namespace

void PhoneticIndex::Add(std::string_view entry) {
  std::string lower = ToLower(entry);
  const uint32_t id = static_cast<uint32_t>(entries_.size());
  if (!by_lower_.try_emplace(lower, id).second) return;

  IndexedEntry indexed;
  indexed.text = std::string(entry);
  indexed.lower = std::move(lower);
  indexed.code = Encoder().Encode(entry);
  indexed.primary_mask = CodeSymbolMask(indexed.code.primary);
  indexed.secondary_mask = CodeSymbolMask(indexed.code.secondary);
  indexed.lower_mask = ByteMask(indexed.lower);
  indexed.has_secondary = indexed.code.secondary != indexed.code.primary;

  code_buckets_[indexed.code.primary].push_back(id);
  if (indexed.has_secondary) {
    code_buckets_[indexed.code.secondary].push_back(id);
  }
  band_buckets_[BandKey(indexed.code.primary)].push_back(id);
  entries_.push_back(std::move(indexed));
}

void PhoneticIndex::AddAll(const std::vector<std::string>& entries) {
  for (const std::string& entry : entries) Add(entry);
}

std::vector<PhoneticMatch> PhoneticIndex::TopK(
    std::string_view query, size_t k, bool include_exact,
    PhoneticLookupStats* stats) const {
  if (stats != nullptr) {
    *stats = PhoneticLookupStats{};
    stats->vocabulary = entries_.size();
  }
  if (k == 0 || entries_.empty()) return {};

  const std::string query_lower = ToLower(query);
  const MetaphoneCode query_code = Encoder().Encode(query);

  if (options_.brute_force) {
    return TopKBrute(query_lower, query_code, k, include_exact, stats);
  }
  return TopKIndexed(query_lower, query_code, k, include_exact, stats);
}

std::vector<PhoneticMatch> PhoneticIndex::TopKBrute(
    const std::string& query_lower, const MetaphoneCode& query_code, size_t k,
    bool include_exact, PhoneticLookupStats* stats) const {
  std::vector<PhoneticMatch> matches;
  matches.reserve(entries_.size());
  for (const IndexedEntry& entry : entries_) {
    if (!include_exact && entry.lower == query_lower) continue;
    matches.push_back(
        {entry.text,
         BlendedScore(query_lower, query_code, entry.code, entry.lower)});
  }
  if (stats != nullptr) stats->scored = matches.size();
  std::sort(matches.begin(), matches.end(),
            [](const PhoneticMatch& a, const PhoneticMatch& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.entry < b.entry;
            });
  if (matches.size() > k) matches.resize(k);
  return matches;
}

std::vector<PhoneticMatch> PhoneticIndex::TopKIndexed(
    const std::string& query_lower, const MetaphoneCode& query_code, size_t k,
    bool include_exact, PhoneticLookupStats* stats) const {
  const size_t n = entries_.size();
  const uint32_t q_pri_mask = CodeSymbolMask(query_code.primary);
  const uint32_t q_sec_mask = CodeSymbolMask(query_code.secondary);
  const uint64_t q_lower_mask = ByteMask(query_lower);
  const bool q_has_secondary = query_code.secondary != query_code.primary;

  // "a ranks strictly before b" — the same total order the brute path
  // sorts with (texts are unique, so it is total). Used both as the heap
  // comparator (heap top = worst kept) and for the final merge sort.
  const auto ranks_before = [this](const Candidate& a, const Candidate& b) {
    if (a.score != b.score) return a.score > b.score;
    return entries_[a.id].text < entries_[b.id].text;
  };
  using Heap = std::priority_queue<Candidate, std::vector<Candidate>,
                                   decltype(ranks_before)>;
  const auto push_candidate = [&](Heap& heap, const Candidate& c) {
    if (heap.size() < k) {
      heap.push(c);
    } else if (ranks_before(c, heap.top())) {
      heap.pop();
      heap.push(c);
    }
  };

  // ---- Seed phase: score the blocking buckets to establish a kth-score
  // threshold before the sweep. `seeded` doubles as the sweep skip mask;
  // it is written only here (single-threaded) and read-only in the sweep.
  std::vector<uint8_t> seeded(n, 0);
  if (!include_exact) {
    if (const auto it = by_lower_.find(query_lower); it != by_lower_.end()) {
      // The excluded exact match: marked seeded but never scored, so both
      // the seed phase and the sweep skip it.
      seeded[it->second] = 1;
    }
  }

  Heap seed_heap(ranks_before);
  size_t seeds_scored = 0;
  const auto consider_seed = [&](uint32_t id) {
    if (seeded[id]) return;
    seeded[id] = 1;
    const IndexedEntry& entry = entries_[id];
    ++seeds_scored;
    push_candidate(seed_heap,
                   {BlendedScore(query_lower, query_code, entry.code,
                                 entry.lower),
                    id});
  };
  const auto seed_bucket = [&](const std::vector<uint32_t>* bucket) {
    if (bucket == nullptr) return;
    for (uint32_t id : *bucket) {
      if (seeds_scored >= kMaxSeedCandidates) return;
      consider_seed(id);
    }
  };
  const auto find_code_bucket = [&](const std::string& code) {
    const auto it = code_buckets_.find(code);
    return it == code_buckets_.end() ? nullptr : &it->second;
  };
  const auto find_band_bucket = [&](uint16_t key) {
    const auto it = band_buckets_.find(key);
    return it == band_buckets_.end() ? nullptr : &it->second;
  };

  // Score the exact hit first: it is usually the global best and tightens
  // the threshold immediately.
  if (include_exact) {
    if (const auto it = by_lower_.find(query_lower); it != by_lower_.end()) {
      consider_seed(it->second);
    }
  }
  seed_bucket(find_code_bucket(query_code.primary));
  if (q_has_secondary) seed_bucket(find_code_bucket(query_code.secondary));
  // First-symbol blocking with +-1 length banding around the primary code.
  {
    const unsigned char first =
        query_code.primary.empty()
            ? 0
            : static_cast<unsigned char>(query_code.primary[0]);
    const size_t len = query_code.primary.size();
    seed_bucket(find_band_bucket(BandKeyParts(first, len)));
    if (len > 0) seed_bucket(find_band_bucket(BandKeyParts(first, len - 1)));
    seed_bucket(find_band_bucket(BandKeyParts(first, len + 1)));
  }

  const double seed_threshold =
      seed_heap.size() == k ? seed_heap.top().score : -1.0;

  // ---- Sweep phase: one pass over the flat entry array in fixed-grain
  // chunks. Each chunk keeps its own heap and prunes against
  // max(seed threshold, its local kth score) — both are kth-best scores of
  // subsets of the vocabulary, hence lower bounds on the global kth score,
  // so a pruned entry (upper bound strictly below) can never be in the
  // global top-k. No state is shared between chunks: the survivor set is
  // deterministic and identical for every thread count.
  struct ChunkResult {
    std::vector<Candidate> kept;
    size_t pruned_length = 0;
    size_t pruned_mask = 0;
    size_t scored = 0;
  };
  const size_t num_chunks = n == 0 ? 0 : (n + kSweepGrain - 1) / kSweepGrain;
  std::vector<ChunkResult> chunks(num_chunks);

  ThreadPool* pool =
      n >= options_.parallel_min_entries ? options_.pool : nullptr;
  ParallelFor(pool, n, kSweepGrain, [&](size_t chunk, size_t begin,
                                        size_t end) {
    ChunkResult& out = chunks[chunk];
    Heap heap(ranks_before);
    double threshold = seed_threshold;
    for (size_t i = begin; i < end; ++i) {
      if (seeded[i]) continue;
      const IndexedEntry& entry = entries_[i];
      const double cutoff = threshold - kPruneSlack;

      // Stage 1: length-band bound (lengths + first symbols only).
      double code_ub =
          CodePairLengthUpperBound(query_code.primary, entry.code.primary);
      if (q_has_secondary) {
        code_ub = std::max(code_ub, CodePairLengthUpperBound(
                                        query_code.secondary,
                                        entry.code.primary));
      }
      if (entry.has_secondary) {
        code_ub = std::max(code_ub, CodePairLengthUpperBound(
                                        query_code.primary,
                                        entry.code.secondary));
        if (q_has_secondary) {
          code_ub = std::max(code_ub, CodePairLengthUpperBound(
                                          query_code.secondary,
                                          entry.code.secondary));
        }
      }
      double upper = 0.9 * code_ub +
                     0.1 * SpellingLengthUpperBound(query_lower.size(),
                                                    entry.lower.size());
      if (upper < cutoff) {
        ++out.pruned_length;
        continue;
      }

      // Stage 2: common-symbol mask bound.
      code_ub = CodePairUpperBound(query_code.primary, q_pri_mask,
                                   entry.code.primary, entry.primary_mask);
      if (q_has_secondary) {
        code_ub = std::max(
            code_ub, CodePairUpperBound(query_code.secondary, q_sec_mask,
                                        entry.code.primary,
                                        entry.primary_mask));
      }
      if (entry.has_secondary) {
        code_ub = std::max(
            code_ub, CodePairUpperBound(query_code.primary, q_pri_mask,
                                        entry.code.secondary,
                                        entry.secondary_mask));
        if (q_has_secondary) {
          code_ub = std::max(
              code_ub, CodePairUpperBound(query_code.secondary, q_sec_mask,
                                          entry.code.secondary,
                                          entry.secondary_mask));
        }
      }
      upper = 0.9 * code_ub +
              0.1 * SpellingUpperBound(query_lower, q_lower_mask, entry.lower,
                                       entry.lower_mask);
      if (upper < cutoff) {
        ++out.pruned_mask;
        continue;
      }

      // Survivor: full blended score.
      ++out.scored;
      push_candidate(heap, {BlendedScore(query_lower, query_code, entry.code,
                                         entry.lower),
                            static_cast<uint32_t>(i)});
      if (heap.size() == k && heap.top().score > threshold) {
        threshold = heap.top().score;
      }
    }
    out.kept.reserve(heap.size());
    while (!heap.empty()) {
      out.kept.push_back(heap.top());
      heap.pop();
    }
  });

  // ---- Merge: the seed heap plus every chunk's survivors contain the
  // true top-k; sort with the brute-force comparator and truncate.
  std::vector<Candidate> merged;
  merged.reserve(seed_heap.size() + k * num_chunks);
  {
    Heap drained = std::move(seed_heap);
    while (!drained.empty()) {
      merged.push_back(drained.top());
      drained.pop();
    }
  }
  size_t swept_scored = 0;
  size_t pruned_length = 0;
  size_t pruned_mask = 0;
  for (ChunkResult& chunk : chunks) {
    merged.insert(merged.end(), chunk.kept.begin(), chunk.kept.end());
    swept_scored += chunk.scored;
    pruned_length += chunk.pruned_length;
    pruned_mask += chunk.pruned_mask;
  }
  std::sort(merged.begin(), merged.end(), ranks_before);
  if (merged.size() > k) merged.resize(k);

  if (stats != nullptr) {
    stats->seeded = seeds_scored;
    stats->pruned_length = pruned_length;
    stats->pruned_mask = pruned_mask;
    stats->scored = seeds_scored + swept_scored;
  }

  std::vector<PhoneticMatch> matches;
  matches.reserve(merged.size());
  for (const Candidate& candidate : merged) {
    matches.push_back({entries_[candidate.id].text, candidate.score});
  }
  return matches;
}

double PhoneticIndex::Similarity(std::string_view query,
                                 std::string_view entry) {
  return PhoneticSimilarity(query, entry);
}

}  // namespace muve::phonetics
