#include "phonetics/bounds.h"

#include <algorithm>

namespace muve::phonetics {

namespace {

inline uint32_t SymbolBit(char c) {
  if (c >= 'A' && c <= 'Z') return 1u << (c - 'A');
  if (c == '0') return 1u << 26;
  return 1u << 27;
}

inline size_t CommonPrefix(std::string_view a, std::string_view b) {
  const size_t max_prefix = std::min({size_t{4}, a.size(), b.size()});
  size_t prefix = 0;
  while (prefix < max_prefix && a[prefix] == b[prefix]) ++prefix;
  return prefix;
}

// JW = jaro + p * 0.1 * (1 - jaro) is increasing in jaro for p * 0.1 < 1,
// so evaluating it at an upper bound of jaro (and at any p >= the true
// prefix) stays an upper bound.
inline double WinklerFromJaroBound(double jaro_ub, size_t prefix) {
  return jaro_ub + static_cast<double>(prefix) * 0.1 * (1.0 - jaro_ub);
}

}  // namespace

uint32_t CodeSymbolMask(std::string_view code) {
  uint32_t mask = 0;
  for (char c : code) mask |= SymbolBit(c);
  return mask;
}

uint64_t ByteMask(std::string_view text) {
  uint64_t mask = 0;
  for (char c : text) {
    mask |= uint64_t{1} << (static_cast<unsigned char>(c) & 63);
  }
  return mask;
}

size_t CommonSymbolUpperBound(std::string_view a, uint32_t mask_a,
                              std::string_view b, uint32_t mask_b) {
  // Count with multiplicity on each side: a repeated symbol contributes
  // several matches only if it is counted several times, so taking the min
  // of the two per-side counts (and the length floor) stays >= the true
  // Jaro match count even for strings like "LL" vs "LL".
  size_t a_in_b = 0;
  for (char c : a) a_in_b += (mask_b & SymbolBit(c)) != 0 ? 1 : 0;
  size_t b_in_a = 0;
  for (char c : b) b_in_a += (mask_a & SymbolBit(c)) != 0 ? 1 : 0;
  return std::min({a_in_b, b_in_a, std::min(a.size(), b.size())});
}

double JaroUpperBound(size_t len_a, size_t len_b, size_t match_ub) {
  if (len_a == 0 && len_b == 0) return 1.0;
  if (len_a == 0 || len_b == 0) return 0.0;
  const size_t m = std::min(match_ub, std::min(len_a, len_b));
  if (m == 0) return 0.0;
  const double md = static_cast<double>(m);
  return (md / static_cast<double>(len_a) + md / static_cast<double>(len_b) +
          1.0) /
         3.0;
}

double CodePairUpperBound(std::string_view a, uint32_t mask_a,
                          std::string_view b, uint32_t mask_b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t match_ub = CommonSymbolUpperBound(a, mask_a, b, mask_b);
  const double jaro_ub = JaroUpperBound(a.size(), b.size(), match_ub);
  // match_ub == 0 implies a[0] != b[0] (an equal first character is itself
  // a common symbol), so the Winkler prefix is 0 and JW == Jaro == 0.
  if (jaro_ub == 0.0) return 0.0;
  return WinklerFromJaroBound(jaro_ub, CommonPrefix(a, b));
}

double CodePairLengthUpperBound(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const double jaro_ub =
      JaroUpperBound(a.size(), b.size(), std::min(a.size(), b.size()));
  return WinklerFromJaroBound(jaro_ub, CommonPrefix(a, b));
}

double SpellingLengthUpperBound(size_t len_a, size_t len_b) {
  if (len_a == 0 && len_b == 0) return 1.0;
  if (len_a == 0 || len_b == 0) return 0.0;
  const double jaro_ub = JaroUpperBound(len_a, len_b, std::min(len_a, len_b));
  const size_t prefix_ub = std::min({size_t{4}, len_a, len_b});
  return WinklerFromJaroBound(jaro_ub, prefix_ub);
}

double SpellingUpperBound(std::string_view a, uint64_t mask_a,
                          std::string_view b, uint64_t mask_b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  size_t a_in_b = 0;
  for (char c : a) {
    a_in_b += (mask_b >> (static_cast<unsigned char>(c) & 63)) & 1;
  }
  size_t b_in_a = 0;
  for (char c : b) {
    b_in_a += (mask_a >> (static_cast<unsigned char>(c) & 63)) & 1;
  }
  const size_t match_ub = std::min({a_in_b, b_in_a, std::min(a.size(), b.size())});
  const double jaro_ub = JaroUpperBound(a.size(), b.size(), match_ub);
  if (jaro_ub == 0.0) return 0.0;
  return WinklerFromJaroBound(jaro_ub, CommonPrefix(a, b));
}

}  // namespace muve::phonetics
