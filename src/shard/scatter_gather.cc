#include "shard/scatter_gather.h"

#include <string>
#include <utility>
#include <vector>

namespace muve::shard {

namespace {

/// Whether the shard scans run as parallel tasks on `options.shard_pool`.
bool ShardParallel(const ShardedSnapshot& snapshot,
                   const ScatterOptions& options) {
  return options.shard_pool != nullptr &&
         options.shard_pool->num_threads() >= 2 &&
         snapshot.shards.size() >= 2;
}

/// Per-shard executor options under shard-level parallelism: the shard
/// task itself is the unit of parallelism, so row partitioning inside it
/// is disabled.
db::ExecutorOptions ShardTaskOptions(const db::ExecutorOptions& base) {
  db::ExecutorOptions options = base;
  options.pool = nullptr;
  return options;
}

/// Shard-count agreement between the caller's snapshot and the remote
/// backend; a mismatch would silently merge the wrong stripes.
Status CheckBackendShards(const ShardedSnapshot& snapshot,
                          const PartialBackend& backend) {
  if (backend.num_shards() != snapshot.shards.size()) {
    return Status::InvalidArgument(
        "backend serves " + std::to_string(backend.num_shards()) +
        " shards but the snapshot has " +
        std::to_string(snapshot.shards.size()));
  }
  return Status::OK();
}

}  // namespace

Result<db::AggregateResult> ScatterGather::Execute(
    const ShardedSnapshot& snapshot, const db::AggregateQuery& query,
    const ScatterOptions& options) {
  if (snapshot.shards.empty()) {
    return Status::InvalidArgument("scatter needs at least one shard");
  }
  if (options.backend != nullptr) {
    MUVE_RETURN_NOT_OK(CheckBackendShards(snapshot, *options.backend));
    std::vector<Result<PartialBackend::AggregateOutcome>> outcomes =
        options.backend->ExecutePartialAll(query,
                                           options.executor.deadline);
    if (outcomes.size() != snapshot.shards.size()) {
      return Status::Internal("backend returned " +
                              std::to_string(outcomes.size()) +
                              " outcomes for " +
                              std::to_string(snapshot.shards.size()) +
                              " shards");
    }
    if (options.stats != nullptr) {
      options.stats->shards_total = outcomes.size();
    }
    db::AggregatePartial total;
    for (size_t s = 0; s < outcomes.size(); ++s) {
      MUVE_RETURN_NOT_OK(outcomes[s].status());
      if (outcomes[s]->dropped) {
        if (options.stats != nullptr) ++options.stats->shards_dropped;
        continue;
      }
      db::Executor::MergePartial(outcomes[s]->partial, &total);
    }
    return db::Executor::FinishAggregate(query.function, total);
  }
  if (snapshot.shards.size() == 1) {
    // The single-table oracle path, byte for byte.
    return db::Executor::Execute(snapshot.shards[0], query, options.executor);
  }

  const size_t num_shards = snapshot.shards.size();
  std::vector<Result<db::AggregatePartial>> partials;
  partials.assign(num_shards, db::AggregatePartial{});
  if (ShardParallel(snapshot, options)) {
    const db::ExecutorOptions task_options =
        ShardTaskOptions(options.executor);
    ParallelFor(options.shard_pool, num_shards, 1,
                [&](size_t chunk, size_t begin, size_t end) {
                  (void)chunk;
                  for (size_t s = begin; s < end; ++s) {
                    partials[s] = db::Executor::ExecutePartial(
                        snapshot.shards[s], query, task_options);
                  }
                });
  } else {
    for (size_t s = 0; s < num_shards; ++s) {
      partials[s] = db::Executor::ExecutePartial(snapshot.shards[s], query,
                                                 options.executor);
    }
  }

  db::AggregatePartial total;
  for (size_t s = 0; s < num_shards; ++s) {
    MUVE_RETURN_NOT_OK(partials[s].status());
    db::Executor::MergePartial(*partials[s], &total);
  }
  return db::Executor::FinishAggregate(query.function, total);
}

Result<db::GroupByResult> ScatterGather::ExecuteGrouped(
    const ShardedSnapshot& snapshot, const db::GroupByQuery& query,
    const ScatterOptions& options) {
  if (snapshot.shards.empty()) {
    return Status::InvalidArgument("scatter needs at least one shard");
  }
  if (options.backend != nullptr) {
    MUVE_RETURN_NOT_OK(CheckBackendShards(snapshot, *options.backend));
    std::vector<Result<PartialBackend::GroupedOutcome>> outcomes =
        options.backend->ExecuteGroupedPartialAll(
            query, options.executor.deadline);
    if (outcomes.size() != snapshot.shards.size()) {
      return Status::Internal("backend returned " +
                              std::to_string(outcomes.size()) +
                              " outcomes for " +
                              std::to_string(snapshot.shards.size()) +
                              " shards");
    }
    if (options.stats != nullptr) {
      options.stats->shards_total = outcomes.size();
    }
    db::GroupedPartial total = db::Executor::MakeGroupedIdentity(query);
    size_t rows_scanned = 0;
    for (size_t s = 0; s < outcomes.size(); ++s) {
      MUVE_RETURN_NOT_OK(outcomes[s].status());
      if (outcomes[s]->dropped) {
        if (options.stats != nullptr) ++options.stats->shards_dropped;
        continue;
      }
      const db::GroupedPartial& partial = outcomes[s]->partial;
      if (partial.cells.size() != total.cells.size() ||
          (!partial.cells.empty() && !total.cells.empty() &&
           partial.cells[0].size() != total.cells[0].size())) {
        return Status::Internal("shard " + std::to_string(s) +
                                " returned a grouped partial with the "
                                "wrong grid dimensions");
      }
      db::Executor::MergePartial(partial, &total);
      rows_scanned += static_cast<size_t>(outcomes[s]->rows_scanned);
    }
    return db::Executor::FinishGrouped(query, total, rows_scanned);
  }
  if (snapshot.shards.size() == 1) {
    return db::Executor::ExecuteGrouped(snapshot.shards[0], query,
                                        options.executor);
  }

  const size_t num_shards = snapshot.shards.size();
  std::vector<Result<db::GroupedPartial>> partials;
  partials.assign(num_shards, db::GroupedPartial{});
  if (ShardParallel(snapshot, options)) {
    const db::ExecutorOptions task_options =
        ShardTaskOptions(options.executor);
    ParallelFor(options.shard_pool, num_shards, 1,
                [&](size_t chunk, size_t begin, size_t end) {
                  (void)chunk;
                  for (size_t s = begin; s < end; ++s) {
                    partials[s] = db::Executor::ExecuteGroupedPartial(
                        snapshot.shards[s], query, task_options);
                  }
                });
  } else {
    for (size_t s = 0; s < num_shards; ++s) {
      partials[s] = db::Executor::ExecuteGroupedPartial(
          snapshot.shards[s], query, options.executor);
    }
  }

  db::GroupedPartial total = db::Executor::MakeGroupedIdentity(query);
  size_t rows_scanned = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    MUVE_RETURN_NOT_OK(partials[s].status());
    db::Executor::MergePartial(*partials[s], &total);
    rows_scanned += snapshot.shards[s].num_rows();
  }
  return db::Executor::FinishGrouped(query, total, rows_scanned);
}

}  // namespace muve::shard
