#ifndef MUVE_SHARD_SHARDED_TABLE_H_
#define MUVE_SHARD_SHARDED_TABLE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "db/relation.h"
#include "db/snapshot.h"
#include "db/table.h"

namespace muve::shard {

/// How rows are routed to shards.
enum class Partitioning {
  /// Route on a hash of the partition key column's value (rows with equal
  /// key values land on the same shard). With no key column configured,
  /// the append sequence number is hashed instead, spreading rows
  /// near-uniformly.
  kHash,
  /// Stripe contiguous append-order ranges over the shards round-robin:
  /// rows [0, stripe), [stripe, 2*stripe), ... go to shards 0, 1, ...
  /// Preserves locality of time-ordered appends while every shard keeps
  /// receiving data regardless of the total row count.
  kRange,
};

/// Configuration of a sharded table.
struct ShardedTableOptions {
  size_t num_shards = 1;
  Partitioning partitioning = Partitioning::kHash;
  /// kHash: the partition key column (case insensitive). Empty hashes the
  /// append sequence number instead. Must exist in the schema when set.
  std::string hash_column;
  /// kRange: rows per stripe.
  size_t range_stripe_rows = 4096;
  /// LSM knobs of every shard's backing table.
  db::TableOptions shard_options;
};

/// A consistent-per-shard view of a sharded table: one `TableSnapshot`
/// per shard, taken in shard order. Each shard's snapshot is a fully
/// consistent version of that shard; the combination is prefix-consistent
/// under live ingest (the single writer appends shard by shard, so a
/// cross-shard cut may straddle one in-flight append) — with no
/// concurrent writer it is exact.
struct ShardedSnapshot {
  std::vector<db::TableSnapshot> shards;
  /// ShardedTable::version() at capture time.
  uint64_t version = 0;

  size_t num_rows() const {
    size_t rows = 0;
    for (const db::TableSnapshot& shard : shards) rows += shard.num_rows();
    return rows;
  }
};

/// A relation partitioned into independent LSM tables (one `db::Table`
/// per shard), presenting the single-table catalog surface
/// (`db::Relation`) so planners, the schema index, and workload
/// generators run unchanged against it.
///
/// Appends route through the partitioning scheme; scans scatter over the
/// per-shard snapshots and gather partial aggregates in shard order (see
/// shard/scatter_gather.h). Global statistics (distinct counts, string
/// vocabularies in first-appearance order) are maintained at route time,
/// because per-shard statistics do not sum — the same value may appear on
/// several shards.
///
/// Concurrency contract: like `db::Table`, a single writer at a time may
/// call AppendRow while any number of readers take snapshots.
class ShardedTable : public db::Relation,
                     public std::enable_shared_from_this<ShardedTable> {
 public:
  static Result<std::shared_ptr<ShardedTable>> Create(
      std::string name, const std::vector<db::ColumnSpec>& schema,
      ShardedTableOptions options = {});

  /// Builds a sharded copy of an existing table: every row of one
  /// snapshot of `source`, appended in order and routed by `options`,
  /// with all shards flushed at the end.
  static Result<std::shared_ptr<ShardedTable>> FromTable(
      const db::Table& source, ShardedTableOptions options = {});

  // --- db::Relation ---------------------------------------------------

  const std::string& name() const override { return name_; }
  uint64_t id() const override { return id_; }
  uint64_t version() const override {
    return version_.load(std::memory_order_acquire);
  }
  const std::vector<db::ColumnSpec>& schema() const override {
    return schema_;
  }
  size_t num_columns() const override { return schema_.size(); }
  const db::ColumnSpec& spec(size_t index) const override {
    return schema_[index];
  }
  Result<size_t> ColumnIndex(const std::string& name) const override;
  std::vector<std::string> ColumnNames() const override;
  std::vector<std::string> ColumnNamesOfType(
      db::ValueType type) const override;
  size_t num_rows() const override {
    return num_rows_.load(std::memory_order_acquire);
  }
  size_t DistinctCount(size_t index) const override;
  std::vector<std::string> StringValues(size_t index) const override;
  std::vector<std::string> StringValues(
      const std::string& name) const override;

  // --- Writes ---------------------------------------------------------

  /// Appends one row to the shard the partitioning scheme routes it to.
  /// Single writer; bumps `version()` on success.
  Status AppendRow(const std::vector<db::Value>& values);

  /// The shard index the next appended row with these values would land
  /// on (exposed for routing tests).
  size_t RouteRow(const std::vector<db::Value>& values) const;

  // --- Reads ----------------------------------------------------------

  /// Per-shard snapshots in shard order (see ShardedSnapshot for the
  /// consistency contract).
  ShardedSnapshot Snapshot() const;

  size_t num_shards() const { return shards_.size(); }
  std::shared_ptr<const db::Table> shard(size_t index) const {
    return shards_[index];
  }

  /// Value at (row, col) of the shard-order concatenation of the current
  /// contents: shard 0's rows first, then shard 1's, ... Convenience for
  /// tests; the concatenation order is not the append order.
  db::Value ValueAt(size_t row, size_t col) const;

  /// A sharded sample: every shard sampled independently with
  /// `db::Table::Sample(fraction)`, wrapped with recomputed global
  /// statistics. Approximate-query scaling works as for the single
  /// table; the sampled row set differs from an unsharded sample of the
  /// same data (per-shard systematic strides), which is within the
  /// approximation contract.
  std::shared_ptr<ShardedTable> Sample(double fraction) const;

  // --- LSM storage controls (fan-out over all shards) -----------------

  const ShardedTableOptions& options() const { return options_; }
  void Flush();
  void Compact();
  void EnableBackgroundCompaction(ThreadPool* pool);

 private:
  ShardedTable(std::string name, std::vector<db::ColumnSpec> schema,
               ShardedTableOptions options,
               std::vector<std::shared_ptr<db::Table>> shards);

  /// Recomputes global statistics from the shards' current contents
  /// (used after wrapping pre-built shard tables, e.g. Sample()).
  void RebuildStats();

  /// Routes by (append sequence, row values) — kHash with a key column
  /// ignores `seq`, the other schemes ignore `values`.
  size_t RouteAt(uint64_t seq, const std::vector<db::Value>& values) const;

  std::string name_;
  std::vector<db::ColumnSpec> schema_;
  ShardedTableOptions options_;
  uint64_t id_ = 0;
  /// Index of options_.hash_column in the schema; SIZE_MAX when unset.
  size_t hash_column_index_ = SIZE_MAX;
  std::vector<std::shared_ptr<db::Table>> shards_;
  std::atomic<size_t> num_rows_{0};
  std::atomic<uint64_t> version_{0};

  /// Global per-column distinct tracking, mirroring db::Table's
  /// ColumnStats semantics (string vocabularies in first-appearance
  /// order of the global append sequence). Guarded by stats_mutex_.
  struct ColumnStats {
    std::vector<std::string> string_values;
    std::unordered_set<std::string> string_seen;
    std::unordered_set<int64_t> int_seen;
    std::unordered_set<double> double_seen;
  };
  mutable std::mutex stats_mutex_;
  std::vector<ColumnStats> stats_;
};

}  // namespace muve::shard

#endif  // MUVE_SHARD_SHARDED_TABLE_H_
