#ifndef MUVE_SHARD_SCATTER_GATHER_H_
#define MUVE_SHARD_SCATTER_GATHER_H_

#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "db/executor.h"
#include "shard/sharded_table.h"

namespace muve::shard {

/// Source of per-shard partial aggregates that live somewhere other than
/// the caller's address space — the seam where distribution plugs into
/// scatter-gather. `dist::Coordinator` implements it over sockets; the
/// gather arithmetic stays in ScatterGather either way, so a routed
/// answer merges the exact same partials in the exact same shard order
/// as the in-process path.
///
/// Failure taxonomy: a shard that cannot deliver its partial before the
/// deadline (stalled peer, connection refused after retries) comes back
/// as a successful outcome with `dropped = true` and the identity
/// partial — the gather proceeds without that stripe and reports the
/// drop, it never hangs. A hard application error (bad query, protocol
/// violation) comes back as an error Status and fails the whole gather,
/// first shard in shard order winning, exactly like a local shard scan
/// error.
class PartialBackend {
 public:
  struct AggregateOutcome {
    db::AggregatePartial partial;
    /// The shard's snapshot version at scan time.
    uint64_t snapshot_version = 0;
    uint64_t rows_scanned = 0;
    /// True when the shard missed the deadline; `partial` is the merge
    /// identity and `rows_scanned` is 0.
    bool dropped = false;
  };
  struct GroupedOutcome {
    db::GroupedPartial partial;
    uint64_t snapshot_version = 0;
    uint64_t rows_scanned = 0;
    bool dropped = false;
  };

  virtual ~PartialBackend() = default;

  virtual size_t num_shards() const = 0;

  /// One outcome per shard, in shard order (size() == num_shards()).
  /// Implementations scatter concurrently but the returned vector is
  /// positionally ordered, so the caller's fold order is deterministic.
  virtual std::vector<Result<AggregateOutcome>> ExecutePartialAll(
      const db::AggregateQuery& query, const Deadline& deadline) = 0;
  virtual std::vector<Result<GroupedOutcome>> ExecuteGroupedPartialAll(
      const db::GroupByQuery& query, const Deadline& deadline) = 0;
};

/// Per-gather observability (filled when ScatterOptions::stats is set).
struct ScatterStats {
  size_t shards_total = 0;
  /// Shards whose partial missed the deadline and was excluded from the
  /// merge — the answer covers the surviving stripes only.
  size_t shards_dropped = 0;
};

/// Controls one scatter-gather execution.
struct ScatterOptions {
  /// Per-shard executor configuration (cache, vectorization, deadline,
  /// row-partitioning pool). The result cache may be shared across
  /// shards — entries key on each shard table's own id.
  db::ExecutorOptions executor;
  /// Pool for shard-level parallelism: with >= 2 shards, per-shard scans
  /// run as parallel tasks on this pool and `executor.pool` is ignored
  /// for them (one level of parallelism at a time — shard tasks never
  /// nest row partitioning). Null scans the shards serially, each shard
  /// free to row-partition on `executor.pool`.
  ThreadPool* shard_pool = nullptr;
  /// When set, shard partials come from this backend (remote shard
  /// servers) instead of scanning `snapshot` locally; the snapshot then
  /// only supplies the expected shard count. `executor.deadline` bounds
  /// the remote gather. Must expose exactly as many shards as the
  /// snapshot.
  PartialBackend* backend = nullptr;
  /// Optional out-param for drop accounting.
  ScatterStats* stats = nullptr;
};

/// Scatter-gather execution over a sharded snapshot.
///
/// Merge contract: every shard scan produces the same partial-aggregate
/// state a single-table scan produces per storage segment
/// (`db::AggregatePartial` / `db::GroupedPartial`), and the per-shard
/// partials are folded **in shard order** with the same merge arithmetic
/// the executor applies to its per-segment partials. COUNT/MIN/MAX are
/// order-invariant and exact; double SUM/AVG accumulate in a fixed
/// deterministic order, so a given shard layout always reproduces its own
/// results bit-for-bit. Across *different* shard counts the grouping of
/// the same additions changes; for sums that are exactly representable
/// (integer data, dyadic-grid doubles within range) the result is
/// bit-identical to the unsharded scan — the shard differential suite
/// asserts exactly that — while arbitrary doubles may differ in the last
/// bit, as in any distributed aggregation.
///
/// A single-shard snapshot takes `db::Executor`'s single-table path
/// unchanged, which is the oracle the differential suites compare
/// against. Errors surface deterministically: the first failing shard in
/// shard order wins.
///
/// With `options.backend` set the partials arrive over the wire instead
/// of from local scans, but the fold is the same code in the same order,
/// so a routed gather is byte-identical to the in-process one whenever
/// every shard reports (dropped shards shrink the merge to the surviving
/// stripes and are counted in `options.stats`).
class ScatterGather {
 public:
  static Result<db::AggregateResult> Execute(
      const ShardedSnapshot& snapshot, const db::AggregateQuery& query,
      const ScatterOptions& options = {});

  static Result<db::GroupByResult> ExecuteGrouped(
      const ShardedSnapshot& snapshot, const db::GroupByQuery& query,
      const ScatterOptions& options = {});
};

}  // namespace muve::shard

#endif  // MUVE_SHARD_SCATTER_GATHER_H_
