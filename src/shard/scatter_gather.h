#ifndef MUVE_SHARD_SCATTER_GATHER_H_
#define MUVE_SHARD_SCATTER_GATHER_H_

#include "common/status.h"
#include "common/thread_pool.h"
#include "db/executor.h"
#include "shard/sharded_table.h"

namespace muve::shard {

/// Controls one scatter-gather execution.
struct ScatterOptions {
  /// Per-shard executor configuration (cache, vectorization, deadline,
  /// row-partitioning pool). The result cache may be shared across
  /// shards — entries key on each shard table's own id.
  db::ExecutorOptions executor;
  /// Pool for shard-level parallelism: with >= 2 shards, per-shard scans
  /// run as parallel tasks on this pool and `executor.pool` is ignored
  /// for them (one level of parallelism at a time — shard tasks never
  /// nest row partitioning). Null scans the shards serially, each shard
  /// free to row-partition on `executor.pool`.
  ThreadPool* shard_pool = nullptr;
};

/// Scatter-gather execution over a sharded snapshot.
///
/// Merge contract: every shard scan produces the same partial-aggregate
/// state a single-table scan produces per storage segment
/// (`db::AggregatePartial` / `db::GroupedPartial`), and the per-shard
/// partials are folded **in shard order** with the same merge arithmetic
/// the executor applies to its per-segment partials. COUNT/MIN/MAX are
/// order-invariant and exact; double SUM/AVG accumulate in a fixed
/// deterministic order, so a given shard layout always reproduces its own
/// results bit-for-bit. Across *different* shard counts the grouping of
/// the same additions changes; for sums that are exactly representable
/// (integer data, dyadic-grid doubles within range) the result is
/// bit-identical to the unsharded scan — the shard differential suite
/// asserts exactly that — while arbitrary doubles may differ in the last
/// bit, as in any distributed aggregation.
///
/// A single-shard snapshot takes `db::Executor`'s single-table path
/// unchanged, which is the oracle the differential suites compare
/// against. Errors surface deterministically: the first failing shard in
/// shard order wins.
class ScatterGather {
 public:
  static Result<db::AggregateResult> Execute(
      const ShardedSnapshot& snapshot, const db::AggregateQuery& query,
      const ScatterOptions& options = {});

  static Result<db::GroupByResult> ExecuteGrouped(
      const ShardedSnapshot& snapshot, const db::GroupByQuery& query,
      const ScatterOptions& options = {});
};

}  // namespace muve::shard

#endif  // MUVE_SHARD_SCATTER_GATHER_H_
