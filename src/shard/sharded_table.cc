#include "shard/sharded_table.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <utility>

#include "common/strings.h"

namespace muve::shard {

namespace {

/// Process-wide id source for sharded tables. Seeded far from db::Table's
/// counter so a sharded table's id can never collide with a shard's own
/// table id in logs; caches only ever key on the shard tables' ids.
uint64_t NextShardedTableId() {
  static std::atomic<uint64_t> next{1};
  return (uint64_t{1} << 32) + next.fetch_add(1, std::memory_order_relaxed);
}

/// FNV-1a 64-bit.
inline uint64_t Fnv1a(const void* data, size_t len,
                      uint64_t hash = 1469598103934665603ull) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

inline uint64_t HashValue(const db::Value& value, db::ValueType type) {
  switch (type) {
    case db::ValueType::kInt64: {
      const int64_t v = value.is_int64() ? value.AsInt64() : 0;
      return Fnv1a(&v, sizeof(v));
    }
    case db::ValueType::kDouble: {
      // Hash the bit pattern of the schema-normalized double so int64
      // literals appended to a DOUBLE column route like their promoted
      // value.
      const double v =
          value.is_string() ? 0.0 : value.AsDouble();
      uint64_t bits = 0;
      std::memcpy(&bits, &v, sizeof(bits));
      return Fnv1a(&bits, sizeof(bits));
    }
    case db::ValueType::kString: {
      if (!value.is_string()) return Fnv1a(nullptr, 0);
      const std::string& s = value.AsString();
      return Fnv1a(s.data(), s.size());
    }
  }
  return 0;
}

}  // namespace

ShardedTable::ShardedTable(std::string name,
                           std::vector<db::ColumnSpec> schema,
                           ShardedTableOptions options,
                           std::vector<std::shared_ptr<db::Table>> shards)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      options_(std::move(options)),
      id_(NextShardedTableId()),
      shards_(std::move(shards)),
      stats_(schema_.size()) {
  if (!options_.hash_column.empty()) {
    for (size_t i = 0; i < schema_.size(); ++i) {
      if (EqualsIgnoreCase(schema_[i].name, options_.hash_column)) {
        hash_column_index_ = i;
        break;
      }
    }
  }
}

Result<std::shared_ptr<ShardedTable>> ShardedTable::Create(
    std::string name, const std::vector<db::ColumnSpec>& schema,
    ShardedTableOptions options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("sharded table '" + name +
                                   "' needs at least one shard");
  }
  if (!options.hash_column.empty()) {
    bool found = false;
    for (const db::ColumnSpec& spec : schema) {
      if (EqualsIgnoreCase(spec.name, options.hash_column)) {
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("hash column '" + options.hash_column +
                                     "' not in schema of table '" + name +
                                     "'");
    }
  }
  options.range_stripe_rows = std::max<size_t>(1, options.range_stripe_rows);
  std::vector<std::shared_ptr<db::Table>> shards;
  shards.reserve(options.num_shards);
  for (size_t i = 0; i < options.num_shards; ++i) {
    MUVE_ASSIGN_OR_RETURN(
        std::shared_ptr<db::Table> shard,
        db::Table::Create(name + "#" + std::to_string(i), schema,
                          options.shard_options));
    shards.push_back(std::move(shard));
  }
  return std::shared_ptr<ShardedTable>(new ShardedTable(
      std::move(name), schema, std::move(options), std::move(shards)));
}

Result<std::shared_ptr<ShardedTable>> ShardedTable::FromTable(
    const db::Table& source, ShardedTableOptions options) {
  MUVE_ASSIGN_OR_RETURN(
      std::shared_ptr<ShardedTable> sharded,
      Create(source.name(), source.schema(), std::move(options)));
  const db::TableSnapshot snapshot = source.Snapshot();
  std::vector<db::Value> row(source.num_columns());
  for (size_t r = 0; r < snapshot.num_rows(); ++r) {
    for (size_t c = 0; c < row.size(); ++c) {
      row[c] = snapshot.ValueAt(r, c);
    }
    MUVE_RETURN_NOT_OK(sharded->AppendRow(row));
  }
  sharded->Flush();
  return sharded;
}

Result<size_t> ShardedTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (EqualsIgnoreCase(schema_[i].name, name)) return i;
  }
  return Status::NotFound("no column '" + name + "' in table '" + name_ +
                          "'");
}

std::vector<std::string> ShardedTable::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(schema_.size());
  for (const auto& spec : schema_) names.push_back(spec.name);
  return names;
}

std::vector<std::string> ShardedTable::ColumnNamesOfType(
    db::ValueType type) const {
  std::vector<std::string> names;
  for (const auto& spec : schema_) {
    if (spec.type == type) names.push_back(spec.name);
  }
  return names;
}

size_t ShardedTable::DistinctCount(size_t index) const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  const ColumnStats& stats = stats_[index];
  switch (schema_[index].type) {
    case db::ValueType::kInt64:
      return stats.int_seen.size();
    case db::ValueType::kDouble:
      return stats.double_seen.size();
    case db::ValueType::kString:
      return stats.string_values.size();
  }
  return 0;
}

std::vector<std::string> ShardedTable::StringValues(size_t index) const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_[index].string_values;
}

std::vector<std::string> ShardedTable::StringValues(
    const std::string& name) const {
  auto index = ColumnIndex(name);
  if (!index.ok()) return {};
  return StringValues(*index);
}

size_t ShardedTable::RouteAt(uint64_t seq,
                             const std::vector<db::Value>& values) const {
  if (shards_.size() == 1) return 0;
  switch (options_.partitioning) {
    case Partitioning::kHash: {
      uint64_t hash = 0;
      if (hash_column_index_ != SIZE_MAX &&
          hash_column_index_ < values.size()) {
        hash = HashValue(values[hash_column_index_],
                         schema_[hash_column_index_].type);
      } else {
        hash = Fnv1a(&seq, sizeof(seq));
      }
      return static_cast<size_t>(hash % shards_.size());
    }
    case Partitioning::kRange: {
      const uint64_t stripe = seq / options_.range_stripe_rows;
      return static_cast<size_t>(stripe % shards_.size());
    }
  }
  return 0;
}

size_t ShardedTable::RouteRow(const std::vector<db::Value>& values) const {
  return RouteAt(num_rows_.load(std::memory_order_acquire), values);
}

Status ShardedTable::AppendRow(const std::vector<db::Value>& values) {
  const uint64_t seq = num_rows_.load(std::memory_order_relaxed);
  const size_t target = RouteAt(seq, values);
  MUVE_RETURN_NOT_OK(shards_[target]->AppendRow(values));
  {
    // The shard validated and normalized the row; track global distincts
    // with the same normalization (int64 promotes on DOUBLE columns).
    std::lock_guard<std::mutex> lock(stats_mutex_);
    for (size_t i = 0; i < values.size(); ++i) {
      ColumnStats& stats = stats_[i];
      switch (schema_[i].type) {
        case db::ValueType::kInt64:
          stats.int_seen.insert(values[i].AsInt64());
          break;
        case db::ValueType::kDouble:
          stats.double_seen.insert(values[i].AsDouble());
          break;
        case db::ValueType::kString:
          if (stats.string_seen.insert(values[i].AsString()).second) {
            stats.string_values.push_back(values[i].AsString());
          }
          break;
      }
    }
  }
  num_rows_.fetch_add(1, std::memory_order_release);
  version_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

ShardedSnapshot ShardedTable::Snapshot() const {
  ShardedSnapshot snapshot;
  snapshot.version = version_.load(std::memory_order_acquire);
  snapshot.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    snapshot.shards.push_back(shard->Snapshot());
  }
  return snapshot;
}

db::Value ShardedTable::ValueAt(size_t row, size_t col) const {
  for (const auto& shard : shards_) {
    const db::TableSnapshot snapshot = shard->Snapshot();
    if (row < snapshot.num_rows()) return snapshot.ValueAt(row, col);
    row -= snapshot.num_rows();
  }
  return db::Value();
}

void ShardedTable::RebuildStats() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.assign(schema_.size(), ColumnStats());
  size_t rows = 0;
  for (const auto& shard : shards_) {
    const db::TableSnapshot snapshot = shard->Snapshot();
    rows += snapshot.num_rows();
    for (size_t r = 0; r < snapshot.num_rows(); ++r) {
      for (size_t c = 0; c < schema_.size(); ++c) {
        const db::Value value = snapshot.ValueAt(r, c);
        ColumnStats& stats = stats_[c];
        switch (schema_[c].type) {
          case db::ValueType::kInt64:
            stats.int_seen.insert(value.AsInt64());
            break;
          case db::ValueType::kDouble:
            stats.double_seen.insert(value.AsDouble());
            break;
          case db::ValueType::kString:
            if (stats.string_seen.insert(value.AsString()).second) {
              stats.string_values.push_back(value.AsString());
            }
            break;
        }
      }
    }
  }
  num_rows_.store(rows, std::memory_order_release);
  version_.store(rows, std::memory_order_release);
}

std::shared_ptr<ShardedTable> ShardedTable::Sample(double fraction) const {
  std::vector<std::shared_ptr<db::Table>> sampled;
  sampled.reserve(shards_.size());
  for (const auto& shard : shards_) {
    sampled.push_back(shard->Sample(fraction));
  }
  std::shared_ptr<ShardedTable> out(new ShardedTable(
      name_ + "_sample", schema_, options_, std::move(sampled)));
  out->RebuildStats();
  return out;
}

void ShardedTable::Flush() {
  for (const auto& shard : shards_) shard->Flush();
}

void ShardedTable::Compact() {
  for (const auto& shard : shards_) shard->Compact();
}

void ShardedTable::EnableBackgroundCompaction(ThreadPool* pool) {
  for (const auto& shard : shards_) shard->EnableBackgroundCompaction(pool);
}

}  // namespace muve::shard
