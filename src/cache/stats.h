#ifndef MUVE_CACHE_STATS_H_
#define MUVE_CACHE_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace muve::cache {

/// Plain-value copy of a cache's counters, safe to aggregate and compare.
struct StatsSnapshot {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;  ///< Entries purged by table-version bumps.

  uint64_t lookups() const { return hits + misses; }

  /// Fraction of lookups served from the cache (0 when never looked up).
  double hit_rate() const;

  /// "hits=12 misses=3 evictions=0 invalidations=0 hit_rate=0.800".
  std::string ToString() const;

  StatsSnapshot& operator+=(const StatsSnapshot& other);
};

/// Thread-safe hit/miss/eviction/invalidation counters shared by the
/// session caches. Counters use relaxed atomics: they are monotonic
/// tallies, never used to synchronize cached data (the caches' own
/// mutexes do that), so total ordering against cache contents is not
/// required — only that every operation is counted exactly once.
class Stats {
 public:
  Stats() = default;
  Stats(const Stats&) = delete;
  Stats& operator=(const Stats&) = delete;

  void RecordHit() { hits_.fetch_add(1, std::memory_order_relaxed); }
  void RecordMiss() { misses_.fetch_add(1, std::memory_order_relaxed); }
  void RecordEvictions(uint64_t n) {
    evictions_.fetch_add(n, std::memory_order_relaxed);
  }
  void RecordInvalidations(uint64_t n) {
    invalidations_.fetch_add(n, std::memory_order_relaxed);
  }

  StatsSnapshot Snapshot() const;

  void Reset();

 private:
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace muve::cache

#endif  // MUVE_CACHE_STATS_H_
