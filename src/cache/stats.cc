#include "cache/stats.h"

#include "common/strings.h"

namespace muve::cache {

double StatsSnapshot::hit_rate() const {
  const uint64_t total = lookups();
  if (total == 0) return 0.0;
  return static_cast<double>(hits) / static_cast<double>(total);
}

std::string StatsSnapshot::ToString() const {
  return "hits=" + std::to_string(hits) + " misses=" +
         std::to_string(misses) + " evictions=" + std::to_string(evictions) +
         " invalidations=" + std::to_string(invalidations) +
         " hit_rate=" + FormatDouble(hit_rate(), 3);
}

StatsSnapshot& StatsSnapshot::operator+=(const StatsSnapshot& other) {
  hits += other.hits;
  misses += other.misses;
  evictions += other.evictions;
  invalidations += other.invalidations;
  return *this;
}

StatsSnapshot Stats::Snapshot() const {
  StatsSnapshot out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.invalidations = invalidations_.load(std::memory_order_relaxed);
  return out;
}

void Stats::Reset() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  invalidations_.store(0, std::memory_order_relaxed);
}

}  // namespace muve::cache
