#ifndef MUVE_CACHE_LRU_CACHE_H_
#define MUVE_CACHE_LRU_CACHE_H_

#include <cstddef>
#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "cache/stats.h"

namespace muve::cache {

/// Capacity-bounded, thread-safe LRU map used for every session cache in
/// MUVE (query results, phonetic candidate sets, compiled plans).
///
/// Semantics:
///  - `Get` copies the value out and refreshes the entry's recency.
///  - `Put` inserts or overwrites, evicting the least recently used entry
///    once `capacity` is exceeded.
///  - Capacity 0 is the disabled cache: `Put` is a no-op and `Get` always
///    misses, so callers fall through to the exact uncached path without
///    a separate code branch.
///
/// All operations take one internal mutex, so a cache may be shared by
/// ThreadPool workers (concurrent merge units, partitioned scans).
/// Counters live in a `cache::Stats`, either internal or shared across
/// several caches via the constructor.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  /// `stats` may point at a shared counter block; null uses an internal
  /// one. The Stats object must outlive the cache.
  explicit LruCache(size_t capacity, Stats* stats = nullptr)
      : capacity_(capacity),
        stats_(stats != nullptr ? stats : &owned_stats_) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  size_t capacity() const { return capacity_; }
  bool enabled() const { return capacity_ > 0; }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

  /// On a hit, copies the cached value into `*out`, marks the entry most
  /// recently used, and returns true. Every call counts a hit or a miss.
  bool Get(const Key& key, Value* out) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      stats_->RecordMiss();
      return false;
    }
    entries_.splice(entries_.begin(), entries_, it->second);
    *out = entries_.front().second;
    stats_->RecordHit();
    return true;
  }

  /// Inserts or overwrites `key`, making it the most recent entry and
  /// evicting from the LRU end beyond capacity. No-op when disabled.
  void Put(const Key& key, Value value) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      entries_.splice(entries_.begin(), entries_, it->second);
      return;
    }
    entries_.emplace_front(key, std::move(value));
    index_.emplace(key, entries_.begin());
    if (entries_.size() > capacity_) {
      index_.erase(entries_.back().first);
      entries_.pop_back();
      stats_->RecordEvictions(1);
    }
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    index_.clear();
  }

  /// Removes every entry whose key satisfies `pred`; returns how many
  /// were removed. Used for invalidation sweeps (the caller decides
  /// whether removals count as invalidations in its Stats).
  template <typename Pred>
  size_t EraseIf(const Pred& pred) {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t erased = 0;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (pred(it->first)) {
        index_.erase(it->first);
        it = entries_.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
    return erased;
  }

  StatsSnapshot stats() const { return stats_->Snapshot(); }

 private:
  const size_t capacity_;
  Stats owned_stats_;
  Stats* const stats_;
  mutable std::mutex mutex_;
  /// Front = most recently used. `index_` maps key -> list node.
  std::list<std::pair<Key, Value>> entries_;
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                     Hash>
      index_;
};

}  // namespace muve::cache

#endif  // MUVE_CACHE_LRU_CACHE_H_
