#ifndef MUVE_CACHE_QUERY_CACHE_H_
#define MUVE_CACHE_QUERY_CACHE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "cache/lru_cache.h"
#include "cache/stats.h"
#include "db/executor.h"

namespace muve::cache {

/// Session-scoped LRU cache of `db::Executor` per-run partial aggregates
/// implementing `db::ResultCache`: one LRU map for single-aggregate
/// partials, one for grouped (merged) partials, sharing one `Stats`
/// block and one capacity.
///
/// Keys combine the table's process-unique id, the run's process-unique
/// id, and an exact serialization of the query (aggregate spec,
/// predicate set, group column + ordered IN list). Doubles are
/// serialized at full precision (%.17g) so two queries differing
/// anywhere past the display precision can never alias. Predicate
/// *order* participates in the key: reordered-but-equivalent queries
/// recompute rather than risk a stale mapping — a deliberate trade of
/// hit rate for an obviously sound key.
///
/// Invalidation is run-granular: a run is immutable and its id is never
/// reused, so appends to the table invalidate *nothing* — the new rows
/// land in the memtable (never cached) and later in new runs with fresh
/// ids, while entries for untouched runs keep hitting. The only entries
/// that ever go stale-for-capacity are those of runs retired by
/// compaction; `SweepRetired` drains the table's retired-run feed
/// (`db::Table::RetiredRunsSince`) and erases exactly those runs' keys,
/// falling back to a whole-table sweep only when the bounded feed has
/// trimmed history this cache has not seen yet. Every lookup and store
/// sweeps first, so stale entries never serve hits from a dropped run
/// id anyway — the sweep reclaims capacity and keeps the invalidation
/// counters honest.
///
/// Thread-safety: safe for concurrent use by ThreadPool workers; the two
/// LRUs lock internally and the retirement sweep holds its own mutex.
class QueryCache : public db::ResultCache {
 public:
  /// `capacity` bounds each of the two internal maps; 0 disables the
  /// cache entirely (lookups miss, stores drop — the exact uncached
  /// path).
  explicit QueryCache(size_t capacity);

  bool LookupRun(const db::Table& table, uint64_t run_id,
                 const db::AggregateQuery& query,
                 db::AggregatePartial* out) override;
  void StoreRun(const db::Table& table, uint64_t run_id,
                const db::AggregateQuery& query,
                const db::AggregatePartial& partial) override;

  bool LookupRun(const db::Table& table, uint64_t run_id,
                 const db::GroupByQuery& query,
                 db::GroupedPartial* out) override;
  void StoreRun(const db::Table& table, uint64_t run_id,
                const db::GroupByQuery& query,
                const db::GroupedPartial& partial) override;

  /// Erases the entries of runs `table` has retired since the last
  /// sweep (run-granular; whole-table fallback when the retired-run
  /// feed was trimmed). Called implicitly by every lookup/store; public
  /// so owners can reclaim capacity right after an explicit Compact().
  void SweepRetired(const db::Table& table);

  size_t capacity() const { return aggregate_cache_.capacity(); }
  bool enabled() const { return aggregate_cache_.enabled(); }

  /// Entries currently held across both maps.
  size_t size() const {
    return aggregate_cache_.size() + grouped_cache_.size();
  }

  /// Combined counters of both maps (they share one Stats block).
  StatsSnapshot stats() const { return stats_.Snapshot(); }

  void Clear();

 private:
  Stats stats_;
  LruCache<std::string, db::AggregatePartial> aggregate_cache_;
  LruCache<std::string, db::GroupedPartial> grouped_cache_;
  std::mutex retired_mutex_;
  /// Per-table cursor into its retired-run sequence.
  std::unordered_map<uint64_t, uint64_t> retired_cursor_;
};

}  // namespace muve::cache

#endif  // MUVE_CACHE_QUERY_CACHE_H_
