#ifndef MUVE_CACHE_QUERY_CACHE_H_
#define MUVE_CACHE_QUERY_CACHE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "cache/lru_cache.h"
#include "cache/stats.h"
#include "db/executor.h"

namespace muve::cache {

/// Session-scoped LRU cache of `db::Executor` results implementing
/// `db::ResultCache`: one LRU map for single-aggregate results, one for
/// grouped (merged) results, sharing one `Stats` block and one capacity.
///
/// Keys combine the table's process-unique id, its content version, and
/// an exact serialization of the query (aggregate spec, predicate set,
/// group column + ordered IN list). Doubles are serialized at full
/// precision (%.17g) so two queries differing anywhere past the display
/// precision can never alias. Predicate *order* participates in the key:
/// reordered-but-equivalent queries recompute rather than risk a stale
/// mapping — a deliberate trade of hit rate for an obviously sound key.
///
/// Invalidation: a table version bump makes every outstanding key for
/// that table unreachable (keys embed the version). On the next lookup
/// or store against the bumped table the stale entries are also swept
/// out eagerly — freeing their capacity — and counted as invalidations.
///
/// Thread-safety: safe for concurrent use by ThreadPool workers; the two
/// LRUs lock internally and the version sweep holds its own mutex.
class QueryCache : public db::ResultCache {
 public:
  /// `capacity` bounds each of the two internal maps; 0 disables the
  /// cache entirely (lookups miss, stores drop — the exact uncached
  /// path).
  explicit QueryCache(size_t capacity);

  bool Lookup(const db::Table& table, const db::AggregateQuery& query,
              db::AggregateResult* out) override;
  void Store(const db::Table& table, const db::AggregateQuery& query,
             const db::AggregateResult& result) override;

  bool Lookup(const db::Table& table, const db::GroupByQuery& query,
              db::GroupByResult* out) override;
  void Store(const db::Table& table, const db::GroupByQuery& query,
             const db::GroupByResult& result) override;

  size_t capacity() const { return aggregate_cache_.capacity(); }
  bool enabled() const { return aggregate_cache_.enabled(); }

  /// Entries currently held across both maps.
  size_t size() const {
    return aggregate_cache_.size() + grouped_cache_.size();
  }

  /// Combined counters of both maps (they share one Stats block).
  StatsSnapshot stats() const { return stats_.Snapshot(); }

  void Clear();

 private:
  /// Detects a version bump of `table` and sweeps its stale entries.
  void SweepStaleVersions(const db::Table& table);

  Stats stats_;
  LruCache<std::string, db::AggregateResult> aggregate_cache_;
  LruCache<std::string, db::GroupByResult> grouped_cache_;
  std::mutex version_mutex_;
  std::unordered_map<uint64_t, uint64_t> seen_version_;
};

}  // namespace muve::cache

#endif  // MUVE_CACHE_QUERY_CACHE_H_
