#include "cache/query_cache.h"

#include <cstdio>

#include "common/strings.h"
#include "db/value.h"

namespace muve::cache {

namespace {

/// Exact, delimiter-safe serialization of a value: type tag plus full
/// %.17g precision for doubles (display formatting rounds to 6
/// significant digits and would alias distinct constants) and a length
/// prefix for strings (so a value containing a delimiter cannot forge
/// another key).
void AppendValue(const db::Value& value, std::string* key) {
  if (value.is_int64()) {
    *key += 'i';
    *key += std::to_string(value.AsInt64());
  } else if (value.is_double()) {
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "d%.17g", value.AsDouble());
    *key += buffer;
  } else {
    const std::string& text = value.AsString();
    *key += 's';
    *key += std::to_string(text.size());
    *key += ':';
    *key += text;
  }
}

void AppendPredicate(const db::Predicate& predicate, std::string* key) {
  // Column matching is case-insensitive in the executor, so lowering
  // only merges keys that resolve to the same column.
  *key += ToLower(predicate.column);
  *key += predicate.op == db::PredicateOp::kEq ? "=" : "@in";
  for (const db::Value& value : predicate.values) {
    AppendValue(value, key);
    *key += ',';
  }
  *key += ';';
}

/// "t<id>@<version>|" — every key starts with this, which is what makes
/// a version bump an implicit whole-table invalidation.
std::string TablePrefix(const db::Table& table) {
  return "t" + std::to_string(table.id()) + "@" +
         std::to_string(table.version()) + "|";
}

std::string AggregateKey(const db::Table& table,
                         const db::AggregateQuery& query) {
  std::string key = TablePrefix(table);
  key += "a|";
  key += db::AggregateFunctionName(query.function);
  key += '(';
  // COUNT ignores its column (never-NULL fragment), matching
  // AggregateQuery::CanonicalKey.
  if (query.function != db::AggregateFunction::kCount) {
    key += ToLower(query.aggregate_column);
  }
  key += ")|";
  for (const db::Predicate& predicate : query.predicates) {
    AppendPredicate(predicate, &key);
  }
  return key;
}

std::string GroupedKey(const db::Table& table,
                       const db::GroupByQuery& query) {
  std::string key = TablePrefix(table);
  key += "g|";
  key += ToLower(query.group_column);
  key += '|';
  // Group values stay in order: result cells are indexed by position.
  for (const std::string& value : query.group_values) {
    key += std::to_string(value.size());
    key += ':';
    key += value;
  }
  key += '|';
  for (const db::AggregateSpec& agg : query.aggregates) {
    key += db::AggregateFunctionName(agg.function);
    key += '(';
    if (agg.function != db::AggregateFunction::kCount) {
      key += ToLower(agg.column);
    }
    key += ')';
  }
  key += '|';
  for (const db::Predicate& predicate : query.shared_predicates) {
    AppendPredicate(predicate, &key);
  }
  return key;
}

}  // namespace

QueryCache::QueryCache(size_t capacity)
    : aggregate_cache_(capacity, &stats_),
      grouped_cache_(capacity, &stats_) {}

void QueryCache::SweepStaleVersions(const db::Table& table) {
  if (!enabled()) return;
  {
    std::lock_guard<std::mutex> lock(version_mutex_);
    auto it = seen_version_.find(table.id());
    if (it != seen_version_.end() && it->second == table.version()) return;
    seen_version_[table.id()] = table.version();
    // First sight of a table has nothing to sweep.
    if (it == seen_version_.end()) return;
  }
  const std::string id_prefix = "t" + std::to_string(table.id()) + "@";
  const std::string live_prefix = TablePrefix(table);
  const auto stale = [&](const std::string& key) {
    return StartsWith(key, id_prefix) && !StartsWith(key, live_prefix);
  };
  const size_t swept =
      aggregate_cache_.EraseIf(stale) + grouped_cache_.EraseIf(stale);
  if (swept > 0) stats_.RecordInvalidations(swept);
}

bool QueryCache::Lookup(const db::Table& table,
                        const db::AggregateQuery& query,
                        db::AggregateResult* out) {
  if (!enabled()) {  // Skip key construction; still a counted miss.
    stats_.RecordMiss();
    return false;
  }
  SweepStaleVersions(table);
  return aggregate_cache_.Get(AggregateKey(table, query), out);
}

void QueryCache::Store(const db::Table& table,
                       const db::AggregateQuery& query,
                       const db::AggregateResult& result) {
  if (!enabled()) return;
  SweepStaleVersions(table);
  aggregate_cache_.Put(AggregateKey(table, query), result);
}

bool QueryCache::Lookup(const db::Table& table,
                        const db::GroupByQuery& query,
                        db::GroupByResult* out) {
  if (!enabled()) {
    stats_.RecordMiss();
    return false;
  }
  SweepStaleVersions(table);
  return grouped_cache_.Get(GroupedKey(table, query), out);
}

void QueryCache::Store(const db::Table& table,
                       const db::GroupByQuery& query,
                       const db::GroupByResult& result) {
  if (!enabled()) return;
  SweepStaleVersions(table);
  grouped_cache_.Put(GroupedKey(table, query), result);
}

void QueryCache::Clear() {
  aggregate_cache_.Clear();
  grouped_cache_.Clear();
  std::lock_guard<std::mutex> lock(version_mutex_);
  seen_version_.clear();
}

}  // namespace muve::cache
