#include "cache/query_cache.h"

#include <cstdio>
#include <vector>

#include "common/strings.h"
#include "db/value.h"

namespace muve::cache {

namespace {

/// Exact, delimiter-safe serialization of a value: type tag plus full
/// %.17g precision for doubles (display formatting rounds to 6
/// significant digits and would alias distinct constants) and a length
/// prefix for strings (so a value containing a delimiter cannot forge
/// another key).
void AppendValue(const db::Value& value, std::string* key) {
  if (value.is_int64()) {
    *key += 'i';
    *key += std::to_string(value.AsInt64());
  } else if (value.is_double()) {
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "d%.17g", value.AsDouble());
    *key += buffer;
  } else {
    const std::string& text = value.AsString();
    *key += 's';
    *key += std::to_string(text.size());
    *key += ':';
    *key += text;
  }
}

void AppendPredicate(const db::Predicate& predicate, std::string* key) {
  // Column matching is case-insensitive in the executor, so lowering
  // only merges keys that resolve to the same column.
  *key += ToLower(predicate.column);
  *key += predicate.op == db::PredicateOp::kEq ? "=" : "@in";
  for (const db::Value& value : predicate.values) {
    AppendValue(value, key);
    *key += ',';
  }
  *key += ';';
}

/// "t<id>#" — every key of this table starts with this (the
/// whole-table sweep prefix).
std::string TableIdPrefix(const db::Table& table) {
  return "t" + std::to_string(table.id()) + "#";
}

/// "t<id>#r<run>|" — every key starts with this. No table version: a
/// run is immutable, so its partials stay valid across appends; run ids
/// are process-unique, so a retired id can never be revived by a later
/// run.
std::string RunPrefix(const db::Table& table, uint64_t run_id) {
  return TableIdPrefix(table) + "r" + std::to_string(run_id) + "|";
}

std::string AggregateKey(const db::Table& table, uint64_t run_id,
                         const db::AggregateQuery& query) {
  std::string key = RunPrefix(table, run_id);
  key += "a|";
  key += db::AggregateFunctionName(query.function);
  key += '(';
  // COUNT ignores its column (never-NULL fragment), matching
  // AggregateQuery::CanonicalKey.
  if (query.function != db::AggregateFunction::kCount) {
    key += ToLower(query.aggregate_column);
  }
  key += ")|";
  for (const db::Predicate& predicate : query.predicates) {
    AppendPredicate(predicate, &key);
  }
  return key;
}

std::string GroupedKey(const db::Table& table, uint64_t run_id,
                       const db::GroupByQuery& query) {
  std::string key = RunPrefix(table, run_id);
  key += "g|";
  key += ToLower(query.group_column);
  key += '|';
  // Group values stay in order: partial cells are indexed by position.
  for (const std::string& value : query.group_values) {
    key += std::to_string(value.size());
    key += ':';
    key += value;
  }
  key += '|';
  for (const db::AggregateSpec& agg : query.aggregates) {
    key += db::AggregateFunctionName(agg.function);
    key += '(';
    if (agg.function != db::AggregateFunction::kCount) {
      key += ToLower(agg.column);
    }
    key += ')';
  }
  key += '|';
  for (const db::Predicate& predicate : query.shared_predicates) {
    AppendPredicate(predicate, &key);
  }
  return key;
}

}  // namespace

QueryCache::QueryCache(size_t capacity)
    : aggregate_cache_(capacity, &stats_),
      grouped_cache_(capacity, &stats_) {}

void QueryCache::SweepRetired(const db::Table& table) {
  if (!enabled()) return;
  std::vector<uint64_t> retired;
  bool sweep_all = false;
  {
    std::lock_guard<std::mutex> lock(retired_mutex_);
    const uint64_t seq = table.retired_seq();
    auto it = retired_cursor_.find(table.id());
    const uint64_t cursor = it == retired_cursor_.end() ? 0 : it->second;
    if (cursor == seq) return;  // Fast path: nothing retired since.
    sweep_all = !table.RetiredRunsSince(cursor, &retired);
    retired_cursor_[table.id()] = seq;
  }
  size_t swept = 0;
  if (sweep_all) {
    // The bounded feed trimmed history we never saw: the precise set of
    // retired runs is unknown, so drop everything under this table.
    const std::string prefix = TableIdPrefix(table);
    const auto stale = [&](const std::string& key) {
      return StartsWith(key, prefix);
    };
    swept = aggregate_cache_.EraseIf(stale) + grouped_cache_.EraseIf(stale);
  } else {
    for (const uint64_t run_id : retired) {
      const std::string prefix = RunPrefix(table, run_id);
      const auto stale = [&](const std::string& key) {
        return StartsWith(key, prefix);
      };
      swept +=
          aggregate_cache_.EraseIf(stale) + grouped_cache_.EraseIf(stale);
    }
  }
  if (swept > 0) stats_.RecordInvalidations(swept);
}

bool QueryCache::LookupRun(const db::Table& table, uint64_t run_id,
                           const db::AggregateQuery& query,
                           db::AggregatePartial* out) {
  if (!enabled()) {  // Skip key construction; still a counted miss.
    stats_.RecordMiss();
    return false;
  }
  SweepRetired(table);
  return aggregate_cache_.Get(AggregateKey(table, run_id, query), out);
}

void QueryCache::StoreRun(const db::Table& table, uint64_t run_id,
                          const db::AggregateQuery& query,
                          const db::AggregatePartial& partial) {
  if (!enabled()) return;
  SweepRetired(table);
  aggregate_cache_.Put(AggregateKey(table, run_id, query), partial);
}

bool QueryCache::LookupRun(const db::Table& table, uint64_t run_id,
                           const db::GroupByQuery& query,
                           db::GroupedPartial* out) {
  if (!enabled()) {
    stats_.RecordMiss();
    return false;
  }
  SweepRetired(table);
  return grouped_cache_.Get(GroupedKey(table, run_id, query), out);
}

void QueryCache::StoreRun(const db::Table& table, uint64_t run_id,
                          const db::GroupByQuery& query,
                          const db::GroupedPartial& partial) {
  if (!enabled()) return;
  SweepRetired(table);
  grouped_cache_.Put(GroupedKey(table, run_id, query), partial);
}

void QueryCache::Clear() {
  aggregate_cache_.Clear();
  grouped_cache_.Clear();
  std::lock_guard<std::mutex> lock(retired_mutex_);
  retired_cursor_.clear();
}

}  // namespace muve::cache
