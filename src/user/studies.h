#ifndef MUVE_USER_STUDIES_H_
#define MUVE_USER_STUDIES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/candidate.h"
#include "core/cost_model.h"
#include "core/planner.h"
#include "exec/presentation.h"
#include "speech/speech_simulator.h"
#include "stats/stats.h"
#include "user/user_simulator.h"

namespace muve::user {

// ---------------------------------------------------------------------
// Crowd perception study (paper §4.1, Fig. 3 + Table 1).
// ---------------------------------------------------------------------

/// One averaged measurement point of a feature sweep.
struct SeriesPoint {
  double x = 0.0;  ///< Feature value (position / count).
  stats::ConfidenceInterval time_ms;
  size_t num_responses = 0;
};

/// A full feature sweep plus its correlation analysis.
struct FeatureSeries {
  std::string feature;
  std::vector<SeriesPoint> points;
  stats::PearsonResult pearson;
};

/// Study configuration: 26 task types x workers_per_task HITs, mirroring
/// the paper's AMT setup (520 HITs; 262 returned within the window —
/// modeled by response_rate).
struct PerceptionStudyConfig {
  size_t workers_per_task = 20;
  double response_rate = 0.504;
  UserBehaviorModel behavior;
  uint64_t seed = 42;
};

/// Results: the four Fig. 3 panels and Table 1 correlations.
struct PerceptionStudyResults {
  FeatureSeries bar_position;   ///< Target bar position in a 12-bar plot.
  FeatureSeries plot_position;  ///< Target plot position (6 plots, 2 rows).
  FeatureSeries num_red_bars;   ///< Highlighted-bar count (target red).
  FeatureSeries num_plots;     ///< Plot count at fixed 12 bars total.
  size_t hits_submitted = 0;
  size_t hits_completed = 0;
};

/// Runs the simulated crowd study.
PerceptionStudyResults RunPerceptionStudy(
    const PerceptionStudyConfig& config);

/// Derives the §4.2 model constants c_B and c_P from the study results by
/// linear regression on the two statistically significant sweeps, and
/// D_M from the behaviour model's requery time.
core::UserCostModel FitCostModel(const PerceptionStudyResults& results,
                                 const UserBehaviorModel& behavior);

// ---------------------------------------------------------------------
// MUVE vs. baseline study (paper §9.5, Fig. 12).
// ---------------------------------------------------------------------

struct ComparisonStudyConfig {
  /// The paper's participants used desktop browsers (§9.5); default to a
  /// desktop resolution with two plot rows so the multiplot has room.
  ComparisonStudyConfig() {
    planner.geometry.width_px = 1536.0;
    planner.geometry.max_rows = 2;
    // Web-Speech-class recognition quality (a few percent WER), rather
    // than the harsher defaults used by the robustness experiments.
    noise.substitution_rate = 0.06;
    noise.deletion_rate = 0.005;
  }

  size_t num_users = 10;
  size_t queries_per_dataset = 10;
  size_t rows_per_dataset = 20000;
  UserBehaviorModel behavior;
  speech::SpeechNoiseOptions noise;
  core::PlannerConfig planner;
  /// Baseline (DataTone-style) per-dropdown interaction time.
  double dropdown_interaction_ms = 3000.0;
  uint64_t seed = 7;
};

struct ComparisonStudyResults {
  struct PerDataset {
    std::string dataset;
    stats::ConfidenceInterval muve_ms;
    stats::ConfidenceInterval baseline_ms;
  };
  /// Reported datasets (311 warmup queries are discarded, like the
  /// paper's first ten queries per participant).
  std::vector<PerDataset> datasets;
};

/// Runs the end-to-end comparison: simulated users issue voice queries
/// (with ASR noise) answered either by a MUVE multiplot or by a
/// DataTone-style dropdown disambiguation baseline.
Result<ComparisonStudyResults> RunComparisonStudy(
    const ComparisonStudyConfig& config);

// ---------------------------------------------------------------------
// Presentation-method rating study (paper §9.5, Fig. 13).
// ---------------------------------------------------------------------

struct RatingStudyConfig {
  size_t num_users = 10;
  UserBehaviorModel behavior;
  exec::PresentationOptions presentation;
  uint64_t seed = 11;
};

struct MethodRating {
  std::string method;
  stats::ConfidenceInterval latency_rating;  ///< 1..10.
  stats::ConfidenceInterval clarity_rating;  ///< 1..10.
};

/// Runs all presentation methods for one candidate set and collects
/// simulated 1-10 ratings: latency satisfaction decreases with time until
/// the correct result appears; clarity decreases with the number of
/// visualization updates (sequences of changing plots).
Result<std::vector<MethodRating>> RunRatingStudy(
    exec::Engine* engine, const core::CandidateSet& candidates,
    size_t correct_candidate, const RatingStudyConfig& config);

}  // namespace muve::user

#endif  // MUVE_USER_STUDIES_H_
