#ifndef MUVE_USER_USER_SIMULATOR_H_
#define MUVE_USER_USER_SIMULATOR_H_

#include "common/rng.h"
#include "core/multiplot.h"

namespace muve::user {

/// Generative model of user reading behaviour, consistent with the fitted
/// disambiguation-time model of paper §4.2: users scan highlighted (red)
/// bars first in uniformly random order, then the remaining bars in
/// uniformly random order; entering a not-yet-understood plot costs
/// plot_read_ms, each bar costs bar_read_ms. Bar and plot *positions* do
/// not influence the order — the property the paper's study could not
/// refute (Hypotheses 1-2 rejected, 3-4 confirmed).
struct UserBehaviorModel {
  double bar_read_ms = 500.0;   ///< Ground-truth c_B.
  double plot_read_ms = 2000.0; ///< Ground-truth c_P.
  double base_latency_ms = 800.0;  ///< Page load + reaction time.
  /// Multiplicative lognormal noise (sigma) on every read cost.
  double noise_sigma = 0.35;
  /// Time to give up, re-ask the query and obtain a fresh answer when the
  /// result is missing from the multiplot.
  double requery_ms = 20000.0;
};

/// Simulates individual users interacting with multiplots.
class UserSimulator {
 public:
  explicit UserSimulator(UserBehaviorModel model = {}) : model_(model) {}

  const UserBehaviorModel& model() const { return model_; }

  /// Outcome of one simulated search.
  struct SearchOutcome {
    double millis = 0.0;  ///< Time until click (or until giving up).
    bool found = false;   ///< Whether the target bar was present.
  };

  /// Simulates one user searching `multiplot` for the bar of candidate
  /// `target`. When the target is absent, `millis` is the time spent
  /// scanning everything before concluding the result is missing
  /// (excluding requery time — the caller decides what follows).
  SearchOutcome FindTarget(const core::Multiplot& multiplot, size_t target,
                           Rng* rng) const;

 private:
  /// One noisy read cost: base * lognormal with unit mean.
  double Noisy(double base, Rng* rng) const;

  UserBehaviorModel model_;
};

}  // namespace muve::user

#endif  // MUVE_USER_USER_SIMULATOR_H_
