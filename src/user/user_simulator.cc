#include "user/user_simulator.h"

#include <cmath>
#include <vector>

namespace muve::user {

double UserSimulator::Noisy(double base, Rng* rng) const {
  const double sigma = model_.noise_sigma;
  // Lognormal with unit mean: exp(N(-sigma^2/2, sigma)).
  return base * rng->LogNormal(-sigma * sigma / 2.0, sigma);
}

UserSimulator::SearchOutcome UserSimulator::FindTarget(
    const core::Multiplot& multiplot, size_t target, Rng* rng) const {
  struct BarRef {
    size_t plot_id;
    size_t candidate;
  };
  std::vector<BarRef> red_bars;
  std::vector<BarRef> plain_bars;
  size_t plot_id = 0;
  multiplot.ForEachPlot([&](const core::Plot& plot) {
    for (const core::PlotBar& bar : plot.bars) {
      if (bar.highlighted) {
        red_bars.push_back({plot_id, bar.candidate_index});
      } else {
        plain_bars.push_back({plot_id, bar.candidate_index});
      }
    }
    ++plot_id;
  });

  SearchOutcome outcome;
  outcome.millis = Noisy(model_.base_latency_ms, rng);

  std::vector<char> plot_understood(plot_id, 0);
  auto scan = [&](std::vector<BarRef>* bars) -> bool {
    rng->Shuffle(bars);
    for (const BarRef& bar : *bars) {
      if (!plot_understood[bar.plot_id]) {
        outcome.millis += Noisy(model_.plot_read_ms, rng);
        plot_understood[bar.plot_id] = 1;
      }
      outcome.millis += Noisy(model_.bar_read_ms, rng);
      if (bar.candidate == target) return true;
    }
    return false;
  };

  // Red bars first, then the rest (paper §4.2 reading order).
  if (scan(&red_bars)) {
    outcome.found = true;
    return outcome;
  }
  if (scan(&plain_bars)) {
    outcome.found = true;
    return outcome;
  }
  outcome.found = false;
  return outcome;
}

}  // namespace muve::user
