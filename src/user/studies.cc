#include "user/studies.h"

#include "common/clock.h"

#include <algorithm>
#include <cmath>

#include "core/greedy_planner.h"
#include "db/executor.h"
#include "nlq/candidate_generator.h"
#include "nlq/schema_index.h"
#include "nlq/translator.h"
#include "workload/datasets.h"
#include "workload/query_generator.h"

namespace muve::user {

namespace {

/// Builds an abstract multiplot: `bars_per_plot[i]` bars in plot i,
/// candidates numbered consecutively, the first `num_red` bars of plot 0
/// highlighted when red_in_first_plot is true. Values/labels are dummies —
/// the user simulator only looks at structure.
core::Multiplot AbstractMultiplot(const std::vector<size_t>& bars_per_plot,
                                  size_t num_red, size_t num_rows) {
  core::Multiplot multiplot;
  multiplot.rows.resize(std::max<size_t>(1, num_rows));
  size_t candidate = 0;
  size_t red_left = num_red;
  for (size_t p = 0; p < bars_per_plot.size(); ++p) {
    core::Plot plot;
    plot.query_template.key = "task_plot_" + std::to_string(p);
    plot.query_template.title = "plot " + std::to_string(p);
    for (size_t b = 0; b < bars_per_plot[p]; ++b) {
      core::PlotBar bar;
      bar.candidate_index = candidate++;
      bar.label = "v" + std::to_string(bar.candidate_index);
      bar.value = 1.0;
      if (red_left > 0) {
        bar.highlighted = true;
        --red_left;
      }
      plot.bars.push_back(std::move(bar));
    }
    multiplot.rows[p % multiplot.rows.size()].push_back(std::move(plot));
  }
  return multiplot;
}

FeatureSeries MakeSeries(
    const std::string& feature,
    const std::vector<std::pair<double, std::vector<double>>>& samples) {
  FeatureSeries series;
  series.feature = feature;
  std::vector<double> xs;
  std::vector<double> ys;
  for (const auto& [x, times] : samples) {
    SeriesPoint point;
    point.x = x;
    point.time_ms = stats::ConfidenceInterval95(times);
    point.num_responses = times.size();
    series.points.push_back(point);
    for (double t : times) {
      xs.push_back(x);
      ys.push_back(t);
    }
  }
  if (auto pearson = stats::PearsonCorrelation(xs, ys); pearson.ok()) {
    series.pearson = *pearson;
  }
  return series;
}

double Clamp1To10(double rating) { return std::clamp(rating, 1.0, 10.0); }

}  // namespace

PerceptionStudyResults RunPerceptionStudy(
    const PerceptionStudyConfig& config) {
  Rng rng(config.seed);
  UserSimulator simulator(config.behavior);
  PerceptionStudyResults results;

  auto run_task = [&](const core::Multiplot& multiplot, size_t target,
                      std::vector<double>* times) {
    for (size_t w = 0; w < config.workers_per_task; ++w) {
      ++results.hits_submitted;
      if (!rng.Bernoulli(config.response_rate)) continue;  // No response.
      ++results.hits_completed;
      const UserSimulator::SearchOutcome outcome =
          simulator.FindTarget(multiplot, target, &rng);
      times->push_back(outcome.millis);
    }
  };

  // (a) Bar position within one 12-bar plot: 12 task types.
  {
    std::vector<std::pair<double, std::vector<double>>> samples;
    for (size_t position = 1; position <= 12; ++position) {
      const core::Multiplot multiplot = AbstractMultiplot({12}, 0, 1);
      std::vector<double> times;
      run_task(multiplot, position - 1, &times);
      samples.emplace_back(static_cast<double>(position),
                           std::move(times));
    }
    results.bar_position = MakeSeries("bar position", samples);
  }

  // (b) Plot position within a 6-plot (2 rows x 3) multiplot of 2-bar
  //     plots: 6 task types.
  {
    std::vector<std::pair<double, std::vector<double>>> samples;
    for (size_t position = 1; position <= 6; ++position) {
      const core::Multiplot multiplot =
          AbstractMultiplot({2, 2, 2, 2, 2, 2}, 0, 2);
      std::vector<double> times;
      run_task(multiplot, (position - 1) * 2, &times);
      samples.emplace_back(static_cast<double>(position),
                           std::move(times));
    }
    results.plot_position = MakeSeries("plot position", samples);
  }

  // (c) Number of red bars (target is red), 12 bars in one plot:
  //     4 task types.
  {
    std::vector<std::pair<double, std::vector<double>>> samples;
    for (size_t red : {size_t{1}, size_t{3}, size_t{5}, size_t{7}}) {
      const core::Multiplot multiplot = AbstractMultiplot({12}, red, 1);
      std::vector<double> times;
      // Target uniformly among the red bars.
      const size_t target = rng.UniformInt(red);
      run_task(multiplot, target, &times);
      samples.emplace_back(static_cast<double>(red), std::move(times));
    }
    results.num_red_bars = MakeSeries("nr red bars", samples);
  }

  // (d) Number of plots at fixed 12 total bars: 4 task types.
  {
    std::vector<std::pair<double, std::vector<double>>> samples;
    for (size_t plots : {size_t{1}, size_t{2}, size_t{3}, size_t{6}}) {
      std::vector<size_t> layout(plots, 12 / plots);
      const core::Multiplot multiplot = AbstractMultiplot(layout, 0, 1);
      std::vector<double> times;
      const size_t target = rng.UniformInt(12);
      run_task(multiplot, target, &times);
      samples.emplace_back(static_cast<double>(plots), std::move(times));
    }
    results.num_plots = MakeSeries("nr plots", samples);
  }
  return results;
}

core::UserCostModel FitCostModel(const PerceptionStudyResults& results,
                                 const UserBehaviorModel& behavior) {
  core::UserCostModel model;
  // Red-bar sweep: with k red bars and a red target, users read
  // (k+1)/2 red bars in expectation => slope over k is c_B / 2.
  {
    std::vector<double> xs;
    std::vector<double> ys;
    for (const SeriesPoint& point : results.num_red_bars.points) {
      xs.push_back(point.x);
      ys.push_back(point.time_ms.mean);
    }
    if (auto fit = stats::FitLine(xs, ys); fit.ok() && fit->slope > 0.0) {
      model.bar_cost_ms = 2.0 * fit->slope;
    }
  }
  // Plot-count sweep: (k+1)/2 plots understood in expectation => slope
  // over k is c_P / 2.
  {
    std::vector<double> xs;
    std::vector<double> ys;
    for (const SeriesPoint& point : results.num_plots.points) {
      xs.push_back(point.x);
      ys.push_back(point.time_ms.mean);
    }
    if (auto fit = stats::FitLine(xs, ys); fit.ok() && fit->slope > 0.0) {
      model.plot_cost_ms = 2.0 * fit->slope;
    }
  }
  model.miss_cost_ms = behavior.requery_ms;
  return model;
}

Result<ComparisonStudyResults> RunComparisonStudy(
    const ComparisonStudyConfig& config) {
  ComparisonStudyResults results;
  const std::vector<std::string> datasets = {"nyc311", "ads", "dob"};
  Rng rng(config.seed);
  UserSimulator simulator(config.behavior);
  const core::GreedyPlanner planner;

  for (const std::string& dataset : datasets) {
    MUVE_ASSIGN_OR_RETURN(
        std::shared_ptr<db::Table> table,
        workload::MakeDataset(dataset, config.rows_per_dataset,
                              config.seed ^ 0x5bd1e995));
    auto index = std::make_shared<nlq::SchemaIndex>(table);
    nlq::Translator translator(index);
    nlq::CandidateGenerator generator(index);
    exec::Engine engine(table);

    std::vector<std::string> lexicon = workload::BuildVocabulary(*table);
    for (const char* word :
         {"how", "many", "total", "average", "maximum", "minimum", "where",
          "is", "and", "records"}) {
      lexicon.emplace_back(word);
    }
    speech::SpeechSimulator speech(lexicon);

    std::vector<double> muve_times;
    std::vector<double> baseline_times;

    workload::QueryGeneratorOptions gen_options;
    gen_options.min_predicates = 1;
    gen_options.max_predicates = 1;
    gen_options.count_star_probability = 0.0;

    for (size_t u = 0; u < config.num_users; ++u) {
      for (size_t q = 0; q < config.queries_per_dataset; ++q) {
        MUVE_ASSIGN_OR_RETURN(db::AggregateQuery truth,
                              workload::RandomQuery(*table, &rng,
                                                    gen_options));
        const std::string utterance = nlq::VerbalizeQuery(truth);
        const std::string transcript =
            speech.Transcribe(utterance, &rng, config.noise);

        // --- MUVE arm ---
        double muve_total = 0.0;
        auto translation = translator.Translate(transcript);
        if (!translation.ok()) {
          // Recognition failure: re-ask, then succeed on clean input.
          muve_total += config.behavior.requery_ms;
          translation = translator.Translate(utterance);
        }
        if (translation.ok()) {
          core::CandidateSet candidates = generator.Generate(
              translation->query, translation->confidence);
          // Locate the ground-truth interpretation.
          size_t correct = SIZE_MAX;
          const std::string truth_key = truth.CanonicalKey();
          for (size_t i = 0; i < candidates.size(); ++i) {
            if (candidates[i].query.CanonicalKey() == truth_key) {
              correct = i;
              break;
            }
          }
          MUVE_ASSIGN_OR_RETURN(
              core::PlanResult plan,
              planner.Plan(candidates, config.planner));
          MUVE_ASSIGN_OR_RETURN(
              exec::Execution execution,
              engine.ExecuteMultiplot(candidates, &plan.multiplot));
          muve_total += plan.optimize_millis + execution.modeled_millis;
          const UserSimulator::SearchOutcome search = simulator.FindTarget(
              plan.multiplot, correct == SIZE_MAX ? SIZE_MAX : correct,
              &rng);
          muve_total += search.millis;
          if (!search.found) {
            // Scanned everything, result missing: re-query; the repeat is
            // assumed unambiguous (single plot, single bar).
            muve_total += config.behavior.requery_ms +
                          config.behavior.plot_read_ms +
                          config.behavior.bar_read_ms;
          }
        }
        muve_times.push_back(muve_total);

        // --- Baseline arm (DataTone-style dropdowns) ---
        // The user resolves the aggregation column, predicate column and
        // predicate value via three dropdown menus, then reads the single
        // result.
        double baseline_total = config.behavior.base_latency_ms;
        const double sigma = config.behavior.noise_sigma;
        for (int d = 0; d < 3; ++d) {
          baseline_total +=
              config.dropdown_interaction_ms *
              rng.LogNormal(-sigma * sigma / 2.0, sigma);
        }
        // Execute the now-unambiguous query.
        StopWatch watch;
        auto exec_result = db::Executor::Execute(*table, truth);
        (void)exec_result;
        baseline_total += watch.ElapsedMillis() + 2.0;
        baseline_total += config.behavior.plot_read_ms +
                          config.behavior.bar_read_ms;
        baseline_times.push_back(baseline_total);
      }
    }

    if (dataset == "nyc311") continue;  // Warmup, discarded (paper §9.5).
    ComparisonStudyResults::PerDataset per_dataset;
    per_dataset.dataset = dataset;
    per_dataset.muve_ms = stats::ConfidenceInterval95(muve_times);
    per_dataset.baseline_ms = stats::ConfidenceInterval95(baseline_times);
    results.datasets.push_back(std::move(per_dataset));
  }
  return results;
}

Result<std::vector<MethodRating>> RunRatingStudy(
    exec::Engine* engine, const core::CandidateSet& candidates,
    size_t correct_candidate, const RatingStudyConfig& config) {
  Rng rng(config.seed);
  std::vector<MethodRating> ratings;
  for (exec::PresentationMethod method : exec::AllPresentationMethods()) {
    MUVE_ASSIGN_OR_RETURN(
        exec::PresentationOutcome outcome,
        exec::RunPresentation(method, engine, candidates,
                              correct_candidate, config.presentation));
    const double latency_ms = std::isfinite(outcome.first_correct_ms)
                                  ? outcome.first_correct_ms
                                  : outcome.total_ms + 5000.0;
    const double updates =
        static_cast<double>(std::max<size_t>(1, outcome.events.size()));

    std::vector<double> latency_scores;
    std::vector<double> clarity_scores;
    for (size_t u = 0; u < config.num_users; ++u) {
      latency_scores.push_back(Clamp1To10(
          10.3 - 3.2 * std::log10(1.0 + latency_ms / 15.0) +
          rng.Normal(0.0, 0.55)));
      clarity_scores.push_back(Clamp1To10(
          9.0 - 0.6 * (updates - 1.0) -
          (outcome.initial_relative_error > 0.0 ? 0.3 : 0.0) +
          rng.Normal(0.0, 1.1)));
    }
    MethodRating rating;
    rating.method = exec::PresentationMethodName(method);
    rating.latency_rating = stats::ConfidenceInterval95(latency_scores);
    rating.clarity_rating = stats::ConfidenceInterval95(clarity_scores);
    ratings.push_back(std::move(rating));
  }
  return ratings;
}

}  // namespace muve::user
