#include "nlq/candidate_generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.h"
#include "phonetics/similarity.h"

namespace muve::nlq {

namespace {

/// Full-precision double for cache keys: %.17g round-trips every finite
/// value, so distinct option settings never share a key.
std::string ExactDouble(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// One single-element replacement applicable to the base query.
struct Replacement {
  enum class Site {
    kAggregateFunction,
    kAggregateColumn,
    kAggregateBoth,    // Function and column at once (COUNT(*) bases).
    kPredicateValue,   // May move the predicate to another column.
    kPredicateColumn,  // Same value, different owning column.
    kDropPredicate,    // Remove a (possibly spurious) predicate.
  };
  Site site = Site::kPredicateValue;
  size_t predicate_index = 0;
  db::AggregateFunction function = db::AggregateFunction::kCount;
  std::string column;
  std::string value;
  double weight = 0.0;
  int site_id = 0;  ///< Replacements at the same site are exclusive.
};

/// Applies a replacement to a copy of the query. Returns false when the
/// replacement conflicts with the query (e.g. duplicate predicate column).
bool Apply(const Replacement& replacement, db::AggregateQuery* query) {
  switch (replacement.site) {
    case Replacement::Site::kAggregateFunction:
      // COUNT keeps the aggregate column (COUNT(col) == COUNT(*) in this
      // fragment) so the candidate shares the "?(col)" function-slot
      // template with its siblings.
      query->function = replacement.function;
      return true;
    case Replacement::Site::kAggregateColumn:
      query->aggregate_column = replacement.column;
      return true;
    case Replacement::Site::kAggregateBoth:
      query->function = replacement.function;
      query->aggregate_column = replacement.column;
      return true;
    case Replacement::Site::kDropPredicate: {
      for (size_t i = 0; i < query->predicates.size(); ++i) {
        if (EqualsIgnoreCase(query->predicates[i].column,
                             replacement.column)) {
          query->predicates.erase(query->predicates.begin() +
                                  static_cast<long>(i));
          return !query->predicates.empty();
        }
      }
      return false;  // Another replacement already rewired this column.
    }
    case Replacement::Site::kPredicateValue:
    case Replacement::Site::kPredicateColumn: {
      if (replacement.predicate_index >= query->predicates.size()) {
        return false;
      }
      // The replacement may move the predicate onto another column; a
      // query with two predicates on one column is contradictory (both
      // are equalities), so reject those.
      for (size_t i = 0; i < query->predicates.size(); ++i) {
        if (i == replacement.predicate_index) continue;
        if (EqualsIgnoreCase(query->predicates[i].column,
                             replacement.column)) {
          return false;
        }
      }
      db::Predicate& predicate =
          query->predicates[replacement.predicate_index];
      predicate.column = replacement.column;
      predicate.values = {db::Value(replacement.value)};
      return true;
    }
  }
  return false;
}

/// Length-prefixed string: immune to delimiter injection.
void AppendString(const std::string& s, std::string* key) {
  key->append(std::to_string(s.size()));
  key->push_back(':');
  key->append(s);
}

void AppendQueryExact(const db::AggregateQuery& query, std::string* key) {
  // Exact, in-order serialization (unlike CanonicalKey, which lowers and
  // sorts predicates): generation copies the base's exact strings into
  // candidates and enumerates predicates in order, so two bases that are
  // canonically equal but differently spelled or ordered may yield
  // differently ordered candidate sets and must not share a key.
  AppendString(query.table, key);
  key->push_back('|');
  key->append(db::AggregateFunctionName(query.function));
  key->push_back('(');
  AppendString(query.aggregate_column, key);
  key->push_back(')');
  for (const db::Predicate& predicate : query.predicates) {
    AppendString(predicate.column, key);
    key->append(predicate.op == db::PredicateOp::kEq ? "=" : "@in");
    for (const db::Value& value : predicate.values) {
      switch (value.type()) {
        case db::ValueType::kInt64:
          key->push_back('i');
          key->append(std::to_string(value.AsInt64()));
          break;
        case db::ValueType::kDouble:
          key->push_back('d');
          key->append(ExactDouble(value.AsDouble()));
          break;
        case db::ValueType::kString:
          key->push_back('s');
          AppendString(value.AsString(), key);
          break;
      }
      key->push_back(',');
    }
    key->push_back(';');
  }
}

}  // namespace

std::string CandidateCacheKey(const db::AggregateQuery& base,
                              double base_confidence,
                              const CandidateGeneratorOptions& options) {
  std::string key;
  key.reserve(128);
  AppendQueryExact(base, &key);
  key.push_back('#');
  key.append(ExactDouble(base_confidence));
  key.push_back('#');
  key.append(std::to_string(options.k_similar));
  key.push_back(',');
  key.append(std::to_string(options.max_candidates));
  key.push_back(',');
  key.append(ExactDouble(options.sharpen));
  key.push_back(',');
  key.push_back(options.include_pairs ? '1' : '0');
  key.push_back(',');
  key.append(std::to_string(options.pair_fanout));
  key.push_back(',');
  key.append(ExactDouble(options.count_star_alternative_weight));
  key.push_back(',');
  key.append(ExactDouble(options.aggregate_alternative_floor));
  key.push_back(',');
  key.append(ExactDouble(options.drop_predicate_weight));
  return key;
}

core::CandidateSet CandidateGenerator::Generate(
    const db::AggregateQuery& base, double base_confidence,
    const CandidateGeneratorOptions& options) const {
  return Generate(base, base_confidence, options, GenerationConstraints{});
}

core::CandidateSet CandidateGenerator::Generate(
    const db::AggregateQuery& base, double base_confidence,
    const CandidateGeneratorOptions& options,
    const GenerationConstraints& constraints, bool* capped) const {
  std::string cache_key;
  const bool use_cache =
      cache_ != nullptr && cache_->enabled() && !constraints.bypass_cache;
  if (capped != nullptr) *capped = false;
  if (use_cache) {
    cache_key = CandidateCacheKey(base, base_confidence, options);
    core::CandidateSet cached;
    // A hit replays a full (never capped) expansion — byte-identical to
    // recomputation and effectively free, so it is served even when the
    // deadline already expired.
    if (cache_->Get(cache_key, &cached)) return cached;
  }

  // Deadline polling between enumeration sites: once out of budget, the
  // remaining sites (and pair enumeration) are skipped and the set is
  // flagged capped. With the default infinite deadline `out_of_time`
  // never trips and the expansion below is exactly the unconstrained
  // one.
  bool expansion_capped = false;
  const bool finite_deadline = constraints.deadline.IsFinite();
  auto out_of_time = [&]() {
    if (!finite_deadline) return false;
    if (!expansion_capped && constraints.deadline.Expired()) {
      expansion_capped = true;
    }
    return expansion_capped;
  };

  std::vector<Replacement> replacements;
  int next_site_id = 0;

  // Site: aggregate function (only meaningful when a column is
  // aggregated; COUNT(*) has no alternative target).
  if (!out_of_time() && !base.aggregate_column.empty()) {
    const int site = next_site_id++;
    const std::string base_name =
        ToLower(db::AggregateFunctionName(base.function));
    for (db::AggregateFunction fn : db::AllAggregateFunctions()) {
      if (fn == base.function) continue;
      const std::string name = ToLower(db::AggregateFunctionName(fn));
      Replacement r;
      r.site = Replacement::Site::kAggregateFunction;
      r.function = fn;
      r.weight = std::max(
          options.aggregate_alternative_floor,
          std::pow(phonetics::PhoneticSimilarity(base_name, name),
                   options.sharpen));
      r.site_id = site;
      replacements.push_back(std::move(r));
    }
  }

  // Site: COUNT(*) bases may stem from a misrecognized aggregate
  // keyword — propose every (function, numeric column) combination.
  if (!out_of_time() && base.aggregate_column.empty() &&
      base.function == db::AggregateFunction::kCount &&
      options.count_star_alternative_weight > 0.0) {
    const int site = next_site_id++;
    for (const std::string& column :
         index_->table().ColumnNamesOfType(db::ValueType::kInt64)) {
      for (db::AggregateFunction fn : db::AllAggregateFunctions()) {
        if (fn == db::AggregateFunction::kCount) continue;
        Replacement r;
        r.site = Replacement::Site::kAggregateBoth;
        r.function = fn;
        r.column = column;
        r.weight = options.count_star_alternative_weight;
        r.site_id = site;
        replacements.push_back(std::move(r));
      }
    }
    for (const std::string& column :
         index_->table().ColumnNamesOfType(db::ValueType::kDouble)) {
      for (db::AggregateFunction fn : db::AllAggregateFunctions()) {
        if (fn == db::AggregateFunction::kCount) continue;
        Replacement r;
        r.site = Replacement::Site::kAggregateBoth;
        r.function = fn;
        r.column = column;
        r.weight = options.count_star_alternative_weight;
        r.site_id = site;
        replacements.push_back(std::move(r));
      }
    }
  }

  // Site: aggregate column.
  if (!out_of_time() && !base.aggregate_column.empty()) {
    const int site = next_site_id++;
    for (const ColumnMatch& match : index_->TopColumns(
             base.aggregate_column, options.k_similar + 1,
             /*numeric_only=*/true)) {
      if (EqualsIgnoreCase(match.column, base.aggregate_column)) continue;
      Replacement r;
      r.site = Replacement::Site::kAggregateColumn;
      r.column = match.column;
      r.weight = std::pow(match.similarity, options.sharpen);
      r.site_id = site;
      replacements.push_back(std::move(r));
    }
  }

  // Sites: predicate values and predicate columns.
  for (size_t p = 0; p < base.predicates.size(); ++p) {
    if (out_of_time()) break;
    const db::Predicate& predicate = base.predicates[p];
    if (predicate.op != db::PredicateOp::kEq || predicate.values.empty() ||
        !predicate.values.front().is_string()) {
      continue;
    }
    const std::string value = predicate.values.front().AsString();

    const int value_site = next_site_id++;
    for (const ValueMatch& match :
         index_->TopValues(value, options.k_similar + 1)) {
      if (EqualsIgnoreCase(match.value, value) &&
          EqualsIgnoreCase(match.column, predicate.column)) {
        continue;
      }
      Replacement r;
      r.site = Replacement::Site::kPredicateValue;
      r.predicate_index = p;
      r.column = match.column;
      r.value = match.value;
      r.weight = std::pow(match.similarity, options.sharpen);
      r.site_id = value_site;
      replacements.push_back(std::move(r));
    }

    const int column_site = next_site_id++;
    for (const std::string& owner : index_->ColumnsOfValue(value)) {
      if (EqualsIgnoreCase(owner, predicate.column)) continue;
      Replacement r;
      r.site = Replacement::Site::kPredicateColumn;
      r.predicate_index = p;
      r.column = owner;
      r.value = value;
      r.weight =
          std::pow(phonetics::PhoneticSimilarity(predicate.column, owner),
                   options.sharpen);
      r.site_id = column_site;
      replacements.push_back(std::move(r));
    }
  }

  // Sites: dropping one of multiple predicates (spurious insertions).
  if (!out_of_time() && base.predicates.size() >= 2 &&
      options.drop_predicate_weight > 0.0) {
    for (const db::Predicate& predicate : base.predicates) {
      Replacement r;
      r.site = Replacement::Site::kDropPredicate;
      r.column = predicate.column;
      r.weight = options.drop_predicate_weight;
      r.site_id = next_site_id++;
      replacements.push_back(std::move(r));
    }
  }

  // Assemble weighted candidates: the base, all single replacements, and
  // (optionally) pairs of replacements at distinct sites.
  core::CandidateSet candidates;
  candidates.Add(base, std::max(base_confidence, 1e-9));

  for (const Replacement& r : replacements) {
    db::AggregateQuery query = base;
    if (!Apply(r, &query)) continue;
    candidates.Add(std::move(query), base_confidence * r.weight);
  }

  if (options.include_pairs && !replacements.empty() && !out_of_time()) {
    // Use only the strongest alternatives per site for pair enumeration.
    std::vector<size_t> order(replacements.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return replacements[a].weight > replacements[b].weight;
    });
    std::vector<size_t> picked;
    std::vector<int> per_site_count(next_site_id, 0);
    for (size_t idx : order) {
      if (per_site_count[replacements[idx].site_id] >=
          static_cast<int>(options.pair_fanout)) {
        continue;
      }
      ++per_site_count[replacements[idx].site_id];
      picked.push_back(idx);
    }
    for (size_t a = 0; a < picked.size(); ++a) {
      for (size_t b = a + 1; b < picked.size(); ++b) {
        const Replacement& ra = replacements[picked[a]];
        const Replacement& rb = replacements[picked[b]];
        if (ra.site_id == rb.site_id) continue;
        db::AggregateQuery query = base;
        if (!Apply(ra, &query) || !Apply(rb, &query)) continue;
        candidates.Add(std::move(query),
                       base_confidence * ra.weight * rb.weight);
      }
    }
  }

  candidates.Deduplicate();
  candidates.SortByProbability();
  if (candidates.size() > options.max_candidates) {
    std::vector<core::CandidateQuery> trimmed(
        candidates.candidates().begin(),
        candidates.candidates().begin() +
            static_cast<long>(options.max_candidates));
    candidates = core::CandidateSet(std::move(trimmed));
  }
  candidates.Normalize();
  // Capped sets are never cached: a later unconstrained call must not
  // replay a degraded distribution from the session cache.
  if (use_cache && !expansion_capped) {
    cache_->Put(cache_key, candidates);
  }
  if (capped != nullptr) *capped = expansion_capped;
  return candidates;
}

}  // namespace muve::nlq
