#ifndef MUVE_NLQ_CANDIDATE_GENERATOR_H_
#define MUVE_NLQ_CANDIDATE_GENERATOR_H_

#include <memory>
#include <string>

#include "cache/lru_cache.h"
#include "common/clock.h"
#include "core/candidate.h"
#include "db/query.h"
#include "nlq/schema_index.h"

namespace muve::nlq {

/// Options for "text to multi-SQL" candidate generation (paper §3).
struct CandidateGeneratorOptions {
  /// k most phonetically similar alternatives per query element
  /// (paper: "typically, we set k to 20").
  size_t k_similar = 20;
  /// Cap on the size of the returned candidate set (most likely kept).
  size_t max_candidates = 50;
  /// Exponent sharpening similarity into a replacement probability:
  /// weight = similarity^sharpen. Larger values concentrate mass on the
  /// original interpretation.
  double sharpen = 6.0;
  /// Also generate candidates with two simultaneous replacements (their
  /// probability is the product of the single-replacement probabilities).
  bool include_pairs = true;
  /// Per-site cap on alternatives participating in pair enumeration.
  size_t pair_fanout = 6;
  /// Weight of aggregate alternatives generated for COUNT(*) bases — a
  /// COUNT(*) translation may stem from a misrecognized aggregate
  /// keyword, so SUM/AVG/MIN/MAX over each numeric column are proposed
  /// with this flat weight.
  double count_star_alternative_weight = 0.05;
  /// Minimum weight of aggregate-function alternatives. Aggregate cue
  /// words ("how many", "minimum", ...) are short and easily misheard,
  /// so alternatives keep at least this floor even when the function
  /// names sound nothing alike.
  double aggregate_alternative_floor = 0.05;
  /// Weight of dropping one predicate — noisy recognition can inject a
  /// spurious predicate, so candidates with one predicate removed are
  /// proposed (only for bases with two or more predicates).
  double drop_predicate_weight = 0.08;
};

/// Expands a translated base query into a probability distribution over
/// phonetically similar candidate queries, the "text to multi-SQL" step
/// of paper §3: every schema element and constant of the base query is
/// looked up in the phonetic index; alternatives produce replacement
/// queries whose probability derives from Jaro-Winkler similarity of
/// Double Metaphone codes; multi-replacement probabilities multiply.
class CandidateGenerator {
 public:
  /// Session cache of generated candidate sets. Keyed on the exact
  /// (base query, confidence, options) triple — see CandidateCacheKey —
  /// so a hit returns the byte-identical distribution the phonetic
  /// expansion would recompute. Owned by the caller (MuveEngine) and
  /// shared across queries of a session.
  using Cache = cache::LruCache<std::string, core::CandidateSet>;

  explicit CandidateGenerator(std::shared_ptr<const SchemaIndex> index)
      : index_(std::move(index)) {}

  /// Attaches a session cache (nullptr detaches). Non-owning; the cache
  /// must outlive the generator's Generate calls.
  void set_cache(Cache* cache) { cache_ = cache; }

  /// Request-scoped constraints on one Generate call.
  struct GenerationConstraints {
    /// Budget for the phonetic expansion, checked between enumeration
    /// sites and before pair enumeration: on expiry the remaining
    /// expansion is skipped and the (still deduplicated, sorted, and
    /// normalized) set is flagged capped. The base query is always
    /// produced — candidate #0 exists on every rung of the serving
    /// degradation ladder. The default infinite deadline is the exact
    /// unconstrained expansion.
    Deadline deadline;
    /// Skip the session candidate cache for this call (reads and
    /// writes).
    bool bypass_cache = false;
  };

  /// Generates the candidate set (normalized to total probability 1,
  /// sorted by descending probability, duplicates merged). The base query
  /// itself is always candidate #0. `base_confidence` scales how dominant
  /// the base interpretation is relative to alternatives.
  core::CandidateSet Generate(
      const db::AggregateQuery& base, double base_confidence = 1.0,
      const CandidateGeneratorOptions& options = {}) const;

  /// As above with request-scoped constraints. `*capped` (optional) is
  /// set to true when the deadline cut the expansion short; capped sets
  /// are never stored in the session cache — a later unconstrained call
  /// must not replay a degraded distribution.
  core::CandidateSet Generate(const db::AggregateQuery& base,
                              double base_confidence,
                              const CandidateGeneratorOptions& options,
                              const GenerationConstraints& constraints,
                              bool* capped = nullptr) const;

 private:
  std::shared_ptr<const SchemaIndex> index_;
  Cache* cache_ = nullptr;
};

/// Cache key for one Generate call: canonical base query plus every
/// option that shapes the expansion, numeric fields at full precision.
std::string CandidateCacheKey(const db::AggregateQuery& base,
                              double base_confidence,
                              const CandidateGeneratorOptions& options);

}  // namespace muve::nlq

#endif  // MUVE_NLQ_CANDIDATE_GENERATOR_H_
