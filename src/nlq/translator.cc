#include "nlq/translator.h"

#include <algorithm>
#include <cctype>
#include <vector>

#include "common/strings.h"
#include "phonetics/similarity.h"

namespace muve::nlq {

namespace {

constexpr double kColumnMatchThreshold = 0.70;
// Generic (pattern-free) value linking must be confident.
constexpr double kGenericValueThreshold = 0.74;
// Pattern-based ("X is Y") linking can be more permissive.
constexpr double kPatternColumnThreshold = 0.66;
constexpr double kPatternValueThreshold = 0.55;

/// Aggregate keyword cues.
struct AggregateCue {
  const char* word;
  db::AggregateFunction function;
};

constexpr AggregateCue kAggregateCues[] = {
    {"count", db::AggregateFunction::kCount},
    {"many", db::AggregateFunction::kCount},
    {"number", db::AggregateFunction::kCount},
    {"total", db::AggregateFunction::kSum},
    {"sum", db::AggregateFunction::kSum},
    {"average", db::AggregateFunction::kAvg},
    {"avg", db::AggregateFunction::kAvg},
    {"mean", db::AggregateFunction::kAvg},
    {"typical", db::AggregateFunction::kAvg},
    {"max", db::AggregateFunction::kMax},
    {"maximum", db::AggregateFunction::kMax},
    {"highest", db::AggregateFunction::kMax},
    {"largest", db::AggregateFunction::kMax},
    {"longest", db::AggregateFunction::kMax},
    {"min", db::AggregateFunction::kMin},
    {"minimum", db::AggregateFunction::kMin},
    {"lowest", db::AggregateFunction::kMin},
    {"smallest", db::AggregateFunction::kMin},
    {"shortest", db::AggregateFunction::kMin},
};

bool IsStopword(const std::string& token) {
  static const std::vector<std::string> kStopwords = {
      "the",   "a",       "an",      "of",   "in",      "on",     "at",
      "for",   "is",      "are",     "was",  "were",    "what",   "whats",
      "show",  "me",      "how",     "with", "where",   "and",    "from",
      "please", "give",   "tell",    "do",   "does",    "did",    "to",
      "by",    "that",    "it",      "there", "query",  "queries",
      "records", "rows",  "entries", "us"};
  return std::find(kStopwords.begin(), kStopwords.end(), token) !=
         kStopwords.end();
}

std::vector<std::string> TokenizeUtterance(std::string_view text) {
  std::string cleaned;
  cleaned.reserve(text.size());
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == ' ' ||
        c == '_') {
      cleaned += static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
    } else if (c == '\'') {
      // "what's" -> "whats".
    } else {
      cleaned += ' ';
    }
  }
  return SplitWhitespace(cleaned);
}

std::string WindowText(const std::vector<std::string>& tokens, size_t start,
                       size_t length) {
  std::string out;
  for (size_t i = start; i < start + length; ++i) {
    if (!out.empty()) out += ' ';
    out += tokens[i];
  }
  return out;
}

/// Underscores in schema names read as spaces in speech.
std::string Spoken(const std::string& name) {
  std::string out = ToLower(name);
  std::replace(out.begin(), out.end(), '_', ' ');
  return out;
}

/// Lookup fan-outs the translator asks the schema index for. Centralized
/// so the per-utterance memo below can key lookups on the window alone.
constexpr size_t kColumnFanout = 3;
constexpr size_t kValueFanout = 5;

/// Per-utterance scratch. The translator's loops (aggregation-column
/// windows, pattern-predicate sides, generic windows) revisit the same
/// token windows and schema entries many times; this memo encodes each
/// window once, precomputes each entry's lowered/spoken form and
/// Metaphone code once, and caches every index lookup and blended
/// similarity for the lifetime of one Translate call.
class TranslationScratch {
 public:
  explicit TranslationScratch(const SchemaIndex& index) : index_(index) {}

  const std::vector<ColumnMatch>& TopColumns(const std::string& window,
                                             bool numeric_only) {
    auto& memo = numeric_only ? numeric_columns_ : all_columns_;
    auto [it, inserted] = memo.try_emplace(window);
    if (inserted) {
      it->second = index_.TopColumns(window, kColumnFanout, numeric_only);
    }
    return it->second;
  }

  const std::vector<ValueMatch>& TopValues(const std::string& window) {
    auto [it, inserted] = values_.try_emplace(window);
    if (inserted) it->second = index_.TopValues(window, kValueFanout);
    return it->second;
  }

  const std::vector<ValueMatch>& TopValuesInColumn(
      const std::string& column, const std::string& window) {
    auto [it, inserted] =
        column_values_.try_emplace(PairKey(column, window));
    if (inserted) {
      it->second = index_.TopValuesInColumn(column, window, kColumnFanout);
    }
    return it->second;
  }

  /// Confidence blend: half phonetic, half spelling — robust to both ASR
  /// confusions and near-miss transcriptions, while rejecting words that
  /// merely share a consonant skeleton.
  double Blended(const std::string& window, const std::string& entry) {
    auto [it, inserted] = blended_.try_emplace(PairKey(window, entry), 0.0);
    if (inserted) {
      const WindowForms& w = Window(window);
      const EntryForms& e = Entry(entry);
      it->second =
          0.5 * phonetics::CodeSimilarity(w.code, e.code) +
          0.5 * phonetics::JaroWinklerSimilarity(w.lower, e.spoken);
    }
    return it->second;
  }

 private:
  struct WindowForms {
    std::string lower;
    phonetics::MetaphoneCode code;
  };
  struct EntryForms {
    std::string spoken;
    phonetics::MetaphoneCode code;
  };

  static std::string PairKey(const std::string& a, const std::string& b) {
    std::string key;
    key.reserve(a.size() + 1 + b.size());
    key += a;
    key += '\x1f';  // Unit separator: never appears in tokens or names.
    key += b;
    return key;
  }

  static const phonetics::DoubleMetaphone& Encoder() {
    static const phonetics::DoubleMetaphone kEncoder;
    return kEncoder;
  }

  const WindowForms& Window(const std::string& window) {
    auto [it, inserted] = windows_.try_emplace(window);
    if (inserted) {
      it->second.lower = ToLower(window);
      it->second.code = Encoder().Encode(window);
    }
    return it->second;
  }

  const EntryForms& Entry(const std::string& entry) {
    auto [it, inserted] = entries_.try_emplace(entry);
    if (inserted) {
      it->second.spoken = Spoken(entry);
      it->second.code = Encoder().Encode(it->second.spoken);
    }
    return it->second;
  }

  const SchemaIndex& index_;
  std::unordered_map<std::string, std::vector<ColumnMatch>> all_columns_;
  std::unordered_map<std::string, std::vector<ColumnMatch>>
      numeric_columns_;
  std::unordered_map<std::string, std::vector<ValueMatch>> values_;
  std::unordered_map<std::string, std::vector<ValueMatch>> column_values_;
  std::unordered_map<std::string, double> blended_;
  std::unordered_map<std::string, WindowForms> windows_;
  std::unordered_map<std::string, EntryForms> entries_;
};

}  // namespace

Result<Translation> Translator::Translate(std::string_view text,
                                          const Deadline& deadline,
                                          bool* deadline_overrun) const {
  // The full translation runs regardless of the deadline (see header);
  // only the overrun is reported so downstream stages can degrade.
  Result<Translation> translation = Translate(text);
  if (deadline_overrun != nullptr) *deadline_overrun = deadline.Expired();
  return translation;
}

Result<Translation> Translator::Translate(std::string_view text) const {
  std::vector<std::string> tokens = TokenizeUtterance(text);
  if (tokens.empty()) {
    return Status::InvalidArgument("empty utterance");
  }

  Translation out;
  out.query.table = index_->table().name();
  out.query.function = db::AggregateFunction::kCount;
  out.confidence = 1.0;

  TranslationScratch scratch(*index_);

  std::vector<char> used(tokens.size(), 0);
  std::vector<std::string> constrained_columns;

  // 1. Aggregate function cue.
  size_t aggregate_pos = tokens.size();
  for (size_t i = 0; i < tokens.size() && aggregate_pos == tokens.size();
       ++i) {
    for (const AggregateCue& cue : kAggregateCues) {
      if (tokens[i] == cue.word) {
        out.query.function = cue.function;
        aggregate_pos = i;
        used[i] = 1;
        break;
      }
    }
  }

  // 2. Aggregation column: the tokens right after the cue, fuzzy-matched
  //    against numeric columns (longest window first). COUNT needs none.
  if (out.query.function != db::AggregateFunction::kCount &&
      aggregate_pos < tokens.size()) {
    double best_similarity = kColumnMatchThreshold;
    size_t best_start = 0;
    size_t best_length = 0;
    std::string best_column;
    for (size_t length = 3; length >= 1; --length) {
      for (size_t start = aggregate_pos + 1;
           start + length <= tokens.size() && start <= aggregate_pos + 3;
           ++start) {
        bool overlap = false;
        for (size_t i = start; i < start + length; ++i) {
          if (used[i]) overlap = true;
        }
        if (overlap) continue;
        const std::string window = WindowText(tokens, start, length);
        for (const ColumnMatch& match :
             scratch.TopColumns(window, /*numeric_only=*/true)) {
          const double blended = scratch.Blended(window, match.column);
          if (blended > best_similarity) {
            best_similarity = blended;
            best_column = match.column;
            best_start = start;
            best_length = length;
          }
        }
      }
      if (length == 1) break;
    }
    if (!best_column.empty()) {
      out.query.aggregate_column = best_column;
      out.confidence *= best_similarity;
      for (size_t i = best_start; i < best_start + best_length; ++i) {
        used[i] = 1;
      }
    } else {
      // No aggregatable column found: degrade to COUNT(*).
      out.query.function = db::AggregateFunction::kCount;
    }
  }

  auto add_predicate = [&](const std::string& column,
                           const std::string& value, double confidence,
                           size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) used[i] = 1;
    constrained_columns.push_back(column);
    out.query.predicates.push_back(
        db::Predicate::Equals(column, db::Value(value)));
    out.confidence *= confidence;
  };

  auto column_constrained = [&](const std::string& column) {
    for (const std::string& existing : constrained_columns) {
      if (EqualsIgnoreCase(existing, column)) return true;
    }
    return false;
  };

  // 3a. Pattern predicates: "<column words> is <value words>".
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i] != "is" && tokens[i] != "equals") continue;
    // Left side: a column name ending at i-1.
    double best_column_sim = kPatternColumnThreshold;
    std::string best_column;
    size_t column_begin = 0;
    for (size_t length = 1; length <= 3 && length <= i; ++length) {
      const size_t start = i - length;
      bool blocked = false;
      for (size_t t = start; t < i; ++t) {
        if (used[t]) blocked = true;
      }
      if (blocked) continue;
      const std::string window = WindowText(tokens, start, length);
      for (const ColumnMatch& match :
           scratch.TopColumns(window, /*numeric_only=*/false)) {
        const double blended = scratch.Blended(window, match.column);
        if (blended > best_column_sim) {
          best_column_sim = blended;
          best_column = match.column;
          column_begin = start;
        }
      }
    }
    if (best_column.empty() || column_constrained(best_column)) continue;
    // Right side: a value of that column starting at i+1.
    double best_value_sim = kPatternValueThreshold;
    std::string best_value;
    size_t value_end = 0;
    for (size_t length = 1; length <= 3 && i + length < tokens.size();
         ++length) {
      bool blocked = false;
      for (size_t t = i + 1; t <= i + length; ++t) {
        if (used[t]) blocked = true;
      }
      if (blocked) continue;
      const std::string window = WindowText(tokens, i + 1, length);
      for (const ValueMatch& match :
           scratch.TopValuesInColumn(best_column, window)) {
        const double blended = scratch.Blended(window, match.value);
        if (blended > best_value_sim) {
          best_value_sim = blended;
          best_value = match.value;
          value_end = i + 1 + length;
        }
      }
    }
    if (best_value.empty()) continue;
    used[i] = 1;
    add_predicate(best_column, best_value,
                  best_column_sim * best_value_sim, column_begin,
                  value_end);
  }

  // 3b. Generic predicates: remaining windows fuzzy-linked to values.
  //     A window that resembles a *column name* more than any value is
  //     treated as descriptive ("complaints" ~ complaint_type) and
  //     skipped.
  struct PredicateCandidate {
    size_t start, length;
    std::string column, value;
    double similarity;
  };
  std::vector<PredicateCandidate> found;
  for (size_t length = 3; length >= 1; --length) {
    for (size_t start = 0; start + length <= tokens.size(); ++start) {
      bool blocked = false;
      for (size_t i = start; i < start + length; ++i) {
        if (used[i] || IsStopword(tokens[i])) blocked = true;
      }
      if (blocked) continue;
      const std::string window = WindowText(tokens, start, length);
      double best_value_sim = 0.0;
      std::string best_value;
      std::string best_value_column;
      for (const ValueMatch& match : scratch.TopValues(window)) {
        const double blended = scratch.Blended(window, match.value);
        if (blended > best_value_sim) {
          best_value_sim = blended;
          best_value = match.value;
          best_value_column = match.column;
        }
      }
      if (best_value_sim < kGenericValueThreshold) continue;
      double best_column_sim = 0.0;
      for (const ColumnMatch& match :
           scratch.TopColumns(window, /*numeric_only=*/false)) {
        best_column_sim = std::max(best_column_sim,
                                   scratch.Blended(window, match.column));
      }
      if (best_column_sim > best_value_sim) continue;  // Descriptive.
      found.push_back(
          {start, length, best_value_column, best_value, best_value_sim});
    }
    if (length == 1) break;
  }
  std::stable_sort(found.begin(), found.end(),
                   [](const PredicateCandidate& a,
                      const PredicateCandidate& b) {
                     if (a.length != b.length) return a.length > b.length;
                     return a.similarity > b.similarity;
                   });
  for (const PredicateCandidate& candidate : found) {
    bool overlap = false;
    for (size_t i = candidate.start;
         i < candidate.start + candidate.length; ++i) {
      if (used[i]) overlap = true;
    }
    if (overlap || column_constrained(candidate.column)) continue;
    add_predicate(candidate.column, candidate.value, candidate.similarity,
                  candidate.start, candidate.start + candidate.length);
  }

  if (out.query.predicates.empty() &&
      out.query.aggregate_column.empty() &&
      out.query.function == db::AggregateFunction::kCount) {
    // Nothing linked at all: an utterance with content words but no
    // recognized element is a translation failure.
    bool any_content = false;
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (!used[i] && !IsStopword(tokens[i])) any_content = true;
    }
    if (any_content) {
      return Status::NotFound("could not link utterance to the schema: '" +
                              std::string(text) + "'");
    }
  }
  return out;
}

std::string VerbalizeQuery(const db::AggregateQuery& query) {
  std::string out;
  switch (query.function) {
    case db::AggregateFunction::kCount:
      out = "how many";
      break;
    case db::AggregateFunction::kSum:
      out = "total";
      break;
    case db::AggregateFunction::kAvg:
      out = "average";
      break;
    case db::AggregateFunction::kMin:
      out = "minimum";
      break;
    case db::AggregateFunction::kMax:
      out = "maximum";
      break;
  }
  if (!query.aggregate_column.empty()) {
    out += " " + Spoken(query.aggregate_column);
  } else {
    out += " records";
  }
  for (size_t i = 0; i < query.predicates.size(); ++i) {
    const db::Predicate& predicate = query.predicates[i];
    out += i == 0 ? " where " : " and ";
    out += Spoken(predicate.column) + " is " +
           ToLower(predicate.values.empty()
                       ? ""
                       : predicate.values.front().ToString());
  }
  return out;
}

}  // namespace muve::nlq
