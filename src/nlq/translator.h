#ifndef MUVE_NLQ_TRANSLATOR_H_
#define MUVE_NLQ_TRANSLATOR_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/clock.h"
#include "common/status.h"
#include "db/query.h"
#include "nlq/schema_index.h"

namespace muve::nlq {

/// A translated query plus the translator's confidence in it.
struct Translation {
  db::AggregateQuery query;
  double confidence = 0.0;
};

/// Rule-based natural-language -> SQL translator, standing in for the
/// SQLova sequence-to-sequence model the paper uses (§3) to obtain the
/// *most likely* query. Downstream components only consume the resulting
/// query + confidence, so a deterministic translator exercises the same
/// pipeline while keeping tests reproducible.
///
/// Supported shapes (case-insensitive, punctuation ignored):
///   "how many complaints in brooklyn"            -> COUNT(*) + predicate
///   "average open hours for noise in queens"     -> AVG(open_hours) + 2
///   "total arr delay where carrier is delta"     -> SUM(arr_delay) + 1
///
/// Aggregates are detected from keyword cues, the aggregation column and
/// predicate constants from fuzzy phonetic matches against the schema
/// index (so slightly misrecognized words still link).
class Translator {
 public:
  explicit Translator(std::shared_ptr<const SchemaIndex> index)
      : index_(std::move(index)) {}

  /// Translates an utterance. Fails when no predicate or aggregate target
  /// can be linked to the schema at all.
  Result<Translation> Translate(std::string_view text) const;

  /// As Translate(), recording whether `deadline` expired while (or
  /// before) translating. Translation always runs to completion even on
  /// an expired deadline: every rung of the serving degradation ladder —
  /// including the bottom base-query-only answer — needs the base query,
  /// so this stage is the pipeline's irreducible floor. The overrun flag
  /// lets the caller degrade every later stage immediately.
  Result<Translation> Translate(std::string_view text,
                                const Deadline& deadline,
                                bool* deadline_overrun) const;

 private:
  std::shared_ptr<const SchemaIndex> index_;
};

/// Renders a query as a natural-language utterance ("average open hours
/// where complaint type is noise and borough is brooklyn") — the inverse
/// of Translate, used to drive end-to-end pipeline simulations from
/// generated ground-truth queries.
std::string VerbalizeQuery(const db::AggregateQuery& query);

}  // namespace muve::nlq

#endif  // MUVE_NLQ_TRANSLATOR_H_
