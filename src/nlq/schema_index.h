#ifndef MUVE_NLQ_SCHEMA_INDEX_H_
#define MUVE_NLQ_SCHEMA_INDEX_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/table.h"
#include "phonetics/phonetic_index.h"

namespace muve::nlq {

/// A fuzzy value match: a categorical value, the column it belongs to,
/// and its phonetic similarity to the lookup term.
struct ValueMatch {
  std::string value;
  std::string column;
  double similarity = 0.0;
};

/// A fuzzy column match.
struct ColumnMatch {
  std::string column;
  double similarity = 0.0;
};

/// Phonetic indexes over a table's schema elements and categorical
/// values — the structure MUVE queries for "the k most phonetically
/// similar entries for each query element" (paper §3, via Lucene there).
class SchemaIndex {
 public:
  explicit SchemaIndex(std::shared_ptr<const db::Table> table);

  const db::Table& table() const { return *table_; }
  std::shared_ptr<const db::Table> table_ptr() const { return table_; }

  /// k columns most phonetically similar to `term`. `numeric_only`
  /// restricts matches to aggregatable (numeric) columns.
  std::vector<ColumnMatch> TopColumns(const std::string& term, size_t k,
                                      bool numeric_only = false) const;

  /// k categorical values most phonetically similar to `term`, across all
  /// string columns (each tagged with its owning column). When a value
  /// occurs in several columns, one match per column is returned.
  std::vector<ValueMatch> TopValues(const std::string& term,
                                    size_t k) const;

  /// k values of one specific column most similar to `term`.
  std::vector<ValueMatch> TopValuesInColumn(const std::string& column,
                                            const std::string& term,
                                            size_t k) const;

  /// Columns owning the exact value `value` (case insensitive).
  std::vector<std::string> ColumnsOfValue(const std::string& value) const;

 private:
  std::shared_ptr<const db::Table> table_;
  phonetics::PhoneticIndex all_columns_;
  phonetics::PhoneticIndex numeric_columns_;
  phonetics::PhoneticIndex all_values_;
  std::unordered_map<std::string, std::vector<std::string>>
      columns_of_value_;  // Lower-cased value -> owning columns.
  std::unordered_map<std::string, phonetics::PhoneticIndex>
      values_per_column_;  // Lower-cased column name -> value index.
};

}  // namespace muve::nlq

#endif  // MUVE_NLQ_SCHEMA_INDEX_H_
