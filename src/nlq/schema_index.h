#ifndef MUVE_NLQ_SCHEMA_INDEX_H_
#define MUVE_NLQ_SCHEMA_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/relation.h"
#include "phonetics/phonetic_index.h"

namespace muve::nlq {

/// A fuzzy value match: a categorical value, the column it belongs to,
/// and its phonetic similarity to the lookup term.
struct ValueMatch {
  std::string value;
  std::string column;
  double similarity = 0.0;
};

/// A fuzzy column match.
struct ColumnMatch {
  std::string column;
  double similarity = 0.0;
};

/// Phonetic indexes over a table's schema elements and categorical
/// values — the structure MUVE queries for "the k most phonetically
/// similar entries for each query element" (paper §3, via Lucene there).
///
/// The column indexes are immutable (the schema is fixed); the value
/// indexes grow with the table: SyncWithTable() absorbs string values
/// appended since the last sync, so a long-lived per-session index stays
/// current under live ingest without a rebuild. Lookups may run
/// concurrently with a sync (readers take a shared lock).
class SchemaIndex {
 public:
  /// Builds the indexes over `table`'s current contents. Any Relation —
  /// a single db::Table or a shard::ShardedTable (whose catalog surface
  /// presents globally merged vocabularies) — works unchanged.
  /// `phonetic_options` is forwarded to every phonetic index (thread
  /// pool for parallel candidate scoring, brute-force oracle toggle).
  explicit SchemaIndex(std::shared_ptr<const db::Relation> table,
                       const phonetics::PhoneticIndexOptions&
                           phonetic_options = {});

  const db::Relation& table() const { return *table_; }
  std::shared_ptr<const db::Relation> table_ptr() const { return table_; }

  /// Absorbs string values appended to the table since construction or
  /// the last sync into the value indexes (the distinct-value suffix of
  /// each string column, in first-appearance order). Returns true when
  /// new values were absorbed — callers should then invalidate anything
  /// derived from the old vocabulary (candidate caches, plan memos).
  /// Cheap when nothing changed: one atomic version compare.
  bool SyncWithTable();

  /// Table content version the value indexes reflect.
  uint64_t synced_version() const {
    return synced_version_.load(std::memory_order_acquire);
  }

  /// Total values absorbed by SyncWithTable() since construction —
  /// observability for tests and benchmarks (a growing count proves the
  /// index is updated in place, not rebuilt).
  uint64_t values_absorbed() const {
    return values_absorbed_.load(std::memory_order_relaxed);
  }

  /// Distinct values currently indexed across all string columns.
  size_t distinct_values() const;

  /// k columns most phonetically similar to `term`. `numeric_only`
  /// restricts matches to aggregatable (numeric) columns.
  std::vector<ColumnMatch> TopColumns(const std::string& term, size_t k,
                                      bool numeric_only = false) const;

  /// The k categorical values most phonetically similar to `term`,
  /// across all string columns, each expanded into one match per owning
  /// column (so the result can exceed k matches but never fewer than k
  /// distinct values when the vocabulary has them). Ranked by similarity,
  /// then value, then first-appearance owner order.
  std::vector<ValueMatch> TopValues(const std::string& term,
                                    size_t k) const;

  /// k values of one specific column most similar to `term`.
  std::vector<ValueMatch> TopValuesInColumn(const std::string& column,
                                            const std::string& term,
                                            size_t k) const;

  /// Columns owning the exact value `value` (case insensitive).
  std::vector<std::string> ColumnsOfValue(const std::string& value) const;

 private:
  /// Adds `value` (owned by `column_name`) to the value structures.
  /// Caller holds the exclusive lock (or is the constructor).
  void AbsorbValue(const std::string& column_name,
                   phonetics::PhoneticIndex& per_column,
                   const std::string& value);

  std::shared_ptr<const db::Relation> table_;
  phonetics::PhoneticIndexOptions phonetic_options_;

  // Immutable after construction (the schema is fixed).
  phonetics::PhoneticIndex all_columns_;
  phonetics::PhoneticIndex numeric_columns_;

  /// Guards the value structures below against concurrent SyncWithTable.
  mutable std::shared_mutex values_mutex_;
  phonetics::PhoneticIndex all_values_;
  std::unordered_map<std::string, std::vector<std::string>>
      columns_of_value_;  // Lower-cased value -> owning columns.
  std::unordered_map<std::string, phonetics::PhoneticIndex>
      values_per_column_;  // Lower-cased column name -> value index.
  std::vector<size_t> values_seen_;  // Distinct values absorbed per column.

  std::atomic<uint64_t> synced_version_{0};
  std::atomic<uint64_t> values_absorbed_{0};
};

}  // namespace muve::nlq

#endif  // MUVE_NLQ_SCHEMA_INDEX_H_
