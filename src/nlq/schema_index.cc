#include "nlq/schema_index.h"

#include <algorithm>

#include "common/strings.h"

namespace muve::nlq {

SchemaIndex::SchemaIndex(std::shared_ptr<const db::Table> table)
    : table_(std::move(table)) {
  for (size_t c = 0; c < table_->num_columns(); ++c) {
    const db::ColumnSpec& spec = table_->spec(c);
    all_columns_.Add(spec.name);
    if (spec.type != db::ValueType::kString) {
      numeric_columns_.Add(spec.name);
      continue;
    }
    phonetics::PhoneticIndex& per_column =
        values_per_column_[ToLower(spec.name)];
    // Vocabulary harvested once at index construction; values appended
    // later are invisible to the phonetic index until it is rebuilt
    // (acceptable staleness under live ingest — see DESIGN.md).
    for (const std::string& value : table_->StringValues(c)) {
      all_values_.Add(value);
      per_column.Add(value);
      std::vector<std::string>& owners =
          columns_of_value_[ToLower(value)];
      if (std::find(owners.begin(), owners.end(), spec.name) ==
          owners.end()) {
        owners.push_back(spec.name);
      }
    }
  }
}

std::vector<ColumnMatch> SchemaIndex::TopColumns(const std::string& term,
                                                 size_t k,
                                                 bool numeric_only) const {
  const phonetics::PhoneticIndex& index =
      numeric_only ? numeric_columns_ : all_columns_;
  std::vector<ColumnMatch> out;
  for (const phonetics::PhoneticMatch& match : index.TopK(term, k)) {
    out.push_back({match.entry, match.similarity});
  }
  return out;
}

std::vector<ValueMatch> SchemaIndex::TopValues(const std::string& term,
                                               size_t k) const {
  std::vector<ValueMatch> out;
  for (const phonetics::PhoneticMatch& match : all_values_.TopK(term, k)) {
    for (const std::string& column : ColumnsOfValue(match.entry)) {
      out.push_back({match.entry, column, match.similarity});
    }
  }
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<ValueMatch> SchemaIndex::TopValuesInColumn(
    const std::string& column, const std::string& term, size_t k) const {
  std::vector<ValueMatch> out;
  auto it = values_per_column_.find(ToLower(column));
  if (it == values_per_column_.end()) return out;
  for (const phonetics::PhoneticMatch& match : it->second.TopK(term, k)) {
    out.push_back({match.entry, column, match.similarity});
  }
  return out;
}

std::vector<std::string> SchemaIndex::ColumnsOfValue(
    const std::string& value) const {
  auto it = columns_of_value_.find(ToLower(value));
  if (it == columns_of_value_.end()) return {};
  return it->second;
}

}  // namespace muve::nlq
