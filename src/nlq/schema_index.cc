#include "nlq/schema_index.h"

#include <algorithm>
#include <mutex>

#include "common/strings.h"

namespace muve::nlq {

SchemaIndex::SchemaIndex(
    std::shared_ptr<const db::Relation> table,
    const phonetics::PhoneticIndexOptions& phonetic_options)
    : table_(std::move(table)),
      phonetic_options_(phonetic_options),
      all_columns_(phonetic_options),
      numeric_columns_(phonetic_options),
      all_values_(phonetic_options) {
  values_seen_.resize(table_->num_columns(), 0);
  // Read the version before harvesting: values appended mid-harvest bump
  // the version past this snapshot, so the next SyncWithTable picks up
  // anything the harvest raced with (absorbing a value twice is a no-op).
  const uint64_t version = table_->version();
  for (size_t c = 0; c < table_->num_columns(); ++c) {
    const db::ColumnSpec& spec = table_->spec(c);
    all_columns_.Add(spec.name);
    if (spec.type != db::ValueType::kString) {
      numeric_columns_.Add(spec.name);
      continue;
    }
    phonetics::PhoneticIndex& per_column =
        values_per_column_.try_emplace(ToLower(spec.name), phonetic_options_)
            .first->second;
    const std::vector<std::string> values = table_->StringValues(c);
    values_seen_[c] = values.size();
    for (const std::string& value : values) {
      AbsorbValue(spec.name, per_column, value);
    }
  }
  synced_version_.store(version, std::memory_order_release);
}

void SchemaIndex::AbsorbValue(const std::string& column_name,
                              phonetics::PhoneticIndex& per_column,
                              const std::string& value) {
  all_values_.Add(value);
  per_column.Add(value);
  std::vector<std::string>& owners = columns_of_value_[ToLower(value)];
  if (std::find(owners.begin(), owners.end(), column_name) == owners.end()) {
    owners.push_back(column_name);
  }
}

bool SchemaIndex::SyncWithTable() {
  // Fast path: nothing appended since the last sync.
  if (table_->version() == synced_version_.load(std::memory_order_acquire)) {
    return false;
  }
  std::unique_lock<std::shared_mutex> lock(values_mutex_);
  // Re-read under the lock: a concurrent sync may have caught up already.
  const uint64_t target = table_->version();
  if (target == synced_version_.load(std::memory_order_acquire)) {
    return false;
  }
  // Table vocabularies are append-only in first-appearance order, so the
  // new values of each column are exactly the suffix past what this index
  // absorbed before. DistinctCount is the cheap per-column probe that
  // skips the vocabulary copy when only numeric (or repeated string)
  // values arrived.
  bool absorbed_any = false;
  for (size_t c = 0; c < table_->num_columns(); ++c) {
    const db::ColumnSpec& spec = table_->spec(c);
    if (spec.type != db::ValueType::kString) continue;
    const size_t seen = values_seen_[c];
    if (table_->DistinctCount(c) <= seen) continue;
    const std::vector<std::string> values = table_->StringValues(c);
    if (values.size() <= seen) continue;
    phonetics::PhoneticIndex& per_column =
        values_per_column_.try_emplace(ToLower(spec.name), phonetic_options_)
            .first->second;
    for (size_t i = seen; i < values.size(); ++i) {
      AbsorbValue(spec.name, per_column, values[i]);
    }
    values_absorbed_.fetch_add(values.size() - seen,
                               std::memory_order_relaxed);
    values_seen_[c] = values.size();
    absorbed_any = true;
  }
  synced_version_.store(target, std::memory_order_release);
  return absorbed_any;
}

size_t SchemaIndex::distinct_values() const {
  std::shared_lock<std::shared_mutex> lock(values_mutex_);
  return all_values_.size();
}

std::vector<ColumnMatch> SchemaIndex::TopColumns(const std::string& term,
                                                 size_t k,
                                                 bool numeric_only) const {
  // Column indexes are immutable after construction: no lock needed.
  const phonetics::PhoneticIndex& index =
      numeric_only ? numeric_columns_ : all_columns_;
  std::vector<ColumnMatch> out;
  for (const phonetics::PhoneticMatch& match : index.TopK(term, k)) {
    out.push_back({match.entry, match.similarity});
  }
  return out;
}

std::vector<ValueMatch> SchemaIndex::TopValues(const std::string& term,
                                               size_t k) const {
  std::shared_lock<std::shared_mutex> lock(values_mutex_);
  // The index ranks distinct values; each expands into one match per
  // owning column. Truncating to k matches *after* the expansion would
  // let one value owned by many columns crowd every lower-ranked distinct
  // value out entirely, so the expansion is returned whole: ranked by
  // similarity (ties by value, then first-appearance owner order), k
  // distinct values whenever the vocabulary has them.
  std::vector<ValueMatch> out;
  for (const phonetics::PhoneticMatch& match : all_values_.TopK(term, k)) {
    const auto it = columns_of_value_.find(ToLower(match.entry));
    if (it == columns_of_value_.end()) continue;
    for (const std::string& column : it->second) {
      out.push_back({match.entry, column, match.similarity});
    }
  }
  return out;
}

std::vector<ValueMatch> SchemaIndex::TopValuesInColumn(
    const std::string& column, const std::string& term, size_t k) const {
  std::shared_lock<std::shared_mutex> lock(values_mutex_);
  std::vector<ValueMatch> out;
  auto it = values_per_column_.find(ToLower(column));
  if (it == values_per_column_.end()) return out;
  for (const phonetics::PhoneticMatch& match : it->second.TopK(term, k)) {
    out.push_back({match.entry, column, match.similarity});
  }
  return out;
}

std::vector<std::string> SchemaIndex::ColumnsOfValue(
    const std::string& value) const {
  std::shared_lock<std::shared_mutex> lock(values_mutex_);
  auto it = columns_of_value_.find(ToLower(value));
  if (it == columns_of_value_.end()) return {};
  return it->second;
}

}  // namespace muve::nlq
