#ifndef MUVE_DB_QUERY_H_
#define MUVE_DB_QUERY_H_

#include <string>
#include <vector>

#include "db/value.h"

namespace muve::db {

/// Aggregation functions supported by the engine. Every MUVE candidate
/// query computes exactly one aggregate (a single numerical result,
/// paper §2 Definition 1).
enum class AggregateFunction {
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
};

/// "COUNT", "SUM", ...
const char* AggregateFunctionName(AggregateFunction fn);

/// All supported aggregate functions.
const std::vector<AggregateFunction>& AllAggregateFunctions();

/// Predicate comparison operators. MUVE's fragment uses equality
/// predicates; IN appears when the executor merges queries (§8.1).
enum class PredicateOp {
  kEq,
  kIn,
};

/// A predicate `column op value(s)` on a single column.
struct Predicate {
  std::string column;
  PredicateOp op = PredicateOp::kEq;
  std::vector<Value> values;  ///< One value for kEq, one or more for kIn.

  static Predicate Equals(std::string column, Value value) {
    Predicate p;
    p.column = std::move(column);
    p.op = PredicateOp::kEq;
    p.values = {std::move(value)};
    return p;
  }

  static Predicate In(std::string column, std::vector<Value> values) {
    Predicate p;
    p.column = std::move(column);
    p.op = PredicateOp::kIn;
    p.values = std::move(values);
    return p;
  }

  /// SQL text, e.g. "city = 'queens'" or "city IN ('queens','quincy')".
  std::string ToSql() const;

  bool operator==(const Predicate& other) const;
};

/// A single-table aggregation query: SELECT <fn>(<column>) FROM <table>
/// WHERE <predicates conjunction>.
struct AggregateQuery {
  std::string table;
  AggregateFunction function = AggregateFunction::kCount;
  /// Aggregated column; empty for COUNT(*).
  std::string aggregate_column;
  std::vector<Predicate> predicates;

  /// Full SQL text of the query.
  std::string ToSql() const;

  /// "COUNT(*)" / "SUM(delay)" — used in plot titles.
  std::string AggregateSql() const;

  /// Canonical key: equal queries (same aggregate, same predicate set in
  /// any order) produce equal keys. Used for dedup and plot membership.
  std::string CanonicalKey() const;

  bool operator==(const AggregateQuery& other) const {
    return CanonicalKey() == other.CanonicalKey();
  }
};

}  // namespace muve::db

#endif  // MUVE_DB_QUERY_H_
