#include "db/csv.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <vector>

#include "db/snapshot.h"

namespace muve::db {

namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Splits one CSV record (handles quoted fields with embedded commas and
/// doubled quotes). Assumes records do not span lines (our writer never
/// emits embedded newlines for the supported types).
std::vector<std::string> SplitRecord(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // Skip CR of CRLF endings.
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

bool LooksLikeInt(const std::string& text) {
  if (text.empty()) return false;
  size_t i = (text[0] == '-' || text[0] == '+') ? 1 : 0;
  if (i == text.size()) return false;
  for (; i < text.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(text[i]))) return false;
  }
  return true;
}

bool LooksLikeDouble(const std::string& text) {
  if (text.empty()) return false;
  char* end = nullptr;
  std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

/// Doubles keep an explicit decimal point so a round-trip re-infers the
/// column as DOUBLE even when every value happens to be integral.
std::string FormatField(const Value& value, ValueType type) {
  if (type != ValueType::kDouble) return value.ToString();
  std::string text = value.ToString();
  if (text.find('.') == std::string::npos &&
      text.find('e') == std::string::npos &&
      text.find("inf") == std::string::npos &&
      text.find("nan") == std::string::npos) {
    text += ".0";
  }
  return text;
}

}  // namespace

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  // One snapshot for the whole file: a writer racing the export cannot
  // tear the row set mid-write.
  const TableSnapshot snapshot = table.Snapshot();
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out << ',';
    out << QuoteField(table.spec(c).name);
  }
  out << '\n';
  for (size_t r = 0; r < snapshot.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << ',';
      out << QuoteField(
          FormatField(snapshot.ValueAt(r, c), table.spec(c).type));
    }
    out << '\n';
  }
  if (!out) return Status::Internal("write error on '" + path + "'");
  return Status::OK();
}

Result<std::shared_ptr<Table>> ReadCsv(const std::string& table_name,
                                       const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::ParseError("empty CSV file '" + path + "'");
  }
  const std::vector<std::string> header = SplitRecord(line);

  // Buffer rows; infer types from the first data row.
  std::vector<std::vector<std::string>> rows;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitRecord(line);
    if (fields.size() != header.size()) {
      return Status::ParseError("row " + std::to_string(rows.size() + 2) +
                                " has " + std::to_string(fields.size()) +
                                " fields, expected " +
                                std::to_string(header.size()));
    }
    rows.push_back(std::move(fields));
  }

  // Infer each column's type over ALL rows: INT64 only if every value
  // is an integer literal, DOUBLE if every value parses as a number,
  // STRING otherwise.
  std::vector<ColumnSpec> schema;
  schema.reserve(header.size());
  for (size_t c = 0; c < header.size(); ++c) {
    bool all_int = !rows.empty();
    bool all_double = !rows.empty();
    for (const auto& row : rows) {
      if (!LooksLikeInt(row[c])) all_int = false;
      if (!LooksLikeDouble(row[c])) all_double = false;
      if (!all_int && !all_double) break;
    }
    ValueType type = ValueType::kString;
    if (all_int) {
      type = ValueType::kInt64;
    } else if (all_double) {
      type = ValueType::kDouble;
    }
    schema.push_back({header[c], type});
  }
  MUVE_ASSIGN_OR_RETURN(std::shared_ptr<Table> table,
                        Table::Create(table_name, schema));

  std::vector<Value> values(schema.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < schema.size(); ++c) {
      const std::string& text = rows[r][c];
      switch (schema[c].type) {
        case ValueType::kInt64:
          if (!LooksLikeInt(text)) {
            return Status::ParseError("row " + std::to_string(r + 2) +
                                      ", column '" + schema[c].name +
                                      "': expected integer, got '" + text +
                                      "'");
          }
          values[c] = Value(static_cast<int64_t>(std::stoll(text)));
          break;
        case ValueType::kDouble:
          if (!LooksLikeDouble(text)) {
            return Status::ParseError("row " + std::to_string(r + 2) +
                                      ", column '" + schema[c].name +
                                      "': expected number, got '" + text +
                                      "'");
          }
          values[c] = Value(std::stod(text));
          break;
        case ValueType::kString:
          values[c] = Value(text);
          break;
      }
    }
    MUVE_RETURN_NOT_OK(table->AppendRow(values));
  }
  return table;
}

}  // namespace muve::db
