#ifndef MUVE_DB_COST_ESTIMATOR_H_
#define MUVE_DB_COST_ESTIMATOR_H_

#include "common/status.h"
#include "db/executor.h"
#include "db/query.h"
#include "db/relation.h"

namespace muve::db {

/// Output of a cost estimate, in the spirit of Postgres EXPLAIN: an
/// abstract cost plus a cardinality estimate. MUVE uses these estimates to
/// decide whether to merge queries and to bound processing overheads
/// during visualization planning (paper §8.1).
struct CostEstimate {
  double total_cost = 0.0;   ///< Abstract cost units.
  double output_rows = 0.0;  ///< Estimated result cardinality.
  double selectivity = 1.0;  ///< Estimated fraction of rows surviving.
};

/// Plan-cost parameters, mirroring the Postgres seq-scan cost knobs.
struct CostParams {
  double seq_page_cost = 1.0;     ///< Per "page" (block of rows) read.
  double cpu_tuple_cost = 0.01;   ///< Per row processed.
  double cpu_operator_cost = 0.0025;  ///< Per predicate evaluation per row.
  double startup_cost = 20.0;     ///< Parse/plan/dispatch overhead.
  size_t rows_per_page = 128;     ///< Rows per simulated page.
};

/// Heuristic cost model for scans over in-memory tables.
class CostEstimator {
 public:
  explicit CostEstimator(CostParams params = CostParams())
      : params_(params) {}

  /// Estimates a single aggregation query (sequential scan + aggregate).
  Result<CostEstimate> Estimate(const Relation& table,
                                const AggregateQuery& query) const;

  /// Estimates a merged, grouped query: one scan evaluated once for all
  /// member queries (the merging benefit is one scan instead of N).
  Result<CostEstimate> EstimateGrouped(const Relation& table,
                                       const GroupByQuery& query) const;

  const CostParams& params() const { return params_; }

 private:
  double ScanCost(size_t rows, size_t num_predicates,
                  size_t num_aggregates) const;
  Result<double> PredicateSelectivity(const Relation& table,
                                      const Predicate& predicate) const;

  CostParams params_;
};

}  // namespace muve::db

#endif  // MUVE_DB_COST_ESTIMATOR_H_
