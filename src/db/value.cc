#include "db/value.h"

#include <cstdio>

namespace muve::db {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

std::string Value::ToString() const {
  if (is_int64()) return std::to_string(AsInt64());
  if (is_double()) {
    const double v = std::get<double>(data_);
    // Normalize -0.0: "%g" would render "-0", which re-parses as the
    // integer 0 and breaks SQL round-tripping.
    if (v == 0.0) return "0";
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "%g", v);
    return buffer;
  }
  return AsString();
}

}  // namespace muve::db
