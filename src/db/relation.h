#ifndef MUVE_DB_RELATION_H_
#define MUVE_DB_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "db/schema.h"
#include "db/value.h"

namespace muve::db {

/// The catalog surface of a queryable relation: schema, identity, row
/// count, and the incremental statistics the planner and NLQ layers
/// consume (distinct counts, string vocabularies). `db::Table` is the
/// canonical single-partition implementation; `shard::ShardedTable`
/// presents the same surface over a set of hash/range partitions.
///
/// Everything that plans or describes queries — the cost estimator, the
/// merger, the schema index, the workload generators — depends on this
/// interface only, so it runs unchanged against either backing store.
/// Scans stay concrete: the executor works on `TableSnapshot`s (or a
/// shard's worth of them), never through this interface.
class Relation {
 public:
  virtual ~Relation() = default;

  /// Relation name as referenced by queries.
  virtual const std::string& name() const = 0;

  /// Process-unique identity (cache keys, aliasing guards).
  virtual uint64_t id() const = 0;

  /// Content version: bumped by every successful row append.
  virtual uint64_t version() const = 0;

  // --- Schema ---------------------------------------------------------

  virtual const std::vector<ColumnSpec>& schema() const = 0;
  virtual size_t num_columns() const = 0;
  virtual const ColumnSpec& spec(size_t index) const = 0;

  /// Index of a column by name (case insensitive).
  virtual Result<size_t> ColumnIndex(const std::string& name) const = 0;

  /// All column names, in schema order.
  virtual std::vector<std::string> ColumnNames() const = 0;

  /// Names of columns with the given type.
  virtual std::vector<std::string> ColumnNamesOfType(ValueType type) const = 0;

  // --- Statistics -----------------------------------------------------

  /// Total rows appended so far (a moving target under live ingest).
  virtual size_t num_rows() const = 0;

  /// Number of distinct values appended to column `index`.
  virtual size_t DistinctCount(size_t index) const = 0;

  /// Distinct values of a string column in first-appearance order (the
  /// vocabulary the phonetic index and workload generators consume).
  /// Empty for numeric columns.
  virtual std::vector<std::string> StringValues(size_t index) const = 0;

  /// As above by (case-insensitive) column name; empty when the column
  /// does not exist.
  virtual std::vector<std::string> StringValues(
      const std::string& name) const = 0;
};

}  // namespace muve::db

#endif  // MUVE_DB_RELATION_H_
