#include "db/snapshot.h"

#include <algorithm>

namespace muve::db {

Value TableSnapshot::ValueAt(size_t row, size_t col) const {
  for (const auto& run : runs_) {
    if (row < run->num_rows()) return run->column(col).Get(row);
    row -= run->num_rows();
  }
  return mem_view_.At(row, col);
}

Result<std::shared_ptr<Table>> TableSnapshot::Clone(
    const std::string& name) const {
  if (table_ == nullptr) {
    return Status::InvalidArgument("cannot clone an empty snapshot");
  }
  // A flush threshold beyond every segment keeps AppendRow from sealing
  // runs on its own; explicit Flush() calls reproduce the original run
  // boundaries instead.
  TableOptions options = table_->options();
  options.flush_threshold = 1;
  for (const auto& run : runs_) {
    options.flush_threshold =
        std::max(options.flush_threshold, run->num_rows() + 1);
  }
  options.flush_threshold =
      std::max(options.flush_threshold, mem_view_.rows + 1);
  MUVE_ASSIGN_OR_RETURN(std::shared_ptr<Table> clone,
                        Table::Create(name, table_->schema(), options));
  const size_t num_cols = table_->num_columns();
  std::vector<Value> row(num_cols);
  for (const auto& run : runs_) {
    for (size_t r = 0; r < run->num_rows(); ++r) {
      for (size_t c = 0; c < num_cols; ++c) row[c] = run->column(c).Get(r);
      MUVE_RETURN_NOT_OK(clone->AppendRow(row));
    }
    clone->Flush();
  }
  for (size_t r = 0; r < mem_view_.rows; ++r) {
    for (size_t c = 0; c < num_cols; ++c) row[c] = mem_view_.At(r, c);
    MUVE_RETURN_NOT_OK(clone->AppendRow(row));
  }
  return clone;
}

}  // namespace muve::db
