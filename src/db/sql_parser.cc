#include "db/sql_parser.h"

#include <cctype>
#include <exception>
#include <string>
#include <vector>

#include "common/strings.h"

namespace muve::db {

namespace {

enum class TokenType {
  kIdentifier,
  kString,
  kNumber,
  kSymbol,  // ( ) , = *
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '\'') {
        MUVE_ASSIGN_OR_RETURN(Token token, LexString());
        tokens.push_back(std::move(token));
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
          c == '+') {
        tokens.push_back(LexNumber());
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tokens.push_back(LexIdentifier());
        continue;
      }
      if (c == '(' || c == ')' || c == ',' || c == '=' || c == '*') {
        tokens.push_back({TokenType::kSymbol, std::string(1, c)});
        ++pos_;
        continue;
      }
      return Status::ParseError(std::string("unexpected character '") + c +
                                "' in SQL");
    }
    tokens.push_back({TokenType::kEnd, ""});
    return tokens;
  }

 private:
  Result<Token> LexString() {
    ++pos_;  // Skip opening quote.
    std::string text;
    while (pos_ < input_.size()) {
      if (input_[pos_] == '\'') {
        // Doubled quote escapes a literal quote.
        if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '\'') {
          text += '\'';
          pos_ += 2;
          continue;
        }
        ++pos_;
        return Token{TokenType::kString, std::move(text)};
      }
      text += input_[pos_++];
    }
    return Status::ParseError("unterminated string literal");
  }

  Token LexNumber() {
    size_t start = pos_;
    if (input_[pos_] == '-' || input_[pos_] == '+') ++pos_;
    while (pos_ < input_.size() &&
           (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '.')) {
      ++pos_;
    }
    // Optional exponent ("1.2e+30" — what %g emits for wide-range
    // doubles). Only consumed when digits follow, so "123easy" still
    // lexes as number "123" + identifier "easy".
    if (pos_ < input_.size() &&
        (input_[pos_] == 'e' || input_[pos_] == 'E')) {
      size_t mark = pos_++;
      if (pos_ < input_.size() &&
          (input_[pos_] == '-' || input_[pos_] == '+')) {
        ++pos_;
      }
      if (pos_ < input_.size() &&
          std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        while (pos_ < input_.size() &&
               std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
          ++pos_;
        }
      } else {
        pos_ = mark;
      }
    }
    return {TokenType::kNumber,
            std::string(input_.substr(start, pos_ - start))};
  }

  Token LexIdentifier() {
    size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_')) {
      ++pos_;
    }
    return {TokenType::kIdentifier,
            std::string(input_.substr(start, pos_ - start))};
  }

  std::string_view input_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<AggregateQuery> Parse() {
    AggregateQuery query;
    MUVE_RETURN_NOT_OK(ExpectKeyword("SELECT"));

    // Aggregate function.
    const Token& fn_token = Peek();
    if (fn_token.type != TokenType::kIdentifier) {
      return Status::ParseError("expected aggregate function");
    }
    bool found = false;
    for (AggregateFunction fn : AllAggregateFunctions()) {
      if (EqualsIgnoreCase(fn_token.text, AggregateFunctionName(fn))) {
        query.function = fn;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::ParseError("unknown aggregate function '" +
                                fn_token.text + "'");
    }
    Advance();
    MUVE_RETURN_NOT_OK(ExpectSymbol("("));
    if (PeekSymbol("*")) {
      Advance();
      if (query.function != AggregateFunction::kCount) {
        return Status::ParseError("only COUNT supports '*'");
      }
      query.aggregate_column.clear();
    } else {
      MUVE_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      query.aggregate_column = std::move(col);
    }
    MUVE_RETURN_NOT_OK(ExpectSymbol(")"));

    MUVE_RETURN_NOT_OK(ExpectKeyword("FROM"));
    MUVE_ASSIGN_OR_RETURN(std::string table, ExpectIdentifier());
    query.table = std::move(table);

    if (PeekKeyword("WHERE")) {
      Advance();
      for (;;) {
        MUVE_ASSIGN_OR_RETURN(Predicate predicate, ParsePredicate());
        query.predicates.push_back(std::move(predicate));
        if (PeekKeyword("AND")) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (Peek().type != TokenType::kEnd) {
      return Status::ParseError("trailing input after query: '" +
                                Peek().text + "'");
    }
    return query;
  }

 private:
  Result<Predicate> ParsePredicate() {
    MUVE_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier());
    if (PeekSymbol("=")) {
      Advance();
      MUVE_ASSIGN_OR_RETURN(Value value, ExpectLiteral());
      return Predicate::Equals(std::move(column), std::move(value));
    }
    if (PeekKeyword("IN")) {
      Advance();
      MUVE_RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<Value> values;
      for (;;) {
        MUVE_ASSIGN_OR_RETURN(Value value, ExpectLiteral());
        values.push_back(std::move(value));
        if (PeekSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      MUVE_RETURN_NOT_OK(ExpectSymbol(")"));
      return Predicate::In(std::move(column), std::move(values));
    }
    return Status::ParseError("expected '=' or IN after column '" + column +
                              "'");
  }

  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  bool PeekKeyword(std::string_view keyword) const {
    return Peek().type == TokenType::kIdentifier &&
           EqualsIgnoreCase(Peek().text, keyword);
  }
  bool PeekSymbol(std::string_view symbol) const {
    return Peek().type == TokenType::kSymbol && Peek().text == symbol;
  }

  Status ExpectKeyword(std::string_view keyword) {
    if (!PeekKeyword(keyword)) {
      return Status::ParseError("expected " + std::string(keyword) +
                                ", got '" + Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }
  Status ExpectSymbol(std::string_view symbol) {
    if (!PeekSymbol(symbol)) {
      return Status::ParseError("expected '" + std::string(symbol) +
                                "', got '" + Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::ParseError("expected identifier, got '" + Peek().text +
                                "'");
    }
    std::string text = Peek().text;
    Advance();
    return text;
  }
  Result<Value> ExpectLiteral() {
    const Token& token = Peek();
    if (token.type == TokenType::kString) {
      Value v(token.text);
      Advance();
      return v;
    }
    if (token.type == TokenType::kNumber) {
      // The lexer is permissive: a lone sign ("-") or a malformed/overflowing
      // digit string still arrives here as a number token, and
      // stoll/stod throw on those — report a parse error instead.
      try {
        Value v = token.text.find_first_of(".eE") != std::string::npos
                      ? Value(std::stod(token.text))
                      : Value(static_cast<int64_t>(std::stoll(token.text)));
        Advance();
        return v;
      } catch (const std::exception&) {
        return Status::ParseError("invalid numeric literal '" + token.text +
                                  "'");
      }
    }
    return Status::ParseError("expected literal, got '" + token.text + "'");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<AggregateQuery> ParseSql(std::string_view sql) {
  Lexer lexer(sql);
  MUVE_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace muve::db
