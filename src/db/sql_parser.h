#ifndef MUVE_DB_SQL_PARSER_H_
#define MUVE_DB_SQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "db/query.h"

namespace muve::db {

/// Parses the SQL fragment MUVE supports (paper §3):
///
///   SELECT <AGG>(<column> | *) FROM <table>
///   [WHERE <column> = <literal> [AND ...]]
///   [WHERE <column> IN (<literal>, ...)]
///
/// where AGG is COUNT, SUM, AVG, MIN or MAX and literals are integers,
/// doubles, or single-quoted strings. Keywords are case insensitive.
Result<AggregateQuery> ParseSql(std::string_view sql);

}  // namespace muve::db

#endif  // MUVE_DB_SQL_PARSER_H_
