#include "db/query.h"

#include <algorithm>

#include "common/strings.h"

namespace muve::db {

const char* AggregateFunctionName(AggregateFunction fn) {
  switch (fn) {
    case AggregateFunction::kCount:
      return "COUNT";
    case AggregateFunction::kSum:
      return "SUM";
    case AggregateFunction::kAvg:
      return "AVG";
    case AggregateFunction::kMin:
      return "MIN";
    case AggregateFunction::kMax:
      return "MAX";
  }
  return "UNKNOWN";
}

const std::vector<AggregateFunction>& AllAggregateFunctions() {
  static const std::vector<AggregateFunction> kAll = {
      AggregateFunction::kCount, AggregateFunction::kSum,
      AggregateFunction::kAvg, AggregateFunction::kMin,
      AggregateFunction::kMax};
  return kAll;
}

namespace {

std::string QuoteIfString(const Value& value) {
  if (!value.is_string()) return value.ToString();
  // Double embedded quotes — the escape the SQL lexer understands — so
  // ToSql output always re-parses to the same value.
  std::string quoted = "'";
  for (char c : value.AsString()) {
    if (c == '\'') quoted += '\'';
    quoted += c;
  }
  quoted += '\'';
  return quoted;
}

}  // namespace

std::string Predicate::ToSql() const {
  if (op == PredicateOp::kEq) {
    return column + " = " + QuoteIfString(values.front());
  }
  std::string out = column + " IN (";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += QuoteIfString(values[i]);
  }
  out += ")";
  return out;
}

bool Predicate::operator==(const Predicate& other) const {
  if (!EqualsIgnoreCase(column, other.column) || op != other.op) {
    return false;
  }
  if (values.size() != other.values.size()) return false;
  for (size_t i = 0; i < values.size(); ++i) {
    if (!(values[i] == other.values[i])) return false;
  }
  return true;
}

std::string AggregateQuery::AggregateSql() const {
  std::string target = aggregate_column.empty() ? "*" : aggregate_column;
  return std::string(AggregateFunctionName(function)) + "(" + target + ")";
}

std::string AggregateQuery::ToSql() const {
  std::string sql = "SELECT " + AggregateSql() + " FROM " + table;
  if (!predicates.empty()) {
    sql += " WHERE ";
    for (size_t i = 0; i < predicates.size(); ++i) {
      if (i > 0) sql += " AND ";
      sql += predicates[i].ToSql();
    }
  }
  return sql;
}

std::string AggregateQuery::CanonicalKey() const {
  std::vector<std::string> parts;
  parts.reserve(predicates.size());
  for (const Predicate& p : predicates) {
    std::string part =
        ToLower(p.column) + (p.op == PredicateOp::kEq ? "=" : " in ");
    std::vector<std::string> values;
    values.reserve(p.values.size());
    for (const Value& v : p.values) values.push_back(v.ToString());
    std::sort(values.begin(), values.end());
    part += Join(values, ",");
    parts.push_back(std::move(part));
  }
  std::sort(parts.begin(), parts.end());
  // COUNT(col) and COUNT(*) are equivalent in this fragment (columns are
  // never NULL), so the aggregate column does not discriminate COUNTs.
  const std::string agg_column =
      function == AggregateFunction::kCount ? "" : ToLower(aggregate_column);
  return ToLower(table) + "|" + AggregateFunctionName(function) + "|" +
         agg_column + "|" + Join(parts, "&");
}

}  // namespace muve::db
