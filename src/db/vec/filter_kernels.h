#ifndef MUVE_DB_VEC_FILTER_KERNELS_H_
#define MUVE_DB_VEC_FILTER_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace muve::db::vec {

/// Predicate kernels for the vectorized executor.
///
/// Each kernel evaluates one equality/IN predicate over one batch of a
/// typed column and produces a selection vector: the offsets (relative
/// to the batch base, ascending) of rows that matched. Two shapes:
///
///  - Filter*: dense input — test every row in [0, n) of `data` (already
///    offset to the batch base) and write matching offsets to `sel`.
///  - Refine*: sparse input — test only the offsets in `sel_in` (the
///    previous predicate's output) and compact survivors into `sel_out`,
///    which must not alias `sel_in`.
///
/// All kernels return the number of offsets written. The inner loops are
/// branch-light (unconditional store, increment by the comparison
/// result) so the compiler can keep them free of per-row mispredictions;
/// selection order is always ascending, which downstream aggregate
/// kernels rely on for bitwise-reproducible float accumulation.
///
/// Comparison semantics match the scalar executor exactly: integer and
/// dictionary-code equality is `==`; double equality is IEEE `==`
/// (-0.0 matches 0.0, NaN matches nothing); an IN list accepts a row
/// when any of its values matches.

/// Dictionary codes against a single accepted code.
size_t FilterEqU32(const uint32_t* data, size_t n, uint32_t key,
                   uint32_t* sel);
size_t RefineEqU32(const uint32_t* data, const uint32_t* sel_in, size_t n,
                   uint32_t key, uint32_t* sel_out);

/// Dictionary codes against a per-dictionary accept mask (mask[code] is
/// 1 to accept; build with Column::AcceptMask). Turns an arbitrarily
/// long IN list into one table load per row.
size_t FilterMaskU32(const uint32_t* data, size_t n, const uint8_t* mask,
                     uint32_t* sel);
size_t RefineMaskU32(const uint32_t* data, const uint32_t* sel_in,
                     size_t n, const uint8_t* mask, uint32_t* sel_out);

/// Int64 values against one key or an IN list.
size_t FilterEqI64(const int64_t* data, size_t n, int64_t key,
                   uint32_t* sel);
size_t RefineEqI64(const int64_t* data, const uint32_t* sel_in, size_t n,
                   int64_t key, uint32_t* sel_out);
size_t FilterInI64(const int64_t* data, size_t n, const int64_t* keys,
                   size_t num_keys, uint32_t* sel);
size_t RefineInI64(const int64_t* data, const uint32_t* sel_in, size_t n,
                   const int64_t* keys, size_t num_keys, uint32_t* sel_out);

/// Double values against one key or an IN list (IEEE ==).
size_t FilterEqF64(const double* data, size_t n, double key, uint32_t* sel);
size_t RefineEqF64(const double* data, const uint32_t* sel_in, size_t n,
                   double key, uint32_t* sel_out);
size_t FilterInF64(const double* data, size_t n, const double* keys,
                   size_t num_keys, uint32_t* sel);
size_t RefineInF64(const double* data, const uint32_t* sel_in, size_t n,
                   const double* keys, size_t num_keys, uint32_t* sel_out);

}  // namespace muve::db::vec

#endif  // MUVE_DB_VEC_FILTER_KERNELS_H_
