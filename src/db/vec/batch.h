#ifndef MUVE_DB_VEC_BATCH_H_
#define MUVE_DB_VEC_BATCH_H_

#include <cstddef>
#include <cstdint>

namespace muve::db::vec {

/// Rows processed per batch by the vectorized executor. 2048 values keep
/// one batch of every scanned column plus the selection scratch well
/// inside L1/L2 while amortizing per-batch dispatch (predicate kind,
/// aggregate kind) over thousands of rows. Batches tile each partition
/// grain from its start, so partition boundaries — and therefore the
/// per-partition accumulator states the parallel merge combines — are
/// unchanged from the scalar executor.
inline constexpr size_t kBatchSize = 2048;

/// Selection-vector scratch for one scan (or one partition of a parallel
/// scan). A selection vector holds the offsets, relative to the batch
/// base row and in ascending order, of rows that passed every predicate
/// applied so far; filters write `a`/`b` alternately so a refine never
/// reads its own output. `c` receives the group-compacted selection of a
/// grouped scan and `groups` the matching group indices. Heap-allocate
/// (the struct is ~32 KiB — too big for pool-worker stacks under
/// sanitizers) and reuse across batches.
struct BatchScratch {
  uint32_t a[kBatchSize];
  uint32_t b[kBatchSize];
  uint32_t c[kBatchSize];
  uint32_t groups[kBatchSize];
};

}  // namespace muve::db::vec

#endif  // MUVE_DB_VEC_BATCH_H_
