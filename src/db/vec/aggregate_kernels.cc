#include "db/vec/aggregate_kernels.h"

namespace muve::db::vec {

namespace {

/// Fold shapes shared by every kernel. `load(i)` reads element i as a
/// double; `fold` must be the scalar executor's per-row operation so the
/// sequential accumulation is bitwise-reproducible (see header).
template <typename Load, typename Fold>
double FoldGather(const uint32_t* sel, size_t n, double acc, Load load,
                  Fold fold) {
  for (size_t i = 0; i < n; ++i) {
    acc = fold(acc, load(sel[i]));
  }
  return acc;
}

template <typename Load, typename Fold>
double FoldDense(size_t n, double acc, Load load, Fold fold) {
  for (size_t i = 0; i < n; ++i) {
    acc = fold(acc, load(i));
  }
  return acc;
}

inline double Add(double acc, double v) { return acc + v; }
inline double Min(double acc, double v) { return v < acc ? v : acc; }
inline double Max(double acc, double v) { return acc < v ? v : acc; }

inline auto LoadF64(const double* data) {
  return [data](size_t i) { return data[i]; };
}
inline auto LoadI64(const int64_t* data) {
  return [data](size_t i) { return static_cast<double>(data[i]); };
}

}  // namespace

double SumGatherF64(const double* data, const uint32_t* sel, size_t n,
                    double acc) {
  return FoldGather(sel, n, acc, LoadF64(data), Add);
}

double SumGatherI64(const int64_t* data, const uint32_t* sel, size_t n,
                    double acc) {
  return FoldGather(sel, n, acc, LoadI64(data), Add);
}

double SumDenseF64(const double* data, size_t n, double acc) {
  return FoldDense(n, acc, LoadF64(data), Add);
}

double SumDenseI64(const int64_t* data, size_t n, double acc) {
  return FoldDense(n, acc, LoadI64(data), Add);
}

double MinGatherF64(const double* data, const uint32_t* sel, size_t n,
                    double acc) {
  return FoldGather(sel, n, acc, LoadF64(data), Min);
}

double MinGatherI64(const int64_t* data, const uint32_t* sel, size_t n,
                    double acc) {
  return FoldGather(sel, n, acc, LoadI64(data), Min);
}

double MinDenseF64(const double* data, size_t n, double acc) {
  return FoldDense(n, acc, LoadF64(data), Min);
}

double MinDenseI64(const int64_t* data, size_t n, double acc) {
  return FoldDense(n, acc, LoadI64(data), Min);
}

double MaxGatherF64(const double* data, const uint32_t* sel, size_t n,
                    double acc) {
  return FoldGather(sel, n, acc, LoadF64(data), Max);
}

double MaxGatherI64(const int64_t* data, const uint32_t* sel, size_t n,
                    double acc) {
  return FoldGather(sel, n, acc, LoadI64(data), Max);
}

double MaxDenseF64(const double* data, size_t n, double acc) {
  return FoldDense(n, acc, LoadF64(data), Max);
}

double MaxDenseI64(const int64_t* data, size_t n, double acc) {
  return FoldDense(n, acc, LoadI64(data), Max);
}

}  // namespace muve::db::vec
