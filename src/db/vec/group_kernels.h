#ifndef MUVE_DB_VEC_GROUP_KERNELS_H_
#define MUVE_DB_VEC_GROUP_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "db/column.h"

namespace muve::db::vec {

/// Group index meaning "this row's group value is not in the IN list".
inline constexpr uint32_t kNoGroup = UINT32_MAX;

/// Dictionary-aware GROUP BY support: the grouped executor resolves a
/// row's group with one dense-array load on its dictionary code instead
/// of a hash lookup per row.

/// Builds the dense code -> group-index table for an IN-list GROUP BY
/// over a dictionary-encoded string column: lookup[code] is the index
/// into `group_values` of the value that code spells, or kNoGroup.
/// Group values absent from the dictionary get no entry (their cells
/// stay empty); when the same value appears twice in `group_values`,
/// the first occurrence wins — the scalar path's emplace semantics.
std::vector<uint32_t> BuildGroupLookup(
    const Column& column, const std::vector<std::string>& group_values);

/// Maps one batch's selection to groups: for each offset in sel_in,
/// looks up `lookup[codes[offset]]`; rows with a group are compacted
/// into sel_out (same ascending order) with their group index written to
/// the parallel `groups` array. Returns the surviving count. sel_out and
/// groups must not alias sel_in. `codes` is offset to the batch base.
size_t MapGroups(const uint32_t* codes, const uint32_t* sel_in, size_t n,
                 const uint32_t* lookup, uint32_t* sel_out,
                 uint32_t* groups);

/// Dense variant: consider every row of the batch (no prior selection).
size_t MapGroupsDense(const uint32_t* codes, size_t n,
                      const uint32_t* lookup, uint32_t* sel_out,
                      uint32_t* groups);

}  // namespace muve::db::vec

#endif  // MUVE_DB_VEC_GROUP_KERNELS_H_
