#ifndef MUVE_DB_VEC_AGGREGATE_KERNELS_H_
#define MUVE_DB_VEC_AGGREGATE_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace muve::db::vec {

/// Aggregate kernels for the vectorized executor.
///
/// Each kernel folds one batch worth of values into a running state and
/// returns the new state. Two shapes per (function, element type):
///
///  - *Gather: read through a selection vector (`sel` holds ascending
///    offsets into `data`, which is already offset to the batch base);
///  - *Dense: the all-selected fast path — read data[0..n) directly,
///    skipping the gather indirection when every row of the batch
///    passed (or the query has no predicates).
///
/// Bitwise-reproducibility contract: kernels accumulate sequentially in
/// selection order, which is row order, using exactly the scalar
/// executor's per-row operation — `acc += v` for sums (int64 widened to
/// double per element first), `acc = v < acc ? v : acc` for min and
/// `acc = acc < v ? v : acc` for max (the std::min/std::max identities,
/// including their NaN behavior). A vectorized scan therefore produces
/// the same floating-point result, bit for bit, as the scalar loop over
/// the same row range — the property the differential suite pins down.
/// Splitting SUM across SIMD lanes would reassociate the adds and break
/// it; the speedup comes from filtering, not from reassociation.

double SumGatherF64(const double* data, const uint32_t* sel, size_t n,
                    double acc);
double SumGatherI64(const int64_t* data, const uint32_t* sel, size_t n,
                    double acc);
double SumDenseF64(const double* data, size_t n, double acc);
double SumDenseI64(const int64_t* data, size_t n, double acc);

double MinGatherF64(const double* data, const uint32_t* sel, size_t n,
                    double acc);
double MinGatherI64(const int64_t* data, const uint32_t* sel, size_t n,
                    double acc);
double MinDenseF64(const double* data, size_t n, double acc);
double MinDenseI64(const int64_t* data, size_t n, double acc);

double MaxGatherF64(const double* data, const uint32_t* sel, size_t n,
                    double acc);
double MaxGatherI64(const int64_t* data, const uint32_t* sel, size_t n,
                    double acc);
double MaxDenseF64(const double* data, size_t n, double acc);
double MaxDenseI64(const int64_t* data, size_t n, double acc);

}  // namespace muve::db::vec

#endif  // MUVE_DB_VEC_AGGREGATE_KERNELS_H_
