#include "db/vec/filter_kernels.h"

namespace muve::db::vec {

namespace {

/// Shared dense-filter shape: store the offset unconditionally, advance
/// the write cursor by the predicate result. No per-row branch, so the
/// loop's cost is independent of selectivity.
template <typename T, typename Pred>
size_t FilterDense(const T* data, size_t n, uint32_t* sel, Pred pred) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    sel[count] = static_cast<uint32_t>(i);
    count += pred(data[i]) ? 1 : 0;
  }
  return count;
}

/// Shared refine shape over an existing selection.
template <typename T, typename Pred>
size_t FilterSparse(const T* data, const uint32_t* sel_in, size_t n,
                    uint32_t* sel_out, Pred pred) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t offset = sel_in[i];
    sel_out[count] = offset;
    count += pred(data[offset]) ? 1 : 0;
  }
  return count;
}

/// OR over an IN list. Bitwise-accumulated so short lists stay
/// branch-free; correctness does not depend on list length.
template <typename T>
bool MatchesAny(T value, const T* keys, size_t num_keys) {
  bool match = false;
  for (size_t k = 0; k < num_keys; ++k) {
    match |= value == keys[k];
  }
  return match;
}

}  // namespace

size_t FilterEqU32(const uint32_t* data, size_t n, uint32_t key,
                   uint32_t* sel) {
  return FilterDense(data, n, sel,
                     [key](uint32_t v) { return v == key; });
}

size_t RefineEqU32(const uint32_t* data, const uint32_t* sel_in, size_t n,
                   uint32_t key, uint32_t* sel_out) {
  return FilterSparse(data, sel_in, n, sel_out,
                      [key](uint32_t v) { return v == key; });
}

size_t FilterMaskU32(const uint32_t* data, size_t n, const uint8_t* mask,
                     uint32_t* sel) {
  return FilterDense(data, n, sel,
                     [mask](uint32_t v) { return mask[v] != 0; });
}

size_t RefineMaskU32(const uint32_t* data, const uint32_t* sel_in,
                     size_t n, const uint8_t* mask, uint32_t* sel_out) {
  return FilterSparse(data, sel_in, n, sel_out,
                      [mask](uint32_t v) { return mask[v] != 0; });
}

size_t FilterEqI64(const int64_t* data, size_t n, int64_t key,
                   uint32_t* sel) {
  return FilterDense(data, n, sel, [key](int64_t v) { return v == key; });
}

size_t RefineEqI64(const int64_t* data, const uint32_t* sel_in, size_t n,
                   int64_t key, uint32_t* sel_out) {
  return FilterSparse(data, sel_in, n, sel_out,
                      [key](int64_t v) { return v == key; });
}

size_t FilterInI64(const int64_t* data, size_t n, const int64_t* keys,
                   size_t num_keys, uint32_t* sel) {
  return FilterDense(data, n, sel, [keys, num_keys](int64_t v) {
    return MatchesAny(v, keys, num_keys);
  });
}

size_t RefineInI64(const int64_t* data, const uint32_t* sel_in, size_t n,
                   const int64_t* keys, size_t num_keys,
                   uint32_t* sel_out) {
  return FilterSparse(data, sel_in, n, sel_out,
                      [keys, num_keys](int64_t v) {
                        return MatchesAny(v, keys, num_keys);
                      });
}

size_t FilterEqF64(const double* data, size_t n, double key,
                   uint32_t* sel) {
  return FilterDense(data, n, sel, [key](double v) { return v == key; });
}

size_t RefineEqF64(const double* data, const uint32_t* sel_in, size_t n,
                   double key, uint32_t* sel_out) {
  return FilterSparse(data, sel_in, n, sel_out,
                      [key](double v) { return v == key; });
}

size_t FilterInF64(const double* data, size_t n, const double* keys,
                   size_t num_keys, uint32_t* sel) {
  return FilterDense(data, n, sel, [keys, num_keys](double v) {
    return MatchesAny(v, keys, num_keys);
  });
}

size_t RefineInF64(const double* data, const uint32_t* sel_in, size_t n,
                   const double* keys, size_t num_keys,
                   uint32_t* sel_out) {
  return FilterSparse(data, sel_in, n, sel_out,
                      [keys, num_keys](double v) {
                        return MatchesAny(v, keys, num_keys);
                      });
}

}  // namespace muve::db::vec
