#include "db/vec/group_kernels.h"

namespace muve::db::vec {

std::vector<uint32_t> BuildGroupLookup(
    const Column& column, const std::vector<std::string>& group_values) {
  std::vector<uint32_t> lookup(column.dictionary_size(), kNoGroup);
  for (size_t g = 0; g < group_values.size(); ++g) {
    const uint32_t code = column.CodeFor(group_values[g]);
    if (code != kInvalidCode && lookup[code] == kNoGroup) {
      lookup[code] = static_cast<uint32_t>(g);
    }
  }
  return lookup;
}

size_t MapGroups(const uint32_t* codes, const uint32_t* sel_in, size_t n,
                 const uint32_t* lookup, uint32_t* sel_out,
                 uint32_t* groups) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t offset = sel_in[i];
    const uint32_t group = lookup[codes[offset]];
    sel_out[count] = offset;
    groups[count] = group;
    count += group != kNoGroup ? 1 : 0;
  }
  return count;
}

size_t MapGroupsDense(const uint32_t* codes, size_t n,
                      const uint32_t* lookup, uint32_t* sel_out,
                      uint32_t* groups) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t group = lookup[codes[i]];
    sel_out[count] = static_cast<uint32_t>(i);
    groups[count] = group;
    count += group != kNoGroup ? 1 : 0;
  }
  return count;
}

}  // namespace muve::db::vec
