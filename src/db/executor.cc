#include "db/executor.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "db/vec/aggregate_kernels.h"
#include "db/vec/batch.h"
#include "db/vec/filter_kernels.h"
#include "db/vec/group_kernels.h"

namespace muve::db {

namespace {

/// Compiled form of one predicate: matches row indices against typed data.
struct CompiledPredicate {
  const Column* column = nullptr;
  // String columns: set of dictionary codes to accept. Empty set means the
  // predicate can never match (constant absent from the dictionary).
  std::vector<uint32_t> accepted_codes;
  // Numeric columns: accepted values.
  std::vector<int64_t> accepted_ints;
  std::vector<double> accepted_doubles;

  bool Matches(size_t row) const {
    switch (column->type()) {
      case ValueType::kString: {
        const uint32_t code = column->codes()[row];
        for (uint32_t accepted : accepted_codes) {
          if (code == accepted) return true;
        }
        return false;
      }
      case ValueType::kInt64: {
        const int64_t v = column->int_data()[row];
        for (int64_t accepted : accepted_ints) {
          if (v == accepted) return true;
        }
        return false;
      }
      case ValueType::kDouble: {
        const double v = column->double_data()[row];
        for (double accepted : accepted_doubles) {
          if (v == accepted) return true;
        }
        return false;
      }
    }
    return false;
  }
};

Result<CompiledPredicate> Compile(const Table& table,
                                  const Predicate& predicate) {
  CompiledPredicate compiled;
  compiled.column = table.FindColumn(predicate.column);
  if (compiled.column == nullptr) {
    return Status::NotFound("predicate column '" + predicate.column +
                            "' not in table '" + table.name() + "'");
  }
  if (predicate.values.empty()) {
    return Status::InvalidArgument("predicate without values");
  }
  for (const Value& value : predicate.values) {
    switch (compiled.column->type()) {
      case ValueType::kString: {
        if (!value.is_string()) {
          return Status::InvalidArgument(
              "type mismatch in predicate on '" + predicate.column + "'");
        }
        const uint32_t code = compiled.column->CodeFor(value.AsString());
        if (code != kInvalidCode) compiled.accepted_codes.push_back(code);
        break;
      }
      case ValueType::kInt64:
        if (!value.is_int64()) {
          return Status::InvalidArgument(
              "type mismatch in predicate on '" + predicate.column + "'");
        }
        compiled.accepted_ints.push_back(value.AsInt64());
        break;
      case ValueType::kDouble:
        if (!value.is_int64() && !value.is_double()) {
          return Status::InvalidArgument(
              "type mismatch in predicate on '" + predicate.column + "'");
        }
        compiled.accepted_doubles.push_back(value.AsDouble());
        break;
    }
  }
  return compiled;
}

/// Streaming accumulator for one aggregate.
struct Accumulator {
  AggregateFunction fn;
  const Column* column = nullptr;  // nullptr for COUNT(*).
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  size_t count = 0;

  void Accept(size_t row) {
    ++count;
    if (column == nullptr) return;
    const double v = column->NumericAt(row);
    sum += v;
    min = std::min(min, v);
    max = std::max(max, v);
  }

  /// Folds another partition's partial state into this one. An all-empty
  /// partition contributes count 0 and +/-inf extrema, so it cannot leak
  /// a 0 identity into AVG/MIN/MAX; Finish() decides emptiness from the
  /// merged count alone.
  void Merge(const Accumulator& other) {
    count += other.count;
    sum += other.sum;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }

  AggregateResult Finish() const {
    AggregateResult out;
    out.rows_matched = count;
    out.empty_input = count == 0;
    switch (fn) {
      case AggregateFunction::kCount:
        out.value = static_cast<double>(count);
        out.empty_input = false;  // COUNT of empty input is a valid 0.
        break;
      case AggregateFunction::kSum:
        out.value = sum;
        break;
      case AggregateFunction::kAvg:
        out.value = count > 0 ? sum / static_cast<double>(count) : 0.0;
        break;
      case AggregateFunction::kMin:
        out.value = count > 0 ? min : 0.0;
        break;
      case AggregateFunction::kMax:
        out.value = count > 0 ? max : 0.0;
        break;
    }
    return out;
  }
};

Result<Accumulator> MakeAccumulator(const Table& table,
                                    AggregateFunction fn,
                                    const std::string& column_name) {
  Accumulator acc;
  acc.fn = fn;
  if (fn == AggregateFunction::kCount && column_name.empty()) {
    return acc;
  }
  if (column_name.empty()) {
    return Status::InvalidArgument("aggregate needs a column");
  }
  acc.column = table.FindColumn(column_name);
  if (acc.column == nullptr) {
    return Status::NotFound("aggregate column '" + column_name +
                            "' not in table '" + table.name() + "'");
  }
  if (acc.column->type() == ValueType::kString &&
      fn != AggregateFunction::kCount) {
    return Status::InvalidArgument("cannot aggregate string column '" +
                                   column_name + "' with " +
                                   AggregateFunctionName(fn));
  }
  if (fn == AggregateFunction::kCount) acc.column = nullptr;
  return acc;
}

bool MatchesAll(const std::vector<CompiledPredicate>& compiled, size_t row) {
  for (const CompiledPredicate& predicate : compiled) {
    if (!predicate.Matches(row)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Vectorized scan machinery (options.vectorize). Same row order, partition
// boundaries, accumulation order, cancellation points and cache interaction
// as the scalar loops above — the batch path only changes *how* each row
// range is traversed, so results are byte-identical (the differential suite
// pins this down with the scalar path as oracle).
// ---------------------------------------------------------------------------

/// One compiled predicate lowered to a kernel dispatch: a kind tag, the
/// column's raw data pointer, and the constant(s) in kernel-ready form
/// (single key, dictionary accept mask, or a pointer into the compiled
/// predicate's value list). `keys` pointers alias the CompiledPredicate
/// vectors, so the compiled predicates must outlive the filters.
struct VecFilter {
  enum class Kind {
    kNever,      // String constant(s) absent from the dictionary. Kept as
                 // a per-batch kernel (not hoisted out of the scan loop)
                 // so deadline checks fire exactly as in the scalar path.
    kCodeEq,     // Dictionary code == single accepted code.
    kCodeMask,   // Dictionary code accepted by a mask (IN list).
    kIntEq,
    kIntIn,
    kDoubleEq,
    kDoubleIn,
  };

  Kind kind = Kind::kNever;
  const uint32_t* codes = nullptr;
  const int64_t* ints = nullptr;
  const double* doubles = nullptr;
  uint32_t code = 0;
  int64_t int_key = 0;
  double double_key = 0.0;
  std::vector<uint8_t> mask;
  const int64_t* int_keys = nullptr;
  const double* double_keys = nullptr;
  size_t num_keys = 0;
};

std::vector<VecFilter> VectorizeFilters(
    const std::vector<CompiledPredicate>& compiled) {
  std::vector<VecFilter> filters;
  filters.reserve(compiled.size());
  for (const CompiledPredicate& p : compiled) {
    VecFilter f;
    switch (p.column->type()) {
      case ValueType::kString:
        f.codes = p.column->codes_raw();
        if (p.accepted_codes.empty()) {
          f.kind = VecFilter::Kind::kNever;
        } else if (p.accepted_codes.size() == 1) {
          f.kind = VecFilter::Kind::kCodeEq;
          f.code = p.accepted_codes[0];
        } else {
          f.kind = VecFilter::Kind::kCodeMask;
          f.mask = p.column->AcceptMask(p.accepted_codes);
        }
        break;
      case ValueType::kInt64:
        f.ints = p.column->int_raw();
        if (p.accepted_ints.size() == 1) {
          f.kind = VecFilter::Kind::kIntEq;
          f.int_key = p.accepted_ints[0];
        } else {
          f.kind = VecFilter::Kind::kIntIn;
          f.int_keys = p.accepted_ints.data();
          f.num_keys = p.accepted_ints.size();
        }
        break;
      case ValueType::kDouble:
        f.doubles = p.column->double_raw();
        if (p.accepted_doubles.size() == 1) {
          f.kind = VecFilter::Kind::kDoubleEq;
          f.double_key = p.accepted_doubles[0];
        } else {
          f.kind = VecFilter::Kind::kDoubleIn;
          f.double_keys = p.accepted_doubles.data();
          f.num_keys = p.accepted_doubles.size();
        }
        break;
    }
    filters.push_back(std::move(f));
  }
  return filters;
}

/// Applies every filter to the batch [base, base + count), alternating the
/// scratch selection buffers. Returns the surviving row count; `*sel` is
/// the surviving selection, or nullptr when all `count` rows survived (the
/// identity selection — callers use the dense aggregate fast path).
size_t RunFilters(const std::vector<VecFilter>& filters, size_t base,
                  size_t count, vec::BatchScratch* scratch,
                  const uint32_t** sel) {
  *sel = nullptr;
  if (filters.empty()) return count;
  uint32_t* cur = scratch->a;
  uint32_t* next = scratch->b;
  size_t n = count;
  bool have_sel = false;
  for (const VecFilter& f : filters) {
    switch (f.kind) {
      case VecFilter::Kind::kNever:
        return 0;
      case VecFilter::Kind::kCodeEq:
        n = have_sel
                ? vec::RefineEqU32(f.codes + base, cur, n, f.code, next)
                : vec::FilterEqU32(f.codes + base, count, f.code, cur);
        break;
      case VecFilter::Kind::kCodeMask:
        n = have_sel ? vec::RefineMaskU32(f.codes + base, cur, n,
                                          f.mask.data(), next)
                     : vec::FilterMaskU32(f.codes + base, count,
                                          f.mask.data(), cur);
        break;
      case VecFilter::Kind::kIntEq:
        n = have_sel
                ? vec::RefineEqI64(f.ints + base, cur, n, f.int_key, next)
                : vec::FilterEqI64(f.ints + base, count, f.int_key, cur);
        break;
      case VecFilter::Kind::kIntIn:
        n = have_sel ? vec::RefineInI64(f.ints + base, cur, n, f.int_keys,
                                        f.num_keys, next)
                     : vec::FilterInI64(f.ints + base, count, f.int_keys,
                                        f.num_keys, cur);
        break;
      case VecFilter::Kind::kDoubleEq:
        n = have_sel ? vec::RefineEqF64(f.doubles + base, cur, n,
                                        f.double_key, next)
                     : vec::FilterEqF64(f.doubles + base, count,
                                        f.double_key, cur);
        break;
      case VecFilter::Kind::kDoubleIn:
        n = have_sel ? vec::RefineInF64(f.doubles + base, cur, n,
                                        f.double_keys, f.num_keys, next)
                     : vec::FilterInF64(f.doubles + base, count,
                                        f.double_keys, f.num_keys, cur);
        break;
    }
    if (have_sel) std::swap(cur, next);
    have_sel = true;
    if (n == 0) return 0;
  }
  // A selection that kept every row is the identity — report it as the
  // all-selected fast path so aggregates skip the gather indirection.
  if (n == count) return count;
  *sel = cur;
  return n;
}

/// Folds one batch's selection into an accumulator. `sel == nullptr` means
/// all `n` rows of the batch matched (dense fast path). Matches
/// Accumulator::Accept per row exactly: count always advances; SUM/MIN/MAX
/// state only for column-bearing aggregates, in ascending row order.
void AccumulateBatch(size_t base, const uint32_t* sel, size_t n,
                     Accumulator* acc) {
  acc->count += n;
  if (acc->column == nullptr || n == 0) return;
  // Accept() updates sum, min and max together regardless of `fn`;
  // replicate that so merged partial states stay bitwise identical.
  if (acc->column->type() == ValueType::kInt64) {
    const int64_t* data = acc->column->int_raw() + base;
    if (sel == nullptr) {
      acc->sum = vec::SumDenseI64(data, n, acc->sum);
      acc->min = vec::MinDenseI64(data, n, acc->min);
      acc->max = vec::MaxDenseI64(data, n, acc->max);
    } else {
      acc->sum = vec::SumGatherI64(data, sel, n, acc->sum);
      acc->min = vec::MinGatherI64(data, sel, n, acc->min);
      acc->max = vec::MaxGatherI64(data, sel, n, acc->max);
    }
  } else {
    const double* data = acc->column->double_raw() + base;
    if (sel == nullptr) {
      acc->sum = vec::SumDenseF64(data, n, acc->sum);
      acc->min = vec::MinDenseF64(data, n, acc->min);
      acc->max = vec::MaxDenseF64(data, n, acc->max);
    } else {
      acc->sum = vec::SumGatherF64(data, sel, n, acc->sum);
      acc->min = vec::MinGatherF64(data, sel, n, acc->min);
      acc->max = vec::MaxGatherF64(data, sel, n, acc->max);
    }
  }
}

/// Vectorized scan of [begin, end): tiles the range into kBatchSize
/// batches, filters each into a selection vector and folds it into `acc`.
void VecScanRange(const std::vector<VecFilter>& filters, size_t begin,
                  size_t end, vec::BatchScratch* scratch, Accumulator* acc) {
  for (size_t base = begin; base < end; base += vec::kBatchSize) {
    const size_t count = std::min(vec::kBatchSize, end - base);
    const uint32_t* sel = nullptr;
    const size_t n = RunFilters(filters, base, count, scratch, &sel);
    if (n == 0) continue;
    AccumulateBatch(base, sel, n, acc);
  }
}

/// Folds one group-mapped batch into the accumulator grid for aggregate
/// slot `a`: sel/groups are parallel arrays from MapGroups (ascending row
/// offsets plus each row's group index). Per-row work matches
/// Accumulator::Accept for the scalar grouped loop exactly.
void AccumulateGroupedBatch(size_t base, const uint32_t* sel,
                            const uint32_t* groups, size_t n, size_t a,
                            std::vector<std::vector<Accumulator>>* grid) {
  const Accumulator& proto = (*grid)[0][a];
  if (proto.column == nullptr) {
    for (size_t i = 0; i < n; ++i) ++(*grid)[groups[i]][a].count;
    return;
  }
  if (proto.column->type() == ValueType::kInt64) {
    const int64_t* data = proto.column->int_raw() + base;
    for (size_t i = 0; i < n; ++i) {
      Accumulator& acc = (*grid)[groups[i]][a];
      const double v = static_cast<double>(data[sel[i]]);
      ++acc.count;
      acc.sum += v;
      acc.min = v < acc.min ? v : acc.min;
      acc.max = acc.max < v ? v : acc.max;
    }
  } else {
    const double* data = proto.column->double_raw() + base;
    for (size_t i = 0; i < n; ++i) {
      Accumulator& acc = (*grid)[groups[i]][a];
      const double v = data[sel[i]];
      ++acc.count;
      acc.sum += v;
      acc.min = v < acc.min ? v : acc.min;
      acc.max = acc.max < v ? v : acc.max;
    }
  }
}

/// Vectorized grouped scan of [begin, end): filter each batch on the
/// shared predicates, map survivors to groups through the dense dictionary
/// lookup, then fold each aggregate column over the compacted selection.
/// The scalar loop tests group membership before the predicates and this
/// path tests predicates first; both are conjunctive on the same row, so
/// the accepted row set — and every accumulator update — is identical.
void VecGroupedScanRange(const std::vector<VecFilter>& filters,
                         const uint32_t* codes,
                         const std::vector<uint32_t>& lookup, size_t begin,
                         size_t end, vec::BatchScratch* scratch,
                         std::vector<std::vector<Accumulator>>* grid) {
  if (grid->empty()) return;  // No groups: nothing can accumulate.
  const size_t num_aggregates = (*grid)[0].size();
  for (size_t base = begin; base < end; base += vec::kBatchSize) {
    const size_t count = std::min(vec::kBatchSize, end - base);
    const uint32_t* sel = nullptr;
    const size_t n = RunFilters(filters, base, count, scratch, &sel);
    if (n == 0) continue;
    const size_t m =
        sel == nullptr
            ? vec::MapGroupsDense(codes + base, n, lookup.data(),
                                  scratch->c, scratch->groups)
            : vec::MapGroups(codes + base, sel, n, lookup.data(),
                             scratch->c, scratch->groups);
    if (m == 0) continue;
    for (size_t a = 0; a < num_aggregates; ++a) {
      AccumulateGroupedBatch(base, scratch->c, scratch->groups, m, a, grid);
    }
  }
}

}  // namespace

std::string GroupByQuery::ToSql() const {
  std::string sql = "SELECT " + group_column;
  for (const AggregateSpec& agg : aggregates) {
    sql += ", " + std::string(AggregateFunctionName(agg.function)) + "(" +
           (agg.column.empty() ? "*" : agg.column) + ")";
  }
  sql += " FROM " + table;
  std::vector<Predicate> all = shared_predicates;
  std::vector<Value> in_values;
  in_values.reserve(group_values.size());
  for (const std::string& v : group_values) in_values.emplace_back(v);
  all.push_back(Predicate::In(group_column, std::move(in_values)));
  sql += " WHERE ";
  for (size_t i = 0; i < all.size(); ++i) {
    if (i > 0) sql += " AND ";
    sql += all[i].ToSql();
  }
  sql += " GROUP BY " + group_column;
  return sql;
}

Result<AggregateResult> Executor::Execute(const Table& table,
                                          const AggregateQuery& query,
                                          const ExecutorOptions& options) {
  // Cache probe before any compilation work: a hit can only exist for a
  // query that previously compiled and ran successfully against this
  // exact table version, so skipping validation cannot mask an error the
  // uncached path would report.
  if (options.cache != nullptr) {
    AggregateResult cached;
    if (options.cache->Lookup(table, query, &cached)) return cached;
  }

  std::vector<CompiledPredicate> compiled;
  compiled.reserve(query.predicates.size());
  for (const Predicate& predicate : query.predicates) {
    MUVE_ASSIGN_OR_RETURN(CompiledPredicate c, Compile(table, predicate));
    compiled.push_back(std::move(c));
  }
  MUVE_ASSIGN_OR_RETURN(
      Accumulator acc,
      MakeAccumulator(table, query.function, query.aggregate_column));

  const size_t n = table.num_rows();
  const size_t grain = std::max<size_t>(1, options.parallel_grain);
  // Predicates lowered once per scan; the batch loops below dispatch per
  // batch instead of per row.
  std::vector<VecFilter> filters;
  if (options.vectorize) filters = VectorizeFilters(compiled);
  AggregateResult out;
  if (!options.ShouldParallelize(n)) {
    std::unique_ptr<vec::BatchScratch> scratch;
    if (options.vectorize && n > 0) {
      scratch = std::make_unique<vec::BatchScratch>();
    }
    if (!options.deadline.IsFinite()) {
      if (options.vectorize) {
        VecScanRange(filters, 0, n, scratch.get(), &acc);
      } else {
        for (size_t row = 0; row < n; ++row) {
          if (MatchesAll(compiled, row)) acc.Accept(row);
        }
      }
    } else {
      // Deadline-bounded serial scan: same row order in grain-sized
      // blocks, with a cancellation check per block.
      for (size_t begin = 0; begin < n; begin += grain) {
        if (options.deadline.Expired()) {
          return Status::Timeout("aggregate scan cancelled at row " +
                                 std::to_string(begin) + "/" +
                                 std::to_string(n));
        }
        const size_t end = std::min(n, begin + grain);
        if (options.vectorize) {
          VecScanRange(filters, begin, end, scratch.get(), &acc);
        } else {
          for (size_t row = begin; row < end; ++row) {
            if (MatchesAll(compiled, row)) acc.Accept(row);
          }
        }
      }
    }
    out = acc.Finish();
  } else {
    const size_t num_chunks = (n + grain - 1) / grain;
    std::vector<Accumulator> partials(num_chunks, acc);
    // Workers skip partitions not yet started when the deadline expires;
    // a partial scan never merges into a result (Timeout below).
    std::atomic<bool> cancelled{false};
    const bool finite = options.deadline.IsFinite();
    ParallelFor(options.pool, n, grain,
                [&](size_t chunk, size_t begin, size_t end) {
                  if (finite && options.deadline.Expired()) {
                    cancelled.store(true, std::memory_order_relaxed);
                    return;
                  }
                  Accumulator& partial = partials[chunk];
                  if (options.vectorize) {
                    auto scratch = std::make_unique<vec::BatchScratch>();
                    VecScanRange(filters, begin, end, scratch.get(),
                                 &partial);
                    return;
                  }
                  for (size_t row = begin; row < end; ++row) {
                    if (MatchesAll(compiled, row)) partial.Accept(row);
                  }
                });
    if (cancelled.load(std::memory_order_relaxed)) {
      return Status::Timeout("parallel aggregate scan cancelled (" +
                             std::to_string(n) + " rows)");
    }
    for (const Accumulator& partial : partials) acc.Merge(partial);
    out = acc.Finish();
  }
  if (options.cache != nullptr) options.cache->Store(table, query, out);
  return out;
}

Result<GroupByResult> Executor::ExecuteGrouped(
    const Table& table, const GroupByQuery& query,
    const ExecutorOptions& options) {
  if (options.cache != nullptr) {
    GroupByResult cached;
    if (options.cache->Lookup(table, query, &cached)) return cached;
  }

  const Column* group_column = table.FindColumn(query.group_column);
  if (group_column == nullptr) {
    return Status::NotFound("group column '" + query.group_column +
                            "' not in table '" + table.name() + "'");
  }
  if (group_column->type() != ValueType::kString) {
    return Status::InvalidArgument("GROUP BY requires a string column");
  }

  std::vector<CompiledPredicate> compiled;
  compiled.reserve(query.shared_predicates.size());
  for (const Predicate& predicate : query.shared_predicates) {
    MUVE_ASSIGN_OR_RETURN(CompiledPredicate c, Compile(table, predicate));
    compiled.push_back(std::move(c));
  }

  // Map dictionary code -> group index for the IN list: a dense lookup
  // table indexed by code on the vectorized path, a hash map on the
  // scalar path. Both resolve duplicate group values first-wins.
  std::unordered_map<uint32_t, size_t> group_of_code;
  std::vector<uint32_t> group_lookup;
  if (options.vectorize) {
    group_lookup = vec::BuildGroupLookup(*group_column, query.group_values);
  } else {
    for (size_t g = 0; g < query.group_values.size(); ++g) {
      const uint32_t code = group_column->CodeFor(query.group_values[g]);
      if (code != kInvalidCode) group_of_code.emplace(code, g);
    }
  }

  // One accumulator per (group, aggregate).
  std::vector<std::vector<Accumulator>> accumulators(
      query.group_values.size());
  for (auto& per_group : accumulators) {
    per_group.reserve(query.aggregates.size());
    for (const AggregateSpec& agg : query.aggregates) {
      MUVE_ASSIGN_OR_RETURN(Accumulator acc,
                            MakeAccumulator(table, agg.function, agg.column));
      per_group.push_back(std::move(acc));
    }
  }

  const size_t n = table.num_rows();
  const size_t grain = std::max<size_t>(1, options.parallel_grain);
  const std::vector<uint32_t>& codes = group_column->codes();
  std::vector<VecFilter> filters;
  if (options.vectorize) filters = VectorizeFilters(compiled);
  if (!options.ShouldParallelize(n)) {
    std::unique_ptr<vec::BatchScratch> scratch;
    if (options.vectorize && n > 0) {
      scratch = std::make_unique<vec::BatchScratch>();
    }
    if (!options.deadline.IsFinite()) {
      if (options.vectorize) {
        VecGroupedScanRange(filters, codes.data(), group_lookup, 0, n,
                            scratch.get(), &accumulators);
      } else {
        for (size_t row = 0; row < n; ++row) {
          auto it = group_of_code.find(codes[row]);
          if (it == group_of_code.end()) continue;
          if (!MatchesAll(compiled, row)) continue;
          for (Accumulator& acc : accumulators[it->second]) acc.Accept(row);
        }
      }
    } else {
      for (size_t begin = 0; begin < n; begin += grain) {
        if (options.deadline.Expired()) {
          return Status::Timeout("grouped scan cancelled at row " +
                                 std::to_string(begin) + "/" +
                                 std::to_string(n));
        }
        const size_t end = std::min(n, begin + grain);
        if (options.vectorize) {
          VecGroupedScanRange(filters, codes.data(), group_lookup, begin,
                              end, scratch.get(), &accumulators);
          continue;
        }
        for (size_t row = begin; row < end; ++row) {
          auto it = group_of_code.find(codes[row]);
          if (it == group_of_code.end()) continue;
          if (!MatchesAll(compiled, row)) continue;
          for (Accumulator& acc : accumulators[it->second]) {
            acc.Accept(row);
          }
        }
      }
    }
  } else {
    // Per-partition replicas of the (group x aggregate) accumulator grid,
    // merged cell-wise in partition order.
    const size_t num_chunks = (n + grain - 1) / grain;
    std::vector<std::vector<std::vector<Accumulator>>> partials(
        num_chunks, accumulators);
    std::atomic<bool> cancelled{false};
    const bool finite = options.deadline.IsFinite();
    ParallelFor(options.pool, n, grain,
                [&](size_t chunk, size_t begin, size_t end) {
                  if (finite && options.deadline.Expired()) {
                    cancelled.store(true, std::memory_order_relaxed);
                    return;
                  }
                  std::vector<std::vector<Accumulator>>& grid =
                      partials[chunk];
                  if (options.vectorize) {
                    auto scratch = std::make_unique<vec::BatchScratch>();
                    VecGroupedScanRange(filters, codes.data(), group_lookup,
                                        begin, end, scratch.get(), &grid);
                    return;
                  }
                  for (size_t row = begin; row < end; ++row) {
                    auto it = group_of_code.find(codes[row]);
                    if (it == group_of_code.end()) continue;
                    if (!MatchesAll(compiled, row)) continue;
                    for (Accumulator& acc : grid[it->second]) {
                      acc.Accept(row);
                    }
                  }
                });
    if (cancelled.load(std::memory_order_relaxed)) {
      return Status::Timeout("parallel grouped scan cancelled (" +
                             std::to_string(n) + " rows)");
    }
    for (const auto& grid : partials) {
      for (size_t g = 0; g < accumulators.size(); ++g) {
        for (size_t a = 0; a < accumulators[g].size(); ++a) {
          accumulators[g][a].Merge(grid[g][a]);
        }
      }
    }
  }

  GroupByResult out;
  out.rows_scanned = n;
  out.cells.resize(accumulators.size());
  for (size_t g = 0; g < accumulators.size(); ++g) {
    out.cells[g].reserve(accumulators[g].size());
    for (const Accumulator& acc : accumulators[g]) {
      out.cells[g].push_back(acc.Finish());
    }
  }
  if (options.cache != nullptr) options.cache->Store(table, query, out);
  return out;
}

double Executor::ScaleSampledValue(AggregateFunction fn, double value,
                                   double fraction) {
  if (fraction <= 0.0 || fraction >= 1.0) return value;
  switch (fn) {
    case AggregateFunction::kCount:
    case AggregateFunction::kSum:
      return value / fraction;
    case AggregateFunction::kAvg:
    case AggregateFunction::kMin:
    case AggregateFunction::kMax:
      return value;
  }
  return value;
}

}  // namespace muve::db
