#include "db/executor.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

namespace muve::db {

namespace {

/// Compiled form of one predicate: matches row indices against typed data.
struct CompiledPredicate {
  const Column* column = nullptr;
  // String columns: set of dictionary codes to accept. Empty set means the
  // predicate can never match (constant absent from the dictionary).
  std::vector<uint32_t> accepted_codes;
  // Numeric columns: accepted values.
  std::vector<int64_t> accepted_ints;
  std::vector<double> accepted_doubles;

  bool Matches(size_t row) const {
    switch (column->type()) {
      case ValueType::kString: {
        const uint32_t code = column->codes()[row];
        for (uint32_t accepted : accepted_codes) {
          if (code == accepted) return true;
        }
        return false;
      }
      case ValueType::kInt64: {
        const int64_t v = column->int_data()[row];
        for (int64_t accepted : accepted_ints) {
          if (v == accepted) return true;
        }
        return false;
      }
      case ValueType::kDouble: {
        const double v = column->double_data()[row];
        for (double accepted : accepted_doubles) {
          if (v == accepted) return true;
        }
        return false;
      }
    }
    return false;
  }
};

Result<CompiledPredicate> Compile(const Table& table,
                                  const Predicate& predicate) {
  CompiledPredicate compiled;
  compiled.column = table.FindColumn(predicate.column);
  if (compiled.column == nullptr) {
    return Status::NotFound("predicate column '" + predicate.column +
                            "' not in table '" + table.name() + "'");
  }
  if (predicate.values.empty()) {
    return Status::InvalidArgument("predicate without values");
  }
  for (const Value& value : predicate.values) {
    switch (compiled.column->type()) {
      case ValueType::kString: {
        if (!value.is_string()) {
          return Status::InvalidArgument(
              "type mismatch in predicate on '" + predicate.column + "'");
        }
        const uint32_t code = compiled.column->CodeFor(value.AsString());
        if (code != kInvalidCode) compiled.accepted_codes.push_back(code);
        break;
      }
      case ValueType::kInt64:
        if (!value.is_int64()) {
          return Status::InvalidArgument(
              "type mismatch in predicate on '" + predicate.column + "'");
        }
        compiled.accepted_ints.push_back(value.AsInt64());
        break;
      case ValueType::kDouble:
        if (!value.is_int64() && !value.is_double()) {
          return Status::InvalidArgument(
              "type mismatch in predicate on '" + predicate.column + "'");
        }
        compiled.accepted_doubles.push_back(value.AsDouble());
        break;
    }
  }
  return compiled;
}

/// Streaming accumulator for one aggregate.
struct Accumulator {
  AggregateFunction fn;
  const Column* column = nullptr;  // nullptr for COUNT(*).
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  size_t count = 0;

  void Accept(size_t row) {
    ++count;
    if (column == nullptr) return;
    const double v = column->NumericAt(row);
    sum += v;
    min = std::min(min, v);
    max = std::max(max, v);
  }

  /// Folds another partition's partial state into this one. An all-empty
  /// partition contributes count 0 and +/-inf extrema, so it cannot leak
  /// a 0 identity into AVG/MIN/MAX; Finish() decides emptiness from the
  /// merged count alone.
  void Merge(const Accumulator& other) {
    count += other.count;
    sum += other.sum;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }

  AggregateResult Finish() const {
    AggregateResult out;
    out.rows_matched = count;
    out.empty_input = count == 0;
    switch (fn) {
      case AggregateFunction::kCount:
        out.value = static_cast<double>(count);
        out.empty_input = false;  // COUNT of empty input is a valid 0.
        break;
      case AggregateFunction::kSum:
        out.value = sum;
        break;
      case AggregateFunction::kAvg:
        out.value = count > 0 ? sum / static_cast<double>(count) : 0.0;
        break;
      case AggregateFunction::kMin:
        out.value = count > 0 ? min : 0.0;
        break;
      case AggregateFunction::kMax:
        out.value = count > 0 ? max : 0.0;
        break;
    }
    return out;
  }
};

Result<Accumulator> MakeAccumulator(const Table& table,
                                    AggregateFunction fn,
                                    const std::string& column_name) {
  Accumulator acc;
  acc.fn = fn;
  if (fn == AggregateFunction::kCount && column_name.empty()) {
    return acc;
  }
  if (column_name.empty()) {
    return Status::InvalidArgument("aggregate needs a column");
  }
  acc.column = table.FindColumn(column_name);
  if (acc.column == nullptr) {
    return Status::NotFound("aggregate column '" + column_name +
                            "' not in table '" + table.name() + "'");
  }
  if (acc.column->type() == ValueType::kString &&
      fn != AggregateFunction::kCount) {
    return Status::InvalidArgument("cannot aggregate string column '" +
                                   column_name + "' with " +
                                   AggregateFunctionName(fn));
  }
  if (fn == AggregateFunction::kCount) acc.column = nullptr;
  return acc;
}

bool MatchesAll(const std::vector<CompiledPredicate>& compiled, size_t row) {
  for (const CompiledPredicate& predicate : compiled) {
    if (!predicate.Matches(row)) return false;
  }
  return true;
}

}  // namespace

std::string GroupByQuery::ToSql() const {
  std::string sql = "SELECT " + group_column;
  for (const AggregateSpec& agg : aggregates) {
    sql += ", " + std::string(AggregateFunctionName(agg.function)) + "(" +
           (agg.column.empty() ? "*" : agg.column) + ")";
  }
  sql += " FROM " + table;
  std::vector<Predicate> all = shared_predicates;
  std::vector<Value> in_values;
  in_values.reserve(group_values.size());
  for (const std::string& v : group_values) in_values.emplace_back(v);
  all.push_back(Predicate::In(group_column, std::move(in_values)));
  sql += " WHERE ";
  for (size_t i = 0; i < all.size(); ++i) {
    if (i > 0) sql += " AND ";
    sql += all[i].ToSql();
  }
  sql += " GROUP BY " + group_column;
  return sql;
}

Result<AggregateResult> Executor::Execute(const Table& table,
                                          const AggregateQuery& query,
                                          const ExecutorOptions& options) {
  // Cache probe before any compilation work: a hit can only exist for a
  // query that previously compiled and ran successfully against this
  // exact table version, so skipping validation cannot mask an error the
  // uncached path would report.
  if (options.cache != nullptr) {
    AggregateResult cached;
    if (options.cache->Lookup(table, query, &cached)) return cached;
  }

  std::vector<CompiledPredicate> compiled;
  compiled.reserve(query.predicates.size());
  for (const Predicate& predicate : query.predicates) {
    MUVE_ASSIGN_OR_RETURN(CompiledPredicate c, Compile(table, predicate));
    compiled.push_back(std::move(c));
  }
  MUVE_ASSIGN_OR_RETURN(
      Accumulator acc,
      MakeAccumulator(table, query.function, query.aggregate_column));

  const size_t n = table.num_rows();
  const size_t grain = std::max<size_t>(1, options.parallel_grain);
  AggregateResult out;
  if (!options.ShouldParallelize(n)) {
    if (!options.deadline.IsFinite()) {
      for (size_t row = 0; row < n; ++row) {
        if (MatchesAll(compiled, row)) acc.Accept(row);
      }
    } else {
      // Deadline-bounded serial scan: same row order in grain-sized
      // blocks, with a cancellation check per block.
      for (size_t begin = 0; begin < n; begin += grain) {
        if (options.deadline.Expired()) {
          return Status::Timeout("aggregate scan cancelled at row " +
                                 std::to_string(begin) + "/" +
                                 std::to_string(n));
        }
        const size_t end = std::min(n, begin + grain);
        for (size_t row = begin; row < end; ++row) {
          if (MatchesAll(compiled, row)) acc.Accept(row);
        }
      }
    }
    out = acc.Finish();
  } else {
    const size_t num_chunks = (n + grain - 1) / grain;
    std::vector<Accumulator> partials(num_chunks, acc);
    // Workers skip partitions not yet started when the deadline expires;
    // a partial scan never merges into a result (Timeout below).
    std::atomic<bool> cancelled{false};
    const bool finite = options.deadline.IsFinite();
    ParallelFor(options.pool, n, grain,
                [&](size_t chunk, size_t begin, size_t end) {
                  if (finite && options.deadline.Expired()) {
                    cancelled.store(true, std::memory_order_relaxed);
                    return;
                  }
                  Accumulator& partial = partials[chunk];
                  for (size_t row = begin; row < end; ++row) {
                    if (MatchesAll(compiled, row)) partial.Accept(row);
                  }
                });
    if (cancelled.load(std::memory_order_relaxed)) {
      return Status::Timeout("parallel aggregate scan cancelled (" +
                             std::to_string(n) + " rows)");
    }
    for (const Accumulator& partial : partials) acc.Merge(partial);
    out = acc.Finish();
  }
  if (options.cache != nullptr) options.cache->Store(table, query, out);
  return out;
}

Result<GroupByResult> Executor::ExecuteGrouped(
    const Table& table, const GroupByQuery& query,
    const ExecutorOptions& options) {
  if (options.cache != nullptr) {
    GroupByResult cached;
    if (options.cache->Lookup(table, query, &cached)) return cached;
  }

  const Column* group_column = table.FindColumn(query.group_column);
  if (group_column == nullptr) {
    return Status::NotFound("group column '" + query.group_column +
                            "' not in table '" + table.name() + "'");
  }
  if (group_column->type() != ValueType::kString) {
    return Status::InvalidArgument("GROUP BY requires a string column");
  }

  std::vector<CompiledPredicate> compiled;
  compiled.reserve(query.shared_predicates.size());
  for (const Predicate& predicate : query.shared_predicates) {
    MUVE_ASSIGN_OR_RETURN(CompiledPredicate c, Compile(table, predicate));
    compiled.push_back(std::move(c));
  }

  // Map dictionary code -> group index for the IN list.
  std::unordered_map<uint32_t, size_t> group_of_code;
  for (size_t g = 0; g < query.group_values.size(); ++g) {
    const uint32_t code = group_column->CodeFor(query.group_values[g]);
    if (code != kInvalidCode) group_of_code.emplace(code, g);
  }

  // One accumulator per (group, aggregate).
  std::vector<std::vector<Accumulator>> accumulators(
      query.group_values.size());
  for (auto& per_group : accumulators) {
    per_group.reserve(query.aggregates.size());
    for (const AggregateSpec& agg : query.aggregates) {
      MUVE_ASSIGN_OR_RETURN(Accumulator acc,
                            MakeAccumulator(table, agg.function, agg.column));
      per_group.push_back(std::move(acc));
    }
  }

  const size_t n = table.num_rows();
  const size_t grain = std::max<size_t>(1, options.parallel_grain);
  const std::vector<uint32_t>& codes = group_column->codes();
  if (!options.ShouldParallelize(n)) {
    if (!options.deadline.IsFinite()) {
      for (size_t row = 0; row < n; ++row) {
        auto it = group_of_code.find(codes[row]);
        if (it == group_of_code.end()) continue;
        if (!MatchesAll(compiled, row)) continue;
        for (Accumulator& acc : accumulators[it->second]) acc.Accept(row);
      }
    } else {
      for (size_t begin = 0; begin < n; begin += grain) {
        if (options.deadline.Expired()) {
          return Status::Timeout("grouped scan cancelled at row " +
                                 std::to_string(begin) + "/" +
                                 std::to_string(n));
        }
        const size_t end = std::min(n, begin + grain);
        for (size_t row = begin; row < end; ++row) {
          auto it = group_of_code.find(codes[row]);
          if (it == group_of_code.end()) continue;
          if (!MatchesAll(compiled, row)) continue;
          for (Accumulator& acc : accumulators[it->second]) {
            acc.Accept(row);
          }
        }
      }
    }
  } else {
    // Per-partition replicas of the (group x aggregate) accumulator grid,
    // merged cell-wise in partition order.
    const size_t num_chunks = (n + grain - 1) / grain;
    std::vector<std::vector<std::vector<Accumulator>>> partials(
        num_chunks, accumulators);
    std::atomic<bool> cancelled{false};
    const bool finite = options.deadline.IsFinite();
    ParallelFor(options.pool, n, grain,
                [&](size_t chunk, size_t begin, size_t end) {
                  if (finite && options.deadline.Expired()) {
                    cancelled.store(true, std::memory_order_relaxed);
                    return;
                  }
                  std::vector<std::vector<Accumulator>>& grid =
                      partials[chunk];
                  for (size_t row = begin; row < end; ++row) {
                    auto it = group_of_code.find(codes[row]);
                    if (it == group_of_code.end()) continue;
                    if (!MatchesAll(compiled, row)) continue;
                    for (Accumulator& acc : grid[it->second]) {
                      acc.Accept(row);
                    }
                  }
                });
    if (cancelled.load(std::memory_order_relaxed)) {
      return Status::Timeout("parallel grouped scan cancelled (" +
                             std::to_string(n) + " rows)");
    }
    for (const auto& grid : partials) {
      for (size_t g = 0; g < accumulators.size(); ++g) {
        for (size_t a = 0; a < accumulators[g].size(); ++a) {
          accumulators[g][a].Merge(grid[g][a]);
        }
      }
    }
  }

  GroupByResult out;
  out.rows_scanned = n;
  out.cells.resize(accumulators.size());
  for (size_t g = 0; g < accumulators.size(); ++g) {
    out.cells[g].reserve(accumulators[g].size());
    for (const Accumulator& acc : accumulators[g]) {
      out.cells[g].push_back(acc.Finish());
    }
  }
  if (options.cache != nullptr) options.cache->Store(table, query, out);
  return out;
}

double Executor::ScaleSampledValue(AggregateFunction fn, double value,
                                   double fraction) {
  if (fraction <= 0.0 || fraction >= 1.0) return value;
  switch (fn) {
    case AggregateFunction::kCount:
    case AggregateFunction::kSum:
      return value / fraction;
    case AggregateFunction::kAvg:
    case AggregateFunction::kMin:
    case AggregateFunction::kMax:
      return value;
  }
  return value;
}

}  // namespace muve::db
