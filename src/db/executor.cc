#include "db/executor.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "db/lsm/memtable.h"
#include "db/lsm/run.h"
#include "db/snapshot.h"
#include "db/vec/aggregate_kernels.h"
#include "db/vec/batch.h"
#include "db/vec/filter_kernels.h"
#include "db/vec/group_kernels.h"

namespace muve::db {

namespace {

// ---------------------------------------------------------------------------
// Logical compilation: predicates and aggregates resolved against the
// schema once per query. Runs dictionary-encode strings independently, so
// string constants stay as strings here and are re-bound to each run's
// dictionary at scan time (BindPredicates below).
// ---------------------------------------------------------------------------

struct LogicalPredicate {
  size_t column = 0;
  ValueType type = ValueType::kInt64;
  std::vector<std::string> accepted_strings;
  std::vector<int64_t> accepted_ints;
  std::vector<double> accepted_doubles;

  /// Row match against a materialized value (the memtable path). The
  /// accepted sets are value sets, so this is the same boolean the
  /// code-compare path computes for run rows.
  bool MatchesValue(const Value& value) const {
    switch (type) {
      case ValueType::kString: {
        const std::string& v = value.AsString();
        for (const std::string& accepted : accepted_strings) {
          if (v == accepted) return true;
        }
        return false;
      }
      case ValueType::kInt64: {
        const int64_t v = value.AsInt64();
        for (int64_t accepted : accepted_ints) {
          if (v == accepted) return true;
        }
        return false;
      }
      case ValueType::kDouble: {
        const double v = value.AsDouble();
        for (double accepted : accepted_doubles) {
          if (v == accepted) return true;
        }
        return false;
      }
    }
    return false;
  }
};

Result<LogicalPredicate> Compile(const Table& table,
                                 const Predicate& predicate) {
  LogicalPredicate compiled;
  auto index = table.ColumnIndex(predicate.column);
  if (!index.ok()) {
    return Status::NotFound("predicate column '" + predicate.column +
                            "' not in table '" + table.name() + "'");
  }
  compiled.column = *index;
  compiled.type = table.spec(*index).type;
  if (predicate.values.empty()) {
    return Status::InvalidArgument("predicate without values");
  }
  for (const Value& value : predicate.values) {
    switch (compiled.type) {
      case ValueType::kString:
        if (!value.is_string()) {
          return Status::InvalidArgument(
              "type mismatch in predicate on '" + predicate.column + "'");
        }
        compiled.accepted_strings.push_back(value.AsString());
        break;
      case ValueType::kInt64:
        if (!value.is_int64()) {
          return Status::InvalidArgument(
              "type mismatch in predicate on '" + predicate.column + "'");
        }
        compiled.accepted_ints.push_back(value.AsInt64());
        break;
      case ValueType::kDouble:
        if (!value.is_int64() && !value.is_double()) {
          return Status::InvalidArgument(
              "type mismatch in predicate on '" + predicate.column + "'");
        }
        compiled.accepted_doubles.push_back(value.AsDouble());
        break;
    }
  }
  return compiled;
}

/// One aggregate resolved against the schema. `column` is SIZE_MAX for
/// COUNT (COUNT(col) counts matched rows like COUNT(*), matching SQL on
/// tables without NULLs).
struct CompiledAggregate {
  AggregateFunction fn = AggregateFunction::kCount;
  size_t column = SIZE_MAX;
};

Result<CompiledAggregate> CompileAggregate(const Table& table,
                                           AggregateFunction fn,
                                           const std::string& column_name) {
  CompiledAggregate agg;
  agg.fn = fn;
  if (fn == AggregateFunction::kCount && column_name.empty()) {
    return agg;
  }
  if (column_name.empty()) {
    return Status::InvalidArgument("aggregate needs a column");
  }
  auto index = table.ColumnIndex(column_name);
  if (!index.ok()) {
    return Status::NotFound("aggregate column '" + column_name +
                            "' not in table '" + table.name() + "'");
  }
  if (table.spec(*index).type == ValueType::kString &&
      fn != AggregateFunction::kCount) {
    return Status::InvalidArgument("cannot aggregate string column '" +
                                   column_name + "' with " +
                                   AggregateFunctionName(fn));
  }
  if (fn != AggregateFunction::kCount) agg.column = *index;
  return agg;
}

// ---------------------------------------------------------------------------
// Partial-state arithmetic. Accept* updates sum, min and max together
// regardless of the aggregate function (exactly what the pre-snapshot
// executor's Accumulator::Accept did), so partials merged from any mix of
// cache hits and fresh scans stay bitwise identical to an uncached scan
// with the same partition structure.
// ---------------------------------------------------------------------------

inline void AcceptCount(AggregatePartial* p) { ++p->count; }

inline void AcceptNumeric(double v, AggregatePartial* p) {
  ++p->count;
  p->sum += v;
  p->min = std::min(p->min, v);
  p->max = std::max(p->max, v);
}

/// Folds another segment's partial into this one, in segment order. An
/// all-empty segment contributes count 0 and +/-inf extrema, so it
/// cannot leak a 0 identity into AVG/MIN/MAX; FinishPartial decides
/// emptiness from the merged count alone.
inline void MergeInto(const AggregatePartial& src, AggregatePartial* dst) {
  dst->count += src.count;
  dst->sum += src.sum;
  dst->min = std::min(dst->min, src.min);
  dst->max = std::max(dst->max, src.max);
}

AggregateResult FinishPartial(AggregateFunction fn,
                              const AggregatePartial& p) {
  AggregateResult out;
  out.rows_matched = p.count;
  out.empty_input = p.count == 0;
  switch (fn) {
    case AggregateFunction::kCount:
      out.value = static_cast<double>(p.count);
      out.empty_input = false;  // COUNT of empty input is a valid 0.
      break;
    case AggregateFunction::kSum:
      out.value = p.sum;
      break;
    case AggregateFunction::kAvg:
      out.value =
          p.count > 0 ? p.sum / static_cast<double>(p.count) : 0.0;
      break;
    case AggregateFunction::kMin:
      out.value = p.count > 0 ? p.min : 0.0;
      break;
    case AggregateFunction::kMax:
      out.value = p.count > 0 ? p.max : 0.0;
      break;
  }
  return out;
}

GroupedPartial MakeGrid(size_t groups, size_t aggregates) {
  GroupedPartial grid;
  grid.cells.assign(groups, std::vector<AggregatePartial>(aggregates));
  return grid;
}

void MergeGrids(const GroupedPartial& src, GroupedPartial* dst) {
  for (size_t g = 0; g < dst->cells.size(); ++g) {
    for (size_t a = 0; a < dst->cells[g].size(); ++a) {
      MergeInto(src.cells[g][a], &dst->cells[g][a]);
    }
  }
}

// ---------------------------------------------------------------------------
// Storage segments: the scan units of one snapshot. Runs in logical
// order, then the frozen memtable prefix. Row indices inside a segment
// are segment-local; `begin` maps them back to global row numbers for
// deadline diagnostics.
// ---------------------------------------------------------------------------

struct Segment {
  std::shared_ptr<const lsm::Run> run;  ///< null for the memtable tail.
  size_t begin = 0;
  size_t rows = 0;
};

std::vector<Segment> MakeSegments(const TableSnapshot& snapshot) {
  std::vector<Segment> segments;
  size_t offset = 0;
  for (const auto& run : snapshot.runs()) {
    if (run->num_rows() == 0) continue;
    segments.push_back({run, offset, run->num_rows()});
    offset += run->num_rows();
  }
  if (snapshot.memtable().rows > 0) {
    segments.push_back({nullptr, offset, snapshot.memtable().rows});
  }
  return segments;
}

// ---------------------------------------------------------------------------
// Per-run binding: predicates lowered to this run's dictionary codes and
// column pointers.
// ---------------------------------------------------------------------------

struct BoundPredicate {
  const Column* column = nullptr;
  // String columns: this run's dictionary codes for the accepted
  // strings. Empty means no accepted constant appears in this run.
  std::vector<uint32_t> accepted_codes;
  // Numeric columns: the logical value lists (stable for the scan).
  const std::vector<int64_t>* ints = nullptr;
  const std::vector<double>* doubles = nullptr;

  bool Matches(size_t row) const {
    switch (column->type()) {
      case ValueType::kString: {
        const uint32_t code = column->codes()[row];
        for (uint32_t accepted : accepted_codes) {
          if (code == accepted) return true;
        }
        return false;
      }
      case ValueType::kInt64: {
        const int64_t v = column->int_data()[row];
        for (int64_t accepted : *ints) {
          if (v == accepted) return true;
        }
        return false;
      }
      case ValueType::kDouble: {
        const double v = column->double_data()[row];
        for (double accepted : *doubles) {
          if (v == accepted) return true;
        }
        return false;
      }
    }
    return false;
  }
};

std::vector<BoundPredicate> BindPredicates(
    const std::vector<LogicalPredicate>& logical, const lsm::Run& run) {
  std::vector<BoundPredicate> bound;
  bound.reserve(logical.size());
  for (const LogicalPredicate& p : logical) {
    BoundPredicate b;
    b.column = &run.column(p.column);
    b.ints = &p.accepted_ints;
    b.doubles = &p.accepted_doubles;
    if (p.type == ValueType::kString) {
      for (const std::string& text : p.accepted_strings) {
        const uint32_t code = b.column->CodeFor(text);
        if (code != kInvalidCode) b.accepted_codes.push_back(code);
      }
    }
    bound.push_back(std::move(b));
  }
  return bound;
}

bool MatchesAll(const std::vector<BoundPredicate>& bound, size_t row) {
  for (const BoundPredicate& predicate : bound) {
    if (!predicate.Matches(row)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Vectorized scan machinery (options.vectorize), applied to run segments
// only — the memtable tail is row-oriented and always scanned
// value-at-a-time. Same row order, partition boundaries, accumulation
// order, cancellation points and cache interaction as the scalar loops —
// the batch path only changes *how* each row range is traversed, so
// results are byte-identical (the differential suite pins this down with
// the scalar path as oracle).
// ---------------------------------------------------------------------------

/// One bound predicate lowered to a kernel dispatch: a kind tag, the run
/// column's raw data pointer, and the constant(s) in kernel-ready form
/// (single key, dictionary accept mask, or a pointer into the logical
/// predicate's value list). `int_keys`/`double_keys` alias the logical
/// predicate vectors, so the compiled predicates must outlive the
/// filters; everything else is self-contained.
struct VecFilter {
  enum class Kind {
    kNever,      // String constant(s) absent from this run's dictionary.
                 // Kept as a per-batch kernel (not hoisted out of the
                 // scan loop) so deadline checks fire exactly as in the
                 // scalar path.
    kCodeEq,     // Dictionary code == single accepted code.
    kCodeMask,   // Dictionary code accepted by a mask (IN list).
    kIntEq,
    kIntIn,
    kDoubleEq,
    kDoubleIn,
  };

  Kind kind = Kind::kNever;
  const uint32_t* codes = nullptr;
  const int64_t* ints = nullptr;
  const double* doubles = nullptr;
  uint32_t code = 0;
  int64_t int_key = 0;
  double double_key = 0.0;
  std::vector<uint8_t> mask;
  const int64_t* int_keys = nullptr;
  const double* double_keys = nullptr;
  size_t num_keys = 0;
};

std::vector<VecFilter> VectorizeFilters(
    const std::vector<BoundPredicate>& bound) {
  std::vector<VecFilter> filters;
  filters.reserve(bound.size());
  for (const BoundPredicate& p : bound) {
    VecFilter f;
    switch (p.column->type()) {
      case ValueType::kString:
        f.codes = p.column->codes_raw();
        if (p.accepted_codes.empty()) {
          f.kind = VecFilter::Kind::kNever;
        } else if (p.accepted_codes.size() == 1) {
          f.kind = VecFilter::Kind::kCodeEq;
          f.code = p.accepted_codes[0];
        } else {
          f.kind = VecFilter::Kind::kCodeMask;
          f.mask = p.column->AcceptMask(p.accepted_codes);
        }
        break;
      case ValueType::kInt64:
        f.ints = p.column->int_raw();
        if (p.ints->size() == 1) {
          f.kind = VecFilter::Kind::kIntEq;
          f.int_key = (*p.ints)[0];
        } else {
          f.kind = VecFilter::Kind::kIntIn;
          f.int_keys = p.ints->data();
          f.num_keys = p.ints->size();
        }
        break;
      case ValueType::kDouble:
        f.doubles = p.column->double_raw();
        if (p.doubles->size() == 1) {
          f.kind = VecFilter::Kind::kDoubleEq;
          f.double_key = (*p.doubles)[0];
        } else {
          f.kind = VecFilter::Kind::kDoubleIn;
          f.double_keys = p.doubles->data();
          f.num_keys = p.doubles->size();
        }
        break;
    }
    filters.push_back(std::move(f));
  }
  return filters;
}

/// Applies every filter to the batch [base, base + count), alternating the
/// scratch selection buffers. Returns the surviving row count; `*sel` is
/// the surviving selection, or nullptr when all `count` rows survived (the
/// identity selection — callers use the dense aggregate fast path).
size_t RunFilters(const std::vector<VecFilter>& filters, size_t base,
                  size_t count, vec::BatchScratch* scratch,
                  const uint32_t** sel) {
  *sel = nullptr;
  if (filters.empty()) return count;
  uint32_t* cur = scratch->a;
  uint32_t* next = scratch->b;
  size_t n = count;
  bool have_sel = false;
  for (const VecFilter& f : filters) {
    switch (f.kind) {
      case VecFilter::Kind::kNever:
        return 0;
      case VecFilter::Kind::kCodeEq:
        n = have_sel
                ? vec::RefineEqU32(f.codes + base, cur, n, f.code, next)
                : vec::FilterEqU32(f.codes + base, count, f.code, cur);
        break;
      case VecFilter::Kind::kCodeMask:
        n = have_sel ? vec::RefineMaskU32(f.codes + base, cur, n,
                                          f.mask.data(), next)
                     : vec::FilterMaskU32(f.codes + base, count,
                                          f.mask.data(), cur);
        break;
      case VecFilter::Kind::kIntEq:
        n = have_sel
                ? vec::RefineEqI64(f.ints + base, cur, n, f.int_key, next)
                : vec::FilterEqI64(f.ints + base, count, f.int_key, cur);
        break;
      case VecFilter::Kind::kIntIn:
        n = have_sel ? vec::RefineInI64(f.ints + base, cur, n, f.int_keys,
                                        f.num_keys, next)
                     : vec::FilterInI64(f.ints + base, count, f.int_keys,
                                        f.num_keys, cur);
        break;
      case VecFilter::Kind::kDoubleEq:
        n = have_sel ? vec::RefineEqF64(f.doubles + base, cur, n,
                                        f.double_key, next)
                     : vec::FilterEqF64(f.doubles + base, count,
                                        f.double_key, cur);
        break;
      case VecFilter::Kind::kDoubleIn:
        n = have_sel ? vec::RefineInF64(f.doubles + base, cur, n,
                                        f.double_keys, f.num_keys, next)
                     : vec::FilterInF64(f.doubles + base, count,
                                        f.double_keys, f.num_keys, cur);
        break;
    }
    if (have_sel) std::swap(cur, next);
    have_sel = true;
    if (n == 0) return 0;
  }
  // A selection that kept every row is the identity — report it as the
  // all-selected fast path so aggregates skip the gather indirection.
  if (n == count) return count;
  *sel = cur;
  return n;
}

/// Folds one batch's selection into a partial. `sel == nullptr` means
/// all `n` rows of the batch matched (dense fast path). Matches
/// AcceptNumeric per row exactly: count always advances; SUM/MIN/MAX
/// state only for column-bearing aggregates, in ascending row order.
void AccumulateBatch(const Column* column, size_t base, const uint32_t* sel,
                     size_t n, AggregatePartial* p) {
  p->count += n;
  if (column == nullptr || n == 0) return;
  if (column->type() == ValueType::kInt64) {
    const int64_t* data = column->int_raw() + base;
    if (sel == nullptr) {
      p->sum = vec::SumDenseI64(data, n, p->sum);
      p->min = vec::MinDenseI64(data, n, p->min);
      p->max = vec::MaxDenseI64(data, n, p->max);
    } else {
      p->sum = vec::SumGatherI64(data, sel, n, p->sum);
      p->min = vec::MinGatherI64(data, sel, n, p->min);
      p->max = vec::MaxGatherI64(data, sel, n, p->max);
    }
  } else {
    const double* data = column->double_raw() + base;
    if (sel == nullptr) {
      p->sum = vec::SumDenseF64(data, n, p->sum);
      p->min = vec::MinDenseF64(data, n, p->min);
      p->max = vec::MaxDenseF64(data, n, p->max);
    } else {
      p->sum = vec::SumGatherF64(data, sel, n, p->sum);
      p->min = vec::MinGatherF64(data, sel, n, p->min);
      p->max = vec::MaxGatherF64(data, sel, n, p->max);
    }
  }
}

/// Vectorized scan of run rows [begin, end): tiles the range into
/// kBatchSize batches, filters each into a selection vector and folds it
/// into the partial.
void VecScanRange(const std::vector<VecFilter>& filters,
                  const Column* agg_column, size_t begin, size_t end,
                  vec::BatchScratch* scratch, AggregatePartial* p) {
  for (size_t base = begin; base < end; base += vec::kBatchSize) {
    const size_t count = std::min(vec::kBatchSize, end - base);
    const uint32_t* sel = nullptr;
    const size_t n = RunFilters(filters, base, count, scratch, &sel);
    if (n == 0) continue;
    AccumulateBatch(agg_column, base, sel, n, p);
  }
}

/// Scalar scan of run rows [begin, end).
void ScalarScanRange(const std::vector<BoundPredicate>& bound,
                     const Column* agg_column, size_t begin, size_t end,
                     AggregatePartial* p) {
  for (size_t row = begin; row < end; ++row) {
    if (!MatchesAll(bound, row)) continue;
    if (agg_column == nullptr) {
      AcceptCount(p);
    } else {
      AcceptNumeric(agg_column->NumericAt(row), p);
    }
  }
}

/// Row-at-a-time scan of memtable rows [begin, end). Identical in both
/// vectorize modes: the memtable holds materialized values, not columnar
/// arrays, so there is nothing for the kernels to run over — and the
/// sequential fold makes the result independent of the traversal shape
/// anyway.
void MemScanRange(const std::vector<LogicalPredicate>& logical,
                  const CompiledAggregate& agg,
                  const lsm::MemTable::View& mem, size_t begin, size_t end,
                  AggregatePartial* p) {
  for (size_t row = begin; row < end; ++row) {
    bool matched = true;
    for (const LogicalPredicate& predicate : logical) {
      if (!predicate.MatchesValue(mem.At(row, predicate.column))) {
        matched = false;
        break;
      }
    }
    if (!matched) continue;
    if (agg.column == SIZE_MAX) {
      AcceptCount(p);
    } else {
      AcceptNumeric(mem.At(row, agg.column).AsDouble(), p);
    }
  }
}

// ---------------------------------------------------------------------------
// Grouped-scan counterparts.
// ---------------------------------------------------------------------------

/// Folds one group-mapped batch into the grid for aggregate slot `a`:
/// sel/groups are parallel arrays from MapGroups (ascending row offsets
/// plus each row's group index). Per-row work matches AcceptNumeric for
/// the scalar grouped loop exactly.
void AccumulateGroupedBatch(const Column* column, size_t base,
                            const uint32_t* sel, const uint32_t* groups,
                            size_t n, size_t a, GroupedPartial* grid) {
  if (column == nullptr) {
    for (size_t i = 0; i < n; ++i) ++grid->cells[groups[i]][a].count;
    return;
  }
  if (column->type() == ValueType::kInt64) {
    const int64_t* data = column->int_raw() + base;
    for (size_t i = 0; i < n; ++i) {
      AggregatePartial& p = grid->cells[groups[i]][a];
      const double v = static_cast<double>(data[sel[i]]);
      ++p.count;
      p.sum += v;
      p.min = v < p.min ? v : p.min;
      p.max = p.max < v ? v : p.max;
    }
  } else {
    const double* data = column->double_raw() + base;
    for (size_t i = 0; i < n; ++i) {
      AggregatePartial& p = grid->cells[groups[i]][a];
      const double v = data[sel[i]];
      ++p.count;
      p.sum += v;
      p.min = v < p.min ? v : p.min;
      p.max = p.max < v ? v : p.max;
    }
  }
}

/// Vectorized grouped scan of run rows [begin, end): filter each batch on
/// the shared predicates, map survivors to groups through the dense
/// dictionary lookup, then fold each aggregate column over the compacted
/// selection. The scalar loop tests group membership before the
/// predicates and this path tests predicates first; both are conjunctive
/// on the same row, so the accepted row set — and every accumulator
/// update — is identical.
void VecGroupedScanRange(const std::vector<VecFilter>& filters,
                         const uint32_t* codes,
                         const std::vector<uint32_t>& lookup,
                         const std::vector<const Column*>& agg_columns,
                         size_t begin, size_t end,
                         vec::BatchScratch* scratch, GroupedPartial* grid) {
  if (grid->cells.empty()) return;  // No groups: nothing can accumulate.
  for (size_t base = begin; base < end; base += vec::kBatchSize) {
    const size_t count = std::min(vec::kBatchSize, end - base);
    const uint32_t* sel = nullptr;
    const size_t n = RunFilters(filters, base, count, scratch, &sel);
    if (n == 0) continue;
    const size_t m =
        sel == nullptr
            ? vec::MapGroupsDense(codes + base, n, lookup.data(),
                                  scratch->c, scratch->groups)
            : vec::MapGroups(codes + base, sel, n, lookup.data(),
                             scratch->c, scratch->groups);
    if (m == 0) continue;
    for (size_t a = 0; a < agg_columns.size(); ++a) {
      AccumulateGroupedBatch(agg_columns[a], base, scratch->c,
                             scratch->groups, m, a, grid);
    }
  }
}

/// Scalar grouped scan of run rows [begin, end).
void ScalarGroupedScanRange(
    const std::vector<BoundPredicate>& bound,
    const std::vector<uint32_t>& codes,
    const std::unordered_map<uint32_t, size_t>& group_of_code,
    const std::vector<const Column*>& agg_columns, size_t begin, size_t end,
    GroupedPartial* grid) {
  for (size_t row = begin; row < end; ++row) {
    auto it = group_of_code.find(codes[row]);
    if (it == group_of_code.end()) continue;
    if (!MatchesAll(bound, row)) continue;
    for (size_t a = 0; a < agg_columns.size(); ++a) {
      AggregatePartial& p = grid->cells[it->second][a];
      if (agg_columns[a] == nullptr) {
        AcceptCount(&p);
      } else {
        AcceptNumeric(agg_columns[a]->NumericAt(row), &p);
      }
    }
  }
}

/// Row-at-a-time grouped scan of memtable rows [begin, end); identical
/// in both vectorize modes (see MemScanRange).
void MemGroupedScanRange(
    const std::vector<LogicalPredicate>& logical,
    const std::vector<CompiledAggregate>& aggs, size_t group_column,
    const std::unordered_map<std::string, size_t>& group_of_value,
    const lsm::MemTable::View& mem, size_t begin, size_t end,
    GroupedPartial* grid) {
  for (size_t row = begin; row < end; ++row) {
    auto it = group_of_value.find(mem.At(row, group_column).AsString());
    if (it == group_of_value.end()) continue;
    bool matched = true;
    for (const LogicalPredicate& predicate : logical) {
      if (!predicate.MatchesValue(mem.At(row, predicate.column))) {
        matched = false;
        break;
      }
    }
    if (!matched) continue;
    for (size_t a = 0; a < aggs.size(); ++a) {
      AggregatePartial& p = grid->cells[it->second][a];
      if (aggs[a].column == SIZE_MAX) {
        AcceptCount(&p);
      } else {
        AcceptNumeric(mem.At(row, aggs[a].column).AsDouble(), &p);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Slice planning for the parallel path: every uncached segment is cut
// into fixed grain-sized slices (relative to the segment start), and one
// ParallelFor covers the global slice list — cross-run parallelism with
// no barrier at run boundaries.
// ---------------------------------------------------------------------------

struct Slice {
  size_t ctx = 0;   ///< Index into the per-segment context list.
  size_t begin = 0; ///< Segment-local row range.
  size_t end = 0;
};

}  // namespace

std::string GroupByQuery::ToSql() const {
  std::string sql = "SELECT " + group_column;
  for (const AggregateSpec& agg : aggregates) {
    sql += ", " + std::string(AggregateFunctionName(agg.function)) + "(" +
           (agg.column.empty() ? "*" : agg.column) + ")";
  }
  sql += " FROM " + table;
  std::vector<Predicate> all = shared_predicates;
  std::vector<Value> in_values;
  in_values.reserve(group_values.size());
  for (const std::string& v : group_values) in_values.emplace_back(v);
  all.push_back(Predicate::In(group_column, std::move(in_values)));
  sql += " WHERE ";
  for (size_t i = 0; i < all.size(); ++i) {
    if (i > 0) sql += " AND ";
    sql += all[i].ToSql();
  }
  sql += " GROUP BY " + group_column;
  return sql;
}

Result<AggregatePartial> Executor::ExecutePartial(
    const TableSnapshot& snapshot, const AggregateQuery& query,
    const ExecutorOptions& options) {
  if (!snapshot.valid()) {
    return Status::InvalidArgument("executor needs a valid snapshot");
  }
  const Table& table = snapshot.table();

  std::vector<LogicalPredicate> compiled;
  compiled.reserve(query.predicates.size());
  for (const Predicate& predicate : query.predicates) {
    MUVE_ASSIGN_OR_RETURN(LogicalPredicate c, Compile(table, predicate));
    compiled.push_back(std::move(c));
  }
  MUVE_ASSIGN_OR_RETURN(
      CompiledAggregate agg,
      CompileAggregate(table, query.function, query.aggregate_column));

  const size_t n = snapshot.num_rows();
  const size_t grain = std::max<size_t>(1, options.parallel_grain);
  const std::vector<Segment> segments = MakeSegments(snapshot);

  // Per-segment partials: cache hits fill immediately, the rest scan.
  std::vector<AggregatePartial> seg_partials(segments.size());
  std::vector<char> cached(segments.size(), 0);
  if (options.cache != nullptr) {
    for (size_t s = 0; s < segments.size(); ++s) {
      if (segments[s].run == nullptr) continue;  // Memtable never cached.
      cached[s] = options.cache->LookupRun(table, segments[s].run->id(),
                                           query, &seg_partials[s])
                      ? 1
                      : 0;
    }
  }

  const bool finite = options.deadline.IsFinite();
  if (!options.ShouldParallelize(n)) {
    std::unique_ptr<vec::BatchScratch> scratch;
    if (options.vectorize && n > 0) {
      scratch = std::make_unique<vec::BatchScratch>();
    }
    for (size_t s = 0; s < segments.size(); ++s) {
      if (cached[s]) continue;
      const Segment& seg = segments[s];
      AggregatePartial* p = &seg_partials[s];
      std::vector<BoundPredicate> bound;
      std::vector<VecFilter> filters;
      const Column* agg_column = nullptr;
      if (seg.run != nullptr) {
        bound = BindPredicates(compiled, *seg.run);
        if (agg.column != SIZE_MAX) agg_column = &seg.run->column(agg.column);
        if (options.vectorize) filters = VectorizeFilters(bound);
      }
      for (size_t begin = 0; begin < seg.rows; begin += grain) {
        if (finite && options.deadline.Expired()) {
          return Status::Timeout("aggregate scan cancelled at row " +
                                 std::to_string(seg.begin + begin) + "/" +
                                 std::to_string(n));
        }
        const size_t end = std::min(seg.rows, begin + grain);
        if (seg.run == nullptr) {
          MemScanRange(compiled, agg, snapshot.memtable(), begin, end, p);
        } else if (options.vectorize) {
          VecScanRange(filters, agg_column, begin, end, scratch.get(), p);
        } else {
          ScalarScanRange(bound, agg_column, begin, end, p);
        }
      }
    }
  } else {
    // Per-segment scan contexts (bound predicates, lowered filters) plus
    // the global slice list.
    struct SliceCtx {
      size_t seg_index = 0;
      std::vector<BoundPredicate> bound;
      std::vector<VecFilter> filters;
      const Column* agg_column = nullptr;
      size_t first_slice = 0;
      size_t num_slices = 0;
    };
    std::vector<SliceCtx> ctxs;
    std::vector<Slice> slices;
    for (size_t s = 0; s < segments.size(); ++s) {
      if (cached[s]) continue;
      const Segment& seg = segments[s];
      SliceCtx ctx;
      ctx.seg_index = s;
      if (seg.run != nullptr) {
        ctx.bound = BindPredicates(compiled, *seg.run);
        if (agg.column != SIZE_MAX) {
          ctx.agg_column = &seg.run->column(agg.column);
        }
        if (options.vectorize) ctx.filters = VectorizeFilters(ctx.bound);
      }
      ctx.first_slice = slices.size();
      for (size_t begin = 0; begin < seg.rows; begin += grain) {
        slices.push_back(
            {ctxs.size(), begin, std::min(seg.rows, begin + grain)});
      }
      ctx.num_slices = slices.size() - ctx.first_slice;
      ctxs.push_back(std::move(ctx));
    }
    std::vector<AggregatePartial> slice_partials(slices.size());
    // Workers skip slices not yet started when the deadline expires; a
    // partial scan never merges into a result (Timeout below).
    std::atomic<bool> cancelled{false};
    if (!slices.empty()) {
      ParallelFor(options.pool, slices.size(), 1,
                  [&](size_t chunk, size_t sbegin, size_t send) {
                    (void)chunk;
                    for (size_t i = sbegin; i < send; ++i) {
                      if (finite && options.deadline.Expired()) {
                        cancelled.store(true, std::memory_order_relaxed);
                        return;
                      }
                      const Slice& slice = slices[i];
                      const SliceCtx& ctx = ctxs[slice.ctx];
                      const Segment& seg = segments[ctx.seg_index];
                      AggregatePartial* p = &slice_partials[i];
                      if (seg.run == nullptr) {
                        MemScanRange(compiled, agg, snapshot.memtable(),
                                     slice.begin, slice.end, p);
                      } else if (options.vectorize) {
                        auto scratch = std::make_unique<vec::BatchScratch>();
                        VecScanRange(ctx.filters, ctx.agg_column,
                                     slice.begin, slice.end, scratch.get(),
                                     p);
                      } else {
                        ScalarScanRange(ctx.bound, ctx.agg_column,
                                        slice.begin, slice.end, p);
                      }
                    }
                  });
    }
    if (cancelled.load(std::memory_order_relaxed)) {
      return Status::Timeout("parallel aggregate scan cancelled (" +
                             std::to_string(n) + " rows)");
    }
    for (const SliceCtx& ctx : ctxs) {
      AggregatePartial seg_total;
      for (size_t i = ctx.first_slice;
           i < ctx.first_slice + ctx.num_slices; ++i) {
        MergeInto(slice_partials[i], &seg_total);
      }
      seg_partials[ctx.seg_index] = seg_total;
    }
  }

  AggregatePartial total;
  for (const AggregatePartial& partial : seg_partials) {
    MergeInto(partial, &total);
  }
  if (options.cache != nullptr) {
    // Store only after the whole scan succeeded: a timed-out execution
    // never populates the cache, even for runs it finished.
    for (size_t s = 0; s < segments.size(); ++s) {
      if (segments[s].run == nullptr || cached[s]) continue;
      options.cache->StoreRun(table, segments[s].run->id(), query,
                              seg_partials[s]);
    }
  }
  return total;
}

Result<AggregateResult> Executor::Execute(const TableSnapshot& snapshot,
                                          const AggregateQuery& query,
                                          const ExecutorOptions& options) {
  MUVE_ASSIGN_OR_RETURN(AggregatePartial total,
                        ExecutePartial(snapshot, query, options));
  return FinishPartial(query.function, total);
}

Result<AggregateResult> Executor::Execute(const Table& table,
                                          const AggregateQuery& query,
                                          const ExecutorOptions& options) {
  return Execute(table.Snapshot(), query, options);
}

Result<GroupedPartial> Executor::ExecuteGroupedPartial(
    const TableSnapshot& snapshot, const GroupByQuery& query,
    const ExecutorOptions& options) {
  if (!snapshot.valid()) {
    return Status::InvalidArgument("executor needs a valid snapshot");
  }
  const Table& table = snapshot.table();

  auto group_index = table.ColumnIndex(query.group_column);
  if (!group_index.ok()) {
    return Status::NotFound("group column '" + query.group_column +
                            "' not in table '" + table.name() + "'");
  }
  if (table.spec(*group_index).type != ValueType::kString) {
    return Status::InvalidArgument("GROUP BY requires a string column");
  }

  std::vector<LogicalPredicate> compiled;
  compiled.reserve(query.shared_predicates.size());
  for (const Predicate& predicate : query.shared_predicates) {
    MUVE_ASSIGN_OR_RETURN(LogicalPredicate c, Compile(table, predicate));
    compiled.push_back(std::move(c));
  }

  std::vector<CompiledAggregate> aggs;
  aggs.reserve(query.aggregates.size());
  for (const AggregateSpec& spec : query.aggregates) {
    MUVE_ASSIGN_OR_RETURN(
        CompiledAggregate agg,
        CompileAggregate(table, spec.function, spec.column));
    aggs.push_back(agg);
  }

  // Group value -> group index for the memtable path; duplicate group
  // values resolve first-wins, matching the per-run code maps.
  std::unordered_map<std::string, size_t> group_of_value;
  for (size_t g = 0; g < query.group_values.size(); ++g) {
    group_of_value.emplace(query.group_values[g], g);
  }

  const size_t n = snapshot.num_rows();
  const size_t grain = std::max<size_t>(1, options.parallel_grain);
  const std::vector<Segment> segments = MakeSegments(snapshot);
  const size_t num_groups = query.group_values.size();
  const size_t num_aggs = aggs.size();

  std::vector<GroupedPartial> seg_partials(segments.size());
  std::vector<char> cached(segments.size(), 0);
  for (size_t s = 0; s < segments.size(); ++s) {
    bool hit = false;
    if (options.cache != nullptr && segments[s].run != nullptr) {
      hit = options.cache->LookupRun(table, segments[s].run->id(), query,
                                     &seg_partials[s]);
    }
    cached[s] = hit ? 1 : 0;
    if (!hit) seg_partials[s] = MakeGrid(num_groups, num_aggs);
  }

  /// Per-run grouped scan context: the group column binding on top of
  /// the shared predicate binding.
  struct GroupedCtx {
    size_t seg_index = 0;
    std::vector<BoundPredicate> bound;
    std::vector<VecFilter> filters;
    const Column* group_column = nullptr;
    std::unordered_map<uint32_t, size_t> group_of_code;
    std::vector<uint32_t> group_lookup;
    std::vector<const Column*> agg_columns;
    size_t first_slice = 0;
    size_t num_slices = 0;
  };
  auto bind_ctx = [&](size_t s) {
    GroupedCtx ctx;
    ctx.seg_index = s;
    const Segment& seg = segments[s];
    if (seg.run == nullptr) return ctx;
    ctx.bound = BindPredicates(compiled, *seg.run);
    ctx.group_column = &seg.run->column(*group_index);
    // Map this run's dictionary code -> group index for the IN list: a
    // dense lookup table indexed by code on the vectorized path, a hash
    // map on the scalar path. Both resolve duplicate group values
    // first-wins.
    if (options.vectorize) {
      ctx.filters = VectorizeFilters(ctx.bound);
      ctx.group_lookup =
          vec::BuildGroupLookup(*ctx.group_column, query.group_values);
    } else {
      for (size_t g = 0; g < query.group_values.size(); ++g) {
        const uint32_t code =
            ctx.group_column->CodeFor(query.group_values[g]);
        if (code != kInvalidCode) ctx.group_of_code.emplace(code, g);
      }
    }
    ctx.agg_columns.reserve(aggs.size());
    for (const CompiledAggregate& agg : aggs) {
      ctx.agg_columns.push_back(
          agg.column == SIZE_MAX ? nullptr : &seg.run->column(agg.column));
    }
    return ctx;
  };

  const bool finite = options.deadline.IsFinite();
  if (!options.ShouldParallelize(n)) {
    std::unique_ptr<vec::BatchScratch> scratch;
    if (options.vectorize && n > 0) {
      scratch = std::make_unique<vec::BatchScratch>();
    }
    for (size_t s = 0; s < segments.size(); ++s) {
      if (cached[s]) continue;
      const Segment& seg = segments[s];
      GroupedPartial* grid = &seg_partials[s];
      const GroupedCtx ctx = bind_ctx(s);
      for (size_t begin = 0; begin < seg.rows; begin += grain) {
        if (finite && options.deadline.Expired()) {
          return Status::Timeout("grouped scan cancelled at row " +
                                 std::to_string(seg.begin + begin) + "/" +
                                 std::to_string(n));
        }
        const size_t end = std::min(seg.rows, begin + grain);
        if (seg.run == nullptr) {
          MemGroupedScanRange(compiled, aggs, *group_index, group_of_value,
                              snapshot.memtable(), begin, end, grid);
        } else if (options.vectorize) {
          VecGroupedScanRange(ctx.filters, ctx.group_column->codes_raw(),
                              ctx.group_lookup, ctx.agg_columns, begin, end,
                              scratch.get(), grid);
        } else {
          ScalarGroupedScanRange(ctx.bound, ctx.group_column->codes(),
                                 ctx.group_of_code, ctx.agg_columns, begin,
                                 end, grid);
        }
      }
    }
  } else {
    std::vector<GroupedCtx> ctxs;
    std::vector<Slice> slices;
    for (size_t s = 0; s < segments.size(); ++s) {
      if (cached[s]) continue;
      GroupedCtx ctx = bind_ctx(s);
      ctx.first_slice = slices.size();
      for (size_t begin = 0; begin < segments[s].rows; begin += grain) {
        slices.push_back(
            {ctxs.size(), begin, std::min(segments[s].rows, begin + grain)});
      }
      ctx.num_slices = slices.size() - ctx.first_slice;
      ctxs.push_back(std::move(ctx));
    }
    // Per-slice replicas of the (group x aggregate) grid, merged
    // cell-wise slices-then-segments in order.
    std::vector<GroupedPartial> slice_partials(slices.size());
    for (auto& grid : slice_partials) grid = MakeGrid(num_groups, num_aggs);
    std::atomic<bool> cancelled{false};
    if (!slices.empty()) {
      ParallelFor(
          options.pool, slices.size(), 1,
          [&](size_t chunk, size_t sbegin, size_t send) {
            (void)chunk;
            for (size_t i = sbegin; i < send; ++i) {
              if (finite && options.deadline.Expired()) {
                cancelled.store(true, std::memory_order_relaxed);
                return;
              }
              const Slice& slice = slices[i];
              const GroupedCtx& ctx = ctxs[slice.ctx];
              const Segment& seg = segments[ctx.seg_index];
              GroupedPartial* grid = &slice_partials[i];
              if (seg.run == nullptr) {
                MemGroupedScanRange(compiled, aggs, *group_index,
                                    group_of_value, snapshot.memtable(),
                                    slice.begin, slice.end, grid);
              } else if (options.vectorize) {
                auto scratch = std::make_unique<vec::BatchScratch>();
                VecGroupedScanRange(ctx.filters,
                                    ctx.group_column->codes_raw(),
                                    ctx.group_lookup, ctx.agg_columns,
                                    slice.begin, slice.end, scratch.get(),
                                    grid);
              } else {
                ScalarGroupedScanRange(ctx.bound, ctx.group_column->codes(),
                                       ctx.group_of_code, ctx.agg_columns,
                                       slice.begin, slice.end, grid);
              }
            }
          });
    }
    if (cancelled.load(std::memory_order_relaxed)) {
      return Status::Timeout("parallel grouped scan cancelled (" +
                             std::to_string(n) + " rows)");
    }
    for (const GroupedCtx& ctx : ctxs) {
      GroupedPartial seg_total = MakeGrid(num_groups, num_aggs);
      for (size_t i = ctx.first_slice;
           i < ctx.first_slice + ctx.num_slices; ++i) {
        MergeGrids(slice_partials[i], &seg_total);
      }
      seg_partials[ctx.seg_index] = std::move(seg_total);
    }
  }

  GroupedPartial total = MakeGrid(num_groups, num_aggs);
  for (const GroupedPartial& partial : seg_partials) {
    MergeGrids(partial, &total);
  }
  if (options.cache != nullptr) {
    // Store only after the whole scan succeeded (see Execute).
    for (size_t s = 0; s < segments.size(); ++s) {
      if (segments[s].run == nullptr || cached[s]) continue;
      options.cache->StoreRun(table, segments[s].run->id(), query,
                              seg_partials[s]);
    }
  }
  return total;
}

Result<GroupByResult> Executor::ExecuteGrouped(
    const TableSnapshot& snapshot, const GroupByQuery& query,
    const ExecutorOptions& options) {
  MUVE_ASSIGN_OR_RETURN(GroupedPartial total,
                        ExecuteGroupedPartial(snapshot, query, options));
  return FinishGrouped(query, total, snapshot.num_rows());
}

Result<GroupByResult> Executor::ExecuteGrouped(
    const Table& table, const GroupByQuery& query,
    const ExecutorOptions& options) {
  return ExecuteGrouped(table.Snapshot(), query, options);
}

void Executor::MergePartial(const AggregatePartial& src,
                            AggregatePartial* dst) {
  MergeInto(src, dst);
}

void Executor::MergePartial(const GroupedPartial& src, GroupedPartial* dst) {
  MergeGrids(src, dst);
}

GroupedPartial Executor::MakeGroupedIdentity(const GroupByQuery& query) {
  return MakeGrid(query.group_values.size(), query.aggregates.size());
}

AggregateResult Executor::FinishAggregate(AggregateFunction fn,
                                          const AggregatePartial& partial) {
  return FinishPartial(fn, partial);
}

GroupByResult Executor::FinishGrouped(const GroupByQuery& query,
                                      const GroupedPartial& total,
                                      size_t rows_scanned) {
  GroupByResult out;
  out.rows_scanned = rows_scanned;
  const size_t num_groups = query.group_values.size();
  const size_t num_aggs = query.aggregates.size();
  out.cells.resize(num_groups);
  for (size_t g = 0; g < num_groups; ++g) {
    out.cells[g].reserve(num_aggs);
    for (size_t a = 0; a < num_aggs; ++a) {
      out.cells[g].push_back(
          FinishPartial(query.aggregates[a].function, total.cells[g][a]));
    }
  }
  return out;
}

double Executor::ScaleSampledValue(AggregateFunction fn, double value,
                                   double fraction) {
  if (fraction <= 0.0 || fraction >= 1.0) return value;
  switch (fn) {
    case AggregateFunction::kCount:
    case AggregateFunction::kSum:
      return value / fraction;
    case AggregateFunction::kAvg:
    case AggregateFunction::kMin:
    case AggregateFunction::kMax:
      return value;
  }
  return value;
}

}  // namespace muve::db
