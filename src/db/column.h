#ifndef MUVE_DB_COLUMN_H_
#define MUVE_DB_COLUMN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "db/value.h"

namespace muve::db {

/// Sentinel dictionary code meaning "value not present in dictionary".
inline constexpr uint32_t kInvalidCode = UINT32_MAX;

/// A typed, append-only column.
///
/// Numeric columns store raw values; string columns are dictionary
/// encoded: rows hold 32-bit codes into a per-column dictionary, which
/// makes equality/IN predicates single integer comparisons per row and
/// gives the planner the distinct-value vocabulary it feeds into the
/// phonetic index.
class Column {
 public:
  Column(std::string name, ValueType type)
      : name_(std::move(name)), type_(type) {}

  const std::string& name() const { return name_; }
  ValueType type() const { return type_; }

  size_t size() const {
    switch (type_) {
      case ValueType::kInt64:
        return int_data_.size();
      case ValueType::kDouble:
        return double_data_.size();
      case ValueType::kString:
        return codes_.size();
    }
    return 0;
  }

  /// Appends a value; must match the column type (int64 promotes to
  /// double for kDouble columns).
  Status Append(const Value& value);

  /// Value at `row` (decoded for string columns).
  Value Get(size_t row) const;

  // Typed access used by the executor's scan loops.
  const std::vector<int64_t>& int_data() const { return int_data_; }
  const std::vector<double>& double_data() const { return double_data_; }
  const std::vector<uint32_t>& codes() const { return codes_; }
  const std::vector<std::string>& dictionary() const { return dictionary_; }

  // Raw typed views for the vectorized kernels (src/db/vec/): one base
  // pointer per scan instead of a bounds-checked vector access per row.
  // The pointers are stable only while no Append runs (appends may
  // reallocate) — the single-writer contract documented on db::Table.
  const int64_t* int_raw() const { return int_data_.data(); }
  const double* double_raw() const { return double_data_.data(); }
  const uint32_t* codes_raw() const { return codes_.data(); }

  /// Dictionary size of a string column (0 for numeric columns).
  size_t dictionary_size() const { return dictionary_.size(); }

  /// Dictionary code for `text`, or kInvalidCode when absent. Only valid
  /// for string columns.
  uint32_t CodeFor(const std::string& text) const;

  /// Dense accept mask over this column's dictionary for an equality/IN
  /// predicate: mask[code] is 1 iff `code` is in `accepted`. Lets the
  /// vectorized filter kernels answer an arbitrarily long IN list with a
  /// single table load per row. Codes >= dictionary_size() (including
  /// kInvalidCode) are ignored. Only valid for string columns.
  std::vector<uint8_t> AcceptMask(
      const std::vector<uint32_t>& accepted) const;

  /// Numeric view of row `row` (int64 widened to double). Only valid for
  /// numeric columns.
  double NumericAt(size_t row) const {
    return type_ == ValueType::kInt64
               ? static_cast<double>(int_data_[row])
               : double_data_[row];
  }

  /// Number of distinct values (dictionary size for strings; computed and
  /// cached for numeric columns).
  size_t DistinctCount() const;

 private:
  std::string name_;
  ValueType type_;

  std::vector<int64_t> int_data_;
  std::vector<double> double_data_;

  std::vector<uint32_t> codes_;
  std::vector<std::string> dictionary_;
  std::unordered_map<std::string, uint32_t> dictionary_lookup_;

  mutable size_t cached_distinct_ = 0;
  mutable size_t cached_distinct_at_size_ = SIZE_MAX;
};

}  // namespace muve::db

#endif  // MUVE_DB_COLUMN_H_
