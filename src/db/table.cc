#include "db/table.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/strings.h"
#include "db/snapshot.h"

namespace muve::db {

namespace {

/// Process-wide id source; 0 is reserved as "no table".
uint64_t NextTableId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Memtable chunks sized well below the flush threshold keep a
/// huge-threshold table (e.g. a Clone oracle) from preallocating its
/// whole capacity up front.
size_t ChunkRowsFor(const TableOptions& options) {
  return std::max<size_t>(1, std::min<size_t>(options.flush_threshold, 4096));
}

}  // namespace

Table::Table(std::string name, std::vector<ColumnSpec> schema,
             TableOptions options)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      options_(options),
      id_(NextTableId()),
      mem_(std::make_shared<lsm::MemTable>(schema_.size(),
                                           ChunkRowsFor(options_))),
      stats_(schema_.size()) {}

Result<std::shared_ptr<Table>> Table::Create(
    std::string name, const std::vector<ColumnSpec>& schema,
    TableOptions options) {
  if (schema.empty()) {
    return Status::InvalidArgument("table '" + name + "' needs columns");
  }
  for (size_t i = 0; i < schema.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (EqualsIgnoreCase(schema[j].name, schema[i].name)) {
        return Status::InvalidArgument("duplicate column '" +
                                       schema[i].name + "'");
      }
    }
  }
  options.flush_threshold = std::max<size_t>(1, options.flush_threshold);
  options.target_runs = std::max<size_t>(1, options.target_runs);
  return std::shared_ptr<Table>(
      new Table(std::move(name), schema, options));
}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (values.size() != schema_.size()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  // Validate and normalize outside the lock; readers snapshotting
  // mid-append must never observe a partially validated row.
  std::vector<Value> row(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    const Value& value = values[i];
    switch (schema_[i].type) {
      case ValueType::kInt64:
        if (!value.is_int64()) {
          return Status::InvalidArgument("column '" + schema_[i].name +
                                         "' expects INT64");
        }
        row[i] = value;
        break;
      case ValueType::kDouble:
        if (!value.is_int64() && !value.is_double()) {
          return Status::InvalidArgument("column '" + schema_[i].name +
                                         "' expects DOUBLE");
        }
        row[i] = Value(value.AsDouble());
        break;
      case ValueType::kString:
        if (!value.is_string()) {
          return Status::InvalidArgument("column '" + schema_[i].name +
                                         "' expects STRING");
        }
        row[i] = value;
        break;
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  mem_->Append(row);
  for (size_t i = 0; i < row.size(); ++i) {
    ColumnStats& stats = stats_[i];
    switch (schema_[i].type) {
      case ValueType::kInt64:
        stats.int_seen.insert(row[i].AsInt64());
        break;
      case ValueType::kDouble:
        stats.double_seen.insert(row[i].AsDouble());
        break;
      case ValueType::kString:
        if (stats.string_seen.insert(row[i].AsString()).second) {
          stats.string_values.push_back(row[i].AsString());
        }
        break;
    }
  }
  num_rows_.fetch_add(1, std::memory_order_release);
  version_.fetch_add(1, std::memory_order_release);
  if (mem_->size() >= options_.flush_threshold) FlushLocked();
  return Status::OK();
}

TableSnapshot Table::Snapshot() const {
  TableSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot.table_ = shared_from_this();
  snapshot.version_ = version_.load(std::memory_order_relaxed);
  snapshot.runs_ = runs_;
  snapshot.mem_ = mem_;
  snapshot.mem_view_ = mem_->ViewOf(mem_->size());
  size_t rows = snapshot.mem_view_.rows;
  for (const auto& run : snapshot.runs_) rows += run->num_rows();
  snapshot.num_rows_ = rows;
  return snapshot;
}

Result<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (EqualsIgnoreCase(schema_[i].name, name)) return i;
  }
  return Status::NotFound("no column '" + name + "' in table '" + name_ +
                          "'");
}

std::vector<std::string> Table::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(schema_.size());
  for (const auto& spec : schema_) names.push_back(spec.name);
  return names;
}

std::vector<std::string> Table::ColumnNamesOfType(ValueType type) const {
  std::vector<std::string> names;
  for (const auto& spec : schema_) {
    if (spec.type == type) names.push_back(spec.name);
  }
  return names;
}

size_t Table::DistinctCount(size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const ColumnStats& stats = stats_[index];
  switch (schema_[index].type) {
    case ValueType::kInt64:
      return stats.int_seen.size();
    case ValueType::kDouble:
      return stats.double_seen.size();
    case ValueType::kString:
      return stats.string_values.size();
  }
  return 0;
}

std::vector<std::string> Table::StringValues(size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_[index].string_values;
}

std::vector<std::string> Table::StringValues(const std::string& name) const {
  auto index = ColumnIndex(name);
  if (!index.ok()) return {};
  return StringValues(*index);
}

Value Table::ValueAt(size_t row, size_t col) const {
  return Snapshot().ValueAt(row, col);
}

std::shared_ptr<Table> Table::Sample(double fraction) const {
  fraction = std::clamp(fraction, 0.0, 1.0);
  TableSnapshot snapshot = Snapshot();
  auto sampled = Table::Create(name_ + "_sample", schema_);
  // Creation from a valid schema cannot fail.
  std::shared_ptr<Table> out = *sampled;
  if (fraction <= 0.0 || snapshot.num_rows() == 0) return out;
  // Systematic sampling: take every k-th row. Deterministic, cheap, and
  // unbiased for the synthetic workloads (row order is random).
  const double stride = 1.0 / fraction;
  std::vector<Value> row(schema_.size());
  for (double position = 0.0;
       position < static_cast<double>(snapshot.num_rows());
       position += stride) {
    const size_t r = static_cast<size_t>(position);
    for (size_t c = 0; c < schema_.size(); ++c) {
      row[c] = snapshot.ValueAt(r, c);
    }
    Status st = out->AppendRow(row);
    (void)st;  // Types match the source schema by construction.
  }
  // The sample is complete: seal it into a columnar run so scans over it
  // take the vectorized (and cacheable) path.
  out->Flush();
  return out;
}

void Table::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (mem_->size() > 0) FlushLocked();
}

void Table::FlushLocked() {
  std::shared_ptr<lsm::MemTable> full = mem_;
  // Readers snapshotting between these two statements see either the
  // memtable rows or the new run, never both: both assignments happen
  // under mutex_, as does Snapshot().
  runs_.push_back(lsm::Run::Build(
      schema_, full->size(),
      [&full](size_t r, size_t c) { return full->At(r, c); }));
  mem_ = std::make_shared<lsm::MemTable>(schema_.size(),
                                         ChunkRowsFor(options_));
  MaybeScheduleCompactionLocked();
}

void Table::Compact() {
  std::lock_guard<std::mutex> lock(compaction_mutex_);
  CompactionRound();
}

void Table::EnableBackgroundCompaction(ThreadPool* pool) {
  std::lock_guard<std::mutex> lock(mutex_);
  compaction_pool_ = pool;
  if (pool != nullptr) MaybeScheduleCompactionLocked();
}

void Table::MaybeScheduleCompactionLocked() {
  if (compaction_pool_ == nullptr || compaction_scheduled_ ||
      runs_.size() <= options_.max_runs) {
    return;
  }
  compaction_scheduled_ = true;
  std::weak_ptr<Table> weak = weak_from_this();
  try {
    compaction_pool_->Submit([weak] {
      if (std::shared_ptr<Table> table = weak.lock()) {
        table->BackgroundCompact();
      }
    });
  } catch (...) {
    // Pool already shut down; skip the round.
    compaction_scheduled_ = false;
  }
}

void Table::BackgroundCompact() {
  {
    std::lock_guard<std::mutex> lock(compaction_mutex_);
    CompactionRound();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  compaction_scheduled_ = false;
  // Flushes during the round may have pushed the run count back over the
  // limit.
  MaybeScheduleCompactionLocked();
}

void Table::CompactionRound() {
  // Caller holds compaction_mutex_: one round at a time, so the planned
  // window positions stay valid (flushes only append past the end).
  std::vector<std::shared_ptr<const lsm::Run>> runs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    runs = runs_;
  }
  std::vector<size_t> sizes;
  sizes.reserve(runs.size());
  for (const auto& run : runs) sizes.push_back(run->num_rows());
  lsm::CompactionPolicy policy;
  policy.target_runs = options_.target_runs;
  policy.max_merged_rows = options_.max_compacted_rows;
  const std::vector<lsm::CompactionWindow> windows =
      lsm::PlanCompaction(sizes, policy);
  if (windows.empty()) return;

  // Build the merged runs outside any lock — scans proceed against the
  // old run set (and snapshots pin it) while we copy.
  std::vector<std::shared_ptr<const lsm::Run>> merged;
  merged.reserve(windows.size());
  for (const lsm::CompactionWindow& window : windows) {
    size_t total = 0;
    for (size_t i = window.begin; i < window.end; ++i) {
      total += runs[i]->num_rows();
    }
    merged.push_back(lsm::Run::Build(
        schema_, total, [&runs, &window](size_t r, size_t c) {
          size_t i = window.begin;
          while (r >= runs[i]->num_rows()) {
            r -= runs[i]->num_rows();
            ++i;
          }
          return runs[i]->column(c).Get(r);
        }));
  }

  std::vector<uint64_t> retired;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Install back-to-front so earlier window positions stay valid while
    // later ones shrink the vector.
    for (size_t w = windows.size(); w-- > 0;) {
      const lsm::CompactionWindow& window = windows[w];
      for (size_t i = window.begin; i < window.end; ++i) {
        retired.push_back(runs_[i]->id());
      }
      runs_.erase(runs_.begin() + static_cast<ptrdiff_t>(window.begin),
                  runs_.begin() + static_cast<ptrdiff_t>(window.end));
      runs_.insert(runs_.begin() + static_cast<ptrdiff_t>(window.begin),
                   merged[w]);
    }
    constexpr size_t kRetiredLogCap = 1024;
    for (const uint64_t id : retired) retired_log_.push_back(id);
    if (retired_log_.size() > kRetiredLogCap) {
      const size_t drop = retired_log_.size() - kRetiredLogCap;
      retired_log_.erase(retired_log_.begin(),
                         retired_log_.begin() + static_cast<ptrdiff_t>(drop));
      retired_log_base_ += drop;
    }
    retired_seq_.fetch_add(retired.size(), std::memory_order_release);
  }
}

size_t Table::num_runs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return runs_.size();
}

size_t Table::memtable_rows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return mem_->size();
}

bool Table::RetiredRunsSince(uint64_t since,
                             std::vector<uint64_t>* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t seq = retired_seq_.load(std::memory_order_relaxed);
  if (since >= seq) return true;
  if (since < retired_log_base_) return false;  // History trimmed.
  for (uint64_t s = since; s < seq; ++s) {
    out->push_back(retired_log_[s - retired_log_base_]);
  }
  return true;
}

}  // namespace muve::db
