#include "db/table.h"

#include <algorithm>
#include <atomic>

#include "common/strings.h"

namespace muve::db {

namespace {

/// Process-wide id source; 0 is reserved as "no table".
uint64_t NextTableId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Table::Table(std::string name, std::vector<std::unique_ptr<Column>> columns)
    : name_(std::move(name)),
      columns_(std::move(columns)),
      id_(NextTableId()) {}

Result<std::shared_ptr<Table>> Table::Create(
    std::string name, const std::vector<ColumnSpec>& schema) {
  if (schema.empty()) {
    return Status::InvalidArgument("table '" + name + "' needs columns");
  }
  std::vector<std::unique_ptr<Column>> columns;
  columns.reserve(schema.size());
  for (const ColumnSpec& spec : schema) {
    for (const auto& existing : columns) {
      if (EqualsIgnoreCase(existing->name(), spec.name)) {
        return Status::InvalidArgument("duplicate column '" + spec.name +
                                       "'");
      }
    }
    columns.push_back(std::make_unique<Column>(spec.name, spec.type));
  }
  return std::shared_ptr<Table>(
      new Table(std::move(name), std::move(columns)));
}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  for (size_t i = 0; i < values.size(); ++i) {
    MUVE_RETURN_NOT_OK(columns_[i]->Append(values[i]));
  }
  ++num_rows_;
  ++version_;
  return Status::OK();
}

const Column* Table::FindColumn(const std::string& name) const {
  for (const auto& column : columns_) {
    if (EqualsIgnoreCase(column->name(), name)) return column.get();
  }
  return nullptr;
}

Result<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i]->name(), name)) return i;
  }
  return Status::NotFound("no column '" + name + "' in table '" + name_ +
                          "'");
}

std::vector<std::string> Table::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const auto& column : columns_) names.push_back(column->name());
  return names;
}

std::vector<std::string> Table::ColumnNamesOfType(ValueType type) const {
  std::vector<std::string> names;
  for (const auto& column : columns_) {
    if (column->type() == type) names.push_back(column->name());
  }
  return names;
}

std::shared_ptr<Table> Table::Sample(double fraction) const {
  fraction = std::clamp(fraction, 0.0, 1.0);
  std::vector<ColumnSpec> schema;
  schema.reserve(columns_.size());
  for (const auto& column : columns_) {
    schema.push_back({column->name(), column->type()});
  }
  auto sampled = Table::Create(name_ + "_sample", schema);
  // Creation from a valid schema cannot fail.
  std::shared_ptr<Table> out = *sampled;
  if (fraction <= 0.0 || num_rows_ == 0) return out;
  // Systematic sampling: take every k-th row. Deterministic, cheap, and
  // unbiased for the synthetic workloads (row order is random).
  const double stride = 1.0 / fraction;
  std::vector<Value> row(columns_.size());
  for (double position = 0.0; position < static_cast<double>(num_rows_);
       position += stride) {
    const size_t r = static_cast<size_t>(position);
    for (size_t c = 0; c < columns_.size(); ++c) {
      row[c] = columns_[c]->Get(r);
    }
    Status st = out->AppendRow(row);
    (void)st;  // Types match the source schema by construction.
  }
  return out;
}

}  // namespace muve::db
