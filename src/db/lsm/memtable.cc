#include "db/lsm/memtable.h"

#include <algorithm>

namespace muve::db::lsm {

MemTable::MemTable(size_t num_columns, size_t chunk_rows)
    : num_columns_(std::max<size_t>(1, num_columns)),
      chunk_rows_(std::max<size_t>(1, chunk_rows)) {}

void MemTable::Append(const std::vector<Value>& row) {
  const size_t chunk = size_ / chunk_rows_;
  if (chunk == chunks_.size()) {
    chunks_.push_back(
        std::make_unique<Value[]>(chunk_rows_ * num_columns_));
  }
  Value* cells = chunks_[chunk].get() + (size_ % chunk_rows_) * num_columns_;
  for (size_t c = 0; c < num_columns_; ++c) cells[c] = row[c];
  ++size_;
}

MemTable::View MemTable::ViewOf(size_t rows) const {
  View view;
  view.chunk_rows = chunk_rows_;
  view.num_columns = num_columns_;
  view.rows = std::min(rows, size_);
  const size_t chunks = (view.rows + chunk_rows_ - 1) / chunk_rows_;
  view.chunks.reserve(chunks);
  for (size_t i = 0; i < chunks; ++i) {
    view.chunks.push_back(chunks_[i].get());
  }
  return view;
}

}  // namespace muve::db::lsm
