#ifndef MUVE_DB_LSM_COMPACTION_H_
#define MUVE_DB_LSM_COMPACTION_H_

#include <cstddef>
#include <vector>

namespace muve::db::lsm {

/// Limits for one compaction round.
struct CompactionPolicy {
  /// Compact until at most this many runs remain (or no merge is legal).
  size_t target_runs = 4;
  /// Never build a merged run with more rows than this: bounds the work
  /// of any single compaction and prevents quadratic rewrite churn under
  /// sustained ingest (old big runs stop participating once they reach
  /// the cap).
  size_t max_merged_rows = 1 << 20;
};

/// One planned merge: replace original runs [begin, end) with their
/// ordered concatenation.
struct CompactionWindow {
  size_t begin = 0;
  size_t end = 0;
};

/// Plans a size-tiered, order-preserving compaction over runs with the
/// given row counts: repeatedly merge the adjacent pair with the fewest
/// combined rows (subject to `max_merged_rows`) until `target_runs`
/// remain or nothing can merge. Deterministic in its inputs. Returns
/// non-overlapping windows in ascending order; windows of width one are
/// never emitted.
std::vector<CompactionWindow> PlanCompaction(
    const std::vector<size_t>& run_rows, const CompactionPolicy& policy);

}  // namespace muve::db::lsm

#endif  // MUVE_DB_LSM_COMPACTION_H_
