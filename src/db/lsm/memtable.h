#ifndef MUVE_DB_LSM_MEMTABLE_H_
#define MUVE_DB_LSM_MEMTABLE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "db/value.h"

namespace muve::db::lsm {

/// The row-oriented write buffer of a versioned table: AppendRow lands
/// here, and the table seals the memtable into an immutable columnar Run
/// once it reaches the flush threshold.
///
/// Storage is a list of fixed-size row chunks. Chunks are preallocated
/// and never reallocated, so a cell written once is never moved — that
/// is what makes the snapshot protocol safe: a snapshot freezes a row
/// count under the table mutex and copies the chunk pointers into a
/// View; concurrent appends only touch rows (and possibly chunks) past
/// the frozen prefix, which the View never reads. The table mutex
/// ordering the append and the snapshot provides the happens-before
/// edge for the frozen prefix.
///
/// Writer calls (Append) are externally serialized by the owning table.
class MemTable {
 public:
  MemTable(size_t num_columns, size_t chunk_rows);

  size_t num_columns() const { return num_columns_; }
  size_t size() const { return size_; }

  /// Appends one row of `num_columns()` values, already validated and
  /// normalized (int widened to double for DOUBLE columns) by the table.
  void Append(const std::vector<Value>& row);

  /// Cell access for the writer side (flush) or under the table mutex.
  const Value& At(size_t row, size_t col) const {
    return chunks_[row / chunk_rows_][(row % chunk_rows_) * num_columns_ +
                                      col];
  }

  /// An immutable view of the first `rows` rows, safe to read while the
  /// writer keeps appending past them. Copyable and cheap (one pointer
  /// per chunk).
  struct View {
    std::vector<const Value*> chunks;
    size_t chunk_rows = 0;
    size_t num_columns = 0;
    size_t rows = 0;

    const Value& At(size_t row, size_t col) const {
      return chunks[row / chunk_rows][(row % chunk_rows) * num_columns +
                                      col];
    }
  };

  /// Freezes the first `rows` rows (callers pass a row count they read
  /// under the table mutex).
  View ViewOf(size_t rows) const;

 private:
  size_t num_columns_;
  size_t chunk_rows_;
  size_t size_ = 0;
  std::vector<std::unique_ptr<Value[]>> chunks_;
};

}  // namespace muve::db::lsm

#endif  // MUVE_DB_LSM_MEMTABLE_H_
