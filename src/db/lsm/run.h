#ifndef MUVE_DB_LSM_RUN_H_
#define MUVE_DB_LSM_RUN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "db/column.h"
#include "db/schema.h"
#include "db/value.h"

namespace muve::db::lsm {

/// An immutable, columnar storage segment of a versioned table: the unit
/// of flushing, compaction, snapshot pinning, and run-granular result
/// caching. Rows keep their append order (a run is "sorted" by implicit
/// row id), so concatenating runs in run order reproduces the exact
/// logical row sequence of the table — scans and their floating-point
/// accumulation order are independent of how rows are packed into runs.
///
/// Each run has a process-unique id. Result caches key per-run partial
/// aggregates on (table id, run id); because a run's contents never
/// change, those partials are immutable facts — retiring a run's cache
/// entries after compaction is capacity hygiene, not a correctness
/// requirement.
///
/// String columns are dictionary-encoded per run (codes are meaningless
/// across runs); predicates are re-bound to each run's dictionary at
/// scan time.
class Run {
 public:
  /// Builds a run over `schema` from `rows` values produced by
  /// `cell(row, col)` for row in [0, rows). Values must already match
  /// the schema (the table validates on append).
  static std::shared_ptr<const Run> Build(
      const std::vector<ColumnSpec>& schema, size_t rows,
      const std::function<Value(size_t, size_t)>& cell);

  /// Process-unique run id (never 0).
  uint64_t id() const { return id_; }

  size_t num_rows() const { return rows_; }
  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t index) const { return *columns_[index]; }

 private:
  Run(uint64_t id, std::vector<std::unique_ptr<Column>> columns,
      size_t rows)
      : id_(id), columns_(std::move(columns)), rows_(rows) {}

  uint64_t id_ = 0;
  std::vector<std::unique_ptr<Column>> columns_;
  size_t rows_ = 0;
};

}  // namespace muve::db::lsm

#endif  // MUVE_DB_LSM_RUN_H_
