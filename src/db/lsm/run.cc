#include "db/lsm/run.h"

#include <atomic>
#include <utility>

namespace muve::db::lsm {

namespace {

/// Process-wide run id source; 0 is reserved as "no run".
uint64_t NextRunId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::shared_ptr<const Run> Run::Build(
    const std::vector<ColumnSpec>& schema, size_t rows,
    const std::function<Value(size_t, size_t)>& cell) {
  std::vector<std::unique_ptr<Column>> columns;
  columns.reserve(schema.size());
  for (const ColumnSpec& spec : schema) {
    columns.push_back(std::make_unique<Column>(spec.name, spec.type));
  }
  // Row-order append keeps each per-run dictionary in first-appearance
  // order of the run's own row sequence, which makes a layout-preserving
  // clone (TableSnapshot::Clone) reproduce runs bit-for-bit.
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < columns.size(); ++c) {
      Status st = columns[c]->Append(cell(r, c));
      (void)st;  // Values were validated against the schema on AppendRow.
    }
  }
  return std::shared_ptr<const Run>(
      new Run(NextRunId(), std::move(columns), rows));
}

}  // namespace muve::db::lsm
