#include "db/lsm/compaction.h"

#include <algorithm>

namespace muve::db::lsm {

std::vector<CompactionWindow> PlanCompaction(
    const std::vector<size_t>& run_rows, const CompactionPolicy& policy) {
  // Working list of (window over original indices, combined rows).
  struct Piece {
    size_t begin;
    size_t end;
    size_t rows;
  };
  std::vector<Piece> pieces;
  pieces.reserve(run_rows.size());
  for (size_t i = 0; i < run_rows.size(); ++i) {
    pieces.push_back({i, i + 1, run_rows[i]});
  }
  const size_t target = std::max<size_t>(1, policy.target_runs);
  while (pieces.size() > target) {
    // Cheapest adjacent merge under the size cap; ties break to the
    // leftmost pair so the plan is deterministic.
    size_t best = pieces.size();
    size_t best_rows = policy.max_merged_rows + 1;
    for (size_t i = 0; i + 1 < pieces.size(); ++i) {
      const size_t combined = pieces[i].rows + pieces[i + 1].rows;
      if (combined <= policy.max_merged_rows && combined < best_rows) {
        best = i;
        best_rows = combined;
      }
    }
    if (best == pieces.size()) break;  // Every merge would exceed the cap.
    pieces[best].end = pieces[best + 1].end;
    pieces[best].rows = best_rows;
    pieces.erase(pieces.begin() + static_cast<ptrdiff_t>(best) + 1);
  }
  std::vector<CompactionWindow> windows;
  for (const Piece& piece : pieces) {
    if (piece.end - piece.begin >= 2) {
      windows.push_back({piece.begin, piece.end});
    }
  }
  return windows;
}

}  // namespace muve::db::lsm
