#include "db/column.h"

#include <algorithm>
#include <unordered_set>

namespace muve::db {

Status Column::Append(const Value& value) {
  switch (type_) {
    case ValueType::kInt64:
      if (!value.is_int64()) {
        return Status::InvalidArgument("column '" + name_ +
                                       "' expects INT64");
      }
      int_data_.push_back(value.AsInt64());
      return Status::OK();
    case ValueType::kDouble:
      if (!value.is_int64() && !value.is_double()) {
        return Status::InvalidArgument("column '" + name_ +
                                       "' expects DOUBLE");
      }
      double_data_.push_back(value.AsDouble());
      return Status::OK();
    case ValueType::kString: {
      if (!value.is_string()) {
        return Status::InvalidArgument("column '" + name_ +
                                       "' expects STRING");
      }
      const std::string& text = value.AsString();
      auto it = dictionary_lookup_.find(text);
      uint32_t code;
      if (it == dictionary_lookup_.end()) {
        code = static_cast<uint32_t>(dictionary_.size());
        dictionary_.push_back(text);
        dictionary_lookup_.emplace(text, code);
      } else {
        code = it->second;
      }
      codes_.push_back(code);
      return Status::OK();
    }
  }
  return Status::Internal("unknown column type");
}

Value Column::Get(size_t row) const {
  switch (type_) {
    case ValueType::kInt64:
      return Value(int_data_[row]);
    case ValueType::kDouble:
      return Value(double_data_[row]);
    case ValueType::kString:
      return Value(dictionary_[codes_[row]]);
  }
  return Value();
}

uint32_t Column::CodeFor(const std::string& text) const {
  auto it = dictionary_lookup_.find(text);
  return it == dictionary_lookup_.end() ? kInvalidCode : it->second;
}

std::vector<uint8_t> Column::AcceptMask(
    const std::vector<uint32_t>& accepted) const {
  std::vector<uint8_t> mask(dictionary_.size(), 0);
  for (const uint32_t code : accepted) {
    if (code < mask.size()) mask[code] = 1;
  }
  return mask;
}

size_t Column::DistinctCount() const {
  if (type_ == ValueType::kString) return dictionary_.size();
  if (cached_distinct_at_size_ == size()) return cached_distinct_;
  std::unordered_set<int64_t> ints;
  std::unordered_set<double> doubles;
  if (type_ == ValueType::kInt64) {
    ints.insert(int_data_.begin(), int_data_.end());
    cached_distinct_ = ints.size();
  } else {
    doubles.insert(double_data_.begin(), double_data_.end());
    cached_distinct_ = doubles.size();
  }
  cached_distinct_at_size_ = size();
  return cached_distinct_;
}

}  // namespace muve::db
