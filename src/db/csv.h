#ifndef MUVE_DB_CSV_H_
#define MUVE_DB_CSV_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "db/table.h"

namespace muve::db {

/// Writes `table` as RFC-4180-style CSV (header row, quoted fields when
/// they contain separators/quotes/newlines).
Status WriteCsv(const Table& table, const std::string& path);

/// Loads a CSV file with a header row into a new table. Column types are
/// inferred from the first data row: integers -> INT64, other numbers ->
/// DOUBLE, everything else -> STRING; later rows must parse accordingly
/// (numeric parse failures abort the load).
Result<std::shared_ptr<Table>> ReadCsv(const std::string& table_name,
                                       const std::string& path);

}  // namespace muve::db

#endif  // MUVE_DB_CSV_H_
