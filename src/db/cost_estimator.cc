#include "db/cost_estimator.h"

#include <algorithm>

namespace muve::db {

double CostEstimator::ScanCost(size_t rows, size_t num_predicates,
                               size_t num_aggregates) const {
  const double pages =
      static_cast<double>(rows + params_.rows_per_page - 1) /
      static_cast<double>(params_.rows_per_page);
  const double per_row =
      params_.cpu_tuple_cost +
      params_.cpu_operator_cost *
          static_cast<double>(num_predicates + num_aggregates);
  return params_.startup_cost + pages * params_.seq_page_cost +
         static_cast<double>(rows) * per_row;
}

Result<double> CostEstimator::PredicateSelectivity(
    const Relation& table, const Predicate& predicate) const {
  auto index = table.ColumnIndex(predicate.column);
  if (!index.ok()) {
    return Status::NotFound("predicate column '" + predicate.column +
                            "' not in table");
  }
  const size_t distinct = std::max<size_t>(1, table.DistinctCount(*index));
  // Uniform-distribution assumption, like Postgres without MCV stats:
  // each accepted constant selects 1/ndv of the rows.
  const double per_value = 1.0 / static_cast<double>(distinct);
  const double selectivity =
      per_value * static_cast<double>(predicate.values.size());
  return std::min(1.0, selectivity);
}

Result<CostEstimate> CostEstimator::Estimate(
    const Relation& table, const AggregateQuery& query) const {
  CostEstimate out;
  out.selectivity = 1.0;
  for (const Predicate& predicate : query.predicates) {
    MUVE_ASSIGN_OR_RETURN(double sel,
                          PredicateSelectivity(table, predicate));
    out.selectivity *= sel;
  }
  out.output_rows = 1.0;  // Single aggregate row.
  out.total_cost = ScanCost(table.num_rows(), query.predicates.size(),
                            /*num_aggregates=*/1);
  return out;
}

Result<CostEstimate> CostEstimator::EstimateGrouped(
    const Relation& table, const GroupByQuery& query) const {
  CostEstimate out;
  out.selectivity = 1.0;
  for (const Predicate& predicate : query.shared_predicates) {
    MUVE_ASSIGN_OR_RETURN(double sel,
                          PredicateSelectivity(table, predicate));
    out.selectivity *= sel;
  }
  // The IN list on the group column restricts rows as well.
  Predicate in_list;
  in_list.column = query.group_column;
  in_list.op = PredicateOp::kIn;
  for (const std::string& v : query.group_values) {
    in_list.values.emplace_back(v);
  }
  if (!in_list.values.empty()) {
    MUVE_ASSIGN_OR_RETURN(double sel, PredicateSelectivity(table, in_list));
    out.selectivity *= sel;
  }
  out.output_rows = static_cast<double>(query.group_values.size());
  // One pass over the data; per-row work includes the group lookup
  // (counted as one extra predicate) and all aggregates.
  out.total_cost =
      ScanCost(table.num_rows(), query.shared_predicates.size() + 1,
               query.aggregates.size());
  return out;
}

}  // namespace muve::db
