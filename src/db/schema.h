#ifndef MUVE_DB_SCHEMA_H_
#define MUVE_DB_SCHEMA_H_

#include <string>

#include "db/value.h"

namespace muve::db {

/// Name + type of a column, used to declare table schemas. Lives in its
/// own header so the storage layer (db/lsm/) and the table front end can
/// both name it without a dependency cycle.
struct ColumnSpec {
  std::string name;
  ValueType type;
};

}  // namespace muve::db

#endif  // MUVE_DB_SCHEMA_H_
