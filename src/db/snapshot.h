#ifndef MUVE_DB_SNAPSHOT_H_
#define MUVE_DB_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "db/lsm/memtable.h"
#include "db/lsm/run.h"
#include "db/schema.h"
#include "db/table.h"
#include "db/value.h"

namespace muve::db {

/// An immutable, consistent view of one table version: the run set and
/// the memtable row count frozen at `Table::Snapshot()` time. Everything
/// a scan touches is pinned by shared ownership — the runs (compaction
/// may retire them from the live table, the pinned objects stay valid),
/// the memtable chunks (the writer appends only past the frozen
/// prefix), and the table itself (a snapshot outliving its table keeps
/// reads well-defined).
///
/// Copyable and cheap to copy (shared pointers). A default-constructed
/// snapshot is empty (no table, zero rows).
class TableSnapshot {
 public:
  TableSnapshot() = default;

  bool valid() const { return table_ != nullptr; }

  /// The snapshotted table (schema/name/id access). Valid only when
  /// `valid()`.
  const Table& table() const { return *table_; }
  const std::shared_ptr<const Table>& table_ptr() const { return table_; }

  /// The table version this snapshot froze.
  uint64_t version() const { return version_; }

  /// Rows visible to this snapshot.
  size_t num_rows() const { return num_rows_; }

  size_t num_columns() const {
    return table_ == nullptr ? 0 : table_->num_columns();
  }

  /// The pinned runs, in logical row order.
  const std::vector<std::shared_ptr<const lsm::Run>>& runs() const {
    return runs_;
  }

  /// The frozen memtable prefix (zero rows when the memtable was empty
  /// at snapshot time).
  const lsm::MemTable::View& memtable() const { return mem_view_; }

  /// Value at (row, col), row in [0, num_rows()).
  Value ValueAt(size_t row, size_t col) const;

  /// A layout-preserving deep copy: a new independent table whose run
  /// boundaries, run contents (including per-run dictionary order), and
  /// memtable prefix replicate this snapshot exactly, so scans over the
  /// clone are bit-for-bit identical to scans over the snapshot. The
  /// differential suites use this as the frozen oracle for reads racing
  /// writes; it also serves as a fork/backup primitive.
  Result<std::shared_ptr<Table>> Clone(const std::string& name) const;

 private:
  friend class Table;

  std::shared_ptr<const Table> table_;
  uint64_t version_ = 0;
  size_t num_rows_ = 0;
  std::vector<std::shared_ptr<const lsm::Run>> runs_;
  /// Keeps the viewed chunks alive; reads go through `mem_view_`.
  std::shared_ptr<const lsm::MemTable> mem_;
  lsm::MemTable::View mem_view_;
};

}  // namespace muve::db

#endif  // MUVE_DB_SNAPSHOT_H_
