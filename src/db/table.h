#ifndef MUVE_DB_TABLE_H_
#define MUVE_DB_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "db/lsm/compaction.h"
#include "db/lsm/memtable.h"
#include "db/lsm/run.h"
#include "db/relation.h"
#include "db/schema.h"
#include "db/value.h"

namespace muve::db {

class TableSnapshot;

/// Storage-layer knobs of a versioned table.
struct TableOptions {
  /// Rows the memtable absorbs before it is sealed into an immutable
  /// columnar run. A multiple of the vectorized batch size keeps run
  /// boundaries aligned with batch boundaries on big scans.
  size_t flush_threshold = 4096;
  /// Background compaction is scheduled once the run count exceeds this
  /// (only when a compaction pool is attached).
  size_t max_runs = 8;
  /// One compaction round merges adjacent runs down to this many.
  size_t target_runs = 4;
  /// Cap on rows of any single merged run (see lsm::CompactionPolicy).
  size_t max_compacted_rows = 1 << 20;
};

/// An in-memory, versioned, single relation with LSM-flavoured storage.
/// MUVE queries a single table per voice query (paper §3), so the engine
/// is a single-table engine with no join support.
///
/// Layout: appends land in a row-oriented memtable; at
/// `TableOptions::flush_threshold` rows the memtable is sealed into an
/// immutable columnar `lsm::Run` and a fresh memtable starts. Background
/// compaction (when enabled) concatenates adjacent runs into bigger
/// ones. Run order preserves append order, so the logical row sequence —
/// and every scan's accumulation order — is independent of the physical
/// run layout.
///
/// Concurrency contract (single writer, concurrent readers): one thread
/// at a time may call AppendRow, while any number of threads read
/// through snapshots. `Snapshot()` returns an immutable view — the
/// pinned run set plus a frozen memtable prefix — so an in-flight scan,
/// request, or serving session executes against one consistent version
/// while the writer proceeds. Snapshots also pin retired runs (and the
/// table itself) alive until the last reader drops them.
class Table : public Relation, public std::enable_shared_from_this<Table> {
 public:
  /// Creates a table with the given schema. Column names must be unique
  /// (case insensitive).
  static Result<std::shared_ptr<Table>> Create(
      std::string name, const std::vector<ColumnSpec>& schema,
      TableOptions options = {});

  const std::string& name() const override { return name_; }
  size_t num_columns() const override { return schema_.size(); }

  /// Total rows appended so far. Under concurrent ingest this is a
  /// moving target — scans read a snapshot's row count instead.
  size_t num_rows() const override {
    return num_rows_.load(std::memory_order_acquire);
  }

  /// Process-unique identity of this table object, assigned at creation.
  /// Result caches key on (id, run id) so a `Sample()` copy or an
  /// identically named table can never alias another table's entries.
  uint64_t id() const override { return id_; }

  /// Content version: bumped by every successful AppendRow. Flushes and
  /// compactions reorganize storage without changing contents, so they
  /// do not bump it.
  uint64_t version() const override {
    return version_.load(std::memory_order_acquire);
  }

  /// Appends one row; `values` must match the schema arity and types
  /// (int64 promotes to double for DOUBLE columns). Bumps `version()`.
  /// Single writer: concurrent AppendRow calls must be serialized by the
  /// caller; readers never need to coordinate with the writer.
  Status AppendRow(const std::vector<Value>& values);

  /// An immutable, consistent view of the current contents: the run set
  /// and the memtable prefix at this instant, pinned against flushes,
  /// compactions, and table destruction for the snapshot's lifetime.
  TableSnapshot Snapshot() const;

  // --- Schema access -------------------------------------------------

  const std::vector<ColumnSpec>& schema() const override { return schema_; }
  const ColumnSpec& spec(size_t index) const override {
    return schema_[index];
  }

  /// Index of a column by name (case insensitive).
  Result<size_t> ColumnIndex(const std::string& name) const override;

  /// All column names, in schema order.
  std::vector<std::string> ColumnNames() const override;

  /// Names of columns with the given type.
  std::vector<std::string> ColumnNamesOfType(ValueType type) const override;

  // --- Table statistics ----------------------------------------------

  /// Number of distinct values appended to column `index`, maintained
  /// incrementally on append.
  size_t DistinctCount(size_t index) const override;

  /// Distinct values of a string column in first-appearance order (the
  /// vocabulary the phonetic index and workload generators consume).
  /// Empty for numeric columns.
  std::vector<std::string> StringValues(size_t index) const override;

  /// As above by (case-insensitive) column name; empty when the column
  /// does not exist.
  std::vector<std::string> StringValues(const std::string& name) const override;

  /// Value at (row, col) of the current contents. Convenience for tests
  /// and serialization; scans use snapshots.
  Value ValueAt(size_t row, size_t col) const;

  /// Builds a new table containing a deterministic row sample of
  /// approximately `fraction` of this table (every k-th row of a
  /// snapshot), used for approximate query processing and data-size
  /// scaling experiments.
  std::shared_ptr<Table> Sample(double fraction) const;

  // --- LSM storage controls ------------------------------------------

  const TableOptions& options() const { return options_; }

  /// Seals the current memtable into a run now (no-op when empty).
  void Flush();

  /// Synchronous compaction down to `TableOptions::target_runs`.
  void Compact();

  /// Attaches the worker pool that background compaction rounds are
  /// scheduled on: once the run count exceeds `TableOptions::max_runs`
  /// after a flush, one compaction task is submitted (never more than
  /// one in flight). The pool must outlive the table or be shut down
  /// first — a task finding the pool stopped simply skips the round.
  /// Pass nullptr to stop scheduling.
  void EnableBackgroundCompaction(ThreadPool* pool);

  size_t num_runs() const;
  size_t memtable_rows() const;

  // --- Retired-run feed (run-granular cache invalidation) -------------

  /// Total runs retired by compaction so far. Caches remember the last
  /// sequence they swept and use it as the cheap "anything new?" probe.
  uint64_t retired_seq() const {
    return retired_seq_.load(std::memory_order_acquire);
  }

  /// Appends the ids of runs retired after sequence `since` (0-based:
  /// `since` == retired_seq() yields nothing) to `out`. Returns false
  /// when that history was already trimmed from the bounded log — the
  /// caller must fall back to sweeping all of its entries for this
  /// table.
  bool RetiredRunsSince(uint64_t since, std::vector<uint64_t>* out) const;

 private:
  friend class TableSnapshot;

  Table(std::string name, std::vector<ColumnSpec> schema,
        TableOptions options);

  /// Seals the memtable into a run. Caller holds `mutex_`.
  void FlushLocked();

  /// Submits one background compaction task if warranted. Caller holds
  /// `mutex_`.
  void MaybeScheduleCompactionLocked();

  /// One full compaction round (plan, build merged runs, install).
  void CompactionRound();

  /// Entry point of the scheduled background task.
  void BackgroundCompact();

  /// Per-column incremental distinct-value tracking. Guarded by mutex_.
  struct ColumnStats {
    std::vector<std::string> string_values;  ///< First-appearance order.
    std::unordered_set<std::string> string_seen;
    std::unordered_set<int64_t> int_seen;
    std::unordered_set<double> double_seen;
  };

  std::string name_;
  std::vector<ColumnSpec> schema_;
  TableOptions options_;
  uint64_t id_ = 0;
  std::atomic<size_t> num_rows_{0};
  std::atomic<uint64_t> version_{0};

  /// Guards the storage state below (runs, memtable, stats, retirement
  /// log, compaction scheduling flag).
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<const lsm::Run>> runs_;
  std::shared_ptr<lsm::MemTable> mem_;
  std::vector<ColumnStats> stats_;

  /// Bounded append-only log of retired run ids. `retired_seq_` counts
  /// all retirements ever; the log keeps the most recent ones, starting
  /// at sequence `retired_log_base_`.
  std::vector<uint64_t> retired_log_;
  uint64_t retired_log_base_ = 0;
  std::atomic<uint64_t> retired_seq_{0};

  ThreadPool* compaction_pool_ = nullptr;
  bool compaction_scheduled_ = false;
  /// Serializes compaction rounds (manual and background).
  std::mutex compaction_mutex_;
};

}  // namespace muve::db

#endif  // MUVE_DB_TABLE_H_
