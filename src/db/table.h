#ifndef MUVE_DB_TABLE_H_
#define MUVE_DB_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "db/column.h"
#include "db/value.h"

namespace muve::db {

/// Name + type of a column, used to declare table schemas.
struct ColumnSpec {
  std::string name;
  ValueType type;
};

/// An in-memory, columnar, single relation. MUVE queries a single table
/// per voice query (paper §3), so the engine is a single-table engine
/// with no join support.
///
/// Concurrency contract (single writer, no write/scan overlap): scans —
/// scalar and vectorized alike — capture raw column array pointers
/// (Column::*_raw()) for their duration, and AppendRow may reallocate
/// those arrays, so a table must never be appended to while a query is
/// scanning it. Every caller already works this way: serving paths scan
/// shared tables that are only appended to between requests, and an
/// append bumps `version()` so result caches can never resurrect a
/// pre-append answer.
class Table {
 public:
  /// Creates a table with the given schema. Column names must be unique
  /// (case insensitive).
  static Result<std::shared_ptr<Table>> Create(
      std::string name, const std::vector<ColumnSpec>& schema);

  const std::string& name() const { return name_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  /// Process-unique identity of this table object, assigned at creation.
  /// Result caches key on (id, version) so a `Sample()` copy or an
  /// identically named table can never alias another table's entries.
  uint64_t id() const { return id_; }

  /// Content version: bumped by every successful AppendRow. A cached
  /// result is valid only for the exact (id, version) it was computed
  /// against; bumping the version logically invalidates all entries.
  uint64_t version() const { return version_; }

  /// Appends one row; `values` must match the schema arity and types.
  /// Bumps `version()`.
  Status AppendRow(const std::vector<Value>& values);

  /// Column by index.
  const Column& column(size_t index) const { return *columns_[index]; }

  /// Column by name (case insensitive), or nullptr.
  const Column* FindColumn(const std::string& name) const;

  /// Index of a column by name (case insensitive).
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// All column names, in schema order.
  std::vector<std::string> ColumnNames() const;

  /// Names of columns with the given type.
  std::vector<std::string> ColumnNamesOfType(ValueType type) const;

  /// Builds a new table containing a deterministic row sample of
  /// approximately `fraction` of this table (every k-th row), used for
  /// approximate query processing and data-size scaling experiments.
  std::shared_ptr<Table> Sample(double fraction) const;

 private:
  Table(std::string name, std::vector<std::unique_ptr<Column>> columns);

  std::string name_;
  std::vector<std::unique_ptr<Column>> columns_;
  size_t num_rows_ = 0;
  uint64_t id_ = 0;
  uint64_t version_ = 0;
};

}  // namespace muve::db

#endif  // MUVE_DB_TABLE_H_
