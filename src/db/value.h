#ifndef MUVE_DB_VALUE_H_
#define MUVE_DB_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace muve::db {

/// Column data types supported by the engine. MUVE's query fragment needs
/// numeric aggregation columns and (mostly categorical) string predicate
/// columns.
enum class ValueType {
  kInt64,
  kDouble,
  kString,
};

/// Returns "INT64" / "DOUBLE" / "STRING".
const char* ValueTypeName(ValueType type);

/// A dynamically typed scalar used at API boundaries (predicates, query
/// results, CSV loading). Columns store data in typed vectors internally.
class Value {
 public:
  Value() : data_(int64_t{0}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  ValueType type() const {
    switch (data_.index()) {
      case 0:
        return ValueType::kInt64;
      case 1:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_int64() const { return data_.index() == 0; }
  bool is_double() const { return data_.index() == 1; }
  bool is_string() const { return data_.index() == 2; }

  int64_t AsInt64() const { return std::get<int64_t>(data_); }
  double AsDouble() const {
    if (is_int64()) return static_cast<double>(AsInt64());
    return std::get<double>(data_);
  }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Renders the value for SQL text and plot labels.
  std::string ToString() const;

  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator<(const Value& other) const { return data_ < other.data_; }

 private:
  std::variant<int64_t, double, std::string> data_;
};

}  // namespace muve::db

#endif  // MUVE_DB_VALUE_H_
