#ifndef MUVE_DB_EXECUTOR_H_
#define MUVE_DB_EXECUTOR_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "db/query.h"
#include "db/snapshot.h"
#include "db/table.h"

namespace muve::db {

class ResultCache;

/// Controls how the executor runs a scan.
struct ExecutorOptions {
  /// Worker pool for partitioned scans; nullptr runs the exact serial
  /// scan loop (the pre-threading code path, byte-identical results).
  ThreadPool* pool = nullptr;
  /// Session result cache of per-run partial aggregates, consulted
  /// before scanning each immutable run and filled after; nullptr (or a
  /// disabled cache) is the exact uncached path. A run partial stores
  /// the executor's raw per-run state, so a hit reproduces the scan that
  /// populated it byte-for-byte. Must be thread-safe when `pool` is set
  /// (cache::QueryCache is).
  ResultCache* cache = nullptr;
  /// Tables smaller than this stay on the serial path even with a pool —
  /// partitioning overhead dwarfs the scan below this size.
  size_t min_parallel_rows = 16384;
  /// Rows per partition. Fixed (independent of thread count), so the
  /// per-partition aggregate states and their in-order merge — and hence
  /// the floating-point result — are identical for every pool size.
  size_t parallel_grain = 16384;
  /// Cooperative cancellation, checked at partition granularity: every
  /// `parallel_grain` rows on the serial path, at the start of each
  /// partition on the parallel path. On expiry the scan stops and the
  /// executor returns Status::Timeout; a partition already underway runs
  /// to completion, so a cancelled scan overshoots the deadline by at
  /// most one partition grain. The default infinite deadline keeps the
  /// original check-free scan loops (byte-identical results and timing).
  /// A timed-out scan never stores into `cache`.
  Deadline deadline;
  /// Batch-at-a-time columnar execution (src/db/vec/ kernels) over the
  /// immutable runs: each partition is tiled into vec::kBatchSize-row
  /// batches, predicates fill selection vectors with branch-light
  /// kernels (dictionary-code compares for strings, accept masks for
  /// long IN lists), and aggregates run tight gather/dense loops over
  /// the selected offsets. The row-oriented memtable tail is always
  /// scanned value-at-a-time (identically in both modes). Row order,
  /// partition boundaries, accumulation order, cancellation points, and
  /// cache interaction are all identical to the scalar loop, so results
  /// are byte-identical — `false` keeps the original value-at-a-time
  /// scan, which the differential suite uses as the oracle for the
  /// vectorized path.
  bool vectorize = true;

  /// True when this configuration parallelizes a scan of `num_rows` rows.
  bool ShouldParallelize(size_t num_rows) const {
    return pool != nullptr && pool->num_threads() >= 2 &&
           num_rows >= min_parallel_rows && num_rows > parallel_grain;
  }
};

/// Result of executing one aggregate.
struct AggregateResult {
  double value = 0.0;        ///< Aggregate value; 0 for empty MIN/MAX/AVG.
  size_t rows_matched = 0;   ///< Rows satisfying all predicates.
  bool empty_input = false;  ///< True when no row matched (AVG/MIN/MAX
                             ///< undefined; value is 0).
};

/// One aggregate of a grouped (merged) query.
struct AggregateSpec {
  AggregateFunction function = AggregateFunction::kCount;
  std::string column;  ///< Empty for COUNT(*).
};

/// A merged query (paper §8.1): shared predicates, plus one column whose
/// equality predicates across the merged queries were rewritten into an IN
/// list that doubles as GROUP BY key. Each (group value, aggregate) cell of
/// the result answers one original candidate query.
struct GroupByQuery {
  std::string table;
  std::vector<Predicate> shared_predicates;
  std::string group_column;
  std::vector<std::string> group_values;  ///< IN list; also the groups.
  std::vector<AggregateSpec> aggregates;

  /// SQL text, e.g.
  /// SELECT city, COUNT(*), SUM(delay) FROM f WHERE ... AND city IN (...)
  /// GROUP BY city.
  std::string ToSql() const;
};

/// Result of a grouped execution: cell (g, a) is the a-th aggregate over
/// rows whose group column equals group_values[g].
struct GroupByResult {
  std::vector<std::vector<AggregateResult>> cells;
  size_t rows_scanned = 0;
};

/// Partial aggregate state of one query over one storage segment (an
/// immutable run or a slice of one). COUNT/SUM/MIN/MAX merge directly;
/// AVG is carried as the sum+count pair until Finish. The zero value is
/// the merge identity (count 0, +/-inf extrema), so an all-empty segment
/// can never leak a 0 into AVG/MIN/MAX.
struct AggregatePartial {
  size_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
};

/// Partial state of a grouped query over one segment: cell (g, a) is the
/// a-th aggregate's partial for group g.
struct GroupedPartial {
  std::vector<std::vector<AggregatePartial>> cells;
};

/// Cache of per-run partial aggregates, keyed by the storage layer on
/// the exact (table identity, run identity, query) triple. Defined here
/// so `db` stays independent of the cache library; `cache::QueryCache`
/// (src/cache/) implements it with capacity-bounded LRU maps and
/// hit/miss counters.
///
/// Because a run is immutable, a stored partial is a permanent fact
/// about that run — appends to the table never invalidate it, and run
/// ids are process-unique so a retired run's id is never reused.
/// Retiring entries after compaction (see QueryCache::SweepRetired) is
/// capacity hygiene, not a correctness requirement.
///
/// Contract: LookupRun may return true only for a partial previously
/// passed to StoreRun for an equivalent query against the same (table
/// id, run id). Only fully scanned runs of successful executions are
/// stored, so the cached path reproduces the uncached path's errors and
/// timeouts exactly. Implementations must be safe for concurrent calls
/// from ThreadPool workers.
class ResultCache {
 public:
  virtual ~ResultCache() = default;

  /// Returns true and fills `*out` on a hit.
  virtual bool LookupRun(const Table& table, uint64_t run_id,
                         const AggregateQuery& query,
                         AggregatePartial* out) = 0;
  virtual void StoreRun(const Table& table, uint64_t run_id,
                        const AggregateQuery& query,
                        const AggregatePartial& partial) = 0;

  virtual bool LookupRun(const Table& table, uint64_t run_id,
                         const GroupByQuery& query, GroupedPartial* out) = 0;
  virtual void StoreRun(const Table& table, uint64_t run_id,
                        const GroupByQuery& query,
                        const GroupedPartial& partial) = 0;
};

/// Scan-based query executor over versioned in-memory tables.
///
/// Scans run against a TableSnapshot — one consistent table version —
/// segment by segment: the immutable runs in logical order, then the
/// frozen memtable prefix. Each segment accumulates a private partial
/// state (COUNT/SUM/MIN/MAX merge directly, AVG as a sum+count pair,
/// GROUP BY as a per-segment accumulator grid) and the partials are
/// merged in segment order, so the result is independent of which run
/// partials came from the cache. With `options.pool` set, uncached
/// segments are further cut into fixed-size slices executed by the pool
/// and merged slices-then-segments in order. Empty-input detection
/// happens after the merge: a segment that matched nothing contributes
/// a zero-count state, never a 0 identity value.
///
/// The Table& overloads snapshot the table themselves; callers scanning
/// the same version more than once (or needing the version id) take the
/// snapshot explicitly.
class Executor {
 public:
  /// Executes a single aggregation query with equality/IN predicates.
  static Result<AggregateResult> Execute(const TableSnapshot& snapshot,
                                         const AggregateQuery& query,
                                         const ExecutorOptions& options = {});
  static Result<AggregateResult> Execute(const Table& table,
                                         const AggregateQuery& query,
                                         const ExecutorOptions& options = {});

  /// Executes a merged query in one scan.
  static Result<GroupByResult> ExecuteGrouped(
      const TableSnapshot& snapshot, const GroupByQuery& query,
      const ExecutorOptions& options = {});
  static Result<GroupByResult> ExecuteGrouped(
      const Table& table, const GroupByQuery& query,
      const ExecutorOptions& options = {});

  // --- Partial-aggregate surface (scatter-gather) ---------------------
  //
  // A sharded table scans each shard's snapshot independently and merges
  // the per-shard partials in shard order, exactly as Execute merges its
  // per-segment partials in segment order. ExecutePartial is Execute up
  // to (but excluding) the finish step; Execute == FinishAggregate of
  // ExecutePartial, so the single-table path and a 1-shard scatter are
  // the same code.

  /// The merged partial state over the whole snapshot (cache interaction,
  /// parallel slicing, and deadline behavior identical to Execute).
  static Result<AggregatePartial> ExecutePartial(
      const TableSnapshot& snapshot, const AggregateQuery& query,
      const ExecutorOptions& options = {});

  /// The merged grouped partial over the whole snapshot. Grid dimensions
  /// are (query.group_values.size() x query.aggregates.size()) regardless
  /// of the snapshot's contents, so partials from different shards always
  /// merge cell-wise.
  static Result<GroupedPartial> ExecuteGroupedPartial(
      const TableSnapshot& snapshot, const GroupByQuery& query,
      const ExecutorOptions& options = {});

  /// Folds `src` into `dst` (call in shard order; the zero-value
  /// AggregatePartial is the merge identity).
  static void MergePartial(const AggregatePartial& src, AggregatePartial* dst);

  /// Cell-wise grid fold; `src` and `dst` must have equal dimensions.
  static void MergePartial(const GroupedPartial& src, GroupedPartial* dst);

  /// The all-zero merge identity grid for a grouped query's dimensions.
  static GroupedPartial MakeGroupedIdentity(const GroupByQuery& query);

  /// Resolves a merged partial into the final result (COUNT/SUM read the
  /// accumulators, AVG divides, MIN/MAX guard emptiness).
  static AggregateResult FinishAggregate(AggregateFunction fn,
                                         const AggregatePartial& partial);

  /// Resolves a merged grid into a GroupByResult for `query`'s aggregate
  /// list; `rows_scanned` is the caller's total (summed over shards).
  static GroupByResult FinishGrouped(const GroupByQuery& query,
                                     const GroupedPartial& total,
                                     size_t rows_scanned);

  /// Scales an aggregate computed on a `fraction` sample back to the full
  /// data (COUNT/SUM scale by 1/fraction; AVG/MIN/MAX are estimates as-is).
  static double ScaleSampledValue(AggregateFunction fn, double value,
                                  double fraction);
};

}  // namespace muve::db

#endif  // MUVE_DB_EXECUTOR_H_
